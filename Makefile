GO ?= go

.PHONY: all build vet test race check bench clean

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race-check the concurrency-heavy packages (group commit, GC, version
# space, pressure controller, the network service layer, and replication)
# with -short to keep CI latency sane.
race:
	$(GO) test -race -short ./internal/core/... ./internal/txn/... ./internal/gc/... ./internal/mvcc/... ./internal/sql/... ./internal/server/... ./internal/client/... ./internal/repl/...

check: vet build test race

bench:
	$(GO) test -bench=. -benchtime=1x -run '^$$' .

clean:
	$(GO) clean ./...
