GO ?= go

.PHONY: all build vet test race check bench bench-json bench-smoke contention-smoke chaos-smoke shard-smoke htap-smoke replica-smoke clean

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race-check the concurrency-heavy packages (group commit, GC, version
# space, the snapshot announcement array, pressure controller, the network
# service layer, replication, the sharded engine and its 2PC path, the
# lock-free hash table, and the WAL/wire hot paths) with -short to keep CI
# latency sane.
race:
	$(GO) test -race -short ./internal/core/... ./internal/txn/... ./internal/gc/... ./internal/mvcc/... ./internal/sts/... ./internal/sql/... ./internal/server/... ./internal/client/... ./internal/repl/... ./internal/wal/... ./internal/wire/... ./internal/netfault/... ./internal/chaos/... ./internal/shard/... ./internal/htap/...

check: vet build test race

bench:
	$(GO) test -bench=. -benchtime=1x -run '^$$' .

# Regenerate the benchmark baseline: the paper-figure suite plus the hot-path
# micro-benchmarks, written to BENCH_<date>.json (see cmd/benchjson).
bench-json:
	$(GO) run ./cmd/benchjson

# CI smoke: one iteration of every hot-path micro-benchmark, so bench code
# cannot rot without failing the build.
bench-smoke:
	$(GO) test -run '^$$' -bench 'BenchmarkOLAPScan|BenchmarkHashGet|BenchmarkWireFrame|BenchmarkWALAppend|BenchmarkGroupCommit|BenchmarkShardedCommit|BenchmarkSnapshotAcquire|BenchmarkCommitParallel' -benchtime=1x . ./internal/mvcc ./internal/wire ./internal/wal ./internal/shard ./internal/htap ./internal/sts ./internal/txn

# CI smoke: the multi-core hot-path benchmarks (one iteration, pinned to
# GOMAXPROCS=4 so the parallel paths actually interleave) plus the seqlock
# bound-invariant race-stress test — the contention machinery cannot rot
# without failing the build.
contention-smoke:
	GOMAXPROCS=4 $(GO) test -run '^$$' -bench 'BenchmarkSnapshotAcquire|BenchmarkCommitParallel' -benchtime=1x ./internal/sts ./internal/txn
	GOMAXPROCS=4 $(GO) test -race -short -run 'TestSnapshotSetAndBoundInvariantStress' ./internal/txn

# CI smoke: the deterministic network-chaos harness over a small fixed seed
# set. Each seed runs the replicated cluster + bank workload under a seeded
# nemesis and checks all four invariants (conservation, durability,
# convergence, GC-horizon liveness); a failing seed prints how to reproduce.
chaos-smoke:
	$(GO) run ./cmd/chaos -seeds 1,2,3,4,5 -duration 1200ms

# CI smoke: TPC-C over loopback against `hybridgcd -shards 4` through the
# shard-aware client, ending in the full consistency check. Proves the
# sharded server path (HELLO shard map, pinned single-shard transactions,
# cross-shard 2PC) end to end.
shard-smoke:
	bash ./scripts/shard-smoke.sh

# CI smoke: mixed OLTP/OLAP over loopback against `hybridgcd -htap`. TPC-C
# workers drive the row store while OLAP analysts run column-lane aggregates
# through the wire AGGREGATE verb; the script asserts the migrator actually
# shipped rows into chunks during the run.
htap-smoke:
	bash ./scripts/htap-smoke.sh

# CI smoke: read scale-out over loopback — persistent primary, two streaming
# replicas, TPC-C with `-read-replicas`: pooled analysts split Session and
# bounded reads across the replicas while OLTP writes to the primary. The
# script asserts replicas actually served reads and that read-your-writes
# held on every acked row.
replica-smoke:
	bash ./scripts/replica-read-smoke.sh

clean:
	$(GO) clean ./...
