// Package hybridgc is an in-memory MVCC row store with hybrid garbage
// collection, reproducing "Hybrid Garbage Collection for Multi-Version
// Concurrency Control in SAP HANA" (Lee et al., SIGMOD 2016).
//
// The engine keeps the oldest image of every row in a table space and newer
// images as version chains in a version space, reachable through a central
// RID hash table. Transactions commit in groups sharing one commit ID
// (CID), published with a single atomic store on the group's commit
// context. Reads run under snapshot isolation — per statement (Stmt-SI, the
// default) or per transaction (Trans-SI) — and obsolete versions are
// reclaimed by HybridGC, the combination of three collectors:
//
//   - GT, the group timestamp collector, removes whole commit groups below
//     the minimum active snapshot timestamp by scanning the ordered group
//     list;
//   - TG, the table collector, confines long-lived snapshots with known
//     table scope to per-table snapshot trackers so they stop blocking
//     reclamation of unrelated tables;
//   - SI, the interval collector, removes versions in the middle of chains
//     whose visible interval [cid, nextCid) contains no active snapshot
//     timestamp, using a merge-based single pass (the paper's Algorithm 1).
//
// Quickstart:
//
//	db := hybridgc.Open(hybridgc.Config{GC: hybridgc.DefaultPeriods(), AutoGC: true})
//	defer db.Close()
//	tid, _ := db.CreateTable("ACCOUNTS")
//	var rid hybridgc.RID
//	db.Exec(hybridgc.StmtSI, nil, func(tx *hybridgc.Tx) error {
//		var err error
//		rid, err = tx.Insert(tid, []byte("balance=100"))
//		return err
//	})
//	db.Exec(hybridgc.StmtSI, nil, func(tx *hybridgc.Tx) error {
//		return tx.Update(tid, rid, []byte("balance=90"))
//	})
//
// The subpackages under internal implement the substrates; this package is
// the stable surface: the DB engine, transactions, cursors with incremental
// FETCH, engine statistics, and handles on the garbage collectors for
// manual scheduling and experiments.
package hybridgc

import (
	"time"

	"hybridgc/internal/core"
	"hybridgc/internal/gc"
	"hybridgc/internal/ts"
	"hybridgc/internal/txn"
)

// Core engine types.
type (
	// DB is one in-memory MVCC database instance.
	DB = core.DB
	// Config tunes a DB instance.
	Config = core.Config
	// Tx is a transaction handle.
	Tx = core.Tx
	// Cursor is a client-held incremental-fetch cursor pinning a snapshot.
	Cursor = core.Cursor
	// FetchStats reports the cost of one cursor Fetch.
	FetchStats = core.FetchStats
	// Stats is a point-in-time view of engine indicators.
	Stats = core.Stats
)

// Identifier domains.
type (
	// TableID identifies a catalog table.
	TableID = ts.TableID
	// RID identifies a record within a table.
	RID = ts.RID
	// PartitionID identifies one partition of a partitioned table.
	PartitionID = ts.PartitionID
	// CID is a commit identifier / snapshot timestamp.
	CID = ts.CID
)

// Transaction types.
type (
	// Isolation selects Stmt-SI or Trans-SI.
	Isolation = txn.Isolation
	// TxnConfig tunes group commit.
	TxnConfig = txn.Config
)

// Robustness types: graceful degradation under version-space pressure.
type (
	// VersionBudget bounds the version space with soft/hard watermarks; see
	// the degradation ladder in DESIGN.md.
	VersionBudget = core.VersionBudget
	// PressureLevel is the ladder's current rung.
	PressureLevel = core.PressureLevel
	// PressureStats is a point-in-time view of the budget controller.
	PressureStats = core.PressureStats
)

// Degradation ladder rungs.
const (
	PressureNormal       = core.PressureNormal
	PressureSoft         = core.PressureSoft
	PressureBackpressure = core.PressureBackpressure
	PressureEvict        = core.PressureEvict
)

// Garbage collection types.
type (
	// Persistence arms write-ahead logging and checkpointing.
	Persistence = core.Persistence
	// GCPeriods sets the independent invocation periods of GT, TG and SI.
	GCPeriods = gc.Periods
	// HybridGC is the combined collector with scheduling controls.
	HybridGC = gc.Hybrid
	// GCRunStats reports one collector invocation.
	GCRunStats = gc.RunStats
	// Collector is one garbage collection strategy.
	Collector = gc.Collector
)

// Isolation levels.
const (
	// StmtSI is statement-level snapshot isolation (the default).
	StmtSI = txn.StmtSI
	// TransSI is transaction-level snapshot isolation.
	TransSI = txn.TransSI
)

// Errors surfaced by the engine.
var (
	ErrTableNotFound  = core.ErrTableNotFound
	ErrRecordNotFound = core.ErrRecordNotFound
	ErrWriteConflict  = core.ErrWriteConflict
	ErrOutOfScope     = core.ErrOutOfScope
	ErrCursorClosed   = core.ErrCursorClosed
	ErrSnapshotKilled = core.ErrSnapshotKilled
	// ErrVersionPressure rejects a write under sustained version-space
	// pressure; transient — retry (see Retry).
	ErrVersionPressure = core.ErrVersionPressure
	// ErrFailStop rejects all writes after an unrecoverable durability
	// failure; reads keep working, a restart recovers.
	ErrFailStop = core.ErrFailStop
)

// IsTransient reports whether err is worth retrying (write conflicts,
// version pressure).
func IsTransient(err error) bool { return core.IsTransient(err) }

// Retry runs fn with exponential backoff while it fails transiently.
func Retry(attempts int, base time.Duration, fn func() error) error {
	return core.Retry(attempts, base, fn)
}

// Open creates a database; with Config.Persistence set it recovers from the
// directory's checkpoint and log first.
func Open(cfg Config) (*DB, error) { return core.Open(cfg) }

// MustOpen is Open for in-memory configurations that cannot fail; it panics
// on error. Convenient in examples and tests.
func MustOpen(cfg Config) *DB {
	db, err := core.Open(cfg)
	if err != nil {
		panic(err)
	}
	return db
}

// DefaultPeriods returns the paper's GT/TG/SI period configuration at 1/10
// time scale (100 ms / 300 ms / 1 s).
func DefaultPeriods() GCPeriods { return gc.DefaultPeriods() }

// NewSingleTimestamp builds the conventional ST baseline collector over a
// database, for experiments comparing the taxonomy's quadrants.
func NewSingleTimestamp(db *DB) Collector { return gc.NewSingleTimestamp(db.Manager()) }

// NewGroupInterval builds the GI extension collector over a database.
func NewGroupInterval(db *DB) Collector { return gc.NewGroupInterval(db.Manager()) }
