module hybridgc

go 1.22
