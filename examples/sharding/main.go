// Sharding walkthrough: the horizontally sharded engine in one process.
//
// Four acts:
//
//  1. Placement & the RID bijection — rows dealt to shards by interleaved
//     blocks, with the global RID sequence staying exactly as dense as a
//     single node's.
//  2. Pinned vs routed transactions — a single-shard transaction is one
//     engine's native commit; a cross-shard write set goes through the
//     minimal two-phase commit (prepare records in each participant's WAL,
//     one decision record on shard 0).
//  3. Crash recovery — the cluster reopens from its shard directories and
//     the cross-shard commit is there on every shard.
//  4. Per-shard GC horizons — a cursor pinned on shard 0 blocks reclamation
//     there and nowhere else.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"hybridgc/internal/core"
	"hybridgc/internal/engine"
	"hybridgc/internal/shard"
	"hybridgc/internal/ts"
	"hybridgc/internal/txn"
)

const shards = 3

func main() {
	dir, err := os.MkdirTemp("", "hgc-sharding")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	open := func() *shard.Cluster {
		c, err := shard.Open(shard.Config{
			Shards: shards,
			Configure: func(int) core.Config {
				return core.Config{Persistence: &core.Persistence{Dir: dir, Sync: false}}
			},
		})
		if err != nil {
			log.Fatal(err)
		}
		return c
	}
	c := open()

	// Act 1: placement. The default interleave deals RID blocks of size 1
	// round-robin, so sequential inserts produce the same dense global RIDs
	// a single node would — shard s simply owns every Nth row.
	tid, err := c.CreateTable("orders")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cluster: %d shards under %s (one WAL directory each)\n", c.Shards(), filepath.Base(dir))
	var rids []ts.RID
	if err := c.Exec(txn.StmtSI, nil, func(tx engine.Tx) error {
		for i := 0; i < 9; i++ {
			rid, err := tx.Insert(tid, []byte(fmt.Sprintf("order-%d", i)))
			if err != nil {
				return err
			}
			rids = append(rids, rid)
		}
		return nil
	}); err != nil {
		log.Fatal(err)
	}
	p := engine.Placement{Kind: engine.PlaceInterleave, Size: 1}
	fmt.Println("\nact 1 — the RID bijection (interleave, block size 1):")
	for _, rid := range rids {
		s, local := p.LocalRID(rid, shards)
		fmt.Printf("  global RID %d -> shard %d local RID %d\n", rid, s, local)
	}

	// Act 2: pinned vs routed. A transaction opened on one shard commits
	// through that engine's ordinary group-commit path; touching a foreign
	// row is an error, not a silent upgrade.
	fmt.Println("\nact 2 — pinned fast path vs routed 2PC:")
	pinned, err := c.BeginShard(p.ShardOf(rids[0], shards), txn.StmtSI, tid)
	if err != nil {
		log.Fatal(err)
	}
	if err := pinned.Update(tid, rids[0], []byte("order-0/local")); err != nil {
		log.Fatal(err)
	}
	if err := pinned.Commit(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  pinned txn on shard %d: single-node commit, no coordination\n", p.ShardOf(rids[0], shards))

	routed := c.Begin(txn.StmtSI)
	if err := routed.Update(tid, rids[1], []byte("order-1/2pc")); err != nil { // shard 1
		log.Fatal(err)
	}
	if err := routed.Update(tid, rids[2], []byte("order-2/2pc")); err != nil { // shard 2
		log.Fatal(err)
	}
	if err := routed.Commit(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  routed txn wrote shards %d and %d: prepares in both WALs, decision on shard 0\n",
		p.ShardOf(rids[1], shards), p.ShardOf(rids[2], shards))

	// Act 3: crash recovery. Close and reopen from the shard directories:
	// the cross-shard commit must be present on every participant (had the
	// crash landed before the decision record, recovery would have aborted
	// it on every participant instead — presumed abort).
	c.Close()
	c = open()
	defer c.Close()
	fmt.Println("\nact 3 — reopen from disk, both 2PC halves recovered:")
	check := c.Begin(txn.StmtSI)
	for _, rid := range rids[:3] {
		img, err := check.Get(tid, rid)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  RID %d (shard %d) = %q\n", rid, p.ShardOf(rid, shards), img)
	}
	check.Abort()

	// Act 4: per-shard horizons. Pin a cursor on shard 0, churn versions on
	// every shard, run garbage collection: shard 0 must hold its versions
	// for the cursor while the other shards reclaim theirs.
	fmt.Println("\nact 4 — a cursor pinned on shard 0 blocks GC there and nowhere else:")
	cur, err := c.Shard(0).OpenCursor(tid)
	if err != nil {
		log.Fatal(err)
	}
	for round := 0; round < 5; round++ {
		for _, rid := range rids {
			err := c.Exec(txn.StmtSI, nil, func(tx engine.Tx) error {
				return tx.Update(tid, rid, []byte(fmt.Sprintf("churn-%d", round)))
			})
			if err != nil {
				log.Fatal(err)
			}
		}
	}
	for i := 0; i < shards; i++ {
		c.Shard(i).GC().RunGT()
		fmt.Printf("  shard %d: live versions=%d horizon=%d\n",
			i, c.Shard(i).Space().Live(), c.Shard(i).Manager().GlobalHorizon())
	}
	cur.Close()
	c.Shard(0).GC().RunGT()
	fmt.Printf("  cursor closed -> shard 0 reclaims: live versions=%d\n", c.Shard(0).Space().Live())
}
