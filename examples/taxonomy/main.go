// Taxonomy tour (Figure 3): build one synthetic version history and run all
// four garbage collector quadrants — ST, GT (timestamp × single/group) and
// SI, GI (interval × single/group) — plus TG, showing what each one can and
// cannot reclaim on identical input.
package main

import (
	"fmt"
	"log"

	"hybridgc"
	"hybridgc/internal/gc"
	"hybridgc/internal/txn"
)

// buildHistory creates two tables, pins an old cursor over one of them, and
// piles updates onto both; it returns the database and the open snapshots.
func buildHistory() (*hybridgc.DB, func()) {
	db := hybridgc.MustOpen(hybridgc.Config{Txn: hybridgc.TxnConfig{SynchronousPropagation: true}})
	hot, err := db.CreateTable("HOT")
	if err != nil {
		log.Fatal(err)
	}
	cold, _ := db.CreateTable("COLD")
	var hotRIDs, coldRIDs []hybridgc.RID
	for i := 0; i < 8; i++ {
		db.Exec(hybridgc.StmtSI, nil, func(tx *hybridgc.Tx) error {
			r1, err := tx.Insert(hot, []byte("h0"))
			if err != nil {
				return err
			}
			r2, err := tx.Insert(cold, []byte("c0"))
			hotRIDs = append(hotRIDs, r1)
			coldRIDs = append(coldRIDs, r2)
			return err
		})
	}
	// A long-lived cursor over COLD only.
	curs, err := db.OpenCursor(cold)
	if err != nil {
		log.Fatal(err)
	}
	for round := 1; round <= 6; round++ {
		for i := range hotRIDs {
			db.Exec(hybridgc.StmtSI, nil, func(tx *hybridgc.Tx) error {
				if err := tx.Update(hot, hotRIDs[i], []byte(fmt.Sprintf("h%d", round))); err != nil {
					return err
				}
				return tx.Update(cold, coldRIDs[i], []byte(fmt.Sprintf("c%d", round)))
			})
		}
	}
	// A current statement snapshot (ongoing OLTP) for the interval window.
	now := db.Manager().AcquireSnapshot(txn.KindStatement, nil)
	return db, func() { now.Release(); curs.Close(); db.Close() }
}

func main() {
	fmt.Println("Figure 3 taxonomy on one synthetic history:")
	fmt.Println("16 records x (1 insert + 6 updates) = 112 versions;")
	fmt.Println("a long cursor pins COLD near the start; OLTP continues.")
	fmt.Println()
	type entry struct {
		name  string
		make  func(*hybridgc.DB) hybridgc.Collector
		blurb string
	}
	entries := []entry{
		{"ST", func(db *hybridgc.DB) hybridgc.Collector { return gc.NewSingleTimestamp(db.Manager()) },
			"conventional: per-chain scan vs global min timestamp"},
		{"GT", func(db *hybridgc.DB) hybridgc.Collector { return gc.NewGroupTimestamp(db.Manager()) },
			"group list scan vs global min timestamp (HANA's global GC)"},
		{"SI", func(db *hybridgc.DB) hybridgc.Collector { return gc.NewInterval(db.Manager()) },
			"merge-based visible-interval intersection (Algorithm 1)"},
		{"GI", func(db *hybridgc.DB) hybridgc.Collector { return gc.NewGroupInterval(db.Manager()) },
			"immediate-successor subgroups (the paper's future work)"},
		{"TG", func(db *hybridgc.DB) hybridgc.Collector { return gc.NewTableGC(db.Manager(), 1) },
			"semantic: per-table trackers for scoped long-lived snapshots"},
		{"HG", func(db *hybridgc.DB) hybridgc.Collector { return db.GC() },
			"GT + TG + SI combined"},
	}
	for _, e := range entries {
		db, done := buildHistory()
		before := db.Stats().VersionsLive
		st := e.make(db).Collect()
		fmt.Printf("%-4s reclaimed %3d of %d versions  (%s)\n", e.name, st.Versions, before, e.blurb)
		done()
	}
	fmt.Println()
	fmt.Println("reading the table: timestamp collectors (ST, GT) stop at the cursor's")
	fmt.Println("timestamp; interval collectors (SI, GI) also clear the middle of the")
	fmt.Println("chains; TG clears HOT entirely by scoping the cursor to COLD; HG does all.")
}
