// SQL tour: the SQL front end over the MVCC engine — DDL, DML, indexes,
// explicit transactions under both isolation variants, and the §4.3 story
// where the compiled plan's table scope lets the table collector confine a
// long-running SQL cursor.
package main

import (
	"fmt"
	"log"
	"time"

	"hybridgc"
	"hybridgc/internal/gc"
	"hybridgc/internal/sql"
)

func must(res *sql.Result, err error) *sql.Result {
	if err != nil {
		log.Fatal(err)
	}
	return res
}

func main() {
	db := hybridgc.MustOpen(hybridgc.Config{Txn: hybridgc.TxnConfig{SynchronousPropagation: true}})
	defer db.Close()
	cat, err := sql.NewCatalog(db)
	if err != nil {
		log.Fatal(err)
	}
	s := sql.NewSession(cat)

	must(s.Execute("CREATE TABLE orders (id INT, region TEXT, amount INT)"))
	must(s.Execute("CREATE TABLE audit (id INT, note TEXT)"))
	must(s.Execute("CREATE INDEX ON orders (region)"))
	regions := []string{"EMEA", "APJ", "AMER"}
	for i := 1; i <= 12; i++ {
		must(s.Execute(fmt.Sprintf("INSERT INTO orders VALUES (%d, '%s', %d)", i, regions[i%3], i*10)))
	}
	res := must(s.Execute("SELECT SUM(amount) FROM orders WHERE region = 'EMEA'"))
	fmt.Printf("SUM(amount) for EMEA (via index): %s\n", res.Rows[0][0])

	// Explicit Trans-SI transaction: one snapshot for every read.
	must(s.Execute("BEGIN SNAPSHOT"))
	before := must(s.Execute("SELECT COUNT(*) FROM orders")).Rows[0][0].I
	writer := sql.NewSession(cat)
	must(writer.Execute("INSERT INTO orders VALUES (13, 'EMEA', 130)"))
	after := must(s.Execute("SELECT COUNT(*) FROM orders")).Rows[0][0].I
	must(s.Execute("COMMIT"))
	fmt.Printf("Trans-SI reader saw %d rows before and %d after a concurrent insert (same snapshot)\n",
		before, after)

	// The §4.3 hook: a long-running SQL cursor's snapshot takes its scope
	// from the compiled plan, so the table collector can confine it.
	qc, err := s.OpenQueryCursor("SELECT id FROM orders WHERE region = 'APJ'")
	if err != nil {
		log.Fatal(err)
	}
	defer qc.Close()
	fmt.Printf("\ncursor open on ORDERS at snapshot %d (scope from the compiled plan)\n", qc.SnapshotTS())
	for i := 0; i < 300; i++ {
		must(s.Execute(fmt.Sprintf("UPDATE audit SET note = 'n%d' WHERE id = 1", i)))
		if i == 0 {
			must(s.Execute("INSERT INTO audit VALUES (1, 'n0')"))
		}
	}
	gt := gc.NewGroupTimestamp(db.Manager())
	gt.Collect()
	fmt.Printf("GT with the cursor pinned globally: %d versions still live\n", db.Space().Live())
	tg := gc.NewTableGC(db.Manager(), time.Nanosecond)
	time.Sleep(time.Millisecond)
	st := tg.Collect()
	fmt.Printf("TG scopes the cursor to ORDERS and reclaims %d versions; %d remain\n",
		st.Versions, db.Space().Live())
	rows, _, _ := qc.Fetch(100)
	fmt.Printf("cursor still streams its snapshot: %d APJ rows\n", len(rows))
}
