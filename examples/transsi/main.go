// Trans-SI scenario (§5.5): an application repeatedly opens a
// transaction-level snapshot isolation transaction, idles inside it
// (application logic), then scans STOCK and commits. Because the
// transaction's table scope is unknown a priori, the table collector cannot
// help — only the interval collector keeps the version space and the scan
// latency flat. A second part shows HANA's declared-table API making the
// same transaction TG-friendly.
package main

import (
	"fmt"
	"log"
	"time"

	"hybridgc"
	"hybridgc/internal/tpcc"
	"hybridgc/internal/workload"
)

func main() {
	cfg := tpcc.Config{Warehouses: 2, Districts: 4, CustomersPerDistrict: 15, Items: 100, Seed: 5}
	fmt.Println("running TPC-C with repeated long Trans-SI transactions over STOCK...")
	for _, m := range []workload.Mode{workload.ModeGT, workload.ModeGTTG, workload.ModeHG} {
		res, err := workload.Run(workload.Options{
			Mode:     m,
			TPCC:     cfg,
			Duration: 1200 * time.Millisecond,
			TransSI:  &workload.TransSIOptions{Sleep: 150 * time.Millisecond},
		})
		if err != nil {
			log.Fatal(err)
		}
		var mean time.Duration
		for _, d := range res.TransSIScans {
			mean += d
		}
		if len(res.TransSIScans) > 0 {
			mean /= time.Duration(len(res.TransSIScans))
		}
		fmt.Printf("  %-6s scans=%-3d mean scan latency=%-10v final versions=%.0f\n",
			m, len(res.TransSIScans), mean.Round(time.Microsecond), res.Versions.Last())
	}
	fmt.Println("\npaper's Figure 16 shape: TG gains nothing over GT (scope unknown);")
	fmt.Println("HG's interval collector keeps scans fast regardless.")

	// Declared-table transactions: HANA's API lets the application promise
	// its table set up front, which (a) makes the snapshot eligible for
	// table GC and (b) turns out-of-scope access into an error.
	fmt.Println("\n--- declared-table Trans-SI (§4.3) ---")
	db := hybridgc.MustOpen(hybridgc.Config{})
	defer db.Close()
	a, _ := db.CreateTable("DECLARED")
	bTid, _ := db.CreateTable("UNDECLARED")
	var rid hybridgc.RID
	db.Exec(hybridgc.StmtSI, nil, func(tx *hybridgc.Tx) error {
		var err error
		rid, err = tx.Insert(a, []byte("x"))
		if err != nil {
			return err
		}
		_, err = tx.Insert(bTid, []byte("y"))
		return err
	})
	tx := db.Begin(hybridgc.TransSI, a)
	defer tx.Abort()
	if _, err := tx.Get(a, rid); err != nil {
		log.Fatal(err)
	}
	fmt.Println("read from declared table: ok")
	if _, err := tx.Get(bTid, 1); err != nil {
		fmt.Printf("read from undeclared table: %v (as the paper specifies)\n", err)
	}
}
