// Quickstart: open a database, write under snapshot isolation, watch
// HybridGC reclaim obsolete versions, and replay the paper's Figure 1
// worked example — interval GC reclaiming versions the conventional
// timestamp collector cannot.
package main

import (
	"fmt"
	"log"

	"hybridgc"
)

func main() {
	db := hybridgc.MustOpen(hybridgc.Config{})
	defer db.Close()

	tid, err := db.CreateTable("ACCOUNTS")
	if err != nil {
		log.Fatal(err)
	}

	// Insert one record and update it a few times; every update appends a
	// version to the record's chain in the version space.
	var rid hybridgc.RID
	err = db.Exec(hybridgc.StmtSI, nil, func(tx *hybridgc.Tx) error {
		var err error
		rid, err = tx.Insert(tid, []byte("balance=100"))
		return err
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, img := range []string{"balance=90", "balance=75", "balance=50"} {
		if err := db.Exec(hybridgc.StmtSI, nil, func(tx *hybridgc.Tx) error {
			return tx.Update(tid, rid, []byte(img))
		}); err != nil {
			log.Fatal(err)
		}
	}
	st := db.Stats()
	fmt.Printf("after 1 insert + 3 updates: %d live versions in the version space\n", st.VersionsLive)

	// One manual HybridGC pass: with no active snapshot, everything but the
	// latest image is garbage; the latest image migrates to the table space.
	run := db.GC().Collect()
	fmt.Printf("HybridGC pass: %s\n", run)
	fmt.Printf("after GC: %d live versions\n", db.Stats().VersionsLive)

	if err := db.Exec(hybridgc.StmtSI, nil, func(tx *hybridgc.Tx) error {
		img, err := tx.Get(tid, rid)
		fmt.Printf("current value: %s\n", img)
		return err
	}); err != nil {
		log.Fatal(err)
	}

	// --- Figure 1 of the paper ---
	// A record accumulates versions while two snapshots are active: an old
	// one (between the first and second version) and a current one. The
	// conventional timestamp collector (GT here) can only reclaim below the
	// old snapshot; the interval collector also removes the middle versions
	// no snapshot can see.
	fig1, err := db.CreateTable("FIG1")
	if err != nil {
		log.Fatal(err)
	}
	var r hybridgc.RID
	db.Exec(hybridgc.StmtSI, nil, func(tx *hybridgc.Tx) error {
		r, err = tx.Insert(fig1, []byte("v11"))
		return err
	})
	db.Exec(hybridgc.StmtSI, nil, func(tx *hybridgc.Tx) error {
		return tx.Update(fig1, r, []byte("v12"))
	})
	oldCursor, err := db.OpenCursor(fig1) // the long-lived snapshot at "3"
	if err != nil {
		log.Fatal(err)
	}
	defer oldCursor.Close()
	for _, img := range []string{"v13", "v14", "v15"} {
		db.Exec(hybridgc.StmtSI, nil, func(tx *hybridgc.Tx) error {
			return tx.Update(fig1, r, []byte(img))
		})
	}
	cur, err := db.OpenCursor(fig1) // the current snapshot at "99"
	if err != nil {
		log.Fatal(err)
	}
	defer cur.Close()

	before := db.Stats().VersionsLive
	gt := db.GC().RunGT()
	afterGT := db.Stats().VersionsLive
	si := db.GC().RunSI()
	afterSI := db.Stats().VersionsLive
	fmt.Printf("\nFigure 1 replay: %d versions; GT reclaims %d (timestamp-based),\n", before, gt.Versions)
	fmt.Printf("then SI reclaims %d more (v13, v14 — invisible to every snapshot): %d -> %d -> %d\n",
		si.Versions, before, afterGT, afterSI)

	// Both snapshots still read their own consistent values.
	rows, _, _ := oldCursor.Fetch(1)
	fmt.Printf("old snapshot still reads: %s\n", rows[0])
	rows, _, _ = cur.Fetch(1)
	fmt.Printf("current snapshot reads:   %s\n", rows[0])
}
