// Mixed row/column stores (§2.1, §4.3): one unified transaction manager
// spans the row store (the engine's table space) and the column lane
// (dictionary-encoded, immutable chunks), sharing commit timestamps,
// snapshots, the version space and the garbage collectors. The demo shows
// (1) transactions writing a row table and a lane-enabled fact table
// atomically, (2) the background migrator shipping committed versions past
// the GC horizon into column chunks — reclaiming their version-chain
// entries — with vectorized aggregates served from the chunks, (3) the
// visibility guard: a pinned snapshot keeps hot rows in the row store until
// it releases, and (4) §4.3's argument: a long OLAP snapshot over FACTS,
// once scoped by the table collector, stops blocking the row tables.
package main

import (
	"fmt"
	"log"
	"time"

	"hybridgc"
	"hybridgc/internal/colstore"
	"hybridgc/internal/gc"
	"hybridgc/internal/htap"
	"hybridgc/internal/txn"
)

var schema = colstore.Schema{
	Names: []string{"region", "amount"},
	Types: []colstore.ColumnType{colstore.String, colstore.Int64},
}

func encode(region string, amount int64) []byte {
	img, err := colstore.EncodeRow(schema, colstore.Row{colstore.StrV(region), colstore.IntV(amount)})
	if err != nil {
		log.Fatal(err)
	}
	return img
}

func main() {
	db := hybridgc.MustOpen(hybridgc.Config{Txn: hybridgc.TxnConfig{SynchronousPropagation: true}})
	defer db.Close()
	m := db.Manager()

	// Row store: an ORDERS table. Column lane: a FACTS table whose committed
	// versions the migrator ships into dictionary-encoded chunks.
	orders, err := db.CreateTable("ORDERS")
	if err != nil {
		log.Fatal(err)
	}
	facts, err := db.CreateTable("FACTS")
	if err != nil {
		log.Fatal(err)
	}
	store, err := htap.NewStore(db, htap.Config{ChunkSlots: 16})
	if err != nil {
		log.Fatal(err)
	}
	if err := store.EnableTable(facts, schema); err != nil {
		log.Fatal(err)
	}

	// One transaction writes both tables; the shared group commit gives both
	// writes the same CID.
	regions := []string{"EMEA", "APJ", "AMER"}
	for i := 0; i < 30; i++ {
		err := db.Exec(hybridgc.StmtSI, nil, func(tx *hybridgc.Tx) error {
			if _, err := tx.Insert(orders, []byte(fmt.Sprintf("order-%d", i))); err != nil {
				return err
			}
			_, err := tx.Insert(facts, encode(regions[i%3], int64(10*(i+1))))
			return err
		})
		if err != nil {
			log.Fatal(err)
		}
	}
	before := db.Space().Live()
	fmt.Printf("30 cross-store transactions committed; version space holds %d versions\n", before)
	fmt.Printf("column lane: %+v (everything is still row-store delta)\n", laneStat(store))

	// GC settles the versions behind the horizon; the migrator then ships
	// them into chunks and unversions their table-space images.
	db.GC().Collect()
	migrated := store.Migrate()
	ls := laneStat(store)
	if migrated != 30 || ls.ChunkRows != 30 || ls.DeltaRows != 0 {
		log.Fatalf("migration did not settle the lane: migrated=%d stats=%+v", migrated, ls)
	}
	if after := db.Space().Live(); after >= before {
		log.Fatalf("no version reclamation: %d -> %d live versions", before, after)
	}
	fmt.Printf("after GC + migrate: %d live versions; %d rows in %d chunks\n",
		db.Space().Live(), ls.ChunkRows, ls.Chunks)

	// Vectorized aggregates straight off the chunks.
	sum, err := store.Aggregate(facts, htap.AggSpec{Op: htap.AggSum, Col: "amount"})
	if err != nil {
		log.Fatal(err)
	}
	if sum.RowRows != 0 || sum.Groups[0].Sum != 4650 {
		log.Fatalf("lane SUM wrong or not columnar: %+v", sum)
	}
	fmt.Printf("SUM(amount) over the chunks: %d (%d rows from vectors, %d from row reads)\n",
		sum.Groups[0].Sum, sum.ChunkRows, sum.RowRows)
	grouped, err := store.Aggregate(facts, htap.AggSpec{Op: htap.AggCount, GroupBy: "region"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("COUNT(*) GROUP BY region: %d groups over a %d-entry dictionary\n\n",
		len(grouped.Groups), len(regions))

	// The visibility guard: while a snapshot pins the horizon, an updated
	// fact row cannot settle, so the migrator leaves it to the row path.
	pin := m.AcquireSnapshot(txn.KindCursor, []hybridgc.TableID{facts})
	db.Exec(hybridgc.StmtSI, nil, func(tx *hybridgc.Tx) error {
		return tx.Update(facts, 1, encode("EMEA", 99))
	})
	db.GC().Collect()
	store.Migrate()
	if ls := laneStat(store); ls.DirtyRows != 1 {
		log.Fatalf("pinned snapshot should hold the updated row dirty: %+v", ls)
	}
	fmt.Printf("pinned snapshot %d holds the updated row in the row store (dirty=1)\n", pin.TS())
	pin.Release()
	db.GC().Collect()
	store.Migrate()
	if ls := laneStat(store); ls.DirtyRows != 0 {
		log.Fatalf("release should let the row migrate: %+v", ls)
	}
	fmt.Printf("snapshot released: the row settled back into its chunk\n\n")

	// §4.3's scenario: a long OLAP snapshot over FACTS blocks nothing but
	// FACTS once the table collector scopes it.
	olap := m.AcquireSnapshot(txn.KindCursor, []hybridgc.TableID{facts})
	defer olap.Release()
	var rid hybridgc.RID
	db.Exec(hybridgc.StmtSI, nil, func(tx *hybridgc.Tx) error {
		var err error
		rid, err = tx.Insert(orders, []byte("hot"))
		return err
	})
	for i := 0; i < 200; i++ {
		db.Exec(hybridgc.StmtSI, nil, func(tx *hybridgc.Tx) error {
			return tx.Update(orders, rid, []byte(fmt.Sprintf("hot-%d", i)))
		})
	}
	gt := db.GC().RunGT()
	fmt.Printf("GT with the OLAP snapshot pinned globally: reclaimed %d of %d row versions\n",
		gt.Versions, db.Space().Live()+gt.Versions)
	tg := gc.NewTableGC(m, time.Nanosecond)
	time.Sleep(time.Millisecond)
	st := tg.Collect()
	if st.Versions == 0 {
		log.Fatal("TG should reclaim the ORDERS churn the scoped snapshot does not pin")
	}
	fmt.Printf("TG scopes the snapshot to FACTS and reclaims %d versions; %d remain\n",
		st.Versions, db.Space().Live())
}

// laneStat returns FACTS's lane statistics (the store has exactly one lane).
func laneStat(store *htap.Store) htap.LaneStats {
	sts := store.Stats()
	if len(sts) != 1 {
		log.Fatalf("expected one lane, have %d", len(sts))
	}
	return sts[0]
}
