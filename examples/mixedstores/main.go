// Mixed row/column stores (§2.1, §4.3): one unified transaction manager
// spans a row store (the engine's table space) and a column store
// (dictionary-encoded vectors), sharing commit timestamps, snapshots, the
// version space and the garbage collectors. The demo shows (1) transactions
// writing both stores atomically, (2) garbage collection settling column
// rows from version chains into vectors, and (3) §4.3's argument: a
// long-lived OLAP snapshot over a column table, once scoped by the table
// collector, stops blocking reclamation of the row-store tables.
package main

import (
	"fmt"
	"log"
	"time"

	"hybridgc"
	"hybridgc/internal/colstore"
	"hybridgc/internal/gc"
	"hybridgc/internal/txn"
)

func main() {
	db := hybridgc.MustOpen(hybridgc.Config{Txn: hybridgc.TxnConfig{SynchronousPropagation: true}})
	defer db.Close()
	m := db.Manager()

	// Row store: an ORDERS table through the engine API.
	orders, err := db.CreateTable("ORDERS")
	if err != nil {
		log.Fatal(err)
	}
	// Column store: a FACTS table with a dictionary-encoded region column.
	cs := colstore.New(m)
	facts, err := cs.CreateTable("FACTS", colstore.Schema{
		Names: []string{"region", "amount"},
		Types: []colstore.ColumnType{colstore.String, colstore.Int64},
	})
	if err != nil {
		log.Fatal(err)
	}

	// One transaction writes both stores; the shared group commit gives both
	// writes the same CID.
	regions := []string{"EMEA", "APJ", "AMER"}
	for i := 0; i < 30; i++ {
		tx := m.Begin(txn.StmtSI, nil)
		wrapped := db.WrapTxn(tx)
		if _, err := wrapped.Insert(orders, []byte(fmt.Sprintf("order-%d", i))); err != nil {
			log.Fatal(err)
		}
		if _, err := cs.Insert(tx, facts, colstore.Row{
			colstore.StrV(regions[i%3]), colstore.IntV(int64(10 * (i + 1))),
		}); err != nil {
			log.Fatal(err)
		}
		if _, err := tx.Commit(); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("30 cross-store transactions committed; version space holds %d versions\n",
		db.Space().Live())
	fmt.Printf("column main storage: %d settled rows (everything is still delta)\n", facts.SettledRows())

	// Garbage collection settles the column rows into the vectors.
	db.GC().Collect()
	fmt.Printf("after GC: %d live versions; %d settled column rows; region dictionary has %d entries for 30 rows\n",
		db.Space().Live(), facts.SettledRows(), facts.DictCardinality(0))

	// Columnar aggregate straight off the vectors.
	tx := m.Begin(txn.TransSI, nil)
	sum, err := cs.SumInt64(tx, facts, 1)
	if err != nil {
		log.Fatal(err)
	}
	tx.Abort()
	fmt.Printf("SUM(amount) over the vectors: %d\n\n", sum)

	// §4.3's scenario: a long OLAP snapshot over FACTS blocks nothing but
	// FACTS once the table collector scopes it.
	olap := m.AcquireSnapshot(txn.KindCursor, []hybridgc.TableID{facts.ID})
	defer olap.Release()
	var rid hybridgc.RID
	db.Exec(hybridgc.StmtSI, nil, func(tx *hybridgc.Tx) error {
		var err error
		rid, err = tx.Insert(orders, []byte("hot"))
		return err
	})
	for i := 0; i < 200; i++ {
		db.Exec(hybridgc.StmtSI, nil, func(tx *hybridgc.Tx) error {
			return tx.Update(orders, rid, []byte(fmt.Sprintf("hot-%d", i)))
		})
	}
	gt := db.GC().RunGT()
	fmt.Printf("GT with the OLAP snapshot pinned globally: reclaimed %d of %d row versions\n",
		gt.Versions, db.Space().Live()+gt.Versions)
	tg := gc.NewTableGC(m, time.Nanosecond)
	time.Sleep(time.Millisecond)
	st := tg.Collect()
	fmt.Printf("TG scopes the snapshot to FACTS and reclaims %d versions; %d remain\n",
		st.Versions, db.Space().Live())
}
