// Long-cursor scenario (§5.2): a mixed OLTP/OLAP workload where an analytic
// client holds a cursor over STOCK while TPC-C traffic updates it. The
// example runs the same workload under GT-only and under full HybridGC and
// prints the version-space population side by side — the phenomenon of
// Figure 10.
package main

import (
	"fmt"
	"log"
	"time"

	"hybridgc/internal/tpcc"
	"hybridgc/internal/workload"
)

func main() {
	cfg := tpcc.Config{Warehouses: 2, Districts: 4, CustomersPerDistrict: 15, Items: 100, Seed: 3}
	run := func(m workload.Mode) *workload.Result {
		res, err := workload.Run(workload.Options{
			Mode:       m,
			TPCC:       cfg,
			Duration:   1500 * time.Millisecond,
			LongCursor: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	fmt.Println("running TPC-C with a long-duration cursor on STOCK...")
	gt := run(workload.ModeGT)
	hg := run(workload.ModeHG)

	fmt.Printf("\n%-8s %-14s %-14s\n", "t", "GT versions", "HG versions")
	n := len(gt.Versions.Points)
	if len(hg.Versions.Points) < n {
		n = len(hg.Versions.Points)
	}
	step := 1
	if n > 15 {
		step = n / 15
	}
	for i := 0; i < n; i += step {
		fmt.Printf("%-8s %-14.0f %-14.0f\n",
			fmt.Sprintf("%.2fs", gt.Versions.Points[i].Elapsed.Seconds()),
			gt.Versions.Points[i].Value, hg.Versions.Points[i].Value)
	}
	fmt.Printf("\nGT ends with %.0f live versions (cursor blocks everything);\n", gt.Versions.Last())
	fmt.Printf("HybridGC ends with %.0f: the table collector confines the cursor to STOCK\n", hg.Versions.Last())
	fmt.Printf("and the interval collector trims STOCK's own chains.\n")
	fmt.Printf("\nHG reclaim breakdown: GT=%.0f TG=%.0f SI=%.0f (the paper's Figure 11)\n",
		hg.ReclaimedGT.Last(), hg.ReclaimedTG.Last(), hg.ReclaimedSI.Last())
	fmt.Printf("throughput: GT %.0f stmts/s vs HG %.0f stmts/s\n",
		gt.AvgThroughput(), hg.AvgThroughput())
}
