// Network quickstart: the wire protocol end to end in one process. A
// hybridgc server listens on loopback, a pooled client connects, and the
// paper's mixed-workload scenario plays out remotely: an OLAP session opens
// a long-lived SQL cursor whose snapshot is pinned *inside the server*,
// OLTP writers keep committing through the same server, and HybridGC still
// reclaims their garbage — the table collector confines the cursor's
// snapshot to the table its compiled plan scans, so unrelated tables stay
// collectable. The cursor then streams its rows chunk by chunk, unchanged,
// and a graceful drain closes everything down.
package main

import (
	"fmt"
	"log"
	"net"
	"time"

	"hybridgc/internal/client"
	"hybridgc/internal/core"
	"hybridgc/internal/gc"
	"hybridgc/internal/server"
)

func main() {
	// The engine with all three collectors on a fast schedule, and a low
	// long-lived threshold so the remote cursor is confined quickly.
	db, err := core.Open(core.Config{
		GC:                 gc.Periods{GT: 10 * time.Millisecond, TG: 20 * time.Millisecond, SI: 50 * time.Millisecond},
		LongLivedThreshold: 20 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	db.GC().Start()
	defer db.GC().Stop()

	// Serve it on loopback.
	srv, err := server.New(db, server.Config{Token: "quickstart"})
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go srv.Serve(ln)
	fmt.Printf("server listening on %s\n", ln.Addr())

	cl, err := client.Dial(client.Config{Addr: ln.Addr().String(), Token: "quickstart"})
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Close()

	exec := func(stmt string) {
		if _, err := cl.Exec(stmt); err != nil {
			log.Fatalf("%s: %v", stmt, err)
		}
	}
	exec("CREATE TABLE accounts (id INT, balance INT)")
	exec("CREATE TABLE hot (id INT, v INT)")
	for i := 1; i <= 50; i++ {
		exec(fmt.Sprintf("INSERT INTO accounts VALUES (%d, %d)", i, i*100))
	}
	exec("INSERT INTO hot VALUES (1, 0)")

	// The OLAP side: a remote cursor. Its snapshot lives in the server's
	// session for this connection, pinned until QCLOSE (or disconnect).
	cur, err := cl.Query("SELECT id, balance FROM accounts")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("remote cursor open on ACCOUNTS at snapshot %d, columns %v\n",
		cur.SnapshotTS(), cur.Columns())

	// The OLTP side: keep updating HOT through the same server, piling up
	// versions the pinned snapshot would block a single-timestamp collector
	// from reclaiming.
	for i := 1; i <= 400; i++ {
		exec(fmt.Sprintf("UPDATE hot SET v = %d WHERE id = 1", i))
	}
	time.Sleep(100 * time.Millisecond) // a few GC periods

	st, err := cl.Stats()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("with the cursor still open: versions live=%d reclaimed=%d (cursors open=%d)\n",
		st.VersionsLive, st.VersionsReclaimed, st.CursorsOpen)
	if st.VersionsReclaimed == 0 {
		fmt.Println("note: no reclamation observed — the table collector should have confined the cursor")
	} else {
		fmt.Println("HybridGC reclaimed OLTP garbage despite the pinned remote snapshot")
	}

	// The cursor still streams its consistent snapshot, chunk by chunk.
	var rows int
	for !cur.Exhausted() {
		chunk, _, err := cur.Fetch(16)
		if err != nil {
			log.Fatal(err)
		}
		rows += len(chunk)
	}
	fmt.Printf("cursor streamed %d rows in chunks of 16, all at snapshot %d\n", rows, cur.SnapshotTS())
	if err := cur.Close(); err != nil {
		log.Fatal(err)
	}

	// Graceful drain: in-flight work finishes, cursors release, sockets close.
	srv.Shutdown(2 * time.Second)
	fmt.Printf("server drained; served %d requests over %d connections\n",
		st.Requests, st.ConnsTotal)
}
