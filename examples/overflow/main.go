// Version-space overflow (Figure 2): run the mixed workload with garbage
// collection disabled and print the HANA system-load-view indicators — the
// Active Versions count, the Active Commit ID Range, and the estimated
// memory — growing without bound, then the same run under HybridGC staying
// flat.
package main

import (
	"fmt"
	"log"
	"time"

	"hybridgc/internal/tpcc"
	"hybridgc/internal/workload"
)

const versionOverheadBytes = 96

func main() {
	cfg := tpcc.Config{Warehouses: 2, Districts: 4, CustomersPerDistrict: 15, Items: 100, Seed: 9}
	for _, m := range []workload.Mode{workload.ModeNone, workload.ModeHG} {
		fmt.Printf("=== GC: %s ===\n", m)
		res, err := workload.Run(workload.Options{
			Mode:       m,
			TPCC:       cfg,
			Duration:   1200 * time.Millisecond,
			LongCursor: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s %-16s %-14s\n", "t", "Active Versions", "Used Memory")
		pts := res.Versions.Points
		step := 1
		if len(pts) > 10 {
			step = len(pts) / 10
		}
		for i := 0; i < len(pts); i += step {
			mem := int64(pts[i].Value) * versionOverheadBytes
			fmt.Printf("%-8s %-16.0f %.2fMiB\n",
				fmt.Sprintf("%.2fs", pts[i].Elapsed.Seconds()),
				pts[i].Value, float64(mem)/(1<<20))
		}
		fmt.Printf("Active CID Range at end: %d\n\n", res.Final.ActiveCIDRange)
	}
	fmt.Println("Figure 2's phenomenon: without GC (or with GC blocked), Active")
	fmt.Println("Versions and memory grow monotonically; HybridGC keeps them flat.")
}
