// Replication quickstart: a primary/replica pair in one process, and the
// cluster-wide GC horizon in action. A persistent primary serves writes and
// streams its WAL to a read-only replica; a long-lived cursor opened on the
// REPLICA pins garbage collection on the PRIMARY — the replica reports its
// oldest open snapshot upstream, where it joins the snapshot-timestamp
// registry every collector consults. Closing the cursor releases the pin
// and reclamation catches up. The demo finishes with a graceful drain on
// both sides.
package main

import (
	"fmt"
	"log"
	"net"
	"os"
	"time"

	"hybridgc/internal/client"
	"hybridgc/internal/core"
	"hybridgc/internal/gc"
	"hybridgc/internal/repl"
	"hybridgc/internal/server"
)

func main() {
	// The primary: persistent (WAL + checkpoints — replication is WAL
	// shipping), all collectors on a fast schedule.
	dir, err := os.MkdirTemp("", "hgc-repl-example")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	pdb, err := core.Open(core.Config{
		GC:                 gc.Periods{GT: 10 * time.Millisecond, TG: 20 * time.Millisecond, SI: 50 * time.Millisecond},
		LongLivedThreshold: 20 * time.Millisecond,
		Persistence:        &core.Persistence{Dir: dir},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer pdb.Close()
	pdb.GC().Start()
	defer pdb.GC().Stop()

	src, err := repl.NewSource(pdb, repl.SourceConfig{HeartbeatEvery: 20 * time.Millisecond})
	if err != nil {
		log.Fatal(err)
	}
	defer src.Close()
	psrv, err := server.New(pdb, server.Config{Repl: src, StatsHook: src.PopulateStats})
	if err != nil {
		log.Fatal(err)
	}
	pln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go psrv.Serve(pln)
	fmt.Printf("primary listening on %s (data in %s)\n", pln.Addr(), dir)

	// Seed some data before the replica exists — it will arrive there via
	// the bootstrap checkpoint rather than the live tail.
	pcl, err := client.Dial(client.Config{Addr: pln.Addr().String()})
	if err != nil {
		log.Fatal(err)
	}
	defer pcl.Close()
	exec := func(stmt string) {
		if _, err := pcl.Exec(stmt); err != nil {
			log.Fatalf("%s: %v", stmt, err)
		}
	}
	exec("CREATE TABLE accounts (id INT, balance INT)")
	for i := 1; i <= 20; i++ {
		exec(fmt.Sprintf("INSERT INTO accounts VALUES (%d, %d)", i, i*100))
	}

	// The replica: an empty read-only engine that bootstraps from the
	// primary's checkpoint and then tails its WAL.
	rdb, err := core.Open(core.Config{ReadOnly: true})
	if err != nil {
		log.Fatal(err)
	}
	defer rdb.Close()
	rep, err := repl.NewReplica(rdb, repl.ReplicaConfig{
		Upstream:    pln.Addr().String(),
		ReplicaID:   "r1",
		ReportEvery: 20 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	repDone := make(chan error, 1)
	go func() { repDone <- rep.Run() }()
	defer rep.Stop()

	// Serve the replica too, so ordinary clients can read from it.
	rsrv, err := server.New(rdb, server.Config{StatsHook: rep.PopulateStats})
	if err != nil {
		log.Fatal(err)
	}
	rln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go rsrv.Serve(rln)

	if err := rep.WaitLSN(pdb.WAL().NextLSN(), 5*time.Second); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("replica on %s caught up at LSN %s\n", rln.Addr(), rep.AppliedLSN())

	// Read the replicated rows through the replica's own server.
	rcl, err := client.Dial(client.Config{Addr: rln.Addr().String()})
	if err != nil {
		log.Fatal(err)
	}
	defer rcl.Close()
	res, err := rcl.Exec("SELECT id, balance FROM accounts")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("replica serves %d replicated rows (writes there fail read-only)\n", len(res.Rows))

	// The paper's blocker, cluster-wide: a long-lived cursor on the REPLICA.
	// Its snapshot is reported upstream and pins the PRIMARY's GC horizon.
	cur, err := rcl.Query("SELECT id, balance FROM accounts")
	if err != nil {
		log.Fatal(err)
	}
	time.Sleep(60 * time.Millisecond) // a couple of report intervals
	fmt.Printf("replica cursor open at snapshot %d; primary horizon now %d\n",
		cur.SnapshotTS(), pdb.Manager().GlobalHorizon())

	// OLTP churn on the primary while the remote snapshot is open.
	for i := 1; i <= 300; i++ {
		exec(fmt.Sprintf("UPDATE accounts SET balance = %d WHERE id = 1", i))
	}
	time.Sleep(100 * time.Millisecond)
	st, err := pcl.Stats()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("under the remote pin: versions live=%d reclaimed=%d, horizon=%d (pin %d)\n",
		st.VersionsLive, st.VersionsReclaimed, st.GlobalHorizon, cur.SnapshotTS())

	// Release the replica-side snapshot; the pin clears within a report
	// interval and the primary's horizon advances.
	if err := cur.Close(); err != nil {
		log.Fatal(err)
	}
	time.Sleep(100 * time.Millisecond)
	fmt.Printf("cursor closed; primary horizon advanced to %d\n", pdb.Manager().GlobalHorizon())

	// Drain both sides: the stream ends with a drain notice, pins release.
	rsrv.Shutdown(2 * time.Second)
	rep.Stop()
	<-repDone
	psrv.Shutdown(2 * time.Second)
	fmt.Printf("drained; replica applied %s of the primary's WAL\n", rep.AppliedLSN())
}
