// Benchmarks regenerating every figure of the paper's evaluation section
// (§5), one testing.B benchmark per figure, plus ablation benchmarks for
// the design choices DESIGN.md calls out. Each figure iteration runs the
// full experiment at smoke scale and reports the figure's headline numbers
// as custom metrics; `cmd/hybridgc-bench` runs the same experiments at full
// scale with complete series output.
package hybridgc

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"hybridgc/internal/bench"
	"hybridgc/internal/colstore"
	"hybridgc/internal/gc"
	"hybridgc/internal/tpcc"
	"hybridgc/internal/txn"
	"hybridgc/internal/workload"
)

func quickSuite() *bench.Suite {
	return bench.NewSuite(bench.SuiteConfig{Quick: true})
}

// runFigure executes one figure per iteration and returns the last report.
func runFigure(b *testing.B, id string) *bench.Report {
	b.Helper()
	var rep *bench.Report
	for i := 0; i < b.N; i++ {
		var err error
		rep, err = quickSuite().Run(id)
		if err != nil {
			b.Fatal(err)
		}
	}
	return rep
}

// lastOf extracts the final value of the labeled series.
func lastOf(rep *bench.Report, label string) float64 {
	for _, s := range rep.Series {
		if s.Label == label {
			return s.Series.Last()
		}
	}
	return 0
}

// BenchmarkFig10VersionSpace regenerates Figure 10: record versions over
// time with a long-duration cursor, per collector configuration.
func BenchmarkFig10VersionSpace(b *testing.B) {
	rep := runFigure(b, "fig10")
	b.ReportMetric(lastOf(rep, "GT"), "GT-final-versions")
	b.ReportMetric(lastOf(rep, "GT+TG"), "GTTG-final-versions")
	b.ReportMetric(lastOf(rep, "HG"), "HG-final-versions")
}

// BenchmarkFig11ReclaimBreakdown regenerates Figure 11: accumulated
// reclaimed versions per collector under HG.
func BenchmarkFig11ReclaimBreakdown(b *testing.B) {
	rep := runFigure(b, "fig11")
	b.ReportMetric(lastOf(rep, "GT"), "GT-reclaimed")
	b.ReportMetric(lastOf(rep, "TG"), "TG-reclaimed")
	b.ReportMetric(lastOf(rep, "SI"), "SI-reclaimed")
}

// BenchmarkFig12Throughput regenerates Figure 12: TPC-C throughput over time
// with a long-duration cursor.
func BenchmarkFig12Throughput(b *testing.B) {
	rep := runFigure(b, "fig12")
	b.ReportMetric(lastOf(rep, "GT"), "GT-stmts/s")
	b.ReportMetric(lastOf(rep, "HG"), "HG-stmts/s")
}

// BenchmarkFig13HashCollision regenerates Figure 13: hash collision ratio
// over time.
func BenchmarkFig13HashCollision(b *testing.B) {
	rep := runFigure(b, "fig13")
	b.ReportMetric(lastOf(rep, "GT"), "GT-collision-ratio")
	b.ReportMetric(lastOf(rep, "HG"), "HG-collision-ratio")
}

// BenchmarkFig14FetchLatency regenerates Figure 14: the latency of
// individual FETCH operations of an incremental query.
func BenchmarkFig14FetchLatency(b *testing.B) {
	rep := runFigure(b, "fig14")
	b.ReportMetric(float64(len(rep.Rows)), "fetch-rows")
}

// BenchmarkFig15FetchTraversal regenerates Figure 15: record versions
// traversed per FETCH.
func BenchmarkFig15FetchTraversal(b *testing.B) {
	rep := runFigure(b, "fig15")
	b.ReportMetric(float64(len(rep.Rows)), "fetch-rows")
}

// BenchmarkFig16TransSILatency regenerates Figure 16: scan latency inside
// repeated Trans-SI transactions.
func BenchmarkFig16TransSILatency(b *testing.B) {
	rep := runFigure(b, "fig16")
	b.ReportMetric(float64(len(rep.Rows)), "modes")
}

// BenchmarkFig17TransSIVersions regenerates Figure 17: the saw-tooth version
// population under Trans-SI.
func BenchmarkFig17TransSIVersions(b *testing.B) {
	rep := runFigure(b, "fig17")
	b.ReportMetric(lastOf(rep, "HG"), "HG-final-versions")
}

// BenchmarkFig18PeriodSweepNoCursor regenerates Figure 18: throughput vs GC
// invocation period without a long snapshot.
func BenchmarkFig18PeriodSweepNoCursor(b *testing.B) {
	rep := runFigure(b, "fig18")
	b.ReportMetric(float64(len(rep.Rows)), "sweep-points")
}

// BenchmarkFig19PeriodSweepCursor regenerates Figure 19: the same sweep with
// a long-duration cursor.
func BenchmarkFig19PeriodSweepCursor(b *testing.B) {
	rep := runFigure(b, "fig19")
	b.ReportMetric(float64(len(rep.Rows)), "sweep-points")
}

// --- Ablations (A01-A03 in DESIGN.md) and engine micro-benchmarks ---

// gcWorkloadDB builds a database with a pinned snapshot and a pile of
// versions, for collector ablations.
func gcWorkloadDB(b *testing.B, records, versionsPer int) (*DB, func()) {
	b.Helper()
	db := MustOpen(Config{Txn: TxnConfig{SynchronousPropagation: true}})
	tid, err := db.CreateTable("T")
	if err != nil {
		b.Fatal(err)
	}
	var rids []RID
	for i := 0; i < records; i++ {
		err := db.Exec(StmtSI, nil, func(tx *Tx) error {
			rid, err := tx.Insert(tid, []byte("v0"))
			rids = append(rids, rid)
			return err
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	pin := db.Manager().AcquireSnapshot(txn.KindCursor, []TableID{tid})
	for v := 0; v < versionsPer; v++ {
		for _, rid := range rids {
			err := db.Exec(StmtSI, nil, func(tx *Tx) error {
				return tx.Update(tid, rid, []byte(fmt.Sprintf("v%d", v+1)))
			})
			if err != nil {
				b.Fatal(err)
			}
		}
	}
	cleanup := func() {
		pin.Release()
		db.Close()
	}
	return db, cleanup
}

// BenchmarkAblationGroupVsSingleTimestamp compares GT's group-list
// identification against ST's full hash-table scan when there is nothing to
// reclaim (a pinned snapshot blocks everything) — the identification-cost
// argument for group granularity in §4.1.
func BenchmarkAblationGroupVsSingleTimestamp(b *testing.B) {
	for _, kind := range []string{"GT", "ST"} {
		b.Run(kind, func(b *testing.B) {
			db, cleanup := gcWorkloadDB(b, 512, 8)
			defer cleanup()
			var c Collector
			if kind == "GT" {
				c = gc.NewGroupTimestamp(db.Manager())
			} else {
				c = gc.NewSingleTimestamp(db.Manager())
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c.Collect()
			}
		})
	}
}

// BenchmarkAblationIntervalVsGroupInterval compares SI's per-chain merge
// pass against GI's subgroup-batched decisions on identical version
// populations (§3.2's immediate-successor subgroups, the paper's future
// work).
func BenchmarkAblationIntervalVsGroupInterval(b *testing.B) {
	for _, kind := range []string{"SI", "GI"} {
		b.Run(kind, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				db, cleanup := gcWorkloadDB(b, 256, 8)
				var c Collector
				if kind == "SI" {
					c = gc.NewInterval(db.Manager())
				} else {
					c = gc.NewGroupInterval(db.Manager())
				}
				// A second snapshot at "now" creates the interval window.
				cur := db.Manager().AcquireSnapshot(txn.KindStatement, nil)
				b.StartTimer()
				c.Collect()
				b.StopTimer()
				cur.Release()
				cleanup()
				b.StartTimer()
			}
		})
	}
}

// BenchmarkEngineUpdate measures raw single-record update throughput with GC
// disabled (the write path cost floor).
func BenchmarkEngineUpdate(b *testing.B) {
	db := MustOpen(Config{})
	defer db.Close()
	tid, _ := db.CreateTable("T")
	var rid RID
	if err := db.Exec(StmtSI, nil, func(tx *Tx) error {
		var err error
		rid, err = tx.Insert(tid, []byte("v"))
		return err
	}); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := db.Exec(StmtSI, nil, func(tx *Tx) error {
			return tx.Update(tid, rid, []byte("v"))
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineGet measures the read path: statement snapshot, chain
// traversal, decode-free image return.
func BenchmarkEngineGet(b *testing.B) {
	db := MustOpen(Config{Txn: TxnConfig{SynchronousPropagation: true}})
	defer db.Close()
	tid, _ := db.CreateTable("T")
	var rid RID
	db.Exec(StmtSI, nil, func(tx *Tx) error {
		var err error
		rid, err = tx.Insert(tid, []byte("v"))
		return err
	})
	tx := db.Begin(StmtSI)
	defer tx.Abort()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tx.Get(tid, rid); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCursorFetch measures incremental FETCH over a chain-heavy table,
// with and without garbage collection — the mechanism behind Figures 14/15.
func BenchmarkCursorFetch(b *testing.B) {
	for _, collected := range []bool{false, true} {
		name := "uncollected"
		if collected {
			name = "collected"
		}
		b.Run(name, func(b *testing.B) {
			db := MustOpen(Config{Txn: TxnConfig{SynchronousPropagation: true}})
			defer db.Close()
			tid, _ := db.CreateTable("T")
			var rids []RID
			for i := 0; i < 256; i++ {
				db.Exec(StmtSI, nil, func(tx *Tx) error {
					rid, err := tx.Insert(tid, []byte("v"))
					rids = append(rids, rid)
					return err
				})
			}
			cur, err := db.OpenCursor(tid)
			if err != nil {
				b.Fatal(err)
			}
			defer cur.Close()
			for round := 0; round < 16; round++ {
				for _, rid := range rids {
					db.Exec(StmtSI, nil, func(tx *Tx) error {
						return tx.Update(tid, rid, []byte("w"))
					})
				}
			}
			if collected {
				db.GC().Collect() // SI trims the chains behind the cursor
			}
			b.ReportAllocs()
			b.ResetTimer()
			var traversed int64
			for i := 0; i < b.N; i++ {
				fresh, err := db.OpenCursor(tid)
				if err != nil {
					b.Fatal(err)
				}
				for !fresh.Exhausted() {
					_, st, err := fresh.Fetch(64)
					if err != nil {
						b.Fatal(err)
					}
					traversed += st.Traversed
				}
				fresh.Close()
			}
			b.ReportMetric(float64(traversed)/float64(b.N), "versions-traversed/scan")
		})
	}
}

// BenchmarkWorkloadThroughputByMode runs the plain TPC-C workload briefly
// under each GC mode and reports statements/s — the overhead comparison of
// §5.6 at the left edge of Figure 18.
func BenchmarkWorkloadThroughputByMode(b *testing.B) {
	for _, m := range []workload.Mode{workload.ModeGT, workload.ModeGTTG, workload.ModeHG} {
		b.Run(m.String(), func(b *testing.B) {
			var tput float64
			for i := 0; i < b.N; i++ {
				res, err := workload.Run(workload.Options{
					Mode:     m,
					TPCC:     tpcc.Config{Warehouses: 2, Districts: 2, CustomersPerDistrict: 8, Items: 60, Seed: 7},
					Duration: 400 * time.Millisecond,
				})
				if err != nil {
					b.Fatal(err)
				}
				tput = res.AvgThroughput()
			}
			b.ReportMetric(tput, "stmts/s")
		})
	}
}

// BenchmarkAblationColumnVsRowAggregate compares a SUM aggregate over the
// column store's settled vectors against the same aggregate decoding
// row-store payloads — the §2.1 reason HANA pairs a column store with the
// row store for OLAP.
func BenchmarkAblationColumnVsRowAggregate(b *testing.B) {
	const rows = 4096
	b.Run("column", func(b *testing.B) {
		db := MustOpen(Config{Txn: TxnConfig{SynchronousPropagation: true}})
		defer db.Close()
		m := db.Manager()
		cs := colstore.New(m)
		tbl, err := cs.CreateTable("FACTS", colstore.Schema{
			Names: []string{"amount"}, Types: []colstore.ColumnType{colstore.Int64}})
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < rows; i++ {
			tx := m.Begin(StmtSI, nil)
			if _, err := cs.Insert(tx, tbl, colstore.Row{colstore.IntV(int64(i))}); err != nil {
				b.Fatal(err)
			}
			if _, err := tx.Commit(); err != nil {
				b.Fatal(err)
			}
		}
		db.GC().Collect() // settle into vectors
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tx := m.Begin(TransSI, nil)
			if _, err := cs.SumInt64(tx, tbl, 0); err != nil {
				b.Fatal(err)
			}
			tx.Abort()
		}
	})
	b.Run("row", func(b *testing.B) {
		db := MustOpen(Config{Txn: TxnConfig{SynchronousPropagation: true}})
		defer db.Close()
		tid, _ := db.CreateTable("FACTS")
		for i := 0; i < rows; i++ {
			img := make([]byte, 8)
			for j := 0; j < 8; j++ {
				img[j] = byte(i >> (8 * j))
			}
			if err := db.Exec(StmtSI, nil, func(tx *Tx) error {
				_, err := tx.Insert(tid, img)
				return err
			}); err != nil {
				b.Fatal(err)
			}
		}
		db.GC().Collect()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			var sum int64
			err := db.Exec(TransSI, nil, func(tx *Tx) error {
				return tx.Scan(tid, func(_ RID, img []byte) bool {
					var v int64
					for j := 0; j < 8; j++ {
						v |= int64(img[j]) << (8 * j)
					}
					sum += v
					return true
				})
			})
			if err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationChainTraversalDepth quantifies §2.2's latest-first
// ordering argument: reads of recent versions cost O(1) traversal while a
// snapshot k versions behind pays k pointer chases — exactly the cost curve
// Figure 15 observes from the cursor side.
func BenchmarkAblationChainTraversalDepth(b *testing.B) {
	for _, depth := range []int{1, 8, 64, 512} {
		b.Run(fmt.Sprintf("depth-%d", depth), func(b *testing.B) {
			db := MustOpen(Config{Txn: TxnConfig{SynchronousPropagation: true}})
			defer db.Close()
			tid, _ := db.CreateTable("T")
			var rid RID
			db.Exec(StmtSI, nil, func(tx *Tx) error {
				var err error
				rid, err = tx.Insert(tid, []byte("v"))
				return err
			})
			// Pin a snapshot, then bury it under `depth` newer versions.
			pin := db.Manager().AcquireSnapshot(txn.KindCursor, []TableID{tid})
			defer pin.Release()
			for i := 0; i < depth; i++ {
				db.Exec(StmtSI, nil, func(tx *Tx) error {
					return tx.Update(tid, rid, []byte("w"))
				})
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, ok := db.ReadAt(tid, rid, pin.TS()); !ok {
					b.Fatal("pinned read missed")
				}
			}
		})
	}
}

// BenchmarkAblationCooperativeGC measures whether Hekaton-style cooperative
// collection helps under latest-first chains (§6.1's discussion): OLTP-style
// reads hit the chain head, so handoffs almost never fire and cooperative
// mode neither helps nor hurts; it only contributes on deep (old-snapshot)
// traversals.
func BenchmarkAblationCooperativeGC(b *testing.B) {
	for _, coop := range []bool{false, true} {
		name := "off"
		if coop {
			name = "on"
		}
		b.Run(name, func(b *testing.B) {
			db := MustOpen(Config{
				Txn:           TxnConfig{SynchronousPropagation: true},
				CooperativeGC: coop,
			})
			defer db.Close()
			tid, _ := db.CreateTable("T")
			var rid RID
			db.Exec(StmtSI, nil, func(tx *Tx) error {
				var err error
				rid, err = tx.Insert(tid, []byte("v"))
				return err
			})
			// Garbage accumulates behind the head; OLTP reads stay at depth 1.
			for i := 0; i < 64; i++ {
				db.Exec(StmtSI, nil, func(tx *Tx) error {
					return tx.Update(tid, rid, []byte("w"))
				})
			}
			tx := db.Begin(StmtSI)
			defer tx.Abort()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := tx.Get(tid, rid); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(db.CooperativelyReclaimed()), "coop-reclaimed")
		})
	}
}

// BenchmarkAblationGroupCommitWindow measures the group committer's
// batching: concurrent writers commit with and without a batching window,
// reporting transactions per commit group. Larger groups mean fewer
// GroupCommitContext objects — cheaper identification for the group
// collector (§2.2, §4.1).
func BenchmarkAblationGroupCommitWindow(b *testing.B) {
	for _, window := range []time.Duration{0, 200 * time.Microsecond} {
		name := "no-window"
		if window > 0 {
			name = "window-200us"
		}
		b.Run(name, func(b *testing.B) {
			db := MustOpen(Config{Txn: TxnConfig{GroupCommitWindow: window, GroupCommitMaxBatch: 64}})
			defer db.Close()
			tid, _ := db.CreateTable("T")
			const writers = 8
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var wg sync.WaitGroup
				for w := 0; w < writers; w++ {
					wg.Add(1)
					go func() {
						defer wg.Done()
						db.Exec(StmtSI, nil, func(tx *Tx) error {
							_, err := tx.Insert(tid, []byte("x"))
							return err
						})
					}()
				}
				wg.Wait()
			}
			b.StopTimer()
			st := db.Stats()
			if st.Txn.GroupsCommitted > 0 {
				b.ReportMetric(float64(st.Txn.TxnsCommitted)/float64(st.Txn.GroupsCommitted), "txns/group")
			}
		})
	}
}

// BenchmarkGroupCommitThroughput measures durable commit throughput under
// parallel single-statement writers: every commit group must be logged and
// fsynced before acknowledgement, so this is the path batched WAL group
// commit (one write + one fsync per group) accelerates.
func BenchmarkGroupCommitThroughput(b *testing.B) {
	db, err := Open(Config{
		Txn:         TxnConfig{GroupCommitWindow: 200 * time.Microsecond, GroupCommitMaxBatch: 64},
		Persistence: &Persistence{Dir: b.TempDir(), Sync: true},
	})
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	tid, _ := db.CreateTable("T")
	img := make([]byte, 64)
	b.ReportAllocs()
	b.SetParallelism(8) // 8 writers even on a single-P box, so groups form
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if err := db.Exec(StmtSI, nil, func(tx *Tx) error {
				_, err := tx.Insert(tid, img)
				return err
			}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.StopTimer()
	st := db.Stats()
	if st.Txn.TxnsCommitted > 0 {
		b.ReportMetric(float64(st.Txn.TxnsCommitted)/float64(st.Txn.GroupsCommitted), "txns/group")
	}
}
