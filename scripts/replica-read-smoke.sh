#!/usr/bin/env bash
# replica-read-smoke: read scale-out over loopback — a persistent primary,
# two streaming replicas, and TPC-C with `-read-replicas`: OLTP writes to
# the primary while pooled analysts split Session and bounded-staleness
# reads across the replicas, re-checking read-your-writes on every acked
# row. The script fails if no read was ever served by a replica, if any
# read-your-writes violation was observed, or if the final consistency
# check (run against a replica) fails.
set -eu

PRIMARY=${PRIMARY:-127.0.0.1:7667}
REPLICA1=${REPLICA1:-127.0.0.1:7668}
REPLICA2=${REPLICA2:-127.0.0.1:7669}
DURATION=${DURATION:-3s}
TMP=$(mktemp -d)
PIDS=""
trap 'for p in $PIDS; do kill "$p" 2>/dev/null || true; done; for p in $PIDS; do wait "$p" 2>/dev/null || true; done; rm -rf "$TMP"' EXIT

go build -o "$TMP/hybridgcd" ./cmd/hybridgcd
go build -o "$TMP/tpcc" ./cmd/tpcc

"$TMP/hybridgcd" -addr "$PRIMARY" -data "$TMP/data" &
PIDS="$PIDS $!"

wait_listen() {
    local addr=$1
    for _ in $(seq 1 50); do
        if (exec 3<>"/dev/tcp/${addr%:*}/${addr#*:}") 2>/dev/null; then
            exec 3>&- 3<&-
            return 0
        fi
        sleep 0.1
    done
    echo "replica-read-smoke: $addr never started listening" >&2
    exit 1
}
wait_listen "$PRIMARY"

"$TMP/hybridgcd" -addr "$REPLICA1" -replica-of "$PRIMARY" -replica-id r1 &
PIDS="$PIDS $!"
"$TMP/hybridgcd" -addr "$REPLICA2" -replica-of "$PRIMARY" -replica-id r2 &
PIDS="$PIDS $!"
wait_listen "$REPLICA1"
wait_listen "$REPLICA2"

OUT=$("$TMP/tpcc" -addr "$PRIMARY" -read-replicas "$REPLICA1,$REPLICA2" \
      -check-addr "$REPLICA1" -duration "$DURATION" -warehouses 2 -seed 1)
echo "$OUT"

# Replicas must actually have served pooled reads...
echo "$OUT" | grep -E 'readpool: .*replica=[1-9]' >/dev/null || {
    echo "replica-read-smoke: no read was ever served by a replica" >&2
    exit 1
}
# ...and read-your-writes must have held on every one of them.
echo "$OUT" | grep -E 'readpool: ryw-violations=0 ' >/dev/null || {
    echo "replica-read-smoke: read-your-writes violated (or never checked)" >&2
    exit 1
}
echo "replica-read-smoke: OK"
