#!/usr/bin/env bash
# shard-smoke: TPC-C over loopback against a sharded hybridgcd.
#
# Builds hybridgcd and tpcc, starts `hybridgcd -shards 4` on a loopback
# address, runs the shard-aware TPC-C client against it (the client learns the
# shard count from HELLO, pins home-warehouse transactions to their shard and
# routes the ~10% remote clauses through two-phase commit), and relies on the
# client's final consistency check — tpcc exits nonzero if any TPC-C
# consistency clause fails, which fails this script and the CI job.
set -eu

ADDR=${ADDR:-127.0.0.1:7664}
SHARDS=${SHARDS:-4}
DURATION=${DURATION:-3s}
TMP=$(mktemp -d)
trap 'kill "$SERVER_PID" 2>/dev/null || true; wait "$SERVER_PID" 2>/dev/null || true; rm -rf "$TMP"' EXIT

go build -o "$TMP/hybridgcd" ./cmd/hybridgcd
go build -o "$TMP/tpcc" ./cmd/tpcc

"$TMP/hybridgcd" -addr "$ADDR" -shards "$SHARDS" &
SERVER_PID=$!

# Wait for the listener (up to 5s).
for _ in $(seq 1 50); do
    if (exec 3<>"/dev/tcp/${ADDR%:*}/${ADDR#*:}") 2>/dev/null; then
        exec 3>&- 3<&-
        break
    fi
    if ! kill -0 "$SERVER_PID" 2>/dev/null; then
        echo "shard-smoke: hybridgcd exited before listening" >&2
        exit 1
    fi
    sleep 0.1
done

"$TMP/tpcc" -addr "$ADDR" -duration "$DURATION" -warehouses 4 -seed 1
echo "shard-smoke: OK (shards=$SHARDS)"
