#!/usr/bin/env bash
# htap-smoke: mixed OLTP/OLAP over loopback against `hybridgcd -htap`.
#
# Builds hybridgcd and tpcc, starts the daemon with the background
# row→column migrator on, and runs TPC-C with `-olap 2`: two analysts drive
# column-lane aggregates (scalar SUM and grouped COUNT over the wire's
# AGGREGATE verb) while a feeder appends fact rows and the OLTP workers
# hammer the row store. The driver exits nonzero if the lane cannot be
# enabled, aggregates fail, or the final TPC-C consistency check fails —
# failing this script and the CI job.
set -eu

ADDR=${ADDR:-127.0.0.1:7665}
DURATION=${DURATION:-3s}
TMP=$(mktemp -d)
trap 'kill "$SERVER_PID" 2>/dev/null || true; wait "$SERVER_PID" 2>/dev/null || true; rm -rf "$TMP"' EXIT

go build -o "$TMP/hybridgcd" ./cmd/hybridgcd
go build -o "$TMP/tpcc" ./cmd/tpcc

"$TMP/hybridgcd" -addr "$ADDR" -htap &
SERVER_PID=$!

# Wait for the listener (up to 5s).
for _ in $(seq 1 50); do
    if (exec 3<>"/dev/tcp/${ADDR%:*}/${ADDR#*:}") 2>/dev/null; then
        exec 3>&- 3<&-
        break
    fi
    if ! kill -0 "$SERVER_PID" 2>/dev/null; then
        echo "htap-smoke: hybridgcd exited before listening" >&2
        exit 1
    fi
    sleep 0.1
done

OUT=$("$TMP/tpcc" -addr "$ADDR" -duration "$DURATION" -warehouses 2 -olap 2 -seed 1)
echo "$OUT"
# The lane must have actually migrated rows into chunks during the run.
echo "$OUT" | grep -E 'olap: lane olap_orders .*migrated=[1-9]' >/dev/null || {
    echo "htap-smoke: migrator shipped no rows into the column lane" >&2
    exit 1
}
echo "htap-smoke: OK"
