package main

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"hybridgc/internal/client"
	"hybridgc/internal/core"
)

// olapTable is the SQL fact table the OLAP leg aggregates over. One feeder
// keeps appending (and occasionally re-pricing) order lines while the
// analysts run SUM/COUNT/GROUP BY against them — the mixed OLTP/OLAP shape
// of the HTAP experiments, driven over the wire.
const olapTable = "olap_orders"

type olapLoad struct {
	queries  atomic.Int64
	inserts  atomic.Int64
	rowsRead atomic.Int64
}

// startOLAP creates the fact table, arms its column lane, and spawns one
// feeder plus n analysts on wg until stop closes. The server must run the
// migrator (-htap) or EnableHTAP fails here with its error.
func startOLAP(cl *client.Client, n, warehouses int, stop <-chan struct{}, wg *sync.WaitGroup) (*olapLoad, error) {
	if _, err := cl.Exec("CREATE TABLE " + olapTable + " (amount INT, warehouse TEXT)"); err != nil {
		return nil, fmt.Errorf("olap table: %w", err)
	}
	if err := cl.EnableHTAP(olapTable); err != nil {
		return nil, fmt.Errorf("enable htap (is the server running -htap?): %w", err)
	}
	ol := &olapLoad{}

	// Feeder: steady inserts give the migrator a moving delta tail to chase.
	wg.Add(1)
	go func() {
		defer wg.Done()
		i := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			q := fmt.Sprintf("INSERT INTO %s VALUES (%d, 'W%d')", olapTable, 1+i%97, 1+i%warehouses)
			if _, err := cl.Exec(q); err == nil {
				ol.inserts.Add(1)
			} else if !core.IsTransient(err) {
				return
			}
			i++
		}
	}()

	for a := 0; a < n; a++ {
		wg.Add(1)
		go func(a int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				var (
					res *client.Result
					err error
				)
				if i%2 == 0 {
					res, err = cl.Aggregate(olapTable, client.AggSum, "amount", "")
				} else {
					res, err = cl.Aggregate(olapTable, client.AggCount, "", "warehouse")
				}
				if err != nil {
					if core.IsTransient(err) {
						continue
					}
					return
				}
				ol.queries.Add(1)
				ol.rowsRead.Add(int64(len(res.Rows)))
			}
		}(a)
	}
	return ol, nil
}

// report prints the OLAP leg's throughput and the server's lane state.
func (ol *olapLoad) report(cl *client.Client, elapsed time.Duration) {
	q := ol.queries.Load()
	fmt.Printf("olap: %.0f aggregates/s (%d queries, %d fact rows inserted)\n",
		float64(q)/elapsed.Seconds(), q, ol.inserts.Load())
	st, err := cl.Stats()
	if err != nil {
		return
	}
	for _, h := range st.HTAP {
		fmt.Printf("olap: lane %s chunks=%d chunk-rows=%d delta=%d dirty=%d migrated=%d lag=%d\n",
			h.Name, h.Chunks, h.ChunkRows, h.DeltaRows, h.DirtyRows, h.MigratedRows, h.Lag)
	}
}
