package main

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"hybridgc/internal/client"
	"hybridgc/internal/core"
)

// rpTable is the SQL table the read-replica analysts work over: a feeder
// appends acked rows through the pool's primary while the analysts read them
// back off the replicas — Session reads re-check read-your-writes on every
// acked row, BoundedStaleness reads play the dashboard that tolerates lag.
const rpTable = "rp_ledger"

type readLoad struct {
	pool *client.ReadPool

	sessionReads atomic.Int64
	boundedReads atomic.Int64
	rywViolation atomic.Int64
	inserts      atomic.Int64
}

// startReadPool builds a read/write-splitting pool over the primary and the
// replica set and spawns one feeder plus n analysts on wg until stop closes.
func startReadPool(primary, token, replicaList string, n int, stop <-chan struct{}, wg *sync.WaitGroup) (*readLoad, error) {
	var replicas []string
	for _, a := range strings.Split(replicaList, ",") {
		if a = strings.TrimSpace(a); a != "" {
			replicas = append(replicas, a)
		}
	}
	pool, err := client.NewReadPool(client.PoolConfig{
		Primary:  primary,
		Replicas: replicas,
		Client:   client.Config{Token: token, MaxConns: n + 2},
	})
	if err != nil {
		return nil, err
	}
	if _, err := pool.Exec("CREATE TABLE " + rpTable + " (id INT, v INT)"); err != nil {
		pool.Close()
		return nil, fmt.Errorf("readpool table: %w", err)
	}
	rl := &readLoad{pool: pool}

	// Feeder: acked writes through the primary; acked is the highest id whose
	// INSERT returned success, so a Session read of it must always hit.
	var acked atomic.Int64
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := int64(1); ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			q := fmt.Sprintf("INSERT INTO %s VALUES (%d, %d)", rpTable, i, i*7)
			if _, err := pool.Exec(q); err == nil {
				rl.inserts.Add(1)
				acked.Store(i)
			} else if !core.IsTransient(err) {
				return
			}
		}
	}()

	for a := 0; a < n; a++ {
		wg.Add(1)
		go func(a int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if id := acked.Load(); i%2 == 0 && id > 0 {
					// Read-your-writes: the latest acked row must be visible
					// to a Session read no matter which endpoint serves it.
					q := fmt.Sprintf("SELECT v FROM %s WHERE id = %d", rpTable, id)
					res, err := rl.pool.Read(q, client.Session)
					if err != nil {
						if core.IsTransient(err) {
							continue
						}
						return
					}
					rl.sessionReads.Add(1)
					if len(res.Rows) != 1 || res.Rows[0][0].I != id*7 {
						rl.rywViolation.Add(1)
					}
				} else {
					// Dashboard read: up to 500ms stale is fine.
					q := fmt.Sprintf("SELECT id FROM %s WHERE id = %d", rpTable, 1+int64(i)%max(id, 1))
					if _, err := rl.pool.Read(q, client.BoundedStaleness(500*time.Millisecond)); err != nil {
						// Table-not-found is a startup race: a bounded read
						// carries no token, so it may land on a replica that
						// has not applied the CREATE TABLE yet.
						if core.IsTransient(err) || errors.Is(err, core.ErrTableNotFound) {
							continue
						}
						return
					}
					rl.boundedReads.Add(1)
				}
			}
		}(a)
	}
	return rl, nil
}

// report prints the read-routing breakdown; the smoke script asserts replica
// reads happened and no read-your-writes violation was observed.
func (rl *readLoad) report(elapsed time.Duration) {
	c := rl.pool.Counters()
	reads := rl.sessionReads.Load() + rl.boundedReads.Load()
	fmt.Printf("readpool: %.0f reads/s (%d session + %d bounded over %d rows) replica=%d primary=%d bounces=%d failovers=%d\n",
		float64(reads)/elapsed.Seconds(), rl.sessionReads.Load(), rl.boundedReads.Load(),
		rl.inserts.Load(), c.ReplicaReads, c.PrimaryReads, c.Bounces, c.Failovers)
	fmt.Printf("readpool: ryw-violations=%d token=%d\n", rl.rywViolation.Load(), rl.pool.Token())
}

func (rl *readLoad) close() { rl.pool.Close() }
