// Command tpcc runs the modified TPC-C benchmark (§5.1) standalone against
// the engine: one worker per warehouse bound to its home warehouse, the
// configured garbage collection mode, and a final consistency check. It
// prints throughput, per-profile transaction counts, and engine statistics.
//
// With -addr the benchmark runs remotely: the same driver and profiles go
// through internal/client to a hybridgcd server, with transient wire errors
// (write conflicts, version pressure) retried by the same core.Retry policy
// as the in-process path.
//
// Usage:
//
//	tpcc -warehouses 4 -duration 10s -gc hg
//	tpcc -gc none -duration 3s          # watch the version space overflow
//	tpcc -addr 127.0.0.1:7654           # drive a running hybridgcd
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"sync"
	"time"

	"hybridgc/internal/client"
	"hybridgc/internal/core"
	"hybridgc/internal/engine"
	"hybridgc/internal/gc"
	"hybridgc/internal/profiling"
	"hybridgc/internal/shard"
	"hybridgc/internal/tpcc"
	"hybridgc/internal/workload"
)

func main() {
	var (
		warehouses = flag.Int("warehouses", 4, "number of warehouses (and workers)")
		items      = flag.Int("items", 200, "items per warehouse")
		customers  = flag.Int("customers", 30, "customers per district")
		districts  = flag.Int("districts", 10, "districts per warehouse")
		duration   = flag.Duration("duration", 10*time.Second, "benchmark duration")
		mode       = flag.String("gc", "hg", "garbage collection mode: none, gt, gttg, hg (local mode only)")
		cursor     = flag.Bool("cursor", false, "hold a long-duration cursor on STOCK (the paper's GC blocker)")
		check      = flag.Bool("check", true, "run TPC-C consistency checks at the end")
		seed       = flag.Int64("seed", 1, "random seed")
		shards     = flag.Int("shards", 1, "run the in-process engine sharded N ways (local mode only)")
		cross      = flag.Bool("cross", false, "enable TPC-C remote clauses (15% remote Payment, 1% remote supply per NewOrder line); auto-enabled when sharded")
		olap       = flag.Int("olap", 0, "OLAP analysts running column-lane aggregates beside the OLTP load (remote mode; server needs -htap)")
		readRepl   = flag.String("read-replicas", "", "comma-separated replica addresses; analyst reads route through the read/write-splitting pool (remote mode)")
		readers    = flag.Int("readers", 2, "analyst goroutines reading through the pool (with -read-replicas)")
		addr       = flag.String("addr", "", "hybridgcd address; empty runs the engine in-process")
		token      = flag.String("token", "", "auth token for -addr")
		checkAddr  = flag.String("check-addr", "", "read-only endpoint (e.g. a replica) to run the consistency check against")
		checkToken = flag.String("check-token", "", "auth token for -check-addr")
	)
	var prof profiling.Flags
	prof.Register(flag.CommandLine)
	flag.Parse()
	remote := *addr != ""

	var m workload.Mode
	switch strings.ToLower(*mode) {
	case "none":
		m = workload.ModeNone
	case "gt":
		m = workload.ModeGT
	case "gttg", "gt+tg":
		m = workload.ModeGTTG
	case "hg", "hybrid":
		m = workload.ModeHG
	default:
		fmt.Fprintf(os.Stderr, "unknown -gc mode %q\n", *mode)
		os.Exit(2)
	}
	if remote && *cursor {
		fmt.Fprintln(os.Stderr, "-cursor is local-only; the remote pinned-snapshot scenario is examples/network")
		os.Exit(2)
	}
	if *olap > 0 && !remote {
		fmt.Fprintln(os.Stderr, "-olap is remote-only; the in-process mixed workload is `benchjson -figure ext2`")
		os.Exit(2)
	}
	if *readRepl != "" && !remote {
		fmt.Fprintln(os.Stderr, "-read-replicas is remote-only; point -addr at the primary")
		os.Exit(2)
	}
	if err := profiling.Start(prof); err != nil {
		fatal(err)
	}
	defer profiling.Stop()

	cfg := tpcc.Config{
		Warehouses:           *warehouses,
		Districts:            *districts,
		CustomersPerDistrict: *customers,
		Items:                *items,
		Seed:                 *seed,
	}
	var (
		driver *tpcc.Driver
		eng    engine.Engine
		cl     *client.Client
		err    error
	)
	if remote {
		if *shards > 1 {
			fmt.Fprintln(os.Stderr, "-shards is local-only; a remote engine's shard count is the server's -shards")
			os.Exit(2)
		}
		cl, err = client.Dial(client.Config{Addr: *addr, Token: *token, MaxConns: *warehouses + 2})
		if err != nil {
			fatal(err)
		}
		defer cl.Close()
		cfg.CrossWarehouse = *cross || cl.ShardCount() > 1
		driver, err = tpcc.NewWithBackend(tpcc.RemoteBackend(cl), cfg)
	} else {
		base := gc.Periods{GT: 50 * time.Millisecond, TG: 150 * time.Millisecond, SI: 500 * time.Millisecond}
		engCfg := core.Config{
			GC:                 m.Periods(base),
			LongLivedThreshold: 100 * time.Millisecond,
		}
		if *shards > 1 {
			var clu *shard.Cluster
			clu, err = shard.Open(shard.Config{
				Shards:    *shards,
				Configure: func(int) core.Config { return engCfg },
			})
			if err != nil {
				fatal(err)
			}
			eng = clu
		} else {
			var db *core.DB
			db, err = core.Open(engCfg)
			if err != nil {
				fatal(err)
			}
			eng = engine.NewSingle(db)
		}
		defer eng.Close()
		cfg.CrossWarehouse = *cross || *shards > 1
		driver, err = tpcc.NewWithBackend(tpcc.EngineBackend(eng), cfg)
	}
	if err != nil {
		fatal(err)
	}
	fmt.Printf("loading TPC-C: %d warehouses, %d districts, %d customers/district, %d items...\n",
		*warehouses, *districts, *customers, *items)
	if err := driver.Load(); err != nil {
		fatal(err)
	}

	if !remote && m != workload.ModeNone {
		for i := 0; i < eng.Shards(); i++ {
			eng.Shard(i).GC().Start()
		}
	}
	var cur engine.Cursor
	if *cursor {
		cur, err = eng.OpenCursor(driver.StockTableID())
		if err != nil {
			fatal(err)
		}
		fmt.Printf("long-duration cursor opened on STOCK at snapshot %d\n", cur.SnapshotTS())
	}

	startStmts := statements(eng, cl)
	switch {
	case remote:
		fmt.Printf("running %v against %s...\n", *duration, *addr)
	case eng.Shards() > 1:
		fmt.Printf("running %v with GC mode %s over %d shards...\n", *duration, m, eng.Shards())
	default:
		fmt.Printf("running %v with GC mode %s...\n", *duration, m)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var ol *olapLoad
	if *olap > 0 {
		if ol, err = startOLAP(cl, *olap, *warehouses, stop, &wg); err != nil {
			fatal(err)
		}
		fmt.Printf("olap: %d analysts aggregating over the column lane\n", *olap)
	}
	var rl *readLoad
	if *readRepl != "" {
		if rl, err = startReadPool(*addr, *token, *readRepl, *readers, stop, &wg); err != nil {
			fatal(err)
		}
		fmt.Printf("readpool: %d analysts reading through the replica pool\n", *readers)
	}
	workers := make([]*tpcc.Worker, *warehouses)
	start := time.Now()
	for w := 1; w <= *warehouses; w++ {
		workers[w-1] = driver.NewWorker(w)
		wg.Add(1)
		go func(wk *tpcc.Worker) {
			defer wg.Done()
			if err := wk.Run(1<<62, stop); err != nil {
				fmt.Fprintf(os.Stderr, "worker %d: %v\n", wk.Warehouse(), err)
			}
		}(workers[w-1])
	}
	time.Sleep(*duration)
	close(stop)
	wg.Wait()
	elapsed := time.Since(start)
	if cur != nil {
		cur.Close()
	}
	if !remote && m != workload.ModeNone {
		for i := 0; i < eng.Shards(); i++ {
			eng.Shard(i).GC().Stop()
		}
	}

	stmts := statements(eng, cl) - startStmts
	fmt.Printf("\nthroughput: %.0f committed statements/s (%d statements in %v)\n",
		float64(stmts)/elapsed.Seconds(), stmts, elapsed.Round(time.Millisecond))
	if ol != nil {
		ol.report(cl, elapsed)
	}
	if rl != nil {
		rl.report(elapsed)
		rl.close()
	}
	for t := tpcc.TxnNewOrder; t <= tpcc.TxnStockLevel; t++ {
		var committed, aborted, crossed int64
		for _, wk := range workers {
			committed += wk.Stats.Committed[t].Load()
			aborted += wk.Stats.Aborted[t].Load()
			crossed += wk.Stats.Cross[t].Load()
		}
		if cfg.CrossWarehouse {
			fmt.Printf("  %-12s committed=%-8d aborted=%-6d cross-shard=%d\n", t, committed, aborted, crossed)
		} else {
			fmt.Printf("  %-12s committed=%-8d aborted=%d\n", t, committed, aborted)
		}
	}

	// Per-warehouse breakdown: one worker per warehouse, so worker stats are
	// warehouse stats. The cross-shard column is the share of that worker's
	// committed transactions that crossed shards and went through two-phase
	// commit (~10% of NewOrder+Payment when the remote clauses are on).
	fmt.Println("\nper-warehouse:")
	var totCommitted, totCross int64
	for _, wk := range workers {
		committed := wk.Stats.TotalCommitted()
		crossed := wk.Stats.TotalCross()
		var aborted int64
		for t := tpcc.TxnNewOrder; t <= tpcc.TxnStockLevel; t++ {
			aborted += wk.Stats.Aborted[t].Load()
		}
		totCommitted += committed
		totCross += crossed
		share := 0.0
		if committed > 0 {
			share = 100 * float64(crossed) / float64(committed)
		}
		fmt.Printf("  W%-3d shard %-2d committed=%-8d aborted=%-6d cross-shard=%d (%.1f%%)\n",
			wk.Warehouse(), driver.HomeShard(wk.Warehouse()), committed, aborted, crossed, share)
	}
	if totCommitted > 0 {
		fmt.Printf("  total cross-shard share: %.1f%% of %d committed\n",
			100*float64(totCross)/float64(totCommitted), totCommitted)
	}
	if remote {
		st, err := cl.Stats()
		if err != nil {
			fatal(err)
		}
		fmt.Printf("\nserver: versions live=%d created=%d reclaimed=%d migrated=%d\n",
			st.VersionsLive, st.VersionsCreated, st.VersionsReclaimed, st.VersionsMigrated)
		fmt.Printf("service: %d requests (%d errors) over %d conns, %s in / %s out, latency p50=%v p99=%v\n",
			st.Requests, st.RequestErrors, st.ConnsTotal,
			fmtBytes(st.BytesIn), fmtBytes(st.BytesOut), st.LatP50, st.LatP99)
	} else {
		st := eng.Stats()
		fmt.Printf("\nversion space: live=%d created=%d reclaimed=%d migrated=%d\n",
			st.VersionsLive, st.VersionsCreated, st.VersionsReclaimed, st.VersionsMigrated)
		if eng.Shards() > 1 {
			for i := 0; i < eng.Shards(); i++ {
				ss := eng.Shard(i).Stats()
				fmt.Printf("  shard %d: live=%-7d reclaimed=%-8d horizon=%d committed=%d\n",
					i, ss.VersionsLive, ss.VersionsReclaimed, ss.GlobalHorizon, ss.Txn.TxnsCommitted)
			}
		} else {
			hst := eng.Shard(0).Stats()
			fmt.Printf("hash table: %d chains over %d buckets (collision ratio %.2f)\n",
				hst.Hash.Chains, hst.Hash.Buckets, hst.Hash.CollisionRatio)
		}
		fmt.Printf("commit groups pending: %d, txns committed: %d, groups: %d\n",
			st.GroupListLen, st.Txn.TxnsCommitted, st.Txn.GroupsCommitted)
	}

	if *check {
		if *checkAddr != "" {
			// Route the check leg through the read-only endpoint — its
			// snapshot must first catch up to the primary's commit
			// timestamp, since replication is asynchronous.
			ccl, err := client.Dial(client.Config{Addr: *checkAddr, Token: *checkToken, MaxConns: 1})
			if err != nil {
				fatal(err)
			}
			defer ccl.Close()
			target := currentCID(eng, cl)
			fmt.Printf("\nwaiting for %s to reach CID %d... ", *checkAddr, target)
			if err := waitForCID(ccl, target, 30*time.Second); err != nil {
				fatal(err)
			}
			fmt.Println("caught up")
			driver.SetCheckBackend(tpcc.RemoteBackend(ccl))
		}
		fmt.Print("\nconsistency check... ")
		if err := driver.Check(); err != nil {
			fmt.Println("FAILED")
			fatal(err)
		}
		fmt.Println("OK")
	}
}

// currentCID reads the workload side's commit timestamp.
func currentCID(eng engine.Engine, cl *client.Client) uint64 {
	if eng != nil {
		return uint64(eng.Stats().CurrentCID)
	}
	st, err := cl.Stats()
	if err != nil {
		fatal(err)
	}
	return uint64(st.CurrentCID)
}

// waitForCID polls the endpoint's STATS until its commit timestamp reaches
// target — CIDs are primary-assigned, so both ends share one CID space.
func waitForCID(cl *client.Client, target uint64, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		st, err := cl.Stats()
		if err != nil {
			return err
		}
		if uint64(st.CurrentCID) >= target {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("endpoint stuck at CID %d, want %d", st.CurrentCID, target)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// statements reads the committed-statement counter from whichever end runs
// the engine.
func statements(eng engine.Engine, cl *client.Client) int64 {
	if eng != nil {
		return eng.Stats().Statements
	}
	st, err := cl.Stats()
	if err != nil {
		fatal(err)
	}
	return st.Statements
}

func fmtBytes(n int64) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.2fMiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.2fKiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tpcc:", err)
	profiling.Stop() // flush -cpuprofile/-memprofile even on the error path
	os.Exit(1)
}
