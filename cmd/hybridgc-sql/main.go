// Command hybridgc-sql is an interactive SQL shell over the engine. It
// supports CREATE TABLE/INDEX, INSERT, SELECT (with WHERE, ORDER BY, LIMIT,
// COUNT, SUM), UPDATE, DELETE and BEGIN [SNAPSHOT]/COMMIT/ROLLBACK, plus
// backslash commands for engine introspection (\stats, \gc, \tables).
//
// Usage:
//
//	hybridgc-sql                      # in-memory
//	hybridgc-sql -data ./mydb         # persistent (WAL + checkpoint)
//	echo "SELECT 1 FROM t" | hybridgc-sql -data ./mydb
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"hybridgc/internal/core"
	"hybridgc/internal/gc"
	"hybridgc/internal/sql"
)

func main() {
	var (
		dataDir = flag.String("data", "", "persistence directory (empty = in-memory)")
		autoGC  = flag.Bool("gc", true, "run HybridGC periodically")
	)
	flag.Parse()

	cfg := core.Config{AutoGC: *autoGC, GC: gc.DefaultPeriods()}
	if *dataDir != "" {
		cfg.Persistence = &core.Persistence{Dir: *dataDir}
	}
	db, err := core.Open(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "open:", err)
		os.Exit(1)
	}
	defer db.Close()
	cat, err := sql.NewCatalog(db)
	if err != nil {
		fmt.Fprintln(os.Stderr, "catalog:", err)
		os.Exit(1)
	}
	sess := sql.NewSession(cat)

	in := bufio.NewScanner(os.Stdin)
	in.Buffer(make([]byte, 1<<20), 1<<20)
	interactive := isTerminalHint()
	if interactive {
		fmt.Println("hybridgc-sql — type SQL, \\help for commands, \\q to quit")
	}
	for {
		if interactive {
			if sess.InTransaction() {
				fmt.Print("txn> ")
			} else {
				fmt.Print("sql> ")
			}
		}
		if !in.Scan() {
			break
		}
		line := strings.TrimSpace(in.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "\\") {
			if !meta(db, cat, line) {
				return
			}
			continue
		}
		res, err := sess.Execute(line)
		if err != nil {
			fmt.Println("error:", err)
			continue
		}
		printResult(res)
	}
}

// meta handles backslash commands; returns false to quit.
func meta(db *core.DB, cat *sql.Catalog, line string) bool {
	switch strings.Fields(line)[0] {
	case "\\q", "\\quit":
		return false
	case "\\help":
		fmt.Println(`SQL: CREATE TABLE t (a INT, b TEXT) | CREATE [ORDERED] INDEX ON t (a)
     INSERT INTO t VALUES (1, 'x') | SELECT */cols/COUNT(*)/SUM(c) FROM t
       [WHERE c =|<|> v AND ...] [ORDER BY c [DESC]] [LIMIT n]
     UPDATE t SET a = 1 [WHERE ...] | DELETE FROM t [WHERE ...]
     BEGIN [SNAPSHOT] | COMMIT | ROLLBACK
views: m_version_space, m_snapshots, m_gc, m_gc_regions, m_tables (SELECT-only)
meta: \tables \stats \gc \checkpoint \q`)
	case "\\tables":
		for _, t := range cat.Tables() {
			cols := make([]string, len(t.Columns))
			for i, c := range t.Columns {
				cols[i] = fmt.Sprintf("%s %s", c.Name, c.Type)
			}
			fmt.Printf("%s (%s)\n", t.Name, strings.Join(cols, ", "))
		}
	case "\\stats":
		st := db.Stats()
		fmt.Printf("versions: live=%d created=%d reclaimed=%d migrated=%d\n",
			st.VersionsLive, st.VersionsCreated, st.VersionsReclaimed, st.VersionsMigrated)
		fmt.Printf("snapshots active=%d, CID=%d, horizon=%d, hash collision=%.2f\n",
			st.ActiveSnapshots, st.CurrentCID, st.GlobalHorizon, st.Hash.CollisionRatio)
	case "\\gc":
		fmt.Println(db.GC().Collect())
	case "\\checkpoint":
		if err := db.Checkpoint(); err != nil {
			fmt.Println("error:", err)
		} else {
			fmt.Println("checkpoint written")
		}
	default:
		fmt.Println("unknown command; \\help lists commands")
	}
	return true
}

func printResult(res *sql.Result) {
	if res.Message != "" {
		fmt.Println(res.Message)
		return
	}
	if res.Columns == nil {
		fmt.Printf("%d row(s) affected\n", res.Affected)
		return
	}
	fmt.Println(strings.Join(res.Columns, " | "))
	for _, row := range res.Rows {
		parts := make([]string, len(row))
		for i, d := range row {
			parts[i] = d.String()
		}
		fmt.Println(strings.Join(parts, " | "))
	}
	fmt.Printf("(%d rows)\n", len(res.Rows))
}

// isTerminalHint reports whether stdin looks interactive without importing
// syscall specifics: piped input has a determinable size or is not a char
// device.
func isTerminalHint() bool {
	fi, err := os.Stdin.Stat()
	if err != nil {
		return false
	}
	return fi.Mode()&os.ModeCharDevice != 0
}
