// Command hybridgc-bench regenerates the figures of the paper's evaluation
// section (§5). Each figure is one experiment over the modified TPC-C
// workload with the GT / GT+TG / HG collector configurations; the output is
// the same series or table the paper plots, plus a note stating the shape
// the paper reports.
//
// Usage:
//
//	hybridgc-bench -fig all
//	hybridgc-bench -fig 10,11,12,13 -duration 5s -warehouses 4
//	hybridgc-bench -fig 18 -quick
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"hybridgc/internal/bench"
	"hybridgc/internal/profiling"
	"hybridgc/internal/tpcc"
)

func main() {
	var (
		fig        = flag.String("fig", "all", "figure number(s) to regenerate: e.g. 10 or 10,12,19 or all")
		quick      = flag.Bool("quick", false, "smoke-test scale (sub-second runs)")
		duration   = flag.Duration("duration", 0, "per-run workload duration (default 3s, quick 500ms)")
		warehouses = flag.Int("warehouses", 0, "TPC-C warehouses (default 4)")
		items      = flag.Int("items", 0, "TPC-C items per warehouse (default 200)")
		customers  = flag.Int("customers", 0, "TPC-C customers per district (default 30)")
		seed       = flag.Int64("seed", 7, "workload random seed")
	)
	var prof profiling.Flags
	prof.Register(flag.CommandLine)
	flag.Parse()
	if err := profiling.Start(prof); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	defer profiling.Stop()

	cfg := bench.SuiteConfig{
		Quick:    *quick,
		Duration: *duration,
	}
	if *warehouses > 0 || *items > 0 || *customers > 0 {
		cfg.TPCC = tpcc.Config{
			Warehouses:           *warehouses,
			Items:                *items,
			CustomersPerDistrict: *customers,
			Seed:                 *seed,
		}
	}
	suite := bench.NewSuite(cfg)

	eff := suite.Config()
	fmt.Printf("hybridgc-bench: %d warehouses, %d items, %d customers/district, %v per run\n",
		eff.TPCC.Warehouses, eff.TPCC.Items, eff.TPCC.CustomersPerDistrict, eff.Duration)
	fmt.Printf("GC periods: GT=%v TG=%v SI=%v (paper: 1s/3s/10s)\n\n",
		eff.Base.GT, eff.Base.TG, eff.Base.SI)

	ids, err := resolveFigures(*fig)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	start := time.Now()
	for _, id := range ids {
		rep, err := suite.Run(id)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", id, err)
			profiling.Stop()
			os.Exit(1)
		}
		if _, err := rep.WriteTo(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			profiling.Stop()
			os.Exit(1)
		}
	}
	fmt.Printf("done in %v\n", time.Since(start).Round(time.Millisecond))
}

// digitsOnly reports whether s is a plain figure number like "10".
func digitsOnly(s string) (string, bool) {
	if s == "" {
		return s, false
	}
	for _, r := range s {
		if r < '0' || r > '9' {
			return s, false
		}
	}
	return s, true
}

func resolveFigures(arg string) ([]string, error) {
	if arg == "all" {
		return bench.Figures(), nil
	}
	var ids []string
	for _, part := range strings.Split(arg, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		id := part
		if _, numeric := digitsOnly(part); numeric {
			id = "fig" + part
		}
		found := false
		for _, known := range bench.Figures() {
			if known == id {
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("unknown figure %q; available: %s", part, strings.Join(bench.Figures(), ", "))
		}
		ids = append(ids, id)
	}
	if len(ids) == 0 {
		return nil, fmt.Errorf("no figures selected")
	}
	return ids, nil
}
