// Command hybridgcd serves one hybridgc engine over TCP using the wire
// protocol in internal/wire. Clients (internal/client, cmd/tpcc -addr,
// cmd/gcmon -addr) speak length-prefixed binary frames; each connection gets
// its own SQL session, explicit-transaction scope and query cursors, so a
// remote long-lived cursor pins a snapshot in this process exactly like an
// in-process one — the paper's Figure 2 blocker, observable over the
// network.
//
// With -data the engine is persistent (WAL + checkpoints) and also acts as a
// replication primary: replicas connect with OpReplStream, and their
// reported snapshots join the cluster-wide GC horizon. With -replica-of the
// process is a replica instead: it bootstraps from the primary's checkpoint,
// tails its WAL, and serves read-only snapshot queries; local writes fail
// with ErrReadOnly. A demoted replica (too far behind the primary's segment
// retention) automatically rebuilds itself from a fresh checkpoint.
//
// With -htap the process runs the background row→column migrator: clients
// arm tables with the HTAP-ENABLE verb (client.EnableHTAP), after which
// committed versions older than the GC horizon are shipped into
// dictionary-encoded column chunks and lane-eligible aggregates
// (client.Aggregate, or SELECT SUM(col) /* aggregate */ FROM t) are served
// from columnar batches instead of MVCC row reads.
//
// SIGTERM / SIGINT drain gracefully: the listener closes, in-flight requests
// finish and get their responses, replication streams end with a drain
// notice, and every open cursor is closed so its pinned snapshot stops
// blocking garbage collection before the process exits.
//
// Usage:
//
//	hybridgcd -addr :7654 -gc hg
//	hybridgcd -addr :7654 -data /var/lib/hgc -checkpoint-every 30s
//	hybridgcd -addr :7655 -replica-of 127.0.0.1:7654 -replica-id r1
package main

import (
	"errors"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"hybridgc/internal/core"
	"hybridgc/internal/engine"
	"hybridgc/internal/gc"
	"hybridgc/internal/htap"
	"hybridgc/internal/profiling"
	"hybridgc/internal/repl"
	"hybridgc/internal/server"
	"hybridgc/internal/shard"
	"hybridgc/internal/wal"
	"hybridgc/internal/workload"
)

type options struct {
	addr       string
	token      string
	maxConns   int
	idle       time.Duration
	gcMode     workload.Mode
	soft, hard int64
	shards     int

	data        string
	sync        bool
	ckptEvery   time.Duration
	replicaOf   string
	replicaID   string
	upstreamTok string
	tokenWait   time.Duration

	replStale time.Duration
	replWrite time.Duration

	htapOn    bool
	htapEvery time.Duration
}

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:7654", "listen address")
		token    = flag.String("token", "", "auth token clients must present in HELLO (empty disables auth)")
		maxConns = flag.Int("maxconns", 256, "maximum concurrent connections")
		idle     = flag.Duration("idle", 2*time.Minute, "per-connection idle timeout (releases cursors of silent peers)")
		mode     = flag.String("gc", "hg", "garbage collection mode: none, gt, gttg, hg")
		soft     = flag.Int64("soft", 0, "version-budget soft watermark (0 disables the budget)")
		hard     = flag.Int64("hard", 0, "version-budget hard watermark (0 derives 2*soft)")
		shards   = flag.Int("shards", 1, "engine shard count; >1 serves a horizontally sharded engine with per-shard WALs, GC and horizons")

		data      = flag.String("data", "", "persistence directory (WAL + checkpoints); enables serving replicas")
		syncWAL   = flag.Bool("sync", false, "fsync the WAL on every commit group")
		ckptEvery = flag.Duration("checkpoint-every", 0, "periodic checkpoint interval (0 disables; requires -data)")

		replicaOf   = flag.String("replica-of", "", "primary address; run as a read-only replica of it")
		replicaID   = flag.String("replica-id", "replica", "stable replica identity reported to the primary")
		upstreamTok = flag.String("upstream-token", "", "auth token for the primary (replica mode)")
		tokenWait   = flag.Duration("token-wait", 150*time.Millisecond, "replica mode: how long a read carrying a consistency token waits for the applier before bouncing with replica-behind")

		replStale = flag.Duration("repl-stale-after", 0, "demote a silent replica after this long; replica: tolerated primary silence (0 selects defaults)")
		replWrite = flag.Duration("repl-write-timeout", 0, "per-write deadline on replication streams (0 selects the default)")

		htapOn    = flag.Bool("htap", false, "run the background row→column migrator; clients arm tables with the HTAP-ENABLE verb")
		htapEvery = flag.Duration("htap-every", 25*time.Millisecond, "migrator pass interval (requires -htap)")
	)
	var prof profiling.Flags
	prof.Register(flag.CommandLine)
	flag.Parse()

	var m workload.Mode
	switch strings.ToLower(*mode) {
	case "none":
		m = workload.ModeNone
	case "gt":
		m = workload.ModeGT
	case "gttg", "gt+tg":
		m = workload.ModeGTTG
	case "hg", "hybrid":
		m = workload.ModeHG
	default:
		fmt.Fprintf(os.Stderr, "unknown -gc mode %q\n", *mode)
		os.Exit(2)
	}
	if err := profiling.Start(prof); err != nil {
		fatal(err)
	}
	defer profiling.Stop()
	opts := options{
		addr: *addr, token: *token, maxConns: *maxConns, idle: *idle,
		gcMode: m, soft: *soft, hard: *hard, shards: *shards,
		data: *data, sync: *syncWAL, ckptEvery: *ckptEvery,
		replicaOf: *replicaOf, replicaID: *replicaID, upstreamTok: *upstreamTok,
		tokenWait: *tokenWait,
		replStale: *replStale, replWrite: *replWrite,
		htapOn: *htapOn, htapEvery: *htapEvery,
	}
	if opts.shards > 1 && opts.replicaOf != "" {
		fmt.Fprintln(os.Stderr, "hybridgcd: -shards > 1 is incompatible with -replica-of (replicas are single-node)")
		os.Exit(2)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)

	if opts.replicaOf != "" {
		runReplica(opts, sig)
		return
	}
	runPrimary(opts, sig)
}

func engineConfig(opts options, readOnly bool) core.Config {
	base := gc.Periods{GT: 50 * time.Millisecond, TG: 150 * time.Millisecond, SI: 500 * time.Millisecond}
	cfg := core.Config{
		GC:                 opts.gcMode.Periods(base),
		LongLivedThreshold: 100 * time.Millisecond,
		VersionBudget:      core.VersionBudget{Soft: opts.soft, Hard: opts.hard},
		ReadOnly:           readOnly,
	}
	if !readOnly && opts.data != "" {
		cfg.Persistence = &core.Persistence{Dir: opts.data, Sync: opts.sync}
	}
	return cfg
}

// runPrimary serves a standalone, primary or sharded engine until a signal
// drains it.
func runPrimary(opts options, sig <-chan os.Signal) {
	var (
		eng        engine.Engine
		checkpoint func() error
	)
	if opts.shards > 1 {
		cl, err := shard.Open(shard.Config{
			Shards:    opts.shards,
			Configure: func(int) core.Config { return engineConfig(opts, false) },
		})
		if err != nil {
			fatal(err)
		}
		eng, checkpoint = cl, cl.Checkpoint
	} else {
		db, err := core.Open(engineConfig(opts, false))
		if err != nil {
			fatal(err)
		}
		eng, checkpoint = engine.NewSingle(db), db.Checkpoint
	}
	defer eng.Close()
	if opts.gcMode != workload.ModeNone {
		for i := 0; i < eng.Shards(); i++ {
			g := eng.Shard(i).GC()
			g.Start()
			defer g.Stop()
		}
	}

	srvCfg := server.Config{Token: opts.token, MaxConns: opts.maxConns, IdleTimeout: opts.idle}
	var src *repl.Source
	if opts.data != "" && opts.shards > 1 {
		fmt.Println("hybridgcd: sharded engine persists per-shard WALs; serving replicas is single-node only and stays disabled")
	}
	if opts.data != "" && opts.shards <= 1 {
		var err error
		src, err = repl.NewSource(eng.Shard(0), repl.SourceConfig{
			StaleAfter:   opts.replStale,
			WriteTimeout: opts.replWrite,
		})
		if err != nil {
			fatal(err)
		}
		defer src.Close()
		srvCfg.Repl = src
		srvCfg.StatsHook = src.PopulateStats
	}
	srv, err := server.NewEngine(eng, srvCfg)
	if err != nil {
		fatal(err)
	}
	if opts.htapOn {
		hm, err := htap.NewManager(eng, htap.Config{Interval: opts.htapEvery})
		if err != nil {
			fatal(err)
		}
		srv.Catalog().AttachHTAP(hm)
		hm.Start()
		defer hm.Stop()
	}
	ln, err := net.Listen("tcp", opts.addr)
	if err != nil {
		fatal(err)
	}
	role := "standalone"
	switch {
	case opts.shards > 1:
		role = fmt.Sprintf("sharded x%d", opts.shards)
	case src != nil:
		role = "primary"
	}
	if opts.htapOn {
		role += "+htap"
	}
	fmt.Printf("hybridgcd: listening on %s (role=%s gc=%s maxconns=%d)\n", ln.Addr(), role, opts.gcMode, opts.maxConns)

	stopCkpt := make(chan struct{})
	if opts.ckptEvery > 0 && opts.data != "" {
		go func() {
			t := time.NewTicker(opts.ckptEvery)
			defer t.Stop()
			for {
				select {
				case <-stopCkpt:
					return
				case <-t.C:
					if err := checkpoint(); err != nil {
						fmt.Fprintln(os.Stderr, "hybridgcd: checkpoint:", err)
					}
				}
			}
		}()
	}

	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	select {
	case s := <-sig:
		fmt.Printf("hybridgcd: %v — draining...\n", s)
		close(stopCkpt)
		srv.Shutdown(5 * time.Second)
		<-done
	case err := <-done:
		close(stopCkpt)
		if err != nil {
			fatal(err)
		}
	}

	st := srv.Stats()
	fmt.Printf("hybridgcd: served %d requests over %d connections (%d errors)\n",
		st.Requests, st.ConnsTotal, st.RequestErrors)
	fmt.Printf("hybridgcd: versions live=%d reclaimed=%d, cursors reaped=%d, latency p50=%s p99=%s\n",
		st.VersionsLive, st.VersionsReclaimed, st.CursorsReaped,
		time.Duration(st.LatP50), time.Duration(st.LatP99))
	if src != nil {
		fmt.Printf("hybridgcd: replication sent=%d records, demotions=%d, replicas=%d\n",
			st.ReplRecordsSent, st.ReplDemotions, len(st.Replicas))
	}
}

// runReplica serves a read-only replica, rebuilding the engine from a fresh
// checkpoint whenever the primary requires a re-bootstrap.
func runReplica(opts options, sig <-chan os.Signal) {
	for {
		db, err := core.Open(engineConfig(opts, true))
		if err != nil {
			fatal(err)
		}
		if opts.gcMode != workload.ModeNone {
			db.GC().Start()
		}
		rep, err := repl.NewReplica(db, repl.ReplicaConfig{
			Upstream:     opts.replicaOf,
			Token:        opts.upstreamTok,
			ReplicaID:    opts.replicaID,
			StallTimeout: opts.replStale,
			WriteTimeout: opts.replWrite,
		})
		if err != nil {
			fatal(err)
		}
		srv, err := server.New(db, server.Config{
			Token: opts.token, MaxConns: opts.maxConns, IdleTimeout: opts.idle,
			StatsHook: rep.PopulateStats,
			ReadGate:  readGate(rep, opts.tokenWait),
		})
		if err != nil {
			fatal(err)
		}
		ln, err := net.Listen("tcp", opts.addr)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("hybridgcd: listening on %s (role=replica of %s id=%s)\n", ln.Addr(), opts.replicaOf, opts.replicaID)

		srvDone := make(chan error, 1)
		go func() { srvDone <- srv.Serve(ln) }()
		repDone := make(chan error, 1)
		go func() { repDone <- rep.Run() }()

		select {
		case s := <-sig:
			fmt.Printf("hybridgcd: %v — draining...\n", s)
			rep.Stop()
			srv.Shutdown(5 * time.Second)
			<-srvDone
			<-repDone
			db.Close()
			fmt.Printf("hybridgcd: replica applied %s\n", rep.AppliedLSN())
			return
		case err := <-repDone:
			rep.Stop()
			srv.Shutdown(5 * time.Second)
			<-srvDone
			db.Close()
			if errors.Is(err, repl.ErrBootstrapRequired) {
				fmt.Fprintln(os.Stderr, "hybridgcd: re-bootstrapping:", err)
				continue // fresh engine, fresh checkpoint
			}
			if err != nil {
				fatal(err)
			}
			return
		case err := <-srvDone:
			rep.Stop()
			<-repDone
			db.Close()
			if err != nil {
				fatal(err)
			}
			return
		}
	}
}

// readGate adapts the replica's applier to the server's consistency-token
// gate: a read whose token is already applied passes immediately; otherwise
// it waits up to wait for the applier and bounces with the transient
// core.ErrReplicaBehind so the client retries on another endpoint.
func readGate(rep *repl.Replica, wait time.Duration) func(uint64) (bool, error) {
	return func(minLSN uint64) (bool, error) {
		target := wal.LSN(minLSN)
		if rep.AppliedLSN() >= target {
			return false, nil
		}
		if err := rep.WaitLSN(target, wait); err != nil {
			return true, fmt.Errorf("%w: %v", core.ErrReplicaBehind, err)
		}
		return true, nil
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hybridgcd:", err)
	profiling.Stop() // flush -cpuprofile/-memprofile even on the error path
	os.Exit(1)
}
