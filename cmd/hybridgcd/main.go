// Command hybridgcd serves one hybridgc engine over TCP using the wire
// protocol in internal/wire. Clients (internal/client, cmd/tpcc -addr,
// cmd/gcmon -addr) speak length-prefixed binary frames; each connection gets
// its own SQL session, explicit-transaction scope and query cursors, so a
// remote long-lived cursor pins a snapshot in this process exactly like an
// in-process one — the paper's Figure 2 blocker, observable over the
// network.
//
// SIGTERM / SIGINT drain gracefully: the listener closes, in-flight requests
// finish and get their responses, idle connections are released, and every
// open cursor is closed so its pinned snapshot stops blocking garbage
// collection before the process exits.
//
// Usage:
//
//	hybridgcd -addr :7654 -gc hg
//	hybridgcd -addr :7654 -gc none -soft 50000   # watch the pressure ladder
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"hybridgc/internal/core"
	"hybridgc/internal/gc"
	"hybridgc/internal/server"
	"hybridgc/internal/workload"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:7654", "listen address")
		token    = flag.String("token", "", "auth token clients must present in HELLO (empty disables auth)")
		maxConns = flag.Int("maxconns", 256, "maximum concurrent connections")
		idle     = flag.Duration("idle", 2*time.Minute, "per-connection idle timeout (releases cursors of silent peers)")
		mode     = flag.String("gc", "hg", "garbage collection mode: none, gt, gttg, hg")
		soft     = flag.Int64("soft", 0, "version-budget soft watermark (0 disables the budget)")
		hard     = flag.Int64("hard", 0, "version-budget hard watermark (0 derives 2*soft)")
	)
	flag.Parse()

	var m workload.Mode
	switch strings.ToLower(*mode) {
	case "none":
		m = workload.ModeNone
	case "gt":
		m = workload.ModeGT
	case "gttg", "gt+tg":
		m = workload.ModeGTTG
	case "hg", "hybrid":
		m = workload.ModeHG
	default:
		fmt.Fprintf(os.Stderr, "unknown -gc mode %q\n", *mode)
		os.Exit(2)
	}

	base := gc.Periods{GT: 50 * time.Millisecond, TG: 150 * time.Millisecond, SI: 500 * time.Millisecond}
	db, err := core.Open(core.Config{
		GC:                 m.Periods(base),
		LongLivedThreshold: 100 * time.Millisecond,
		VersionBudget:      core.VersionBudget{Soft: *soft, Hard: *hard},
	})
	if err != nil {
		fatal(err)
	}
	defer db.Close()
	if m != workload.ModeNone {
		db.GC().Start()
		defer db.GC().Stop()
	}

	srv, err := server.New(db, server.Config{
		Token:       *token,
		MaxConns:    *maxConns,
		IdleTimeout: *idle,
	})
	if err != nil {
		fatal(err)
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("hybridgcd: listening on %s (gc=%s maxconns=%d)\n", ln.Addr(), m, *maxConns)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()

	select {
	case s := <-sig:
		fmt.Printf("hybridgcd: %v — draining...\n", s)
		srv.Shutdown(5 * time.Second)
		<-done
	case err := <-done:
		if err != nil {
			fatal(err)
		}
	}

	st := srv.Stats()
	fmt.Printf("hybridgcd: served %d requests over %d connections (%d errors)\n",
		st.Requests, st.ConnsTotal, st.RequestErrors)
	fmt.Printf("hybridgcd: versions live=%d reclaimed=%d, cursors reaped=%d, latency p50=%s p99=%s\n",
		st.VersionsLive, st.VersionsReclaimed, st.CursorsReaped,
		time.Duration(st.LatP50), time.Duration(st.LatP99))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hybridgcd:", err)
	os.Exit(1)
}
