// Command benchjson writes the repo's benchmark baseline: one JSON document
// combining (1) the paper-figure suite (internal/bench, run in-process so the
// structured reports are captured, not scraped) and (2) the hot-path
// micro-benchmarks (hash-table Get, wire framing, WAL batch append, group
// commit), run through `go test -bench` and parsed from the standard
// benchmark output format.
//
// `make bench-json` runs it and commits the result as BENCH_<date>.json, so
// every perf PR can diff its numbers against the previous baseline on the
// same class of machine.
//
// Usage:
//
//	benchjson                     # quick figures + 200ms benchtime -> BENCH_<today>.json
//	benchjson -o baseline.json -benchtime 1s -figs fig13,fig19
//	benchjson -figs none -benchtime 1x   # micro-benchmarks only, smoke scale
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"strconv"
	"strings"
	"time"

	"hybridgc/internal/bench"
)

// microPattern selects the hot-path micro-benchmarks named in the baseline
// contract; microPackages is where they live.
const microPattern = "BenchmarkOLAPScan|BenchmarkHashGet|BenchmarkWireFrame|BenchmarkWALAppend|BenchmarkGroupCommit|BenchmarkShardedCommit|BenchmarkSnapshotAcquire|BenchmarkCommitParallel"

var microPackages = []string{".", "./internal/mvcc", "./internal/wire", "./internal/wal", "./internal/shard", "./internal/htap", "./internal/sts", "./internal/txn"}

// benchShards is the shard count BenchmarkShardedCommit scales to (its
// shards=N sub-benchmark); recorded in the baseline metadata.
const benchShards = 4

// Micro is one parsed `go test -bench` result line. GOMAXPROCS is the
// per-point parallelism the benchmark ran at (`go test -cpu` suffixes the
// name with -N): every benchmark appears once per entry in the CPU matrix,
// so scaling across cores is diffable point by point.
type Micro struct {
	Name       string             `json:"name"`
	GOMAXPROCS int                `json:"gomaxprocs"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"` // unit -> value, e.g. "ns/op": 70.1
}

// SeriesJSON flattens a labeled metrics series.
type SeriesJSON struct {
	Label  string       `json:"label"`
	Points [][2]float64 `json:"points"` // [seconds, value]
}

// FigureJSON is one paper-figure report.
type FigureJSON struct {
	ID     string       `json:"id"`
	Title  string       `json:"title"`
	Notes  []string     `json:"notes,omitempty"`
	Header []string     `json:"header,omitempty"`
	Rows   [][]string   `json:"rows,omitempty"`
	Series []SeriesJSON `json:"series,omitempty"`
}

// Baseline is the whole document. CPUs, GOMAXPROCS, CPUMatrix and Shards pin
// down the parallelism context the numbers were taken under — parallel and
// shard-scaling results are meaningless without knowing how many cores the
// run actually had. In particular, when CPUs is small the higher GOMAXPROCS
// points of the matrix are timeshared, not truly parallel.
type Baseline struct {
	Date      string `json:"date"`
	GoVersion string `json:"go"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	CPUs      int    `json:"cpus"`
	// GOMAXPROCS is the benchjson process's own value; the per-point value
	// each micro-benchmark ran at is Micro.GOMAXPROCS.
	GOMAXPROCS int `json:"gomaxprocs"`
	// CPUMatrix is the `go test -cpu` list the micro-benchmarks ran across.
	CPUMatrix string `json:"cpu_matrix"`
	// Shards is the shard count the sharded benchmarks scale up to
	// (BenchmarkShardedCommit runs shards=1 vs shards=N).
	Shards    int          `json:"shards"`
	BenchTime string       `json:"benchtime"`
	Quick     bool         `json:"quick_figures"`
	Micro     []Micro      `json:"micro"`
	Figures   []FigureJSON `json:"figures,omitempty"`
}

func main() {
	var (
		out       = flag.String("o", "", "output file (default BENCH_<today>.json)")
		benchtime = flag.String("benchtime", "200ms", "go test -benchtime for the micro-benchmarks")
		cpus      = flag.String("cpu", "1,4,16", "go test -cpu matrix for the micro-benchmarks")
		figs      = flag.String("figs", "all", "figure ids to run (comma-separated), or 'none'")
		quick     = flag.Bool("quick", true, "run the figure suite at quick (sub-second) scale")
	)
	flag.Parse()

	day := time.Now().UTC().Format("2006-01-02")
	path := *out
	if path == "" {
		path = "BENCH_" + day + ".json"
	}

	b := &Baseline{
		Date:       day,
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		CPUs:       runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		CPUMatrix:  *cpus,
		Shards:     benchShards,
		BenchTime:  *benchtime,
		Quick:      *quick,
	}

	micro, err := runMicro(*benchtime, *cpus)
	if err != nil {
		fatal(err)
	}
	b.Micro = micro

	if *figs != "none" {
		figures, err := runFigures(*figs, *quick)
		if err != nil {
			fatal(err)
		}
		b.Figures = figures
	}

	enc, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		fatal(err)
	}
	enc = append(enc, '\n')
	if err := os.WriteFile(path, enc, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("benchjson: %d micro-benchmarks, %d figures -> %s\n", len(b.Micro), len(b.Figures), path)
}

// runMicro shells out to `go test -bench` and parses the result lines. The
// benchmarks run sequentially in their own processes, exactly as a developer
// would run them, so the baseline reflects the numbers `go test -bench`
// prints. Each benchmark runs once per GOMAXPROCS value in the cpu matrix.
func runMicro(benchtime, cpus string) ([]Micro, error) {
	args := []string{"test", "-run", "^$", "-bench", microPattern, "-benchmem", "-benchtime", benchtime, "-cpu", cpus}
	args = append(args, microPackages...)
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	outb, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go test -bench: %w\n%s", err, outb)
	}
	var out []Micro
	for _, line := range strings.Split(string(outb), "\n") {
		m, ok := parseBenchLine(line)
		if ok {
			out = append(out, m)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no benchmark lines parsed from go test output")
	}
	return out, nil
}

// parseBenchLine parses one standard benchmark output line:
//
//	BenchmarkName-8   123456   70.1 ns/op   0 B/op   0 allocs/op   3.0 extra/unit
//
// Fields after the iteration count come in (value, unit) pairs. The trailing
// -N of the name is the GOMAXPROCS the point ran at (absent means 1); it is
// split into its own field so the same benchmark is diffable across the cpu
// matrix by name.
func parseBenchLine(line string) (Micro, bool) {
	f := strings.Fields(line)
	if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") {
		return Micro{}, false
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Micro{}, false
	}
	name, procs := splitCPUSuffix(f[0])
	m := Micro{Name: name, GOMAXPROCS: procs, Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return Micro{}, false
		}
		m.Metrics[f[i+1]] = v
	}
	return m, true
}

// splitCPUSuffix separates the -N GOMAXPROCS suffix `go test` appends to
// benchmark names (only when N > 1) from the name proper. Sub-benchmark
// segments like "/shards=4-16" keep everything but the final suffix.
func splitCPUSuffix(name string) (string, int) {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name, 1
	}
	n, err := strconv.Atoi(name[i+1:])
	if err != nil || n <= 0 {
		return name, 1
	}
	return name[:i], n
}

// runFigures runs the paper-figure suite in-process and captures the
// structured reports.
func runFigures(arg string, quick bool) ([]FigureJSON, error) {
	var ids []string
	if arg == "all" {
		ids = bench.Figures()
	} else {
		for _, part := range strings.Split(arg, ",") {
			if part = strings.TrimSpace(part); part != "" {
				ids = append(ids, part)
			}
		}
	}
	suite := bench.NewSuite(bench.SuiteConfig{Quick: quick})
	var out []FigureJSON
	for _, id := range ids {
		rep, err := suite.Run(id)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", id, err)
		}
		fj := FigureJSON{
			ID: rep.ID, Title: rep.Title, Notes: rep.Notes,
			Header: rep.Header, Rows: rep.Rows,
		}
		for _, s := range rep.Series {
			sj := SeriesJSON{Label: s.Label, Points: make([][2]float64, 0, len(s.Series.Points))}
			for _, p := range s.Series.Points {
				sj.Points = append(sj.Points, [2]float64{p.Elapsed.Seconds(), p.Value})
			}
			fj.Series = append(fj.Series, sj)
		}
		out = append(out, fj)
		fmt.Fprintf(os.Stderr, "benchjson: %s done\n", id)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
