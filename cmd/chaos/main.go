// Command chaos runs the deterministic network-chaos harness from
// internal/chaos against an in-process replicated cluster: a persistent
// primary, streaming replicas and a pooled client all wired through seeded
// fault-injecting proxies. Each seed produces one fixed nemesis schedule —
// partitions, connection-drop storms, refused dials, torn frames — while a
// concurrent bank workload runs, and the four invariants (snapshot
// conservation, no lost acked commits, replica convergence, GC-horizon
// liveness) are checked during and after the weather.
//
// A violation prints the seed that produced it; re-running with -seed <n>
// reproduces the same schedule.
//
// Usage:
//
//	chaos -seeds 1,2,3,4,5 -duration 1500ms
//	chaos -seed 7 -duration 10s -workers 8 -replicas 3
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"hybridgc/internal/chaos"
)

func main() {
	var (
		seed     = flag.Int64("seed", 0, "run exactly one seed (overrides -seeds)")
		seeds    = flag.String("seeds", "1,2,3,4,5", "comma-separated seed list")
		duration = flag.Duration("duration", 2*time.Second, "length of the chaos phase per seed")
		workers  = flag.Int("workers", 4, "concurrent transfer workers")
		accounts = flag.Int("accounts", 8, "bank accounts")
		replicas = flag.Int("replicas", 2, "streaming replicas")
		bound    = flag.Duration("horizon-bound", 3*time.Second, "max time a dead replica may pin the GC horizon")
		verbose  = flag.Bool("v", false, "print the executed nemesis schedule")
	)
	flag.Parse()

	var list []int64
	if *seed != 0 {
		list = []int64{*seed}
	} else {
		for _, f := range strings.Split(*seeds, ",") {
			n, err := strconv.ParseInt(strings.TrimSpace(f), 10, 64)
			if err != nil {
				fmt.Fprintf(os.Stderr, "chaos: bad seed %q: %v\n", f, err)
				os.Exit(2)
			}
			list = append(list, n)
		}
	}

	failed := 0
	for _, s := range list {
		rep, err := chaos.Run(chaos.Options{
			Seed: s, Duration: *duration,
			Workers: *workers, Accounts: *accounts, Replicas: *replicas,
			HorizonBound: *bound,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "chaos: seed %d failed to start: %v\n", s, err)
			os.Exit(1)
		}
		fmt.Println(rep.Summary())
		if *verbose {
			for _, step := range rep.Schedule {
				fmt.Println("  nemesis:", step)
			}
		}
		if !rep.Passed() {
			failed++
			fmt.Printf("  reproduce with: go run ./cmd/chaos -seed %d -duration %s\n", s, *duration)
		}
	}
	if failed > 0 {
		fmt.Printf("chaos: %d of %d seeds FAILED\n", failed, len(list))
		os.Exit(1)
	}
	fmt.Printf("chaos: all %d seeds passed\n", len(list))
}
