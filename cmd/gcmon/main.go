// Command gcmon reproduces the HANA system-load view of Figure 2 as a
// terminal ticker: it runs the mixed OLTP/OLAP workload and prints the
// figure's indicators once per interval — Active Versions, the Active
// Commit ID Range (current CID minus the oldest active snapshot timestamp),
// and the estimated version-space memory — so the version-space overflow
// phenomenon, and its disappearance under HybridGC, can be watched live.
//
// With -addr it monitors a running hybridgcd instead: each tick is one STATS
// round trip, so the same indicator columns describe a remote engine — for
// example one being driven by `tpcc -addr` from another terminal.
//
// Usage:
//
//	gcmon -gc none -duration 10s    # Figure 2: unbounded growth
//	gcmon -gc hg   -duration 10s    # HybridGC keeps it flat
//	gcmon -addr 127.0.0.1:7654      # watch a remote server's indicators
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"sync"
	"time"

	"hybridgc/internal/client"
	"hybridgc/internal/core"
	"hybridgc/internal/gc"
	"hybridgc/internal/tpcc"
	"hybridgc/internal/wal"
	"hybridgc/internal/wire"
	"hybridgc/internal/workload"
)

func main() {
	var (
		duration = flag.Duration("duration", 10*time.Second, "run duration")
		interval = flag.Duration("interval", 500*time.Millisecond, "indicator print interval")
		mode     = flag.String("gc", "none", "garbage collection mode: none, gt, gttg, hg")
		cursor   = flag.Bool("cursor", true, "hold a long-duration cursor on STOCK")
		soft     = flag.Int64("soft", 0, "version-budget soft watermark (0 disables the budget)")
		hard     = flag.Int64("hard", 0, "version-budget hard watermark (0 derives 2*soft)")
		addr     = flag.String("addr", "", "hybridgcd address; empty runs the workload in-process")
		token    = flag.String("token", "", "auth token for -addr")
	)
	flag.Parse()

	if *addr != "" {
		monitorRemote(*addr, *token, *duration, *interval)
		return
	}

	var m workload.Mode
	switch strings.ToLower(*mode) {
	case "none":
		m = workload.ModeNone
	case "gt":
		m = workload.ModeGT
	case "gttg", "gt+tg":
		m = workload.ModeGTTG
	case "hg", "hybrid":
		m = workload.ModeHG
	default:
		fmt.Fprintf(os.Stderr, "unknown -gc mode %q\n", *mode)
		os.Exit(2)
	}

	base := gc.Periods{GT: 50 * time.Millisecond, TG: 150 * time.Millisecond, SI: 500 * time.Millisecond}
	db, err := core.Open(core.Config{
		GC:                 m.Periods(base),
		LongLivedThreshold: 100 * time.Millisecond,
		VersionBudget:      core.VersionBudget{Soft: *soft, Hard: *hard},
	})
	if err != nil {
		fatal(err)
	}
	defer db.Close()
	driver, err := tpcc.New(db, tpcc.Config{Warehouses: 2, Items: 150, CustomersPerDistrict: 20})
	if err != nil {
		fatal(err)
	}
	if err := driver.Load(); err != nil {
		fatal(err)
	}
	if m != workload.ModeNone {
		db.GC().Start()
		defer db.GC().Stop()
	}
	if *cursor {
		cur, err := db.OpenCursor(driver.StockTableID())
		if err != nil {
			fatal(err)
		}
		defer cur.Close()
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 1; w <= driver.Config().Warehouses; w++ {
		wg.Add(1)
		go func(wk *tpcc.Worker) {
			defer wg.Done()
			_ = wk.Run(1<<62, stop)
		}(driver.NewWorker(w))
	}

	budgeted := db.PressureStats().Enabled
	fmt.Printf("gcmon: GC=%s cursor=%v budget=%v — the Figure 2 indicators\n", m, *cursor, budgeted)
	fmt.Printf("%-8s %-16s %-22s %-14s %-10s %s\n",
		"t", "Active Versions", "Active CID Range", "Used Memory", "Reclaimed", "Pressure")
	tick := time.NewTicker(*interval)
	defer tick.Stop()
	deadline := time.After(*duration)
	start := time.Now()
loop:
	for {
		select {
		case <-tick.C:
			st := db.Stats()
			mem := st.VersionsLiveBytes
			fmt.Printf("%-8s %-16d %-22d %-14s %-10d %s\n",
				fmt.Sprintf("%.1fs", time.Since(start).Seconds()),
				st.VersionsLive, st.ActiveCIDRange, fmtBytes(mem), st.VersionsReclaimed,
				fmtPressure(st))
		case <-deadline:
			break loop
		}
	}
	close(stop)
	wg.Wait()
	st := db.Stats()
	fmt.Printf("\nfinal: versions=%d reclaimed=%d migrated=%d collision=%.2f failstop=%v\n",
		st.VersionsLive, st.VersionsReclaimed, st.VersionsMigrated, st.Hash.CollisionRatio, st.FailStop)
	if p := st.Pressure; p.Enabled {
		fmt.Printf("pressure: level=%s live=%d/%d (%.0f%%) softtrips=%d emergencies=%d backpressured=%d rejected=%d evicted=%d\n",
			p.Level, p.Live, p.Hard, 100*p.Utilization,
			p.SoftTrips, p.Emergencies, p.Backpressured, p.Rejected, p.Evicted)
	}
	fmt.Println("Figure 9 regions:", gc.CurrentRegions(db.Manager()))
}

// monitorRemote prints the same indicator columns from a running hybridgcd,
// one STATS round trip per tick.
func monitorRemote(addr, token string, duration, interval time.Duration) {
	cl, err := client.Dial(client.Config{Addr: addr, Token: token, MaxConns: 1})
	if err != nil {
		fatal(err)
	}
	defer cl.Close()
	fmt.Printf("gcmon: monitoring %s — the Figure 2 indicators\n", addr)
	fmt.Printf("%-8s %-16s %-22s %-14s %-10s %s\n",
		"t", "Active Versions", "Active CID Range", "Used Memory", "Reclaimed", "Pressure")
	tick := time.NewTicker(interval)
	defer tick.Stop()
	deadline := time.After(duration)
	start := time.Now()
	for {
		select {
		case <-tick.C:
			st, err := cl.Stats()
			if err != nil {
				fatal(err)
			}
			fmt.Printf("%-8s %-16d %-22d %-14s %-10d %s\n",
				fmt.Sprintf("%.1fs", time.Since(start).Seconds()),
				st.VersionsLive, st.ActiveCIDRange, fmtBytes(st.VersionsLiveBytes),
				st.VersionsReclaimed, fmtRemotePressure(st))
			for _, line := range fmtShards(st) {
				fmt.Println(line)
			}
			for _, line := range fmtHTAP(st) {
				fmt.Println(line)
			}
			for _, line := range fmtRepl(st) {
				fmt.Println(line)
			}
		case <-deadline:
			st, err := cl.Stats()
			if err != nil {
				fatal(err)
			}
			fmt.Printf("\nfinal: versions=%d reclaimed=%d migrated=%d cursors open=%d failstop=%v\n",
				st.VersionsLive, st.VersionsReclaimed, st.VersionsMigrated, st.CursorsOpen, st.FailStop)
			for _, line := range fmtShards(st) {
				fmt.Println(line)
			}
			for _, line := range fmtHTAP(st) {
				fmt.Println(line)
			}
			for _, line := range fmtRepl(st) {
				fmt.Println(line)
			}
			return
		}
	}
}

// fmtShards renders one row per shard of a sharded server, under the
// aggregate indicator row. The slice is empty for a single-node server, so
// the classic display is untouched. GC horizons are per-shard by design —
// seeing shard 2's horizon stall under a pinned cursor while the others keep
// advancing is the point of the view.
func fmtShards(st wire.Stats) []string {
	if len(st.Shards) == 0 {
		return nil
	}
	lines := make([]string, 0, len(st.Shards))
	for i, s := range st.Shards {
		flag := ""
		if s.FailStop {
			flag = " FAILSTOP"
		}
		lines = append(lines, fmt.Sprintf(
			"  shard %-2d live=%-10d horizon=%-10d cid=%-10d reclaimed=%-10d snaps=%-4d committed=%d%s",
			i, s.VersionsLive, s.GlobalHorizon, s.CurrentCID, s.VersionsReclaimed,
			s.ActiveSnapshots, s.TxnsCommitted, flag))
	}
	return lines
}

// fmtHTAP renders the column-lane state carried in a remote STATS payload:
// one line per lane-enabled table showing how much of it is columnar, what
// still rides the row-store delta or dirty set, and how far the migrator's
// watermark trails the commit timestamp. Empty when no lanes are enabled,
// so the classic display is untouched.
func fmtHTAP(st wire.Stats) []string {
	lines := make([]string, 0, len(st.HTAP))
	for _, h := range st.HTAP {
		lines = append(lines, fmt.Sprintf(
			"  htap: %-12s chunks=%-4d rows=%-10d delta=%-8d dirty=%-8d migrated=%-10d wm=%-10d lag=%d",
			h.Name, h.Chunks, h.ChunkRows, h.DeltaRows, h.DirtyRows, h.MigratedRows, h.Watermark, h.Lag))
	}
	return lines
}

// fmtRepl renders the replication state carried in a remote STATS payload:
// on a primary, one line per known replica (applied position, segment lag,
// pinned snapshot timestamp, report age, demotion); on a replica, its
// applied cursor against the primary's stream head.
func fmtRepl(st wire.Stats) []string {
	switch st.ReplRole {
	case "primary":
		lines := []string{fmt.Sprintf("  repl: primary head=%s sent=%d demotions=%d",
			wal.LSN(st.ReplPrimaryLSN), st.ReplRecordsSent, st.ReplDemotions)}
		for _, r := range st.Replicas {
			state := "connected"
			if r.Demoted {
				state = "DEMOTED"
			} else if !r.Connected {
				state = "away"
			}
			pin := "-"
			if r.PinnedSTS != 0 {
				pin = fmt.Sprintf("%d", r.PinnedSTS)
			}
			lines = append(lines, fmt.Sprintf("  repl:   %-12s %-9s applied=%-12s lag=%dseg pin=%s age=%s",
				r.ID, state, wal.LSN(r.AppliedLSN), r.SegmentLag, pin, r.LastReportAge.Truncate(time.Millisecond)))
		}
		return lines
	case "replica":
		lines := []string{fmt.Sprintf("  repl: replica of %s applied=%s head=%s applied-records=%d reconnects=%d",
			st.ReplUpstream, wal.LSN(st.ReplAppliedLSN), wal.LSN(st.ReplPrimaryLSN),
			st.ReplRecordsApplied, st.ReplReconnects)}
		// Read routing: how often gated reads had to wait for the applier,
		// and how often they bounced back to the pool (replica behind the
		// session token past the wait budget).
		if st.ReadGateWaits > 0 || st.ReadGateBounces > 0 {
			lag := int64(st.ReplPrimaryLSN) - int64(st.ReplAppliedLSN)
			if lag < 0 {
				lag = 0
			}
			lines = append(lines, fmt.Sprintf("  repl:   read-gate waits=%d bounces=%d lag=%d",
				st.ReadGateWaits, st.ReadGateBounces, lag))
		}
		return lines
	default:
		return nil
	}
}

// fmtRemotePressure is fmtPressure over the wire-stats shape.
func fmtRemotePressure(st wire.Stats) string {
	if !st.PressureEnabled {
		return "-"
	}
	var util float64
	if st.PressureHard > 0 {
		util = float64(st.PressureLive) / float64(st.PressureHard)
	}
	s := fmt.Sprintf("%s %.0f%%", st.PressureLevel, 100*util)
	if st.PressureRejected > 0 || st.PressureEvicted > 0 {
		s += fmt.Sprintf(" (rej=%d evict=%d)", st.PressureRejected, st.PressureEvicted)
	}
	return s
}

// fmtPressure renders the degradation-ladder column: "-" without a budget,
// otherwise the current rung and hard-watermark utilization.
func fmtPressure(st core.Stats) string {
	p := st.Pressure
	if !p.Enabled {
		return "-"
	}
	s := fmt.Sprintf("%s %.0f%%", p.Level, 100*p.Utilization)
	if p.Rejected > 0 || p.Evicted > 0 {
		s += fmt.Sprintf(" (rej=%d evict=%d)", p.Rejected, p.Evicted)
	}
	return s
}

func fmtBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.2fGiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.2fMiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.2fKiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gcmon:", err)
	os.Exit(1)
}
