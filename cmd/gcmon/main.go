// Command gcmon reproduces the HANA system-load view of Figure 2 as a
// terminal ticker: it runs the mixed OLTP/OLAP workload and prints the
// figure's indicators once per interval — Active Versions, the Active
// Commit ID Range (current CID minus the oldest active snapshot timestamp),
// and the estimated version-space memory — so the version-space overflow
// phenomenon, and its disappearance under HybridGC, can be watched live.
//
// Usage:
//
//	gcmon -gc none -duration 10s    # Figure 2: unbounded growth
//	gcmon -gc hg   -duration 10s    # HybridGC keeps it flat
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"sync"
	"time"

	"hybridgc/internal/core"
	"hybridgc/internal/gc"
	"hybridgc/internal/tpcc"
	"hybridgc/internal/workload"
)

func main() {
	var (
		duration = flag.Duration("duration", 10*time.Second, "run duration")
		interval = flag.Duration("interval", 500*time.Millisecond, "indicator print interval")
		mode     = flag.String("gc", "none", "garbage collection mode: none, gt, gttg, hg")
		cursor   = flag.Bool("cursor", true, "hold a long-duration cursor on STOCK")
	)
	flag.Parse()

	var m workload.Mode
	switch strings.ToLower(*mode) {
	case "none":
		m = workload.ModeNone
	case "gt":
		m = workload.ModeGT
	case "gttg", "gt+tg":
		m = workload.ModeGTTG
	case "hg", "hybrid":
		m = workload.ModeHG
	default:
		fmt.Fprintf(os.Stderr, "unknown -gc mode %q\n", *mode)
		os.Exit(2)
	}

	base := gc.Periods{GT: 50 * time.Millisecond, TG: 150 * time.Millisecond, SI: 500 * time.Millisecond}
	db, err := core.Open(core.Config{GC: m.Periods(base), LongLivedThreshold: 100 * time.Millisecond})
	if err != nil {
		fatal(err)
	}
	defer db.Close()
	driver, err := tpcc.New(db, tpcc.Config{Warehouses: 2, Items: 150, CustomersPerDistrict: 20})
	if err != nil {
		fatal(err)
	}
	if err := driver.Load(); err != nil {
		fatal(err)
	}
	if m != workload.ModeNone {
		db.GC().Start()
		defer db.GC().Stop()
	}
	if *cursor {
		cur, err := db.OpenCursor(driver.StockTableID())
		if err != nil {
			fatal(err)
		}
		defer cur.Close()
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 1; w <= driver.Config().Warehouses; w++ {
		wg.Add(1)
		go func(wk *tpcc.Worker) {
			defer wg.Done()
			_ = wk.Run(1<<62, stop)
		}(driver.NewWorker(w))
	}

	fmt.Printf("gcmon: GC=%s cursor=%v — the Figure 2 indicators\n", m, *cursor)
	fmt.Printf("%-8s %-16s %-22s %-14s %s\n",
		"t", "Active Versions", "Active CID Range", "Used Memory", "Reclaimed")
	tick := time.NewTicker(*interval)
	defer tick.Stop()
	deadline := time.After(*duration)
	start := time.Now()
loop:
	for {
		select {
		case <-tick.C:
			st := db.Stats()
			mem := st.VersionsLiveBytes
			fmt.Printf("%-8s %-16d %-22d %-14s %d\n",
				fmt.Sprintf("%.1fs", time.Since(start).Seconds()),
				st.VersionsLive, st.ActiveCIDRange, fmtBytes(mem), st.VersionsReclaimed)
		case <-deadline:
			break loop
		}
	}
	close(stop)
	wg.Wait()
	st := db.Stats()
	fmt.Printf("\nfinal: versions=%d reclaimed=%d migrated=%d collision=%.2f\n",
		st.VersionsLive, st.VersionsReclaimed, st.VersionsMigrated, st.Hash.CollisionRatio)
	fmt.Println("Figure 9 regions:", gc.CurrentRegions(db.Manager()))
}

func fmtBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.2fGiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.2fMiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.2fKiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gcmon:", err)
	os.Exit(1)
}
