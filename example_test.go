package hybridgc_test

import (
	"fmt"

	"hybridgc"
)

// Example shows the minimal write/read/GC cycle: updates append versions,
// a HybridGC pass reclaims the obsolete ones and migrates the newest image
// into the table space.
func Example() {
	db := hybridgc.MustOpen(hybridgc.Config{})
	defer db.Close()

	tid, _ := db.CreateTable("ACCOUNTS")
	var rid hybridgc.RID
	db.Exec(hybridgc.StmtSI, nil, func(tx *hybridgc.Tx) error {
		var err error
		rid, err = tx.Insert(tid, []byte("balance=100"))
		return err
	})
	db.Exec(hybridgc.StmtSI, nil, func(tx *hybridgc.Tx) error {
		return tx.Update(tid, rid, []byte("balance=90"))
	})

	fmt.Println("live versions before GC:", db.Stats().VersionsLive)
	db.GC().Collect()
	fmt.Println("live versions after GC: ", db.Stats().VersionsLive)
	db.Exec(hybridgc.StmtSI, nil, func(tx *hybridgc.Tx) error {
		img, err := tx.Get(tid, rid)
		fmt.Println("value:", string(img))
		return err
	})
	// Output:
	// live versions before GC: 2
	// live versions after GC:  0
	// value: balance=90
}

// ExampleDB_OpenCursor demonstrates the long-lived cursor that motivates
// the paper: its snapshot is pinned at open time, so later updates stay
// invisible to it — and would block the conventional collector.
func ExampleDB_OpenCursor() {
	db := hybridgc.MustOpen(hybridgc.Config{})
	defer db.Close()
	tid, _ := db.CreateTable("STOCK")
	var rid hybridgc.RID
	db.Exec(hybridgc.StmtSI, nil, func(tx *hybridgc.Tx) error {
		var err error
		rid, err = tx.Insert(tid, []byte("qty=50"))
		return err
	})

	cur, _ := db.OpenCursor(tid)
	defer cur.Close()
	db.Exec(hybridgc.StmtSI, nil, func(tx *hybridgc.Tx) error {
		return tx.Update(tid, rid, []byte("qty=49"))
	})

	rows, stats, _ := cur.Fetch(10)
	fmt.Printf("cursor sees %q after the update (traversed %d versions)\n",
		rows[0], stats.Traversed)
	// Output:
	// cursor sees "qty=50" after the update (traversed 2 versions)
}

// ExampleDB_Begin_transSI shows transaction-level snapshot isolation with a
// declared table scope: reads repeat, undeclared access fails, and the
// declared scope makes the snapshot eligible for table garbage collection.
func ExampleDB_Begin_transSI() {
	db := hybridgc.MustOpen(hybridgc.Config{})
	defer db.Close()
	a, _ := db.CreateTable("A")
	b, _ := db.CreateTable("B")
	var rid hybridgc.RID
	db.Exec(hybridgc.StmtSI, nil, func(tx *hybridgc.Tx) error {
		var err error
		rid, err = tx.Insert(a, []byte("v1"))
		if err != nil {
			return err
		}
		_, err = tx.Insert(b, []byte("w1"))
		return err
	})

	tx := db.Begin(hybridgc.TransSI, a) // declares scope {A}
	defer tx.Abort()
	img, _ := tx.Get(a, rid)
	fmt.Println("declared read:", string(img))
	if _, err := tx.Get(b, 1); err != nil {
		fmt.Println("undeclared read fails:", err != nil)
	}
	// Output:
	// declared read: v1
	// undeclared read fails: true
}
