// Package oracle is a randomized model checker for the engine: it executes
// a random single-threaded history of inserts, updates, deletes, aborts,
// snapshot opens/closes and garbage collection passes, while maintaining an
// independent sequential model of what every commit made visible. After
// every step it validates point reads and full scans at randomly chosen
// active snapshots against the model — so any collector reclaiming a
// version some snapshot still needs, or any visibility bug in the engine,
// surfaces as a concrete divergence.
package oracle

import (
	"fmt"
	"math/rand"
	"time"

	"hybridgc/internal/core"
	"hybridgc/internal/gc"
	"hybridgc/internal/ts"
	"hybridgc/internal/txn"
)

// Oracle drives one checked history.
type Oracle struct {
	db  *core.DB
	tid ts.TableID
	r   *rand.Rand

	model *Model
	rids  []ts.RID

	snaps      []*heldSnap
	collectors []gc.Collector

	// Steps executed, for reporting.
	Steps int
	// Reclaimed accumulates versions collected during the run.
	Reclaimed int64
}

type heldSnap struct {
	s  *txn.Snapshot
	at ts.CID
	// parts restricts which rows this snapshot may access (nil = whole
	// table). The oracle only validates reads the snapshot is entitled to:
	// once the table collector confines a partition-scoped snapshot,
	// versions outside its partitions may legitimately be reclaimed past
	// its timestamp.
	parts map[ts.PartitionID]bool
}

// covers reports whether the snapshot's scope includes the record.
func (h *heldSnap) covers(o *Oracle, rid ts.RID) bool {
	if h.parts == nil {
		return true
	}
	p, ok := o.db.PartitionOf(ts.RecordKey{Table: o.tid, RID: rid})
	return ok && h.parts[p]
}

// New builds an oracle over a fresh database. Collection never runs
// periodically; the oracle invokes collectors as explicit random steps so
// every divergence is attributable.
func New(seed int64) (*Oracle, error) {
	db, err := core.Open(core.Config{
		HashBuckets:        1 << 8, // tiny table: exercise bucket collisions too
		Txn:                txn.Config{SynchronousPropagation: true},
		LongLivedThreshold: time.Nanosecond, // every held snapshot is TG-eligible
	})
	if err != nil {
		return nil, err
	}
	tid, err := db.CreateTable("ORACLE")
	if err != nil {
		db.Close()
		return nil, err
	}
	// The table is partitioned so the schedule also exercises
	// partition-scoped snapshots and per-partition horizons.
	if err := db.SetTablePartitions(tid, oraclePartitions); err != nil {
		db.Close()
		return nil, err
	}
	m := db.Manager()
	o := &Oracle{
		db:    db,
		tid:   tid,
		r:     rand.New(rand.NewSource(seed)),
		model: NewModel(),
		collectors: []gc.Collector{
			gc.NewSingleTimestamp(m),
			gc.NewGroupTimestamp(m),
			db.GC().TG, // partition-resolver wired by the engine
			gc.NewInterval(m),
			gc.NewGroupInterval(m),
			db.GC(), // the full hybrid pass
		},
	}
	return o, nil
}

// oraclePartitions is the partition count of the checked table.
const oraclePartitions = 3

// Close releases held snapshots and the database.
func (o *Oracle) Close() {
	for _, h := range o.snaps {
		h.s.Release()
	}
	o.snaps = nil
	o.db.Close()
}

// modelRead answers a point read from the model.
func (o *Oracle) modelRead(rid ts.RID, at ts.CID) (string, bool) {
	return o.model.Read(ts.RecordKey{Table: o.tid, RID: rid}, at)
}

// engineRead answers the same read from the engine.
func (o *Oracle) engineRead(rid ts.RID, at ts.CID) (string, bool, error) {
	// Reads at an explicit timestamp go through a scoped helper transaction
	// whose statement snapshot is replaced by direct record resolution: the
	// engine exposes timestamped reads via cursors only, so the oracle reads
	// through ReadAt below.
	img, ok := o.db.ReadAt(o.tid, rid, at)
	return string(img), ok, nil
}

// Step executes one random action followed by validation. It returns an
// error on any divergence.
func (o *Oracle) Step() error {
	o.Steps++
	switch n := o.r.Intn(100); {
	case n < 30:
		if err := o.doInsert(); err != nil {
			return err
		}
	case n < 60:
		if err := o.doUpdate(); err != nil {
			return err
		}
	case n < 68:
		if err := o.doDelete(); err != nil {
			return err
		}
	case n < 76:
		if err := o.doAbortedTxn(); err != nil {
			return err
		}
	case n < 84:
		o.doSnapshotChurn()
	default:
		c := o.collectors[o.r.Intn(len(o.collectors))]
		st := c.Collect()
		o.Reclaimed += st.Versions
	}
	return o.validate()
}

// Run executes steps actions.
func (o *Oracle) Run(steps int) error {
	for i := 0; i < steps; i++ {
		if err := o.Step(); err != nil {
			return fmt.Errorf("step %d: %w", o.Steps, err)
		}
	}
	return nil
}

func (o *Oracle) commitCID() ts.CID { return o.db.Manager().CurrentTS() }

func (o *Oracle) doInsert() error {
	img := fmt.Sprintf("v%d", o.Steps)
	var rid ts.RID
	err := o.db.Exec(txn.StmtSI, nil, func(tx *core.Tx) error {
		var err error
		rid, err = tx.Insert(o.tid, []byte(img))
		return err
	})
	if err != nil {
		return err
	}
	o.model.Apply(ts.RecordKey{Table: o.tid, RID: rid}, o.commitCID(), img)
	o.rids = append(o.rids, rid)
	return nil
}

// liveRID picks a random record that is live in the model's latest state.
func (o *Oracle) liveRID() (ts.RID, bool) {
	if len(o.rids) == 0 {
		return 0, false
	}
	for try := 0; try < 8; try++ {
		rid := o.rids[o.r.Intn(len(o.rids))]
		if _, ok := o.modelRead(rid, ts.Infinity-1); ok {
			return rid, true
		}
	}
	return 0, false
}

func (o *Oracle) doUpdate() error {
	rid, ok := o.liveRID()
	if !ok {
		return o.doInsert()
	}
	img := fmt.Sprintf("v%d", o.Steps)
	err := o.db.Exec(txn.StmtSI, nil, func(tx *core.Tx) error {
		return tx.Update(o.tid, rid, []byte(img))
	})
	if err != nil {
		return err
	}
	o.model.Apply(ts.RecordKey{Table: o.tid, RID: rid}, o.commitCID(), img)
	return nil
}

func (o *Oracle) doDelete() error {
	rid, ok := o.liveRID()
	if !ok {
		return nil
	}
	err := o.db.Exec(txn.StmtSI, nil, func(tx *core.Tx) error {
		return tx.Delete(o.tid, rid)
	})
	if err != nil {
		return err
	}
	o.model.Apply(ts.RecordKey{Table: o.tid, RID: rid}, o.commitCID(), "")
	return nil
}

// doAbortedTxn writes several versions then aborts; the model is untouched.
func (o *Oracle) doAbortedTxn() error {
	tx := o.db.Begin(txn.StmtSI)
	defer tx.Abort()
	if _, err := tx.Insert(o.tid, []byte("doomed")); err != nil {
		return err
	}
	if rid, ok := o.liveRID(); ok {
		if err := tx.Update(o.tid, rid, []byte("doomed")); err != nil && err != core.ErrWriteConflict {
			return err
		}
	}
	return nil
}

// doSnapshotChurn opens or closes a long-lived snapshot. Opened snapshots
// randomly declare a table scope or a partition scope (the finer §4.3
// granularity); the model makes no distinction — visibility at the pinned
// timestamp must hold either way for the rows the snapshot may access, and
// the oracle only validates snapshots against rows in their scope.
func (o *Oracle) doSnapshotChurn() {
	if len(o.snaps) < 5 && o.r.Intn(2) == 0 {
		var s *txn.Snapshot
		var parts map[ts.PartitionID]bool
		if o.r.Intn(2) == 0 {
			p := ts.PartitionID(o.r.Intn(oraclePartitions))
			s = o.db.Manager().AcquireSnapshotPartitions(txn.KindCursor, o.tid, []ts.PartitionID{p})
			parts = map[ts.PartitionID]bool{p: true}
		} else {
			s = o.db.Manager().AcquireSnapshot(txn.KindCursor, []ts.TableID{o.tid})
		}
		o.snaps = append(o.snaps, &heldSnap{s: s, at: s.TS(), parts: parts})
		return
	}
	if len(o.snaps) > 0 {
		i := o.r.Intn(len(o.snaps))
		o.snaps[i].s.Release()
		o.snaps = append(o.snaps[:i], o.snaps[i+1:]...)
	}
}

// validate compares engine reads against the model at every held snapshot
// and at "now", over a random sample of records, plus a scan check. Reads
// are only validated within each snapshot's declared scope: that is the
// entitlement the engine guarantees (and enforcing it is what lets the
// table collector reclaim outside the scope).
func (o *Oracle) validate() error {
	now := &heldSnap{at: o.commitCID()}
	for _, h := range append([]*heldSnap{now}, o.snaps...) {
		for probe := 0; probe < 6 && len(o.rids) > 0; probe++ {
			rid := o.rids[o.r.Intn(len(o.rids))]
			if !h.covers(o, rid) {
				continue
			}
			wantImg, wantOK := o.modelRead(rid, h.at)
			gotImg, gotOK, err := o.engineRead(rid, h.at)
			if err != nil {
				return err
			}
			if gotOK != wantOK || (gotOK && gotImg != wantImg) {
				return fmt.Errorf("read(rid=%d, at=%d): engine %q/%v, model %q/%v",
					rid, h.at, gotImg, gotOK, wantImg, wantOK)
			}
		}
		// Row-count check over the rows the snapshot covers.
		wantCount, gotCount := 0, 0
		for _, rid := range o.rids {
			if !h.covers(o, rid) {
				continue
			}
			if _, ok := o.modelRead(rid, h.at); ok {
				wantCount++
			}
			if _, ok := o.db.ReadAt(o.tid, rid, h.at); ok {
				gotCount++
			}
		}
		if gotCount != wantCount {
			return fmt.Errorf("scan(at=%d): engine %d rows, model %d", h.at, gotCount, wantCount)
		}
	}
	return nil
}
