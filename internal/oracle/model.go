package oracle

import (
	"sort"

	"hybridgc/internal/ts"
)

// Event is one committed effect on a record: the commit identifier and the
// resulting image ("" means deleted).
type Event struct {
	CID ts.CID
	Img string
}

// Model is a sequential model of committed state: per record, the ordered
// history of committed images. It answers the same question the engine's
// MVCC read path answers — "what does a snapshot at CID see?" — from plain
// bookkeeping, so engine reads can be validated against it. The oracle's
// randomized checker builds one alongside its live history, and the
// crash-matrix harness builds one from acknowledged commits to validate
// recovered state.
type Model struct {
	hist map[ts.RecordKey][]Event
	max  ts.CID
}

// NewModel creates an empty model.
func NewModel() *Model {
	return &Model{hist: make(map[ts.RecordKey][]Event)}
}

// Apply records one committed effect. Events must be applied in CID order
// per key (the natural order of a single-writer history).
func (m *Model) Apply(key ts.RecordKey, cid ts.CID, img string) {
	m.hist[key] = append(m.hist[key], Event{CID: cid, Img: img})
	if cid > m.max {
		m.max = cid
	}
}

// Read answers a point read at snapshot timestamp at: the image of the
// latest event with CID <= at, and whether the record exists (a deletion or
// absence of events reads as not-found).
func (m *Model) Read(key ts.RecordKey, at ts.CID) (string, bool) {
	var img string
	found := false
	for _, e := range m.hist[key] {
		if e.CID > at {
			break
		}
		img = e.Img
		found = e.Img != ""
	}
	return img, found
}

// Keys lists every record the model has seen, sorted (table, then RID) for
// deterministic iteration.
func (m *Model) Keys() []ts.RecordKey {
	out := make([]ts.RecordKey, 0, len(m.hist))
	for k := range m.hist {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Table != out[j].Table {
			return out[i].Table < out[j].Table
		}
		return out[i].RID < out[j].RID
	})
	return out
}

// MaxCID returns the largest commit identifier applied.
func (m *Model) MaxCID() ts.CID { return m.max }

// Clone returns an independent copy (the crash harness forks the model to
// build the with-pending-commit alternative).
func (m *Model) Clone() *Model {
	c := &Model{hist: make(map[ts.RecordKey][]Event, len(m.hist)), max: m.max}
	for k, evs := range m.hist {
		c.hist[k] = append([]Event(nil), evs...)
	}
	return c
}
