package oracle

import (
	"testing"
)

func TestOracleShortHistories(t *testing.T) {
	// Many short histories with different seeds cover more interleavings of
	// snapshot churn and collector choice than one long run.
	for seed := int64(1); seed <= 12; seed++ {
		o, err := New(seed)
		if err != nil {
			t.Fatal(err)
		}
		if err := o.Run(300); err != nil {
			o.Close()
			t.Fatalf("seed %d: %v", seed, err)
		}
		o.Close()
	}
}

func TestOracleLongHistory(t *testing.T) {
	if testing.Short() {
		t.Skip("long randomized run")
	}
	o, err := New(424242)
	if err != nil {
		t.Fatal(err)
	}
	defer o.Close()
	if err := o.Run(4000); err != nil {
		t.Fatal(err)
	}
	if o.Reclaimed == 0 {
		t.Fatal("the random schedule never reclaimed anything — collectors untested")
	}
	t.Logf("steps=%d reclaimed=%d", o.Steps, o.Reclaimed)
}
