package metrics

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonic event counter. The zero value is ready to use; it
// is safe for concurrent use and cheap enough for hot paths (one atomic add).
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// CounterSet is a named registry of counters, for subsystems that want to
// expose their event counts by name (e.g. degradation-ladder transitions).
type CounterSet struct {
	mu sync.Mutex
	m  map[string]*Counter
}

// NewCounterSet creates an empty counter registry.
func NewCounterSet() *CounterSet {
	return &CounterSet{m: make(map[string]*Counter)}
}

// Get returns the named counter, creating it on first use.
func (s *CounterSet) Get(name string) *Counter {
	s.mu.Lock()
	defer s.mu.Unlock()
	c, ok := s.m[name]
	if !ok {
		c = &Counter{}
		s.m[name] = c
	}
	return c
}

// Snapshot returns the current value of every counter, keyed by name.
func (s *CounterSet) Snapshot() map[string]int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]int64, len(s.m))
	for n, c := range s.m {
		out[n] = c.Value()
	}
	return out
}

// Names lists the registered counter names, sorted.
func (s *CounterSet) Names() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.m))
	for n := range s.m {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
