package metrics

import (
	"sync/atomic"
	"testing"
	"time"
)

func TestSamplerGaugeAndRate(t *testing.T) {
	s := NewSampler(time.Hour) // periodic ticks disabled in practice
	var gauge atomic.Int64
	var counter atomic.Int64
	s.TrackGauge("g", func() float64 { return float64(gauge.Load()) })
	s.TrackRate("r", counter.Load)
	s.Start()

	gauge.Store(5)
	counter.Store(100)
	time.Sleep(2 * time.Millisecond)
	s.Sample()
	gauge.Store(9)
	counter.Store(300)
	time.Sleep(2 * time.Millisecond)
	s.Stop()

	g := s.Get("g")
	if len(g.Points) < 2 || g.Points[0].Value != 5 || g.Last() != 9 {
		t.Fatalf("gauge series = %+v", g)
	}
	if g.Max() != 9 || g.Mean() <= 0 {
		t.Fatalf("gauge aggregates wrong: %s", g)
	}
	r := s.Get("r")
	for _, p := range r.Points {
		if p.Value < 0 {
			t.Fatalf("negative rate: %+v", r)
		}
	}
	if r.Points[0].Value == 0 {
		t.Fatalf("first rate sample should observe 100 increments: %+v", r)
	}
	if len(s.Names()) != 2 {
		t.Fatalf("names = %v", s.Names())
	}
	if unk := s.Get("missing"); len(unk.Points) != 0 {
		t.Fatal("missing series must be empty")
	}
	// Stop twice is safe; Start after Stop is a fresh run.
	s.Stop()
}

func TestSamplerPeriodic(t *testing.T) {
	s := NewSampler(time.Millisecond)
	var n atomic.Int64
	s.TrackGauge("n", func() float64 { return float64(n.Add(1)) })
	s.Start()
	time.Sleep(20 * time.Millisecond)
	s.Stop()
	if got := len(s.Get("n").Points); got < 3 {
		t.Fatalf("periodic sampling produced %d points", got)
	}
}

func TestHistogram(t *testing.T) {
	var h Histogram
	if h.Mean() != 0 || h.Percentile(50) != 0 || h.Count() != 0 {
		t.Fatal("empty histogram must read zero")
	}
	for i := 1; i <= 100; i++ {
		h.Record(time.Duration(i) * time.Millisecond)
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	if got := h.Percentile(50); got != 50*time.Millisecond {
		t.Fatalf("p50 = %v", got)
	}
	if got := h.Percentile(99); got != 99*time.Millisecond {
		t.Fatalf("p99 = %v", got)
	}
	if got := h.Mean(); got != 50500*time.Microsecond {
		t.Fatalf("mean = %v", got)
	}
	if got := len(h.Samples()); got != 100 {
		t.Fatalf("samples = %d", got)
	}
}

func TestHistogramBounded(t *testing.T) {
	h := NewHistogram(256)
	const n = 100_000
	for i := 1; i <= n; i++ {
		h.Record(time.Duration(i) * time.Microsecond)
	}
	if h.Count() != n {
		t.Fatalf("count = %d, want %d", h.Count(), n)
	}
	if got := len(h.Samples()); got != 256 {
		t.Fatalf("reservoir holds %d samples, want 256", got)
	}
	// Mean is exact regardless of the reservoir: sum of 1..n µs over n.
	want := time.Duration(n) * (n + 1) / 2 * time.Microsecond / n
	if got := h.Mean(); got != want {
		t.Fatalf("mean = %v, want %v", got, want)
	}
	// The median estimate must land near the true median of the uniform
	// stream; a 256-sample reservoir is within a few percent with this seed,
	// 20% leaves slack without letting a broken reservoir pass.
	p50 := h.Percentile(50)
	trueMedian := time.Duration(n/2) * time.Microsecond
	lo, hi := trueMedian*8/10, trueMedian*12/10
	if p50 < lo || p50 > hi {
		t.Fatalf("p50 = %v outside [%v, %v]", p50, lo, hi)
	}
	// The reservoir must not be a prefix: late observations have to appear.
	var late int
	for _, d := range h.Samples() {
		if d > time.Duration(256)*time.Microsecond {
			late++
		}
	}
	if late == 0 {
		t.Fatal("reservoir never replaced an early sample")
	}
}

func TestHistogramZeroValueBounded(t *testing.T) {
	var h Histogram
	for i := 0; i < DefaultHistogramCap+1000; i++ {
		h.Record(time.Millisecond)
	}
	if got := len(h.Samples()); got != DefaultHistogramCap {
		t.Fatalf("zero-value reservoir holds %d, want %d", got, DefaultHistogramCap)
	}
	if h.Count() != DefaultHistogramCap+1000 {
		t.Fatalf("count = %d", h.Count())
	}
}
