// Package metrics provides the measurement plumbing for the evaluation
// harness: periodic time-series sampling of engine gauges (active versions,
// hash collision ratio), rate tracking over monotonic counters (committed
// statements per second), and a small latency recorder with percentiles.
package metrics

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// Point is one sample: elapsed time since the sampler started, and a value.
type Point struct {
	Elapsed time.Duration
	Value   float64
}

// Series is a named sequence of samples in time order.
type Series struct {
	Name   string
	Points []Point
}

// Last returns the most recent value (0 for an empty series).
func (s Series) Last() float64 {
	if len(s.Points) == 0 {
		return 0
	}
	return s.Points[len(s.Points)-1].Value
}

// Max returns the largest sampled value.
func (s Series) Max() float64 {
	m := 0.0
	for _, p := range s.Points {
		if p.Value > m {
			m = p.Value
		}
	}
	return m
}

// Mean returns the average sampled value.
func (s Series) Mean() float64 {
	if len(s.Points) == 0 {
		return 0
	}
	sum := 0.0
	for _, p := range s.Points {
		sum += p.Value
	}
	return sum / float64(len(s.Points))
}

// String renders the series compactly for logs.
func (s Series) String() string {
	return fmt.Sprintf("%s: %d points, last=%.1f max=%.1f", s.Name, len(s.Points), s.Last(), s.Max())
}

// gaugeSource produces the current value of a gauge.
type gaugeSource struct {
	name string
	fn   func() float64
}

// rateSource converts a monotonic counter into a per-second rate.
type rateSource struct {
	name string
	fn   func() int64
	prev int64
	last time.Time
}

// Sampler periodically samples registered gauges and counter rates into
// named series.
type Sampler struct {
	interval time.Duration

	mu     sync.Mutex
	start  time.Time
	gauges []gaugeSource
	rates  []*rateSource
	series map[string]*Series

	stop    chan struct{}
	wg      sync.WaitGroup
	running bool
}

// NewSampler creates a sampler with the given period.
func NewSampler(interval time.Duration) *Sampler {
	return &Sampler{interval: interval, series: make(map[string]*Series)}
}

// TrackGauge samples fn's instantaneous value each tick.
func (s *Sampler) TrackGauge(name string, fn func() float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.gauges = append(s.gauges, gaugeSource{name: name, fn: fn})
	s.series[name] = &Series{Name: name}
}

// TrackRate samples the per-second increase of a monotonic counter each
// tick.
func (s *Sampler) TrackRate(name string, fn func() int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.rates = append(s.rates, &rateSource{name: name, fn: fn})
	s.series[name] = &Series{Name: name}
}

// Start begins periodic sampling; the first tick establishes rate baselines.
func (s *Sampler) Start() {
	s.mu.Lock()
	if s.running {
		s.mu.Unlock()
		return
	}
	s.running = true
	s.start = time.Now()
	now := s.start
	for _, r := range s.rates {
		r.prev = r.fn()
		r.last = now
	}
	s.stop = make(chan struct{})
	s.mu.Unlock()

	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		tick := time.NewTicker(s.interval)
		defer tick.Stop()
		for {
			select {
			case <-tick.C:
				s.Sample()
			case <-s.stop:
				return
			}
		}
	}()
}

// Sample records one sample of every source immediately.
func (s *Sampler) Sample() {
	s.mu.Lock()
	defer s.mu.Unlock()
	now := time.Now()
	elapsed := now.Sub(s.start)
	for _, g := range s.gauges {
		ser := s.series[g.name]
		ser.Points = append(ser.Points, Point{Elapsed: elapsed, Value: g.fn()})
	}
	for _, r := range s.rates {
		cur := r.fn()
		dt := now.Sub(r.last).Seconds()
		var rate float64
		if dt > 0 {
			rate = float64(cur-r.prev) / dt
		}
		r.prev = cur
		r.last = now
		ser := s.series[r.name]
		ser.Points = append(ser.Points, Point{Elapsed: elapsed, Value: rate})
	}
}

// Stop halts periodic sampling after taking one final sample.
func (s *Sampler) Stop() {
	s.mu.Lock()
	if !s.running {
		s.mu.Unlock()
		return
	}
	s.running = false
	close(s.stop)
	s.mu.Unlock()
	s.wg.Wait()
	s.Sample()
}

// Get returns a copy of the named series.
func (s *Sampler) Get(name string) Series {
	s.mu.Lock()
	defer s.mu.Unlock()
	ser, ok := s.series[name]
	if !ok {
		return Series{Name: name}
	}
	out := Series{Name: name, Points: append([]Point(nil), ser.Points...)}
	return out
}

// Names lists the registered series names, sorted.
func (s *Sampler) Names() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.series))
	for n := range s.series {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// DefaultHistogramCap is the reservoir size a zero-value Histogram uses.
// 4096 samples keep p99 estimates stable while bounding a per-request
// recorder on a long-running server to a fixed footprint.
const DefaultHistogramCap = 4096

// Histogram is a bounded latency recorder with percentile queries. It keeps
// an exact count and sum (so Count and Mean never degrade) and a fixed-size
// uniform reservoir of observations (Vitter's Algorithm R) for percentiles,
// so recording every request of a long-running server cannot grow memory
// without limit. The zero value is ready to use.
type Histogram struct {
	mu      sync.Mutex
	cap     int
	count   int64
	sum     time.Duration
	samples []time.Duration
	rng     uint64
}

// NewHistogram creates a histogram with an explicit reservoir capacity
// (<=0 selects DefaultHistogramCap).
func NewHistogram(capacity int) *Histogram {
	if capacity <= 0 {
		capacity = DefaultHistogramCap
	}
	return &Histogram{cap: capacity}
}

// next is a splitmix64 step — a cheap in-lock PRNG for reservoir slots; the
// fixed seed keeps tests deterministic.
func (h *Histogram) next() uint64 {
	h.rng += 0x9e3779b97f4a7c15
	z := h.rng
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Record adds one observation.
func (h *Histogram) Record(d time.Duration) {
	h.mu.Lock()
	if h.cap <= 0 {
		h.cap = DefaultHistogramCap
	}
	h.count++
	h.sum += d
	if len(h.samples) < h.cap {
		h.samples = append(h.samples, d)
	} else if idx := h.next() % uint64(h.count); idx < uint64(h.cap) {
		h.samples[idx] = d
	}
	h.mu.Unlock()
}

// Count returns the total number of observations recorded (not the reservoir
// occupancy).
func (h *Histogram) Count() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return int(h.count)
}

// Mean returns the exact average over every recorded observation.
func (h *Histogram) Mean() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.sum / time.Duration(h.count)
}

// Percentile returns the p-th percentile (0 < p <= 100), estimated from the
// reservoir once more than cap observations have been recorded.
func (h *Histogram) Percentile(p float64) time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.samples) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), h.samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(p/100*float64(len(sorted))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// Samples returns a copy of the retained observations. Up to the reservoir
// capacity this is every observation in arrival order; beyond it, a uniform
// sample of the full stream.
func (h *Histogram) Samples() []time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]time.Duration(nil), h.samples...)
}
