package metrics

import "sync/atomic"

// stripeCount is the number of independent counter cells in a striped
// counter. A power of two so the hint maps with a mask.
const stripeCount = 64

// stripe is one padded counter cell. The padding keeps adjacent stripes on
// different cache lines, so concurrent writers with different hints never
// bounce a line between cores.
type stripe struct {
	v atomic.Int64
	_ [120]byte
}

// Striped is a monotonic counter sharded over padded stripes. A plain
// atomic counter serializes every writer on one cache line; on read-hot
// paths that line becomes the bottleneck, not the data structure. Striped
// spreads writers over stripeCount cells keyed by a caller-supplied hint —
// any value that varies across concurrent callers, such as a key hash
// already in hand — and sums the cells on read. Add is wait-free; Sum is
// O(stripeCount) and only monotonically approximate under concurrent
// writers, which is exactly what statistics counters need. The zero value
// is ready to use.
type Striped struct {
	s [stripeCount]stripe
}

// AddAt adds n to the stripe selected by hint.
func (c *Striped) AddAt(hint uint64, n int64) {
	c.s[hint&(stripeCount-1)].v.Add(n)
}

// Sum returns the total over all stripes.
func (c *Striped) Sum() int64 {
	var t int64
	for i := range c.s {
		t += c.s[i].v.Load()
	}
	return t
}

// pairStripe is one padded cell of a StripedPair: both counters share the
// cell's cache line, so a caller updating both pays one line acquisition
// instead of two.
type pairStripe struct {
	a atomic.Int64
	b atomic.Int64
	_ [112]byte
}

// StripedPair is two Striped counters fused stripe-by-stripe. Hot paths
// that maintain a pair of related statistics (the RID hash table counts
// lookups and the extra hops those lookups spent) would touch two distinct
// cache lines with two separate Striped counters; fusing them keeps each
// hint's pair on one line. The zero value is ready to use.
type StripedPair struct {
	s [stripeCount]pairStripe
}

// AddA adds n to the first counter's stripe selected by hint.
func (c *StripedPair) AddA(hint uint64, n int64) {
	c.s[hint&(stripeCount-1)].a.Add(n)
}

// AddBoth adds na to the first counter and nb to the second, on the same
// stripe selected by hint.
func (c *StripedPair) AddBoth(hint uint64, na, nb int64) {
	s := &c.s[hint&(stripeCount-1)]
	s.a.Add(na)
	s.b.Add(nb)
}

// Sums returns the totals of both counters.
func (c *StripedPair) Sums() (a, b int64) {
	for i := range c.s {
		a += c.s[i].a.Load()
		b += c.s[i].b.Load()
	}
	return a, b
}
