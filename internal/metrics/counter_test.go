package metrics

import (
	"reflect"
	"sync"
	"testing"
)

func TestCounterConcurrentAdds(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
}

func TestCounterSet(t *testing.T) {
	cs := NewCounterSet()
	cs.Get("b.second").Add(2)
	cs.Get("a.first").Inc()
	if cs.Get("a.first") != cs.Get("a.first") {
		t.Fatal("Get must return the same counter for the same name")
	}
	if got := cs.Snapshot(); !reflect.DeepEqual(got, map[string]int64{"a.first": 1, "b.second": 2}) {
		t.Fatalf("Snapshot() = %v", got)
	}
	if got := cs.Names(); !reflect.DeepEqual(got, []string{"a.first", "b.second"}) {
		t.Fatalf("Names() = %v, want sorted", got)
	}
}
