package netfault

import (
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Direction names one half of a proxied link, from the dialing side's point
// of view: Upstream carries bytes from the dialer toward the target,
// Downstream carries the target's bytes back.
type Direction int

const (
	Upstream Direction = iota
	Downstream
)

// gatePoll is how often a blackholed relay loop re-checks its gate. Held
// bytes are delivered in order within this bound of a Heal.
const gatePoll = 2 * time.Millisecond

// Proxy is an in-process TCP relay with deterministic failure controls. It
// listens on a loopback address; every accepted connection is paired with a
// fresh connection to the target, and bytes are relayed per direction
// through gates the test (or the chaos nemesis) operates:
//
//   - SetPartition blackholes either or both directions: bytes are read but
//     held, so the sender's kernel buffers fill and its write deadlines
//     fire — the observable shape of a real partition. Healing releases the
//     held bytes in order, like retransmission after the partition clears.
//   - DropLinks abruptly closes every live link (connection reset storm).
//   - SetRefuse makes the proxy close newly accepted connections
//     immediately, so redial loops see connection failures.
//
// An optional Injector adds per-I/O faults (latency, stalls, kills, partial
// writes) on the target-side socket of every link.
type Proxy struct {
	target string
	ln     net.Listener
	inj    *Injector

	cutUp   atomic.Bool
	cutDown atomic.Bool
	refuse  atomic.Bool

	mu     sync.Mutex
	links  map[*link]struct{}
	closed bool
	wg     sync.WaitGroup

	accepted atomic.Int64
	refused  atomic.Int64
	dropped  atomic.Int64
	bytesUp  atomic.Int64
	bytesDn  atomic.Int64
}

// link is one dialer↔target pairing.
type link struct {
	client net.Conn
	server net.Conn
}

// NewProxy starts a proxy in front of target on an ephemeral loopback
// address. inj may be nil.
func NewProxy(target string, inj *Injector) (*Proxy, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	p := &Proxy{target: target, ln: ln, inj: inj, links: make(map[*link]struct{})}
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr returns the proxy's dialable address.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// SetPartition blackholes the given directions (true = cut). Asymmetric
// partitions — requests arrive but responses vanish, or vice versa — are the
// cases that separate a correct failure model from a hopeful one.
func (p *Proxy) SetPartition(up, down bool) {
	p.cutUp.Store(up)
	p.cutDown.Store(down)
}

// Partitioned reports whether either direction is currently cut.
func (p *Proxy) Partitioned() bool { return p.cutUp.Load() || p.cutDown.Load() }

// SetRefuse makes the proxy reject (true) or accept (false) new connections.
func (p *Proxy) SetRefuse(on bool) { p.refuse.Store(on) }

// DropLinks closes every live link abruptly. New connections are still
// accepted (unless refusing), so reconnecting peers come back through the
// same weather controls.
func (p *Proxy) DropLinks() {
	p.mu.Lock()
	links := make([]*link, 0, len(p.links))
	for l := range p.links {
		links = append(links, l)
	}
	p.mu.Unlock()
	for _, l := range links {
		l.client.Close()
		l.server.Close()
		p.dropped.Add(1)
	}
}

// Heal clears partitions and refusal. Held-back bytes resume flowing within
// gatePoll; dropped links stay dropped (the peers redial).
func (p *Proxy) Heal() {
	p.SetPartition(false, false)
	p.SetRefuse(false)
}

// Close shuts the proxy down: the listener closes, every link drops, and
// the relay goroutines exit.
func (p *Proxy) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	p.mu.Unlock()
	p.ln.Close()
	p.DropLinks()
	p.wg.Wait()
}

// Links reports the number of live proxied connections.
func (p *Proxy) Links() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.links)
}

// Accepted, Refused and Dropped report connection-lifecycle counts;
// BytesRelayed reports per-direction forwarded bytes.
func (p *Proxy) Accepted() int64 { return p.accepted.Load() }
func (p *Proxy) Refused() int64  { return p.refused.Load() }
func (p *Proxy) Dropped() int64  { return p.dropped.Load() }
func (p *Proxy) BytesRelayed(d Direction) int64 {
	if d == Upstream {
		return p.bytesUp.Load()
	}
	return p.bytesDn.Load()
}

func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	for {
		nc, err := p.ln.Accept()
		if err != nil {
			return // listener closed
		}
		if p.refuse.Load() {
			p.refused.Add(1)
			nc.Close()
			continue
		}
		up, err := net.DialTimeout("tcp", p.target, 5*time.Second)
		if err != nil {
			nc.Close()
			continue
		}
		l := &link{client: nc, server: Wrap(up, p.inj)}
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			nc.Close()
			up.Close()
			return
		}
		p.links[l] = struct{}{}
		p.accepted.Add(1)
		p.mu.Unlock()

		p.wg.Add(2)
		var once sync.Once
		closeBoth := func() {
			once.Do(func() {
				l.client.Close()
				l.server.Close()
				p.mu.Lock()
				delete(p.links, l)
				p.mu.Unlock()
			})
		}
		go p.relay(l.client, l.server, &p.cutUp, &p.bytesUp, closeBoth)
		go p.relay(l.server, l.client, &p.cutDown, &p.bytesDn, closeBoth)
	}
}

// relay copies src→dst, holding each chunk while the direction's gate is
// cut. Holding (rather than discarding) models a partition faithfully: the
// bytes are "in the network", the sender blocks on TCP backpressure once
// buffers fill, and a heal delivers everything in order. Either side's
// failure tears the whole link down, so a half-dead link cannot linger.
func (p *Proxy) relay(src, dst net.Conn, gate *atomic.Bool, count *atomic.Int64, closeBoth func()) {
	defer p.wg.Done()
	defer closeBoth()
	buf := make([]byte, 32<<10)
	for {
		n, err := src.Read(buf)
		if n > 0 {
			for gate.Load() {
				if p.isClosed() {
					return
				}
				time.Sleep(gatePoll)
			}
			if _, werr := dst.Write(buf[:n]); werr != nil {
				return
			}
			count.Add(int64(n))
		}
		if err != nil {
			return
		}
	}
}

func (p *Proxy) isClosed() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.closed
}
