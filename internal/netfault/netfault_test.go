package netfault

import (
	"bytes"
	"errors"
	"io"
	"net"
	"sync"
	"testing"
	"time"
)

// echoServer accepts connections and echoes bytes back until closed.
func echoServer(t *testing.T) (addr string, closeFn func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			nc, err := ln.Accept()
			if err != nil {
				return
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer nc.Close()
				io.Copy(nc, nc)
			}()
		}
	}()
	return ln.Addr().String(), func() { ln.Close(); wg.Wait() }
}

func dial(t *testing.T, addr string) net.Conn {
	t.Helper()
	nc, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { nc.Close() })
	return nc
}

// roundTrip writes msg and reads len(msg) bytes back under deadline.
func roundTrip(nc net.Conn, msg []byte, timeout time.Duration) ([]byte, error) {
	_ = nc.SetDeadline(time.Now().Add(timeout))
	if _, err := nc.Write(msg); err != nil {
		return nil, err
	}
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(nc, got); err != nil {
		return nil, err
	}
	return got, nil
}

func TestProxyRelaysTransparently(t *testing.T) {
	addr, stop := echoServer(t)
	defer stop()
	p, err := NewProxy(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	nc := dial(t, p.Addr())
	msg := []byte("hello through the proxy")
	got, err := roundTrip(nc, msg, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("echo = %q, want %q", got, msg)
	}
	if p.BytesRelayed(Upstream) == 0 || p.BytesRelayed(Downstream) == 0 {
		t.Fatal("proxy counted no relayed bytes")
	}
}

// TestAsymmetricPartition cuts only the downstream direction: requests still
// reach the server, responses blackhole, and healing delivers the held
// bytes in order.
func TestAsymmetricPartition(t *testing.T) {
	addr, stop := echoServer(t)
	defer stop()
	p, err := NewProxy(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	nc := dial(t, p.Addr())

	if _, err := roundTrip(nc, []byte("warm"), 2*time.Second); err != nil {
		t.Fatal(err)
	}

	p.SetPartition(false, true)
	msg := []byte("lost in flight")
	_ = nc.SetDeadline(time.Now().Add(2 * time.Second))
	if _, err := nc.Write(msg); err != nil {
		t.Fatal(err)
	}
	// The request crossed (upstream open) but the echo must not arrive.
	_ = nc.SetReadDeadline(time.Now().Add(150 * time.Millisecond))
	buf := make([]byte, len(msg))
	if n, err := nc.Read(buf); err == nil {
		t.Fatalf("read %d bytes through a downstream partition", n)
	} else if ne, ok := err.(net.Error); !ok || !ne.Timeout() {
		t.Fatalf("partitioned read failed with %v, want timeout", err)
	}

	// Heal: the held echo arrives intact — no bytes lost, none reordered.
	p.Heal()
	_ = nc.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := io.ReadFull(nc, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, msg) {
		t.Fatalf("post-heal bytes = %q, want %q", buf, msg)
	}
}

func TestDropLinksResetsPeers(t *testing.T) {
	addr, stop := echoServer(t)
	defer stop()
	p, err := NewProxy(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	nc := dial(t, p.Addr())
	if _, err := roundTrip(nc, []byte("up"), 2*time.Second); err != nil {
		t.Fatal(err)
	}
	p.DropLinks()
	_ = nc.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := nc.Read(make([]byte, 1)); err == nil {
		t.Fatal("read succeeded on a dropped link")
	}
	if p.Dropped() != 1 {
		t.Fatalf("dropped = %d, want 1", p.Dropped())
	}
	// The proxy still accepts fresh connections after a drop storm.
	nc2 := dial(t, p.Addr())
	if _, err := roundTrip(nc2, []byte("back"), 2*time.Second); err != nil {
		t.Fatalf("post-drop redial: %v", err)
	}
}

func TestRefuseNewConnections(t *testing.T) {
	addr, stop := echoServer(t)
	defer stop()
	p, err := NewProxy(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	p.SetRefuse(true)
	nc, err := net.DialTimeout("tcp", p.Addr(), 2*time.Second)
	if err == nil {
		// Accept-then-close: the dial may succeed, but the conn is dead.
		_ = nc.SetReadDeadline(time.Now().Add(2 * time.Second))
		if _, rerr := nc.Read(make([]byte, 1)); rerr == nil {
			t.Fatal("refused connection delivered bytes")
		}
		nc.Close()
	}
	if p.Refused() == 0 {
		t.Fatal("refusal not counted")
	}
	p.Heal()
	nc2 := dial(t, p.Addr())
	if _, err := roundTrip(nc2, []byte("open"), 2*time.Second); err != nil {
		t.Fatalf("post-heal dial: %v", err)
	}
}

// TestInjectorDeterministicStream: two injectors with one seed draw the
// identical decision sequence; different seeds diverge.
func TestInjectorDeterministicStream(t *testing.T) {
	plan := Plan{KillProb: 0.3, StallProb: 0.2, Stall: time.Millisecond, PartialWriteProb: 0.25}
	seq := func(seed int64) []decision {
		in := NewInjector(seed, plan)
		out := make([]decision, 0, 64)
		for i := 0; i < 64; i++ {
			out = append(out, in.draw(i%2 == 0))
		}
		return out
	}
	a, b := seq(42), seq(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d diverged for one seed: %+v vs %+v", i, a[i], b[i])
		}
	}
	c := seq(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seeds 42 and 43 drew identical decision streams")
	}
}

// TestPartialWriteTearsFrame: a partial-write injection delivers a strict
// prefix and then kills the connection — the reader sees a torn stream, the
// writer an injected error.
func TestPartialWriteTearsFrame(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	got := make(chan []byte, 1)
	go func() {
		nc, err := ln.Accept()
		if err != nil {
			return
		}
		defer nc.Close()
		b, _ := io.ReadAll(nc)
		got <- b
	}()

	raw, err := net.DialTimeout("tcp", ln.Addr().String(), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	in := NewInjector(1, Plan{PartialWriteProb: 1})
	nc := Wrap(raw, in)
	msg := bytes.Repeat([]byte("frame"), 100)
	n, err := nc.Write(msg)
	if !errors.Is(err, ErrInjectedNet) {
		t.Fatalf("partial write err = %v, want ErrInjectedNet", err)
	}
	if n == 0 || n >= len(msg) {
		t.Fatalf("partial write sent %d of %d bytes, want a strict prefix", n, len(msg))
	}
	if _, err := nc.Write(msg); !errors.Is(err, ErrInjectedNet) {
		t.Fatalf("write after kill = %v, want latched ErrInjectedNet", err)
	}
	select {
	case b := <-got:
		if len(b) != n {
			t.Fatalf("peer received %d bytes, writer sent %d", len(b), n)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("peer never observed the torn stream")
	}
	if in.Partials() != 1 {
		t.Fatalf("partials = %d, want 1", in.Partials())
	}
}

// TestWrapDisabledIsFree: nil and empty-plan injectors return the original
// conn — the disabled path has no wrapper at all.
func TestWrapDisabledIsFree(t *testing.T) {
	c1, c2 := net.Pipe()
	defer c1.Close()
	defer c2.Close()
	if got := Wrap(c1, nil); got != c1 {
		t.Fatal("Wrap(nil injector) wrapped the conn")
	}
	if got := Wrap(c1, NewInjector(7, Plan{})); got != c1 {
		t.Fatal("Wrap(zero plan) wrapped the conn")
	}
}
