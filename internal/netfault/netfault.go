// Package netfault is the network analogue of internal/fault: deterministic,
// seeded fault injection for the TCP paths — the client pool, the service
// layer, and WAL-shipping replication — that the in-process failpoint
// registry cannot reach, because the failures it must model live between
// processes: connection drops, stalls and added latency, partial writes that
// tear a frame mid-flight, and asymmetric partitions that blackhole one
// direction of a link while the other keeps flowing.
//
// Two layers, composable:
//
//   - Injector + Wrap: a net.Conn wrapper whose Read/Write paths consult a
//     seeded plan — per-operation latency, stalls, connection kills, and
//     partial writes (a prefix is written, then the connection dies, so the
//     peer observes a torn frame). Following internal/fault's design rule,
//     the disabled path costs nothing: a nil Injector wraps to the original
//     conn unchanged, and a disarmed Injector is one atomic load per I/O.
//
//   - Proxy: an in-process TCP relay standing between two real endpoints
//     (client↔primary, primary↔replica). It owns the only handle the tests
//     need to create network weather deterministically: per-direction
//     blackholes (asymmetric partitions), dropping every live link at once,
//     and refusing new connections. Healing restores held-back bytes in
//     order, like TCP retransmission after a real partition heals.
//
// Determinism is at the plan level: a given seed always produces the same
// decision sequence per connection (decisions are drawn per-I/O from one
// seeded stream under a lock). Byte-level interleavings across goroutines
// still vary — which is the point: the invariants the chaos harness checks
// must hold for every interleaving of a seeded schedule.
package netfault

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// Plan configures an Injector: probabilities are per I/O operation, in
// [0, 1]. The zero Plan injects nothing.
type Plan struct {
	// Latency is added to every Read and Write; Jitter adds a uniformly
	// drawn extra on top.
	Latency time.Duration
	Jitter  time.Duration
	// StallProb stalls an operation for Stall before proceeding — long
	// enough to trip a peer's deadline without killing the connection.
	StallProb float64
	Stall     time.Duration
	// KillProb kills the connection at the operation: the op (and every
	// later one) fails, modeling an abrupt reset.
	KillProb float64
	// PartialWriteProb writes only a prefix of the buffer and then kills
	// the connection — the peer sees a torn frame, the canonical
	// partial-write failure the length-prefixed protocol must survive.
	PartialWriteProb float64
}

// enabled reports whether the plan can ever inject anything.
func (p Plan) enabled() bool {
	return p.Latency > 0 || p.Jitter > 0 ||
		(p.StallProb > 0 && p.Stall > 0) || p.KillProb > 0 || p.PartialWriteProb > 0
}

// Injector draws fault decisions from one seeded stream. One Injector is
// shared by every connection it wraps, so a single seed fixes the whole
// decision sequence.
type Injector struct {
	armed atomic.Bool

	mu   sync.Mutex
	rng  *rand.Rand
	plan Plan

	kills    atomic.Int64
	partials atomic.Int64
	stalls   atomic.Int64
}

// NewInjector builds an Injector over a seeded source. The injector starts
// armed iff the plan injects anything.
func NewInjector(seed int64, plan Plan) *Injector {
	in := &Injector{rng: rand.New(rand.NewSource(seed)), plan: plan}
	in.armed.Store(plan.enabled())
	return in
}

// SetArmed toggles injection without discarding the decision stream.
func (in *Injector) SetArmed(on bool) {
	if in == nil {
		return
	}
	in.mu.Lock()
	in.armed.Store(on && in.plan.enabled())
	in.mu.Unlock()
}

// Kills, Partials and Stalls report how many times each fault class fired.
func (in *Injector) Kills() int64    { return in.kills.Load() }
func (in *Injector) Partials() int64 { return in.partials.Load() }
func (in *Injector) Stalls() int64   { return in.stalls.Load() }

// decision is one I/O operation's drawn fate.
type decision struct {
	delay   time.Duration
	stall   time.Duration
	kill    bool
	partial bool // write only: send a prefix, then kill
}

// draw consumes one step of the seeded stream. isWrite gates the
// partial-write class.
func (in *Injector) draw(isWrite bool) decision {
	var d decision
	in.mu.Lock()
	p := in.plan
	d.delay = p.Latency
	if p.Jitter > 0 {
		d.delay += time.Duration(in.rng.Int63n(int64(p.Jitter)))
	}
	if p.StallProb > 0 && in.rng.Float64() < p.StallProb {
		d.stall = p.Stall
	}
	if p.KillProb > 0 && in.rng.Float64() < p.KillProb {
		d.kill = true
	}
	if isWrite && p.PartialWriteProb > 0 && in.rng.Float64() < p.PartialWriteProb {
		d.partial = true
	}
	in.mu.Unlock()
	if d.stall > 0 {
		in.stalls.Add(1)
	}
	if d.kill {
		in.kills.Add(1)
	}
	if d.partial {
		in.partials.Add(1)
	}
	return d
}
