package netfault

import (
	"errors"
	"fmt"
	"net"
	"sync/atomic"
	"time"
)

// ErrInjectedNet is the base error of injected connection failures, so call
// sites (and tests) can tell injected network faults from real ones with
// errors.Is.
var ErrInjectedNet = errors.New("netfault: injected connection failure")

// Wrap returns a net.Conn whose Read/Write consult the injector's plan. A
// nil or never-injecting injector returns nc unchanged — the disabled path
// adds no wrapper and no indirection, mirroring internal/fault's
// zero-cost-when-disabled rule.
func Wrap(nc net.Conn, in *Injector) net.Conn {
	if in == nil || !in.plan.enabled() {
		return nc
	}
	return &faultConn{Conn: nc, in: in}
}

// faultConn injects the plan's faults around the embedded connection. Kills
// close the underlying conn so blocked peers notice, and latch: every
// subsequent operation fails immediately, like a reset socket.
type faultConn struct {
	net.Conn
	in     *Injector
	killed atomic.Bool
}

func (c *faultConn) injected(op string) error {
	return fmt.Errorf("%w: %s", ErrInjectedNet, op)
}

func (c *faultConn) Read(b []byte) (int, error) {
	if c.killed.Load() {
		return 0, c.injected("read on killed conn")
	}
	if c.in.armed.Load() {
		d := c.in.draw(false)
		if d.delay > 0 {
			sleep(d.delay)
		}
		if d.stall > 0 {
			sleep(d.stall)
		}
		if d.kill {
			c.killed.Store(true)
			c.Conn.Close()
			return 0, c.injected("read killed")
		}
	}
	return c.Conn.Read(b)
}

func (c *faultConn) Write(b []byte) (int, error) {
	if c.killed.Load() {
		return 0, c.injected("write on killed conn")
	}
	if c.in.armed.Load() {
		d := c.in.draw(true)
		if d.delay > 0 {
			sleep(d.delay)
		}
		if d.stall > 0 {
			sleep(d.stall)
		}
		if d.partial && len(b) > 1 {
			// Ship a strict prefix, then die: the peer's reader sees a torn
			// frame (length prefix promising more bytes than ever arrive).
			n, _ := c.Conn.Write(b[:len(b)/2])
			c.killed.Store(true)
			c.Conn.Close()
			return n, c.injected("partial write")
		}
		if d.kill {
			c.killed.Store(true)
			c.Conn.Close()
			return 0, c.injected("write killed")
		}
	}
	return c.Conn.Write(b)
}

// sleep is a seam for tests that assert injected delays without waiting for
// them.
var sleep = time.Sleep
