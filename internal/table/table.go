// Package table implements the table space of the HANA row store (§2.2): the
// catalog of tables and, per table, the records holding the oldest visible
// image of each row. The version space keeps newer images until garbage
// collection migrates them here. Each record carries the is_versioned flag
// that lets readers skip the RID hash table when a record has no chain.
package table

import (
	"fmt"
	"sync"
	"sync/atomic"

	"hybridgc/internal/ts"
)

// Record is one row slot in the table space. Its image is the oldest
// retained version of the row; a nil image means the row's INSERT has not
// been migrated out of the version space yet (so readers that find no
// visible chain version treat the record as nonexistent).
type Record struct {
	key ts.RecordKey
	tbl *Table

	image     atomic.Pointer[[]byte]
	versioned atomic.Bool
	dropped   atomic.Bool
}

// Key returns the record's (table, RID) identity.
func (r *Record) Key() ts.RecordKey { return r.key }

// Image returns the current table-space image, or nil when the row has no
// migrated image yet.
func (r *Record) Image() []byte {
	p := r.image.Load()
	if p == nil {
		return nil
	}
	return *p
}

// Versioned reports the is_versioned flag: whether the record has a version
// chain in the version space that readers must consult.
func (r *Record) Versioned() bool { return r.versioned.Load() }

// Dropped reports whether the record has been removed from its table.
func (r *Record) Dropped() bool { return r.dropped.Load() }

// InstallImage implements mvcc.RecordRef: garbage collection migrates the
// newest reclaimable image into the table space.
func (r *Record) InstallImage(img []byte) {
	r.image.Store(&img)
	r.tbl.notifyWrite(r.key.RID)
}

// DropRecord implements mvcc.RecordRef: a migrated DELETE (or a rolled-back
// INSERT) removes the row from the table space.
func (r *Record) DropRecord() {
	r.dropped.Store(true)
	r.image.Store(nil)
	r.tbl.remove(r)
	r.tbl.notifyWrite(r.key.RID)
}

// SetVersioned implements mvcc.RecordRef.
func (r *Record) SetVersioned(v bool) {
	r.versioned.Store(v)
	r.tbl.notifyWrite(r.key.RID)
}

// Table is one table's slice of the table space. RIDs are allocated densely
// from 1 so scans can walk the RID range in order.
type Table struct {
	ID   ts.TableID
	Name string

	mu      sync.RWMutex
	records map[ts.RID]*Record
	nextRID atomic.Uint64
	live    atomic.Int64
	// partitions is the partition count; 0 means unpartitioned. Records are
	// assigned round-robin by RID, so a partition is a deterministic RID
	// residue class — enough structure for partition pruning and
	// partition-scoped garbage collection.
	partitions atomic.Uint32

	// writeObs, when installed, observes every mutation of the table space —
	// version-chain flag flips, image installs by garbage collection, record
	// drops — with the affected RID. The HTAP column lane uses it to keep a
	// sticky dirty set over chunk-covered rows; it fires under the chain
	// latch, so observers must be cheap and must not re-enter the engine.
	writeObs atomic.Pointer[func(ts.RID)]
}

// SetWriteObserver installs fn as the table's write observer (nil removes
// it). At most one observer is supported; installing replaces any previous
// one.
func (t *Table) SetWriteObserver(fn func(ts.RID)) {
	if fn == nil {
		t.writeObs.Store(nil)
		return
	}
	t.writeObs.Store(&fn)
}

// notifyWrite fires the write observer, if any, for rid.
func (t *Table) notifyWrite(rid ts.RID) {
	if p := t.writeObs.Load(); p != nil {
		(*p)(rid)
	}
}

// SetPartitions declares the table partitioned into n parts (n >= 2).
// Partitioning is logical: it changes how scopes and horizons are computed,
// not where records live.
func (t *Table) SetPartitions(n int) {
	if n >= 2 {
		t.partitions.Store(uint32(n))
	}
}

// Partitions returns the partition count (0 = unpartitioned).
func (t *Table) Partitions() int { return int(t.partitions.Load()) }

// PartitionOf maps a RID to its partition. Only meaningful when the table
// is partitioned.
func (t *Table) PartitionOf(rid ts.RID) ts.PartitionID {
	n := t.partitions.Load()
	if n == 0 {
		return 0
	}
	return ts.PartitionID(uint64(rid-1) % uint64(n))
}

// AllocRID returns a fresh record identifier.
func (t *Table) AllocRID() ts.RID {
	return ts.RID(t.nextRID.Add(1))
}

// EnsureNextRID raises the RID allocator to at least n. Recovery calls this
// while replaying inserts so post-recovery allocations never collide.
func (t *Table) EnsureNextRID(n ts.RID) {
	for {
		cur := t.nextRID.Load()
		if cur >= uint64(n) {
			return
		}
		if t.nextRID.CompareAndSwap(cur, uint64(n)) {
			return
		}
	}
}

// MaxRID returns the highest RID ever allocated (scans iterate 1..MaxRID).
func (t *Table) MaxRID() ts.RID { return ts.RID(t.nextRID.Load()) }

// Len returns the number of records currently present (including rows whose
// INSERT is still unmigrated, which readers may not see yet).
func (t *Table) Len() int { return int(t.live.Load()) }

// CreateRecord installs an empty record slot for rid. It fails if the RID is
// already occupied — the engine allocates RIDs, so a collision is a bug or a
// write-write race the caller must surface.
func (t *Table) CreateRecord(rid ts.RID) (*Record, error) {
	r := &Record{key: ts.RecordKey{Table: t.ID, RID: rid}, tbl: t}
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, dup := t.records[rid]; dup {
		return nil, fmt.Errorf("table %s: RID %d already exists", t.Name, rid)
	}
	t.records[rid] = r
	t.live.Add(1)
	return r, nil
}

// Get returns the record for rid, or nil.
func (t *Table) Get(rid ts.RID) *Record {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.records[rid]
}

// remove deletes the record slot if it is still the one registered.
func (t *Table) remove(r *Record) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if cur, ok := t.records[r.key.RID]; ok && cur == r {
		delete(t.records, r.key.RID)
		t.live.Add(-1)
	}
}

// ForEach visits records in ascending RID order until fn returns false. It
// walks the dense RID range, skipping holes left by deletes, and does not
// hold the table lock while fn runs.
func (t *Table) ForEach(fn func(*Record) bool) {
	max := t.MaxRID()
	for rid := ts.RID(1); rid <= max; rid++ {
		if r := t.Get(rid); r != nil {
			if !fn(r) {
				return
			}
		}
	}
}

// Catalog names and numbers the tables of one database.
type Catalog struct {
	mu     sync.RWMutex
	byName map[string]*Table
	byID   map[ts.TableID]*Table
	nextID uint32
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{byName: make(map[string]*Table), byID: make(map[ts.TableID]*Table)}
}

// Create registers a new table under name.
func (c *Catalog) Create(name string) (*Table, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.byName[name]; dup {
		return nil, fmt.Errorf("catalog: table %q already exists", name)
	}
	c.nextID++
	t := &Table{ID: ts.TableID(c.nextID), Name: name, records: make(map[ts.RID]*Record)}
	c.byName[name] = t
	c.byID[t.ID] = t
	return t, nil
}

// Restore registers a table under an explicit ID, for recovery from a
// checkpoint or log. The catalog's ID allocator advances past id.
func (c *Catalog) Restore(id ts.TableID, name string) (*Table, error) {
	if id == 0 {
		return nil, fmt.Errorf("catalog: cannot restore table %q with ID 0", name)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.byName[name]; dup {
		return nil, fmt.Errorf("catalog: table %q already exists", name)
	}
	if _, dup := c.byID[id]; dup {
		return nil, fmt.Errorf("catalog: table ID %d already exists", id)
	}
	t := &Table{ID: id, Name: name, records: make(map[ts.RID]*Record)}
	c.byName[name] = t
	c.byID[id] = t
	if uint32(id) > c.nextID {
		c.nextID = uint32(id)
	}
	return t, nil
}

// ByName returns the table called name, or nil.
func (c *Catalog) ByName(name string) *Table {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.byName[name]
}

// ByID returns the table with the given ID, or nil.
func (c *Catalog) ByID(id ts.TableID) *Table {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.byID[id]
}

// Tables returns all tables in creation (ID) order.
func (c *Catalog) Tables() []*Table {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]*Table, 0, len(c.byID))
	for id := ts.TableID(1); id <= ts.TableID(c.nextID); id++ {
		if t, ok := c.byID[id]; ok {
			out = append(out, t)
		}
	}
	return out
}
