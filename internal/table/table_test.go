package table

import (
	"testing"

	"hybridgc/internal/mvcc"
	"hybridgc/internal/ts"
)

// Compile-time check: *Record satisfies the version space's record handle.
var _ mvcc.RecordRef = (*Record)(nil)

func TestCatalog(t *testing.T) {
	c := NewCatalog()
	a, err := c.Create("STOCK")
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.Create("ORDERS")
	if err != nil {
		t.Fatal(err)
	}
	if a.ID == b.ID || a.ID == 0 {
		t.Fatalf("table IDs must be distinct and nonzero: %d %d", a.ID, b.ID)
	}
	if _, err := c.Create("STOCK"); err == nil {
		t.Fatal("duplicate table name must fail")
	}
	if c.ByName("STOCK") != a || c.ByID(b.ID) != b {
		t.Fatal("lookups broken")
	}
	tables := c.Tables()
	if len(tables) != 2 || tables[0] != a || tables[1] != b {
		t.Fatalf("Tables() = %v", tables)
	}
	if c.ByName("NOPE") != nil || c.ByID(99) != nil {
		t.Fatal("missing lookups must return nil")
	}
}

func TestRecordLifecycle(t *testing.T) {
	c := NewCatalog()
	tbl, _ := c.Create("T")
	rid := tbl.AllocRID()
	if rid != 1 {
		t.Fatalf("first RID = %d", rid)
	}
	r, err := tbl.CreateRecord(rid)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tbl.CreateRecord(rid); err == nil {
		t.Fatal("duplicate RID must fail")
	}
	if r.Image() != nil {
		t.Fatal("fresh record must have no image (insert unmigrated)")
	}
	if r.Versioned() {
		t.Fatal("fresh record must be unversioned")
	}
	r.SetVersioned(true)
	r.InstallImage([]byte("img"))
	if string(r.Image()) != "img" || !r.Versioned() {
		t.Fatal("image/flag not installed")
	}
	if tbl.Len() != 1 {
		t.Fatalf("Len = %d", tbl.Len())
	}
	r.DropRecord()
	if !r.Dropped() || tbl.Get(rid) != nil || tbl.Len() != 0 {
		t.Fatal("drop must remove the record")
	}
	// Dropping again is harmless.
	r.DropRecord()
}

func TestForEachOrder(t *testing.T) {
	c := NewCatalog()
	tbl, _ := c.Create("T")
	for i := 0; i < 5; i++ {
		if _, err := tbl.CreateRecord(tbl.AllocRID()); err != nil {
			t.Fatal(err)
		}
	}
	tbl.Get(3).DropRecord()
	var rids []ts.RID
	tbl.ForEach(func(r *Record) bool {
		rids = append(rids, r.Key().RID)
		return true
	})
	want := []ts.RID{1, 2, 4, 5}
	if len(rids) != len(want) {
		t.Fatalf("visited %v", rids)
	}
	for i := range want {
		if rids[i] != want[i] {
			t.Fatalf("visited %v, want %v", rids, want)
		}
	}
	// Early stop.
	n := 0
	tbl.ForEach(func(*Record) bool { n++; return false })
	if n != 1 {
		t.Fatalf("early stop visited %d", n)
	}
}
