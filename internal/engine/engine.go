// Package engine abstracts "a thing that executes transactions" away from
// the single-node database: internal/sql, internal/server and the drivers
// program against Engine, and both the single-node core.DB and the sharded
// router in internal/shard implement it. The abstract surface is
// deliberately narrow — transactions, tables, cursors, stats — while
// Shards()/Shard(i) expose the concrete per-shard engines for monitoring
// views, garbage collection control and replication, which are inherently
// per-node concerns.
package engine

import (
	"fmt"

	"hybridgc/internal/core"
	"hybridgc/internal/ts"
	"hybridgc/internal/txn"
)

// Tx is one transaction on an Engine. core.Tx satisfies everything except
// InsertAt, which the Single adapter maps back to a plain Insert.
type Tx interface {
	Isolation() txn.Isolation
	SnapshotTS() ts.CID
	Get(tid ts.TableID, rid ts.RID) ([]byte, error)
	Scan(tid ts.TableID, fn func(rid ts.RID, img []byte) bool) error
	Insert(tid ts.TableID, img []byte) (ts.RID, error)
	// InsertAt is Insert with a shard hint — the router places the record on
	// hint's shard (TPC-C's by-warehouse affinity). A single-node engine
	// ignores the hint.
	InsertAt(tid ts.TableID, img []byte, hint int) (ts.RID, error)
	Update(tid ts.TableID, rid ts.RID, img []byte) error
	Delete(tid ts.TableID, rid ts.RID) error
	Commit() error
	Abort()
}

// Cursor is a long-lived snapshot scan. core.Cursor satisfies it.
type Cursor interface {
	Fetch(n int) ([][]byte, core.FetchStats, error)
	SnapshotTS() ts.CID
	Exhausted() bool
	Close()
}

// PlacementKind selects how a table's records map to shards.
type PlacementKind uint8

const (
	// PlaceInterleave blocks RIDs across shards: each shard owns Size
	// consecutive records per round. Size 1 is plain round-robin. The
	// default placement for every table.
	PlaceInterleave PlacementKind = iota
	// PlaceFixed pins every record of the table to one shard.
	PlaceFixed
	// PlaceReplicated writes every record to all shards (global RID equals
	// local RID) and reads from the transaction's anchor shard — for small
	// read-mostly tables like TPC-C's ITEM.
	PlaceReplicated
)

// Placement is a table's shard-placement policy.
type Placement struct {
	Kind PlacementKind
	// Size is the interleave block size (records per shard per round);
	// <=0 selects 1.
	Size uint64
	// Shard is the PlaceFixed target.
	Shard int
}

// blockSize normalizes the interleave block size.
func (p Placement) blockSize() uint64 {
	if p.Size == 0 || p.Size > 1<<62 {
		return 1
	}
	return p.Size
}

// GlobalRID maps shard-local RID local on the given shard to the table's
// global RID under this placement. The mapping is a bijection: interleaved
// tables block RIDs so that shard s owns global blocks s, s+shards, s+2·shards
// ... of Size records each, which makes a sequential round-robin load produce
// the same dense global RID sequence a single-node engine would assign.
// Fixed and replicated tables use the local RID verbatim.
func (p Placement) GlobalRID(shard, shards int, local ts.RID) ts.RID {
	if p.Kind != PlaceInterleave || shards <= 1 {
		return local
	}
	size := p.blockSize()
	block := (uint64(local) - 1) / size
	off := (uint64(local) - 1) % size
	return ts.RID((block*uint64(shards)+uint64(shard))*size + off + 1)
}

// ShardOf reports which shard owns the global RID under this placement.
// Replicated tables report shard 0 — every shard holds the record; readers
// may use any anchor.
func (p Placement) ShardOf(global ts.RID, shards int) int {
	switch {
	case p.Kind == PlaceFixed:
		return p.Shard
	case p.Kind != PlaceInterleave || shards <= 1:
		return 0
	}
	return int(((uint64(global) - 1) / p.blockSize()) % uint64(shards))
}

// LocalRID inverts GlobalRID: the owning shard and its local RID for a
// global RID.
func (p Placement) LocalRID(global ts.RID, shards int) (int, ts.RID) {
	if p.Kind != PlaceInterleave || shards <= 1 {
		if p.Kind == PlaceFixed {
			return p.Shard, global
		}
		return 0, global
	}
	size := p.blockSize()
	q := (uint64(global) - 1) / size
	off := (uint64(global) - 1) % size
	shard := int(q % uint64(shards))
	block := q / uint64(shards)
	return shard, ts.RID(block*size + off + 1)
}

// Engine executes transactions over one or more shards.
type Engine interface {
	// Begin starts a transaction that may touch any shard; on a sharded
	// engine, cross-shard commits go through two-phase commit.
	Begin(iso txn.Isolation, declared ...ts.TableID) Tx
	// BeginShard starts a transaction pinned to one shard — the single-shard
	// fast path, bypassing the router. Operations referencing records on
	// other shards fail.
	BeginShard(shard int, iso txn.Isolation, declared ...ts.TableID) (Tx, error)
	// Exec runs fn inside a transaction, committing on success and aborting
	// on error.
	Exec(iso txn.Isolation, declared []ts.TableID, fn func(Tx) error) error

	CreateTable(name string) (ts.TableID, error)
	TableID(name string) ts.TableID
	TableIDs(names ...string) ([]ts.TableID, error)
	Tables() []string
	TablePartitions(tid ts.TableID) int
	// SetPlacement installs a table's shard-placement policy; it must run
	// before the table receives rows. A single-node engine accepts and
	// ignores it.
	SetPlacement(tid ts.TableID, p Placement) error

	OpenCursor(tid ts.TableID) (Cursor, error)
	ReadOnly() bool
	// Stats aggregates engine statistics across shards (counters sum;
	// CurrentCID is the maximum, GlobalHorizon the minimum).
	Stats() core.Stats

	// Shards reports the shard count (1 for a single-node engine).
	Shards() int
	// Shard returns shard i's concrete engine — the escape hatch for
	// per-shard concerns: monitoring, GC control, checkpoints, replication.
	Shard(i int) *core.DB
	Close()
}

// Single adapts one core.DB to Engine.
type Single struct {
	DB *core.DB
}

// NewSingle wraps a single-node database.
func NewSingle(db *core.DB) *Single { return &Single{DB: db} }

// singleTx adds the ignored InsertAt hint to core.Tx.
type singleTx struct {
	*core.Tx
}

func (t singleTx) InsertAt(tid ts.TableID, img []byte, _ int) (ts.RID, error) {
	return t.Tx.Insert(tid, img)
}

func (s *Single) Begin(iso txn.Isolation, declared ...ts.TableID) Tx {
	return singleTx{s.DB.Begin(iso, declared...)}
}

func (s *Single) BeginShard(shard int, iso txn.Isolation, declared ...ts.TableID) (Tx, error) {
	if shard != 0 {
		return nil, fmt.Errorf("engine: shard %d out of range on a single-node engine", shard)
	}
	return s.Begin(iso, declared...), nil
}

func (s *Single) Exec(iso txn.Isolation, declared []ts.TableID, fn func(Tx) error) error {
	return s.DB.Exec(iso, declared, func(tx *core.Tx) error { return fn(singleTx{tx}) })
}

func (s *Single) CreateTable(name string) (ts.TableID, error) { return s.DB.CreateTable(name) }
func (s *Single) TableID(name string) ts.TableID              { return s.DB.TableID(name) }
func (s *Single) TableIDs(names ...string) ([]ts.TableID, error) {
	return s.DB.TableIDs(names...)
}
func (s *Single) Tables() []string                        { return s.DB.Tables() }
func (s *Single) TablePartitions(tid ts.TableID) int      { return s.DB.TablePartitions(tid) }
func (s *Single) SetPlacement(ts.TableID, Placement) error { return nil }

func (s *Single) OpenCursor(tid ts.TableID) (Cursor, error) { return s.DB.OpenCursor(tid) }
func (s *Single) ReadOnly() bool                            { return s.DB.ReadOnly() }
func (s *Single) Stats() core.Stats                         { return s.DB.Stats() }

func (s *Single) Shards() int          { return 1 }
func (s *Single) Shard(int) *core.DB   { return s.DB }
func (s *Single) Close()               { s.DB.Close() }
