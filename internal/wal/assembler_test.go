package wal

import (
	"errors"
	"testing"

	"hybridgc/internal/mvcc"
	"hybridgc/internal/ts"
)

func part(cid ts.CID, part, parts uint32, rids ...ts.RID) *Record {
	r := &Record{Kind: KindGroup, CID: cid, Part: part, Parts: parts}
	for _, rid := range rids {
		r.Ops = append(r.Ops, Op{Op: mvcc.OpInsert, Table: 1, RID: rid})
	}
	return r
}

func TestAssemblerCompleteGroup(t *testing.T) {
	var a GroupAssembler
	if _, _, done, err := a.Feed(part(7, 0, 3, 1)); done || err != nil {
		t.Fatalf("part 0: done=%v err=%v", done, err)
	}
	if _, _, done, err := a.Feed(part(7, 1, 3, 2, 3)); done || err != nil {
		t.Fatalf("part 1: done=%v err=%v", done, err)
	}
	cid, ops, done, err := a.Feed(part(7, 2, 3, 4))
	if !done || err != nil || cid != 7 {
		t.Fatalf("part 2: cid=%d done=%v err=%v", cid, done, err)
	}
	if len(ops) != 4 {
		t.Fatalf("assembled %d ops, want 4", len(ops))
	}
	for i, want := range []ts.RID{1, 2, 3, 4} {
		if ops[i].RID != want {
			t.Fatalf("op %d RID %d, want %d (order lost)", i, ops[i].RID, want)
		}
	}
	if _, ok := a.Pending(); ok {
		t.Fatal("assembler still pending after a complete group")
	}
}

func TestAssemblerSingleRecordGroups(t *testing.T) {
	var a GroupAssembler
	// Parts==1 and legacy Parts==0 both complete immediately.
	for _, parts := range []uint32{1, 0} {
		cid, ops, done, err := a.Feed(part(9, 0, parts, 5))
		if !done || err != nil || cid != 9 || len(ops) != 1 {
			t.Fatalf("parts=%d: cid=%d ops=%d done=%v err=%v", parts, cid, len(ops), done, err)
		}
	}
}

// TestAssemblerDropsTornResidue covers the legal torn-prefix sequences a
// reader can see: a pending group abandoned by a new group start (including
// one that reuses the torn group's CID — the primary recovered and handed the
// unacknowledged CID to the next commit), and by a DDL record.
func TestAssemblerDropsTornResidue(t *testing.T) {
	var a GroupAssembler
	if _, _, _, err := a.Feed(part(5, 0, 3, 1)); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := a.Feed(part(5, 1, 3, 2)); err != nil {
		t.Fatal(err)
	}
	// New group start with the same CID: the torn group vanishes, the new
	// single-record group applies alone.
	cid, ops, done, err := a.Feed(part(5, 0, 1, 9))
	if !done || err != nil || cid != 5 {
		t.Fatalf("restart: cid=%d done=%v err=%v", cid, done, err)
	}
	if len(ops) != 1 || ops[0].RID != 9 {
		t.Fatalf("torn parts leaked into the new group: %+v", ops)
	}
	if a.Dropped() != 1 {
		t.Fatalf("dropped=%d, want 1", a.Dropped())
	}

	// DDL after a pending prefix abandons it too.
	if _, _, _, err := a.Feed(part(6, 0, 2, 1)); err != nil {
		t.Fatal(err)
	}
	a.Abandon()
	if _, ok := a.Pending(); ok {
		t.Fatal("pending after Abandon")
	}
	// A continuation of the abandoned group is now corruption.
	if _, _, _, err := a.Feed(part(6, 1, 2, 2)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("continuation after abandon: %v, want ErrCorrupt", err)
	}
}

func TestAssemblerRejectsMismatchedContinuations(t *testing.T) {
	cases := []struct {
		name string
		rec  *Record
	}{
		{"wrong CID", part(8, 1, 3, 2)},
		{"skipped part", part(4, 2, 3, 2)},
		{"wrong group size", part(4, 1, 4, 2)},
	}
	for _, c := range cases {
		var a GroupAssembler
		if _, _, _, err := a.Feed(part(4, 0, 3, 1)); err != nil {
			t.Fatal(err)
		}
		if _, _, _, err := a.Feed(c.rec); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("%s: err=%v, want ErrCorrupt", c.name, err)
		}
	}
	// A continuation with no pending group at all.
	var a GroupAssembler
	if _, _, _, err := a.Feed(part(4, 1, 3, 1)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("orphan continuation: want ErrCorrupt")
	}
}

// TestAppendBatchRoundTrip proves the batch write path produces frames the
// normal segment reader decodes record-for-record, with Part/Parts intact and
// LSNs dense in append order.
func TestAppendBatchRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir, Sync: true})
	if err != nil {
		t.Fatal(err)
	}
	recs := []*Record{
		part(3, 0, 3, 1, 2),
		part(3, 1, 3, 3),
		part(3, 2, 3, 4, 5, 6),
	}
	recs[0].Ops[0].Payload = []byte("hello")
	lsns, err := l.AppendBatch(recs)
	if err != nil {
		t.Fatal(err)
	}
	if len(lsns) != 3 {
		t.Fatalf("%d LSNs, want 3", len(lsns))
	}
	for i, lsn := range lsns {
		if lsn.Index() != uint64(i) {
			t.Fatalf("LSN %d = %s, want index %d", i, lsn, i)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	var got []*Record
	if err := ReadAll(dir, func(r *Record) error {
		cp := *r
		got = append(got, &cp)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("read back %d records, want 3", len(got))
	}
	for i, r := range got {
		if r.CID != 3 || r.Part != uint32(i) || r.Parts != 3 {
			t.Fatalf("record %d: CID=%d Part=%d Parts=%d", i, r.CID, r.Part, r.Parts)
		}
		if len(r.Ops) != len(recs[i].Ops) {
			t.Fatalf("record %d: %d ops, want %d", i, len(r.Ops), len(recs[i].Ops))
		}
	}
	if string(got[0].Ops[0].Payload) != "hello" {
		t.Fatalf("payload %q lost in the batch round trip", got[0].Ops[0].Payload)
	}
}

// TestAppendBatchOneSyncPerGroup pins the batched path's durability cost:
// however many member records a group carries, it costs exactly one fsync.
func TestAppendBatchOneSyncPerGroup(t *testing.T) {
	l, err := Open(Options{Dir: t.TempDir(), Sync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for _, members := range []int{1, 4, 16} {
		recs := make([]*Record, members)
		for i := range recs {
			recs[i] = part(1, uint32(i), uint32(members), ts.RID(i+1))
		}
		if _, err := l.AppendBatch(recs); err != nil {
			t.Fatal(err)
		}
	}
	m := l.MetricsSnapshot()
	if m.Batches != 3 || m.Syncs != 3 {
		t.Fatalf("3 groups cost %d syncs over %d batches, want exactly 1 per group", m.Syncs, m.Batches)
	}
	if m.Records != 1+4+16 {
		t.Fatalf("records=%d, want %d", m.Records, 1+4+16)
	}
}
