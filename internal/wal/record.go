// Package wal implements the common persistency of §2.1: the unified
// transaction manager "provides durability based on logging and
// checkpointing to a common persistency". The log is a sequence of
// CRC-protected records — DDL records and group-commit records bundling a
// whole commit group's operations with its CID — written and flushed before
// commit acknowledgement; checkpoints serialize the table space at a commit
// timestamp so older log segments can be dropped. Recovery loads the latest
// checkpoint and replays every group-commit record above its timestamp.
package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"hybridgc/internal/mvcc"
	"hybridgc/internal/ts"
)

// Kind tags a log record.
type Kind uint8

const (
	// KindDDL records a table creation.
	KindDDL Kind = iota + 1
	// KindGroup records one commit group: the CID and every operation of
	// every member transaction, in execution order.
	KindGroup
)

// Op is one logged data operation.
type Op struct {
	Op      mvcc.OpType
	Table   ts.TableID
	RID     ts.RID
	Payload []byte
}

// Record is one decoded log record.
type Record struct {
	Kind Kind

	// DDL fields.
	TableID   ts.TableID
	TableName string

	// Group fields.
	CID ts.CID
	Ops []Op
}

// appendU32/U64 helpers over binary.LittleEndian.
func appendU32(b []byte, v uint32) []byte { return binary.LittleEndian.AppendUint32(b, v) }
func appendU64(b []byte, v uint64) []byte { return binary.LittleEndian.AppendUint64(b, v) }

// EncodePayload serializes the record body (without framing).
func (r *Record) EncodePayload() []byte {
	b := []byte{byte(r.Kind)}
	switch r.Kind {
	case KindDDL:
		b = appendU32(b, uint32(r.TableID))
		b = appendU32(b, uint32(len(r.TableName)))
		b = append(b, r.TableName...)
	case KindGroup:
		b = appendU64(b, uint64(r.CID))
		b = appendU32(b, uint32(len(r.Ops)))
		for _, op := range r.Ops {
			b = append(b, byte(op.Op))
			b = appendU32(b, uint32(op.Table))
			b = appendU64(b, uint64(op.RID))
			b = appendU32(b, uint32(len(op.Payload)))
			b = append(b, op.Payload...)
		}
	}
	return b
}

// decodeCursor walks an encoded payload.
type decodeCursor struct {
	b   []byte
	off int
}

func (c *decodeCursor) u8() (uint8, error) {
	if c.off+1 > len(c.b) {
		return 0, errTruncated(c.off, len(c.b))
	}
	v := c.b[c.off]
	c.off++
	return v, nil
}

func (c *decodeCursor) u32() (uint32, error) {
	if c.off+4 > len(c.b) {
		return 0, errTruncated(c.off, len(c.b))
	}
	v := binary.LittleEndian.Uint32(c.b[c.off:])
	c.off += 4
	return v, nil
}

func (c *decodeCursor) u64() (uint64, error) {
	if c.off+8 > len(c.b) {
		return 0, errTruncated(c.off, len(c.b))
	}
	v := binary.LittleEndian.Uint64(c.b[c.off:])
	c.off += 8
	return v, nil
}

func (c *decodeCursor) bytes(n int) ([]byte, error) {
	if n < 0 || c.off+n > len(c.b) {
		return nil, errTruncated(c.off, len(c.b))
	}
	v := c.b[c.off : c.off+n]
	c.off += n
	return v, nil
}

func errTruncated(off, n int) error {
	return fmt.Errorf("wal: truncated record at offset %d of %d", off, n)
}

// DecodePayload parses a record body.
func DecodePayload(b []byte) (*Record, error) {
	c := &decodeCursor{b: b}
	kind, err := c.u8()
	if err != nil {
		return nil, err
	}
	r := &Record{Kind: Kind(kind)}
	switch r.Kind {
	case KindDDL:
		id, err := c.u32()
		if err != nil {
			return nil, err
		}
		n, err := c.u32()
		if err != nil {
			return nil, err
		}
		name, err := c.bytes(int(n))
		if err != nil {
			return nil, err
		}
		r.TableID = ts.TableID(id)
		r.TableName = string(name)
	case KindGroup:
		cid, err := c.u64()
		if err != nil {
			return nil, err
		}
		r.CID = ts.CID(cid)
		nops, err := c.u32()
		if err != nil {
			return nil, err
		}
		for i := uint32(0); i < nops; i++ {
			opb, err := c.u8()
			if err != nil {
				return nil, err
			}
			tid, err := c.u32()
			if err != nil {
				return nil, err
			}
			rid, err := c.u64()
			if err != nil {
				return nil, err
			}
			plen, err := c.u32()
			if err != nil {
				return nil, err
			}
			payload, err := c.bytes(int(plen))
			if err != nil {
				return nil, err
			}
			op := Op{Op: mvcc.OpType(opb), Table: ts.TableID(tid), RID: ts.RID(rid)}
			if plen > 0 {
				op.Payload = append([]byte(nil), payload...)
			}
			r.Ops = append(r.Ops, op)
		}
	default:
		return nil, fmt.Errorf("wal: unknown record kind %d", kind)
	}
	if c.off != len(b) {
		return nil, fmt.Errorf("wal: %d trailing bytes in record", len(b)-c.off)
	}
	return r, nil
}

// crcTable is the Castagnoli table used for record checksums.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Frame wraps an encoded payload with its length and checksum:
// [u32 length][u32 crc32c][payload].
func Frame(payload []byte) []byte {
	out := make([]byte, 0, 8+len(payload))
	out = appendU32(out, uint32(len(payload)))
	out = appendU32(out, crc32.Checksum(payload, crcTable))
	return append(out, payload...)
}
