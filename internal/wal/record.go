// Package wal implements the common persistency of §2.1: the unified
// transaction manager "provides durability based on logging and
// checkpointing to a common persistency". The log is a sequence of
// CRC-protected records — DDL records and group-commit records bundling a
// whole commit group's operations with its CID — written and flushed before
// commit acknowledgement; checkpoints serialize the table space at a commit
// timestamp so older log segments can be dropped. Recovery loads the latest
// checkpoint and replays every group-commit record above its timestamp.
package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"hybridgc/internal/mvcc"
	"hybridgc/internal/ts"
)

// Kind tags a log record.
type Kind uint8

const (
	// KindDDL records a table creation.
	KindDDL Kind = iota + 1
	// KindGroup records one commit group: the CID and every operation of
	// every member transaction, in execution order.
	KindGroup
	// KindPrepare records a cross-shard participant's prepared write set
	// (two-phase commit, phase one). XID identifies the distributed
	// transaction; Ops is the participant-local write set. A prepare with no
	// matching KindResolve in the same log is in doubt and is settled at
	// recovery against the coordinator's decision record.
	KindPrepare
	// KindDecision records the coordinator's verdict for a distributed
	// transaction (commit or abort). It lives in the coordinator shard's log
	// only; the protocol is presumed-abort, so a missing decision record
	// means abort.
	KindDecision
	// KindResolve marks a prepared transaction settled in this participant's
	// log. On commit it carries the CID the participant published the write
	// set under, so replay can order it against surrounding group records;
	// on abort CID is ts.Invalid and the prepared write set is dropped.
	KindResolve
	// KindHTAPLane records that the HTAP column lane is enabled for a table:
	// TableID names the table, TableName carries the lane's schema spec (the
	// column layout the migrator decodes row images with), and CID is the
	// chunk watermark at log time. Chunks themselves are not logged — recovery
	// re-enables the lane and the migrator rebuilds chunks from the recovered
	// table state, so the watermark record is the only durability addition.
	KindHTAPLane
)

// Op is one logged data operation.
type Op struct {
	Op      mvcc.OpType
	Table   ts.TableID
	RID     ts.RID
	Payload []byte
}

// Record is one decoded log record.
type Record struct {
	Kind Kind

	// DDL fields.
	TableID   ts.TableID
	TableName string

	// Group fields. A commit group is logged as Parts consecutive records
	// sharing one CID — one record per member transaction, batched into a
	// single write and fsync by AppendBatch. Part is this record's 0-based
	// position in the group; Parts is the group size. Parts==1 (or the
	// legacy 0) is a whole group in one record. A group is replayed only
	// when all of its parts arrived: a crash can tear a batch mid-write,
	// and the torn prefix belongs to a commit that was never acknowledged.
	CID   ts.CID
	Part  uint32
	Parts uint32
	Ops   []Op

	// Two-phase-commit fields (KindPrepare, KindDecision, KindResolve). XID
	// is the cluster-wide distributed transaction identifier; Commit is the
	// verdict on a decision or resolve record. A prepare reuses Ops for the
	// participant-local write set; a commit-resolve reuses CID for the CID
	// the write set was published under.
	XID    uint64
	Commit bool
}

// appendU32/U64 helpers over binary.LittleEndian.
func appendU32(b []byte, v uint32) []byte { return binary.LittleEndian.AppendUint32(b, v) }
func appendU64(b []byte, v uint64) []byte { return binary.LittleEndian.AppendUint64(b, v) }

// EncodePayload serializes the record body (without framing).
func (r *Record) EncodePayload() []byte {
	return r.AppendPayload(nil)
}

// AppendPayload serializes the record body onto b — the allocation-free form
// the batch append path uses to assemble a whole commit group in one reused
// buffer.
func (r *Record) AppendPayload(b []byte) []byte {
	b = append(b, byte(r.Kind))
	switch r.Kind {
	case KindDDL:
		b = appendU32(b, uint32(r.TableID))
		b = appendU32(b, uint32(len(r.TableName)))
		b = append(b, r.TableName...)
	case KindGroup:
		b = appendU64(b, uint64(r.CID))
		b = appendU32(b, r.Part)
		b = appendU32(b, r.Parts)
		b = appendOps(b, r.Ops)
	case KindPrepare:
		b = appendU64(b, r.XID)
		b = appendOps(b, r.Ops)
	case KindDecision:
		b = appendU64(b, r.XID)
		b = appendBool(b, r.Commit)
	case KindResolve:
		b = appendU64(b, r.XID)
		b = appendBool(b, r.Commit)
		b = appendU64(b, uint64(r.CID))
	case KindHTAPLane:
		b = appendU32(b, uint32(r.TableID))
		b = appendU32(b, uint32(len(r.TableName)))
		b = append(b, r.TableName...)
		b = appendU64(b, uint64(r.CID))
	}
	return b
}

func appendBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}

func appendOps(b []byte, ops []Op) []byte {
	b = appendU32(b, uint32(len(ops)))
	for _, op := range ops {
		b = append(b, byte(op.Op))
		b = appendU32(b, uint32(op.Table))
		b = appendU64(b, uint64(op.RID))
		b = appendU32(b, uint32(len(op.Payload)))
		b = append(b, op.Payload...)
	}
	return b
}

// decodeCursor walks an encoded payload.
type decodeCursor struct {
	b   []byte
	off int
}

func (c *decodeCursor) u8() (uint8, error) {
	if c.off+1 > len(c.b) {
		return 0, errTruncated(c.off, len(c.b))
	}
	v := c.b[c.off]
	c.off++
	return v, nil
}

func (c *decodeCursor) u32() (uint32, error) {
	if c.off+4 > len(c.b) {
		return 0, errTruncated(c.off, len(c.b))
	}
	v := binary.LittleEndian.Uint32(c.b[c.off:])
	c.off += 4
	return v, nil
}

func (c *decodeCursor) u64() (uint64, error) {
	if c.off+8 > len(c.b) {
		return 0, errTruncated(c.off, len(c.b))
	}
	v := binary.LittleEndian.Uint64(c.b[c.off:])
	c.off += 8
	return v, nil
}

func (c *decodeCursor) bytes(n int) ([]byte, error) {
	if n < 0 || c.off+n > len(c.b) {
		return nil, errTruncated(c.off, len(c.b))
	}
	v := c.b[c.off : c.off+n]
	c.off += n
	return v, nil
}

func (c *decodeCursor) bool() (bool, error) {
	v, err := c.u8()
	return v != 0, err
}

func (c *decodeCursor) ops() ([]Op, error) {
	nops, err := c.u32()
	if err != nil {
		return nil, err
	}
	var out []Op
	for i := uint32(0); i < nops; i++ {
		opb, err := c.u8()
		if err != nil {
			return nil, err
		}
		tid, err := c.u32()
		if err != nil {
			return nil, err
		}
		rid, err := c.u64()
		if err != nil {
			return nil, err
		}
		plen, err := c.u32()
		if err != nil {
			return nil, err
		}
		payload, err := c.bytes(int(plen))
		if err != nil {
			return nil, err
		}
		op := Op{Op: mvcc.OpType(opb), Table: ts.TableID(tid), RID: ts.RID(rid)}
		if plen > 0 {
			op.Payload = append([]byte(nil), payload...)
		}
		out = append(out, op)
	}
	return out, nil
}

func errTruncated(off, n int) error {
	return fmt.Errorf("wal: truncated record at offset %d of %d", off, n)
}

// DecodePayload parses a record body.
func DecodePayload(b []byte) (*Record, error) {
	c := &decodeCursor{b: b}
	kind, err := c.u8()
	if err != nil {
		return nil, err
	}
	r := &Record{Kind: Kind(kind)}
	switch r.Kind {
	case KindDDL:
		id, err := c.u32()
		if err != nil {
			return nil, err
		}
		n, err := c.u32()
		if err != nil {
			return nil, err
		}
		name, err := c.bytes(int(n))
		if err != nil {
			return nil, err
		}
		r.TableID = ts.TableID(id)
		r.TableName = string(name)
	case KindGroup:
		cid, err := c.u64()
		if err != nil {
			return nil, err
		}
		r.CID = ts.CID(cid)
		if r.Part, err = c.u32(); err != nil {
			return nil, err
		}
		if r.Parts, err = c.u32(); err != nil {
			return nil, err
		}
		if r.Ops, err = c.ops(); err != nil {
			return nil, err
		}
	case KindPrepare:
		if r.XID, err = c.u64(); err != nil {
			return nil, err
		}
		if r.Ops, err = c.ops(); err != nil {
			return nil, err
		}
	case KindDecision:
		if r.XID, err = c.u64(); err != nil {
			return nil, err
		}
		if r.Commit, err = c.bool(); err != nil {
			return nil, err
		}
	case KindResolve:
		if r.XID, err = c.u64(); err != nil {
			return nil, err
		}
		if r.Commit, err = c.bool(); err != nil {
			return nil, err
		}
		cid, err := c.u64()
		if err != nil {
			return nil, err
		}
		r.CID = ts.CID(cid)
	case KindHTAPLane:
		id, err := c.u32()
		if err != nil {
			return nil, err
		}
		n, err := c.u32()
		if err != nil {
			return nil, err
		}
		spec, err := c.bytes(int(n))
		if err != nil {
			return nil, err
		}
		cid, err := c.u64()
		if err != nil {
			return nil, err
		}
		r.TableID = ts.TableID(id)
		r.TableName = string(spec)
		r.CID = ts.CID(cid)
	default:
		return nil, fmt.Errorf("wal: unknown record kind %d", kind)
	}
	if c.off != len(b) {
		return nil, fmt.Errorf("wal: %d trailing bytes in record", len(b)-c.off)
	}
	return r, nil
}

// crcTable is the Castagnoli table used for record checksums.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Frame wraps an encoded payload with its length and checksum:
// [u32 length][u32 crc32c][payload].
func Frame(payload []byte) []byte {
	return AppendFrame(make([]byte, 0, 8+len(payload)), payload)
}

// AppendFrame appends the framed payload to dst. payload must not alias the
// tail of dst (the checksum is computed before the copy).
func AppendFrame(dst, payload []byte) []byte {
	dst = appendU32(dst, uint32(len(payload)))
	dst = appendU32(dst, crc32.Checksum(payload, crcTable))
	return append(dst, payload...)
}
