package wal

import (
	"testing"

	"hybridgc/internal/mvcc"
	"hybridgc/internal/ts"
)

// benchGroup builds one commit group's worth of records: members transactions
// of ops operations each, payload bytes per operation.
func benchGroup(members, ops, payload int) []*Record {
	img := make([]byte, payload)
	recs := make([]*Record, members)
	for m := range recs {
		r := &Record{Kind: KindGroup, CID: 1, Part: uint32(m), Parts: uint32(members)}
		for o := 0; o < ops; o++ {
			r.Ops = append(r.Ops, Op{
				Op: mvcc.OpUpdate, Table: 1, RID: ts.RID(m*ops + o + 1), Payload: img,
			})
		}
		recs[m] = r
	}
	return recs
}

// BenchmarkWALAppendLoop is the per-record append path: one Write and one
// Sync per record — the baseline AppendBatch replaces for commit groups.
func BenchmarkWALAppendLoop(b *testing.B) {
	l, err := Open(Options{Dir: b.TempDir(), Sync: true})
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	recs := benchGroup(16, 4, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, r := range recs {
			if err := l.Append(r); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkWALAppendBatch is the batched commit-group path: the whole group
// assembled in one reused buffer, one Write, one Sync. Same workload shape as
// BenchmarkWALAppendLoop (16 members x 4 ops x 64B) for a direct comparison.
func BenchmarkWALAppendBatch(b *testing.B) {
	l, err := Open(Options{Dir: b.TempDir(), Sync: true})
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	recs := benchGroup(16, 4, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := l.AppendBatch(recs); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	m := l.MetricsSnapshot()
	b.ReportMetric(float64(m.Syncs)/float64(m.Batches), "syncs/group")
}
