package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"hybridgc/internal/fault"
	"hybridgc/internal/ts"
)

// Failpoint sites on the checkpoint path. Checkpoints are written to a temp
// file and renamed into place, so a failure at any of these leaves the
// previous checkpoint intact and recovery unaffected — which the crash
// matrix verifies.
var (
	// FPCheckpointWrite fires before the temp file is created.
	FPCheckpointWrite = fault.Declare("wal/checkpoint-write", "before writing the checkpoint temp file")
	// FPCheckpointSync fires after the body is written, before the temp file
	// is fsynced.
	FPCheckpointSync = fault.Declare("wal/checkpoint-sync", "after writing, before syncing the checkpoint temp file")
	// FPCheckpointRename fires after the temp file is synced, before the
	// atomic rename — the instant a crash strands a complete but unnamed
	// checkpoint next to the old one.
	FPCheckpointRename = fault.Declare("wal/checkpoint-rename", "after temp-file sync, before the atomic rename")
)

// Checkpoint is a serialized, transactionally consistent table-space image:
// the catalog, every record's post-image as of the checkpoint CID, and the
// RID allocator positions. Log records with CID <= CID are covered and can
// be dropped.
type Checkpoint struct {
	// CID is the commit timestamp the snapshot was taken at.
	CID ts.CID
	// Tables in catalog (ID) order.
	Tables []CheckpointTable
}

// CheckpointTable is one table's slice of a checkpoint.
type CheckpointTable struct {
	ID      ts.TableID
	Name    string
	NextRID ts.RID
	Records []CheckpointRecord
}

// CheckpointRecord is one row image.
type CheckpointRecord struct {
	RID   ts.RID
	Image []byte
}

const checkpointMagic = uint32(0x48474343) // "HGCC"

// WriteCheckpoint atomically writes the checkpoint to dir via a temp file
// and rename. The whole body is checksummed.
func WriteCheckpoint(dir string, ck *Checkpoint) error {
	if err := fault.Hit(FPCheckpointWrite); err != nil {
		return err
	}
	body := encodeCheckpoint(ck)
	tmp, err := os.CreateTemp(dir, "checkpoint-*.tmp")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	w := bufio.NewWriterSize(tmp, 1<<16)
	var head [12]byte
	binary.LittleEndian.PutUint32(head[0:4], checkpointMagic)
	binary.LittleEndian.PutUint32(head[4:8], uint32(len(body)))
	binary.LittleEndian.PutUint32(head[8:12], crc32.Checksum(body, crcTable))
	if _, err := w.Write(head[:]); err != nil {
		return err
	}
	if _, err := w.Write(body); err != nil {
		return err
	}
	if err := w.Flush(); err != nil {
		return err
	}
	if err := fault.Hit(FPCheckpointSync); err != nil {
		return err
	}
	if err := tmp.Sync(); err != nil {
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := fault.Hit(FPCheckpointRename); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), filepath.Join(dir, checkpointName))
}

// ErrNoCheckpoint reports a directory without a checkpoint (recovery then
// replays the log from scratch).
var ErrNoCheckpoint = errors.New("wal: no checkpoint")

// ReadCheckpoint loads the checkpoint from dir.
func ReadCheckpoint(dir string) (*Checkpoint, error) {
	f, err := os.Open(filepath.Join(dir, checkpointName))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, ErrNoCheckpoint
		}
		return nil, err
	}
	defer f.Close()
	var head [12]byte
	if _, err := io.ReadFull(f, head[:]); err != nil {
		return nil, fmt.Errorf("wal: checkpoint header: %w", err)
	}
	if binary.LittleEndian.Uint32(head[0:4]) != checkpointMagic {
		return nil, errors.New("wal: bad checkpoint magic")
	}
	body := make([]byte, binary.LittleEndian.Uint32(head[4:8]))
	if _, err := io.ReadFull(f, body); err != nil {
		return nil, fmt.Errorf("wal: checkpoint body: %w", err)
	}
	if crc32.Checksum(body, crcTable) != binary.LittleEndian.Uint32(head[8:12]) {
		return nil, errors.New("wal: checkpoint checksum mismatch")
	}
	return decodeCheckpoint(body)
}

// EncodeCheckpoint serializes a checkpoint body (no header, no checksum) —
// the form a replication bootstrap ships over the wire, where the transport
// frame already carries integrity.
func EncodeCheckpoint(ck *Checkpoint) []byte { return encodeCheckpoint(ck) }

// DecodeCheckpoint is the inverse of EncodeCheckpoint.
func DecodeCheckpoint(b []byte) (*Checkpoint, error) { return decodeCheckpoint(b) }

func encodeCheckpoint(ck *Checkpoint) []byte {
	var b []byte
	b = appendU64(b, uint64(ck.CID))
	b = appendU32(b, uint32(len(ck.Tables)))
	for _, t := range ck.Tables {
		b = appendU32(b, uint32(t.ID))
		b = appendU32(b, uint32(len(t.Name)))
		b = append(b, t.Name...)
		b = appendU64(b, uint64(t.NextRID))
		b = appendU32(b, uint32(len(t.Records)))
		for _, r := range t.Records {
			b = appendU64(b, uint64(r.RID))
			b = appendU32(b, uint32(len(r.Image)))
			b = append(b, r.Image...)
		}
	}
	return b
}

func decodeCheckpoint(b []byte) (*Checkpoint, error) {
	c := &decodeCursor{b: b}
	cid, err := c.u64()
	if err != nil {
		return nil, err
	}
	ck := &Checkpoint{CID: ts.CID(cid)}
	ntables, err := c.u32()
	if err != nil {
		return nil, err
	}
	for i := uint32(0); i < ntables; i++ {
		var t CheckpointTable
		id, err := c.u32()
		if err != nil {
			return nil, err
		}
		t.ID = ts.TableID(id)
		nameLen, err := c.u32()
		if err != nil {
			return nil, err
		}
		name, err := c.bytes(int(nameLen))
		if err != nil {
			return nil, err
		}
		t.Name = string(name)
		next, err := c.u64()
		if err != nil {
			return nil, err
		}
		t.NextRID = ts.RID(next)
		nrec, err := c.u32()
		if err != nil {
			return nil, err
		}
		for j := uint32(0); j < nrec; j++ {
			rid, err := c.u64()
			if err != nil {
				return nil, err
			}
			ilen, err := c.u32()
			if err != nil {
				return nil, err
			}
			img, err := c.bytes(int(ilen))
			if err != nil {
				return nil, err
			}
			t.Records = append(t.Records, CheckpointRecord{
				RID: ts.RID(rid), Image: append([]byte(nil), img...)})
		}
		ck.Tables = append(ck.Tables, t)
	}
	if c.off != len(b) {
		return nil, errors.New("wal: trailing bytes in checkpoint")
	}
	return ck, nil
}
