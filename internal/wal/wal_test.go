package wal

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"hybridgc/internal/mvcc"
	"hybridgc/internal/ts"
)

func TestRecordRoundTripDDL(t *testing.T) {
	r := &Record{Kind: KindDDL, TableID: 7, TableName: "STOCK"}
	got, err := DecodePayload(r.EncodePayload())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, r) {
		t.Fatalf("roundtrip: %+v != %+v", got, r)
	}
}

func TestRecordRoundTripGroup(t *testing.T) {
	r := &Record{Kind: KindGroup, CID: 42, Ops: []Op{
		{Op: mvcc.OpInsert, Table: 1, RID: 10, Payload: []byte("hello")},
		{Op: mvcc.OpUpdate, Table: 2, RID: 20, Payload: []byte("world")},
		{Op: mvcc.OpDelete, Table: 3, RID: 30},
	}}
	got, err := DecodePayload(r.EncodePayload())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, r) {
		t.Fatalf("roundtrip:\n got %+v\nwant %+v", got, r)
	}
}

func TestRecordRoundTripQuick(t *testing.T) {
	f := func(cid uint64, tid uint32, rid uint64, payload []byte) bool {
		r := &Record{Kind: KindGroup, CID: ts.CID(cid), Ops: []Op{
			{Op: mvcc.OpUpdate, Table: ts.TableID(tid), RID: ts.RID(rid), Payload: payload},
		}}
		if len(payload) == 0 {
			r.Ops[0].Payload = nil
		}
		got, err := DecodePayload(r.EncodePayload())
		return err == nil && reflect.DeepEqual(got, r)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := DecodePayload(nil); err == nil {
		t.Fatal("empty payload must fail")
	}
	if _, err := DecodePayload([]byte{99}); err == nil {
		t.Fatal("unknown kind must fail")
	}
	r := &Record{Kind: KindDDL, TableID: 1, TableName: "X"}
	b := r.EncodePayload()
	if _, err := DecodePayload(b[:len(b)-1]); err == nil {
		t.Fatal("truncated payload must fail")
	}
	if _, err := DecodePayload(append(b, 0)); err == nil {
		t.Fatal("trailing bytes must fail")
	}
}

func writeRecords(t *testing.T, l *Log, n int, startCID uint64) {
	t.Helper()
	for i := 0; i < n; i++ {
		err := l.Append(&Record{Kind: KindGroup, CID: ts.CID(startCID + uint64(i)), Ops: []Op{
			{Op: mvcc.OpInsert, Table: 1, RID: ts.RID(i + 1), Payload: []byte("x")},
		}})
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestLogAppendAndReadAll(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir, Sync: true})
	if err != nil {
		t.Fatal(err)
	}
	writeRecords(t, l, 5, 100)
	if l.Size() == 0 {
		t.Fatal("size must grow")
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	var cids []ts.CID
	if err := ReadAll(dir, func(r *Record) error {
		cids = append(cids, r.CID)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(cids) != 5 || cids[0] != 100 || cids[4] != 104 {
		t.Fatalf("replayed %v", cids)
	}
}

func TestLogRotateAndSegmentRemoval(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	writeRecords(t, l, 3, 1)
	closed, err := l.Rotate()
	if err != nil {
		t.Fatal(err)
	}
	writeRecords(t, l, 2, 10)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	segs, err := Segments(dir)
	if err != nil || len(segs) != 2 {
		t.Fatalf("segments = %v, %v", segs, err)
	}
	if err := RemoveSegmentsThrough(dir, closed); err != nil {
		t.Fatal(err)
	}
	var cids []ts.CID
	if err := ReadAll(dir, func(r *Record) error {
		cids = append(cids, r.CID)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(cids) != 2 || cids[0] != 10 {
		t.Fatalf("after removal replayed %v", cids)
	}
}

func TestLogReopenAppendsNewSegment(t *testing.T) {
	dir := t.TempDir()
	l, _ := Open(Options{Dir: dir})
	writeRecords(t, l, 2, 1)
	l.Close()
	l2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	writeRecords(t, l2, 2, 50)
	l2.Close()
	n := 0
	if err := ReadAll(dir, func(*Record) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Fatalf("replayed %d records, want 4", n)
	}
}

func TestTornTailStopsReplayCleanly(t *testing.T) {
	dir := t.TempDir()
	l, _ := Open(Options{Dir: dir})
	writeRecords(t, l, 4, 1)
	l.Close()
	segs, _ := Segments(dir)
	path := segs[0].Path
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Tear the last record: drop its final 3 bytes.
	if err := os.WriteFile(path, b[:len(b)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	n := 0
	if err := ReadSegment(path, func(*Record) error { n++; return nil }); err != nil {
		t.Fatalf("torn tail must not error: %v", err)
	}
	if n != 3 {
		t.Fatalf("replayed %d records, want 3 (torn 4th dropped)", n)
	}
	// Flipped byte inside the last record: checksum stops replay there too.
	b2 := append([]byte(nil), b...)
	b2[len(b2)-1] ^= 0xff
	os.WriteFile(path, b2, 0o644)
	n = 0
	if err := ReadSegment(path, func(*Record) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("replayed %d records after corruption, want 3", n)
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	dir := t.TempDir()
	ck := &Checkpoint{CID: 99, Tables: []CheckpointTable{
		{ID: 1, Name: "A", NextRID: 10, Records: []CheckpointRecord{
			{RID: 1, Image: []byte("one")},
			{RID: 3, Image: []byte("three")},
		}},
		{ID: 2, Name: "B", NextRID: 0},
	}}
	if err := WriteCheckpoint(dir, ck); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, ck) {
		t.Fatalf("roundtrip:\n got %+v\nwant %+v", got, ck)
	}
	// Overwrite is atomic and replaces.
	ck2 := &Checkpoint{CID: 150}
	if err := WriteCheckpoint(dir, ck2); err != nil {
		t.Fatal(err)
	}
	got2, _ := ReadCheckpoint(dir)
	if got2.CID != 150 {
		t.Fatalf("overwritten checkpoint CID = %d", got2.CID)
	}
}

func TestCheckpointMissingAndCorrupt(t *testing.T) {
	dir := t.TempDir()
	if _, err := ReadCheckpoint(dir); err != ErrNoCheckpoint {
		t.Fatalf("missing checkpoint = %v", err)
	}
	if err := WriteCheckpoint(dir, &Checkpoint{CID: 1}); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, checkpointName)
	b, _ := os.ReadFile(path)
	b[len(b)-1] ^= 0x1
	// A zero-table checkpoint body is tiny; flip a header byte instead if
	// the body is empty.
	if len(b) > 12 {
		os.WriteFile(path, b, 0o644)
	} else {
		os.WriteFile(path, bytes.Replace(b, b[4:5], []byte{0xff}, 1), 0o644)
	}
	if _, err := ReadCheckpoint(dir); err == nil {
		t.Fatal("corrupt checkpoint must fail")
	}
}

// TestConcurrentAppends checks that DDL records (written by any session
// thread) interleaved with group-commit records (written by the committer)
// land intact: every record replays, none torn.
func TestConcurrentAppends(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	const writers = 6
	const perWriter = 100
	errCh := make(chan error, writers)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				var rec *Record
				if i%10 == 0 {
					rec = &Record{Kind: KindDDL, TableID: ts.TableID(w + 1), TableName: "T"}
				} else {
					rec = &Record{Kind: KindGroup, CID: ts.CID(w*perWriter + i), Ops: []Op{
						{Op: mvcc.OpUpdate, Table: 1, RID: ts.RID(i), Payload: []byte("p")},
					}}
				}
				if err := l.Append(rec); err != nil {
					errCh <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	n := 0
	if err := ReadAll(dir, func(*Record) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != writers*perWriter {
		t.Fatalf("replayed %d records, want %d", n, writers*perWriter)
	}
}

// TestReadSegmentConcurrentWithAppend covers the replication catch-up path
// reading the active segment while the appender keeps writing: reads are
// bounded to the file size observed at open, so an in-flight frame surfaces
// as a (tolerated) torn tail, never as ErrCorrupt — even when the appender
// finishes the frame between the reader's checksum and its tail probe.
func TestReadSegmentConcurrentWithAppend(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	stop := make(chan struct{})
	appErr := make(chan error, 1)
	go func() {
		defer close(appErr)
		// Mix small frames with ones larger than the writer's buffer so a
		// flush spans several write calls — the widest window for a reader
		// to observe a partially visible frame.
		big := bytes.Repeat([]byte("x"), 96<<10)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			payload := []byte("small")
			if i%40 == 0 {
				payload = big
			}
			rec := &Record{Kind: KindGroup, CID: ts.CID(i + 1), Ops: []Op{
				{Op: mvcc.OpUpdate, Table: 1, RID: ts.RID(i), Payload: payload},
			}}
			if err := l.Append(rec); err != nil {
				appErr <- err
				return
			}
		}
	}()

	segs, err := Segments(dir)
	if err != nil || len(segs) == 0 {
		t.Fatalf("segments: %v (%d)", err, len(segs))
	}
	path := segs[len(segs)-1].Path
	deadline := time.Now().Add(300 * time.Millisecond)
	reads := 0
	for time.Now().Before(deadline) {
		err := ReadSegmentPayloads(path, func(uint64, []byte) error { return nil })
		if err != nil {
			t.Fatalf("concurrent segment read: %v", err)
		}
		reads++
	}
	close(stop)
	if err := <-appErr; err != nil {
		t.Fatal(err)
	}
	if reads == 0 {
		t.Fatal("reader never completed a pass")
	}
}

// TestNextLSNConcurrentContract exercises NextLSN's memory-ordering contract
// under the race detector: polled concurrently with single Appends and
// AppendBatch groups, the observed head must be monotonically non-decreasing
// and must never land strictly inside a batch's LSN range — a group's LSNs
// are assigned under one lock acquisition, so a consistency token taken from
// NextLSN can never split a commit group.
func TestNextLSNConcurrentContract(t *testing.T) {
	l, err := Open(Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	stop := make(chan struct{})
	var mu sync.Mutex
	var batches [][2]LSN // [first, last] of every appended batch
	appErr := make(chan error, 1)
	go func() {
		defer close(appErr)
		for i := 0; i < 400; i++ {
			select {
			case <-stop:
				return
			default:
			}
			rec := func(cid int) *Record {
				return &Record{Kind: KindGroup, CID: ts.CID(cid), Ops: []Op{
					{Op: mvcc.OpUpdate, Table: 1, RID: ts.RID(cid), Payload: []byte("x")},
				}}
			}
			if i%4 == 0 {
				lsns, err := l.AppendBatch([]*Record{rec(3*i + 1), rec(3*i + 2), rec(3*i + 3)})
				if err != nil {
					appErr <- err
					return
				}
				mu.Lock()
				batches = append(batches, [2]LSN{lsns[0], lsns[len(lsns)-1]})
				mu.Unlock()
			} else if err := l.Append(rec(3*i + 1)); err != nil {
				appErr <- err
				return
			}
		}
	}()

	var prev LSN
	deadline := time.Now().Add(300 * time.Millisecond)
	for time.Now().Before(deadline) {
		head := l.NextLSN()
		if head < prev {
			t.Fatalf("NextLSN regressed: %s after %s", head, prev)
		}
		prev = head
		mu.Lock()
		for _, b := range batches {
			if head > b[0] && head <= b[1] {
				t.Errorf("NextLSN %s splits batch [%s, %s]", head, b[0], b[1])
			}
		}
		mu.Unlock()
		if t.Failed() {
			break
		}
	}
	close(stop)
	if err := <-appErr; err != nil {
		t.Fatal(err)
	}
}
