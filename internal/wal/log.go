package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"hybridgc/internal/fault"
)

// Failpoint sites on the logging path (zero-cost unless a test arms them).
// Each site marks one instant where a crash or I/O error leaves the
// persistency in a distinct state the recovery path must handle; the
// crash-matrix harness simulates a failure at every one of them.
var (
	// FPAppend fires before any byte of a record reaches the segment: a
	// failure here loses the record entirely.
	FPAppend = fault.Declare("wal/append", "before writing a log record")
	// FPAppendTorn writes only the first half of the frame before failing —
	// the classic torn tail a power cut mid-write leaves behind.
	FPAppendTorn = fault.Declare("wal/append-torn", "write half a frame, then fail (torn tail)")
	// FPAppendBatchTorn writes only the first half of a batched commit
	// group's frames before failing: some member records of the group reach
	// the disk, the rest do not. Recovery must treat the whole group as
	// absent — it was never acknowledged.
	FPAppendBatchTorn = fault.Declare("wal/append-batch-torn", "write half a commit-group batch, then fail")
	// FPSync fires after the record is flushed to the OS but before fsync:
	// the commit is not acknowledged, yet the record may survive the crash
	// (commit ambiguity).
	FPSync = fault.Declare("wal/fsync", "after flush, before fsync of a record")
	// FPRotate fires at the start of segment rotation.
	FPRotate = fault.Declare("wal/rotate", "before closing the active segment on rotation")
	// FPSegmentRemove fires before covered segments are pruned after a
	// checkpoint; leftover covered segments must replay idempotently.
	FPSegmentRemove = fault.Declare("wal/segment-remove", "before deleting a checkpoint-covered segment")
)

// segment file names are log-<seq>.wal; checkpoints are checkpoint.ckpt
// (written atomically via rename).
const (
	segmentPrefix  = "log-"
	segmentSuffix  = ".wal"
	checkpointName = "checkpoint.ckpt"
)

// LSN identifies one log record's position: the segment sequence number in
// the high 32 bits and the record's index within that segment in the low 32.
// LSNs are totally ordered and strictly increase across Append and Rotate,
// so they serve as the replication stream's cursor without any change to the
// on-disk segment format — both the append path and a segment read derive
// the same LSN for the same record.
type LSN uint64

// MakeLSN composes an LSN from a segment sequence and a record index.
func MakeLSN(seg, idx uint64) LSN { return LSN(seg<<32 | idx&0xffffffff) }

// Segment returns the segment sequence number the LSN points into.
func (l LSN) Segment() uint64 { return uint64(l) >> 32 }

// Index returns the record index within the segment.
func (l LSN) Index() uint64 { return uint64(l) & 0xffffffff }

func (l LSN) String() string { return fmt.Sprintf("%d/%d", l.Segment(), l.Index()) }

// Appended is one record as the append path saw it: the LSN it was assigned
// and its encoded (unframed) payload. This is exactly what a replication
// stream ships, so subscribers never re-encode.
type Appended struct {
	LSN     LSN
	Payload []byte
}

// Subscription delivers every record appended after the subscription was
// taken, in order, on a bounded channel. If the subscriber falls behind and
// the buffer fills, the subscription is cancelled by the appender (the
// channel is closed and Overflowed reports true) — a replication stream then
// tears down and the replica reconnects from its applied LSN, rather than
// the WAL blocking commits on a slow consumer.
type Subscription struct {
	l          *Log
	ch         chan Appended
	closed     bool // guarded by l.mu
	overflowed bool // guarded by l.mu
}

// C is the delivery channel; it is closed on Close or on overflow.
func (s *Subscription) C() <-chan Appended { return s.ch }

// Overflowed reports whether the appender cancelled the subscription because
// the buffer filled.
func (s *Subscription) Overflowed() bool {
	s.l.mu.Lock()
	defer s.l.mu.Unlock()
	return s.overflowed
}

// Close cancels the subscription. Safe to call more than once, and safe
// concurrently with Append.
func (s *Subscription) Close() {
	s.l.mu.Lock()
	defer s.l.mu.Unlock()
	s.l.dropSubLocked(s)
}

// Options configures a Log.
type Options struct {
	// Dir is the persistency directory.
	Dir string
	// Sync issues an fsync after every flushed group; when false, records
	// are buffered and flushed but not synced (faster, still crash-readable
	// up to the OS cache).
	Sync bool
}

// Log is the append side of the write-ahead log. After any write, flush or
// sync error the log latches into a failed state: the kernel's page-cache
// contents after a failed fsync are unknown, and a partial frame may have
// reached the file, so appending anything further could bury an
// already-acknowledged commit behind an unreadable tail. Every subsequent
// Append or Rotate returns ErrLogFailed wrapping the original cause; the
// only way forward is recovery through a fresh Open.
type Log struct {
	opts Options

	mu      sync.Mutex
	seq     uint64
	recs    uint64 // records appended to the current segment
	f       *os.File
	w       *bufio.Writer
	size    int64
	failErr error
	subs    map[*Subscription]struct{}

	// batchBuf is AppendBatch's reused frame-assembly buffer: the whole
	// commit group is encoded and framed here, then written with one Write
	// and made durable with one Sync.
	batchBuf []byte

	// Write-path counters (guarded by mu): appended records, batch calls,
	// and fsyncs issued. records/syncs is the "fsyncs per group" indicator
	// the batched group commit exists to push down to 1.
	ctrRecords int64
	ctrBatches int64
	ctrSyncs   int64
}

// Metrics is a snapshot of the log's write-path counters.
type Metrics struct {
	// Records is the number of records appended (batched or not).
	Records int64
	// Batches counts AppendBatch calls that wrote at least one record.
	Batches int64
	// Syncs counts fsyncs issued on the append path.
	Syncs int64
}

// MetricsSnapshot returns the current write-path counters.
func (l *Log) MetricsSnapshot() Metrics {
	l.mu.Lock()
	defer l.mu.Unlock()
	return Metrics{Records: l.ctrRecords, Batches: l.ctrBatches, Syncs: l.ctrSyncs}
}

// ErrLogFailed reports an append on a log that already failed an I/O
// operation and fail-stopped.
var ErrLogFailed = errors.New("wal: log fail-stopped after I/O error")

// Open creates (or continues) the log in dir, appending to a fresh segment
// after the highest existing one — recovery reads old segments, new writes
// never touch them.
func Open(opts Options) (*Log, error) {
	if opts.Dir == "" {
		return nil, errors.New("wal: empty directory")
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, err
	}
	segs, err := Segments(opts.Dir)
	if err != nil {
		return nil, err
	}
	next := uint64(1)
	if n := len(segs); n > 0 {
		next = segs[n-1].Seq + 1
	}
	l := &Log{opts: opts, seq: next}
	if err := l.openSegmentLocked(); err != nil {
		return nil, err
	}
	return l, nil
}

func (l *Log) openSegmentLocked() error {
	name := filepath.Join(l.opts.Dir, fmt.Sprintf("%s%016d%s", segmentPrefix, l.seq, segmentSuffix))
	f, err := os.OpenFile(name, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	l.f = f
	l.w = bufio.NewWriterSize(f, 1<<16)
	l.size = 0
	l.recs = 0
	return nil
}

// NextLSN returns the LSN the next Append will assign. On a replica this is
// the "applied LSN" once every received record has been replayed; on the
// primary it is the stream head replicas chase — and, since PR 9, the
// session consistency token stamped on COMMIT/EXEC responses.
//
// Memory-ordering contract: NextLSN acquires the same mutex Append and
// AppendBatch assign LSNs and write under, so it is safe from any goroutine
// and its result is a *publication barrier* — when NextLSN returns head,
// every record with LSN < head has fully completed its Append: its bytes
// were written (and, with Sync, fsynced) and its subscribers notified before
// the lock was released. A batch assigns all of its LSNs under one lock
// acquisition, so a token observed after a group commit can never split the
// group: either the whole group is below the token or none of it is. This
// happens-before edge is what lets a replica compare its applied LSN against
// a token from another machine — applied ≥ token implies every write the
// token covers has been replayed.
func (l *Log) NextLSN() LSN {
	l.mu.Lock()
	defer l.mu.Unlock()
	return MakeLSN(l.seq, l.recs)
}

// Subscribe registers a live tail over subsequent appends with the given
// channel capacity (<=0 selects 4096). The caller must drain C() promptly;
// see Subscription for the overflow contract.
func (l *Log) Subscribe(buf int) *Subscription {
	if buf <= 0 {
		buf = 4096
	}
	s := &Subscription{l: l, ch: make(chan Appended, buf)}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.subs == nil {
		l.subs = make(map[*Subscription]struct{})
	}
	l.subs[s] = struct{}{}
	return s
}

// dropSubLocked removes and closes a subscription; idempotent.
func (l *Log) dropSubLocked(s *Subscription) {
	if s.closed {
		return
	}
	s.closed = true
	delete(l.subs, s)
	close(s.ch)
}

// publishLocked hands one appended record to every subscriber without ever
// blocking the append path: a subscriber whose buffer is full is cancelled.
func (l *Log) publishLocked(a Appended) {
	for s := range l.subs {
		select {
		case s.ch <- a:
		default:
			s.overflowed = true
			l.dropSubLocked(s)
		}
	}
}

// failLocked latches the first I/O error; the log refuses all writes after.
func (l *Log) failLocked(err error) error {
	if l.failErr == nil {
		l.failErr = err
	}
	return err
}

// Failed returns the error that fail-stopped the log, or nil.
func (l *Log) Failed() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.failErr
}

// Append frames, writes and flushes one record; with Sync set it also
// fsyncs, making the record durable before the caller acknowledges commit.
// Any I/O error fail-stops the log permanently (see Log).
func (l *Log) Append(r *Record) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return errors.New("wal: log closed")
	}
	if l.failErr != nil {
		return fmt.Errorf("%w: %v", ErrLogFailed, l.failErr)
	}
	if err := fault.Hit(FPAppend); err != nil {
		return l.failLocked(err)
	}
	payload := r.EncodePayload()
	framed := Frame(payload)
	if err := fault.Hit(FPAppendTorn); err != nil {
		// Simulate a torn write: the first half of the frame reaches the OS,
		// then the device dies. Recovery must stop replay at the torn frame.
		if _, werr := l.w.Write(framed[:len(framed)/2]); werr == nil {
			_ = l.w.Flush()
		}
		return l.failLocked(err)
	}
	if _, err := l.w.Write(framed); err != nil {
		return l.failLocked(err)
	}
	l.size += int64(len(framed))
	if err := l.w.Flush(); err != nil {
		return l.failLocked(err)
	}
	if l.opts.Sync {
		if err := fault.Hit(FPSync); err != nil {
			return l.failLocked(err)
		}
		if err := l.f.Sync(); err != nil {
			return l.failLocked(err)
		}
	}
	lsn := MakeLSN(l.seq, l.recs)
	l.recs++
	l.ctrRecords++
	if l.opts.Sync {
		l.ctrSyncs++
	}
	l.publishLocked(Appended{LSN: lsn, Payload: payload})
	return nil
}

// maxBatchBufRetain caps the assembly buffer kept across AppendBatch calls;
// one unusually large group should not pin its buffer forever.
const maxBatchBufRetain = 1 << 20

// AppendBatch frames and writes a whole commit group — one record per member
// transaction — as a single Write and, with Sync set, a single fsync, all
// under one lock acquisition. The group is assembled in a buffer reused
// across calls, so the steady-state allocation cost is the returned LSN
// slice. LSNs are assigned and published to subscribers in record order
// before the lock is released, so no concurrent Append can interleave inside
// the group. Errors fail-stop the log exactly like Append.
//
// Durability is all-or-nothing per write call, not per record: a crash
// mid-write can leave a prefix of the group's frames on disk, which is why
// group records carry Part/Parts and recovery drops incomplete groups (the
// commit was never acknowledged).
func (l *Log) AppendBatch(recs []*Record) ([]LSN, error) {
	if len(recs) == 0 {
		return nil, nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil, errors.New("wal: log closed")
	}
	if l.failErr != nil {
		return nil, fmt.Errorf("%w: %v", ErrLogFailed, l.failErr)
	}
	if err := fault.Hit(FPAppend); err != nil {
		return nil, l.failLocked(err)
	}
	buf := l.batchBuf[:0]
	// Frame every record back-to-back; starts[i] is where record i's frame
	// begins, so payloads can be sliced back out for publishing.
	starts := make([]int, len(recs)+1)
	for i, r := range recs {
		starts[i] = len(buf)
		// Reserve the 8-byte frame header, encode the payload in place, then
		// backfill length and checksum — no per-record staging buffer.
		buf = append(buf, 0, 0, 0, 0, 0, 0, 0, 0)
		pstart := len(buf)
		buf = r.AppendPayload(buf)
		payload := buf[pstart:]
		binary.LittleEndian.PutUint32(buf[starts[i]:], uint32(len(payload)))
		binary.LittleEndian.PutUint32(buf[starts[i]+4:], crc32.Checksum(payload, crcTable))
	}
	starts[len(recs)] = len(buf)
	if cap(buf) <= maxBatchBufRetain {
		l.batchBuf = buf
	} else {
		l.batchBuf = nil
	}
	if err := fault.Hit(FPAppendTorn); err != nil {
		// Simulate a torn write of the group's first frame: no member record
		// survives whole. Same site as the single-record path so the torn-tail
		// matrix covers both.
		if _, werr := l.w.Write(buf[:starts[1]/2]); werr == nil {
			_ = l.w.Flush()
		}
		return nil, l.failLocked(err)
	}
	if err := fault.Hit(FPAppendBatchTorn); err != nil {
		// Simulate a power cut mid-batch: half the bytes reach the OS, then
		// the device dies. Some member records are whole on disk, the rest are
		// missing or torn — recovery must discard them all.
		if _, werr := l.w.Write(buf[:len(buf)/2]); werr == nil {
			_ = l.w.Flush()
		}
		return nil, l.failLocked(err)
	}
	if _, err := l.w.Write(buf); err != nil {
		return nil, l.failLocked(err)
	}
	l.size += int64(len(buf))
	if err := l.w.Flush(); err != nil {
		return nil, l.failLocked(err)
	}
	if l.opts.Sync {
		if err := fault.Hit(FPSync); err != nil {
			return nil, l.failLocked(err)
		}
		if err := l.f.Sync(); err != nil {
			return nil, l.failLocked(err)
		}
		l.ctrSyncs++
	}
	lsns := make([]LSN, len(recs))
	publish := len(l.subs) > 0
	for i := range recs {
		lsns[i] = MakeLSN(l.seq, l.recs)
		l.recs++
		if publish {
			// The assembly buffer is reused by the next batch, but a payload
			// handed to a subscription channel outlives this call — copy.
			payload := append([]byte(nil), buf[starts[i]+8:starts[i+1]]...)
			l.publishLocked(Appended{LSN: lsns[i], Payload: payload})
		}
	}
	l.ctrRecords += int64(len(recs))
	l.ctrBatches++
	return lsns, nil
}

// Rotate closes the current segment and starts the next one, returning the
// sequence number of the segment that was closed. Checkpointing rotates
// first so that every record in the closed segments is covered by the
// subsequent checkpoint snapshot.
func (l *Log) Rotate() (closedSeq uint64, err error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return 0, errors.New("wal: log closed")
	}
	if l.failErr != nil {
		return 0, fmt.Errorf("%w: %v", ErrLogFailed, l.failErr)
	}
	if err := fault.Hit(FPRotate); err != nil {
		return 0, l.failLocked(err)
	}
	if err := l.w.Flush(); err != nil {
		return 0, l.failLocked(err)
	}
	if err := l.f.Close(); err != nil {
		return 0, l.failLocked(err)
	}
	closedSeq = l.seq
	l.seq++
	if err := l.openSegmentLocked(); err != nil {
		return 0, l.failLocked(err)
	}
	return closedSeq, nil
}

// Size returns the bytes written to the current segment.
func (l *Log) Size() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.size
}

// Close flushes and closes the active segment. A fail-stopped log is closed
// without flushing: whatever sits in the buffer after a failed write is a
// partial frame that must not be appended behind acknowledged records.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	for s := range l.subs {
		l.dropSubLocked(s)
	}
	if l.failErr == nil {
		if err := l.w.Flush(); err != nil {
			_ = l.f.Close()
			l.f = nil
			return err
		}
	}
	err := l.f.Close()
	l.f = nil
	return err
}

// SegmentInfo names one on-disk log segment.
type SegmentInfo struct {
	Seq  uint64
	Path string
}

// Segments lists the log segments in dir in sequence order.
func Segments(dir string) ([]SegmentInfo, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var out []SegmentInfo
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, segmentPrefix) || !strings.HasSuffix(name, segmentSuffix) {
			continue
		}
		numPart := strings.TrimSuffix(strings.TrimPrefix(name, segmentPrefix), segmentSuffix)
		seq, err := strconv.ParseUint(numPart, 10, 64)
		if err != nil {
			continue
		}
		out = append(out, SegmentInfo{Seq: seq, Path: filepath.Join(dir, name)})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out, nil
}

// RemoveSegmentsThrough deletes every segment with Seq <= through. Called
// after a checkpoint covers them.
func RemoveSegmentsThrough(dir string, through uint64) error {
	if err := fault.Hit(FPSegmentRemove); err != nil {
		return err
	}
	segs, err := Segments(dir)
	if err != nil {
		return err
	}
	for _, s := range segs {
		if s.Seq > through {
			break
		}
		if err := os.Remove(s.Path); err != nil {
			return err
		}
	}
	return nil
}

// ErrCorrupt marks a record that failed its checksum or framing somewhere a
// torn tail write cannot explain: mid-segment, or at the tail of any segment
// that is not the last. A truncated final entry at the very end of a segment
// is the expected residue of a crash (or of tailing a live append) and is
// tolerated silently; anything else means the log is damaged and replaying
// past it would silently drop acknowledged commits.
var ErrCorrupt = errors.New("wal: corrupt record")

// readFrames streams one segment's frames as (index, payload) pairs. It
// returns torn=true when iteration stopped at a truncated or checksum-failed
// record that sits at the very end of the file — the torn-tail case. A bad
// checksum with more log behind it is mid-segment corruption and returns
// ErrCorrupt.
func readFrames(path string, fn func(idx uint64, payload []byte) error) (torn bool, err error) {
	f, err := os.Open(path)
	if err != nil {
		return false, err
	}
	defer f.Close()
	// Reads are bounded to the file size observed at open. The active
	// segment may be receiving concurrent appends (replication catch-up
	// tails it), and a frame only partially flushed at open time would fail
	// its checksum; if the appender then completed it before the torn-tail
	// probe below ran, the probe would see trailing bytes and misreport the
	// benign in-flight tail as mid-segment corruption. The appender writes
	// frames under one lock to an O_APPEND file, so every byte below the
	// observed size belongs to writes that completed before the snapshot —
	// a frame cut short by the bound is exactly a torn tail, and a checksum
	// failure strictly inside it is genuine damage.
	fi, err := f.Stat()
	if err != nil {
		return false, err
	}
	r := bufio.NewReaderSize(io.LimitReader(f, fi.Size()), 1<<16)
	var head [8]byte
	for idx := uint64(0); ; idx++ {
		if _, err := io.ReadFull(r, head[:]); err != nil {
			if err == io.EOF {
				return false, nil // clean end
			}
			if err == io.ErrUnexpectedEOF {
				return true, nil // torn frame header at the tail
			}
			return false, err
		}
		length := binary.LittleEndian.Uint32(head[0:4])
		sum := binary.LittleEndian.Uint32(head[4:8])
		payload := make([]byte, length)
		if _, err := io.ReadFull(r, payload); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				return true, nil // torn payload at the tail
			}
			return false, err
		}
		if crc32.Checksum(payload, crcTable) != sum {
			// A checksum failure is only a tolerable torn tail if nothing
			// follows it; probe one byte to find out.
			if _, err := r.ReadByte(); err == io.EOF {
				return true, nil
			}
			return false, fmt.Errorf("%w: checksum mismatch at record %d of %s", ErrCorrupt, idx, filepath.Base(path))
		}
		if err := fn(idx, payload); err != nil {
			return false, err
		}
	}
}

// ReadSegment streams the records of one segment file, calling fn for each.
// A torn tail — a truncated or checksum-failed final entry — ends the
// iteration without error, exactly the crash-recovery contract; corruption
// in the middle of the segment returns ErrCorrupt.
func ReadSegment(path string, fn func(*Record) error) error {
	_, err := readFrames(path, func(_ uint64, payload []byte) error {
		rec, derr := DecodePayload(payload)
		if derr != nil {
			return fmt.Errorf("%w: %v", ErrCorrupt, derr)
		}
		return fn(rec)
	})
	return err
}

// ReadSegmentPayloads streams one segment's raw encoded payloads with their
// in-segment record indexes — the replication catch-up path, which ships
// payloads to replicas without decoding them. Torn-tail semantics match
// ReadSegment.
func ReadSegmentPayloads(path string, fn func(idx uint64, payload []byte) error) error {
	_, err := readFrames(path, fn)
	return err
}

// ReadAll streams every record of every segment in dir, in order. A torn
// tail is tolerated only on the final segment: rotation closes a segment
// cleanly, so a truncated entry inside any earlier segment means damage, not
// a crash, and returns ErrCorrupt.
func ReadAll(dir string, fn func(*Record) error) error {
	segs, err := Segments(dir)
	if err != nil {
		return err
	}
	for i, s := range segs {
		torn, err := readFrames(s.Path, func(_ uint64, payload []byte) error {
			rec, derr := DecodePayload(payload)
			if derr != nil {
				return fmt.Errorf("%w: %v", ErrCorrupt, derr)
			}
			return fn(rec)
		})
		if err != nil {
			return err
		}
		if torn && i != len(segs)-1 {
			return fmt.Errorf("%w: torn record inside non-final segment %s", ErrCorrupt, filepath.Base(s.Path))
		}
	}
	return nil
}
