package wal

import (
	"fmt"

	"hybridgc/internal/ts"
)

// GroupAssembler reassembles multi-part commit groups from a record sequence
// — the log during recovery, or the replication stream on a replica. A group
// is Parts consecutive KindGroup records sharing one CID (see Record); the
// assembler buffers parts and releases the group's operations only when the
// last part arrives, so an incomplete group — the residue of a batch torn by
// a crash, whose commit was never acknowledged — is never partially applied.
//
// Drop/error rules, derived from how groups can legally reach a reader:
//
//   - A new group start (Part 0, or a single-record group) while a group is
//     pending DROPS the pending parts. The batch append writes a whole group
//     under one log lock, so parts are always consecutive on disk and on the
//     stream; a group abandoned mid-flight is exactly the torn-batch residue,
//     and the CID it carries may be reused by the next commit after the
//     primary recovers (the torn commit never happened).
//   - A DDL record while a group is pending likewise DROPS the pending parts
//     (the caller reports it via Abandon): nothing can interleave inside a
//     batch, so a non-group record proves the pending group will never
//     complete.
//   - A continuation that does not extend the pending group — wrong CID,
//     wrong part index, wrong group size, or no pending group at all — is
//     CORRUPTION and errors out: consecutive-on-disk means a mismatched
//     continuation cannot be explained by any crash.
//   - Pending parts left at the end of the sequence are dropped by the caller
//     simply by not applying anything (recovery), or kept pending across a
//     stream reconnect (the replica's assembler lives on the engine, so a
//     resumed stream supplies the remaining parts).
type GroupAssembler struct {
	pending bool
	cid     ts.CID
	next    uint32
	parts   uint32
	ops     []Op
	dropped int64
}

// Feed consumes one KindGroup record. When the record completes a group it
// returns (cid, ops, true); the ops slice is reused by the next group, so the
// caller must apply it before the next Feed. A record that merely extends a
// pending group returns done=false.
func (a *GroupAssembler) Feed(r *Record) (ts.CID, []Op, bool, error) {
	if r.Parts <= 1 {
		// Whole group in one record (Parts==1, or a legacy record without
		// part fields). Starting a new group abandons any pending one.
		a.Abandon()
		return r.CID, r.Ops, true, nil
	}
	if r.Part == 0 {
		a.Abandon()
		a.pending = true
		a.cid = r.CID
		a.next = 1
		a.parts = r.Parts
		a.ops = append(a.ops[:0], r.Ops...)
		return 0, nil, false, nil
	}
	if !a.pending || r.CID != a.cid || r.Part != a.next || r.Parts != a.parts {
		return 0, nil, false, fmt.Errorf(
			"%w: group continuation CID %d part %d/%d does not extend pending CID %d part %d/%d",
			ErrCorrupt, r.CID, r.Part, r.Parts, a.cid, a.next, a.parts)
	}
	a.ops = append(a.ops, r.Ops...)
	a.next++
	if a.next < a.parts {
		return 0, nil, false, nil
	}
	a.pending = false
	return a.cid, a.ops, true, nil
}

// Abandon drops any pending incomplete group (torn-batch residue). Safe to
// call when nothing is pending.
func (a *GroupAssembler) Abandon() {
	if a.pending {
		a.pending = false
		a.dropped++
	}
}

// Reset clears all assembler state, including the reused ops buffer.
func (a *GroupAssembler) Reset() { *a = GroupAssembler{} }

// Pending reports whether a partially assembled group is buffered, and its
// CID when so.
func (a *GroupAssembler) Pending() (ts.CID, bool) {
	if !a.pending {
		return 0, false
	}
	return a.cid, true
}

// Dropped counts the incomplete groups abandoned so far.
func (a *GroupAssembler) Dropped() int64 { return a.dropped }
