package bench

import (
	"bytes"
	"strings"
	"testing"
)

func quickSuite() *Suite {
	return NewSuite(SuiteConfig{Quick: true})
}

func TestFiguresList(t *testing.T) {
	ids := Figures()
	if len(ids) != 13 {
		t.Fatalf("expected 10 figures + 3 extensions, got %v", ids)
	}
	s := quickSuite()
	if _, err := s.Run("fig99"); err == nil {
		t.Fatal("unknown figure must error")
	}
}

func TestCursorFigures(t *testing.T) {
	s := quickSuite()
	for _, id := range []string{"fig10", "fig11", "fig12", "fig13"} {
		rep, err := s.Run(id)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		var buf bytes.Buffer
		if _, err := rep.WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		out := buf.String()
		// fig11 breaks down by collector (GT/TG/SI); the others compare the
		// GT / GT+TG / HG configurations.
		wantLabel := "GT+TG"
		if id == "fig11" {
			wantLabel = "SI"
		}
		if !strings.Contains(out, rep.ID) || !strings.Contains(out, wantLabel) {
			t.Fatalf("%s report incomplete:\n%s", id, out)
		}
	}
	// Figures 10-13 share one experiment: the cursor runs exactly once per
	// mode, so the cached map is reused.
	if s.cursorRes == nil {
		t.Fatal("cursor results not cached")
	}
}

func TestFetchFigures(t *testing.T) {
	s := quickSuite()
	for _, id := range []string{"fig14", "fig15"} {
		rep, err := s.Run(id)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(rep.Rows) == 0 {
			t.Fatalf("%s produced no rows", id)
		}
	}
}

func TestTransFigures(t *testing.T) {
	s := quickSuite()
	for _, id := range []string{"fig16", "fig17"} {
		if _, err := s.Run(id); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
	}
	rep, _ := s.Fig16()
	if len(rep.Rows) != 3 {
		t.Fatalf("fig16 needs one row per mode: %v", rep.Rows)
	}
}

func TestSweepFigures(t *testing.T) {
	s := quickSuite()
	for _, id := range []string{"fig18", "fig19"} {
		rep, err := s.Run(id)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(rep.Rows) != 2 { // quick mode sweeps two multipliers
			t.Fatalf("%s rows = %v", id, rep.Rows)
		}
		if len(rep.Rows[0]) != 4 {
			t.Fatalf("%s row width = %v", id, rep.Rows[0])
		}
	}
}

func TestReportRendering(t *testing.T) {
	rep := &Report{
		ID:     "figX",
		Title:  "test",
		Header: []string{"a", "b"},
		Rows:   [][]string{{"1", "2"}, {"3", "4"}},
		Notes:  []string{"a note"},
	}
	var buf bytes.Buffer
	if _, err := rep.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"figX", "a note", "1", "4"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("missing %q in:\n%s", want, buf.String())
		}
	}
}

func TestExt2HTAPLane(t *testing.T) {
	s := quickSuite()
	rep, err := s.Run("ext2")
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Series) != 4 {
		t.Fatalf("ext2 series = %d", len(rep.Series))
	}
	// The lane leg must complete more aggregates than the row leg. Quick
	// runs are tiny, so just require it not to lose; the acceptance-bar
	// speedup is measured by BenchmarkOLAPScan on settled data.
	laneQPS := rep.Series[0].Series.Mean()
	rowQPS := rep.Series[1].Series.Mean()
	if laneQPS < rowQPS*0.5 {
		t.Fatalf("lane OLAP throughput %.1f collapsed vs row %.1f", laneQPS, rowQPS)
	}
	var buf bytes.Buffer
	if _, err := rep.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "olap-qps(lane)") {
		t.Fatalf("ext2 report incomplete:\n%s", buf.String())
	}
}

func TestExt3ReadScale(t *testing.T) {
	s := quickSuite()
	rep, err := s.Run("ext3")
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Series) != 4 {
		t.Fatalf("ext3 series = %d", len(rep.Series))
	}
	for _, ls := range rep.Series {
		if ls.Series.Mean() <= 0 {
			t.Fatalf("leg %s measured no reads", ls.Label)
		}
	}
	// Every replica leg must actually have routed reads to replicas — the
	// figure is meaningless if the pool quietly served everything from the
	// primary.
	for _, note := range rep.Notes {
		for _, n := range []string{"1 replicas:", "2 replicas:", "3 replicas:"} {
			if strings.HasPrefix(note, n) && strings.Contains(note, "replica=0 ") {
				t.Fatalf("replica leg served no replica reads: %s", note)
			}
		}
	}
	var buf bytes.Buffer
	if _, err := rep.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "reads/s(3r)") {
		t.Fatalf("ext3 report incomplete:\n%s", buf.String())
	}
}

func TestExt1PartitionScope(t *testing.T) {
	s := quickSuite()
	rep, err := s.Run("ext1")
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Series) != 2 {
		t.Fatalf("ext1 series = %d", len(rep.Series))
	}
	// The partition-scoped run must end with fewer live versions than the
	// table-scoped run (TG reclaims the unpinned partitions).
	tableScoped := rep.Series[0].Series.Last()
	partScoped := rep.Series[1].Series.Last()
	if partScoped >= tableScoped {
		t.Fatalf("partition scope (%0.f) should beat table scope (%0.f)", partScoped, tableScoped)
	}
}
