// Package bench regenerates every figure of the paper's evaluation section
// (§5) on top of the workload driver. Figures that the paper derives from
// one experiment share one run here too: Figures 10-13 come from the
// long-duration-cursor run, Figures 14-15 from the incremental-FETCH run,
// Figures 16-17 from the Trans-SI run, and Figures 18-19 from the
// invocation-period sweeps. Absolute numbers differ from the paper's
// 60-core testbed; the shapes — who wins, by what factor, where the curves
// bend — are what the reports surface.
package bench

import (
	"fmt"
	"io"
	"strings"
	"time"

	"hybridgc/internal/metrics"
)

// LabeledSeries pairs a series with its legend label (usually a GC mode).
type LabeledSeries struct {
	Label  string
	Series metrics.Series
}

// Report is one regenerated figure: titled series and/or a table, plus
// free-form notes stating the expected shape from the paper.
type Report struct {
	ID     string
	Title  string
	Series []LabeledSeries
	Header []string
	Rows   [][]string
	Notes  []string
}

// maxSeriesRows bounds how many time points a printed series shows; longer
// series are downsampled evenly.
const maxSeriesRows = 24

// WriteTo renders the report as aligned text.
func (r *Report) WriteTo(w io.Writer) (int64, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "   note: %s\n", n)
	}
	if len(r.Series) > 0 {
		r.writeSeries(&b)
	}
	if len(r.Rows) > 0 {
		writeTable(&b, r.Header, r.Rows)
	}
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

// writeSeries prints the labeled series side by side, sampled on the first
// series' time axis.
func (r *Report) writeSeries(b *strings.Builder) {
	header := append([]string{"t"}, make([]string, len(r.Series))...)
	for i, s := range r.Series {
		header[i+1] = s.Label
	}
	longest := 0
	for _, s := range r.Series {
		if len(s.Series.Points) > longest {
			longest = len(s.Series.Points)
		}
	}
	if longest == 0 {
		return
	}
	step := 1
	if longest > maxSeriesRows {
		step = (longest + maxSeriesRows - 1) / maxSeriesRows
	}
	var rows [][]string
	for i := 0; i < longest; i += step {
		row := make([]string, len(r.Series)+1)
		for j, s := range r.Series {
			pts := s.Series.Points
			if i < len(pts) {
				if row[0] == "" {
					row[0] = fmtDur(pts[i].Elapsed)
				}
				row[j+1] = fmt.Sprintf("%.1f", pts[i].Value)
			} else {
				row[j+1] = "-"
			}
		}
		if row[0] == "" {
			row[0] = "-"
		}
		rows = append(rows, row)
	}
	writeTable(b, header, rows)
}

func fmtDur(d time.Duration) string {
	return fmt.Sprintf("%.2fs", d.Seconds())
}

// writeTable renders an aligned text table.
func writeTable(b *strings.Builder, header []string, rows [][]string) {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(header)
	sep := make([]string, len(header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range rows {
		line(row)
	}
	b.WriteByte('\n')
}
