package bench

// Ext3: read scale-out. One persistent primary plus 0..3 streaming replicas,
// all served on loopback, with a ReadPool splitting the workload — writes to
// the primary, Session reads across the replica set behind the consistency
// token. The figure is pooled read throughput per replica count.

import (
	"fmt"
	"math/rand"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"hybridgc/internal/client"
	"hybridgc/internal/core"
	"hybridgc/internal/metrics"
	"hybridgc/internal/repl"
	"hybridgc/internal/server"
	"hybridgc/internal/txn"
	"hybridgc/internal/wal"
)

type ext3Result struct {
	qps      metrics.Series // pooled reads/s over time
	reads    int64
	writes   int64
	counters client.PoolCounters
}

// ext3Gate is the hybridgcd replica read gate: wait briefly for the applier
// to cover the session token, else bounce the read back to the pool.
func ext3Gate(rep *repl.Replica, wait time.Duration) func(uint64) (bool, error) {
	return func(minLSN uint64) (bool, error) {
		target := wal.LSN(minLSN)
		if rep.AppliedLSN() >= target {
			return false, nil
		}
		if err := rep.WaitLSN(target, wait); err != nil {
			return true, fmt.Errorf("%w: %v", core.ErrReplicaBehind, err)
		}
		return true, nil
	}
}

// ext3Leg measures pooled read throughput against nReplicas read replicas.
func (s *Suite) ext3Leg(nReplicas int) (*ext3Result, error) {
	dir, err := os.MkdirTemp("", "ext3-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	db, err := core.Open(core.Config{
		GC:                 workloadPeriods(s.cfg.Base),
		LongLivedThreshold: s.cfg.LongLive,
		Txn:                txn.Config{SynchronousPropagation: true},
		Persistence:        &core.Persistence{Dir: dir},
	})
	if err != nil {
		return nil, err
	}
	defer db.Close()
	db.GC().Start()
	defer db.GC().Stop()

	src, err := repl.NewSource(db, repl.SourceConfig{
		HeartbeatEvery: 20 * time.Millisecond,
		StaleAfter:     30 * time.Second,
	})
	if err != nil {
		return nil, err
	}
	defer src.Close()
	psrv, err := server.New(db, server.Config{Repl: src, StatsHook: src.PopulateStats})
	if err != nil {
		return nil, err
	}
	pln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	served := make(chan struct{})
	go func() { defer close(served); _ = psrv.Serve(pln) }()
	defer func() { psrv.Shutdown(5 * time.Second); <-served }()

	type replicaLeg struct {
		db     *core.DB
		rep    *repl.Replica
		srv    *server.Server
		served chan struct{}
	}
	var replicas []*replicaLeg
	var addrs []string
	defer func() {
		for _, r := range replicas {
			r.rep.Stop()
			r.srv.Shutdown(5 * time.Second)
			<-r.served
			r.db.Close()
		}
	}()
	for i := 0; i < nReplicas; i++ {
		rdb, err := core.Open(core.Config{ReadOnly: true})
		if err != nil {
			return nil, err
		}
		rep, err := repl.NewReplica(rdb, repl.ReplicaConfig{
			Upstream:      pln.Addr().String(),
			ReplicaID:     fmt.Sprintf("ext3-r%d", i),
			ReportEvery:   20 * time.Millisecond,
			ReconnectBase: 10 * time.Millisecond,
			StallTimeout:  30 * time.Second,
		})
		if err != nil {
			rdb.Close()
			return nil, err
		}
		rsrv, err := server.New(rdb, server.Config{
			StatsHook: rep.PopulateStats,
			ReadGate:  ext3Gate(rep, 500*time.Millisecond),
		})
		if err != nil {
			rdb.Close()
			return nil, err
		}
		rln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			rdb.Close()
			return nil, err
		}
		r := &replicaLeg{db: rdb, rep: rep, srv: rsrv, served: make(chan struct{})}
		go func() { defer close(r.served); _ = rsrv.Serve(rln) }()
		go func() { _ = rep.Run() }()
		replicas = append(replicas, r)
		addrs = append(addrs, rln.Addr().String())
	}

	pool, err := client.NewReadPool(client.PoolConfig{
		Primary:           pln.Addr().String(),
		Replicas:          addrs,
		Client:            client.Config{MaxConns: 8},
		HeartbeatInterval: 20 * time.Millisecond,
	})
	if err != nil {
		return nil, err
	}
	defer pool.Close()

	rows := 256
	if s.cfg.Quick {
		rows = 64
	}
	if _, err := pool.Exec("CREATE TABLE ext3_kv (id INT, v INT)"); err != nil {
		return nil, err
	}
	for i := 0; i < rows; i++ {
		if _, err := pool.Exec(fmt.Sprintf("INSERT INTO ext3_kv VALUES (%d, %d)", i, i)); err != nil {
			return nil, err
		}
	}
	// Let every replica absorb the seed before the clock starts.
	for _, r := range replicas {
		if err := r.rep.WaitLSN(db.WAL().NextLSN(), 10*time.Second); err != nil {
			return nil, err
		}
	}

	var (
		reads  atomic.Int64
		writes atomic.Int64
		stop   = make(chan struct{})
		wg     sync.WaitGroup
	)
	// One writer keeps tokens moving: the read side is never just replaying
	// a frozen snapshot, every Session read is gated behind a live token.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := rows; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := pool.Exec(fmt.Sprintf("INSERT INTO ext3_kv VALUES (%d, %d)", i, i)); err == nil {
				writes.Add(1)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()
	// Analysts: point Session reads spread over the seeded rows.
	for a := 0; a < 4; a++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				q := fmt.Sprintf("SELECT v FROM ext3_kv WHERE id = %d", rng.Intn(rows))
				if _, err := pool.Read(q, client.Session); err == nil {
					reads.Add(1)
				}
			}
		}(int64(nReplicas*10 + a))
	}

	res := &ext3Result{}
	interval := s.cfg.Duration / 30
	if interval <= 0 {
		interval = 10 * time.Millisecond
	}
	start := time.Now()
	lastR, lastT := int64(0), start
	deadline := start.Add(s.cfg.Duration)
	for now := start; now.Before(deadline); now = time.Now() {
		time.Sleep(interval)
		r := reads.Load()
		t := time.Now()
		res.qps.Points = append(res.qps.Points,
			metrics.Point{Elapsed: t.Sub(start), Value: float64(r-lastR) / t.Sub(lastT).Seconds()})
		lastR, lastT = r, t
	}
	close(stop)
	wg.Wait()
	res.reads = reads.Load()
	res.writes = writes.Load()
	res.counters = pool.Counters()
	return res, nil
}

// Ext3 generates this reproduction's read scale-out extension figure: pooled
// Session-read throughput against 0, 1, 2 and 3 token-gated read replicas.
func (s *Suite) Ext3() (*Report, error) {
	counts := []int{0, 1, 2, 3}
	var series []LabeledSeries
	var notes []string
	for _, n := range counts {
		leg, err := s.ext3Leg(n)
		if err != nil {
			return nil, fmt.Errorf("ext3 leg %d: %w", n, err)
		}
		series = append(series, LabeledSeries{
			Label:  fmt.Sprintf("reads/s(%dr)", n),
			Series: leg.qps,
		})
		notes = append(notes, fmt.Sprintf(
			"%d replicas: %d reads (%.0f/s) %d writes; served replica=%d primary=%d bounces=%d failovers=%d",
			n, leg.reads, float64(leg.reads)/s.cfg.Duration.Seconds(), leg.writes,
			leg.counters.ReplicaReads, leg.counters.PrimaryReads,
			leg.counters.Bounces, leg.counters.Failovers))
	}
	notes = append(notes,
		"extension of §4: replicas serve Session reads behind the commit-LSN consistency token; the primary serves writes and any read no replica can satisfy",
		"caveat: all processes share one container (often a single CPU), so the curve shows routing and token overhead more than real multi-machine scaling — replica counts contend for the same core",
	)
	return &Report{
		ID:     "ext3",
		Title:  "Read scale-out: pooled read throughput vs replica count (token-gated Session reads)",
		Series: series,
		Notes:  notes,
	}, nil
}
