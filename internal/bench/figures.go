package bench

import (
	"fmt"
	"time"

	"hybridgc/internal/gc"
	"hybridgc/internal/ts"
	"hybridgc/internal/workload"
)

func labeled(res map[workload.Mode]*workload.Result, pick func(*workload.Result) LabeledSeries) []LabeledSeries {
	out := make([]LabeledSeries, 0, len(compared))
	for _, m := range compared {
		ls := pick(res[m])
		ls.Label = m.String()
		out = append(out, ls)
	}
	return out
}

// Fig10 regenerates Figure 10: the number of record versions over time under
// a long-duration cursor on STOCK, per collector configuration.
func (s *Suite) Fig10() (*Report, error) {
	res, err := s.cursor()
	if err != nil {
		return nil, err
	}
	return &Report{
		ID:    "fig10",
		Title: "record versions over time, long-duration cursor on STOCK",
		Series: labeled(res, func(r *workload.Result) LabeledSeries {
			return LabeledSeries{Series: r.Versions}
		}),
		Notes: []string{
			"paper shape: GT and GT+TG grow; HG stays almost constant",
			fmt.Sprintf("final versions: GT=%.0f GT+TG=%.0f HG=%.0f",
				res[workload.ModeGT].Versions.Last(),
				res[workload.ModeGTTG].Versions.Last(),
				res[workload.ModeHG].Versions.Last()),
		},
	}, nil
}

// Fig11 regenerates Figure 11: accumulated versions reclaimed by each of
// GT, TG and SI while HybridGC runs the Figure 10 workload.
func (s *Suite) Fig11() (*Report, error) {
	res, err := s.cursor()
	if err != nil {
		return nil, err
	}
	hg := res[workload.ModeHG]
	return &Report{
		ID:    "fig11",
		Title: "accumulated reclaimed versions per collector under HG",
		Series: []LabeledSeries{
			{Label: "GT", Series: hg.ReclaimedGT},
			{Label: "TG", Series: hg.ReclaimedTG},
			{Label: "SI", Series: hg.ReclaimedSI},
		},
		Notes: []string{
			"paper shape: GT reclaims ~nothing (blocked by the cursor); TG reclaims the bulk; SI reclaims the pinned table's intermediates",
			fmt.Sprintf("totals: GT=%.0f TG=%.0f SI=%.0f",
				hg.ReclaimedGT.Last(), hg.ReclaimedTG.Last(), hg.ReclaimedSI.Last()),
		},
	}, nil
}

// Fig12 regenerates Figure 12: TPC-C throughput (committed statements/s)
// over time with the long-duration cursor.
func (s *Suite) Fig12() (*Report, error) {
	res, err := s.cursor()
	if err != nil {
		return nil, err
	}
	return &Report{
		ID:    "fig12",
		Title: "TPC-C throughput with a long-duration cursor",
		Series: labeled(res, func(r *workload.Result) LabeledSeries {
			return LabeledSeries{Series: r.Throughput}
		}),
		Notes: []string{
			"paper shape: GT degrades over time (hash collisions); HG stays high",
			fmt.Sprintf("avg stmts/s: GT=%.0f GT+TG=%.0f HG=%.0f",
				res[workload.ModeGT].AvgThroughput(),
				res[workload.ModeGTTG].AvgThroughput(),
				res[workload.ModeHG].AvgThroughput()),
		},
	}, nil
}

// Fig13 regenerates Figure 13: the RID hash table collision ratio over time
// in the Figure 12 experiment.
func (s *Suite) Fig13() (*Report, error) {
	res, err := s.cursor()
	if err != nil {
		return nil, err
	}
	return &Report{
		ID:    "fig13",
		Title: "hash collision ratio (version chains per bucket)",
		Series: labeled(res, func(r *workload.Result) LabeledSeries {
			return LabeledSeries{Series: r.Collision}
		}),
		Notes: []string{
			"paper shape: GT's ratio climbs (insert-created chains pile up); GT+TG and HG stay flat because STOCK updates reuse existing chains",
		},
	}, nil
}

// fetchTable renders per-FETCH observations for the three modes.
func fetchTable(res map[workload.Mode]*workload.Result, value func(workload.FetchSample) string) (header []string, rows [][]string) {
	header = []string{"fetch#"}
	longest := 0
	for _, m := range compared {
		header = append(header, m.String())
		if n := len(res[m].Fetches); n > longest {
			longest = n
		}
	}
	step := 1
	if longest > maxSeriesRows {
		step = (longest + maxSeriesRows - 1) / maxSeriesRows
	}
	for i := 0; i < longest; i += step {
		row := []string{fmt.Sprint(i)}
		for _, m := range compared {
			f := res[m].Fetches
			if i < len(f) {
				row = append(row, value(f[i]))
			} else {
				row = append(row, "-")
			}
		}
		rows = append(rows, row)
	}
	return header, rows
}

// Fig14 regenerates Figure 14: latency of individual FETCH operations of an
// incremental query over time.
func (s *Suite) Fig14() (*Report, error) {
	res, err := s.fetch()
	if err != nil {
		return nil, err
	}
	header, rows := fetchTable(res, func(f workload.FetchSample) string {
		return fmt.Sprintf("%.2fms", f.Latency.Seconds()*1e3)
	})
	return &Report{
		ID:     "fig14",
		Title:  "latency of individual FETCH operations in a cursor",
		Header: header,
		Rows:   rows,
		Notes: []string{
			"paper shape: GT and GT+TG latency grows fetch over fetch; HG stays near constant",
		},
	}, nil
}

// Fig15 regenerates Figure 15: record versions traversed by each FETCH.
func (s *Suite) Fig15() (*Report, error) {
	res, err := s.fetch()
	if err != nil {
		return nil, err
	}
	header, rows := fetchTable(res, func(f workload.FetchSample) string {
		return fmt.Sprint(f.Traversed)
	})
	return &Report{
		ID:     "fig15",
		Title:  "record versions traversed by individual FETCH operations",
		Header: header,
		Rows:   rows,
		Notes: []string{
			"paper shape: mirrors Figure 14 — FETCH latency is driven by chain traversal",
		},
	}, nil
}

// Fig16 regenerates Figure 16: the latency of the scan query executed inside
// repeated long Trans-SI transactions.
func (s *Suite) Fig16() (*Report, error) {
	res, err := s.trans()
	if err != nil {
		return nil, err
	}
	header := []string{"mode", "scans", "mean", "max"}
	var rows [][]string
	for _, m := range compared {
		scans := res[m].TransSIScans
		var sum, max time.Duration
		for _, d := range scans {
			sum += d
			if d > max {
				max = d
			}
		}
		mean := time.Duration(0)
		if len(scans) > 0 {
			mean = sum / time.Duration(len(scans))
		}
		rows = append(rows, []string{m.String(), fmt.Sprint(len(scans)),
			fmt.Sprintf("%.2fms", mean.Seconds()*1e3),
			fmt.Sprintf("%.2fms", max.Seconds()*1e3)})
	}
	return &Report{
		ID:     "fig16",
		Title:  "latency of queries executed in Trans-SI transactions",
		Header: header,
		Rows:   rows,
		Notes: []string{
			"paper shape: TG gains nothing over GT (scope unknown a priori); SI collects regardless, so HG is fastest",
		},
	}, nil
}

// Fig17 regenerates Figure 17: the number of record versions over time in
// the Trans-SI experiment (the saw-tooth plot).
func (s *Suite) Fig17() (*Report, error) {
	res, err := s.trans()
	if err != nil {
		return nil, err
	}
	return &Report{
		ID:    "fig17",
		Title: "record versions over time under repeated Trans-SI transactions",
		Series: labeled(res, func(r *workload.Result) LabeledSeries {
			return LabeledSeries{Series: r.Versions}
		}),
		Notes: []string{
			"paper shape: saw-tooth — versions drop when each Trans-SI transaction ends and releases its snapshot; HG keeps the smallest population",
		},
	}, nil
}

// Ext1 is this reproduction's extension experiment X-1: the partition-level
// table collector (§4.3's "finer-granular object such as partitions", left
// as future work in HANA). The Figure 10 workload runs twice under GT+TG
// with STOCK partitioned four ways and the long cursor pruned to one
// partition: once with the cursor declaring only its table (HANA's
// implemented granularity), once declaring its partition scope. With
// partition scope, TG alone reclaims the other partitions' garbage, so the
// version population stays a fraction of the table-scoped run — without SI.
func (s *Suite) Ext1() (*Report, error) {
	run := func(parts []ts.PartitionID) (*workload.Result, error) {
		o := s.baseOptions(workload.ModeGTTG)
		o.LongCursor = true
		o.StockPartitions = 4
		o.CursorPartitions = parts
		return workload.Run(o)
	}
	tableScoped, err := run(nil)
	if err != nil {
		return nil, err
	}
	partScoped, err := run([]ts.PartitionID{0})
	if err != nil {
		return nil, err
	}
	return &Report{
		ID:    "ext1",
		Title: "partition-level vs table-level table GC (GT+TG, cursor pruned to 1 of 4 STOCK partitions)",
		Series: []LabeledSeries{
			{Label: "table-scope", Series: tableScoped.Versions},
			{Label: "partition-scope", Series: partScoped.Versions},
		},
		Notes: []string{
			"extension of §4.3: with the cursor's partition scope declared, TG reclaims the other partitions' STOCK garbage that table-level TG must leave to SI",
			fmt.Sprintf("final versions: table-scope=%.0f partition-scope=%.0f",
				tableScoped.Versions.Last(), partScoped.Versions.Last()),
		},
	}, nil
}

// sweep runs the invocation-period sweep behind Figures 18 and 19. For each
// compared mode the mode's own collector period is swept while the others
// stay at their base values, exactly as §5.6 describes.
func (s *Suite) sweep(longCursor bool) (*Report, error) {
	// The paper sweeps 1 s..60 s periods over 1000 s runs; scaled, the
	// largest multiplier pushes the swept collector's period beyond the run
	// so its contribution vanishes (GT+TG then converges to GT, §5.6).
	multipliers := []int{1, 4, 16, 64}
	if s.cfg.Quick {
		multipliers = []int{1, 4}
	}
	header := []string{"period(xbase)"}
	for _, m := range compared {
		header = append(header, m.String())
	}
	var rows [][]string
	for _, k := range multipliers {
		row := []string{fmt.Sprintf("x%d", k)}
		for _, m := range compared {
			base := s.cfg.Base
			var p gc.Periods
			switch m {
			case workload.ModeGT:
				p = gc.Periods{GT: time.Duration(k) * base.GT}
			case workload.ModeGTTG:
				p = gc.Periods{GT: base.GT, TG: time.Duration(k) * base.TG}
			default: // HG
				p = gc.Periods{GT: base.GT, TG: base.TG, SI: time.Duration(k) * base.SI}
			}
			o := s.baseOptions(workload.ModeHG) // periods fully specified below
			o.Base = p
			o.Mode = workload.ModeHG // ModeHG passes Base through unmasked
			o.LongCursor = longCursor
			res, err := workload.Run(o)
			if err != nil {
				return nil, err
			}
			row = append(row, fmt.Sprintf("%.0f", res.AvgThroughput()))
		}
		rows = append(rows, row)
	}
	return &Report{Header: header, Rows: rows}, nil
}

// Fig18 regenerates Figure 18: TPC-C throughput while varying the
// collectors' invocation periods, without any long-duration snapshot.
func (s *Suite) Fig18() (*Report, error) {
	rep, err := s.sweep(false)
	if err != nil {
		return nil, err
	}
	rep.ID = "fig18"
	rep.Title = "throughput vs GC invocation period (no long snapshot)"
	rep.Notes = []string{
		"paper shape: sweeping TG's or SI's period changes nothing (GT at base period reclaims everything); sweeping GT's period drops throughput sharply",
	}
	return rep, nil
}

// Fig19 regenerates Figure 19: the same sweep with a long-duration cursor on
// STOCK.
func (s *Suite) Fig19() (*Report, error) {
	rep, err := s.sweep(true)
	if err != nil {
		return nil, err
	}
	rep.ID = "fig19"
	rep.Title = "throughput vs GC invocation period (long-duration cursor)"
	rep.Notes = []string{
		"paper shape: GT stays uniformly low (blocked); GT+TG decays as TG's period grows; HG is almost insensitive to SI's period",
	}
	return rep, nil
}
