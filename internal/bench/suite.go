package bench

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"hybridgc/internal/gc"
	"hybridgc/internal/tpcc"
	"hybridgc/internal/workload"
)

// SuiteConfig scales the experiment suite. Zero values select the full
// defaults; Quick shrinks everything for smoke runs and testing.B use.
type SuiteConfig struct {
	TPCC     tpcc.Config
	Base     gc.Periods
	LongLive time.Duration
	// Duration is the per-run workload duration.
	Duration time.Duration
	// HashBuckets sizes the RID hash table; smaller tables make Figure 13's
	// collision effect visible sooner.
	HashBuckets int
	// Quick selects the smoke-test scale.
	Quick bool
}

func (c *SuiteConfig) fill() {
	if c.Quick {
		if c.Duration <= 0 {
			c.Duration = 500 * time.Millisecond
		}
		if c.TPCC == (tpcc.Config{}) {
			c.TPCC = tpcc.Config{Warehouses: 2, Districts: 2, CustomersPerDistrict: 8, Items: 60, Seed: 7}
		}
		if c.Base == (gc.Periods{}) {
			c.Base = gc.Periods{GT: 10 * time.Millisecond, TG: 30 * time.Millisecond, SI: 100 * time.Millisecond}
		}
		if c.LongLive <= 0 {
			c.LongLive = 20 * time.Millisecond
		}
	}
	if c.Duration <= 0 {
		c.Duration = 3 * time.Second
	}
	if c.TPCC == (tpcc.Config{}) {
		c.TPCC = tpcc.Config{Warehouses: 4, Districts: 4, CustomersPerDistrict: 30, Items: 200, Seed: 7}
	}
	if c.Base == (gc.Periods{}) {
		// The paper's 1 s / 3 s / 10 s at 1/20 time scale.
		c.Base = gc.Periods{GT: 50 * time.Millisecond, TG: 150 * time.Millisecond, SI: 500 * time.Millisecond}
	}
	if c.LongLive <= 0 {
		c.LongLive = 100 * time.Millisecond
	}
	if c.HashBuckets <= 0 {
		c.HashBuckets = 1 << 12
	}
}

// Modes compared throughout §5.
var compared = []workload.Mode{workload.ModeGT, workload.ModeGTTG, workload.ModeHG}

// Suite runs and caches the experiments behind the figures.
type Suite struct {
	cfg SuiteConfig

	mu        sync.Mutex
	cursorRes map[workload.Mode]*workload.Result
	fetchRes  map[workload.Mode]*workload.Result
	transRes  map[workload.Mode]*workload.Result
}

// NewSuite creates a suite with the given configuration.
func NewSuite(cfg SuiteConfig) *Suite {
	cfg.fill()
	return &Suite{cfg: cfg}
}

// Config returns the effective configuration.
func (s *Suite) Config() SuiteConfig { return s.cfg }

func (s *Suite) baseOptions(m workload.Mode) workload.Options {
	return workload.Options{
		Mode:               m,
		Base:               s.cfg.Base,
		LongLivedThreshold: s.cfg.LongLive,
		TPCC:               s.cfg.TPCC,
		HashBuckets:        s.cfg.HashBuckets,
		Duration:           s.cfg.Duration,
		SampleInterval:     s.cfg.Duration / 30,
	}
}

// cursor lazily runs the §5.2 experiment (TPC-C + long-duration cursor on
// STOCK) for every compared mode.
func (s *Suite) cursor() (map[workload.Mode]*workload.Result, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cursorRes != nil {
		return s.cursorRes, nil
	}
	out := make(map[workload.Mode]*workload.Result, len(compared))
	for _, m := range compared {
		o := s.baseOptions(m)
		o.LongCursor = true
		res, err := workload.Run(o)
		if err != nil {
			return nil, fmt.Errorf("cursor experiment, mode %s: %w", m, err)
		}
		out[m] = res
	}
	s.cursorRes = out
	return out, nil
}

// fetch lazily runs the §5.4 incremental query processing experiment.
func (s *Suite) fetch() (map[workload.Mode]*workload.Result, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.fetchRes != nil {
		return s.fetchRes, nil
	}
	// Size the FETCH loop so the cursor stays busy for the whole run:
	// stock rows = warehouses*items, split across ~20 fetches.
	stockRows := s.cfg.TPCC.Warehouses * s.cfg.TPCC.Items
	size := stockRows / 20
	if size < 5 {
		size = 5
	}
	think := s.cfg.Duration / 25
	out := make(map[workload.Mode]*workload.Result, len(compared))
	for _, m := range compared {
		o := s.baseOptions(m)
		o.LongCursor = true
		o.Fetch = &workload.FetchOptions{Size: size, Think: think}
		res, err := workload.Run(o)
		if err != nil {
			return nil, fmt.Errorf("fetch experiment, mode %s: %w", m, err)
		}
		out[m] = res
	}
	s.fetchRes = out
	return out, nil
}

// trans lazily runs the §5.5 Trans-SI experiment.
func (s *Suite) trans() (map[workload.Mode]*workload.Result, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.transRes != nil {
		return s.transRes, nil
	}
	out := make(map[workload.Mode]*workload.Result, len(compared))
	for _, m := range compared {
		o := s.baseOptions(m)
		o.TransSI = &workload.TransSIOptions{Sleep: s.cfg.Duration / 6}
		res, err := workload.Run(o)
		if err != nil {
			return nil, fmt.Errorf("trans-SI experiment, mode %s: %w", m, err)
		}
		out[m] = res
	}
	s.transRes = out
	return out, nil
}

// Figures lists the available figure IDs in paper order, plus this
// reproduction's extension experiments (ext*).
func Figures() []string {
	return []string{"fig10", "fig11", "fig12", "fig13", "fig14",
		"fig15", "fig16", "fig17", "fig18", "fig19", "ext1", "ext2", "ext3"}
}

// Run generates the named figure.
func (s *Suite) Run(id string) (*Report, error) {
	switch id {
	case "fig10":
		return s.Fig10()
	case "fig11":
		return s.Fig11()
	case "fig12":
		return s.Fig12()
	case "fig13":
		return s.Fig13()
	case "fig14":
		return s.Fig14()
	case "fig15":
		return s.Fig15()
	case "fig16":
		return s.Fig16()
	case "fig17":
		return s.Fig17()
	case "fig18":
		return s.Fig18()
	case "fig19":
		return s.Fig19()
	case "ext1":
		return s.Ext1()
	case "ext2":
		return s.Ext2()
	case "ext3":
		return s.Ext3()
	default:
		return nil, fmt.Errorf("bench: unknown figure %q (have %v)", id, Figures())
	}
}

// RunAll writes every figure's report to w, in paper order.
func (s *Suite) RunAll(w io.Writer) error {
	ids := Figures()
	sort.Strings(ids)
	for _, id := range ids {
		rep, err := s.Run(id)
		if err != nil {
			return err
		}
		if _, err := rep.WriteTo(w); err != nil {
			return err
		}
	}
	return nil
}
