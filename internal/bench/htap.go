package bench

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"hybridgc/internal/colstore"
	"hybridgc/internal/core"
	"hybridgc/internal/gc"
	"hybridgc/internal/htap"
	"hybridgc/internal/metrics"
	"hybridgc/internal/ts"
	"hybridgc/internal/txn"
)

// ext2Result is one leg of the HTAP experiment: mixed OLTP updates and OLAP
// aggregates against the same table, with the column lane on or off.
type ext2Result struct {
	olapQPS  metrics.Series // OLAP aggregates/s over time
	versions metrics.Series // live version count over time
	queries  int64
	writes   int64
	lane     htap.LaneStats
}

var ext2Schema = colstore.Schema{
	Names: []string{"amount", "region"},
	Types: []colstore.ColumnType{colstore.Int64, colstore.String},
}

// ext2Leg runs one leg: OLTP writers updating random fact rows (version
// churn), snapshot churners registering and dropping short statement
// snapshots at high frequency, and OLAP analysts aggregating — each
// aggregate itself registers a snapshot, so the read side adds churn of its
// own. laneOn starts the background migrator; off, the identical executor
// serves every aggregate through MVCC row reads (nothing is ever migrated),
// which is exactly the row-store baseline.
func (s *Suite) ext2Leg(laneOn bool) (*ext2Result, error) {
	cfg := core.Config{
		GC:                 workloadPeriods(s.cfg.Base),
		LongLivedThreshold: s.cfg.LongLive,
		Txn:                txn.Config{SynchronousPropagation: true},
	}
	db, err := core.Open(cfg)
	if err != nil {
		return nil, err
	}
	defer db.Close()
	tid, err := db.CreateTable("FACTS")
	if err != nil {
		return nil, err
	}

	rows := 4096
	if s.cfg.Quick {
		rows = 512
	}
	regions := []string{"north", "south", "east", "west"}
	encode := func(amount int64, region string) ([]byte, error) {
		return colstore.EncodeRow(ext2Schema, colstore.Row{colstore.IntV(amount), colstore.StrV(region)})
	}
	rids := make([]ts.RID, 0, rows)
	for base := 0; base < rows; base += 256 {
		end := min(base+256, rows)
		err := db.Exec(txn.StmtSI, nil, func(tx *core.Tx) error {
			for i := base; i < end; i++ {
				img, err := encode(int64(i%100), regions[i%len(regions)])
				if err != nil {
					return err
				}
				rid, err := tx.Insert(tid, img)
				if err != nil {
					return err
				}
				rids = append(rids, rid)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}

	store, err := htap.NewStore(db, htap.Config{Interval: 5 * time.Millisecond, ChunkSlots: 1024})
	if err != nil {
		return nil, err
	}
	if err := store.EnableTable(tid, ext2Schema); err != nil {
		return nil, err
	}
	db.GC().Start()
	defer db.GC().Stop()
	if laneOn {
		store.Start()
		defer store.Stop()
	}

	var (
		queries atomic.Int64
		writes  atomic.Int64
		stop    = make(chan struct{})
		wg      sync.WaitGroup
	)
	// OLTP: two writers keep a slice of the table hot, creating versions the
	// GC must chase and the migrator must treat as dirty.
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				rid := rids[rng.Intn(len(rids))]
				img, err := encode(int64(rng.Intn(100)), regions[rng.Intn(len(regions))])
				if err != nil {
					return
				}
				_ = db.Exec(txn.StmtSI, nil, func(tx *core.Tx) error {
					return tx.Update(tid, rid, img)
				})
				writes.Add(1)
			}
		}(int64(w + 1))
	}
	// Snapshot churn: registered statement snapshots opened and released at
	// high frequency — the §4 condition the migrator's watermark discipline
	// must hold under.
	for c := 0; c < 2; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap := db.Manager().AcquireSnapshot(txn.KindStatement, []ts.TableID{tid})
				snap.Release()
			}
		}()
	}
	// OLAP: two analysts alternating a scalar SUM and a grouped COUNT.
	for a := 0; a < 2; a++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				spec := htap.AggSpec{Op: htap.AggSum, Col: "amount"}
				if i%2 == 1 {
					spec = htap.AggSpec{Op: htap.AggCount, GroupBy: "region"}
				}
				if _, err := store.Aggregate(tid, spec); err != nil {
					return
				}
				queries.Add(1)
			}
		}()
	}

	// Sample OLAP throughput and live-version accumulation over the run.
	res := &ext2Result{}
	interval := s.cfg.Duration / 30
	if interval <= 0 {
		interval = 10 * time.Millisecond
	}
	start := time.Now()
	lastQ, lastT := int64(0), start
	deadline := start.Add(s.cfg.Duration)
	for now := start; now.Before(deadline); now = time.Now() {
		time.Sleep(interval)
		q := queries.Load()
		t := time.Now()
		qps := float64(q-lastQ) / t.Sub(lastT).Seconds()
		lastQ, lastT = q, t
		res.olapQPS.Points = append(res.olapQPS.Points, metrics.Point{Elapsed: t.Sub(start), Value: qps})
		res.versions.Points = append(res.versions.Points,
			metrics.Point{Elapsed: t.Sub(start), Value: float64(db.Stats().VersionsLive)})
	}
	close(stop)
	wg.Wait()
	res.queries = queries.Load()
	res.writes = writes.Load()
	if st := store.Stats(); len(st) == 1 {
		res.lane = st[0]
	}
	return res, nil
}

// workloadPeriods masks the base periods the way ModeHG runs them: all three
// collectors on.
func workloadPeriods(base gc.Periods) gc.Periods { return base }

// Ext2 regenerates this reproduction's HTAP extension figure: mixed
// OLTP/OLAP throughput and version accumulation with the column lane on
// versus off, under high-frequency snapshot churn. With the lane on, the
// migrator ships settled versions into dictionary-encoded chunks and the
// analysts' aggregates ride column vectors; off, every aggregate walks MVCC
// version chains row by row.
func (s *Suite) Ext2() (*Report, error) {
	off, err := s.ext2Leg(false)
	if err != nil {
		return nil, err
	}
	on, err := s.ext2Leg(true)
	if err != nil {
		return nil, err
	}
	speedup := 0.0
	if off.queries > 0 {
		speedup = float64(on.queries) / float64(off.queries)
	}
	return &Report{
		ID:    "ext2",
		Title: "HTAP column lane on vs off (mixed OLTP updates + OLAP aggregates + snapshot churn)",
		Series: []LabeledSeries{
			{Label: "olap-qps(lane)", Series: on.olapQPS},
			{Label: "olap-qps(row)", Series: off.olapQPS},
			{Label: "versions(lane)", Series: on.versions},
			{Label: "versions(row)", Series: off.versions},
		},
		Notes: []string{
			"extension of §5: the migrator ships settled versions past the GC horizon into column chunks; aggregates then scan vectors instead of version chains",
			fmt.Sprintf("OLAP aggregates: lane=%d row=%d (%.1fx) over %v; OLTP writes: lane=%d row=%d",
				on.queries, off.queries, speedup, s.cfg.Duration, on.writes, off.writes),
			fmt.Sprintf("lane state at end: chunks=%d chunk-rows=%d dirty=%d delta=%d migrated=%d lag=%d",
				on.lane.Chunks, on.lane.ChunkRows, on.lane.DirtyRows, on.lane.DeltaRows,
				on.lane.MigratedRows, on.lane.Lag),
			"expected shape: lane-on OLAP throughput well above row-path; version curves comparable — the lane adds no GC blocker (its build snapshots are short statement snapshots)",
		},
	}, nil
}
