package client_test

// The read scale-out consistency battery: read-your-writes through the
// pool, token monotonicity across endpoint failover, and bounded-staleness
// routing away from a stalled replica. The cluster is real — a persistent
// primary serving replication streams plus replicas applying them, each
// behind its own loopback server with the consistency-token read gate wired
// exactly like hybridgcd wires it.

import (
	"errors"
	"fmt"
	"net"
	"testing"
	"time"

	"hybridgc/internal/client"
	"hybridgc/internal/core"
	"hybridgc/internal/fault"
	"hybridgc/internal/repl"
	"hybridgc/internal/server"
	"hybridgc/internal/wal"
)

// poolNode is one served endpoint of the test cluster.
type poolNode struct {
	addr   string
	srv    *server.Server
	served chan struct{}
	ln     net.Listener
}

func serveNode(t *testing.T, srv *server.Server) *poolNode {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	n := &poolNode{addr: ln.Addr().String(), srv: srv, served: make(chan struct{}), ln: ln}
	go func() {
		defer close(n.served)
		_ = srv.Serve(ln)
	}()
	return n
}

func (n *poolNode) stop() {
	n.srv.Shutdown(5 * time.Second)
	<-n.served
}

// poolReplica is a replica node: applier plus gated server.
type poolReplica struct {
	*poolNode
	rep    *repl.Replica
	db     *core.DB
	runErr chan error
	killed bool
}

func (r *poolReplica) kill() {
	if r.killed {
		return
	}
	r.killed = true
	r.rep.Stop()
	r.stop()
	select {
	case <-r.runErr:
	case <-time.After(5 * time.Second):
	}
	r.db.Close()
}

// poolCluster is one persistent primary plus n gated replicas, all served on
// loopback.
type poolCluster struct {
	t        *testing.T
	primary  *poolNode
	db       *core.DB
	replicas []*poolReplica
}

// tokenGate mirrors hybridgcd's readGate wiring: pass immediately when the
// applier already covers the token, otherwise wait up to wait and bounce.
func tokenGate(rep *repl.Replica, wait time.Duration) func(uint64) (bool, error) {
	return func(minLSN uint64) (bool, error) {
		target := wal.LSN(minLSN)
		if rep.AppliedLSN() >= target {
			return false, nil
		}
		if err := rep.WaitLSN(target, wait); err != nil {
			return true, fmt.Errorf("%w: %v", core.ErrReplicaBehind, err)
		}
		return true, nil
	}
}

func startPoolCluster(t *testing.T, nReplicas int, tokenWait time.Duration) *poolCluster {
	t.Helper()
	db, err := core.Open(core.Config{Persistence: &core.Persistence{Dir: t.TempDir()}})
	if err != nil {
		t.Fatal(err)
	}
	src, err := repl.NewSource(db, repl.SourceConfig{
		HeartbeatEvery: 10 * time.Millisecond,
		StaleAfter:     30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	psrv, err := server.New(db, server.Config{Repl: src, StatsHook: src.PopulateStats})
	if err != nil {
		t.Fatal(err)
	}
	c := &poolCluster{t: t, primary: serveNode(t, psrv), db: db}
	t.Cleanup(func() {
		for _, r := range c.replicas {
			r.kill()
		}
		c.primary.stop()
		src.Close()
		db.Close()
	})

	for i := 0; i < nReplicas; i++ {
		rdb, err := core.Open(core.Config{ReadOnly: true})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := repl.NewReplica(rdb, repl.ReplicaConfig{
			Upstream:      c.primary.addr,
			ReplicaID:     fmt.Sprintf("r%d", i+1),
			ReportEvery:   10 * time.Millisecond,
			ReconnectBase: 10 * time.Millisecond,
			StallTimeout:  30 * time.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		rsrv, err := server.New(rdb, server.Config{
			StatsHook: rep.PopulateStats,
			ReadGate:  tokenGate(rep, tokenWait),
		})
		if err != nil {
			t.Fatal(err)
		}
		pr := &poolReplica{poolNode: serveNode(t, rsrv), rep: rep, db: rdb, runErr: make(chan error, 1)}
		go func() { pr.runErr <- rep.Run() }()
		c.replicas = append(c.replicas, pr)
	}
	return c
}

func (c *poolCluster) replicaAddrs() []string {
	out := make([]string, len(c.replicas))
	for i, r := range c.replicas {
		out[i] = r.addr
	}
	return out
}

func (c *poolCluster) newPool(t *testing.T) *client.ReadPool {
	t.Helper()
	pool, err := client.NewReadPool(client.PoolConfig{
		Primary:           c.primary.addr,
		Replicas:          c.replicaAddrs(),
		HeartbeatInterval: 15 * time.Millisecond,
		QuarantineBase:    20 * time.Millisecond,
		QuarantineMax:     200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(pool.Close)
	return pool
}

// TestReadPoolReadYourWrites is the headline regression: commit on the
// primary, read through the pool immediately, 1000 times — the write must be
// visible every single time, no matter which endpoint serves the read,
// because the session token gates replicas behind the commit.
func TestReadPoolReadYourWrites(t *testing.T) {
	c := startPoolCluster(t, 2, 2*time.Second)
	pool := c.newPool(t)
	if _, err := pool.Exec("CREATE TABLE kv (id INT, v INT)"); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 1000; i++ {
		if _, err := pool.Exec(fmt.Sprintf("INSERT INTO kv VALUES (%d, %d)", i, i*3)); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
		res, err := pool.Read(fmt.Sprintf("SELECT v FROM kv WHERE id = %d", i), client.Session)
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if len(res.Rows) != 1 || res.Rows[0][0].I != int64(i*3) {
			t.Fatalf("read-your-writes violated at %d: %+v (counters %+v)", i, res.Rows, pool.Counters())
		}
	}
	ctr := pool.Counters()
	t.Logf("counters: %+v token=%d", ctr, pool.Token())
	if ctr.ReplicaReads == 0 {
		t.Fatal("no read was served by a replica; the pool never scaled out")
	}
	if pool.Token() == 0 {
		t.Fatal("session token never advanced")
	}
}

// TestReadPoolTokenMonotonicAcrossFailover proves the session token never
// regresses — per statement, and across a replica dying mid-run with its
// traffic failing over to the surviving endpoints.
func TestReadPoolTokenMonotonicAcrossFailover(t *testing.T) {
	c := startPoolCluster(t, 2, 2*time.Second)
	pool := c.newPool(t)
	if _, err := pool.Exec("CREATE TABLE kv (id INT, v INT)"); err != nil {
		t.Fatal(err)
	}
	var last uint64
	step := func(i int) {
		res, err := pool.Exec(fmt.Sprintf("INSERT INTO kv VALUES (%d, %d)", i, i))
		if err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
		if res.Token < last {
			t.Fatalf("statement token regressed at %d: %d after %d", i, res.Token, last)
		}
		if tok := pool.Token(); tok < last || tok < res.Token {
			t.Fatalf("session token regressed at %d: %d (last %d, stmt %d)", i, tok, last, res.Token)
		}
		last = pool.Token()
		if _, err := pool.Read(fmt.Sprintf("SELECT v FROM kv WHERE id = %d", i), client.Session); err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if tok := pool.Token(); tok < last {
			t.Fatalf("read regressed the session token at %d: %d after %d", i, tok, last)
		}
	}
	for i := 1; i <= 60; i++ {
		step(i)
	}
	// Kill one replica mid-run: reads must keep succeeding (failover) and
	// the token discipline must hold on the survivors.
	c.replicas[0].kill()
	for i := 61; i <= 120; i++ {
		step(i)
	}
	// A stale external token cannot regress the session either.
	before := pool.Token()
	pool.ObserveToken(1)
	if pool.Token() != before {
		t.Fatalf("ObserveToken(1) regressed the token: %d -> %d", before, pool.Token())
	}
	t.Logf("counters after failover: %+v", pool.Counters())
}

// TestReadPoolBoundedStalenessSkipsStalledReplica stalls the sole replica's
// applier with the fault failpoint and proves both read paths route away
// from it: a BoundedStaleness read skips the replica once its heartbeat age
// exceeds the bound (served fresh by the primary, never stale by the
// replica), and a Session read bounces off the gate. One replica only — the
// failpoint registry is process-global.
func TestReadPoolBoundedStalenessSkipsStalledReplica(t *testing.T) {
	c := startPoolCluster(t, 1, 40*time.Millisecond)
	pool := c.newPool(t)
	if _, err := pool.Exec("CREATE TABLE kv (id INT, v INT)"); err != nil {
		t.Fatal(err)
	}
	if _, err := pool.Exec("INSERT INTO kv VALUES (1, 10)"); err != nil {
		t.Fatal(err)
	}
	// Let the replica catch up and serve at least one session read, so the
	// heartbeat has certified it and the later counters are meaningful.
	deadline := time.Now().Add(10 * time.Second)
	for pool.Counters().ReplicaReads == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("replica never served a read: %+v", pool.Counters())
		}
		if _, err := pool.Read("SELECT v FROM kv WHERE id = 1", client.Session); err != nil {
			t.Fatal(err)
		}
	}

	// Stall the applier: every apply attempt fails, the stream reconnects,
	// and the replica's applied LSN freezes while its view of the primary's
	// head stays fresh — the signature of a wedged replica.
	fault.Enable(repl.FPApplyStall, fault.ReturnErr(errors.New("wedged applier")))
	t.Cleanup(func() { fault.Disable(repl.FPApplyStall) })

	if _, err := pool.Exec("INSERT INTO kv VALUES (2, 20)"); err != nil {
		t.Fatal(err)
	}
	// Wait until the replica itself reports applied < head, then let the
	// staleness bound expire.
	rcl, err := client.Dial(client.Config{Addr: c.replicas[0].addr})
	if err != nil {
		t.Fatal(err)
	}
	defer rcl.Close()
	for {
		st, err := rcl.Stats()
		if err == nil && st.ReplAppliedLSN < st.ReplPrimaryLSN {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("replica stats never showed the stall")
		}
		time.Sleep(5 * time.Millisecond)
	}
	const bound = 150 * time.Millisecond
	time.Sleep(2 * bound)

	before := pool.Counters()
	res, err := pool.Read("SELECT v FROM kv WHERE id = 2", client.BoundedStaleness(bound))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].I != 20 {
		t.Fatalf("bounded read returned stale or missing data: %+v", res.Rows)
	}
	after := pool.Counters()
	if after.ReplicaReads != before.ReplicaReads {
		t.Fatalf("stalled replica served a bounded read: %+v -> %+v", before, after)
	}
	if after.PrimaryReads != before.PrimaryReads+1 {
		t.Fatalf("bounded read not served by the primary: %+v -> %+v", before, after)
	}

	// The session path routes away too: the gate bounces (or the pool skips)
	// and the primary serves the fresh row.
	res, err = pool.Read("SELECT v FROM kv WHERE id = 2", client.Session)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].I != 20 {
		t.Fatalf("session read returned stale or missing data: %+v", res.Rows)
	}
	final := pool.Counters()
	if final.ReplicaReads != before.ReplicaReads {
		t.Fatalf("stalled replica served a session read: %+v", final)
	}
	if final.Bounces == 0 {
		t.Fatalf("session read against a stalled replica never bounced: %+v", final)
	}

	// Recovery: clear the stall and the replica serves session reads again.
	fault.Disable(repl.FPApplyStall)
	deadline = time.Now().Add(10 * time.Second)
	for pool.Counters().ReplicaReads == final.ReplicaReads {
		if time.Now().After(deadline) {
			t.Fatalf("replica never recovered: %+v", pool.Counters())
		}
		if _, err := pool.Read("SELECT v FROM kv WHERE id = 2", client.Session); err != nil {
			t.Fatal(err)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
