package client_test

import (
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"hybridgc/internal/client"
	"hybridgc/internal/core"
	"hybridgc/internal/server"
	"hybridgc/internal/ts"
)

// startServer runs a loopback server over a fresh engine.
func startServer(t *testing.T, scfg server.Config) (string, *core.DB) {
	t.Helper()
	db, err := core.Open(core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(db, scfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() {
		srv.Shutdown(5 * time.Second)
		db.Close()
	})
	return ln.Addr().String(), db
}

// TestPoolConcurrency hammers one pooled client from many goroutines — the
// race detector's view of the pool, plus basic correctness of interleaved
// autocommit writes.
func TestPoolConcurrency(t *testing.T) {
	addr, _ := startServer(t, server.Config{})
	cl, err := client.Dial(client.Config{Addr: addr, MaxConns: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	if _, err := cl.Exec("CREATE TABLE t (id INT)"); err != nil {
		t.Fatal(err)
	}
	const workers, perWorker = 8, 25
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < perWorker; j++ {
				if err := cl.Ping(); err != nil {
					errs <- err
					return
				}
				if _, err := cl.Exec("INSERT INTO t VALUES (1)"); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	res, err := cl.Exec("SELECT COUNT(*) FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Rows[0][0].I; got != workers*perWorker {
		t.Fatalf("count = %d, want %d", got, workers*perWorker)
	}
}

// TestErrorRehydration proves the wire carries engine errors as the canonical
// sentinels: a remote write-write conflict matches core.ErrWriteConflict and
// is transient; a remote missing table matches core.ErrTableNotFound and is
// not.
func TestErrorRehydration(t *testing.T) {
	addr, _ := startServer(t, server.Config{})
	cl, err := client.Dial(client.Config{Addr: addr, MaxConns: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	tid, err := cl.CreateTable("KV")
	if err != nil {
		t.Fatal(err)
	}
	var rid ts.RID
	{
		tx, err := cl.Begin(false)
		if err != nil {
			t.Fatal(err)
		}
		rid, err = tx.Insert(tid, []byte("v0"))
		if err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}

	tx1, err := cl.Begin(false)
	if err != nil {
		t.Fatal(err)
	}
	defer tx1.Abort()
	tx2, err := cl.Begin(false)
	if err != nil {
		t.Fatal(err)
	}
	defer tx2.Abort()
	if err := tx1.Update(tid, rid, []byte("a")); err != nil {
		t.Fatal(err)
	}
	err = tx2.Update(tid, rid, []byte("b"))
	if err == nil {
		t.Fatal("concurrent update of one record did not conflict")
	}
	if !errors.Is(err, core.ErrWriteConflict) {
		t.Fatalf("conflict error = %v, does not match core.ErrWriteConflict", err)
	}
	if !client.IsTransient(err) {
		t.Fatalf("remote write conflict not transient: %v", err)
	}

	tx3, err := cl.Begin(false)
	if err != nil {
		t.Fatal(err)
	}
	defer tx3.Abort()
	_, err = tx3.Get(9999, 1)
	if !errors.Is(err, core.ErrTableNotFound) {
		t.Fatalf("missing-table error = %v, want core.ErrTableNotFound", err)
	}
	if client.IsTransient(err) {
		t.Fatal("table-not-found must not be transient")
	}
}

// TestRetryOverWire runs core.Retry against wire-carried conflicts: the
// second writer backs off and succeeds once the first commits — the same
// loop the TPC-C driver uses remotely.
func TestRetryOverWire(t *testing.T) {
	addr, _ := startServer(t, server.Config{})
	cl, err := client.Dial(client.Config{Addr: addr, MaxConns: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	tid, err := cl.CreateTable("KV")
	if err != nil {
		t.Fatal(err)
	}
	tx, err := cl.Begin(false)
	if err != nil {
		t.Fatal(err)
	}
	rid, err := tx.Insert(tid, []byte("v0"))
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	blocker, err := cl.Begin(false)
	if err != nil {
		t.Fatal(err)
	}
	if err := blocker.Update(tid, rid, []byte("held")); err != nil {
		t.Fatal(err)
	}
	go func() {
		time.Sleep(20 * time.Millisecond)
		blocker.Commit()
	}()

	attempts := 0
	err = core.Retry(10, 5*time.Millisecond, func() error {
		attempts++
		tx, err := cl.Begin(false)
		if err != nil {
			return err
		}
		defer tx.Abort()
		if err := tx.Update(tid, rid, []byte("retried")); err != nil {
			return err
		}
		return tx.Commit()
	})
	if err != nil {
		t.Fatalf("retry never succeeded: %v", err)
	}
	if attempts < 2 {
		t.Fatalf("expected at least one conflicted attempt, got %d", attempts)
	}
}

// TestTxPinsConnection proves a transaction owns its pooled connection: with
// MaxConns=1, an unrelated call blocks until Commit releases the slot.
func TestTxPinsConnection(t *testing.T) {
	addr, _ := startServer(t, server.Config{})
	cl, err := client.Dial(client.Config{Addr: addr, MaxConns: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	tid, err := cl.CreateTable("KV")
	if err != nil {
		t.Fatal(err)
	}
	tx, err := cl.Begin(false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Insert(tid, []byte("v")); err != nil {
		t.Fatal(err)
	}

	pinged := make(chan error, 1)
	go func() { pinged <- cl.Ping() }()
	select {
	case err := <-pinged:
		t.Fatalf("ping completed while the only connection was pinned (err=%v)", err)
	case <-time.After(50 * time.Millisecond):
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-pinged:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("ping never completed after Commit released the connection")
	}
}

// TestCursorPinsConnection is the same property for query cursors.
func TestCursorPinsConnection(t *testing.T) {
	addr, _ := startServer(t, server.Config{})
	cl, err := client.Dial(client.Config{Addr: addr, MaxConns: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, err := cl.Exec("CREATE TABLE t (id INT)"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := cl.Exec("INSERT INTO t VALUES (1)"); err != nil {
			t.Fatal(err)
		}
	}
	cu, err := cl.Query("SELECT id FROM t")
	if err != nil {
		t.Fatal(err)
	}
	// The cursor's connection stays out of the pool, so a concurrent Exec
	// works on the other one and the cursor keeps fetching afterwards.
	if _, err := cl.Exec("INSERT INTO t VALUES (2)"); err != nil {
		t.Fatal(err)
	}
	rows, _, err := cu.Fetch(100)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("cursor saw %d rows, want its snapshot's 5", len(rows))
	}
	if err := cu.Close(); err != nil {
		t.Fatal(err)
	}
	if err := cu.Close(); err != nil {
		t.Fatal("second Close must be a no-op, got", err)
	}
}
