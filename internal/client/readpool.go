// Read scale-out: ReadPool is a read/write-splitting client over one
// primary and a set of read replicas.
//
// Writes (and Strong reads) always go to the primary. Default reads carry
// the pool's session consistency token — the highest commit LSN any write
// through the pool has produced — so any replica that has applied past the
// token can serve them with read-your-writes intact; a replica that is
// behind bounces the request (core.ErrReplicaBehind) and the pool retries
// on the next endpoint, falling back to the primary. BoundedStaleness
// reads relax the token to a wall-clock bound: they are routed only to
// replicas recently observed caught up with their upstream, which is what
// caps how stale their snapshot — and therefore how long the primary's GC
// must retain old versions for them — can be.
//
// Endpoint health is tracked two ways: a background heartbeat polls STATS
// off every endpoint for applied/head LSNs (the staleness signal), and any
// transport failure on the request path quarantines the endpoint with a
// full-jitter backoff so in-flight reads fail over instead of piling onto a
// dead address.
package client

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"hybridgc/internal/core"
)

// Consistency selects the guarantee a pooled read needs.
type Consistency struct {
	kind  byte
	bound time.Duration
}

const (
	ckSession byte = iota // default: read-your-writes via the session token
	ckStrong              // primary only
	ckBounded             // any replica observed caught up within the bound
)

// Session reads observe every write made through the pool (read-your-writes):
// they carry the session token and only a caught-up endpoint serves them.
var Session = Consistency{kind: ckSession}

// Strong reads are routed to the primary and observe every commit.
var Strong = Consistency{kind: ckStrong}

// BoundedStaleness reads accept data up to d stale: they are served by any
// replica the heartbeat observed caught up within the last d, without
// waiting on the session token. Dashboard traffic.
func BoundedStaleness(d time.Duration) Consistency {
	return Consistency{kind: ckBounded, bound: d}
}

// PoolConfig tunes a ReadPool.
type PoolConfig struct {
	// Primary is the writable server's address.
	Primary string
	// Replicas are the read replicas' addresses (may be empty: every read
	// then lands on the primary).
	Replicas []string
	// Client is the per-endpoint connection config; Addr is overridden per
	// endpoint.
	Client Config
	// HeartbeatInterval paces the background STATS poll that feeds the
	// staleness and health signals (<=0 selects 50ms).
	HeartbeatInterval time.Duration
	// QuarantineBase/QuarantineMax bound the backoff window an endpoint sits
	// out after a transport failure (<=0 select 100ms / 3s).
	QuarantineBase time.Duration
	QuarantineMax  time.Duration
}

func (c *PoolConfig) fill() {
	if c.HeartbeatInterval <= 0 {
		c.HeartbeatInterval = 50 * time.Millisecond
	}
	if c.QuarantineBase <= 0 {
		c.QuarantineBase = 100 * time.Millisecond
	}
	if c.QuarantineMax <= 0 {
		c.QuarantineMax = 3 * time.Second
	}
}

// PoolCounters is the pool's routing telemetry.
type PoolCounters struct {
	// PrimaryReads / ReplicaReads count where reads were ultimately served.
	PrimaryReads int64
	ReplicaReads int64
	// Writes counts statements routed to the primary as writes.
	Writes int64
	// Bounces counts replica refusals (ErrReplicaBehind) that caused a
	// retry on another endpoint.
	Bounces int64
	// Failovers counts endpoint quarantines triggered by the request path.
	Failovers int64
}

// endpoint is one server the pool routes to.
type endpoint struct {
	addr    string
	replica bool

	mu     sync.Mutex
	cl     *Client   // nil until the first successful dial
	failN  int       // consecutive transport/dial failures
	downAt time.Time // quarantined until this instant

	// Heartbeat view: the endpoint's applied LSN vs. the stream head it
	// reports, and when we last observed it fully caught up. On the primary
	// caughtUpAt is every successful heartbeat.
	applied    uint64
	head       uint64
	caughtUpAt time.Time
}

// ReadPool routes statements across one primary and a replica set.
type ReadPool struct {
	cfg      PoolConfig
	primary  *endpoint
	replicas []*endpoint

	token atomic.Uint64 // session consistency token: max commit LSN seen
	rr    atomic.Uint64 // round-robin cursor over replicas

	primaryReads atomic.Int64
	replicaReads atomic.Int64
	writes       atomic.Int64
	bounces      atomic.Int64
	failovers    atomic.Int64

	stop chan struct{}
	wg   sync.WaitGroup
}

// NewReadPool builds a pool and eagerly dials the primary (a bad primary
// address fails here). Replicas are dialed lazily and quarantined while
// unreachable, so a pool can start before its replicas do.
func NewReadPool(cfg PoolConfig) (*ReadPool, error) {
	cfg.fill()
	p := &ReadPool{
		cfg:     cfg,
		primary: &endpoint{addr: cfg.Primary},
		stop:    make(chan struct{}),
	}
	for _, addr := range cfg.Replicas {
		p.replicas = append(p.replicas, &endpoint{addr: addr, replica: true})
	}
	if _, err := p.client(p.primary); err != nil {
		return nil, fmt.Errorf("readpool: primary %s: %w", cfg.Primary, err)
	}
	p.wg.Add(1)
	go p.heartbeatLoop()
	return p, nil
}

// Close stops the heartbeat and closes every endpoint's connections.
func (p *ReadPool) Close() {
	close(p.stop)
	p.wg.Wait()
	for _, ep := range append([]*endpoint{p.primary}, p.replicas...) {
		ep.mu.Lock()
		if ep.cl != nil {
			ep.cl.Close()
		}
		ep.mu.Unlock()
	}
}

// Token returns the pool's session consistency token.
func (p *ReadPool) Token() uint64 { return p.token.Load() }

// ObserveToken raises the session token to t (tokens only move forward, so
// callers may feed in tokens from transactions or other sessions to extend
// read-your-writes over them).
func (p *ReadPool) ObserveToken(t uint64) {
	for {
		cur := p.token.Load()
		if t <= cur || p.token.CompareAndSwap(cur, t) {
			return
		}
	}
}

// Counters snapshots the pool's routing telemetry.
func (p *ReadPool) Counters() PoolCounters {
	return PoolCounters{
		PrimaryReads: p.primaryReads.Load(),
		ReplicaReads: p.replicaReads.Load(),
		Writes:       p.writes.Load(),
		Bounces:      p.bounces.Load(),
		Failovers:    p.failovers.Load(),
	}
}

// Primary exposes the primary's pooled client for session-state work the
// pool cannot route (transactions via Begin, record-level verbs).
func (p *ReadPool) Primary() (*Client, error) { return p.client(p.primary) }

// client returns the endpoint's client, dialing if needed.
func (ep *endpoint) client(cfg Config) (*Client, error) {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	if ep.cl != nil {
		return ep.cl, nil
	}
	cfg.Addr = ep.addr
	cl, err := Dial(cfg)
	if err != nil {
		return nil, err
	}
	ep.cl = cl
	return cl, nil
}

func (p *ReadPool) client(ep *endpoint) (*Client, error) {
	return ep.client(p.cfg.Client)
}

// quarantine benches the endpoint for a backoff window after a transport or
// dial failure.
func (p *ReadPool) quarantine(ep *endpoint) {
	ep.mu.Lock()
	ep.downAt = time.Now().Add(core.Backoff(ep.failN, p.cfg.QuarantineBase, p.cfg.QuarantineMax))
	ep.failN++
	ep.mu.Unlock()
	p.failovers.Add(1)
}

// recover clears the endpoint's quarantine after a success.
func (ep *endpoint) recover() {
	ep.mu.Lock()
	ep.failN, ep.downAt = 0, time.Time{}
	ep.mu.Unlock()
}

// available reports whether the endpoint is outside its quarantine window.
func (ep *endpoint) available(now time.Time) bool {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	return now.After(ep.downAt)
}

// staleWithin reports whether the heartbeat observed the endpoint caught up
// with its upstream within the last d.
func (ep *endpoint) staleWithin(now time.Time, d time.Duration) bool {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	return !ep.caughtUpAt.IsZero() && now.Sub(ep.caughtUpAt) <= d
}

// heartbeatLoop polls STATS off every endpoint: replicas report their
// applied LSN against the stream head (the staleness signal), and a
// successful poll of a quarantined endpoint lifts the quarantine early.
func (p *ReadPool) heartbeatLoop() {
	defer p.wg.Done()
	tick := time.NewTicker(p.cfg.HeartbeatInterval)
	defer tick.Stop()
	for {
		select {
		case <-p.stop:
			return
		case <-tick.C:
		}
		for _, ep := range append([]*endpoint{p.primary}, p.replicas...) {
			cl, err := p.client(ep)
			if err != nil {
				p.quarantine(ep)
				continue
			}
			st, err := cl.Stats()
			now := time.Now()
			ep.mu.Lock()
			if err != nil {
				// Leave failN to the request path; a heartbeat miss alone
				// just stops caughtUpAt from advancing.
				ep.mu.Unlock()
				continue
			}
			ep.applied, ep.head = st.ReplAppliedLSN, st.ReplPrimaryLSN
			if !ep.replica || st.ReplAppliedLSN >= st.ReplPrimaryLSN {
				ep.caughtUpAt = now
			}
			ep.failN, ep.downAt = 0, time.Time{}
			ep.mu.Unlock()
		}
	}
}

// Exec routes one write (or any statement that must see and produce the
// latest state) to the primary and folds its commit token into the session.
func (p *ReadPool) Exec(sqlText string) (*Result, error) {
	cl, err := p.client(p.primary)
	if err != nil {
		p.quarantine(p.primary)
		return nil, err
	}
	res, err := cl.Exec(sqlText)
	if err != nil {
		if isTransportErr(err) {
			p.quarantine(p.primary)
		}
		return nil, err
	}
	p.writes.Add(1)
	p.ObserveToken(res.Token)
	return res, nil
}

// Read routes one read-only statement per the requested consistency level.
// The error of the last endpoint tried is returned when every endpoint
// fails; transient classification (core.IsTransient) is preserved so
// callers' retry loops work unchanged.
func (p *ReadPool) Read(sqlText string, c Consistency) (*Result, error) {
	if c.kind == ckStrong {
		return p.readPrimary(sqlText)
	}
	now := time.Now()
	token := p.token.Load()
	var lastErr error
	n := len(p.replicas)
	if n > 0 {
		start := int(p.rr.Add(1))
		for i := 0; i < n; i++ {
			ep := p.replicas[(start+i)%n]
			if !ep.available(now) {
				continue
			}
			if c.kind == ckBounded && !ep.staleWithin(now, c.bound) {
				continue
			}
			cl, err := p.client(ep)
			if err != nil {
				p.quarantine(ep)
				lastErr = fmt.Errorf("%w: %v", core.ErrUnavailable, err)
				continue
			}
			min := token
			if c.kind == ckBounded {
				// The bound, not the token, is the contract: let a lagging
				// replica that the heartbeat still certifies serve the read.
				min = 0
			}
			res, err := cl.ExecAt(sqlText, min)
			if err == nil {
				ep.recover()
				p.replicaReads.Add(1)
				return res, nil
			}
			lastErr = err
			if errors.Is(err, core.ErrReplicaBehind) {
				p.bounces.Add(1)
				continue
			}
			if isTransportErr(err) || errors.Is(err, core.ErrUnavailable) {
				p.quarantine(ep)
				continue
			}
			// A server-reported statement error (bad SQL, missing table) is
			// the caller's answer; no other endpoint would disagree.
			return nil, err
		}
	}
	// Every replica skipped or failed: the primary trivially satisfies any
	// token and is never stale.
	res, err := p.readPrimary(sqlText)
	if err != nil && lastErr != nil && errors.Is(err, core.ErrUnavailable) {
		return nil, fmt.Errorf("readpool: all endpoints failed: %w (last replica: %v)", err, lastErr)
	}
	return res, err
}

func (p *ReadPool) readPrimary(sqlText string) (*Result, error) {
	cl, err := p.client(p.primary)
	if err != nil {
		p.quarantine(p.primary)
		return nil, fmt.Errorf("%w: %v", core.ErrUnavailable, err)
	}
	res, err := cl.Exec(sqlText)
	if err != nil {
		if isTransportErr(err) {
			p.quarantine(p.primary)
		}
		return nil, err
	}
	p.primaryReads.Add(1)
	return res, nil
}
