package client_test

import (
	"errors"
	"net"
	"strings"
	"testing"
	"time"

	"hybridgc/internal/client"
	"hybridgc/internal/core"
	"hybridgc/internal/netfault"
	"hybridgc/internal/server"
)

// waitFor polls cond until it returns true or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// proxiedClient stands a netfault proxy between a fresh server and a client,
// returning both so tests can inject network weather.
func proxiedClient(t *testing.T, ccfg client.Config) (*client.Client, *netfault.Proxy) {
	t.Helper()
	addr, _ := startServer(t, server.Config{})
	p, err := netfault.NewProxy(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)
	ccfg.Addr = p.Addr()
	cl, err := client.Dial(ccfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)
	return cl, p
}

// TestDialTimeoutBoundsHandshake: a peer that accepts but never answers HELLO
// must fail the dial within DialTimeout, not hang for RequestTimeout.
func TestDialTimeoutBoundsHandshake(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			nc, err := ln.Accept()
			if err != nil {
				return
			}
			defer nc.Close() // accept and say nothing: a tarpit
		}
	}()

	start := time.Now()
	_, err = client.Dial(client.Config{
		Addr:           ln.Addr().String(),
		DialTimeout:    150 * time.Millisecond,
		RequestTimeout: 30 * time.Second,
	})
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("dial against a mute peer succeeded")
	}
	if elapsed > 2*time.Second {
		t.Fatalf("dial took %v, want bounded by the 150ms DialTimeout", elapsed)
	}
}

// TestFastFailAndRedialRecovery: dial failures arm a fast-fail window
// (core.ErrUnavailable, transient) without touching callers on healthy
// connections, and the background redialer restores service after a heal.
func TestFastFailAndRedialRecovery(t *testing.T) {
	cl, p := proxiedClient(t, client.Config{
		MaxConns:    4,
		DialTimeout: 500 * time.Millisecond,
		RedialBase:  10 * time.Millisecond,
		RedialMax:   50 * time.Millisecond,
	})
	tid, err := cl.CreateTable("KV")
	if err != nil {
		t.Fatal(err)
	}

	// Pin the one idle connection in a transaction, then make new dials fail.
	tx, err := cl.Begin(false)
	if err != nil {
		t.Fatal(err)
	}
	p.SetRefuse(true)

	// A call needing a fresh connection fails with the transient unavailable
	// sentinel — once from the dial itself, then from the fast-fail window.
	for i := 0; i < 2; i++ {
		err := cl.Ping()
		if !errors.Is(err, core.ErrUnavailable) {
			t.Fatalf("ping %d while refused = %v, want core.ErrUnavailable", i, err)
		}
		if !core.IsTransient(err) {
			t.Fatalf("unavailable not transient: %v", err)
		}
	}

	// The pinned transaction's established link is untouched by refusal.
	if _, err := tx.Insert(tid, []byte("v")); err != nil {
		t.Fatalf("healthy pinned connection failed during refusal: %v", err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	// Heal: the background redialer (or the next caller) restores service.
	p.Heal()
	waitFor(t, 5*time.Second, "ping recovery after heal", func() bool {
		return cl.Ping() == nil
	})
	waitFor(t, 5*time.Second, "background redial attempt", func() bool {
		return cl.Redials() > 0
	})
}

// TestFastFailMentionsAddress: the fast-fail error names the address and the
// failure count, so a chaos log line alone localises the fault.
func TestFastFailMentionsAddress(t *testing.T) {
	cl, p := proxiedClient(t, client.Config{
		MaxConns:    2,
		DialTimeout: 300 * time.Millisecond,
		RedialBase:  50 * time.Millisecond,
		RedialMax:   time.Second,
	})
	// Drain the idle connection into a pinned tx so pings must dial.
	tx, err := cl.Begin(false)
	if err != nil {
		t.Fatal(err)
	}
	defer tx.Abort()
	p.SetRefuse(true)
	if err := cl.Ping(); !errors.Is(err, core.ErrUnavailable) {
		t.Fatalf("first refused ping = %v", err)
	}
	err = cl.Ping() // inside the backoff window: fast-fail
	if !errors.Is(err, core.ErrUnavailable) {
		t.Fatalf("fast-fail ping = %v, want core.ErrUnavailable", err)
	}
	if !strings.Contains(err.Error(), p.Addr()) {
		t.Fatalf("fast-fail error %q does not name the address", err)
	}
	p.Heal()
}

// TestTxBreakageIsTransient: killing the connection under an open transaction
// surfaces core.ErrTxnBroken — transient, because the server aborted the
// transaction with the connection, so a full re-run is safe. The pool slot
// frees immediately and the next call gets a fresh connection.
func TestTxBreakageIsTransient(t *testing.T) {
	cl, p := proxiedClient(t, client.Config{MaxConns: 2, RequestTimeout: 2 * time.Second})
	tid, err := cl.CreateTable("KV")
	if err != nil {
		t.Fatal(err)
	}
	tx, err := cl.Begin(false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Insert(tid, []byte("v0")); err != nil {
		t.Fatal(err)
	}
	p.DropLinks()
	_, err = tx.Insert(tid, []byte("v1"))
	if !errors.Is(err, core.ErrTxnBroken) {
		t.Fatalf("insert on dropped link = %v, want core.ErrTxnBroken", err)
	}
	if !core.IsTransient(err) {
		t.Fatalf("txn breakage not transient: %v", err)
	}
	// The Tx finished itself: further use is rejected, Abort is a no-op.
	if _, err := tx.Insert(tid, []byte("v2")); err == nil {
		t.Fatal("insert on a broken-finished tx succeeded")
	}
	tx.Abort()

	// The pool recovered: a fresh transaction runs end to end.
	waitFor(t, 5*time.Second, "pool recovery", func() bool { return cl.Ping() == nil })
	tx2, err := cl.Begin(false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx2.Insert(tid, []byte("v3")); err != nil {
		t.Fatal(err)
	}
	if err := tx2.Commit(); err != nil {
		t.Fatal(err)
	}
}

// TestCommitBreakageIsAmbiguous: a connection killed while COMMIT is in
// flight surfaces core.ErrCommitAmbiguous, which must NOT be transient — a
// blind retry could double-apply the transaction.
func TestCommitBreakageIsAmbiguous(t *testing.T) {
	cl, p := proxiedClient(t, client.Config{MaxConns: 2, RequestTimeout: 2 * time.Second})
	tid, err := cl.CreateTable("KV")
	if err != nil {
		t.Fatal(err)
	}
	tx, err := cl.Begin(false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Insert(tid, []byte("v")); err != nil {
		t.Fatal(err)
	}
	p.DropLinks()
	err = tx.Commit()
	if !errors.Is(err, core.ErrCommitAmbiguous) {
		t.Fatalf("commit on dropped link = %v, want core.ErrCommitAmbiguous", err)
	}
	if core.IsTransient(err) {
		t.Fatal("ambiguous commit must not be transient")
	}
}

// TestIdempotentReadRetriesTransparently: a broken idle connection costs a
// read-only call nothing — Ping/Stats retry once on a fresh connection.
func TestIdempotentReadRetriesTransparently(t *testing.T) {
	cl, p := proxiedClient(t, client.Config{MaxConns: 2, RequestTimeout: 2 * time.Second})
	if err := cl.Ping(); err != nil {
		t.Fatal(err)
	}
	// The pooled idle connection is now dead, but the caller never sees it.
	p.DropLinks()
	if err := cl.Ping(); err != nil {
		t.Fatalf("ping across a dropped idle connection = %v, want transparent retry", err)
	}
	p.DropLinks()
	if _, err := cl.Stats(); err != nil {
		t.Fatalf("stats across a dropped idle connection = %v, want transparent retry", err)
	}
}

// TestCursorBreakageIsTransient: a cursor whose connection dies mid-scan
// surfaces core.ErrTxnBroken (the server released its snapshot with the
// session), and Close skips the wire round trip on the broken link.
func TestCursorBreakageIsTransient(t *testing.T) {
	cl, p := proxiedClient(t, client.Config{MaxConns: 2, RequestTimeout: 2 * time.Second})
	if _, err := cl.Exec("CREATE TABLE t (id INT)"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := cl.Exec("INSERT INTO t VALUES (1)"); err != nil {
			t.Fatal(err)
		}
	}
	cu, err := cl.Query("SELECT id FROM t")
	if err != nil {
		t.Fatal(err)
	}
	p.DropLinks()
	_, _, err = cu.Fetch(10)
	if !errors.Is(err, core.ErrTxnBroken) {
		t.Fatalf("fetch on dropped link = %v, want core.ErrTxnBroken", err)
	}
	if !core.IsTransient(err) {
		t.Fatalf("cursor breakage not transient: %v", err)
	}
	if err := cu.Close(); err != nil {
		t.Fatalf("close after breakage = %v, want nil (no round trip)", err)
	}
	// Re-running the query from scratch is the documented recovery.
	waitFor(t, 5*time.Second, "pool recovery", func() bool { return cl.Ping() == nil })
	cu2, err := cl.Query("SELECT id FROM t")
	if err != nil {
		t.Fatal(err)
	}
	rows, _, err := cu2.Fetch(10)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("reopened cursor saw %d rows, want 3", len(rows))
	}
	cu2.Close()
}
