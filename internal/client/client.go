// Package client is the remote counterpart of internal/server: a pooled,
// stdlib-only client for the wire protocol. A Client owns up to MaxConns
// TCP connections, reused across calls; transactions and query cursors pin
// one connection (they are per-session state on the server) until
// Commit/Abort/Close returns it to the pool.
//
// Engine errors cross the wire as codes and rehydrate into the canonical
// sentinels (core.ErrWriteConflict, core.ErrVersionPressure,
// core.ErrFailStop, ...), so core.IsTransient and core.Retry treat a remote
// rejection exactly like a local one — the degradation ladder of PR 1
// propagates to remote callers unchanged.
package client

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"hybridgc/internal/core"
	"hybridgc/internal/engine"
	"hybridgc/internal/ts"
	"hybridgc/internal/wire"
)

// ErrClosed reports an operation on a closed client.
var ErrClosed = errors.New("client: closed")

// Config tunes a Client.
type Config struct {
	// Addr is the server's TCP address.
	Addr string
	// Token is presented in HELLO.
	Token string
	// MaxConns bounds the pool (<=0 selects 8).
	MaxConns int
	// DialTimeout bounds one dial including its HELLO handshake (<=0
	// selects 5s). A hung dial therefore holds its pool slot for at most
	// this long; callers holding idle connections are never blocked by it.
	DialTimeout time.Duration
	// RequestTimeout bounds one request/response round trip (<=0 selects
	// 30s). Every call sets it as the connection's write and read deadline,
	// so a partitioned server surfaces a timeout rather than a hang.
	RequestTimeout time.Duration
	// RedialBase/RedialMax bound the background redialer's full-jitter
	// exponential backoff after dial failures (<=0 select 50ms / 2s). While
	// the backoff clock runs, calls that would need a fresh connection
	// fail fast with core.ErrUnavailable (transient) instead of piling up
	// on a dead address.
	RedialBase time.Duration
	RedialMax  time.Duration
	// HelloMinLSN, when >0, is a consistency token carried in every HELLO:
	// a replica that has not applied up to this LSN refuses the handshake
	// (waits, then bounces with core.ErrReplicaBehind), so a session is
	// never established against a server that cannot satisfy its token.
	// Zero sends a token-less HELLO that pre-token servers accept.
	HelloMinLSN uint64
}

func (c *Config) fill() {
	if c.MaxConns <= 0 {
		c.MaxConns = 8
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = 5 * time.Second
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 30 * time.Second
	}
	if c.RedialBase <= 0 {
		c.RedialBase = 50 * time.Millisecond
	}
	if c.RedialMax <= 0 {
		c.RedialMax = 2 * time.Second
	}
}

// Client is a pooled connection to one server.
type Client struct {
	cfg Config

	mu        sync.Mutex
	idle      []*Conn
	closed    bool
	failN     int           // consecutive dial failures
	downUntil time.Time     // fast-fail window after a dial failure
	redialing bool          // background redialer running
	sem       chan struct{} // one slot per live or dialable connection

	redials atomic.Int64 // background redial attempts
	// shards caches the server's shard count from the HELLO response (1 on a
	// single-node server or a pre-sharding peer that omits the field) — the
	// shard map a routing caller (the TPC-C driver's by-warehouse affinity)
	// uses to pick BeginShard targets without a STATS round trip.
	shards atomic.Int64
}

// Dial creates a client and eagerly dials one connection so a bad address or
// token fails here rather than on first use.
func Dial(cfg Config) (*Client, error) {
	cfg.fill()
	c := &Client{cfg: cfg, sem: make(chan struct{}, cfg.MaxConns)}
	cn, err := c.dial()
	if err != nil {
		return nil, err
	}
	// Idle connections hold no pool slot: get() acquires a slot first and
	// then reuses an idle connection or dials.
	c.mu.Lock()
	c.idle = append(c.idle, cn)
	c.mu.Unlock()
	return c, nil
}

// Close closes every pooled connection. In-flight transactions and cursors
// on checked-out connections fail on their next use.
func (c *Client) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return
	}
	c.closed = true
	for _, cn := range c.idle {
		cn.nc.Close()
	}
	c.idle = nil
}

// dial opens and handshakes one connection. The whole exchange — TCP
// connect plus HELLO round trip — runs under DialTimeout, so a peer that
// accepts but never answers cannot pin the dialer (and its pool slot) for a
// full RequestTimeout.
func (c *Client) dial() (*Conn, error) {
	nc, err := net.DialTimeout("tcp", c.cfg.Addr, c.cfg.DialTimeout)
	if err != nil {
		return nil, err
	}
	cn := &Conn{nc: nc, br: bufio.NewReader(nc), timeout: c.cfg.DialTimeout}
	body := (&wire.Builder{}).Raw([]byte(wire.Magic)).U8(wire.Version).Str(c.cfg.Token)
	if c.cfg.HelloMinLSN > 0 {
		body.U64(c.cfg.HelloMinLSN)
	}
	r, err := cn.roundTrip(wire.OpHello, body.Take())
	if err != nil {
		nc.Close()
		return nil, fmt.Errorf("client: handshake: %w", err)
	}
	if got := r.U8(); got != wire.Version || r.Err() != nil {
		nc.Close()
		return nil, fmt.Errorf("client: server speaks protocol %d, want %d", got, wire.Version)
	}
	// The shard count trails the version byte; a pre-sharding server omits
	// it, which reads as a single shard.
	if n := int64(0); r.Rest() >= 4 {
		n = int64(r.U32())
		if n > 0 {
			c.shards.Store(n)
		}
	}
	if c.shards.Load() == 0 {
		c.shards.Store(1)
	}
	cn.timeout = c.cfg.RequestTimeout
	return cn, nil
}

// ShardCount reports the server's shard count as negotiated in HELLO (1 on a
// single-node server).
func (c *Client) ShardCount() int { return int(c.shards.Load()) }

// get checks a connection out of the pool, dialing when the pool has free
// capacity and no idle connection. While the redial backoff clock runs (a
// recent dial failed), calls that would need a fresh dial fail fast with
// core.ErrUnavailable instead of queueing another doomed connect — the
// background redialer owns recovery, and callers using idle connections are
// unaffected.
func (c *Client) get() (*Conn, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClosed
	}
	c.mu.Unlock()
	c.sem <- struct{}{}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		<-c.sem
		return nil, ErrClosed
	}
	if n := len(c.idle); n > 0 {
		cn := c.idle[n-1]
		c.idle = c.idle[:n-1]
		c.mu.Unlock()
		return cn, nil
	}
	if fails, until := c.failN, c.downUntil; fails > 0 && time.Now().Before(until) {
		c.mu.Unlock()
		<-c.sem
		return nil, fmt.Errorf("%w: %s down after %d failed dials, redialing",
			core.ErrUnavailable, c.cfg.Addr, fails)
	}
	c.mu.Unlock()
	cn, err := c.dial()
	if err != nil {
		<-c.sem
		c.noteDialFailure()
		return nil, fmt.Errorf("%w: %v", core.ErrUnavailable, err)
	}
	c.noteDialSuccess()
	return cn, nil
}

// noteDialFailure records a failed dial, arms the fast-fail window with a
// full-jitter exponential backoff, and makes sure exactly one background
// redialer is working the address.
func (c *Client) noteDialFailure() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return
	}
	c.downUntil = time.Now().Add(core.Backoff(c.failN, c.cfg.RedialBase, c.cfg.RedialMax))
	c.failN++
	if !c.redialing {
		c.redialing = true
		go c.redialLoop()
	}
}

// noteDialSuccess clears the backoff state.
func (c *Client) noteDialSuccess() {
	c.mu.Lock()
	c.failN, c.downUntil = 0, time.Time{}
	c.mu.Unlock()
}

// redialLoop restores connectivity after dial failures: it keeps attempting
// one dial under the jittered backoff schedule until a connection
// handshakes (parked in the idle pool for the next caller) or the client
// closes. Exactly one loop runs at a time; it does not hold a pool slot, so
// it never competes with callers for capacity.
func (c *Client) redialLoop() {
	for {
		c.mu.Lock()
		if c.closed {
			c.redialing = false
			c.mu.Unlock()
			return
		}
		attempt := c.failN
		c.mu.Unlock()

		core.BackoffSleep(core.Backoff(attempt, c.cfg.RedialBase, c.cfg.RedialMax))
		c.redials.Add(1)
		cn, err := c.dial()
		c.mu.Lock()
		if c.closed {
			c.redialing = false
			c.mu.Unlock()
			if cn != nil {
				cn.nc.Close()
			}
			return
		}
		if err != nil {
			c.downUntil = time.Now().Add(core.Backoff(c.failN, c.cfg.RedialBase, c.cfg.RedialMax))
			c.failN++
			c.mu.Unlock()
			continue
		}
		c.failN, c.downUntil = 0, time.Time{}
		c.idle = append(c.idle, cn)
		c.redialing = false
		c.mu.Unlock()
		return
	}
}

// Redials reports background redial attempts — observability for tests and
// the chaos harness.
func (c *Client) Redials() int64 { return c.redials.Load() }

// put returns a connection; broken connections are discarded so the next
// get dials fresh.
func (c *Client) put(cn *Conn) {
	c.mu.Lock()
	if c.closed || cn.broken {
		c.mu.Unlock()
		cn.nc.Close()
		<-c.sem
		return
	}
	c.idle = append(c.idle, cn)
	c.mu.Unlock()
	<-c.sem
}

// do runs one round trip on a pooled connection.
func (c *Client) do(op byte, body []byte) (*wire.Parser, error) {
	cn, err := c.get()
	if err != nil {
		return nil, err
	}
	r, err := cn.roundTrip(op, body)
	c.put(cn)
	return r, err
}

// isTransportErr reports a connection-level failure — not a server-reported
// error frame (*wire.Error), not pool shutdown, not the fast-fail path. Only
// transport failures leave a request's outcome unknown.
func isTransportErr(err error) bool {
	if err == nil || errors.Is(err, ErrClosed) || errors.Is(err, core.ErrUnavailable) {
		return false
	}
	var we *wire.Error
	return !errors.As(err, &we)
}

// doIdempotent is do for request types that are safe to repeat (pure reads
// with no session state): a transport failure poisons the connection and the
// call transparently retries once on a fresh one. Writes never come through
// here — a lost response leaves their outcome ambiguous.
func (c *Client) doIdempotent(op byte, body []byte) (*wire.Parser, error) {
	r, err := c.do(op, body)
	if !isTransportErr(err) {
		return r, err
	}
	return c.do(op, body)
}

// doB is do with a pooled request builder, released after the write
// (WriteFrame copies the body out before sending).
func (c *Client) doB(op byte, b *wire.Builder) (*wire.Parser, error) {
	r, err := c.do(op, b.Take())
	wire.PutBuilder(b)
	return r, err
}

// Ping round-trips a PING (idempotent: retried once across a broken
// connection).
func (c *Client) Ping() error {
	_, err := c.doIdempotent(wire.OpPing, nil)
	return err
}

// Stats fetches engine and service statistics (idempotent: retried once
// across a broken connection).
func (c *Client) Stats() (wire.Stats, error) {
	r, err := c.doIdempotent(wire.OpStats, nil)
	if err != nil {
		return wire.Stats{}, err
	}
	st := wire.DecodeStats(r)
	return st, r.Err()
}

// Result is one statement's outcome, mirroring sql.Result in wire types.
type Result struct {
	Message  string
	Affected int
	Columns  []string
	Rows     [][]wire.Datum
	// Token is the server's session consistency token after the statement
	// (the WAL stream head, ≥ the commit LSN of an autocommitted write).
	// Zero from pre-token servers and token-less engines (memory-only,
	// sharded); sessions track their running maximum for read-your-writes.
	Token uint64
}

func decodeResult(r *wire.Parser) (*Result, error) {
	res := &Result{Message: r.Str(), Affected: int(r.U32())}
	res.Columns = wire.GetStrings(r)
	res.Rows = wire.GetRows(r)
	// Trailing consistency token; absent from pre-token servers.
	if r.Err() == nil && r.Rest() >= 8 {
		res.Token = r.U64()
	}
	return res, r.Err()
}

// Exec runs one autocommit SQL statement on a pooled connection. Statements
// that change session state (BEGIN/COMMIT/ROLLBACK) must go through Begin —
// on a pooled connection the session they would affect is arbitrary.
func (c *Client) Exec(sqlText string) (*Result, error) {
	return c.ExecAt(sqlText, 0)
}

// ExecAt is Exec carrying a min-LSN consistency token: a token-gating server
// (a replica) holds the statement until its applier reaches minLSN or
// bounces with the transient core.ErrReplicaBehind so the caller retries on
// another endpoint. A zero token sends a plain EXEC that pre-token servers
// accept unchanged.
func (c *Client) ExecAt(sqlText string, minLSN uint64) (*Result, error) {
	w := wire.GetBuilder().Str(sqlText)
	if minLSN > 0 {
		w.U64(minLSN)
	}
	r, err := c.doB(wire.OpExec, w)
	if err != nil {
		return nil, err
	}
	return decodeResult(r)
}

// CreateTable registers a record-level engine table (not a SQL table).
func (c *Client) CreateTable(name string) (ts.TableID, error) {
	r, err := c.doB(wire.OpCreateTable, wire.GetBuilder().Str(name))
	if err != nil {
		return 0, err
	}
	tid := ts.TableID(r.U32())
	return tid, r.Err()
}

// TableIDs resolves engine table names (idempotent: retried once across a
// broken connection).
func (c *Client) TableIDs(names ...string) ([]ts.TableID, error) {
	w := wire.GetBuilder()
	wire.PutStrings(w, names)
	r, err := c.doIdempotent(wire.OpTableIDs, w.Take())
	wire.PutBuilder(w)
	if err != nil {
		return nil, err
	}
	n := int(r.U16())
	out := make([]ts.TableID, 0, min(n, 1024))
	for i := 0; i < n; i++ {
		out = append(out, ts.TableID(r.U32()))
	}
	return out, r.Err()
}

// Begin starts a remote transaction, pinning one connection until
// Commit/Abort. transSI selects transaction-level snapshot isolation.
func (c *Client) Begin(transSI bool) (*Tx, error) {
	cn, err := c.get()
	if err != nil {
		return nil, err
	}
	if _, err := cn.roundTripB(wire.OpBegin, wire.GetBuilder().Bool(transSI)); err != nil {
		c.put(cn)
		// A broken BEGIN started nothing: safe to retry as a fresh txn.
		if isTransportErr(err) {
			err = fmt.Errorf("%w: %v", core.ErrTxnBroken, err)
		}
		return nil, err
	}
	return &Tx{c: c, cn: cn}, nil
}

// BeginShard starts a remote transaction pinned to one shard — the
// single-shard fast path on a sharded server, bypassing the cross-shard
// router. Operations referencing records on other shards fail.
func (c *Client) BeginShard(shard int, transSI bool) (*Tx, error) {
	cn, err := c.get()
	if err != nil {
		return nil, err
	}
	if _, err := cn.roundTripB(wire.OpBeginShard, wire.GetBuilder().U32(uint32(shard)).Bool(transSI)); err != nil {
		c.put(cn)
		if isTransportErr(err) {
			err = fmt.Errorf("%w: %v", core.ErrTxnBroken, err)
		}
		return nil, err
	}
	return &Tx{c: c, cn: cn}, nil
}

// SetPlacement installs a table's shard-placement policy on the server; it
// must run before the table receives rows. A single-node server accepts and
// ignores it.
func (c *Client) SetPlacement(tid ts.TableID, p engine.Placement) error {
	_, err := c.doB(wire.OpSetPlacement, wire.GetBuilder().
		U32(uint32(tid)).U8(uint8(p.Kind)).U64(p.Size).U32(uint32(p.Shard)))
	return err
}

// Aggregate ops, mirroring htap.AggOp without importing that package into
// the client.
const (
	AggCount byte = iota
	AggSum
	AggMin
	AggMax
)

// EnableHTAP arms the background row→column migrator for a SQL table on
// every shard of the server; analytical aggregates over the table are then
// served from dictionary-encoded column chunks once the migrator catches
// up. The server must have been started with an HTAP manager attached.
func (c *Client) EnableHTAP(table string) error {
	_, err := c.doB(wire.OpHTAPEnable, wire.GetBuilder().Str(table))
	return err
}

// Aggregate runs COUNT/SUM/MIN/MAX (optionally GROUP BY groupBy) over a SQL
// table — the OLAP verb. col is ignored for AggCount; groupBy may be empty
// for a scalar result. The server serves the query from the column lane
// when one is enabled and from MVCC row reads otherwise, so the call is
// valid either way (idempotent: retried once across a broken connection).
func (c *Client) Aggregate(table string, op byte, col, groupBy string) (*Result, error) {
	w := wire.GetBuilder().Str(table).U8(op).Str(col).Str(groupBy)
	r, err := c.doIdempotent(wire.OpAggregate, w.Take())
	wire.PutBuilder(w)
	if err != nil {
		return nil, err
	}
	res := &Result{Columns: wire.GetStrings(r)}
	res.Rows = wire.GetRows(r)
	return res, r.Err()
}

// Query opens a remote SQL cursor, pinning one connection until Close. The
// server-side cursor holds a snapshot scoped to the query's table — the
// canonical remote long-lived garbage collection blocker.
func (c *Client) Query(sqlText string) (*Cursor, error) {
	return c.QueryAt(sqlText, 0)
}

// QueryAt is Query carrying a min-LSN consistency token (see ExecAt): the
// cursor's snapshot is taken only once the server has applied up to minLSN.
func (c *Client) QueryAt(sqlText string, minLSN uint64) (*Cursor, error) {
	cn, err := c.get()
	if err != nil {
		return nil, err
	}
	w := wire.GetBuilder().Str(sqlText)
	if minLSN > 0 {
		w.U64(minLSN)
	}
	r, err := cn.roundTripB(wire.OpQOpen, w)
	if err != nil {
		c.put(cn)
		// A broken open pinned nothing: safe to retry as a fresh cursor.
		if isTransportErr(err) {
			err = fmt.Errorf("%w: %v", core.ErrTxnBroken, err)
		}
		return nil, err
	}
	cu := &Cursor{c: c, cn: cn, id: r.U32(), snapTS: ts.CID(r.U64()), cols: wire.GetStrings(r)}
	if err := r.Err(); err != nil {
		c.put(cn)
		return nil, err
	}
	return cu, nil
}

// Tx is a remote transaction bound to one pooled connection. Its record
// operations mirror core.Tx, so code written against that shape (the TPC-C
// driver) runs remotely unchanged.
//
// Failure classification: a transport failure on any operation before
// COMMIT surfaces core.ErrTxnBroken — transient, because the server aborts
// the session's transaction the moment its connection dies, so nothing of
// the attempt survives and core.Retry can safely re-run the whole
// transaction from scratch. A transport failure while COMMIT itself is in
// flight surfaces core.ErrCommitAmbiguous — NOT transient, because the
// commit may have become durable before the connection died, and a blind
// re-run could apply the transaction twice.
type Tx struct {
	c         *Client
	cn        *Conn
	done      bool
	commitLSN uint64
}

func (tx *Tx) round(op byte, body []byte) (*wire.Parser, error) {
	if tx.done {
		return nil, fmt.Errorf("client: transaction finished")
	}
	r, err := tx.cn.roundTrip(op, body)
	if isTransportErr(err) {
		// The connection (and with it the server-side transaction) is gone:
		// finish the Tx now so the poisoned conn returns to the pool for
		// discarding instead of waiting for a deferred Abort.
		tx.done = true
		tx.c.put(tx.cn)
		return nil, fmt.Errorf("%w: %v", core.ErrTxnBroken, err)
	}
	return r, err
}

// roundB is round with a pooled request builder, released after the write.
func (tx *Tx) roundB(op byte, b *wire.Builder) (*wire.Parser, error) {
	r, err := tx.round(op, b.Take())
	wire.PutBuilder(b)
	return r, err
}

// Exec runs one SQL statement inside the transaction.
func (tx *Tx) Exec(sqlText string) (*Result, error) {
	r, err := tx.roundB(wire.OpExec, wire.GetBuilder().Str(sqlText))
	if err != nil {
		return nil, err
	}
	return decodeResult(r)
}

// Get reads one record image.
func (tx *Tx) Get(tid ts.TableID, rid ts.RID) ([]byte, error) {
	r, err := tx.roundB(wire.OpGet, wire.GetBuilder().U32(uint32(tid)).U64(uint64(rid)))
	if err != nil {
		return nil, err
	}
	img := r.Bytes()
	return img, r.Err()
}

// Insert creates a record and returns its RID.
func (tx *Tx) Insert(tid ts.TableID, img []byte) (ts.RID, error) {
	r, err := tx.roundB(wire.OpInsert, wire.GetBuilder().U32(uint32(tid)).Bytes(img))
	if err != nil {
		return 0, err
	}
	rid := ts.RID(r.U64())
	return rid, r.Err()
}

// InsertAt is Insert with a shard-placement hint — the sharded server places
// the record on hint's shard; a single-node server ignores the hint.
func (tx *Tx) InsertAt(tid ts.TableID, img []byte, hint int) (ts.RID, error) {
	r, err := tx.roundB(wire.OpInsertAt, wire.GetBuilder().U32(uint32(tid)).U32(uint32(hint)).Bytes(img))
	if err != nil {
		return 0, err
	}
	rid := ts.RID(r.U64())
	return rid, r.Err()
}

// Update installs a new image.
func (tx *Tx) Update(tid ts.TableID, rid ts.RID, img []byte) error {
	_, err := tx.roundB(wire.OpUpdate, wire.GetBuilder().U32(uint32(tid)).U64(uint64(rid)).Bytes(img))
	return err
}

// Delete removes a record.
func (tx *Tx) Delete(tid ts.TableID, rid ts.RID) error {
	_, err := tx.roundB(wire.OpDelete, wire.GetBuilder().U32(uint32(tid)).U64(uint64(rid)))
	return err
}

// Scan visits every visible record of the table in RID order. The whole
// result crosses the wire in one response.
func (tx *Tx) Scan(tid ts.TableID, fn func(rid ts.RID, img []byte) bool) error {
	r, err := tx.roundB(wire.OpScan, wire.GetBuilder().U32(uint32(tid)))
	if err != nil {
		return err
	}
	n := int(r.U32())
	for i := 0; i < n; i++ {
		rid := ts.RID(r.U64())
		img := r.Bytes()
		if err := r.Err(); err != nil {
			return err
		}
		if !fn(rid, img) {
			break
		}
	}
	return r.Err()
}

// Commit finishes the transaction and returns the connection to the pool. A
// transport failure here is the one genuinely ambiguous outcome in the
// protocol — the commit may or may not have landed — and surfaces as the
// non-transient core.ErrCommitAmbiguous; callers must reconcile before
// retrying.
func (tx *Tx) Commit() error {
	if tx.done {
		return fmt.Errorf("client: transaction finished")
	}
	r, err := tx.cn.roundTrip(wire.OpCommit, nil)
	tx.done = true
	tx.c.put(tx.cn)
	if isTransportErr(err) {
		return fmt.Errorf("%w: %v", core.ErrCommitAmbiguous, err)
	}
	// Trailing consistency token; absent from pre-token servers.
	if err == nil && r.Rest() >= 8 {
		tx.commitLSN = r.U64()
	}
	return err
}

// CommitLSN returns the session consistency token from a successful Commit:
// the WAL stream head covering the commit group the transaction rode in. A
// read gated on this LSN observes the transaction's writes. Zero before
// Commit, after a failed Commit, and from token-less servers.
func (tx *Tx) CommitLSN() uint64 { return tx.commitLSN }

// Abort rolls the transaction back and returns the connection to the pool.
// Safe to call after Commit (no-op), so `defer tx.Abort()` works.
func (tx *Tx) Abort() {
	if tx.done {
		return
	}
	_, _ = tx.cn.roundTrip(wire.OpRollback, nil)
	tx.done = true
	tx.c.put(tx.cn)
}

// Cursor is a remote SQL query cursor bound to one pooled connection.
type Cursor struct {
	c         *Client
	cn        *Conn
	id        uint32
	snapTS    ts.CID
	cols      []string
	exhausted bool
	closed    bool
}

// Columns returns the output column names.
func (cu *Cursor) Columns() []string { return cu.cols }

// SnapshotTS returns the server-side cursor's pinned snapshot timestamp.
func (cu *Cursor) SnapshotTS() ts.CID { return cu.snapTS }

// Exhausted reports whether the server-side scan has passed the last row.
func (cu *Cursor) Exhausted() bool { return cu.exhausted || cu.closed }

// Fetch returns up to n rows and the server-side fetch statistics. A
// transport failure surfaces core.ErrTxnBroken (transient): the server-side
// cursor and its pinned snapshot died with the connection, so re-running the
// query from scratch is safe — nothing of the old scan survives.
func (cu *Cursor) Fetch(n int) ([][]wire.Datum, core.FetchStats, error) {
	if cu.closed {
		return nil, core.FetchStats{}, core.ErrCursorClosed
	}
	r, err := cu.cn.roundTripB(wire.OpQFetch, wire.GetBuilder().U32(cu.id).U32(uint32(n)))
	if err != nil {
		if isTransportErr(err) {
			cu.closed = true
			cu.c.put(cu.cn)
			err = fmt.Errorf("%w: %v", core.ErrTxnBroken, err)
		}
		return nil, core.FetchStats{}, err
	}
	cu.exhausted = r.Bool()
	st := core.FetchStats{Traversed: r.I64(), Duration: time.Duration(r.U64())}
	rows := wire.GetRows(r)
	st.Rows = len(rows)
	return rows, st, r.Err()
}

// Close releases the server-side cursor (and its pinned snapshot) and
// returns the connection to the pool. Idempotent. On a broken connection the
// round trip is skipped — the server released the cursor when the connection
// died.
func (cu *Cursor) Close() error {
	if cu.closed {
		return nil
	}
	cu.closed = true
	var err error
	if !cu.cn.broken {
		_, err = cu.cn.roundTripB(wire.OpQClose, wire.GetBuilder().U32(cu.id))
	}
	cu.c.put(cu.cn)
	return err
}

// Conn is one handshaked protocol connection. Calls on a Conn are not
// concurrency-safe; the pool hands each Conn to one owner at a time.
type Conn struct {
	nc      net.Conn
	br      *bufio.Reader
	timeout time.Duration
	broken  bool
}

// roundTrip writes one request frame and reads its response. Transport
// failures poison the connection; StErr responses decode into *wire.Error
// so sentinel matching (and core.IsTransient) works on the caller's side.
func (cn *Conn) roundTrip(op byte, body []byte) (*wire.Parser, error) {
	if cn.broken {
		return nil, fmt.Errorf("client: connection is broken")
	}
	deadline := time.Now().Add(cn.timeout)
	_ = cn.nc.SetWriteDeadline(deadline)
	if _, err := wire.WriteFrame(cn.nc, op, body); err != nil {
		cn.broken = true
		return nil, err
	}
	_ = cn.nc.SetReadDeadline(deadline)
	status, resp, err := wire.ReadFrame(cn.br)
	if err != nil {
		cn.broken = true
		return nil, err
	}
	if status == wire.StErr {
		r := wire.NewParser(resp)
		code, msg := r.U16(), r.Str()
		if err := r.Err(); err != nil {
			cn.broken = true
			return nil, err
		}
		return nil, &wire.Error{Code: code, Msg: msg}
	}
	return wire.NewParser(resp), nil
}

// roundTripB is roundTrip with a pooled request builder, released after the
// write (WriteFrame copies the body out before sending).
func (cn *Conn) roundTripB(op byte, b *wire.Builder) (*wire.Parser, error) {
	r, err := cn.roundTrip(op, b.Take())
	wire.PutBuilder(b)
	return r, err
}

// IsTransient reports whether err is worth retrying — the engine's transient
// set, which wire errors unwrap into.
func IsTransient(err error) bool { return core.IsTransient(err) }
