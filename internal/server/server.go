// Package server is the network service layer over the engine: a stdlib-only
// TCP server speaking the length-prefixed binary protocol of internal/wire.
// Each connection is one session — an explicit-transaction scope, a set of
// open query cursors, and (after HELLO) an authenticated peer. Requests are
// processed strictly in order per connection, which gives clients free
// pipelining; independent connections run fully in parallel.
//
// The server's job in the paper's terms is to make the mixed OLTP/OLAP
// scenario real: remote sessions open long-lived cursors whose snapshots pin
// the global minimum, so connection lifecycle — idle deadlines, abrupt
// disconnects, graceful drain — is exactly the machinery that decides when
// garbage collection may advance. Any path that ends a connection releases
// its cursors and aborts its transaction before the connection goroutine
// exits.
package server

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"hybridgc/internal/core"
	"hybridgc/internal/engine"
	"hybridgc/internal/metrics"
	"hybridgc/internal/sql"
	"hybridgc/internal/wal"
	"hybridgc/internal/wire"
)

// ReplHandler serves a hijacked replication stream. An OpReplStream request
// takes its connection out of the request/response loop: the handler owns
// the socket (and the connection's buffered reader/writer, which may hold
// pipelined bytes) until it returns, after which the connection is closed.
// draining reports server shutdown; the handler must end the stream promptly
// once it turns true. The interface keeps the dependency one-way: the
// replication source implements it, the server never imports it.
type ReplHandler interface {
	ServeStream(nc net.Conn, br *bufio.Reader, bw *bufio.Writer, req wire.ReplStreamRequest, draining func() bool) error
}

// Config tunes a Server.
type Config struct {
	// Addr is the TCP listen address (ListenAndServe only).
	Addr string
	// Token, when non-empty, must be presented in HELLO.
	Token string
	// MaxConns bounds concurrent connections (<=0 selects 256). Connections
	// beyond the limit receive a TooManyConns error frame and are closed.
	MaxConns int
	// IdleTimeout is the per-connection read deadline between requests — the
	// reap interval for dead peers: a connection that sends nothing for this
	// long is closed and its cursors and transaction are released (<=0
	// selects 2 minutes).
	IdleTimeout time.Duration
	// WriteTimeout bounds writing one response (<=0 selects 30s).
	WriteTimeout time.Duration
	// LatencyReservoir sizes the request-latency histogram's bounded
	// reservoir (<=0 selects metrics.DefaultHistogramCap).
	LatencyReservoir int

	// Repl, when set, accepts OpReplStream requests (a primary serving
	// replicas). Nil servers reject the opcode.
	Repl ReplHandler
	// StatsHook, when set, runs over every assembled STATS payload —
	// replication components use it to splice in their counters.
	StatsHook func(*wire.Stats)
	// ReadGate, when set, admits reads against the session consistency
	// token: a replica wires it to its applier so a HELLO/EXEC/QOPEN
	// carrying a min-LSN token either waits until the applier reaches that
	// LSN (waited=true, nil error) or bounces with core.ErrReplicaBehind
	// once the wait deadline passes. Nil on primaries, where every token is
	// trivially satisfied.
	ReadGate func(minLSN uint64) (waited bool, err error)

	// testHookRequest, when set by tests, runs after a request frame is
	// decoded and before it is executed — the seam drain tests use to hold a
	// request in flight deterministically. Immutable after New.
	testHookRequest func(op byte)
}

func (c *Config) fill() {
	if c.MaxConns <= 0 {
		c.MaxConns = 256
	}
	if c.IdleTimeout <= 0 {
		c.IdleTimeout = 2 * time.Minute
	}
	if c.WriteTimeout <= 0 {
		c.WriteTimeout = 30 * time.Second
	}
}

// Server serves one engine over TCP.
type Server struct {
	cfg Config
	eng engine.Engine
	cat *sql.Catalog

	// tokenLog, when non-nil, is the WAL whose NextLSN serves as the
	// session consistency token in COMMIT/EXEC responses. Resolved once at
	// construction: single-shard persistent engines only (replication — and
	// therefore token-gated replica reads — is single-node).
	tokenLog *wal.Log

	mu       sync.Mutex
	ln       net.Listener
	conns    map[*conn]struct{}
	draining bool
	wg       sync.WaitGroup

	// Service-level metrics, exposed through the STATS verb.
	lat           *metrics.Histogram
	requests      metrics.Counter
	requestErrors metrics.Counter
	bytesIn       metrics.Counter
	bytesOut      metrics.Counter
	connsTotal    metrics.Counter
	connsActive   atomic.Int64
	cursorsOpen   atomic.Int64
	cursorsReaped metrics.Counter
	gateWaits     metrics.Counter
	gateBounces   metrics.Counter
}

// New builds a server over a single-node database — the compatibility form
// of NewEngine.
func New(db *core.DB, cfg Config) (*Server, error) {
	return NewEngine(engine.NewSingle(db), cfg)
}

// NewEngine builds a server over an engine (single-node or sharded). The SQL
// catalog is created (or re-attached, after recovery) on the same engine, so
// SQL and record-level verbs see one store.
func NewEngine(eng engine.Engine, cfg Config) (*Server, error) {
	cfg.fill()
	cat, err := sql.NewCatalogEngine(eng)
	if err != nil {
		return nil, fmt.Errorf("server: catalog: %w", err)
	}
	s := &Server{
		cfg:   cfg,
		eng:   eng,
		cat:   cat,
		conns: make(map[*conn]struct{}),
		lat:   metrics.NewHistogram(cfg.LatencyReservoir),
	}
	if eng.Shards() == 1 {
		s.tokenLog = eng.Shard(0).WAL()
	}
	return s, nil
}

// tokenLSN returns the session consistency token to stamp on a response:
// the WAL stream head right now, which is ≥ the LSN of anything the session
// has committed. Zero when the engine has no single token stream (memory-only
// or sharded), which clients treat as "no token".
func (s *Server) tokenLSN() uint64 {
	if s.tokenLog == nil {
		return 0
	}
	return uint64(s.tokenLog.NextLSN())
}

// Catalog exposes the server's SQL catalog (in-process callers and tests).
func (s *Server) Catalog() *sql.Catalog { return s.cat }

// ListenAndServe listens on cfg.Addr and serves until Shutdown.
func (s *Server) ListenAndServe() error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Serve accepts connections on ln until the listener is closed by Shutdown.
// It returns nil after a graceful drain.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		ln.Close()
		return wire.ErrDraining
	}
	s.ln = ln
	s.mu.Unlock()

	for {
		nc, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			draining := s.draining
			s.mu.Unlock()
			if draining {
				return nil
			}
			return err
		}
		if int(s.connsActive.Load()) >= s.cfg.MaxConns {
			// Over the limit: answer with an error frame so the client gets a
			// diagnosable failure instead of a silent hangup.
			body := (&wire.Builder{}).U16(wire.ECodeTooManyConns).Str("server: connection limit reached").Take()
			_, _ = wire.WriteFrame(nc, wire.StErr, body)
			nc.Close()
			continue
		}
		c := newConn(s, nc)
		s.mu.Lock()
		if s.draining {
			s.mu.Unlock()
			body := (&wire.Builder{}).U16(wire.ECodeDraining).Str("server: draining").Take()
			_, _ = wire.WriteFrame(nc, wire.StErr, body)
			nc.Close()
			continue
		}
		s.conns[c] = struct{}{}
		s.mu.Unlock()
		s.connsActive.Add(1)
		s.connsTotal.Inc()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			c.serve()
			s.mu.Lock()
			delete(s.conns, c)
			s.mu.Unlock()
			s.connsActive.Add(-1)
		}()
	}
}

// Addr returns the bound listen address (nil before Serve).
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Shutdown drains the server gracefully: the listener stops accepting, every
// connection finishes the request it is currently executing (its response is
// written), and then each connection is closed — cursors released,
// transactions aborted — so pinned snapshots stop blocking garbage
// collection. Connections parked between requests are unblocked immediately
// via an expired read deadline. Shutdown waits up to timeout for the
// connection goroutines to exit, then force-closes stragglers.
func (s *Server) Shutdown(timeout time.Duration) {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.draining = true
	ln := s.ln
	conns := make([]*conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()

	if ln != nil {
		ln.Close()
	}
	for _, c := range conns {
		c.beginDrain()
	}

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(timeout):
		s.mu.Lock()
		for c := range s.conns {
			c.nc.Close()
		}
		s.mu.Unlock()
		<-done
	}
}

// Draining reports whether Shutdown has started.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Stats assembles the STATS payload: engine indicators plus the service
// layer's own counters and latency percentiles.
func (s *Server) Stats() wire.Stats {
	st := s.eng.Stats()
	out := wire.Stats{
		Statements:        st.Statements,
		VersionsLive:      st.VersionsLive,
		VersionsLiveBytes: st.VersionsLiveBytes,
		VersionsCreated:   st.VersionsCreated,
		VersionsReclaimed: st.VersionsReclaimed,
		VersionsMigrated:  st.VersionsMigrated,
		ActiveSnapshots:   int64(st.ActiveSnapshots),
		CurrentCID:        st.CurrentCID,
		GlobalHorizon:     st.GlobalHorizon,
		ActiveCIDRange:    st.ActiveCIDRange,
		TxnsCommitted:     st.Txn.TxnsCommitted,
		GroupsCommitted:   st.Txn.GroupsCommitted,
		FailStop:          st.FailStop,

		Conns:         s.connsActive.Load(),
		ConnsTotal:    s.connsTotal.Value(),
		Requests:      s.requests.Value(),
		RequestErrors: s.requestErrors.Value(),
		BytesIn:       s.bytesIn.Value(),
		BytesOut:      s.bytesOut.Value(),
		CursorsOpen:     s.cursorsOpen.Load(),
		CursorsReaped:   s.cursorsReaped.Value(),
		ReadGateWaits:   s.gateWaits.Value(),
		ReadGateBounces: s.gateBounces.Value(),
		LatMean:       s.lat.Mean(),
		LatP50:        s.lat.Percentile(50),
		LatP95:        s.lat.Percentile(95),
		LatP99:        s.lat.Percentile(99),
	}
	if p := st.Pressure; p.Enabled {
		out.PressureEnabled = true
		out.PressureLevel = p.Level.String()
		out.PressureLive = p.Live
		out.PressureSoft = p.Soft
		out.PressureHard = p.Hard
		out.PressureSoftTrips = p.SoftTrips
		out.PressureEmergencies = p.Emergencies
		out.PressureBackpressured = p.Backpressured
		out.PressureRejected = p.Rejected
		out.PressureEvicted = p.Evicted
	}
	if n := s.eng.Shards(); n > 1 {
		out.Shards = make([]wire.ShardStat, 0, n)
		for i := 0; i < n; i++ {
			sh := s.eng.Shard(i).Stats()
			out.Shards = append(out.Shards, wire.ShardStat{
				VersionsLive:      sh.VersionsLive,
				VersionsReclaimed: sh.VersionsReclaimed,
				ActiveSnapshots:   int64(sh.ActiveSnapshots),
				TxnsCommitted:     sh.Txn.TxnsCommitted,
				CurrentCID:        sh.CurrentCID,
				GlobalHorizon:     sh.GlobalHorizon,
				FailStop:          sh.FailStop,
			})
		}
	}
	if m := s.cat.HTAP(); m != nil {
		for _, ls := range m.Stats() {
			out.HTAP = append(out.HTAP, wire.HTAPStat{
				Name:         ls.Name,
				Table:        uint32(ls.Table),
				Chunks:       int64(ls.Chunks),
				ChunkRows:    ls.ChunkRows,
				DeltaRows:    ls.DeltaRows,
				DirtyRows:    ls.DirtyRows,
				MigratedRows: ls.MigratedRows,
				Watermark:    uint64(ls.Watermark),
				Lag:          uint64(ls.Lag),
				Passes:       ls.Passes,
			})
		}
	}
	if hook := s.cfg.StatsHook; hook != nil {
		hook(&out)
	}
	return out
}

// isClosedErr reports the errors a closing connection produces in normal
// operation, which are not worth logging.
func isClosedErr(err error) bool {
	return errors.Is(err, net.ErrClosed)
}
