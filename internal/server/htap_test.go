package server

import (
	"fmt"
	"testing"
	"time"

	"hybridgc/internal/client"
	"hybridgc/internal/htap"
	"hybridgc/internal/wire"
)

// TestHTAPVerbsLoopback drives the OLAP lane end to end over the wire:
// enable via OpHTAPEnable, migrate, aggregate via OpAggregate, and read the
// STATS HTAP trailer.
func TestHTAPVerbsLoopback(t *testing.T) {
	srv, db, addr := newTestServer(t, Config{})
	m, err := htap.NewManager(srv.cat.Engine(), htap.Config{ChunkSlots: 8})
	if err != nil {
		t.Fatal(err)
	}
	srv.Catalog().AttachHTAP(m)

	cl, err := client.Dial(client.Config{Addr: addr})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	if err := cl.EnableHTAP("sales"); err == nil {
		t.Fatalf("EnableHTAP before CREATE TABLE should fail")
	}
	if _, err := cl.Exec("CREATE TABLE sales (amount INT, region TEXT)"); err != nil {
		t.Fatal(err)
	}
	if err := cl.EnableHTAP("sales"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		region := "east"
		if i%3 == 0 {
			region = "west"
		}
		if _, err := cl.Exec(fmt.Sprintf("INSERT INTO sales VALUES (%d, '%s')", i, region)); err != nil {
			t.Fatal(err)
		}
	}

	// Aggregates are correct before migration (row path)...
	res, err := cl.Aggregate("sales", client.AggSum, "amount", "")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].I != 435 {
		t.Fatalf("row-path sum: %+v", res.Rows)
	}

	// ...and after, served from chunks.
	deadline := time.Now().Add(5 * time.Second)
	for m.Stats()[0].DeltaRows > 0 {
		db.GC().Collect()
		m.Migrate()
		if time.Now().After(deadline) {
			t.Fatalf("lane never settled: %+v", m.Stats())
		}
	}
	res, err = cl.Aggregate("sales", client.AggSum, "amount", "")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].I != 435 {
		t.Fatalf("lane sum: %+v", res.Rows)
	}
	res, err = cl.Aggregate("sales", client.AggCount, "", "region")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 || res.Rows[0][0].S != "east" || res.Rows[0][1].I != 20 ||
		res.Rows[1][0].S != "west" || res.Rows[1][1].I != 10 {
		t.Fatalf("grouped count: %+v", res.Rows)
	}

	st, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if len(st.HTAP) != 1 {
		t.Fatalf("stats HTAP trailer: %+v", st.HTAP)
	}
	h := st.HTAP[0]
	if h.Name != "sales" || h.ChunkRows != 30 || h.DeltaRows != 0 || h.MigratedRows < 30 {
		t.Fatalf("htap stat: %+v", h)
	}

	// A bad op byte is rejected cleanly.
	if _, err := cl.Aggregate("sales", 99, "", ""); err == nil {
		t.Fatalf("bad aggregate op should fail")
	}
}

// TestStatsHTAPTrailerRoundTrip pins the trailer codec, including decoding
// a frame without the trailer (an older peer).
func TestStatsHTAPTrailerRoundTrip(t *testing.T) {
	in := wire.Stats{
		Statements: 7,
		HTAP: []wire.HTAPStat{{
			Name: "t", Table: 3, Chunks: 2, ChunkRows: 9, DeltaRows: 1,
			DirtyRows: 4, MigratedRows: 12, Watermark: 100, Lag: 5, Passes: 6,
		}},
	}
	var w wire.Builder
	in.Encode(&w)
	out := wire.DecodeStats(wire.NewParser(w.Take()))
	if len(out.HTAP) != 1 || out.HTAP[0] != in.HTAP[0] {
		t.Fatalf("round trip: %+v", out.HTAP)
	}

	// Truncate the trailer off: decodes cleanly with no HTAP entries.
	old := wire.Stats{Statements: 7}
	var w2 wire.Builder
	old.Encode(&w2)
	body := w2.Take()
	trimmed := wire.DecodeStats(wire.NewParser(body[:len(body)-2]))
	if trimmed.Statements != 7 || trimmed.HTAP != nil {
		t.Fatalf("old-peer decode: %+v", trimmed)
	}
}
