package server

import (
	"bufio"
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"hybridgc/internal/client"
	"hybridgc/internal/core"
	"hybridgc/internal/tpcc"
	"hybridgc/internal/ts"
	"hybridgc/internal/wire"
)

// newTestServer starts a server on loopback and returns it with its engine
// and bound address.
func newTestServer(t *testing.T, cfg Config) (*Server, *core.DB, string) {
	t.Helper()
	db, err := core.Open(core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(db, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() {
		srv.Shutdown(5 * time.Second)
		db.Close()
	})
	return srv, db, ln.Addr().String()
}

// rawConn speaks the protocol directly, for frame-level tests.
type rawConn struct {
	nc net.Conn
	br *bufio.Reader
}

func dialRaw(t *testing.T, addr string) *rawConn {
	t.Helper()
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { nc.Close() })
	return &rawConn{nc: nc, br: bufio.NewReader(nc)}
}

func (rc *rawConn) send(t *testing.T, op byte, body []byte) {
	t.Helper()
	if _, err := wire.WriteFrame(rc.nc, op, body); err != nil {
		t.Fatal(err)
	}
}

func (rc *rawConn) recv(t *testing.T) (byte, *wire.Parser) {
	t.Helper()
	status, body, err := wire.ReadFrame(rc.br)
	if err != nil {
		t.Fatal(err)
	}
	return status, wire.NewParser(body)
}

func helloBody(token string) []byte {
	return (&wire.Builder{}).Raw([]byte(wire.Magic)).U8(wire.Version).Str(token).Take()
}

func (rc *rawConn) hello(t *testing.T, token string) {
	t.Helper()
	rc.send(t, wire.OpHello, helloBody(token))
	status, _ := rc.recv(t)
	if status != wire.StOK {
		t.Fatalf("handshake refused, status %d", status)
	}
}

func TestAuth(t *testing.T) {
	srv, _, addr := newTestServer(t, Config{Token: "secret"})
	_ = srv

	// Wrong token: one error frame with the auth code, then hangup.
	rc := dialRaw(t, addr)
	rc.send(t, wire.OpHello, helloBody("wrong"))
	status, r := rc.recv(t)
	if status != wire.StErr {
		t.Fatalf("bad token accepted, status %d", status)
	}
	if code := r.U16(); code != wire.ECodeAuth {
		t.Fatalf("error code %d, want ECodeAuth", code)
	}
	rc.nc.SetReadDeadline(time.Now().Add(time.Second))
	if _, _, err := wire.ReadFrame(rc.br); err == nil {
		t.Fatal("connection stayed open after failed handshake")
	}

	// A request before HELLO is refused.
	rc2 := dialRaw(t, addr)
	rc2.send(t, wire.OpPing, nil)
	if status, _ := rc2.recv(t); status != wire.StErr {
		t.Fatal("unauthenticated PING accepted")
	}

	// The client surfaces a wrong token at Dial.
	if _, err := client.Dial(client.Config{Addr: addr, Token: "wrong"}); !errors.Is(err, wire.ErrAuth) {
		t.Fatalf("client dial error = %v, want ErrAuth", err)
	}
	cl, err := client.Dial(client.Config{Addr: addr, Token: "secret"})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.Ping(); err != nil {
		t.Fatal(err)
	}
}

func TestExecAndQuery(t *testing.T) {
	srv, _, addr := newTestServer(t, Config{})
	cl, err := client.Dial(client.Config{Addr: addr})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	if _, err := cl.Exec("CREATE TABLE t (id INT, name TEXT)"); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 7; i++ {
		if _, err := cl.Exec("INSERT INTO t VALUES (1, 'x')"); err != nil {
			t.Fatal(err)
		}
	}
	res, err := cl.Exec("SELECT COUNT(*) FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].I != 7 {
		t.Fatalf("COUNT rows = %+v", res.Rows)
	}

	cu, err := cl.Query("SELECT id, name FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if got := cu.Columns(); len(got) != 2 || got[0] != "id" {
		t.Fatalf("columns = %v", got)
	}
	if cu.SnapshotTS() == 0 {
		t.Fatal("cursor reports no snapshot")
	}
	var rows int
	for !cu.Exhausted() {
		chunk, _, err := cu.Fetch(3)
		if err != nil {
			t.Fatal(err)
		}
		rows += len(chunk)
		if len(chunk) > 3 {
			t.Fatalf("chunk of %d rows, asked for 3", len(chunk))
		}
	}
	if rows != 7 {
		t.Fatalf("cursor streamed %d rows, want 7", rows)
	}
	if err := cu.Close(); err != nil {
		t.Fatal(err)
	}
	if srv.cursorsOpen.Load() != 0 {
		t.Fatalf("cursorsOpen = %d after close", srv.cursorsOpen.Load())
	}
}

func TestExplicitTransactionVerbs(t *testing.T) {
	_, _, addr := newTestServer(t, Config{})
	cl, err := client.Dial(client.Config{Addr: addr})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	tid, err := cl.CreateTable("KV")
	if err != nil {
		t.Fatal(err)
	}
	tx, err := cl.Begin(false)
	if err != nil {
		t.Fatal(err)
	}
	rid, err := tx.Insert(tid, []byte("v1"))
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Update(tid, rid, []byte("v2")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	// Rolled-back work is invisible.
	tx2, err := cl.Begin(false)
	if err != nil {
		t.Fatal(err)
	}
	if err := tx2.Update(tid, rid, []byte("doomed")); err != nil {
		t.Fatal(err)
	}
	tx2.Abort()

	tx3, err := cl.Begin(true)
	if err != nil {
		t.Fatal(err)
	}
	defer tx3.Abort()
	img, err := tx3.Get(tid, rid)
	if err != nil {
		t.Fatal(err)
	}
	if string(img) != "v2" {
		t.Fatalf("img = %q, want v2", img)
	}
	var seen int
	if err := tx3.Scan(tid, func(_ ts.RID, _ []byte) bool { seen++; return true }); err != nil {
		t.Fatal(err)
	}
	if seen != 1 {
		t.Fatalf("scan saw %d records, want 1", seen)
	}
}

func TestPipelining(t *testing.T) {
	srv, _, addr := newTestServer(t, Config{})
	_ = srv
	rc := dialRaw(t, addr)
	rc.hello(t, "")

	// Write a burst of requests without reading; responses must come back
	// in order: 8 PINGs then one STATS.
	var buf []byte
	for i := 0; i < 8; i++ {
		buf = appendFrame(buf, wire.OpPing, nil)
	}
	buf = appendFrame(buf, wire.OpStats, nil)
	if _, err := rc.nc.Write(buf); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		status, _ := rc.recv(t)
		if status != wire.StOK {
			t.Fatalf("pipelined ping %d: status %d", i, status)
		}
	}
	status, r := rc.recv(t)
	if status != wire.StOK {
		t.Fatalf("pipelined stats: status %d", status)
	}
	st := wire.DecodeStats(r)
	if st.Requests < 9 {
		t.Fatalf("stats saw %d requests, want >= 9", st.Requests)
	}
}

func appendFrame(buf []byte, op byte, body []byte) []byte {
	w := &wire.Builder{}
	w.U32(uint32(len(body) + 1)).U8(op).Raw(body)
	return append(buf, w.Take()...)
}

func TestConnLimit(t *testing.T) {
	srv, _, addr := newTestServer(t, Config{MaxConns: 1})

	rc := dialRaw(t, addr)
	rc.hello(t, "")

	// The second connection gets a diagnosable error frame, not a hangup.
	rc2 := dialRaw(t, addr)
	rc2.nc.SetReadDeadline(time.Now().Add(2 * time.Second))
	status, body, err := wire.ReadFrame(rc2.br)
	if err != nil {
		t.Fatalf("over-limit conn: %v", err)
	}
	if status != wire.StErr {
		t.Fatalf("over-limit conn status %d", status)
	}
	if code := wire.NewParser(body).U16(); code != wire.ECodeTooManyConns {
		t.Fatalf("error code %d, want ECodeTooManyConns", code)
	}

	// Closing the first frees the slot.
	rc.nc.Close()
	deadline := time.Now().Add(2 * time.Second)
	for srv.connsActive.Load() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("slot never freed")
		}
		time.Sleep(time.Millisecond)
	}
	rc3 := dialRaw(t, addr)
	rc3.hello(t, "")
}

// TestAbruptDisconnectReleasesCursor is the GC-correctness property of the
// service layer: a client that opens a query cursor, fetches a chunk, and
// vanishes without QCLOSE must not pin the snapshot horizon — the server
// releases the cursor when the TCP connection dies, and the transaction
// monitor's oldest-active-snapshot clears.
func TestAbruptDisconnectReleasesCursor(t *testing.T) {
	srv, db, addr := newTestServer(t, Config{})

	cl, err := client.Dial(client.Config{Addr: addr})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, err := cl.Exec("CREATE TABLE t (id INT)"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := cl.Exec("INSERT INTO t VALUES (1)"); err != nil {
			t.Fatal(err)
		}
	}

	rc := dialRaw(t, addr)
	rc.hello(t, "")
	rc.send(t, wire.OpQOpen, (&wire.Builder{}).Str("SELECT id FROM t").Take())
	status, r := rc.recv(t)
	if status != wire.StOK {
		t.Fatal("QOPEN failed")
	}
	id := r.U32()
	rc.send(t, wire.OpQFetch, (&wire.Builder{}).U32(id).U32(4).Take())
	if status, _ := rc.recv(t); status != wire.StOK {
		t.Fatal("QFETCH failed")
	}
	if srv.cursorsOpen.Load() != 1 {
		t.Fatalf("cursorsOpen = %d", srv.cursorsOpen.Load())
	}
	if _, ok := db.Manager().Monitor().OldestTS(); !ok {
		t.Fatal("cursor snapshot not registered with the monitor")
	}

	// Abrupt death: TCP close, no QCLOSE verb.
	rc.nc.Close()

	deadline := time.Now().Add(3 * time.Second)
	for {
		_, pinned := db.Manager().Monitor().OldestTS()
		if srv.cursorsOpen.Load() == 0 && !pinned {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("cursor still pinned after disconnect: open=%d pinned=%v",
				srv.cursorsOpen.Load(), pinned)
		}
		time.Sleep(time.Millisecond)
	}
	if srv.cursorsReaped.Value() == 0 {
		t.Fatal("reap counter did not move")
	}
}

// TestGracefulDrain covers Shutdown: the request in flight when drain begins
// completes with its real response, new connections are refused, and every
// session resource (cursors, their pinned snapshots) is released by the time
// Shutdown returns.
func TestGracefulDrain(t *testing.T) {
	// Hold the first PING in flight via the request hook, configured before
	// the server starts so the seam is immutable while connections run.
	inFlight := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	srv, db, addr := newTestServer(t, Config{
		testHookRequest: func(op byte) {
			if op == wire.OpPing {
				once.Do(func() {
					close(inFlight)
					<-release
				})
			}
		},
	})

	cl, err := client.Dial(client.Config{Addr: addr})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, err := cl.Exec("CREATE TABLE t (id INT)"); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Exec("INSERT INTO t VALUES (1)"); err != nil {
		t.Fatal(err)
	}

	// A session holding an open cursor (a pinned snapshot) through the drain.
	rc := dialRaw(t, addr)
	rc.hello(t, "")
	rc.send(t, wire.OpQOpen, (&wire.Builder{}).Str("SELECT id FROM t").Take())
	if status, _ := rc.recv(t); status != wire.StOK {
		t.Fatal("QOPEN failed")
	}

	rc.send(t, wire.OpPing, nil)
	<-inFlight

	done := make(chan struct{})
	go func() {
		srv.Shutdown(10 * time.Second)
		close(done)
	}()
	for !srv.Draining() {
		time.Sleep(time.Millisecond)
	}

	// New connections are refused while draining (listener is closed).
	if nc, err := net.DialTimeout("tcp", addr, time.Second); err == nil {
		nc.SetReadDeadline(time.Now().Add(time.Second))
		if _, _, rerr := wire.ReadFrame(bufio.NewReader(nc)); rerr == nil {
			t.Fatal("server accepted a connection mid-drain")
		}
		nc.Close()
	}

	// The in-flight request completes with a real OK response.
	close(release)
	rc.nc.SetReadDeadline(time.Now().Add(5 * time.Second))
	status, _, err := wire.ReadFrame(rc.br)
	if err != nil {
		t.Fatalf("in-flight response lost: %v", err)
	}
	if status != wire.StOK {
		t.Fatalf("in-flight response status %d", status)
	}

	<-done
	if got := srv.cursorsOpen.Load(); got != 0 {
		t.Fatalf("cursorsOpen = %d after drain", got)
	}
	if _, pinned := db.Manager().Monitor().OldestTS(); pinned {
		t.Fatal("snapshot still pinned after drain")
	}
	// The drained connection is closed.
	rc.nc.SetReadDeadline(time.Now().Add(time.Second))
	if _, _, err := wire.ReadFrame(rc.br); err == nil {
		t.Fatal("connection survived drain")
	}
}

// TestTPCCLoopback is the end-to-end acceptance run: the unchanged TPC-C
// driver loads and runs through internal/client against a loopback server,
// and the consistency checks pass over the same wire path.
func TestTPCCLoopback(t *testing.T) {
	if testing.Short() {
		t.Skip("loopback TPC-C is not a -short test")
	}
	srv, _, addr := newTestServer(t, Config{})
	_ = srv
	cl, err := client.Dial(client.Config{Addr: addr, MaxConns: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	driver, err := tpcc.NewWithBackend(tpcc.RemoteBackend(cl), tpcc.Config{
		Warehouses:           2,
		Districts:            2,
		CustomersPerDistrict: 5,
		Items:                20,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := driver.Load(); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make(chan error, 2)
	for w := 1; w <= 2; w++ {
		wk := driver.NewWorker(w)
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := wk.Run(40, nil); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if err := driver.Check(); err != nil {
		t.Fatalf("consistency check over the wire: %v", err)
	}
	st, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Requests == 0 || st.TxnsCommitted == 0 {
		t.Fatalf("stats did not record the run: %+v", st)
	}
}

// TestSlowReaderWriteTimeoutReapsConn is the write-side counterpart of the
// abrupt-disconnect property: a peer that stays connected but stops reading
// (a stalled or partitioned client) backpressures the server's response
// writes until WriteTimeout fires; the connection is then reaped and every
// session resource — the open cursor and its pinned snapshot — is released,
// so a slow reader cannot pin the GC horizon past the write deadline.
func TestSlowReaderWriteTimeoutReapsConn(t *testing.T) {
	srv, db, addr := newTestServer(t, Config{WriteTimeout: 300 * time.Millisecond})

	cl, err := client.Dial(client.Config{Addr: addr})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, err := cl.Exec("CREATE TABLE t (id INT, pad TEXT)"); err != nil {
		t.Fatal(err)
	}
	pad := make([]byte, 16<<10)
	for i := range pad {
		pad[i] = 'x'
	}
	for i := 0; i < 32; i++ { // ~512KB per full SELECT response
		if _, err := cl.Exec("INSERT INTO t VALUES (1, '" + string(pad) + "')"); err != nil {
			t.Fatal(err)
		}
	}

	// The slow reader: open a cursor (pinning a snapshot), then pipeline
	// SELECTs whose responses it never reads.
	rc := dialRaw(t, addr)
	rc.hello(t, "")
	rc.send(t, wire.OpQOpen, (&wire.Builder{}).Str("SELECT id FROM t").Take())
	if status, _ := rc.recv(t); status != wire.StOK {
		t.Fatal("QOPEN failed")
	}
	if srv.cursorsOpen.Load() != 1 {
		t.Fatalf("cursorsOpen = %d", srv.cursorsOpen.Load())
	}
	if _, ok := db.Manager().Monitor().OldestTS(); !ok {
		t.Fatal("cursor snapshot not registered with the monitor")
	}
	for i := 0; i < 20; i++ { // ~10MB of pending responses: far past any socket buffer
		rc.send(t, wire.OpExec, (&wire.Builder{}).Str("SELECT id, pad FROM t").Take())
	}

	// Do not read. The server must give up within WriteTimeout and reap the
	// session: cursor closed, snapshot released, horizon free to advance.
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, pinned := db.Manager().Monitor().OldestTS()
		if srv.cursorsOpen.Load() == 0 && !pinned {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("slow reader still pins the horizon: open=%d pinned=%v",
				srv.cursorsOpen.Load(), pinned)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if srv.cursorsReaped.Value() == 0 {
		t.Fatal("reap counter did not move")
	}
}
