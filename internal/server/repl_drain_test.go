package server

import (
	"net"
	"testing"
	"time"

	"hybridgc/internal/core"
	"hybridgc/internal/repl"
	"hybridgc/internal/txn"
)

// TestDrainEndsReplicationStreamAndReleasesPin covers graceful shutdown with
// an active replication stream: Shutdown must end the hijacked stream (not
// hang on it), and the pin the replica's open snapshot holds in the primary's
// registry must be released so the GC horizon clears with the drain.
func TestDrainEndsReplicationStreamAndReleasesPin(t *testing.T) {
	pdb, err := core.Open(core.Config{Persistence: &core.Persistence{Dir: t.TempDir()}})
	if err != nil {
		t.Fatal(err)
	}
	defer pdb.Close()
	src, err := repl.NewSource(pdb, repl.SourceConfig{HeartbeatEvery: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	srv, err := New(pdb, Config{Repl: src, StatsHook: src.PopulateStats})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	served := make(chan struct{})
	go func() {
		defer close(served)
		_ = srv.Serve(ln)
	}()

	tid, err := pdb.CreateTable("t")
	if err != nil {
		t.Fatal(err)
	}
	insert := func(img string) {
		t.Helper()
		err := pdb.Exec(txn.StmtSI, nil, func(tx *core.Tx) error {
			_, err := tx.Insert(tid, []byte(img))
			return err
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	insert("before")

	rdb, err := core.Open(core.Config{ReadOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	defer rdb.Close()
	rep, err := repl.NewReplica(rdb, repl.ReplicaConfig{
		Upstream:      ln.Addr().String(),
		ReplicaID:     "r1",
		ReportEvery:   10 * time.Millisecond,
		ReconnectBase: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	runDone := make(chan error, 1)
	go func() { runDone <- rep.Run() }()
	defer func() {
		rep.Stop()
		select {
		case <-runDone:
		case <-time.After(5 * time.Second):
			t.Error("replica Run did not exit after Stop")
		}
	}()
	if err := rep.WaitLSN(pdb.WAL().NextLSN(), 10*time.Second); err != nil {
		t.Fatal(err)
	}

	// An open snapshot on the replica pins the primary's horizon.
	cur, err := rdb.OpenCursor(tid)
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Close()
	pin := cur.SnapshotTS()
	waitUntil(t, 5*time.Second, "replica pin to reach the primary", func() bool {
		return pdb.Manager().GlobalHorizon() == pin
	})
	insert("after-pin") // give the horizon somewhere to go
	if h := pdb.Manager().GlobalHorizon(); h != pin {
		t.Fatalf("horizon %d, want pin %d", h, pin)
	}

	// Drain. Shutdown returns only after every connection goroutine —
	// including the hijacked stream — has exited, so the pin release is
	// observable immediately, even though the replica-side cursor is still
	// open: a drained primary no longer trusts (or hears) remote snapshots.
	done := make(chan struct{})
	go func() {
		srv.Shutdown(5 * time.Second)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Shutdown hung on the replication stream")
	}
	<-served

	if h := pdb.Manager().GlobalHorizon(); h <= pin {
		t.Fatalf("drain left the replica pin in place: horizon %d, pin %d", h, pin)
	}
	st := srv.Stats()
	if len(st.Replicas) != 1 || st.Replicas[0].Connected {
		t.Fatalf("replica stat after drain: %+v", st.Replicas)
	}
	if st.Replicas[0].PinnedSTS != 0 {
		t.Fatalf("replica stat still shows a pin after drain: %+v", st.Replicas[0])
	}
}

func waitUntil(t *testing.T, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(3 * time.Millisecond)
	}
}
