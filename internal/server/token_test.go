package server

import (
	"errors"
	"fmt"
	"net"
	"testing"
	"time"

	"hybridgc/internal/client"
	"hybridgc/internal/core"
	"hybridgc/internal/wire"
)

// newPersistentServer is newTestServer over a WAL-backed engine, so commit
// responses carry real consistency tokens (a memory engine has no WAL and
// reports token 0).
func newPersistentServer(t *testing.T, cfg Config) (*Server, string) {
	t.Helper()
	db, err := core.Open(core.Config{Persistence: &core.Persistence{Dir: t.TempDir()}})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(db, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() {
		srv.Shutdown(5 * time.Second)
		db.Close()
	})
	return srv, ln.Addr().String()
}

// TestCommitTokenOverWire: every write acknowledgement carries the stream
// head as its consistency token — non-zero, non-decreasing, and covering the
// commit it acknowledges, on both the autocommit and the explicit-tx paths.
func TestCommitTokenOverWire(t *testing.T) {
	_, addr := newPersistentServer(t, Config{})
	cl, err := client.Dial(client.Config{Addr: addr})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	res, err := cl.Exec("CREATE TABLE t (id INT)")
	if err != nil {
		t.Fatal(err)
	}
	if res.Token == 0 {
		t.Fatal("CREATE TABLE acknowledged with token 0")
	}
	last := res.Token
	for i := 0; i < 5; i++ {
		if res, err = cl.Exec(fmt.Sprintf("INSERT INTO t VALUES (%d)", i)); err != nil {
			t.Fatal(err)
		}
		if res.Token < last {
			t.Fatalf("token regressed: %d after %d", res.Token, last)
		}
		last = res.Token
	}

	tx, err := cl.Begin(false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Exec("INSERT INTO t VALUES (99)"); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if tx.CommitLSN() <= last {
		t.Fatalf("commit LSN %d does not cover the stream head %d", tx.CommitLSN(), last)
	}

	// A read gated at the freshest token passes on the server that produced
	// it — the primary trivially satisfies any token it handed out.
	if _, err := cl.ExecAt("SELECT id FROM t WHERE id = 99", tx.CommitLSN()); err != nil {
		t.Fatal(err)
	}
}

// TestReadGateWaitsAndBounces drives the gate through a stub: tokens below
// the stub's applied horizon pass (counted as waits when the gate had to
// work), tokens above it bounce with the transient replica-behind code, and
// both outcomes surface in the STATS trailer. Also pins the session floor:
// a session's min-LSN never goes backwards, so a later token-less request
// still gates at the highest token the session has presented.
func TestReadGateWaitsAndBounces(t *testing.T) {
	const applied = 100
	gate := func(minLSN uint64) (bool, error) {
		if minLSN > applied {
			return true, fmt.Errorf("%w: applied %d < min %d", core.ErrReplicaBehind, applied, minLSN)
		}
		return true, nil
	}
	_, _, addr := newTestServer(t, Config{ReadGate: gate})
	cl, err := client.Dial(client.Config{Addr: addr, MaxConns: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	if _, err := cl.Exec("CREATE TABLE t (id INT)"); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.ExecAt("SELECT id FROM t", applied-1); err != nil {
		t.Fatalf("satisfiable token bounced: %v", err)
	}
	_, err = cl.ExecAt("SELECT id FROM t", applied+1)
	if !errors.Is(err, core.ErrReplicaBehind) {
		t.Fatalf("unsatisfiable token error = %v, want ErrReplicaBehind", err)
	}
	if !core.IsTransient(err) {
		t.Fatalf("replica-behind not transient: %v", err)
	}
	// Session floor: the same connection now refuses even token-less reads —
	// this session has seen LSN applied+1 and must never travel back.
	if _, err := cl.Exec("SELECT id FROM t"); !errors.Is(err, core.ErrReplicaBehind) {
		t.Fatalf("session floor forgotten: %v", err)
	}

	st, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.ReadGateWaits == 0 {
		t.Fatalf("gate waits not counted: %+v", st)
	}
	if st.ReadGateBounces < 2 {
		t.Fatalf("gate bounces not counted: %+v", st)
	}
}

// TestOldPeerTokenlessFrames: a pre-token peer sends HELLO/EXEC/QOPEN with
// no trailing min-LSN. Against a gated server this must behave exactly as
// before — the gate only engages when a token is presented — and the
// response trailers the new server adds are bytes an old parser never
// reaches. A tokened EXEC on the same server bounces with the new code.
func TestOldPeerTokenlessFrames(t *testing.T) {
	gate := func(minLSN uint64) (bool, error) {
		return true, fmt.Errorf("%w: always behind", core.ErrReplicaBehind)
	}
	_, _, addr := newTestServer(t, Config{ReadGate: gate})
	rc := dialRaw(t, addr)

	// Token-less HELLO (the exact frame an old client sends) is not gated.
	rc.hello(t, "")

	// Token-less EXEC passes the gate untouched; the response carries the
	// old fields first, so a parser that stops early still reads them.
	rc.send(t, wire.OpExec, (&wire.Builder{}).Str("CREATE TABLE t (id INT)").Take())
	status, r := rc.recv(t)
	if status != wire.StOK {
		t.Fatalf("token-less EXEC gated, status %d", status)
	}
	r.Str()        // message
	r.U32()        // affected
	if r.Err() != nil {
		t.Fatalf("old-peer fields unreadable: %v", r.Err())
	}

	// Token-less QOPEN is not gated either.
	rc.send(t, wire.OpQOpen, (&wire.Builder{}).Str("SELECT id FROM t").Take())
	if status, _ := rc.recv(t); status != wire.StOK {
		t.Fatalf("token-less QOPEN gated, status %d", status)
	}

	// The moment a token is presented, the gate engages and the bounce
	// travels as the replica-behind error code.
	rc.send(t, wire.OpExec, (&wire.Builder{}).Str("SELECT id FROM t").U64(12345).Take())
	status, r = rc.recv(t)
	if status != wire.StErr {
		t.Fatal("tokened EXEC passed an always-bouncing gate")
	}
	if code := r.U16(); code != wire.ECodeReplicaBehind {
		t.Fatalf("error code %d, want ECodeReplicaBehind", code)
	}
}
