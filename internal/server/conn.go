package server

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync/atomic"
	"time"

	"hybridgc/internal/core"
	"hybridgc/internal/engine"
	"hybridgc/internal/sql"
	"hybridgc/internal/ts"
	"hybridgc/internal/txn"
	"hybridgc/internal/wire"
)

// conn is one client connection: a session with at most one explicit
// transaction and any number of open query cursors. All request processing
// happens on the connection's goroutine; only beginDrain touches it from
// outside, through atomics and deadline pokes that are safe concurrently.
type conn struct {
	srv  *Server
	nc   net.Conn
	br   *bufio.Reader
	bw   *bufio.Writer
	sess *sql.Session

	cursors    map[uint32]*sql.QueryCursor
	nextCursor uint32
	authed     bool
	draining   atomic.Bool

	// minLSN is the session's consistency token: the highest min-LSN any
	// request on this connection has carried. On a gated server (a replica)
	// every token-bearing request waits until the applier reaches it or
	// bounces with ErrReplicaBehind. Single-goroutine state, like the
	// session itself.
	minLSN uint64

	// rbuf is the connection's reusable request-frame buffer: the serve loop
	// is strictly read → dispatch → write, so the previous request body is
	// dead by the next read. resp is the reusable response builder — valid
	// until the response frame is written, which also happens before the
	// next read. Both are single-goroutine state.
	rbuf []byte
	resp wire.Builder
}

// b returns the connection's response builder, emptied for this response.
func (c *conn) b() *wire.Builder { return c.resp.Reset() }

func newConn(s *Server, nc net.Conn) *conn {
	return &conn{
		srv:     s,
		nc:      nc,
		br:      bufio.NewReader(nc),
		bw:      bufio.NewWriter(nc),
		sess:    sql.NewSession(s.cat),
		cursors: make(map[uint32]*sql.QueryCursor),
	}
}

// beginDrain asks the connection to stop after its in-flight request: the
// flag makes the serve loop exit at the next iteration, and the expired read
// deadline unblocks a loop parked between requests.
func (c *conn) beginDrain() {
	c.draining.Store(true)
	_ = c.nc.SetReadDeadline(time.Unix(1, 0))
}

// cleanup releases everything the session pinned. It runs exactly once, when
// the serve loop exits — on client EOF, abrupt disconnect, idle timeout,
// protocol error, or drain — so a dead peer's cursors stop blocking the
// global garbage collection horizon no later than the idle deadline.
func (c *conn) cleanup() {
	for id, qc := range c.cursors {
		qc.Close()
		delete(c.cursors, id)
		c.srv.cursorsOpen.Add(-1)
		c.srv.cursorsReaped.Inc()
	}
	c.sess.Close()
	c.nc.Close()
}

// serve runs the request loop.
func (c *conn) serve() {
	defer c.cleanup()
	for {
		if c.draining.Load() {
			return
		}
		_ = c.nc.SetReadDeadline(time.Now().Add(c.srv.cfg.IdleTimeout))
		op, body, rbuf, err := wire.ReadFrameInto(c.br, c.rbuf)
		c.rbuf = rbuf
		if err != nil {
			return // EOF, abrupt disconnect, idle timeout, drain poke
		}
		c.srv.bytesIn.Add(int64(5 + len(body)))
		if hook := c.srv.cfg.testHookRequest; hook != nil {
			hook(op)
		}
		if op == wire.OpReplStream {
			// Hijack: the stream handler owns the socket until it returns,
			// then the connection closes (cleanup releases the session).
			c.serveReplStream(body)
			return
		}
		start := time.Now()
		status, resp := c.dispatch(op, body)
		c.srv.requests.Inc()
		if status == wire.StErr {
			c.srv.requestErrors.Inc()
		}
		_ = c.nc.SetWriteDeadline(time.Now().Add(c.srv.cfg.WriteTimeout))
		n, err := wire.WriteFrame(c.bw, status, resp)
		if err == nil {
			err = c.bw.Flush()
		}
		c.srv.bytesOut.Add(int64(n))
		c.srv.lat.Record(time.Since(start))
		if err != nil {
			return
		}
		if op == wire.OpHello && !c.authed {
			return // failed handshake: one error frame, then hang up
		}
	}
}

// serveReplStream handles an OpReplStream request. Refusals (no handler,
// unauthenticated, malformed request) answer with a normal error frame and
// end the connection; otherwise deadlines are cleared and the replication
// handler drives the socket until the stream ends.
func (c *conn) serveReplStream(body []byte) {
	writeErr := func(err error) {
		status, resp := fail(err)
		c.srv.requestErrors.Inc()
		_ = c.nc.SetWriteDeadline(time.Now().Add(c.srv.cfg.WriteTimeout))
		if n, werr := wire.WriteFrame(c.bw, status, resp); werr == nil {
			_ = c.bw.Flush()
			c.srv.bytesOut.Add(int64(n))
		}
	}
	c.srv.requests.Inc()
	if !c.authed {
		writeErr(fmt.Errorf("%w: HELLO required", wire.ErrBadRequest))
		return
	}
	h := c.srv.cfg.Repl
	if h == nil {
		writeErr(fmt.Errorf("%w: not a replication source", wire.ErrBadRequest))
		return
	}
	r := wire.NewParser(body)
	req := wire.DecodeReplStreamRequest(r)
	if err := firstErr(r); err != nil {
		writeErr(err)
		return
	}
	// The stream manages its own liveness (heartbeats, report deadlines);
	// the session deadlines would only tear down a healthy idle stream.
	_ = c.nc.SetReadDeadline(time.Time{})
	_ = c.nc.SetWriteDeadline(time.Time{})
	if err := h.ServeStream(c.nc, c.br, c.bw, req, c.srv.Draining); err != nil && !isClosedErr(err) {
		c.srv.requestErrors.Inc()
	}
}

// fail encodes an error response.
func fail(err error) (byte, []byte) {
	code := wire.ErrorCode(err)
	switch {
	case errors.Is(err, sql.ErrInTransaction):
		code = wire.ECodeInTransaction
	case errors.Is(err, sql.ErrNoTransaction):
		code = wire.ECodeNoTransaction
	}
	return wire.StErr, (&wire.Builder{}).U16(code).Str(err.Error()).Take()
}

func ok(w *wire.Builder) (byte, []byte) {
	if w == nil {
		return wire.StOK, nil
	}
	return wire.StOK, w.Take()
}

// dispatch executes one request and returns the response frame.
func (c *conn) dispatch(op byte, body []byte) (byte, []byte) {
	if !c.authed && op != wire.OpHello {
		return fail(fmt.Errorf("%w: HELLO required", wire.ErrBadRequest))
	}
	// No draining check here: a frame only reaches dispatch if the drain
	// flag was clear when the serve loop read it, and such an in-flight
	// request runs to completion with its real response — drain cuts the
	// conversation off at the next loop iteration, not mid-request.
	r := wire.NewParser(body)
	switch op {
	case wire.OpHello:
		return c.hello(r)
	case wire.OpPing:
		return ok(nil)
	case wire.OpStats:
		w := c.b()
		st := c.srv.Stats()
		st.Encode(w)
		return ok(w)
	case wire.OpExec:
		return c.exec(r)
	case wire.OpBegin:
		transSI := r.Bool()
		if err := firstErr(r); err != nil {
			return fail(err)
		}
		if err := c.sess.Begin(transSI); err != nil {
			return fail(err)
		}
		return ok(nil)
	case wire.OpBeginShard:
		shard, transSI := int(r.U32()), r.Bool()
		if err := firstErr(r); err != nil {
			return fail(err)
		}
		if err := c.sess.BeginShard(shard, transSI); err != nil {
			return fail(err)
		}
		return ok(nil)
	case wire.OpCommit:
		if err := c.sess.Commit(); err != nil {
			return fail(err)
		}
		// Trailing consistency token: the stream head right after the
		// commit, so it covers the whole commit group the transaction rode
		// in. Pre-token clients expect an empty body and never read it.
		return ok(c.b().U64(c.srv.tokenLSN()))
	case wire.OpRollback:
		if err := c.sess.Rollback(); err != nil {
			return fail(err)
		}
		return ok(nil)
	case wire.OpQOpen:
		return c.qopen(r)
	case wire.OpQFetch:
		return c.qfetch(r)
	case wire.OpQClose:
		return c.qclose(r)
	case wire.OpCreateTable:
		name := r.Str()
		if err := firstErr(r); err != nil {
			return fail(err)
		}
		tid, err := c.srv.eng.CreateTable(name)
		if err != nil {
			return fail(err)
		}
		return ok(c.b().U32(uint32(tid)))
	case wire.OpTableIDs:
		names := wire.GetStrings(r)
		if err := firstErr(r); err != nil {
			return fail(err)
		}
		ids, err := c.srv.eng.TableIDs(names...)
		if err != nil {
			return fail(err)
		}
		w := c.b().U16(uint16(len(ids)))
		for _, id := range ids {
			w.U32(uint32(id))
		}
		return ok(w)
	case wire.OpGet:
		tid, rid := ts.TableID(r.U32()), ts.RID(r.U64())
		if err := firstErr(r); err != nil {
			return fail(err)
		}
		var img []byte
		err := c.kv(func(tx engine.Tx) error {
			var err error
			img, err = tx.Get(tid, rid)
			return err
		})
		if err != nil {
			return fail(err)
		}
		return ok(c.b().Bytes(img))
	case wire.OpInsert:
		tid, img := ts.TableID(r.U32()), r.Bytes()
		if err := firstErr(r); err != nil {
			return fail(err)
		}
		var rid ts.RID
		err := c.kv(func(tx engine.Tx) error {
			var err error
			rid, err = tx.Insert(tid, img)
			return err
		})
		if err != nil {
			return fail(err)
		}
		return ok(c.b().U64(uint64(rid)))
	case wire.OpInsertAt:
		tid, hint, img := ts.TableID(r.U32()), int(r.U32()), r.Bytes()
		if err := firstErr(r); err != nil {
			return fail(err)
		}
		var rid ts.RID
		err := c.kv(func(tx engine.Tx) error {
			var err error
			rid, err = tx.InsertAt(tid, img, hint)
			return err
		})
		if err != nil {
			return fail(err)
		}
		return ok(c.b().U64(uint64(rid)))
	case wire.OpHTAPEnable:
		name := r.Str()
		if err := firstErr(r); err != nil {
			return fail(err)
		}
		if err := c.srv.cat.EnableHTAP(name); err != nil {
			return fail(err)
		}
		return ok(nil)
	case wire.OpAggregate:
		return c.aggregate(r)
	case wire.OpSetPlacement:
		tid := ts.TableID(r.U32())
		p := engine.Placement{Kind: engine.PlacementKind(r.U8()), Size: r.U64(), Shard: int(r.U32())}
		if err := firstErr(r); err != nil {
			return fail(err)
		}
		if err := c.srv.eng.SetPlacement(tid, p); err != nil {
			return fail(err)
		}
		return ok(nil)
	case wire.OpUpdate:
		tid, rid, img := ts.TableID(r.U32()), ts.RID(r.U64()), r.Bytes()
		if err := firstErr(r); err != nil {
			return fail(err)
		}
		if err := c.kv(func(tx engine.Tx) error { return tx.Update(tid, rid, img) }); err != nil {
			return fail(err)
		}
		return ok(nil)
	case wire.OpDelete:
		tid, rid := ts.TableID(r.U32()), ts.RID(r.U64())
		if err := firstErr(r); err != nil {
			return fail(err)
		}
		if err := c.kv(func(tx engine.Tx) error { return tx.Delete(tid, rid) }); err != nil {
			return fail(err)
		}
		return ok(nil)
	case wire.OpScan:
		tid := ts.TableID(r.U32())
		if err := firstErr(r); err != nil {
			return fail(err)
		}
		type pair struct {
			rid ts.RID
			img []byte
		}
		var pairs []pair
		err := c.kv(func(tx engine.Tx) error {
			pairs = pairs[:0]
			return tx.Scan(tid, func(rid ts.RID, img []byte) bool {
				pairs = append(pairs, pair{rid, img})
				return true
			})
		})
		if err != nil {
			return fail(err)
		}
		w := c.b().U32(uint32(len(pairs)))
		for _, p := range pairs {
			w.U64(uint64(p.rid)).Bytes(p.img)
		}
		return ok(w)
	default:
		return fail(fmt.Errorf("%w: unknown opcode %d", wire.ErrBadRequest, op))
	}
}

// reqToken consumes a trailing min-LSN consistency token if the request
// carries one. It must run after the documented body fields and before
// firstErr — older clients send no token and parse identically.
func reqToken(r *wire.Parser) uint64 {
	if r.Rest() > 0 {
		return r.U64()
	}
	return 0
}

// gate raises the session token to min and, on a gated server (a replica),
// holds the request until the applier reaches the token or bounces it with
// ErrReplicaBehind so the client retries on another endpoint.
func (c *conn) gate(min uint64) error {
	if min > c.minLSN {
		c.minLSN = min
	}
	g := c.srv.cfg.ReadGate
	if g == nil || c.minLSN == 0 {
		return nil
	}
	waited, err := g(c.minLSN)
	if waited {
		c.srv.gateWaits.Inc()
	}
	if err != nil {
		c.srv.gateBounces.Inc()
	}
	return err
}

// firstErr surfaces a parse failure, also rejecting trailing request bytes.
func firstErr(r *wire.Parser) error {
	if err := r.Err(); err != nil {
		return err
	}
	if r.Rest() != 0 {
		return fmt.Errorf("%w: %d trailing bytes", wire.ErrBadRequest, r.Rest())
	}
	return nil
}

// kv runs a record-level operation in the session's explicit transaction if
// one is open, or as its own autocommit transaction otherwise — the same
// rule SQL statements follow.
func (c *conn) kv(fn func(tx engine.Tx) error) error {
	if tx := c.sess.Tx(); tx != nil {
		return fn(tx)
	}
	return c.srv.eng.Exec(txn.StmtSI, nil, fn)
}

func (c *conn) hello(r *wire.Parser) (byte, []byte) {
	magic := string(r.Raw(4))
	ver := r.U8()
	token := r.Str()
	minLSN := reqToken(r)
	if err := firstErr(r); err != nil || magic != wire.Magic {
		return fail(fmt.Errorf("%w: bad handshake", wire.ErrBadRequest))
	}
	if ver != wire.Version {
		return fail(fmt.Errorf("%w: protocol version %d, want %d", wire.ErrBadRequest, ver, wire.Version))
	}
	if c.srv.cfg.Token != "" && token != c.srv.cfg.Token {
		return fail(wire.ErrAuth)
	}
	if err := c.gate(minLSN); err != nil {
		return fail(err)
	}
	c.authed = true
	// The shard count trails the version byte; pre-sharding clients parsed
	// only the version and ignore response trailers, so the addition is
	// compatible in both directions.
	return ok(c.b().U8(wire.Version).U32(uint32(c.srv.eng.Shards())))
}

func (c *conn) exec(r *wire.Parser) (byte, []byte) {
	text := r.Str()
	minLSN := reqToken(r)
	if err := firstErr(r); err != nil {
		return fail(err)
	}
	if err := c.gate(minLSN); err != nil {
		return fail(err)
	}
	res, err := c.sess.Execute(text)
	if err != nil {
		return fail(err)
	}
	w := c.b()
	w.Str(res.Message).U32(uint32(res.Affected))
	wire.PutStrings(w, res.Columns)
	wire.PutRows(w, toWireRows(res.Rows))
	// Trailing consistency token: the stream head after this statement, ≥
	// the commit LSN of an autocommitted write. Older clients stop reading
	// before it.
	w.U64(c.srv.tokenLSN())
	return ok(w)
}

// aggNames maps OpAggregate's op byte to the SQL aggregate keyword; the
// order matches htap.AggOp.
var aggNames = [...]string{"COUNT", "SUM", "MIN", "MAX"}

// aggregate serves OpAggregate: a synthesized aggregate SELECT that takes
// the column lane when one is enabled for the table and the row path
// otherwise. Pure read, so clients treat it as idempotent.
func (c *conn) aggregate(r *wire.Parser) (byte, []byte) {
	table, op := r.Str(), int(r.U8())
	col, groupBy := r.Str(), r.Str()
	if err := firstErr(r); err != nil {
		return fail(err)
	}
	if op < 0 || op >= len(aggNames) {
		return fail(fmt.Errorf("%w: aggregate op %d", wire.ErrBadRequest, op))
	}
	res, err := c.sess.Run(&sql.SelectStmt{
		Table:     table,
		Aggregate: aggNames[op],
		AggColumn: col,
		GroupBy:   groupBy,
	})
	if err != nil {
		return fail(err)
	}
	w := c.b()
	wire.PutStrings(w, res.Columns)
	wire.PutRows(w, toWireRows(res.Rows))
	return ok(w)
}

func (c *conn) qopen(r *wire.Parser) (byte, []byte) {
	text := r.Str()
	minLSN := reqToken(r)
	if err := firstErr(r); err != nil {
		return fail(err)
	}
	if err := c.gate(minLSN); err != nil {
		return fail(err)
	}
	qc, err := c.sess.OpenQueryCursor(text)
	if err != nil {
		return fail(err)
	}
	c.nextCursor++
	id := c.nextCursor
	c.cursors[id] = qc
	c.srv.cursorsOpen.Add(1)
	w := c.b().U32(id).U64(uint64(qc.SnapshotTS()))
	wire.PutStrings(w, qc.Columns())
	return ok(w)
}

func (c *conn) qfetch(r *wire.Parser) (byte, []byte) {
	id, n := r.U32(), int(r.U32())
	if err := firstErr(r); err != nil {
		return fail(err)
	}
	qc, okc := c.cursors[id]
	if !okc {
		return fail(fmt.Errorf("%w: cursor %d", core.ErrCursorClosed, id))
	}
	if n <= 0 || n > 1<<16 {
		n = 1 << 10
	}
	rows, fst, err := qc.Fetch(n)
	if err != nil {
		return fail(err)
	}
	w := c.b().Bool(qc.Exhausted()).U64(uint64(fst.Traversed)).U64(uint64(fst.Duration))
	wire.PutRows(w, toWireRows(rows))
	return ok(w)
}

func (c *conn) qclose(r *wire.Parser) (byte, []byte) {
	id := r.U32()
	if err := firstErr(r); err != nil {
		return fail(err)
	}
	qc, okc := c.cursors[id]
	if !okc {
		return fail(fmt.Errorf("%w: cursor %d", core.ErrCursorClosed, id))
	}
	qc.Close()
	delete(c.cursors, id)
	c.srv.cursorsOpen.Add(-1)
	return ok(nil)
}

// toWireRows converts SQL result rows to their wire form.
func toWireRows(rows [][]sql.Datum) [][]wire.Datum {
	out := make([][]wire.Datum, len(rows))
	for i, row := range rows {
		wr := make([]wire.Datum, len(row))
		for j, d := range row {
			if d.Type == sql.TInt {
				wr[j] = wire.Datum{Tag: wire.DatumInt, I: d.I}
			} else {
				wr[j] = wire.Datum{Tag: wire.DatumText, S: d.S}
			}
		}
		out[i] = wr
	}
	return out
}
