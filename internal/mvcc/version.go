// Package mvcc implements the version space of the SAP HANA row store as
// described in §2.2 of the paper: version entries with headers and payloads,
// latest-first version chains reachable through a central RID hash table,
// TransContext and GroupCommitContext objects with atomic indirect CID
// assignment, and the ordered group-commit list that the group and interval
// garbage collectors scan.
package mvcc

import (
	"fmt"
	"sync/atomic"

	"hybridgc/internal/ts"
)

// OpType is the creator's operation type stored in each version header.
type OpType uint8

const (
	// OpInsert records the creation of a record. The record image becomes
	// the table-space image once garbage collection migrates it.
	OpInsert OpType = iota + 1
	// OpUpdate records a new image for an existing record.
	OpUpdate
	// OpDelete records the deletion of a record; it carries no payload.
	OpDelete
)

// String implements fmt.Stringer.
func (op OpType) String() string {
	switch op {
	case OpInsert:
		return "INSERT"
	case OpUpdate:
		return "UPDATE"
	case OpDelete:
		return "DELETE"
	default:
		return fmt.Sprintf("OpType(%d)", uint8(op))
	}
}

// Version is one record version (version entry): a header — operation type,
// record key, chain linkage, creator context — plus the payload holding the
// new record image (nil for DELETE).
//
// The CID is not stored directly at commit time. It is resolved indirectly
// through the creator's TransContext and its GroupCommitContext, and cached
// in cid once known (the paper's atomic indirect CID assignment with
// asynchronous backward propagation).
type Version struct {
	Op      OpType
	Key     ts.RecordKey
	Payload []byte

	tctx  *TransContext
	chain *Chain

	cid       atomic.Uint64
	older     atomic.Pointer[Version]
	reclaimed atomic.Bool
}

// NewVersion builds a version entry owned by the given transaction context.
// The chain pointer is installed when the version is linked.
func NewVersion(op OpType, key ts.RecordKey, payload []byte, tctx *TransContext) *Version {
	return &Version{Op: op, Key: key, Payload: payload, tctx: tctx}
}

// CID returns the version's commit identifier, or ts.Invalid while the
// creating transaction has not committed. The first successful resolution
// through TransContext→GroupCommitContext is cached on the version itself,
// which is exactly the backward CID propagation of §2.2 performed lazily.
func (v *Version) CID() ts.CID {
	if c := v.cid.Load(); c != 0 {
		return ts.CID(c)
	}
	tc := v.tctx
	if tc == nil {
		return ts.Invalid
	}
	gcc := tc.gcc.Load()
	if gcc == nil {
		return ts.Invalid
	}
	c := gcc.cid.Load()
	if c == 0 {
		return ts.Invalid
	}
	v.cid.Store(c)
	return ts.CID(c)
}

// SetCID caches the resolved CID on the version (backward propagation).
func (v *Version) SetCID(c ts.CID) { v.cid.Store(uint64(c)) }

// Propagated reports whether the CID has been written into the version entry
// itself, i.e. resolving it no longer follows pointers.
func (v *Version) Propagated() bool { return v.cid.Load() != 0 }

// Committed reports whether the creating transaction has committed.
func (v *Version) Committed() bool { return v.CID() != ts.Invalid }

// Older returns the next-older version in the chain (nil at the tail).
func (v *Version) Older() *Version { return v.older.Load() }

// Chain returns the version chain this version is (or was) linked into.
func (v *Version) Chain() *Chain { return v.chain }

// TransContext returns the creator's transaction context.
func (v *Version) TransContext() *TransContext { return v.tctx }

// Reclaimed reports whether a garbage collector already unlinked the version.
func (v *Version) Reclaimed() bool { return v.reclaimed.Load() }

// markReclaimed flags the version as collected; returns false if it was
// already flagged (idempotence guard for collectors).
func (v *Version) markReclaimed() bool {
	return v.reclaimed.CompareAndSwap(false, true)
}

// OwnedBy reports whether the version was created by the given context and is
// still uncommitted — the write-write conflict test.
func (v *Version) OwnedBy(tc *TransContext) bool {
	return v.tctx == tc && !v.Committed()
}

// String implements fmt.Stringer for debugging and test failure output.
func (v *Version) String() string {
	return fmt.Sprintf("%s t%d/r%d cid=%d", v.Op, v.Key.Table, v.Key.RID, v.CID())
}
