package mvcc

import (
	"sync"
	"sync/atomic"

	"hybridgc/internal/ts"
)

// TransContext associates all record versions created by one write
// transaction (§2.2). Versions point to their TransContext; on commit the
// TransContext is pointed at a GroupCommitContext shared by every
// transaction committing in the same group, which is how one atomic CID
// store makes a whole group of versions visible at once.
type TransContext struct {
	TxnID uint64

	gcc atomic.Pointer[GroupCommitContext]

	// skipLog marks a transaction whose write set is already durable (a
	// two-phase-commit participant logged it in its prepare record), so the
	// group committer must not log it again.
	skipLog atomic.Bool

	mu       sync.Mutex
	versions []*Version
}

// NewTransContext returns a context for the given transaction ID.
func NewTransContext(txnID uint64) *TransContext {
	return &TransContext{TxnID: txnID}
}

// Add records a version created by this transaction (the backward link used
// for CID propagation and group reclamation).
func (tc *TransContext) Add(v *Version) {
	tc.mu.Lock()
	tc.versions = append(tc.versions, v)
	tc.mu.Unlock()
}

// Versions returns the versions created by this transaction, in creation
// order.
func (tc *TransContext) Versions() []*Version {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	return append([]*Version(nil), tc.versions...)
}

// VersionCount returns how many versions the transaction created.
func (tc *TransContext) VersionCount() int {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	return len(tc.versions)
}

// SetSkipLog marks the write set as already durable, excluding it from the
// group committer's WAL record.
func (tc *TransContext) SetSkipLog() { tc.skipLog.Store(true) }

// SkipLog reports whether the write set is already durable elsewhere.
func (tc *TransContext) SkipLog() bool { return tc.skipLog.Load() }

// Group returns the GroupCommitContext once the transaction entered group
// commit, or nil while it is still active.
func (tc *TransContext) Group() *GroupCommitContext { return tc.gcc.Load() }

// setGroup links the context into its commit group.
func (tc *TransContext) setGroup(g *GroupCommitContext) { tc.gcc.Store(g) }

// CID resolves the transaction's commit identifier, or ts.Invalid before
// commit.
func (tc *TransContext) CID() ts.CID {
	g := tc.gcc.Load()
	if g == nil {
		return ts.Invalid
	}
	return g.CID()
}

// GroupCommitContext represents one group commit operation (§2.2, Figure 7):
// the set of transactions whose versions all share a single CID. Contexts
// are kept in a global list ordered by CID so that the group collector can
// identify whole garbage groups without traversing individual versions.
type GroupCommitContext struct {
	cid  atomic.Uint64
	txns []*TransContext

	// List linkage. Structural changes are serialized by the owning
	// GroupList's mutex, but the pointers are atomics so iterators can walk
	// the list without taking it — commit publication must stay cheap while
	// collectors read the list.
	prev, next atomic.Pointer[GroupCommitContext]
	removed    bool // guarded by the GroupList mutex
}

// NewGroup creates a commit group over the given transaction contexts and
// points each of them at the group. The CID is still unassigned; the group
// becomes visible the moment AssignCID stores it.
func NewGroup(txns []*TransContext) *GroupCommitContext {
	g := &GroupCommitContext{txns: txns}
	for _, tc := range txns {
		tc.setGroup(g)
	}
	return g
}

// AssignCID atomically publishes the group's commit identifier. After this
// single store, every version of every member transaction resolves to c.
func (g *GroupCommitContext) AssignCID(c ts.CID) { g.cid.Store(uint64(c)) }

// CID returns the group's commit identifier, or ts.Invalid before assignment.
func (g *GroupCommitContext) CID() ts.CID { return ts.CID(g.cid.Load()) }

// Transactions returns the member transaction contexts.
func (g *GroupCommitContext) Transactions() []*TransContext { return g.txns }

// Propagate writes the group CID into every member version entry (the
// asynchronous backward CID propagation of §2.2), so later visibility checks
// do not chase pointers. It returns the number of versions touched.
func (g *GroupCommitContext) Propagate() int {
	c := g.CID()
	if c == ts.Invalid {
		return 0
	}
	n := 0
	for _, tc := range g.txns {
		for _, v := range tc.Versions() {
			v.SetCID(c)
			n++
		}
	}
	return n
}

// Versions returns every version entry belonging to the group, across all
// member transactions.
func (g *GroupCommitContext) Versions() []*Version {
	var out []*Version
	for _, tc := range g.txns {
		out = append(out, tc.Versions()...)
	}
	return out
}

// GroupList is the ordered list of GroupCommitContext objects (Figure 7).
// Groups are appended in commit order, which is CID order, and removed by
// the group collector once fully reclaimed.
//
// Structural changes (Append/Remove) serialize on the mutex, but their
// critical sections are O(1) pointer swings and iteration never takes the
// lock at all: Ascending/Descending walk the atomic links live, so commit
// publication does not contend with collectors copying the whole list (the
// old design materialized a full slice under the lock per scan). A removed
// group keeps its own outgoing pointers, so an iterator standing on it
// continues into the remaining list — the same unlink discipline the
// lock-free RID hash uses.
type GroupList struct {
	mu    sync.Mutex
	head  atomic.Pointer[GroupCommitContext]
	tail  atomic.Pointer[GroupCommitContext]
	count atomic.Int64
}

// NewGroupList returns an empty list.
func NewGroupList() *GroupList { return &GroupList{} }

// Append adds a freshly committed group at the tail. Caller must append in
// CID order (the group committer serializes commits, so this holds).
func (gl *GroupList) Append(g *GroupCommitContext) {
	gl.mu.Lock()
	defer gl.mu.Unlock()
	t := gl.tail.Load()
	g.prev.Store(t)
	// Publish the tail before linking the predecessor's next pointer: a
	// descending iterator that loads the new tail finds its prev already
	// set; an ascending iterator either misses g (it was appended mid-scan)
	// or sees it fully linked.
	gl.tail.Store(g)
	if t != nil {
		t.next.Store(g)
	} else {
		gl.head.Store(g)
	}
	gl.count.Add(1)
}

// Remove unlinks a fully reclaimed group. Removing twice is a no-op. The
// removed group's own prev/next stay intact so concurrent iterators standing
// on it keep walking the list.
func (gl *GroupList) Remove(g *GroupCommitContext) {
	gl.mu.Lock()
	defer gl.mu.Unlock()
	if g.removed {
		return
	}
	g.removed = true
	p, n := g.prev.Load(), g.next.Load()
	if p != nil {
		p.next.Store(n)
	} else {
		gl.head.Store(n)
	}
	if n != nil {
		n.prev.Store(p)
	} else {
		gl.tail.Store(p)
	}
	gl.count.Add(-1)
}

// Len returns the number of groups currently linked.
func (gl *GroupList) Len() int {
	return int(gl.count.Load())
}

// Ascending calls fn on each group from the oldest CID upward until fn
// returns false. Iteration is lock-free and live: fn may call Remove
// (including on the group it was handed), and groups appended or removed
// mid-scan may or may not be visited.
func (gl *GroupList) Ascending(fn func(*GroupCommitContext) bool) {
	for g := gl.head.Load(); g != nil; g = g.next.Load() {
		if !fn(g) {
			return
		}
	}
}

// Descending calls fn on each group from the newest CID downward until fn
// returns false (the interval collector's highest-CID-first iteration, §4.2
// step 3). Same liveness contract as Ascending.
func (gl *GroupList) Descending(fn func(*GroupCommitContext) bool) {
	for g := gl.tail.Load(); g != nil; g = g.prev.Load() {
		if !fn(g) {
			return
		}
	}
}
