package mvcc

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"

	"hybridgc/internal/ts"
)

// fakeRecord implements RecordRef over plain fields for unit tests.
type fakeRecord struct {
	mu        sync.Mutex
	image     []byte
	exists    bool
	versioned bool
}

func (r *fakeRecord) InstallImage(img []byte) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.image = img
	r.exists = true
}

func (r *fakeRecord) DropRecord() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.image = nil
	r.exists = false
}

func (r *fakeRecord) SetVersioned(v bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.versioned = v
}

func (r *fakeRecord) state() (img string, exists, versioned bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return string(r.image), r.exists, r.versioned
}

func key(rid uint64) ts.RecordKey { return ts.RecordKey{Table: 1, RID: ts.RID(rid)} }

// commitOne wraps a single version in its own single-transaction group with
// the given CID and registers the group.
func commitOne(s *Space, v *Version, cid ts.CID) *GroupCommitContext {
	g := NewGroup([]*TransContext{v.tctx})
	g.AssignCID(cid)
	s.Groups.Append(g)
	return g
}

// addVersion creates, links and optionally commits one version.
func addVersion(t *testing.T, s *Space, rec RecordRef, op OpType, rid uint64, img string, cid ts.CID) *Version {
	t.Helper()
	tc := NewTransContext(uint64(cid))
	var payload []byte
	if op != OpDelete {
		payload = []byte(img)
	}
	v := NewVersion(op, key(rid), payload, tc)
	tc.Add(v)
	if _, err := s.Prepend(rec, v, nil); err != nil {
		t.Fatalf("Prepend: %v", err)
	}
	if cid != ts.Invalid {
		commitOne(s, v, cid)
	}
	return v
}

func TestIndirectCIDAssignment(t *testing.T) {
	tc1 := NewTransContext(1)
	tc2 := NewTransContext(2)
	v1 := NewVersion(OpUpdate, key(1), []byte("a"), tc1)
	v2 := NewVersion(OpUpdate, key(2), []byte("b"), tc2)
	tc1.Add(v1)
	tc2.Add(v2)

	if v1.Committed() || tc1.CID() != ts.Invalid {
		t.Fatal("version must be uncommitted before group commit")
	}
	g := NewGroup([]*TransContext{tc1, tc2})
	if v1.Committed() {
		t.Fatal("group without CID must still be invisible")
	}
	// One atomic store makes every version of both transactions visible.
	g.AssignCID(42)
	if v1.CID() != 42 || v2.CID() != 42 {
		t.Fatalf("CIDs = %d,%d want 42,42", v1.CID(), v2.CID())
	}
	if !v1.Propagated() {
		t.Fatal("lazy resolution must cache the CID on the version")
	}
}

func TestBackwardPropagation(t *testing.T) {
	tc := NewTransContext(1)
	var vs []*Version
	for i := 0; i < 5; i++ {
		v := NewVersion(OpUpdate, key(uint64(i)), []byte("x"), tc)
		tc.Add(v)
		vs = append(vs, v)
	}
	g := NewGroup([]*TransContext{tc})
	g.AssignCID(7)
	if n := g.Propagate(); n != 5 {
		t.Fatalf("Propagate touched %d versions, want 5", n)
	}
	for _, v := range vs {
		if !v.Propagated() || v.CID() != 7 {
			t.Fatalf("version %v not propagated", v)
		}
	}
	// Propagate on an unassigned group is a no-op.
	g2 := NewGroup([]*TransContext{NewTransContext(2)})
	if n := g2.Propagate(); n != 0 {
		t.Fatalf("Propagate on unassigned group = %d, want 0", n)
	}
}

func TestGroupListOrdering(t *testing.T) {
	gl := NewGroupList()
	var gs []*GroupCommitContext
	for i := 1; i <= 4; i++ {
		g := NewGroup([]*TransContext{NewTransContext(uint64(i))})
		g.AssignCID(ts.CID(i * 10))
		gl.Append(g)
		gs = append(gs, g)
	}
	var asc []ts.CID
	gl.Ascending(func(g *GroupCommitContext) bool {
		asc = append(asc, g.CID())
		return true
	})
	if fmt.Sprint(asc) != "[10 20 30 40]" {
		t.Fatalf("ascending = %v", asc)
	}
	var desc []ts.CID
	gl.Descending(func(g *GroupCommitContext) bool {
		desc = append(desc, g.CID())
		return g.CID() > 20 // early stop
	})
	if fmt.Sprint(desc) != "[40 30 20]" {
		t.Fatalf("descending with stop = %v", desc)
	}
	gl.Remove(gs[0])
	gl.Remove(gs[0]) // double remove is a no-op
	gl.Remove(gs[2])
	if gl.Len() != 2 {
		t.Fatalf("Len = %d, want 2", gl.Len())
	}
	asc = asc[:0]
	gl.Ascending(func(g *GroupCommitContext) bool {
		asc = append(asc, g.CID())
		return true
	})
	if fmt.Sprint(asc) != "[20 40]" {
		t.Fatalf("ascending after removal = %v", asc)
	}
}

func TestVisibleTraversal(t *testing.T) {
	s := NewSpace(64)
	rec := &fakeRecord{}
	addVersion(t, s, rec, OpInsert, 1, "v0", 5)
	addVersion(t, s, rec, OpUpdate, 1, "v1", 10)
	addVersion(t, s, rec, OpUpdate, 1, "v2", 20)

	c := s.HT.Get(key(1))
	if c == nil {
		t.Fatal("chain not registered")
	}
	cases := []struct {
		at    ts.CID
		want  string
		steps int
	}{
		{25, "v2", 1},
		{20, "v2", 1},
		{19, "v1", 2},
		{10, "v1", 2},
		{7, "v0", 3},
		{4, "", 3}, // nothing visible, full traversal
	}
	for _, cse := range cases {
		v, steps := c.Visible(cse.at)
		got := ""
		if v != nil {
			got = string(v.Payload)
		}
		if got != cse.want || steps != cse.steps {
			t.Errorf("Visible(%d) = %q/%d steps, want %q/%d", cse.at, got, steps, cse.want, cse.steps)
		}
	}
	if s.Live() != 3 || s.Created() != 3 {
		t.Fatalf("live=%d created=%d", s.Live(), s.Created())
	}
}

func TestPrependConflictCheck(t *testing.T) {
	s := NewSpace(64)
	rec := &fakeRecord{}
	addVersion(t, s, rec, OpInsert, 1, "v0", 5)

	tcOther := NewTransContext(99)
	uncommitted := NewVersion(OpUpdate, key(1), []byte("dirty"), tcOther)
	tcOther.Add(uncommitted)
	errConflict := fmt.Errorf("write conflict")
	check := func(head *Version) error {
		if head != nil && !head.Committed() {
			return errConflict
		}
		return nil
	}
	if _, err := s.Prepend(rec, uncommitted, check); err != nil {
		t.Fatalf("first uncommitted write must pass: %v", err)
	}
	tc2 := NewTransContext(100)
	v2 := NewVersion(OpUpdate, key(1), []byte("other"), tc2)
	tc2.Add(v2)
	if _, err := s.Prepend(rec, v2, check); err != errConflict {
		t.Fatalf("second writer must conflict, got %v", err)
	}
}

func TestRollbackUpdate(t *testing.T) {
	s := NewSpace(64)
	rec := &fakeRecord{}
	addVersion(t, s, rec, OpInsert, 1, "v0", 5)
	tc := NewTransContext(9)
	v := NewVersion(OpUpdate, key(1), []byte("dirty"), tc)
	tc.Add(v)
	if _, err := s.Prepend(rec, v, nil); err != nil {
		t.Fatal(err)
	}
	if !s.Rollback(v) {
		t.Fatal("rollback must unlink")
	}
	if s.Rollback(v) {
		t.Fatal("second rollback must be a no-op")
	}
	c := s.HT.Get(key(1))
	if c == nil || c.Len() != 1 {
		t.Fatalf("chain must retain the committed insert")
	}
	if got, _ := c.Visible(10); string(got.Payload) != "v0" {
		t.Fatal("committed version must survive rollback")
	}
	if s.Live() != 1 || s.RolledBackTotal() != 1 {
		t.Fatalf("live=%d rolled=%d", s.Live(), s.RolledBackTotal())
	}
}

func TestRollbackInsertDropsRecord(t *testing.T) {
	s := NewSpace(64)
	rec := &fakeRecord{exists: true}
	tc := NewTransContext(9)
	v := NewVersion(OpInsert, key(7), []byte("new"), tc)
	tc.Add(v)
	if _, err := s.Prepend(rec, v, nil); err != nil {
		t.Fatal(err)
	}
	if !s.Rollback(v) {
		t.Fatal("rollback failed")
	}
	if _, exists, _ := rec.state(); exists {
		t.Fatal("rolled-back insert must drop the record")
	}
	if s.HT.Get(key(7)) != nil {
		t.Fatal("chain must be unregistered")
	}
	if s.HT.ChainCount() != 0 {
		t.Fatal("chain count must drop to zero")
	}
}

func TestReclaimBelowMigratesNewestCandidate(t *testing.T) {
	s := NewSpace(64)
	rec := &fakeRecord{}
	addVersion(t, s, rec, OpInsert, 1, "v0", 5)
	addVersion(t, s, rec, OpUpdate, 1, "v1", 10)
	addVersion(t, s, rec, OpUpdate, 1, "v2", 20)
	c := s.HT.Get(key(1))

	// Horizon 15: v0 and v1 are candidates; v1's image must migrate so a
	// fallback reader at ts in [10,20) still sees "v1".
	res := s.ReclaimBelow(c, 15)
	if res.Versions != 2 || !res.Migrated || res.Dropped || res.Emptied {
		t.Fatalf("unexpected result %+v", res)
	}
	img, exists, versioned := rec.state()
	if img != "v1" || !exists || !versioned {
		t.Fatalf("record state = %q,%v,%v", img, exists, versioned)
	}
	if v, _ := c.Visible(15); v != nil {
		t.Fatal("no chain version may be visible at 15 — fallback covers it")
	}
	if v, _ := c.Visible(20); string(v.Payload) != "v2" {
		t.Fatal("v2 must stay")
	}
	// Idempotence.
	if res := s.ReclaimBelow(c, 15); res.Versions != 0 {
		t.Fatalf("second reclaim must collect nothing, got %+v", res)
	}
	if s.Live() != 1 || s.ReclaimedTotal() != 2 || s.MigratedTotal() != 1 {
		t.Fatalf("live=%d reclaimed=%d migrated=%d", s.Live(), s.ReclaimedTotal(), s.MigratedTotal())
	}
}

func TestReclaimBelowEmptiesChain(t *testing.T) {
	s := NewSpace(64)
	rec := &fakeRecord{}
	addVersion(t, s, rec, OpInsert, 1, "v0", 5)
	addVersion(t, s, rec, OpUpdate, 1, "v1", 10)
	c := s.HT.Get(key(1))

	res := s.ReclaimBelow(c, 100)
	if res.Versions != 2 || !res.Emptied {
		t.Fatalf("unexpected result %+v", res)
	}
	img, exists, versioned := rec.state()
	if img != "v1" || !exists || versioned {
		t.Fatalf("record state = %q,%v,%v; want migrated image, unversioned", img, exists, versioned)
	}
	if s.HT.Get(key(1)) != nil {
		t.Fatal("empty chain must leave the hash table")
	}
}

func TestReclaimBelowDelete(t *testing.T) {
	s := NewSpace(64)
	rec := &fakeRecord{exists: true}
	addVersion(t, s, rec, OpInsert, 1, "v0", 5)
	addVersion(t, s, rec, OpDelete, 1, "", 10)
	c := s.HT.Get(key(1))

	res := s.ReclaimBelow(c, 100)
	if res.Versions != 2 || !res.Dropped || !res.Emptied || res.Migrated {
		t.Fatalf("unexpected result %+v", res)
	}
	if _, exists, _ := rec.state(); exists {
		t.Fatal("migrated DELETE must drop the record")
	}
	if s.HT.Get(key(1)) != nil {
		t.Fatal("chain must be unregistered")
	}
}

func TestReclaimBelowSkipsUncommitted(t *testing.T) {
	s := NewSpace(64)
	rec := &fakeRecord{}
	addVersion(t, s, rec, OpInsert, 1, "v0", 5)
	tc := NewTransContext(9)
	dirty := NewVersion(OpUpdate, key(1), []byte("dirty"), tc)
	tc.Add(dirty)
	if _, err := s.Prepend(rec, dirty, nil); err != nil {
		t.Fatal(err)
	}
	res := s.ReclaimBelow(s.HT.Get(key(1)), 100)
	if res.Versions != 1 || res.Emptied {
		t.Fatalf("must reclaim only the committed version: %+v", res)
	}
	if h := s.HT.Get(key(1)).Head(); h != dirty {
		t.Fatal("uncommitted head must survive")
	}
}

func TestReclaimIntervalsFigure1(t *testing.T) {
	// Figure 1: versions v11..v15 at CIDs 1,2,4,5,99; active snapshots at 3
	// and 99. Interval GC reclaims v11 (interval [1,2)), v13 ([4,5)) and v14
	// ([5,99)); v12 ([2,4)) is pinned by snapshot 3 and v15 ([99,inf)) is the
	// newest.
	s := NewSpace(64)
	rec := &fakeRecord{}
	cidsIn := []ts.CID{1, 2, 4, 5, 99}
	for i, c := range cidsIn {
		op := OpUpdate
		if i == 0 {
			op = OpInsert
		}
		addVersion(t, s, rec, op, 1, fmt.Sprintf("v1%d", i+1), c)
	}
	c := s.HT.Get(key(1))
	n := s.ReclaimIntervals(c, []ts.CID{3, 99}, 100)
	if n != 3 {
		t.Fatalf("reclaimed %d versions, want 3", n)
	}
	left := c.CommittedCIDs()
	if fmt.Sprint(left) != "[2 99]" {
		t.Fatalf("remaining CIDs = %v, want [2 99]", left)
	}
	// Snapshot 3 still reads v12, snapshot 99 reads v15.
	if v, _ := c.Visible(3); string(v.Payload) != "v12" {
		t.Fatal("snapshot 3 must still see v12")
	}
	if v, _ := c.Visible(99); string(v.Payload) != "v15" {
		t.Fatal("snapshot 99 must still see v15")
	}
}

func TestReclaimIntervalsNeverTouchesNewest(t *testing.T) {
	s := NewSpace(64)
	rec := &fakeRecord{}
	addVersion(t, s, rec, OpInsert, 1, "a", 1)
	addVersion(t, s, rec, OpUpdate, 1, "b", 2)
	c := s.HT.Get(key(1))
	if n := s.ReclaimIntervals(c, []ts.CID{100}, 100); n != 1 {
		t.Fatalf("reclaimed %d, want 1 (only the older version)", n)
	}
	if got := c.CommittedCIDs(); fmt.Sprint(got) != "[2]" {
		t.Fatalf("remaining = %v", got)
	}
	if n := s.ReclaimIntervals(c, []ts.CID{100}, 100); n != 0 {
		t.Fatal("single-version chain must not shrink")
	}
}

func TestReclaimIntervalsEmptySnapshotSet(t *testing.T) {
	// With no active snapshots the bound alone governs: everything but the
	// newest committed version below the bound is invisible to any present
	// or future reader.
	s := NewSpace(64)
	rec := &fakeRecord{}
	addVersion(t, s, rec, OpInsert, 1, "a", 1)
	addVersion(t, s, rec, OpUpdate, 1, "b", 2)
	c := s.HT.Get(key(1))
	if n := s.ReclaimIntervals(c, nil, 2); n != 1 {
		t.Fatalf("reclaimed %d with empty S and bound 2, want 1", n)
	}
	if got := c.CommittedCIDs(); fmt.Sprint(got) != "[2]" {
		t.Fatalf("remaining = %v", got)
	}
}

func TestReclaimIntervalsBound(t *testing.T) {
	// Versions above the bound may become visible to snapshots acquired
	// after S was collected; they must never be interval-reclaimed.
	s := NewSpace(64)
	rec := &fakeRecord{}
	addVersion(t, s, rec, OpInsert, 1, "a", 10)
	addVersion(t, s, rec, OpUpdate, 1, "b", 11)
	addVersion(t, s, rec, OpUpdate, 1, "c", 12)
	c := s.HT.Get(key(1))
	// Bound 10 (a snapshot at 11 may be in flight, unregistered): nothing
	// above the bound is eligible.
	if n := s.ReclaimIntervals(c, []ts.CID{10}, 10); n != 0 {
		t.Fatalf("reclaimed %d versions above bound, want 0", n)
	}
	if got := c.CommittedCIDs(); fmt.Sprint(got) != "[10 11 12]" {
		t.Fatalf("remaining = %v", got)
	}
	// Bound 12: version 11 (interval [11,12), no snapshot inside, successor
	// committed at or below the bound) is garbage; version 10 stays pinned
	// by the snapshot at 10.
	if n := s.ReclaimIntervals(c, []ts.CID{10}, 12); n != 1 {
		t.Fatalf("reclaimed %d with bound 12, want 1", n)
	}
	if got := c.CommittedCIDs(); fmt.Sprint(got) != "[10 12]" {
		t.Fatalf("remaining = %v", got)
	}
}

func TestHashTableCollisions(t *testing.T) {
	h := NewHashTable(4) // tiny table forces collisions
	if len(h.buckets) != 4 {
		t.Fatalf("bucket count = %d, want 4", len(h.buckets))
	}
	for i := 0; i < 32; i++ {
		h.GetOrCreate(key(uint64(i)), &fakeRecord{})
	}
	st := h.Stats()
	if st.Chains != 32 {
		t.Fatalf("chains = %d", st.Chains)
	}
	if st.CollisionRatio != 8 {
		t.Fatalf("collision ratio = %v, want 8", st.CollisionRatio)
	}
	if st.MaxBucketLen < 1 || st.OccupiedBuckets == 0 {
		t.Fatalf("stats = %+v", st)
	}
	// Lookups must find every chain.
	for i := 0; i < 32; i++ {
		if h.Get(key(uint64(i))) == nil {
			t.Fatalf("chain %d not found", i)
		}
	}
	if h.Get(key(999)) != nil {
		t.Fatal("absent key must return nil")
	}
	if st := h.Stats(); st.Lookups != 33 {
		t.Fatalf("lookups = %d, want 33", st.Lookups)
	}
}

func TestHashTableRemove(t *testing.T) {
	h := NewHashTable(2)
	a := h.GetOrCreate(key(1), &fakeRecord{})
	b := h.GetOrCreate(key(2), &fakeRecord{})
	cch := h.GetOrCreate(key(3), &fakeRecord{})
	h.Remove(b)
	if h.Get(key(2)) != nil {
		t.Fatal("removed chain still found")
	}
	if h.Get(key(1)) != a || h.Get(key(3)) != cch {
		t.Fatal("other chains must survive removal")
	}
	h.Remove(a)
	h.Remove(cch)
	if h.ChainCount() != 0 {
		t.Fatalf("chain count = %d", h.ChainCount())
	}
}

func TestForEach(t *testing.T) {
	h := NewHashTable(8)
	for i := 0; i < 10; i++ {
		h.GetOrCreate(key(uint64(i)), &fakeRecord{})
	}
	n := 0
	h.ForEach(func(*Chain) bool { n++; return true })
	if n != 10 {
		t.Fatalf("visited %d chains, want 10", n)
	}
	n = 0
	h.ForEach(func(*Chain) bool { n++; return n < 3 })
	if n != 3 {
		t.Fatalf("early stop visited %d", n)
	}
}

// TestConcurrentReadersDuringReclaim hammers one chain with readers while a
// collector repeatedly reclaims; readers must always observe either a valid
// chain version or the migrated table image, never a torn state.
func TestConcurrentReadersDuringReclaim(t *testing.T) {
	s := NewSpace(256)
	rec := &fakeRecord{}
	var next atomic.Uint64
	next.Store(1)
	addVersion(t, s, rec, OpInsert, 1, "img-1", 1)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	// Writer: keeps appending committed versions.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 3000; i++ {
			cid := ts.CID(next.Add(1))
			tc := NewTransContext(uint64(cid))
			v := NewVersion(OpUpdate, key(1), []byte(fmt.Sprintf("img-%d", cid)), tc)
			tc.Add(v)
			if _, err := s.Prepend(rec, v, nil); err != nil {
				t.Errorf("prepend: %v", err)
				return
			}
			commitOne(s, v, cid)
		}
		close(stop)
	}()
	// Collector: reclaims below the current horizon.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if c := s.HT.Get(key(1)); c != nil {
				s.ReclaimBelow(c, ts.CID(next.Load()))
			}
		}
	}()
	// Readers: snapshot at the current horizon must always see something.
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				at := ts.CID(next.Load())
				var img string
				if c := s.HT.Get(key(1)); c != nil {
					if v, _ := c.Visible(at); v != nil {
						img = string(v.Payload)
					}
				}
				if img == "" {
					got, exists, _ := rec.state()
					if !exists {
						t.Error("record vanished for reader")
						return
					}
					img = got
				}
				if img == "" {
					t.Error("reader observed empty image")
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestReclaimQuickModel property-checks the two reclamation primitives with
// testing/quick: for random version histories and random pinned snapshot
// sets, interval and timestamp reclamation must preserve exactly what every
// pinned snapshot (and any future reader) observes, and must be idempotent.
func TestReclaimQuickModel(t *testing.T) {
	f := func(seed uint64) bool {
		rnd := seed
		next := func(n int) int {
			rnd = rnd*6364136223846793005 + 1442695040888963407
			return int((rnd >> 33) % uint64(n))
		}
		s := NewSpace(64)
		rec := &fakeRecord{}
		// Build a committed history with strictly increasing CIDs.
		nVersions := 2 + next(10)
		cids := make([]ts.CID, 0, nVersions)
		cid := ts.CID(0)
		for i := 0; i < nVersions; i++ {
			cid += ts.CID(1 + next(4))
			op := OpUpdate
			if i == 0 {
				op = OpInsert
			}
			addVersion(t, s, rec, op, 1, fmt.Sprintf("img-%d", cid), cid)
			cids = append(cids, cid)
		}
		maxCID := cids[len(cids)-1]
		// Random pinned snapshot set within [1, maxCID].
		var snaps []ts.CID
		for v := ts.CID(1); v <= maxCID; v++ {
			if next(3) == 0 {
				snaps = append(snaps, v)
			}
		}
		// Model: visible image at ts = newest cid <= ts.
		modelAt := func(at ts.CID) (string, bool) {
			var out string
			found := false
			for _, c := range cids {
				if c <= at {
					out = fmt.Sprintf("img-%d", c)
					found = true
				}
			}
			return out, found
		}
		readAt := func(at ts.CID) (string, bool) {
			if ch := s.HT.Get(key(1)); ch != nil {
				if v, _ := ch.Visible(at); v != nil {
					return string(v.Payload), true
				}
			}
			img, exists, _ := rec.state()
			if !exists || img == "" {
				return "", false
			}
			return img, true
		}
		check := func() bool {
			// Every pinned snapshot and every future reader (ts >= maxCID)
			// must read the model's answer.
			probes := append(append([]ts.CID{}, snaps...), maxCID, maxCID+3)
			for _, at := range probes {
				wantImg, wantOK := modelAt(at)
				gotImg, gotOK := readAt(at)
				if wantOK != gotOK || (wantOK && wantImg != gotImg) {
					return false
				}
			}
			return true
		}
		ch := s.HT.Get(key(1))
		// Random interleaving of the two primitives, then both again for
		// idempotence.
		minSnap := maxCID + 1
		if len(snaps) > 0 {
			minSnap = snaps[0]
		}
		for pass := 0; pass < 2; pass++ {
			if next(2) == 0 {
				s.ReclaimIntervals(ch, snaps, maxCID)
				if !check() {
					return false
				}
			}
			s.ReclaimBelow(ch, minSnap)
			if !check() {
				return false
			}
			s.ReclaimIntervals(ch, snaps, maxCID)
			if !check() {
				return false
			}
		}
		// Idempotence: nothing further to reclaim.
		if n := s.ReclaimIntervals(ch, snaps, maxCID); n != 0 {
			return false
		}
		if res := s.ReclaimBelow(ch, minSnap); res.Versions != 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestLiveBytesAccounting(t *testing.T) {
	s := NewSpace(64)
	rec := &fakeRecord{}
	v := addVersion(t, s, rec, OpInsert, 1, "four", 5)
	want := int64(versionHeaderBytes + 4)
	if got := s.LiveBytes(); got != want {
		t.Fatalf("LiveBytes = %d, want %d", got, want)
	}
	addVersion(t, s, rec, OpUpdate, 1, "sixsix", 10)
	want += versionHeaderBytes + 6
	if got := s.LiveBytes(); got != want {
		t.Fatalf("LiveBytes = %d, want %d", got, want)
	}
	_ = v
	// Full reclamation returns to zero.
	s.ReclaimBelow(s.HT.Get(key(1)), 100)
	if got := s.LiveBytes(); got != 0 {
		t.Fatalf("LiveBytes after reclaim = %d", got)
	}
	// Rollback accounting.
	tc := NewTransContext(9)
	d := NewVersion(OpUpdate, key(2), []byte("x"), tc)
	tc.Add(d)
	rec2 := &fakeRecord{}
	if _, err := s.Prepend(rec2, d, nil); err != nil {
		t.Fatal(err)
	}
	if got := s.LiveBytes(); got != versionHeaderBytes+1 {
		t.Fatalf("LiveBytes = %d", got)
	}
	s.Rollback(d)
	if got := s.LiveBytes(); got != 0 {
		t.Fatalf("LiveBytes after rollback = %d", got)
	}
}
