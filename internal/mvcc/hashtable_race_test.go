package mvcc

import (
	"sync"
	"testing"

	"hybridgc/internal/ts"
)

// TestHashGetRacesGetOrCreate hammers lock-free Get against concurrent
// GetOrCreate on overlapping keys. Run under -race this checks the
// publish-before-visible property: a reader must never observe a chain whose
// Key or Rec fields are still being initialized.
func TestHashGetRacesGetOrCreate(t *testing.T) {
	ht := NewHashTable(64) // tiny table -> long collision lists
	const keys = 1 << 10
	const writers, readers = 4, 4
	var wwg, rwg sync.WaitGroup
	stop := make(chan struct{})

	for w := 0; w < writers; w++ {
		wwg.Add(1)
		go func(seed uint64) {
			defer wwg.Done()
			x := seed
			for i := 0; i < 20000; i++ {
				x = x*6364136223846793005 + 1442695040888963407
				k := ts.RecordKey{Table: 1, RID: ts.RID(x%keys + 1)}
				c := ht.GetOrCreate(k, &fakeRecord{})
				if c.Key != k {
					t.Errorf("GetOrCreate returned chain for %v, want %v", c.Key, k)
					return
				}
			}
		}(uint64(w)*0x9e3779b97f4a7c15 + 1)
	}
	for r := 0; r < readers; r++ {
		rwg.Add(1)
		go func(seed uint64) {
			defer rwg.Done()
			x := seed
			for {
				select {
				case <-stop:
					return
				default:
				}
				x = x*6364136223846793005 + 1442695040888963407
				k := ts.RecordKey{Table: 1, RID: ts.RID(x%keys + 1)}
				if c := ht.Get(k); c != nil {
					if c.Key != k {
						t.Errorf("Get(%v) returned chain keyed %v", k, c.Key)
						return
					}
					if c.Rec == nil {
						t.Errorf("Get(%v) observed chain with nil Rec", k)
						return
					}
				}
			}
		}(uint64(r)*0xbf58476d1ce4e5b9 + 7)
	}

	wwg.Wait()
	close(stop)
	rwg.Wait()

	if got := ht.ChainCount(); got != keys {
		t.Fatalf("ChainCount = %d, want %d", got, keys)
	}
}

// TestHashGetRacesRemove races lock-free Get against the GC unlink path:
// mark a chain dead under its latch, then HashTable.Remove it, exactly as
// Space.dropChainIfEmpty does. Readers must always either find the live
// chain for a key or miss entirely — never crash, never loop forever, and
// never observe a chain for the wrong key.
func TestHashGetRacesRemove(t *testing.T) {
	ht := NewHashTable(16) // tiny table -> every bucket has a long list
	const keys = 512
	mk := func(i int) ts.RecordKey { return ts.RecordKey{Table: 1, RID: ts.RID(i + 1)} }
	for i := 0; i < keys; i++ {
		ht.GetOrCreate(mk(i), &fakeRecord{})
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			x := seed
			for {
				select {
				case <-stop:
					return
				default:
				}
				x = x*6364136223846793005 + 1442695040888963407
				k := mk(int(x % keys))
				if c := ht.Get(k); c != nil && c.Key != k {
					t.Errorf("Get(%v) returned chain keyed %v", k, c.Key)
					return
				}
			}
		}(uint64(r) + 1)
	}

	// Churn: repeatedly remove and re-create every key, following the
	// collector's protocol (dead under latch, then unlink).
	for round := 0; round < 50; round++ {
		for i := 0; i < keys; i++ {
			c := ht.Get(mk(i))
			if c == nil {
				t.Fatalf("round %d: chain %d missing before remove", round, i)
			}
			c.mu.Lock()
			c.dead = true
			c.mu.Unlock()
			ht.Remove(c)
		}
		if got := ht.ChainCount(); got != 0 {
			t.Fatalf("round %d: ChainCount = %d after removing all", round, got)
		}
		for i := 0; i < keys; i++ {
			ht.GetOrCreate(mk(i), &fakeRecord{})
		}
	}
	close(stop)
	wg.Wait()

	if got := ht.ChainCount(); got != keys {
		t.Fatalf("ChainCount = %d, want %d", got, keys)
	}
}

// TestHashStripedStats checks that the striped lookup counters sum correctly
// across concurrent readers.
func TestHashStripedStats(t *testing.T) {
	ht := NewHashTable(64)
	const keys = 256
	for i := 0; i < keys; i++ {
		ht.GetOrCreate(ts.RecordKey{Table: 1, RID: ts.RID(i + 1)}, &fakeRecord{})
	}
	const goroutines, perG = 8, 5000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			x := seed
			for i := 0; i < perG; i++ {
				x = x*6364136223846793005 + 1442695040888963407
				ht.Get(ts.RecordKey{Table: 1, RID: ts.RID(x%keys + 1)})
			}
		}(uint64(g) + 1)
	}
	wg.Wait()
	st := ht.Stats()
	if st.Lookups != goroutines*perG {
		t.Fatalf("Lookups = %d, want %d", st.Lookups, goroutines*perG)
	}
	// 256 chains over 64 buckets: collision lists are 4 deep on average, so
	// extra hops must have been recorded.
	if st.ExtraHops == 0 {
		t.Fatal("ExtraHops = 0, want > 0 with 4-deep collision lists")
	}
}
