package mvcc

import (
	"sync"
	"sync/atomic"

	"hybridgc/internal/ts"
)

// RecordRef is the version space's handle on a record in the table space. It
// is how garbage collection migrates the newest reclaimable image out of the
// version space ("the added data is moved to the table space once it is
// certain that there is no potential reader to the original data", §2.2) and
// maintains the record's is_versioned flag.
type RecordRef interface {
	// InstallImage replaces the table-space image of the record. A nil image
	// never reaches this method; DELETE migration uses DropRecord.
	InstallImage(img []byte)
	// DropRecord removes the record from the table space entirely (a DELETE
	// version migrated, or an INSERT rolled back).
	DropRecord()
	// SetVersioned maintains the record's is_versioned flag: true while the
	// record has a version chain, false once the chain disappears so readers
	// can skip the RID hash table lookup.
	SetVersioned(bool)
}

// Chain is one record's version chain: record versions with the same RID
// linked in latest-first order (§2.2). The head pointer lives in the RID
// hash table; readers traverse lock-free, writers and collectors serialize
// on the chain latch.
type Chain struct {
	Key ts.RecordKey
	Rec RecordRef

	mu   sync.Mutex
	head atomic.Pointer[Version]
	// dead marks a chain that has been unlinked from the hash table; writers
	// that raced with the removal retry their lookup.
	dead bool

	// bucketNext links chains within one hash bucket. Writes happen under
	// the bucket mutex; reads are lock-free atomic loads (HashTable.Get).
	// After an unlink the pointer is left intact so in-flight readers keep
	// traversing the bucket.
	bucketNext atomic.Pointer[Chain]

	length atomic.Int32
}

// Head returns the latest version, committed or not (nil for an empty chain).
func (c *Chain) Head() *Version { return c.head.Load() }

// Len returns the number of versions currently linked.
func (c *Chain) Len() int { return int(c.length.Load()) }

// Visible returns the newest committed version with CID <= at, traversing
// latest-first, together with the number of version entries examined (the
// traversal cost reported in Figure 15). It returns nil when no chain
// version is visible, in which case the reader falls back to the table-space
// image.
func (c *Chain) Visible(at ts.CID) (v *Version, steps int) {
	return c.VisibleAs(at, nil)
}

// VisibleAs is Visible with own-write visibility: uncommitted versions
// created by the given transaction context are visible to it (a transaction
// always sees its own writes, regardless of statement snapshots).
func (c *Chain) VisibleAs(at ts.CID, own *TransContext) (v *Version, steps int) {
	for cur := c.head.Load(); cur != nil; cur = cur.Older() {
		steps++
		if cid := cur.CID(); cid != ts.Invalid && cid <= at {
			return cur, steps
		} else if cid == ts.Invalid && own != nil && cur.tctx == own {
			return cur, steps
		}
	}
	return nil, steps
}

// CommittedAscending returns the chain's committed versions and their CIDs in
// ascending CID order — the T sequence of Definition 1. Uncommitted versions
// (always the newest, at the head) are excluded. Must be called with the
// chain latch held.
func (c *Chain) committedAscendingLocked() ([]*Version, []ts.CID) {
	var vs []*Version
	for cur := c.head.Load(); cur != nil; cur = cur.Older() {
		if cur.Committed() {
			vs = append(vs, cur)
		}
	}
	// Chain order is latest-first; reverse into ascending CID order.
	for i, j := 0, len(vs)-1; i < j; i, j = i+1, j-1 {
		vs[i], vs[j] = vs[j], vs[i]
	}
	cids := make([]ts.CID, len(vs))
	for i, v := range vs {
		cids[i] = v.CID()
	}
	return vs, cids
}

// CommittedCIDs returns the chain's committed CIDs in ascending order.
func (c *Chain) CommittedCIDs() []ts.CID {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, cids := c.committedAscendingLocked()
	return cids
}

// prependLocked links v as the new head. Caller holds the chain latch.
func (c *Chain) prependLocked(v *Version) {
	v.chain = c
	v.older.Store(c.head.Load())
	c.head.Store(v)
	c.length.Add(1)
}

// spliceOutLocked unlinks v from the chain, preserving v's own older pointer
// so that in-flight readers holding v can keep traversing. Returns true if v
// was found. Caller holds the chain latch.
func (c *Chain) spliceOutLocked(v *Version) bool {
	cur := c.head.Load()
	if cur == v {
		c.head.Store(v.Older())
		c.length.Add(-1)
		return true
	}
	for cur != nil {
		next := cur.Older()
		if next == v {
			cur.older.Store(v.Older())
			c.length.Add(-1)
			return true
		}
		cur = next
	}
	return false
}
