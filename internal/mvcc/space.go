package mvcc

import (
	"errors"
	"sync/atomic"

	"hybridgc/internal/ts"
)

// ErrRetry is returned internally when a chain was removed during a race;
// Space methods loop on it and callers never observe it.
var errDeadChain = errors.New("mvcc: chain removed concurrently")

// Space is the version space: the RID hash table of version chains, the
// ordered group-commit list, and the global version accounting that the
// evaluation section reports ("Active Versions").
type Space struct {
	HT     *HashTable
	Groups *GroupList

	live      atomic.Int64 // versions currently linked in chains
	liveBytes atomic.Int64 // payload + header bytes of live versions
	created   atomic.Int64 // versions ever created
	reclaimed atomic.Int64 // versions unlinked by garbage collection
	rolled    atomic.Int64 // versions undone by rollback
	migrated  atomic.Int64 // images migrated into the table space
}

// versionHeaderBytes approximates the fixed per-version cost (header,
// pointers, bookkeeping) added to the payload when accounting memory — the
// "Used Memory" indicator of Figure 2.
const versionHeaderBytes = 96

// footprint is one version's accounted size.
func footprint(v *Version) int64 {
	return versionHeaderBytes + int64(len(v.Payload))
}

// NewSpace creates a version space with the given hash table size (<=0 picks
// the default).
func NewSpace(buckets int) *Space {
	return &Space{HT: NewHashTable(buckets), Groups: NewGroupList()}
}

// Live returns the number of record versions currently in the version space
// (the "number of record versions" series of Figures 10 and 17).
func (s *Space) Live() int64 { return s.live.Load() }

// LiveBytes returns the accounted memory of live versions (payloads plus a
// fixed per-version header cost) — Figure 2's "Used Memory".
func (s *Space) LiveBytes() int64 { return s.liveBytes.Load() }

// Created returns the number of versions ever appended.
func (s *Space) Created() int64 { return s.created.Load() }

// ReclaimedTotal returns the number of versions reclaimed by collectors.
func (s *Space) ReclaimedTotal() int64 { return s.reclaimed.Load() }

// MigratedTotal returns the number of images migrated to the table space.
func (s *Space) MigratedTotal() int64 { return s.migrated.Load() }

// RolledBackTotal returns the number of versions undone by rollbacks.
func (s *Space) RolledBackTotal() int64 { return s.rolled.Load() }

// Prepend links v as the newest version of its record. check, if non-nil,
// runs under the chain latch against the current head and may veto the write
// (write-write conflict detection); a veto aborts the link and returns the
// veto error. The record's is_versioned flag is raised.
func (s *Space) Prepend(rec RecordRef, v *Version, check func(head *Version) error) (*Chain, error) {
	for {
		c := s.HT.GetOrCreate(v.Key, rec)
		err := func() error {
			c.mu.Lock()
			defer c.mu.Unlock()
			if c.dead {
				return errDeadChain
			}
			if check != nil {
				if err := check(c.head.Load()); err != nil {
					return err
				}
			}
			c.prependLocked(v)
			rec.SetVersioned(true)
			return nil
		}()
		switch {
		case err == nil:
			s.live.Add(1)
			s.liveBytes.Add(footprint(v))
			s.created.Add(1)
			return c, nil
		case errors.Is(err, errDeadChain):
			continue // chain was collected out from under us; retry lookup
		default:
			return nil, err
		}
	}
}

// Rollback undoes an uncommitted version: it is spliced out of its chain,
// and when that empties the chain the chain is dropped from the hash table.
// For a rolled-back INSERT the record itself is dropped from the table
// space; otherwise the record's is_versioned flag is cleared when the chain
// disappears. Reports whether the version was actually unlinked.
func (s *Space) Rollback(v *Version) bool {
	c := v.chain
	if c == nil {
		return false
	}
	c.mu.Lock()
	if c.dead || !c.spliceOutLocked(v) {
		c.mu.Unlock()
		return false
	}
	emptied := c.head.Load() == nil
	if emptied {
		c.dead = true
		if v.Op == OpInsert {
			c.Rec.DropRecord()
		} else {
			c.Rec.SetVersioned(false)
		}
	}
	c.mu.Unlock()
	if emptied {
		s.HT.Remove(c)
	}
	s.live.Add(-1)
	s.liveBytes.Add(-footprint(v))
	s.rolled.Add(1)
	return true
}

// ReclaimResult reports what one chain-level reclamation did.
type ReclaimResult struct {
	Versions int  // versions unlinked
	Migrated bool // an image moved into the table space
	Dropped  bool // the record was deleted from the table space
	Emptied  bool // the chain disappeared from the hash table
}

// ReclaimBelow performs timestamp-based reclamation on one chain: every
// committed version with CID < min is unlinked; the newest of them first has
// its effect migrated into the table space (image installed, or record
// dropped for DELETE). This is the chain-level primitive behind the ST, GT
// and TG collectors. It is idempotent: a second call with the same horizon
// reclaims nothing.
func (s *Space) ReclaimBelow(c *Chain, min ts.CID) ReclaimResult {
	var res ReclaimResult
	c.mu.Lock()
	if c.dead {
		c.mu.Unlock()
		return res
	}
	// Find the newest committed version below the horizon and its newer
	// neighbor. The chain is latest-first, so candidates form the suffix.
	var newer, boundary *Version
	for cur := c.head.Load(); cur != nil; cur = cur.Older() {
		if cid := cur.CID(); cid != ts.Invalid && cid < min {
			boundary = cur
			break
		}
		newer = cur
	}
	if boundary == nil {
		c.mu.Unlock()
		return res
	}
	// Migrate the boundary version's effect into the table space before
	// detaching, so fallback readers observe the same image.
	switch boundary.Op {
	case OpDelete:
		c.Rec.DropRecord()
		res.Dropped = true
	default:
		c.Rec.InstallImage(boundary.Payload)
		res.Migrated = true
	}
	// Detach the whole suffix starting at boundary.
	if newer == nil {
		c.head.Store(nil)
	} else {
		newer.older.Store(nil)
	}
	var freed int64
	for cur := boundary; cur != nil; cur = cur.Older() {
		if cur.markReclaimed() {
			res.Versions++
			freed += footprint(cur)
		}
	}
	c.length.Add(int32(-res.Versions))
	if c.head.Load() == nil {
		c.dead = true
		res.Emptied = true
		if !res.Dropped {
			c.Rec.SetVersioned(false)
		}
	}
	c.mu.Unlock()

	if res.Emptied {
		s.HT.Remove(c)
	}
	s.live.Add(int64(-res.Versions))
	s.liveBytes.Add(-freed)
	s.reclaimed.Add(int64(res.Versions))
	if res.Migrated {
		s.migrated.Add(1)
	}
	return res
}

// ReclaimIntervals performs interval-based reclamation on one chain (§4.2
// step 4): with snaps the ascending active snapshot timestamps, every
// committed version whose visible interval contains no snapshot is unlinked.
//
// Two safety bounds apply. The newest committed version is never touched
// (its interval extends to infinity). And only versions whose successor's
// CID is at or below bound are considered, where bound must be a commit
// timestamp captured atomically with snaps such that every snapshot
// registered afterwards has timestamp >= bound (the transaction manager's
// SnapshotSetAndBound provides exactly this). A version above the bound
// could still become visible to a snapshot acquired after snaps was
// collected — §4.2 step 2 bounds its group scan by max(S) for the same
// reason; using the commit timestamp collects strictly more while remaining
// safe, since no present or future snapshot can land below bound outside
// snaps.
//
// Interval reclamation removes versions strictly in the middle of the
// committed history, so the chain never empties here and nothing migrates to
// the table space. Returns the number of versions reclaimed.
func (s *Space) ReclaimIntervals(c *Chain, snaps []ts.CID, bound ts.CID) int {
	c.mu.Lock()
	if c.dead {
		c.mu.Unlock()
		return 0
	}
	vs, cids := c.committedAscendingLocked()
	for len(cids) > 0 && cids[len(cids)-1] > bound {
		vs, cids = vs[:len(vs)-1], cids[:len(cids)-1]
	}
	if len(vs) < 2 {
		c.mu.Unlock()
		return 0
	}
	mask := ts.GarbageMask(snaps, cids)
	n := 0
	var freed int64
	for i, garbage := range mask {
		if garbage && c.spliceOutLocked(vs[i]) && vs[i].markReclaimed() {
			n++
			freed += footprint(vs[i])
		}
	}
	c.mu.Unlock()
	s.live.Add(int64(-n))
	s.liveBytes.Add(-freed)
	s.reclaimed.Add(int64(n))
	return n
}

// ReclaimVersionIf unlinks a single committed version when decide approves
// the pair (version CID, successor CID), where the successor is the next
// newer committed version in the chain. Versions without a committed
// successor — the newest committed version — are never eligible, preserving
// the table-space fallback invariant. This is the primitive behind the
// group-interval collector, which batches the decision per
// (group, successor-group) subgroup. Returns whether v was reclaimed.
func (s *Space) ReclaimVersionIf(v *Version, decide func(self, successor ts.CID) bool) bool {
	c := v.chain
	if c == nil || v.Reclaimed() {
		return false
	}
	c.mu.Lock()
	if c.dead || v.Reclaimed() || !v.Committed() {
		c.mu.Unlock()
		return false
	}
	// Find the closest committed version newer than v by walking from the
	// head; cur holds the candidate successor seen so far.
	var successor *Version
	for cur := c.head.Load(); cur != nil && cur != v; cur = cur.Older() {
		if cur.Committed() {
			successor = cur
		}
	}
	if successor == nil {
		c.mu.Unlock()
		return false
	}
	if !decide(v.CID(), successor.CID()) || !c.spliceOutLocked(v) || !v.markReclaimed() {
		c.mu.Unlock()
		return false
	}
	c.mu.Unlock()
	s.live.Add(-1)
	s.liveBytes.Add(-footprint(v))
	s.reclaimed.Add(1)
	return true
}
