package mvcc

import (
	"sync"
	"sync/atomic"

	"hybridgc/internal/metrics"
	"hybridgc/internal/ts"
)

// HashTable is the central RID hash table of §2.2: a fixed array of buckets,
// each holding a linked list of version chains. When several chains land in
// one bucket, lookups pay extra pointer traversals — the collision cost whose
// impact Figure 13 measures — so the table exposes collision statistics.
//
// Reads are lock-free: bucket heads and the intra-bucket links are atomic
// pointers, so Get walks the collision list without taking the bucket mutex.
// The mutex serializes only the mutators (insert in GetOrCreate, unlink in
// Remove). The memory model argument for why a lock-free reader is safe
// against a concurrent unlink is spelled out in DESIGN.md §10; the short
// version is that an unlinked chain keeps its forward pointer, so a reader
// standing on it still reaches the rest of the bucket, and the chain's own
// `dead` flag (set under the chain latch before Remove is called) makes
// writers that raced with the removal retry their lookup.
type HashTable struct {
	buckets []hashBucket
	mask    uint64
	chains  atomic.Int64
	// stats fuses the lookup and extra-hop counters, striped so the
	// statistics do not serialize lock-free readers on a shared cache line;
	// the key hash (already computed for bucket selection) spreads
	// concurrent readers over the stripes, and fusing the pair keeps both
	// updates on one line per lookup.
	stats metrics.StripedPair
}

type hashBucket struct {
	mu   sync.Mutex // serializes insert/unlink; readers never take it
	head atomic.Pointer[Chain]
}

// DefaultBuckets is the default RID hash table size. It is deliberately
// moderate so that an ineffective garbage collector visibly drives up the
// collision ratio, as in the paper's row store.
const DefaultBuckets = 1 << 14

// NewHashTable creates a table with at least n buckets (rounded up to a
// power of two; n<=0 selects DefaultBuckets).
func NewHashTable(n int) *HashTable {
	if n <= 0 {
		n = DefaultBuckets
	}
	size := 1
	for size < n {
		size <<= 1
	}
	return &HashTable{
		buckets: make([]hashBucket, size),
		mask:    uint64(size - 1),
	}
}

// hashKey mixes the (table, RID) pair with a splitmix64 finalizer.
func hashKey(k ts.RecordKey) uint64 {
	x := uint64(k.RID)*0x9e3779b97f4a7c15 ^ (uint64(k.Table) << 56)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Get returns the chain registered for key, or nil. It records the pointer
// hops spent walking the bucket's collision list. The walk is lock-free: it
// loads the bucket head and follows atomic bucketNext links, so concurrent
// inserts and GC unlinks never block a reader. A chain returned here may
// already be marked dead by a concurrent collector; callers that mutate take
// the chain latch and re-check, exactly as they did when Get held the bucket
// mutex — the race window merely moved from after Get to inside it.
func (h *HashTable) Get(key ts.RecordKey) *Chain {
	hk := hashKey(key)
	var found *Chain
	hops := int64(0)
	for c := h.buckets[hk&h.mask].head.Load(); c != nil; c = c.bucketNext.Load() {
		if c.Key == key {
			found = c
			break
		}
		hops++
	}
	// Stripe by the high hash bits: the low bits picked the bucket, so using
	// them again would correlate stripe contention with bucket contention.
	hint := hk >> 48
	if hops > 0 {
		h.stats.AddBoth(hint, 1, hops)
	} else {
		h.stats.AddA(hint, 1)
	}
	return found
}

// GetOrCreate returns the chain for key, creating and registering an empty
// one bound to rec if absent. The scan and insert run under the bucket
// mutex, serialized against other mutators; the new chain is published with
// an atomic store so lock-free readers observe a fully initialized Chain.
func (h *HashTable) GetOrCreate(key ts.RecordKey, rec RecordRef) *Chain {
	b := &h.buckets[hashKey(key)&h.mask]
	b.mu.Lock()
	defer b.mu.Unlock()
	for c := b.head.Load(); c != nil; c = c.bucketNext.Load() {
		if c.Key == key {
			return c
		}
	}
	c := &Chain{Key: key, Rec: rec}
	c.bucketNext.Store(b.head.Load())
	b.head.Store(c)
	h.chains.Add(1)
	return c
}

// Remove unlinks chain c from its bucket. The caller must have marked the
// chain dead under its latch first, so racing writers retry GetOrCreate and
// observe a fresh chain rather than resurrecting this one.
//
// The unlinked chain's bucketNext is deliberately left intact: a lock-free
// reader that loaded c just before the unlink keeps following it to the rest
// of the bucket. New lookups can no longer reach c, and Go's garbage
// collector reclaims it once the last reader moves on — no epoch or hazard
// scheme is needed.
func (h *HashTable) Remove(c *Chain) {
	b := &h.buckets[hashKey(c.Key)&h.mask]
	b.mu.Lock()
	defer b.mu.Unlock()
	switch {
	case b.head.Load() == c:
		b.head.Store(c.bucketNext.Load())
	default:
		for p := b.head.Load(); p != nil; p = p.bucketNext.Load() {
			if p.bucketNext.Load() == c {
				p.bucketNext.Store(c.bucketNext.Load())
				break
			}
		}
	}
	h.chains.Add(-1)
}

// ForEach visits every registered chain until fn returns false. Buckets are
// visited in order; each bucket's membership is copied under its mutex (a
// stable snapshot against concurrent insert/unlink) so fn runs without
// holding it.
func (h *HashTable) ForEach(fn func(*Chain) bool) {
	var batch []*Chain
	for i := range h.buckets {
		b := &h.buckets[i]
		b.mu.Lock()
		batch = batch[:0]
		for c := b.head.Load(); c != nil; c = c.bucketNext.Load() {
			batch = append(batch, c)
		}
		b.mu.Unlock()
		for _, c := range batch {
			if !fn(c) {
				return
			}
		}
	}
}

// HashStats summarizes the table's collision state.
type HashStats struct {
	Buckets         int
	Chains          int64
	OccupiedBuckets int
	MaxBucketLen    int
	// CollisionRatio is the average number of version chains per bucket —
	// the metric of Figure 13 (a ratio of 10 means 10 chains share a bucket
	// on average).
	CollisionRatio float64
	// AvgPerOccupied is the mean chain count over non-empty buckets only.
	AvgPerOccupied float64
	Lookups        int64
	ExtraHops      int64
}

// Stats scans the buckets and returns collision statistics.
func (h *HashTable) Stats() HashStats {
	st := HashStats{Buckets: len(h.buckets), Chains: h.chains.Load()}
	st.Lookups, st.ExtraHops = h.stats.Sums()
	for i := range h.buckets {
		b := &h.buckets[i]
		b.mu.Lock()
		n := 0
		for c := b.head.Load(); c != nil; c = c.bucketNext.Load() {
			n++
		}
		b.mu.Unlock()
		if n > 0 {
			st.OccupiedBuckets++
			if n > st.MaxBucketLen {
				st.MaxBucketLen = n
			}
		}
	}
	st.CollisionRatio = float64(st.Chains) / float64(st.Buckets)
	if st.OccupiedBuckets > 0 {
		st.AvgPerOccupied = float64(st.Chains) / float64(st.OccupiedBuckets)
	}
	return st
}

// ChainCount returns the number of registered chains.
func (h *HashTable) ChainCount() int64 { return h.chains.Load() }
