package mvcc

import (
	"sync"
	"sync/atomic"

	"hybridgc/internal/ts"
)

// HashTable is the central RID hash table of §2.2: a fixed array of buckets,
// each holding a linked list of version chains. When several chains land in
// one bucket, lookups pay extra pointer traversals — the collision cost whose
// impact Figure 13 measures — so the table exposes collision statistics.
type HashTable struct {
	buckets []hashBucket
	mask    uint64
	chains  atomic.Int64
	// lookups/extraHops measure the navigation cost caused by collisions.
	lookups   atomic.Int64
	extraHops atomic.Int64
}

type hashBucket struct {
	mu   sync.Mutex
	head *Chain
}

// DefaultBuckets is the default RID hash table size. It is deliberately
// moderate so that an ineffective garbage collector visibly drives up the
// collision ratio, as in the paper's row store.
const DefaultBuckets = 1 << 14

// NewHashTable creates a table with at least n buckets (rounded up to a
// power of two; n<=0 selects DefaultBuckets).
func NewHashTable(n int) *HashTable {
	if n <= 0 {
		n = DefaultBuckets
	}
	size := 1
	for size < n {
		size <<= 1
	}
	return &HashTable{
		buckets: make([]hashBucket, size),
		mask:    uint64(size - 1),
	}
}

// hashKey mixes the (table, RID) pair with a splitmix64 finalizer.
func hashKey(k ts.RecordKey) uint64 {
	x := uint64(k.RID)*0x9e3779b97f4a7c15 ^ (uint64(k.Table) << 56)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Get returns the chain registered for key, or nil. It records the pointer
// hops spent walking the bucket's collision list.
func (h *HashTable) Get(key ts.RecordKey) *Chain {
	b := &h.buckets[hashKey(key)&h.mask]
	b.mu.Lock()
	defer b.mu.Unlock()
	h.lookups.Add(1)
	hops := int64(0)
	for c := b.head; c != nil; c = c.bucketNext {
		if c.Key == key {
			h.extraHops.Add(hops)
			return c
		}
		hops++
	}
	h.extraHops.Add(hops)
	return nil
}

// GetOrCreate returns the chain for key, creating and registering an empty
// one bound to rec if absent.
func (h *HashTable) GetOrCreate(key ts.RecordKey, rec RecordRef) *Chain {
	b := &h.buckets[hashKey(key)&h.mask]
	b.mu.Lock()
	defer b.mu.Unlock()
	for c := b.head; c != nil; c = c.bucketNext {
		if c.Key == key {
			return c
		}
	}
	c := &Chain{Key: key, Rec: rec}
	c.bucketNext = b.head
	b.head = c
	h.chains.Add(1)
	return c
}

// Remove unlinks chain c from its bucket. The caller must have marked the
// chain dead under its latch first, so racing writers retry GetOrCreate and
// observe a fresh chain rather than resurrecting this one.
func (h *HashTable) Remove(c *Chain) {
	b := &h.buckets[hashKey(c.Key)&h.mask]
	b.mu.Lock()
	defer b.mu.Unlock()
	switch {
	case b.head == c:
		b.head = c.bucketNext
	default:
		for p := b.head; p != nil; p = p.bucketNext {
			if p.bucketNext == c {
				p.bucketNext = c.bucketNext
				break
			}
		}
	}
	c.bucketNext = nil
	h.chains.Add(-1)
}

// ForEach visits every registered chain until fn returns false. Buckets are
// visited in order; each bucket's membership is copied under its lock so fn
// runs without holding it.
func (h *HashTable) ForEach(fn func(*Chain) bool) {
	var batch []*Chain
	for i := range h.buckets {
		b := &h.buckets[i]
		b.mu.Lock()
		batch = batch[:0]
		for c := b.head; c != nil; c = c.bucketNext {
			batch = append(batch, c)
		}
		b.mu.Unlock()
		for _, c := range batch {
			if !fn(c) {
				return
			}
		}
	}
}

// HashStats summarizes the table's collision state.
type HashStats struct {
	Buckets         int
	Chains          int64
	OccupiedBuckets int
	MaxBucketLen    int
	// CollisionRatio is the average number of version chains per bucket —
	// the metric of Figure 13 (a ratio of 10 means 10 chains share a bucket
	// on average).
	CollisionRatio float64
	// AvgPerOccupied is the mean chain count over non-empty buckets only.
	AvgPerOccupied float64
	Lookups        int64
	ExtraHops      int64
}

// Stats scans the buckets and returns collision statistics.
func (h *HashTable) Stats() HashStats {
	st := HashStats{Buckets: len(h.buckets), Chains: h.chains.Load(),
		Lookups: h.lookups.Load(), ExtraHops: h.extraHops.Load()}
	for i := range h.buckets {
		b := &h.buckets[i]
		b.mu.Lock()
		n := 0
		for c := b.head; c != nil; c = c.bucketNext {
			n++
		}
		b.mu.Unlock()
		if n > 0 {
			st.OccupiedBuckets++
			if n > st.MaxBucketLen {
				st.MaxBucketLen = n
			}
		}
	}
	st.CollisionRatio = float64(st.Chains) / float64(st.Buckets)
	if st.OccupiedBuckets > 0 {
		st.AvgPerOccupied = float64(st.Chains) / float64(st.OccupiedBuckets)
	}
	return st
}

// ChainCount returns the number of registered chains.
func (h *HashTable) ChainCount() int64 { return h.chains.Load() }
