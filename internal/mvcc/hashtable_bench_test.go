package mvcc

import (
	"sync"
	"sync/atomic"
	"testing"

	"hybridgc/internal/ts"
)

// benchKeys is sized well above the bucket count so lookups pay realistic
// collision-list traversals.
const benchKeys = 1 << 16

func benchTable(b *testing.B) *HashTable {
	b.Helper()
	ht := NewHashTable(DefaultBuckets)
	for i := 0; i < benchKeys; i++ {
		ht.GetOrCreate(ts.RecordKey{Table: 1, RID: ts.RID(i + 1)}, &fakeRecord{})
	}
	return ht
}

// BenchmarkHashGetParallel measures RID hash-table lookup throughput under
// parallel readers — the navigation cost of Figure 13, and the path the
// lock-free read conversion targets.
func BenchmarkHashGetParallel(b *testing.B) {
	ht := benchTable(b)
	b.ReportAllocs()
	b.SetParallelism(8) // 8 reader goroutines even on a single-P box
	b.RunParallel(func(pb *testing.PB) {
		// Cheap per-goroutine LCG so readers fan out over distinct keys.
		x := uint64(0x9e3779b97f4a7c15)
		for pb.Next() {
			x = x*6364136223846793005 + 1442695040888963407
			if c := ht.Get(ts.RecordKey{Table: 1, RID: ts.RID(x%benchKeys + 1)}); c == nil {
				b.Fatal("missing chain")
			}
		}
	})
}

// lockedTable reproduces the pre-conversion lookup cost model — bucket
// mutex held across the collision-list walk, two process-global atomic stat
// counters bumped per lookup — so the before/after comparison can be rerun
// on any machine without checking out old code. On a multi-core host the
// global counters make every Get from every core RMW the same two cache
// lines; that transfer cost is absent on a single-core host, so the gap
// between Locked and lock-free understates the win there.
type lockedTable struct {
	ht        *HashTable
	mus       []sync.Mutex
	lookups   atomic.Int64
	extraHops atomic.Int64
}

func (l *lockedTable) get(key ts.RecordKey) *Chain {
	hk := hashKey(key)
	bi := hk & l.ht.mask
	l.mus[bi].Lock()
	var found *Chain
	hops := int64(0)
	for c := l.ht.buckets[bi].head.Load(); c != nil; c = c.bucketNext.Load() {
		if c.Key == key {
			found = c
			break
		}
		hops++
	}
	l.mus[bi].Unlock()
	l.lookups.Add(1)
	if hops > 0 {
		l.extraHops.Add(hops)
	}
	return found
}

// BenchmarkHashGetParallelLocked runs the same workload as
// BenchmarkHashGetParallel through the pre-conversion cost model.
func BenchmarkHashGetParallelLocked(b *testing.B) {
	ht := benchTable(b)
	lt := &lockedTable{ht: ht, mus: make([]sync.Mutex, len(ht.buckets))}
	b.ReportAllocs()
	b.SetParallelism(8)
	b.RunParallel(func(pb *testing.PB) {
		x := uint64(0x9e3779b97f4a7c15)
		for pb.Next() {
			x = x*6364136223846793005 + 1442695040888963407
			if c := lt.get(ts.RecordKey{Table: 1, RID: ts.RID(x%benchKeys + 1)}); c == nil {
				b.Fatal("missing chain")
			}
		}
	})
}

// BenchmarkHashGetSerial is the single-goroutine baseline for the same
// lookup, separating per-call cost from contention cost.
func BenchmarkHashGetSerial(b *testing.B) {
	ht := benchTable(b)
	b.ReportAllocs()
	x := uint64(0x9e3779b97f4a7c15)
	for i := 0; i < b.N; i++ {
		x = x*6364136223846793005 + 1442695040888963407
		if c := ht.Get(ts.RecordKey{Table: 1, RID: ts.RID(x%benchKeys + 1)}); c == nil {
			b.Fatal("missing chain")
		}
	}
}
