package mvcc

import (
	"sync"
	"sync/atomic"
	"testing"

	"hybridgc/internal/ts"
)

// TestGroupListLiveIteration hammers lock-free Ascending/Descending walks
// against a concurrent appender and remover. Along any walk the CIDs must be
// strictly monotonic (next pointers only ever lead to later groups, even
// across removed nodes), and a walk standing on a removed group must keep
// going rather than fall off the list.
func TestGroupListLiveIteration(t *testing.T) {
	gl := NewGroupList()
	const total = 5000
	var stop atomic.Bool
	var wg sync.WaitGroup

	groups := make(chan *GroupCommitContext, total)
	wg.Add(1)
	go func() { // appender: publishes groups in CID order
		defer wg.Done()
		defer close(groups)
		for i := 1; i <= total; i++ {
			g := NewGroup(nil)
			g.AssignCID(ts.CID(i))
			gl.Append(g)
			groups <- g
		}
	}()
	wg.Add(1)
	go func() { // remover: unlinks them again, oldest first
		defer wg.Done()
		for g := range groups {
			gl.Remove(g)
		}
		stop.Store(true)
	}()
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				var prev ts.CID
				gl.Ascending(func(g *GroupCommitContext) bool {
					if c := g.CID(); c <= prev {
						t.Errorf("ascending walk not monotonic: %d after %d", c, prev)
						return false
					} else {
						prev = c
					}
					return true
				})
				last := ts.CID(total) + 1
				gl.Descending(func(g *GroupCommitContext) bool {
					if c := g.CID(); c >= last {
						t.Errorf("descending walk not monotonic: %d before %d", c, last)
						return false
					}
					last = g.CID()
					return true
				})
			}
		}()
	}
	wg.Wait()
	if n := gl.Len(); n != 0 {
		t.Fatalf("list not empty after all removes: %d", n)
	}
}

// TestGroupListRemoveDuringIteration checks the GT-collector pattern: fn
// removes the group it was handed and the walk continues into the rest of
// the list.
func TestGroupListRemoveDuringIteration(t *testing.T) {
	gl := NewGroupList()
	for i := 1; i <= 10; i++ {
		g := NewGroup(nil)
		g.AssignCID(ts.CID(i))
		gl.Append(g)
	}
	var seen []ts.CID
	gl.Ascending(func(g *GroupCommitContext) bool {
		seen = append(seen, g.CID())
		gl.Remove(g)
		return true
	})
	if len(seen) != 10 {
		t.Fatalf("walk visited %d of 10 groups: %v", len(seen), seen)
	}
	if gl.Len() != 0 {
		t.Fatalf("list not empty: %d", gl.Len())
	}
	// Removing again is a no-op and the list stays consistent.
	gl.Ascending(func(*GroupCommitContext) bool {
		t.Fatal("empty list must not yield groups")
		return false
	})
}
