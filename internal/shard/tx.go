package shard

import (
	"fmt"

	"hybridgc/internal/core"
	"hybridgc/internal/engine"
	"hybridgc/internal/fault"
	"hybridgc/internal/ts"
	"hybridgc/internal/txn"
	"hybridgc/internal/wal"
)

// Failpoints covering the two-phase-commit windows, one per durability step.
// Every failure inside the protocol window is treated as crash-equivalent:
// the shards holding unsettled durable state latch fail-stop with the cause,
// nothing cleans up the log, and the next Open settles the transaction from
// the coordinator's decision (or its absence — presumed abort). The crash
// matrix proves each window recovers all-or-nothing.
var (
	// FPPrepare fires after a participant's prepare record is appended: some
	// participants hold durable prepares, no decision exists. Recovery must
	// abort everywhere.
	FPPrepare = fault.Declare("shard/prepare", "after appending a participant's prepare record")
	// FPDecision fires before the coordinator's decision record: every
	// participant is prepared, the decision never became durable. Recovery
	// must abort everywhere (presumed abort).
	FPDecision = fault.Declare("shard/decision", "before appending the coordinator's decision record")
	// FPApply fires after the decision is durable, before any participant
	// publishes. Recovery must commit everywhere.
	FPApply = fault.Declare("shard/apply", "after the commit decision is durable, before participants publish")
	// FPResolve fires after a participant publishes, before its resolve
	// record: its versions are live in memory but its log still says in
	// doubt. Recovery must commit everywhere.
	FPResolve = fault.Declare("shard/resolve", "after publish, before appending a participant's resolve record")
)

// clusterTx is a routed transaction: per-shard participant transactions open
// lazily as operations touch their shards, record IDs translate through the
// table placements, and commit picks the single-shard fast path or two-phase
// commit by the number of writing participants.
//
// Isolation is per shard: each participant holds its own snapshot on its own
// shard, so cross-shard reads do not observe one cluster-wide consistent
// point. Single-shard transactions (the fast path, and everything a pinned
// BeginShard transaction can do) keep exact snapshot isolation.
type clusterTx struct {
	c        *Cluster
	iso      txn.Isolation
	declared []ts.TableID

	// pinned is the BeginShard target, -1 for a routed transaction.
	pinned int
	// anchor is the replicated-table read target: the pinned shard, or the
	// first shard a routed transaction touched (-1 until then, 0 by default).
	anchor int

	parts []*core.Tx // indexed by shard, nil until opened
	done  bool
}

// part returns the participant transaction on shard s, opening it lazily.
func (tx *clusterTx) part(s int) (*core.Tx, error) {
	if s < 0 || s >= len(tx.c.shards) {
		return nil, fmt.Errorf("%w: %d of %d", ErrShardRange, s, len(tx.c.shards))
	}
	if tx.pinned >= 0 && s != tx.pinned {
		return nil, fmt.Errorf("%w: shard %d, pinned to %d", ErrCrossShard, s, tx.pinned)
	}
	if tx.parts == nil {
		tx.parts = make([]*core.Tx, len(tx.c.shards))
	}
	if tx.parts[s] == nil {
		tx.parts[s] = tx.c.shards[s].Begin(tx.iso, tx.declared...)
		if tx.anchor < 0 {
			tx.anchor = s
		}
	}
	return tx.parts[s], nil
}

// anchorShard is the shard replicated-table reads use.
func (tx *clusterTx) anchorShard() int {
	if tx.pinned >= 0 {
		return tx.pinned
	}
	if tx.anchor >= 0 {
		return tx.anchor
	}
	return 0
}

func (tx *clusterTx) Isolation() txn.Isolation { return tx.iso }

func (tx *clusterTx) SnapshotTS() ts.CID {
	p, err := tx.part(tx.anchorShard())
	if err != nil {
		return 0
	}
	return p.SnapshotTS()
}

func (tx *clusterTx) Get(tid ts.TableID, rid ts.RID) ([]byte, error) {
	tp := tx.c.placement(tid)
	s, l := tx.anchorShard(), rid
	if tp.p.Kind != engine.PlaceReplicated {
		s, l = tp.p.LocalRID(rid, len(tx.c.shards))
	}
	p, err := tx.part(s)
	if err != nil {
		return nil, err
	}
	return p.Get(tid, l)
}

// Scan visits every visible record, shard-major: all of shard 0's records
// (in local RID order, reported as global RIDs), then shard 1's, and so on —
// not global RID order.
func (tx *clusterTx) Scan(tid ts.TableID, fn func(rid ts.RID, img []byte) bool) error {
	tp := tx.c.placement(tid)
	n := len(tx.c.shards)
	switch tp.p.Kind {
	case engine.PlaceReplicated:
		p, err := tx.part(tx.anchorShard())
		if err != nil {
			return err
		}
		return p.Scan(tid, fn)
	case engine.PlaceFixed:
		p, err := tx.part(tp.p.Shard)
		if err != nil {
			return err
		}
		return p.Scan(tid, fn)
	}
	stopped := false
	for s := 0; s < n && !stopped; s++ {
		if tx.pinned >= 0 && s != tx.pinned {
			return fmt.Errorf("%w: scanning interleaved table %d needs every shard", ErrCrossShard, tid)
		}
		p, err := tx.part(s)
		if err != nil {
			return err
		}
		err = p.Scan(tid, func(l ts.RID, img []byte) bool {
			if !fn(tp.p.GlobalRID(s, n, l), img) {
				stopped = true
				return false
			}
			return true
		})
		if err != nil {
			return err
		}
	}
	return nil
}

func (tx *clusterTx) Insert(tid ts.TableID, img []byte) (ts.RID, error) {
	return tx.insert(tid, img, -1)
}

// InsertAt is Insert with a shard hint: interleaved tables place the record
// on hint mod shards; other placements ignore it.
func (tx *clusterTx) InsertAt(tid ts.TableID, img []byte, hint int) (ts.RID, error) {
	return tx.insert(tid, img, hint)
}

func (tx *clusterTx) insert(tid ts.TableID, img []byte, hint int) (ts.RID, error) {
	tp := tx.c.placement(tid)
	n := len(tx.c.shards)
	switch tp.p.Kind {
	case engine.PlaceFixed:
		p, err := tx.part(tp.p.Shard)
		if err != nil {
			return 0, err
		}
		return p.Insert(tid, img)
	case engine.PlaceReplicated:
		return tx.insertReplicated(tid, img)
	}
	var s int
	switch {
	case hint >= 0:
		s = hint % n
	case tx.pinned >= 0:
		s = tx.pinned
	default:
		// Unhinted: spread in placement-sized blocks so a sequential load
		// produces the dense global RID sequence a single node would assign.
		size := tp.p.Size
		if size == 0 {
			size = 1
		}
		c := tp.ctr.Add(1) - 1
		s = int((c / size) % uint64(n))
	}
	p, err := tx.part(s)
	if err != nil {
		return 0, err
	}
	l, err := p.Insert(tid, img)
	if err != nil {
		return 0, err
	}
	return tp.p.GlobalRID(s, n, l), nil
}

// insertReplicated writes the record to every shard; the local RIDs must
// agree (replicated tables are loaded by one writer in one order), and the
// shared value is the global RID.
func (tx *clusterTx) insertReplicated(tid ts.TableID, img []byte) (ts.RID, error) {
	var rid ts.RID
	for s := range tx.c.shards {
		p, err := tx.part(s)
		if err != nil {
			return 0, err
		}
		l, err := p.Insert(tid, img)
		if err != nil {
			return 0, err
		}
		if s == 0 {
			rid = l
		} else if l != rid {
			return 0, fmt.Errorf("shard: replicated table %d diverged: shard %d assigned RID %d, shard 0 assigned %d",
				tid, s, l, rid)
		}
	}
	return rid, nil
}

func (tx *clusterTx) Update(tid ts.TableID, rid ts.RID, img []byte) error {
	return tx.write(tid, rid, func(p *core.Tx, l ts.RID) error { return p.Update(tid, l, img) })
}

func (tx *clusterTx) Delete(tid ts.TableID, rid ts.RID) error {
	return tx.write(tid, rid, func(p *core.Tx, l ts.RID) error { return p.Delete(tid, l) })
}

func (tx *clusterTx) write(tid ts.TableID, rid ts.RID, op func(p *core.Tx, l ts.RID) error) error {
	tp := tx.c.placement(tid)
	if tp.p.Kind == engine.PlaceReplicated {
		// Replicated writes touch every copy — inherently cross-shard.
		for s := range tx.c.shards {
			p, err := tx.part(s)
			if err != nil {
				return err
			}
			if err := op(p, rid); err != nil {
				return err
			}
		}
		return nil
	}
	s, l := tp.p.LocalRID(rid, len(tx.c.shards))
	p, err := tx.part(s)
	if err != nil {
		return err
	}
	return op(p, l)
}

func (tx *clusterTx) Abort() {
	if tx.done {
		return
	}
	tx.done = true
	for _, p := range tx.parts {
		if p != nil {
			p.Abort()
		}
	}
}

// participant is one shard's open transaction at commit time.
type participant struct {
	shard int
	tx    *core.Tx
	ops   []wal.Op // pending write set; nil for read-only participants
}

// Commit finishes the transaction. With at most one writing participant this
// is the single-shard fast path: each participant commits through its own
// shard's group committer, exactly as on an unsharded engine. With several
// writers it runs two-phase commit under the cluster's checkpoint gate.
func (tx *clusterTx) Commit() error {
	if tx.done {
		return fmt.Errorf("shard: transaction finished")
	}
	tx.done = true
	var parts []participant
	writers := 0
	for s, p := range tx.parts {
		if p == nil {
			continue
		}
		ops := p.PendingOps()
		if len(ops) > 0 {
			writers++
		} else {
			ops = nil
		}
		parts = append(parts, participant{shard: s, tx: p, ops: ops})
	}
	if writers <= 1 {
		return commitLocal(parts)
	}
	return tx.c.commit2PC(parts)
}

// commitLocal commits each participant through its own shard — the fast
// path. The writer (if any) goes first so a failure aborts before any
// read-only participant is finished.
func commitLocal(parts []participant) error {
	for _, p := range parts {
		if p.ops == nil {
			continue
		}
		if err := p.tx.Commit(); err != nil {
			for _, q := range parts {
				if q.ops == nil {
					q.tx.Abort()
				}
			}
			return err
		}
	}
	for _, p := range parts {
		if p.ops == nil {
			p.tx.Abort() // read-only: abort and commit are equivalent
		}
	}
	return nil
}

// commit2PC runs the minimal two-phase commit. Shard 0 is the coordinator:
// its log carries the decision record that recovery consults. The gate is
// held shared for the whole window so no shard checkpoints (and prunes log
// segments) between a prepare and its resolve.
//
// Failure handling is crash-equivalent: any error after the first prepare
// append latches the shards holding unsettled durable state into fail-stop,
// aborts the in-memory transactions, and leaves settlement to the next Open —
// which commits everywhere or aborts everywhere from the decision log.
func (c *Cluster) commit2PC(parts []participant) error {
	xid := c.xid.Add(1)
	c.gate.RLock()
	defer c.gate.RUnlock()

	abortMemory := func() {
		for _, p := range parts {
			p.tx.Abort()
		}
	}
	failPrepared := func(upto int, cause error) {
		for _, p := range parts[:upto] {
			if p.ops != nil {
				c.shards[p.shard].EnterFailStop(cause)
			}
		}
		abortMemory()
	}

	// Phase 1: every writer's write set becomes durable in its own log.
	for i, p := range parts {
		if p.ops == nil {
			continue
		}
		if err := c.shards[p.shard].AppendPrepare(xid, p.ops); err != nil {
			failPrepared(i+1, err)
			return fmt.Errorf("shard %d: prepare xid %d: %w", p.shard, xid, err)
		}
		if err := fault.Hit(FPPrepare); err != nil {
			failPrepared(i+1, err)
			return err
		}
	}

	// Decision: one record on the coordinator. Until it is durable the
	// outcome is abort (presumed abort); after it, commit — everywhere.
	if err := fault.Hit(FPDecision); err != nil {
		failPrepared(len(parts), err)
		c.shards[0].EnterFailStop(err)
		return err
	}
	if err := c.shards[0].AppendDecision(xid, true); err != nil {
		failPrepared(len(parts), err)
		c.shards[0].EnterFailStop(err)
		return fmt.Errorf("shard 0: decision xid %d: %w", xid, err)
	}

	// Phase 2: publish each write set through its shard's group committer
	// with logging skipped (the prepare already made it durable), then settle
	// with a resolve record carrying the publish CID.
	if err := fault.Hit(FPApply); err != nil {
		failPrepared(len(parts), err)
		return err
	}
	var firstErr error
	note := func(err error) {
		if firstErr == nil {
			firstErr = err
		}
	}
	for _, p := range parts {
		if p.ops == nil {
			p.tx.Abort() // read-only participant
			continue
		}
		p.tx.MarkPrepared()
		cid, err := p.tx.CommitCID()
		if err != nil {
			c.shards[p.shard].EnterFailStop(err)
			note(fmt.Errorf("shard %d: publish xid %d: %w", p.shard, xid, err))
			continue
		}
		if err := fault.Hit(FPResolve); err != nil {
			c.shards[p.shard].EnterFailStop(err)
			note(err)
			continue
		}
		if err := c.shards[p.shard].AppendResolve(xid, true, cid); err != nil {
			c.shards[p.shard].EnterFailStop(err)
			note(fmt.Errorf("shard %d: resolve xid %d: %w", p.shard, xid, err))
		}
	}
	return firstErr
}
