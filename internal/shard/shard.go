// Package shard is the horizontally sharded engine: N independent core.DB
// instances — each with its own WAL directory, version space, snapshot
// registry and garbage-collection scheduler — behind one engine.Engine. The
// paper's garbage-collection structures are all per-node, so sharding is the
// natural scale-out: each shard's GC horizon advances against only its own
// snapshots, and a long-lived cursor pinned to one shard never blocks
// reclamation on another.
//
// Records are partitioned by RID under per-table placements (see
// engine.Placement): interleaved blocks by default, a fixed shard, or
// replicated to every shard for small read-mostly tables. Callers see one
// global RID space; the router translates through the placement bijection.
//
// Single-shard transactions — the overwhelming majority under a well-placed
// workload — commit through the shard's existing group-commit fast path,
// untouched. Cross-shard transactions use a minimal two-phase commit: each
// participant's write set becomes a KindPrepare record in its own WAL, the
// coordinator (shard 0) logs a KindDecision, participants publish through
// group commit with logging skipped (the write set is already durable) and
// settle with a KindResolve carrying the publish CID. Recovery is
// presumed-abort: an in-doubt prepare commits only if the coordinator's log
// holds a commit decision for its XID.
package shard

import (
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"sync/atomic"

	"hybridgc/internal/core"
	"hybridgc/internal/engine"
	"hybridgc/internal/ts"
	"hybridgc/internal/txn"
)

// Errors returned by the sharded engine.
var (
	ErrShardRange = errors.New("shard: shard index out of range")
	// ErrCrossShard reports an operation that would leave a pinned
	// single-shard transaction's shard.
	ErrCrossShard = errors.New("shard: operation crosses the pinned shard")
	// ErrPlacementLate reports SetPlacement on a table that already has rows.
	ErrPlacementLate = errors.New("shard: placement must be set before the table receives rows")
)

// Config tunes a Cluster.
type Config struct {
	// Shards is the shard count (<=0 selects 1).
	Shards int
	// Configure returns shard i's engine config. The returned config's
	// Persistence, if any, is re-rooted to a shard-<i> subdirectory of its
	// Dir, so one base directory serves the whole cluster. Nil selects
	// in-memory defaults.
	Configure func(i int) core.Config
}

// tablePlace is one table's placement plus the interleave insert counter that
// spreads unhinted inserts round-robin in placement-sized blocks.
type tablePlace struct {
	p   engine.Placement
	ctr atomic.Uint64
}

// Cluster is N engine shards behind one engine.Engine.
type Cluster struct {
	shards []*core.DB

	// xid numbers distributed transactions, seeded past every XID recovery
	// saw so restarted coordinators never reuse one.
	xid atomic.Uint64

	// gate orders two-phase commits against cluster checkpoints: a commit
	// holds it shared for the whole prepare→resolve window, Checkpoint holds
	// it exclusively, so no shard checkpoints with a prepare durable but its
	// resolve still pending.
	gate sync.RWMutex

	// ddlMu serializes CreateTable so every shard assigns the same TableID.
	ddlMu sync.Mutex

	mu    sync.RWMutex
	place map[ts.TableID]*tablePlace
}

// Open starts every shard and settles in-doubt cross-shard transactions left
// by a crash: each shard's recovered prepares are matched against the
// coordinator's decision log — commit installs the prepared write set,
// anything else aborts (presumed abort) — and settled either way with a
// resolve record so the next recovery is clean.
func Open(cfg Config) (*Cluster, error) {
	n := cfg.Shards
	if n <= 0 {
		n = 1
	}
	c := &Cluster{place: make(map[ts.TableID]*tablePlace)}
	for i := 0; i < n; i++ {
		var sc core.Config
		if cfg.Configure != nil {
			sc = cfg.Configure(i)
		}
		if p := sc.Persistence; p != nil {
			sub := *p
			sub.Dir = ShardDir(p.Dir, i)
			sc.Persistence = &sub
		}
		db, err := core.Open(sc)
		if err != nil {
			for _, s := range c.shards {
				s.Close()
			}
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
		c.shards = append(c.shards, db)
	}
	if err := c.settleInDoubt(); err != nil {
		c.Close()
		return nil, err
	}
	return c, nil
}

// ShardDir is shard i's persistence directory under the cluster base.
func ShardDir(base string, i int) string {
	return filepath.Join(base, fmt.Sprintf("shard-%d", i))
}

// settleInDoubt resolves recovered in-doubt prepares against the
// coordinator's decisions and seeds the XID counter.
func (c *Cluster) settleInDoubt() error {
	var decisions map[uint64]bool
	if sum := c.shards[0].Recovery(); sum != nil {
		decisions = sum.Decisions
		for xid := range sum.Decisions {
			c.bumpXID(xid)
		}
	}
	for i, db := range c.shards {
		sum := db.Recovery()
		if sum == nil {
			continue
		}
		for xid, ops := range sum.InDoubt {
			c.bumpXID(xid)
			if decisions[xid] {
				cid, err := db.CommitRecovered(ops)
				if err != nil {
					return fmt.Errorf("shard %d: committing in-doubt xid %d: %w", i, xid, err)
				}
				if err := db.AppendResolve(xid, true, cid); err != nil {
					return fmt.Errorf("shard %d: settling xid %d: %w", i, xid, err)
				}
			} else if err := db.AppendResolve(xid, false, 0); err != nil {
				return fmt.Errorf("shard %d: aborting xid %d: %w", i, xid, err)
			}
		}
	}
	return nil
}

func (c *Cluster) bumpXID(seen uint64) {
	for {
		cur := c.xid.Load()
		if seen <= cur || c.xid.CompareAndSwap(cur, seen) {
			return
		}
	}
}

// placement returns the table's placement record, installing the default
// (interleave, block size 1) on first touch.
func (c *Cluster) placement(tid ts.TableID) *tablePlace {
	c.mu.RLock()
	tp := c.place[tid]
	c.mu.RUnlock()
	if tp != nil {
		return tp
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if tp = c.place[tid]; tp == nil {
		tp = &tablePlace{p: engine.Placement{Kind: engine.PlaceInterleave, Size: 1}}
		c.place[tid] = tp
	}
	return tp
}

// SetPlacement installs a table's placement. The local↔global RID bijection
// depends on it, so a placement must be installed before the table receives
// rows and reinstalled identically before first access after a reopen
// (placements are in-memory; recovery does not restore them). Changing an
// already-installed placement once the table has rows is rejected — the
// existing rows were placed under the old bijection.
func (c *Cluster) SetPlacement(tid ts.TableID, p engine.Placement) error {
	if p.Kind == engine.PlaceFixed && (p.Shard < 0 || p.Shard >= len(c.shards)) {
		return fmt.Errorf("%w: fixed shard %d of %d", ErrShardRange, p.Shard, len(c.shards))
	}
	if p.Size == 0 {
		p.Size = 1
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if old := c.place[tid]; old != nil && old.p != p {
		for _, db := range c.shards {
			if db.ScanCountAt(tid, db.Manager().CurrentTS()) > 0 {
				return fmt.Errorf("%w: table %d", ErrPlacementLate, tid)
			}
		}
	}
	c.place[tid] = &tablePlace{p: p}
	return nil
}

// --- engine.Engine ---

// Begin starts a routed transaction that may touch any shard; per-shard
// participants open lazily and a multi-writer commit runs two-phase commit.
func (c *Cluster) Begin(iso txn.Isolation, declared ...ts.TableID) engine.Tx {
	return &clusterTx{c: c, iso: iso, declared: declared, pinned: -1, anchor: -1}
}

// BeginShard starts a transaction pinned to one shard — the single-shard fast
// path. RIDs stay global; operations routed to any other shard fail with
// ErrCrossShard.
func (c *Cluster) BeginShard(shard int, iso txn.Isolation, declared ...ts.TableID) (engine.Tx, error) {
	if shard < 0 || shard >= len(c.shards) {
		return nil, fmt.Errorf("%w: %d of %d", ErrShardRange, shard, len(c.shards))
	}
	return &clusterTx{c: c, iso: iso, declared: declared, pinned: shard, anchor: shard}, nil
}

// Exec runs fn inside a routed transaction, committing on success and
// aborting on error.
func (c *Cluster) Exec(iso txn.Isolation, declared []ts.TableID, fn func(engine.Tx) error) error {
	tx := c.Begin(iso, declared...)
	if err := fn(tx); err != nil {
		tx.Abort()
		return err
	}
	return tx.Commit()
}

// CreateTable creates the table on every shard under one DDL lock, so all
// shards assign the same TableID.
func (c *Cluster) CreateTable(name string) (ts.TableID, error) {
	c.ddlMu.Lock()
	defer c.ddlMu.Unlock()
	var id ts.TableID
	for i, db := range c.shards {
		tid, err := db.CreateTable(name)
		if err != nil {
			return 0, fmt.Errorf("shard %d: %w", i, err)
		}
		if i == 0 {
			id = tid
		} else if tid != id {
			return 0, fmt.Errorf("shard %d assigned table %q id %d, shard 0 assigned %d", i, name, tid, id)
		}
	}
	return id, nil
}

func (c *Cluster) TableID(name string) ts.TableID { return c.shards[0].TableID(name) }

func (c *Cluster) TableIDs(names ...string) ([]ts.TableID, error) {
	return c.shards[0].TableIDs(names...)
}

func (c *Cluster) Tables() []string { return c.shards[0].Tables() }

func (c *Cluster) TablePartitions(tid ts.TableID) int { return c.shards[0].TablePartitions(tid) }

func (c *Cluster) ReadOnly() bool { return c.shards[0].ReadOnly() }

func (c *Cluster) Shards() int { return len(c.shards) }

func (c *Cluster) Shard(i int) *core.DB { return c.shards[i] }

// Stats aggregates across shards: counters sum, CurrentCID is the maximum,
// GlobalHorizon the minimum over live shards, FailStop reports any shard
// latched.
func (c *Cluster) Stats() core.Stats {
	var out core.Stats
	for i, db := range c.shards {
		st := db.Stats()
		out.Statements += st.Statements
		out.VersionsLive += st.VersionsLive
		out.VersionsLiveBytes += st.VersionsLiveBytes
		out.VersionsCreated += st.VersionsCreated
		out.VersionsReclaimed += st.VersionsReclaimed
		out.VersionsMigrated += st.VersionsMigrated
		out.VersionsTraversed += st.VersionsTraversed
		out.ActiveSnapshots += st.ActiveSnapshots
		out.Txn.TxnsCommitted += st.Txn.TxnsCommitted
		out.Txn.TxnsAborted += st.Txn.TxnsAborted
		out.Txn.GroupsCommitted += st.Txn.GroupsCommitted
		out.GroupListLen += st.GroupListLen
		if st.CurrentCID > out.CurrentCID {
			out.CurrentCID = st.CurrentCID
		}
		if i == 0 || st.GlobalHorizon < out.GlobalHorizon {
			out.GlobalHorizon = st.GlobalHorizon
		}
		if st.ActiveCIDRange > out.ActiveCIDRange {
			out.ActiveCIDRange = st.ActiveCIDRange
		}
		out.FailStop = out.FailStop || st.FailStop
		if st.Pressure.Enabled {
			out.Pressure.Enabled = true
			out.Pressure.Live += st.Pressure.Live
			out.Pressure.Soft += st.Pressure.Soft
			out.Pressure.Hard += st.Pressure.Hard
			out.Pressure.SoftTrips += st.Pressure.SoftTrips
			out.Pressure.Emergencies += st.Pressure.Emergencies
			out.Pressure.Backpressured += st.Pressure.Backpressured
			out.Pressure.Rejected += st.Pressure.Rejected
			out.Pressure.Evicted += st.Pressure.Evicted
			if st.Pressure.Level > out.Pressure.Level {
				out.Pressure.Level = st.Pressure.Level
			}
		}
	}
	return out
}

// Checkpoint checkpoints every shard under the two-phase-commit gate, so a
// prepare and its resolve never straddle a shard's checkpoint.
func (c *Cluster) Checkpoint() error {
	c.gate.Lock()
	defer c.gate.Unlock()
	for i, db := range c.shards {
		if err := db.Checkpoint(); err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
	}
	return nil
}

// Close closes every shard.
func (c *Cluster) Close() {
	for _, db := range c.shards {
		db.Close()
	}
}

var _ engine.Engine = (*Cluster)(nil)
