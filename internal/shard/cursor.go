package shard

import (
	"hybridgc/internal/core"
	"hybridgc/internal/engine"
	"hybridgc/internal/ts"
)

// clusterCursor iterates a table shard-major with lazy per-shard cursors:
// shard k's cursor (and the snapshot it pins) opens only when iteration
// reaches shard k and closes as soon as it is drained. A long-lived cluster
// cursor therefore pins garbage collection on at most one shard at a time —
// the sharded answer to the paper's mixed-workload blocker: an OLAP scan
// dragging through shard 2 leaves shards 0, 1 and 3 free to reclaim.
//
// The price is that the view is not one cluster-wide snapshot: each shard is
// read at the snapshot current when iteration enters it.
type clusterCursor struct {
	c     *Cluster
	tid   ts.TableID
	order []int // shard visit order by placement
	idx   int
	cur   *core.Cursor
	snap  ts.CID // current (or last) shard cursor's snapshot
	done  bool
}

// OpenCursor opens a cluster-wide cursor over the table. Replicated tables
// read one copy (shard 0); fixed tables read their pinned shard; interleaved
// tables visit every shard in order.
func (c *Cluster) OpenCursor(tid ts.TableID) (engine.Cursor, error) {
	tp := c.placement(tid)
	var order []int
	switch tp.p.Kind {
	case engine.PlaceReplicated:
		order = []int{0}
	case engine.PlaceFixed:
		order = []int{tp.p.Shard}
	default:
		order = make([]int, len(c.shards))
		for i := range order {
			order[i] = i
		}
	}
	cc := &clusterCursor{c: c, tid: tid, order: order}
	// Open the first shard eagerly so a bad table errors here and SnapshotTS
	// is meaningful before the first Fetch.
	cur, err := c.shards[order[0]].OpenCursor(tid)
	if err != nil {
		return nil, err
	}
	cc.cur, cc.snap = cur, cur.SnapshotTS()
	cc.idx = 1
	return cc, nil
}

// Fetch returns up to n record images. A call drains from one shard at a
// time; an empty, non-exhausted return never happens (the cursor advances to
// the next shard internally).
func (cc *clusterCursor) Fetch(n int) ([][]byte, core.FetchStats, error) {
	for {
		if cc.cur == nil {
			if cc.done || cc.idx >= len(cc.order) {
				cc.done = true
				return nil, core.FetchStats{}, nil
			}
			cur, err := cc.c.shards[cc.order[cc.idx]].OpenCursor(cc.tid)
			if err != nil {
				return nil, core.FetchStats{}, err
			}
			cc.cur, cc.snap = cur, cur.SnapshotTS()
			cc.idx++
		}
		rows, st, err := cc.cur.Fetch(n)
		if err != nil {
			return nil, st, err
		}
		if cc.cur.Exhausted() {
			// Release this shard's snapshot before touching the next shard —
			// the property the per-shard GC independence test pins down.
			cc.cur.Close()
			cc.cur = nil
			if cc.idx >= len(cc.order) {
				cc.done = true
			}
		}
		if len(rows) > 0 || cc.done {
			return rows, st, nil
		}
	}
}

func (cc *clusterCursor) SnapshotTS() ts.CID { return cc.snap }

func (cc *clusterCursor) Exhausted() bool { return cc.done }

func (cc *clusterCursor) Close() {
	if cc.cur != nil {
		cc.cur.Close()
		cc.cur = nil
	}
	cc.done = true
}
