package shard

import (
	"fmt"
	"sync/atomic"
	"testing"

	"hybridgc/internal/txn"
)

// BenchmarkShardedCommit measures single-shard commit throughput as the shard
// count grows: every transaction is pinned to one shard (the fast path — no
// two-phase commit) and inserts one record with that shard as the placement
// hint, so shards never contend with each other. The shards=1 row is the
// single-node baseline; the recorded baseline (cmd/benchjson) must show
// shards=4 committing at least 2x the rate on a multi-core box.
func BenchmarkShardedCommit(b *testing.B) {
	img := []byte("0123456789abcdef0123456789abcdef")
	for _, n := range []int{1, 4} {
		b.Run(fmt.Sprintf("shards=%d", n), func(b *testing.B) {
			c, err := Open(Config{Shards: n})
			if err != nil {
				b.Fatal(err)
			}
			defer c.Close()
			tid, err := c.CreateTable("T")
			if err != nil {
				b.Fatal(err)
			}
			var next atomic.Int64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				w := int(next.Add(1)-1) % n
				for pb.Next() {
					tx, err := c.BeginShard(w, txn.StmtSI, tid)
					if err != nil {
						b.Fatal(err)
					}
					if _, err := tx.InsertAt(tid, img, w); err != nil {
						b.Fatal(err)
					}
					if err := tx.Commit(); err != nil {
						b.Fatal(err)
					}
				}
			})
		})
	}
}
