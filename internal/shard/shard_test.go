package shard

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"hybridgc/internal/core"
	"hybridgc/internal/engine"
	"hybridgc/internal/ts"
	"hybridgc/internal/txn"
)

// openTest opens an in-memory cluster and closes it with the test.
func openTest(t *testing.T, shards int) *Cluster {
	t.Helper()
	c, err := Open(Config{Shards: shards})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

func mustCreate(t *testing.T, c *Cluster, name string) ts.TableID {
	t.Helper()
	tid, err := c.CreateTable(name)
	if err != nil {
		t.Fatal(err)
	}
	return tid
}

// exec1 runs one routed transaction.
func exec1(t *testing.T, c *Cluster, fn func(tx engine.Tx) error) {
	t.Helper()
	if err := c.Exec(txn.StmtSI, nil, fn); err != nil {
		t.Fatal(err)
	}
}

func insert1(t *testing.T, c *Cluster, tid ts.TableID, img string) ts.RID {
	t.Helper()
	var rid ts.RID
	exec1(t, c, func(tx engine.Tx) error {
		var err error
		rid, err = tx.Insert(tid, []byte(img))
		return err
	})
	return rid
}

func get1(t *testing.T, c *Cluster, tid ts.TableID, rid ts.RID) (string, bool) {
	t.Helper()
	tx := c.Begin(txn.StmtSI)
	defer tx.Abort()
	img, err := tx.Get(tid, rid)
	if errors.Is(err, core.ErrRecordNotFound) {
		return "", false
	}
	if err != nil {
		t.Fatal(err)
	}
	return string(img), true
}

func TestPlacementBijection(t *testing.T) {
	for _, size := range []uint64{1, 3, 10, 64} {
		for _, shards := range []int{1, 2, 3, 4, 7} {
			p := engine.Placement{Kind: engine.PlaceInterleave, Size: size}
			seen := map[ts.RID]bool{}
			for g := ts.RID(1); g <= 500; g++ {
				s, l := p.LocalRID(g, shards)
				if s != p.ShardOf(g, shards) {
					t.Fatalf("size=%d shards=%d g=%d: LocalRID shard %d != ShardOf %d",
						size, shards, g, s, p.ShardOf(g, shards))
				}
				if back := p.GlobalRID(s, shards, l); back != g {
					t.Fatalf("size=%d shards=%d: round trip %d -> (%d,%d) -> %d",
						size, shards, g, s, l, back)
				}
				if seen[g] {
					t.Fatalf("size=%d shards=%d: global RID %d produced twice", size, shards, g)
				}
				seen[g] = true
			}
			// A sequential unhinted load (counter c) must produce the dense
			// global sequence 1,2,3,... exactly like a single node.
			locals := make([]uint64, shards)
			for c := uint64(0); c < 200; c++ {
				s := int((c / size) % uint64(shards))
				locals[s]++
				g := p.GlobalRID(s, shards, ts.RID(locals[s]))
				if uint64(g) != c+1 {
					t.Fatalf("size=%d shards=%d: sequential load op %d assigned global %d", size, shards, c, g)
				}
			}
		}
	}
	// Fixed and replicated placements pass RIDs through verbatim.
	f := engine.Placement{Kind: engine.PlaceFixed, Shard: 2}
	if s, l := f.LocalRID(17, 4); s != 2 || l != 17 {
		t.Fatalf("fixed LocalRID = (%d,%d)", s, l)
	}
	r := engine.Placement{Kind: engine.PlaceReplicated}
	if g := r.GlobalRID(3, 4, 9); g != 9 {
		t.Fatalf("replicated GlobalRID = %d", g)
	}
}

func TestClusterDenseRIDsAndScan(t *testing.T) {
	c := openTest(t, 3)
	tid := mustCreate(t, c, "T")
	for i := 1; i <= 10; i++ {
		if rid := insert1(t, c, tid, fmt.Sprintf("v%d", i)); rid != ts.RID(i) {
			t.Fatalf("sequential insert %d got RID %d", i, rid)
		}
	}
	for i := 1; i <= 10; i++ {
		if img, ok := get1(t, c, tid, ts.RID(i)); !ok || img != fmt.Sprintf("v%d", i) {
			t.Fatalf("Get(%d) = %q,%v", i, img, ok)
		}
	}
	// Scan must visit all ten and report global RIDs consistent with Get.
	tx := c.Begin(txn.TransSI)
	defer tx.Abort()
	seen := map[ts.RID]string{}
	if err := tx.Scan(tid, func(rid ts.RID, img []byte) bool {
		seen[rid] = string(img)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 10 {
		t.Fatalf("scan saw %d records, want 10", len(seen))
	}
	for i := 1; i <= 10; i++ {
		if seen[ts.RID(i)] != fmt.Sprintf("v%d", i) {
			t.Fatalf("scan rid %d = %q", i, seen[ts.RID(i)])
		}
	}
}

func TestPlacementRouting(t *testing.T) {
	c := openTest(t, 4)

	// Fixed: every record lands on shard 2, local RID == global RID.
	fixed := mustCreate(t, c, "FIXED")
	if err := c.SetPlacement(fixed, engine.Placement{Kind: engine.PlaceFixed, Shard: 2}); err != nil {
		t.Fatal(err)
	}
	rid := insert1(t, c, fixed, "f1")
	if n := c.Shard(2).ScanCountAt(fixed, c.Shard(2).Manager().CurrentTS()); n != 1 {
		t.Fatalf("fixed table rows on shard 2 = %d", n)
	}
	if n := c.Shard(0).ScanCountAt(fixed, c.Shard(0).Manager().CurrentTS()); n != 0 {
		t.Fatalf("fixed table leaked %d rows to shard 0", n)
	}
	if img, ok := get1(t, c, fixed, rid); !ok || img != "f1" {
		t.Fatalf("fixed Get = %q,%v", img, ok)
	}

	// Replicated: one insert writes every shard; updates touch every copy.
	repl := mustCreate(t, c, "REPL")
	if err := c.SetPlacement(repl, engine.Placement{Kind: engine.PlaceReplicated}); err != nil {
		t.Fatal(err)
	}
	rrid := insert1(t, c, repl, "r1")
	for i := 0; i < 4; i++ {
		if n := c.Shard(i).ScanCountAt(repl, c.Shard(i).Manager().CurrentTS()); n != 1 {
			t.Fatalf("replicated row missing on shard %d (rows=%d)", i, n)
		}
	}
	exec1(t, c, func(tx engine.Tx) error { return tx.Update(repl, rrid, []byte("r2")) })
	for i := 0; i < 4; i++ {
		if img, ok := c.Shard(i).ReadAt(repl, rrid, c.Shard(i).Manager().CurrentTS()); !ok || string(img) != "r2" {
			t.Fatalf("replicated update missing on shard %d: %q,%v", i, img, ok)
		}
	}

	// InsertAt hint pins the record's shard for interleaved tables.
	hinted := mustCreate(t, c, "HINTED")
	exec1(t, c, func(tx engine.Tx) error {
		_, err := tx.InsertAt(hinted, []byte("h"), 3)
		return err
	})
	if n := c.Shard(3).ScanCountAt(hinted, c.Shard(3).Manager().CurrentTS()); n != 1 {
		t.Fatalf("hinted insert not on shard 3 (rows=%d)", n)
	}

	// Changing a placement after rows exist is rejected; reinstalling the
	// same one is not (the reopen path depends on it).
	if err := c.SetPlacement(fixed, engine.Placement{Kind: engine.PlaceFixed, Shard: 1}); !errors.Is(err, ErrPlacementLate) {
		t.Fatalf("late placement change: %v, want ErrPlacementLate", err)
	}
	if err := c.SetPlacement(fixed, engine.Placement{Kind: engine.PlaceFixed, Shard: 2}); err != nil {
		t.Fatalf("identical placement reinstall: %v", err)
	}
}

func TestPinnedShardTx(t *testing.T) {
	c := openTest(t, 2)
	tid := mustCreate(t, c, "T")
	// Global RIDs 1..4 alternate shards 0,1,0,1.
	for i := 1; i <= 4; i++ {
		insert1(t, c, tid, fmt.Sprintf("v%d", i))
	}
	tx, err := c.BeginShard(0, txn.StmtSI)
	if err != nil {
		t.Fatal(err)
	}
	defer tx.Abort()
	if _, err := tx.Get(tid, 1); err != nil {
		t.Fatalf("pinned Get of own shard: %v", err)
	}
	if _, err := tx.Get(tid, 2); !errors.Is(err, ErrCrossShard) {
		t.Fatalf("pinned Get of other shard: %v, want ErrCrossShard", err)
	}
	if err := tx.Update(tid, 2, []byte("x")); !errors.Is(err, ErrCrossShard) {
		t.Fatalf("pinned Update of other shard: %v, want ErrCrossShard", err)
	}
	if err := tx.Scan(tid, func(ts.RID, []byte) bool { return true }); !errors.Is(err, ErrCrossShard) {
		t.Fatalf("pinned Scan of interleaved table: %v, want ErrCrossShard", err)
	}
	if _, err := c.BeginShard(2, txn.StmtSI); !errors.Is(err, ErrShardRange) {
		t.Fatalf("BeginShard(2) on 2 shards: %v, want ErrShardRange", err)
	}
	// Pinned writes commit through the fast path.
	tx2, _ := c.BeginShard(1, txn.StmtSI)
	if err := tx2.Update(tid, 2, []byte("w2")); err != nil {
		t.Fatal(err)
	}
	if err := tx2.Commit(); err != nil {
		t.Fatal(err)
	}
	if img, ok := get1(t, c, tid, 2); !ok || img != "w2" {
		t.Fatalf("pinned commit not visible: %q,%v", img, ok)
	}
}

func TestCrossShardCommitAndAbort(t *testing.T) {
	c := openTest(t, 2)
	tid := mustCreate(t, c, "T")
	r1 := insert1(t, c, tid, "a0") // shard 0
	r2 := insert1(t, c, tid, "b0") // shard 1

	// A routed transaction writing both shards commits atomically via 2PC.
	tx := c.Begin(txn.StmtSI)
	if err := tx.Update(tid, r1, []byte("a1")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Update(tid, r2, []byte("b1")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if img, _ := get1(t, c, tid, r1); img != "a1" {
		t.Fatalf("shard-0 write = %q", img)
	}
	if img, _ := get1(t, c, tid, r2); img != "b1" {
		t.Fatalf("shard-1 write = %q", img)
	}

	// Abort rolls back every participant.
	tx = c.Begin(txn.StmtSI)
	if err := tx.Update(tid, r1, []byte("a2")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Update(tid, r2, []byte("b2")); err != nil {
		t.Fatal(err)
	}
	tx.Abort()
	if img, _ := get1(t, c, tid, r1); img != "a1" {
		t.Fatalf("aborted shard-0 write leaked: %q", img)
	}
	if img, _ := get1(t, c, tid, r2); img != "b1" {
		t.Fatalf("aborted shard-1 write leaked: %q", img)
	}

	// No shard fail-stopped and no in-doubt state lingers.
	for i := 0; i < 2; i++ {
		if failed, cause := c.Shard(i).FailStop(); failed {
			t.Fatalf("shard %d fail-stopped: %v", i, cause)
		}
	}
}

// TestCursorGCIndependence is the acceptance property: a pinned snapshot
// cursor sitting on one shard must not block version reclamation on another.
func TestCursorGCIndependence(t *testing.T) {
	c := openTest(t, 2)
	tid := mustCreate(t, c, "T")
	// 8 rows alternating shards: odd global RIDs on shard 0, even on shard 1.
	var rids []ts.RID
	for i := 0; i < 8; i++ {
		rids = append(rids, insert1(t, c, tid, "v0"))
	}

	cur, err := c.OpenCursor(tid)
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Close()
	// Fetch one row: the cursor now sits inside shard 0, pinning only shard
	// 0's snapshot. Shard 1 has no cursor yet.
	if rows, _, err := cur.Fetch(1); err != nil || len(rows) != 1 {
		t.Fatalf("fetch = %d rows, err %v", len(rows), err)
	}

	for round := 1; round <= 5; round++ {
		for _, rid := range rids {
			exec1(t, c, func(tx engine.Tx) error {
				return tx.Update(tid, rid, []byte(fmt.Sprintf("v%d", round)))
			})
		}
	}
	time.Sleep(2 * time.Millisecond) // let the shard-1 snapshot ages pass zero
	c.Shard(0).GC().RunGT()
	c.Shard(1).GC().RunGT()

	live0 := c.Shard(0).Space().Live()
	live1 := c.Shard(1).Space().Live()
	// Shard 0 must keep history for the pinned cursor (4 rows x 5 updates of
	// garbage held back); shard 1 must have collapsed to one version per row.
	if live0 < 20 {
		t.Fatalf("shard 0 reclaimed under a pinned cursor: live=%d", live0)
	}
	if live1 > 4 {
		t.Fatalf("pinned cursor on shard 0 blocked shard 1: live=%d", live1)
	}

	// Draining the cursor past shard 0 releases its snapshot too.
	for !cur.Exhausted() {
		if _, _, err := cur.Fetch(100); err != nil {
			t.Fatal(err)
		}
	}
	c.Shard(0).GC().RunGT()
	if live := c.Shard(0).Space().Live(); live > 4 {
		t.Fatalf("shard 0 still blocked after cursor drained past it: live=%d", live)
	}
}

// TestClusterRecovery2PC proves in-doubt settlement end to end with real
// persistence: a cluster is closed mid-protocol by fail-stop injection in the
// crash matrix; here we prove the clean-shutdown/reopen path keeps committed
// cross-shard transactions and the XID counter.
func TestClusterRecoveryRoundTrip(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{
		Shards: 2,
		Configure: func(int) core.Config {
			return core.Config{Persistence: &core.Persistence{Dir: dir, Sync: false}}
		},
	}
	c, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tid := mustCreate(t, c, "T")
	r1 := insert1(t, c, tid, "a0")
	r2 := insert1(t, c, tid, "b0")
	tx := c.Begin(txn.StmtSI)
	if err := tx.Update(tid, r1, []byte("a1")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Update(tid, r2, []byte("b1")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	xidBefore := c.xid.Load()
	c.Close()

	c2, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if got := c2.TableID("T"); got != tid {
		t.Fatalf("recovered table id %d, want %d", got, tid)
	}
	if img, ok := get1(t, c2, tid, r1); !ok || img != "a1" {
		t.Fatalf("recovered shard-0 half = %q,%v", img, ok)
	}
	if img, ok := get1(t, c2, tid, r2); !ok || img != "b1" {
		t.Fatalf("recovered shard-1 half = %q,%v", img, ok)
	}
	if c2.xid.Load() < xidBefore {
		t.Fatalf("XID counter regressed: %d < %d", c2.xid.Load(), xidBefore)
	}
}

func TestStatsAggregation(t *testing.T) {
	c := openTest(t, 3)
	tid := mustCreate(t, c, "T")
	for i := 0; i < 9; i++ {
		insert1(t, c, tid, "v")
	}
	st := c.Stats()
	var sum int64
	for i := 0; i < 3; i++ {
		ss := c.Shard(i).Stats()
		sum += ss.VersionsLive
		if ss.CurrentCID > st.CurrentCID {
			t.Fatalf("aggregate CurrentCID %d below shard %d's %d", st.CurrentCID, i, ss.CurrentCID)
		}
		if ss.GlobalHorizon < st.GlobalHorizon {
			t.Fatalf("aggregate horizon %d above shard %d's %d", st.GlobalHorizon, i, ss.GlobalHorizon)
		}
	}
	if st.VersionsLive != sum {
		t.Fatalf("aggregate live %d != shard sum %d", st.VersionsLive, sum)
	}
}
