package ts

// The scalar identifier domains shared by every layer of the engine live
// here, next to the timestamp domain, so that low-level packages (snapshot
// trackers, version space) can name tables and records without importing the
// catalog.

// TableID identifies a table in the catalog. IDs are dense and start at 1; 0
// is never a valid table.
type TableID uint32

// RID identifies a record within one table (the "record identifier" of the
// paper's version headers). RIDs are unique per table, not globally.
type RID uint64

// RecordKey names one record globally: the (table, RID) pair under which
// version chains are registered in the RID hash table.
type RecordKey struct {
	Table TableID
	RID   RID
}

// PartitionID identifies one partition of a partitioned table. Partitions
// are numbered from 0; unpartitioned tables have no partition identity.
type PartitionID uint32

// PartKey names one partition globally, the granularity of the
// partition-level semantic optimization §4.3 describes as possible beyond
// HANA's table-level implementation.
type PartKey struct {
	Table     TableID
	Partition PartitionID
}
