package ts

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func cids(vs ...uint64) []CID {
	out := make([]CID, len(vs))
	for i, v := range vs {
		out[i] = CID(v)
	}
	return out
}

func TestLGN(t *testing.T) {
	s := cids(1, 4, 6, 8, 12, 14)
	cases := []struct {
		t    CID
		want CID
	}{
		{0, 1},
		{1, 1},
		{2, 4},
		{10, 12}, // the paper's worked example: LGN(10, S) = 12
		{14, 14},
		{15, Infinity}, // the paper's worked example: LGN(15, S) = Infinity
	}
	for _, c := range cases {
		if got := LGN(c.t, s); got != c.want {
			t.Errorf("LGN(%d, %v) = %d, want %d", c.t, s, got, c.want)
		}
	}
}

func TestLGNEmptySequence(t *testing.T) {
	if got := LGN(5, nil); got != Infinity {
		t.Errorf("LGN on empty sequence = %d, want Infinity", got)
	}
}

func TestIntervalContains(t *testing.T) {
	iv := Interval{Start: 4, End: 5}
	if !iv.Contains(4) {
		t.Error("interval [4,5) must contain 4")
	}
	if iv.Contains(5) {
		t.Error("interval [4,5) must not contain 5")
	}
	if iv.Contains(3) {
		t.Error("interval [4,5) must not contain 3")
	}
	if iv.Empty() {
		t.Error("interval [4,5) is not empty")
	}
	if !(Interval{Start: 4, End: 4}).Empty() {
		t.Error("interval [4,4) is empty")
	}
}

func TestIntervals(t *testing.T) {
	// Figure 1 of the paper: record 1 has versions with CIDs 1,2,4,5,99 and
	// visible intervals {[1,2), [2,4), [4,5), [5,99), [99, Infinity)}.
	got := Intervals(cids(1, 2, 4, 5, 99))
	want := []Interval{
		{1, 2}, {2, 4}, {4, 5}, {5, 99}, {99, Infinity},
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Intervals = %v, want %v", got, want)
	}
}

func TestMergeIntersectPaperExample(t *testing.T) {
	// Definition 1's worked example: S = [90,92,95,96,99], T = [91,93,94,95,98]
	// yields T∩ = {93, 94}.
	s := cids(90, 92, 95, 96, 99)
	tt := cids(91, 93, 94, 95, 98)
	got := MergeIntersect(s, tt)
	want := cids(93, 94)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("MergeIntersect = %v, want %v", got, want)
	}
	if naive := NaiveIntersect(s, tt); !reflect.DeepEqual(naive, want) {
		t.Errorf("NaiveIntersect = %v, want %v", naive, want)
	}
}

func TestMergeIntersectFigure1(t *testing.T) {
	// Figure 1: record versions at CIDs 1,2,4,5,99; active snapshot
	// timestamps 3 and 99 (the two active transactions). The global minimum
	// timestamp is 3, so the conventional collector reclaims only v11 (CID 1).
	// Interval GC additionally identifies v13 (CID 4, interval [4,5)) and v14
	// (CID 5, interval [5,99)) — no active snapshot falls in either interval.
	s := cids(3, 99)
	versions := cids(1, 2, 4, 5, 99)
	got := MergeIntersect(s, versions)
	want := cids(1, 4, 5)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("MergeIntersect = %v, want %v", got, want)
	}
}

func TestMergeIntersectEdgeCases(t *testing.T) {
	cases := []struct {
		name string
		s, t []CID
		want []CID
	}{
		{"empty versions", cids(1, 2), nil, nil},
		{"single version never garbage", cids(1, 2), cids(5), nil},
		{"no snapshots: all but last garbage", nil, cids(1, 2, 3), cids(1, 2)},
		{"snapshot inside every interval", cids(1, 2, 3), cids(1, 2, 3), nil},
		{"all snapshots below versions", cids(1, 2), cids(10, 20, 30), cids(10, 20)},
		{"all snapshots above versions", cids(100, 200), cids(10, 20, 30), cids(10, 20)},
		{"snapshot equal to version start pins it", cids(10), cids(10, 20), nil},
		{"snapshot equal to interval end does not pin", cids(20), cids(10, 20), cids(10)},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := MergeIntersect(c.s, c.t); !reflect.DeepEqual(got, c.want) {
				t.Errorf("MergeIntersect(%v, %v) = %v, want %v", c.s, c.t, got, c.want)
			}
			if got := NaiveIntersect(c.s, c.t); !reflect.DeepEqual(got, c.want) {
				t.Errorf("NaiveIntersect(%v, %v) = %v, want %v", c.s, c.t, got, c.want)
			}
		})
	}
}

// randSeq builds a sorted sequence of CIDs in [1, bound) with distinct
// elements when strict is set.
func randSeq(r *rand.Rand, n int, bound uint64, strict bool) []CID {
	seen := make(map[uint64]bool, n)
	out := make([]CID, 0, n)
	for len(out) < n {
		v := uint64(r.Int63n(int64(bound))) + 1
		if strict && seen[v] {
			continue
		}
		seen[v] = true
		out = append(out, CID(v))
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func TestMergeMatchesNaiveQuick(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	f := func(sn, tn uint8) bool {
		s := randSeq(r, int(sn%24), 64, false)
		tt := randSeq(r, int(tn%24), 64, true)
		return reflect.DeepEqual(MergeIntersect(s, tt), NaiveIntersect(s, tt))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestIntersectDefinition checks both implementations directly against
// Definition 1: t ∈ T∩ iff no active snapshot timestamp lies inside the
// visible interval [t, next(t)).
func TestIntersectDefinition(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for iter := 0; iter < 500; iter++ {
		s := randSeq(r, r.Intn(16), 40, false)
		tt := randSeq(r, r.Intn(16), 40, true)
		var want []CID
		ivs := Intervals(tt)
		for i := 0; i+1 < len(tt); i++ {
			pinned := false
			for _, snap := range s {
				if ivs[i].Contains(snap) {
					pinned = true
					break
				}
			}
			if !pinned {
				want = append(want, tt[i])
			}
		}
		if got := MergeIntersect(s, tt); !reflect.DeepEqual(got, want) {
			t.Fatalf("s=%v t=%v: merge=%v want=%v", s, tt, got, want)
		}
		if got := NaiveIntersect(s, tt); !reflect.DeepEqual(got, want) {
			t.Fatalf("s=%v t=%v: naive=%v want=%v", s, tt, got, want)
		}
	}
}

func TestGarbageMask(t *testing.T) {
	s := cids(3, 99)
	tt := cids(1, 2, 4, 5, 99)
	mask := GarbageMask(s, tt)
	want := []bool{true, false, true, true, false}
	if !reflect.DeepEqual(mask, want) {
		t.Errorf("GarbageMask = %v, want %v", mask, want)
	}
}

func TestGarbageMaskNeverMarksLast(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for iter := 0; iter < 200; iter++ {
		s := randSeq(r, r.Intn(10), 30, false)
		tt := randSeq(r, 1+r.Intn(10), 30, true)
		mask := GarbageMask(s, tt)
		if len(mask) != len(tt) {
			t.Fatalf("mask length %d != %d", len(mask), len(tt))
		}
		if mask[len(mask)-1] {
			t.Fatalf("latest version marked garbage: s=%v t=%v", s, tt)
		}
	}
}

func BenchmarkMergeIntersect(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	s := randSeq(r, 256, 1<<20, false)
	tt := randSeq(r, 256, 1<<20, true)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MergeIntersect(s, tt)
	}
}

func BenchmarkNaiveIntersect(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	s := randSeq(r, 256, 1<<20, false)
	tt := randSeq(r, 256, 1<<20, true)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NaiveIntersect(s, tt)
	}
}
