// Package ts defines the commit-timestamp domain used throughout the engine
// and the interval arithmetic behind interval garbage collection: the least
// greater number (LGN), visible intervals, and the consecutive interval
// intersection problem of Definition 1 in the paper, solved both naively and
// with the merge-based Algorithm 1.
package ts

import "math"

// CID is a commit identifier. Snapshot timestamps live in the same domain: a
// snapshot with timestamp s sees exactly the versions whose CID is <= s.
//
// CID 0 never names a committed group; it is reserved as the "unresolved"
// marker for versions whose transaction has not committed yet.
type CID uint64

// Infinity is the sentinel upper bound of the timestamp domain. It compares
// greater than every assignable CID and stands in for "no least greater
// number exists" in LGN computations.
const Infinity CID = math.MaxUint64

// Invalid is the zero CID, used for not-yet-committed versions.
const Invalid CID = 0

// Interval is a half-open visible interval [Start, End): the set of snapshot
// timestamps to which a version with CID Start is visible, where End is the
// CID of the next-newer version of the same record (or Infinity).
type Interval struct {
	Start CID
	End   CID
}

// Contains reports whether snapshot timestamp s falls inside the interval.
func (iv Interval) Contains(s CID) bool {
	return iv.Start <= s && s < iv.End
}

// Empty reports whether the interval contains no timestamp at all.
func (iv Interval) Empty() bool {
	return iv.End <= iv.Start
}

// LGN returns the least greater number for t with respect to the ordered
// sequence s: the smallest element of s that is greater than or equal to t,
// or Infinity when no such element exists. s must be sorted ascending.
func LGN(t CID, s []CID) CID {
	lo, hi := 0, len(s)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if s[mid] < t {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == len(s) {
		return Infinity
	}
	return s[lo]
}

// Intervals expands an ordered sequence of version CIDs into the visible
// intervals of its elements: element i maps to [t[i], t[i+1]) and the last
// element to [t[n-1], Infinity).
func Intervals(t []CID) []Interval {
	out := make([]Interval, len(t))
	for i, v := range t {
		end := Infinity
		if i+1 < len(t) {
			end = t[i+1]
		}
		out[i] = Interval{Start: v, End: end}
	}
	return out
}

// NaiveIntersect computes T∩ of Definition 1 by checking, for every element
// of t, whether any active snapshot timestamp in s falls inside its visible
// interval. It runs in O(|t|·|s|) (binary search brings each probe to
// O(log|s|), but the per-element loop structure is the naive one) and exists
// as the correctness oracle and ablation baseline for MergeIntersect.
//
// Both sequences must be sorted ascending. The returned slice preserves the
// order of t. The last element of t is never part of the result: its visible
// interval extends to Infinity and therefore covers every future snapshot.
func NaiveIntersect(s, t []CID) []CID {
	var out []CID
	for i := 0; i+1 < len(t); i++ {
		// LGN(t[i]+1, t) is simply t[i+1] because t is ordered and strictly
		// increasing in CIDs of committed versions of one record.
		if t[i+1] <= LGN(t[i], s) {
			out = append(out, t[i])
		}
	}
	return out
}

// MergeIntersect is Algorithm 1 of the paper: the merge-based solution to the
// consecutive interval intersection problem. Given the ordered active
// snapshot timestamps s and the ordered committed version CIDs t of one
// record, it returns the subset of t whose visible intervals contain no
// element of s — the versions invisible to every active and future snapshot.
//
// It runs in O(|t|+|s|). Both inputs must be sorted ascending; t must be
// strictly increasing (committed versions of one record have distinct CIDs).
func MergeIntersect(s, t []CID) []CID {
	var out []CID
	i, j := 0, 0
	for i < len(t)-1 {
		switch {
		case j < len(s) && s[j] < t[i]:
			j++
		case j == len(s) || t[i+1] <= s[j]:
			// LGN(t[i], s) is s[j] (or Infinity when s is exhausted), and the
			// next version's CID t[i+1] does not exceed it, so no snapshot
			// lives inside [t[i], t[i+1]).
			out = append(out, t[i])
			i++
		default:
			i++
		}
	}
	return out
}

// GarbageMask reports, for each element of t, whether it is garbage with
// respect to s, as a boolean mask aligned with t. It is a convenience wrapper
// over MergeIntersect used by collectors that reclaim in place.
func GarbageMask(s, t []CID) []bool {
	mask := make([]bool, len(t))
	garbage := MergeIntersect(s, t)
	j := 0
	for i, v := range t {
		if j < len(garbage) && garbage[j] == v {
			mask[i] = true
			j++
		}
	}
	return mask
}
