package repl

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"hybridgc/internal/core"
	"hybridgc/internal/fault"
	"hybridgc/internal/wal"
	"hybridgc/internal/wire"
)

// ReplicaConfig tunes the replica side.
type ReplicaConfig struct {
	// Upstream is the primary's service address.
	Upstream string
	// Token is the primary's HELLO token, if any.
	Token string
	// ReplicaID names this replica to the primary; it keys the primary's
	// floor/pin state across reconnects, so it must be stable.
	ReplicaID string
	// ReportEvery paces applied-LSN/snapshot reports (<=0 selects 200ms).
	ReportEvery time.Duration
	// DialTimeout bounds connect and handshake (<=0 selects 5s).
	DialTimeout time.Duration
	// StallTimeout is the longest silence tolerated from the primary —
	// heartbeats normally arrive every HeartbeatEvery — before the stream
	// is torn down and redialed (<=0 selects 10s).
	StallTimeout time.Duration
	// WriteTimeout bounds each report write (<=0 selects StallTimeout). A
	// partition toward the primary blocks the reporter once buffers fill;
	// this deadline tears the stream down so the replica redials instead of
	// silently ceasing to report while appearing alive locally.
	WriteTimeout time.Duration
	// ReconnectBase/ReconnectMax bound the redial backoff
	// (<=0 select 50ms / 2s).
	ReconnectBase time.Duration
	ReconnectMax  time.Duration
}

func (c *ReplicaConfig) fill() {
	if c.ReplicaID == "" {
		c.ReplicaID = "replica"
	}
	if c.ReportEvery <= 0 {
		c.ReportEvery = 200 * time.Millisecond
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = 5 * time.Second
	}
	if c.StallTimeout <= 0 {
		c.StallTimeout = 10 * time.Second
	}
	if c.WriteTimeout <= 0 {
		c.WriteTimeout = c.StallTimeout
	}
	if c.ReconnectBase <= 0 {
		c.ReconnectBase = 50 * time.Millisecond
	}
	if c.ReconnectMax <= 0 {
		c.ReconnectMax = 2 * time.Second
	}
}

// Replica streams the primary's WAL into a local read-only engine. It keeps
// no replication state on disk: the applied cursor lives in memory (in the
// primary's LSN space), and a restarted replica re-bootstraps from a fresh
// checkpoint — which is also the recovery path after demotion.
type Replica struct {
	db  *core.DB
	cfg ReplicaConfig

	// applied is the next LSN the applier expects (records below it are
	// duplicates). primaryLSN is the stream head from the last heartbeat.
	applied        atomic.Uint64
	primaryLSN     atomic.Uint64
	recordsApplied atomic.Int64
	reconnects     atomic.Int64

	mu      sync.Mutex
	conn    net.Conn
	stopped bool
	stop    chan struct{}
}

// NewReplica builds a replica over an empty read-only engine.
func NewReplica(db *core.DB, cfg ReplicaConfig) (*Replica, error) {
	cfg.fill()
	if cfg.Upstream == "" {
		return nil, errors.New("repl: replica requires an upstream address")
	}
	if !db.ReadOnly() {
		return nil, errors.New("repl: replica engine must be opened read-only")
	}
	return &Replica{db: db, cfg: cfg, stop: make(chan struct{})}, nil
}

// Run streams until Stop, reconnecting with backoff across stream failures
// and primary restarts. It returns nil after Stop, or ErrBootstrapRequired
// when the primary demoted this replica or no longer retains its position —
// the caller must rebuild the engine and start a fresh Replica.
func (r *Replica) Run() error {
	delay := r.cfg.ReconnectBase
	for {
		if r.isStopped() {
			return nil
		}
		before := r.applied.Load()
		err := r.streamOnce()
		if r.isStopped() {
			return nil
		}
		if errors.Is(err, ErrBootstrapRequired) {
			return err
		}
		if r.applied.Load() > before {
			delay = r.cfg.ReconnectBase // the stream made progress
		}
		r.reconnects.Add(1)
		select {
		case <-r.stop:
			return nil
		case <-time.After(delay):
		}
		if delay *= 2; delay > r.cfg.ReconnectMax {
			delay = r.cfg.ReconnectMax
		}
	}
}

// Stop ends the replica: the active stream's socket is closed and Run
// returns. Safe to call more than once.
func (r *Replica) Stop() {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.stopped {
		return
	}
	r.stopped = true
	close(r.stop)
	if r.conn != nil {
		r.conn.Close()
	}
}

func (r *Replica) isStopped() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stopped
}

// setConn tracks the live socket so Stop can cut a blocked read; it returns
// false when the replica is already stopped.
func (r *Replica) setConn(nc net.Conn) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.stopped {
		return false
	}
	r.conn = nc
	return true
}

// AppliedLSN returns the next LSN the applier expects — equal to the
// primary's NextLSN when fully caught up.
func (r *Replica) AppliedLSN() wal.LSN { return wal.LSN(r.applied.Load()) }

// WaitLSN blocks until the applied cursor reaches target (the primary's
// NextLSN at some instant) or the timeout expires.
func (r *Replica) WaitLSN(target wal.LSN, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for wal.LSN(r.applied.Load()) < target {
		if time.Now().After(deadline) {
			return fmt.Errorf("repl: applied %s did not reach %s within %v",
				wal.LSN(r.applied.Load()), target, timeout)
		}
		select {
		case <-r.stop:
			return errors.New("repl: replica stopped")
		case <-time.After(2 * time.Millisecond):
		}
	}
	return nil
}

// streamOnce runs one stream attempt: dial, HELLO, OpReplStream, then apply
// until the stream ends.
func (r *Replica) streamOnce() error {
	nc, err := net.DialTimeout("tcp", r.cfg.Upstream, r.cfg.DialTimeout)
	if err != nil {
		return err
	}
	if !r.setConn(nc) {
		nc.Close()
		return nil
	}
	defer nc.Close()
	br := bufio.NewReaderSize(nc, 1<<16)
	bw := bufio.NewWriterSize(nc, 1<<16)

	_ = nc.SetDeadline(time.Now().Add(r.cfg.DialTimeout))
	hello := (&wire.Builder{}).Raw([]byte(wire.Magic)).U8(wire.Version).Str(r.cfg.Token).Take()
	if err := request(br, bw, wire.OpHello, hello, func(*wire.Parser) error { return nil }); err != nil {
		return err
	}

	start := r.applied.Load()
	reqBody := &wire.Builder{}
	wire.ReplStreamRequest{ReplicaID: r.cfg.ReplicaID, StartLSN: start}.Encode(reqBody)
	err = request(br, bw, wire.OpReplStream, reqBody.Take(), func(p *wire.Parser) error {
		r.primaryLSN.Store(p.U64())
		return p.Err()
	})
	if err != nil {
		if errors.Is(err, wire.ErrReplDemoted) || errors.Is(err, wire.ErrReplTooOld) {
			return fmt.Errorf("%w: %v", ErrBootstrapRequired, err)
		}
		return err
	}
	_ = nc.SetDeadline(time.Time{})

	// The reporter is the stream's only writer from here on; closing the
	// socket (apply-loop exit, Stop) is what unblocks and ends it.
	repDone := make(chan struct{})
	go r.reporter(nc, bw, repDone)
	defer func() { nc.Close(); <-repDone }()

	expectCheckpoint := start == 0
	// One reused message buffer for the whole stream: every case below fully
	// decodes (the Rm* decoders copy out) before the next read overwrites it.
	var scratch []byte
	for {
		_ = nc.SetReadDeadline(time.Now().Add(r.cfg.StallTimeout))
		op, body, sc, err := wire.ReadStreamMsgInto(br, scratch)
		scratch = sc
		if err != nil {
			return err
		}
		switch op {
		case wire.RmCheckpoint:
			if !expectCheckpoint {
				return errors.New("repl: unexpected mid-stream checkpoint")
			}
			expectCheckpoint = false
			ck, err := wal.DecodeCheckpoint(body)
			if err != nil {
				return err
			}
			if err := r.db.ApplyCheckpoint(ck); err != nil {
				if !errors.Is(err, core.ErrNotEmpty) {
					return fmt.Errorf("repl: applying bootstrap checkpoint: %w", err)
				}
				// A previous attempt died after installing its checkpoint but
				// before any record advanced the cursor, so this retry asked
				// for a full bootstrap again. The duplicate is only safe to
				// skip when it is the *same* checkpoint — CID equal to the
				// engine's commit timestamp — because catch-up records then
				// CID-dedupe against the state already applied. A different
				// CID means the primary checkpointed since the first attempt
				// (for instance after this replica was demoted while away and
				// its segment floor dropped): the commits between the two
				// checkpoints may live only in pruned segments, so skipping
				// would silently diverge. Rebuild from an empty engine.
				if cur := r.db.Manager().CurrentTS(); ck.CID != cur {
					return fmt.Errorf("%w: bootstrap checkpoint CID %d does not match engine state %d",
						ErrBootstrapRequired, ck.CID, cur)
				}
			}
		case wire.RmRecord:
			if err := fault.Hit(FPApplyStall); err != nil {
				return err
			}
			p := wire.NewParser(body)
			lsn := p.U64()
			payload := p.Raw(p.Rest())
			if err := p.Err(); err != nil {
				return err
			}
			rec, err := wal.DecodePayload(payload)
			if err != nil {
				return err
			}
			if err := r.db.ApplyRecord(rec); err != nil {
				return fmt.Errorf("repl: applying record %s: %w", wal.LSN(lsn), err)
			}
			r.advance(lsn + 1)
			r.recordsApplied.Add(1)
		case wire.RmHeartbeat:
			p := wire.NewParser(body)
			head, resume := p.U64(), p.U64()
			if err := p.Err(); err != nil {
				return err
			}
			r.primaryLSN.Store(head)
			// resume is the primary's assertion that this replica already
			// holds everything below head; it moves the cursor across
			// record-free rotations so WaitLSN converges and a reconnect
			// resumes from the right segment on an idle stream.
			if resume != 0 {
				r.advance(resume)
			}
		case wire.RmEnd:
			p := wire.NewParser(body)
			code, detail := p.U8(), p.Str()
			switch code {
			case wire.EndDemoted:
				return fmt.Errorf("%w: primary: %s", ErrBootstrapRequired, detail)
			case wire.EndDrain:
				return fmt.Errorf("repl: primary draining: %s", detail)
			default:
				return fmt.Errorf("repl: stream ended: %s", detail)
			}
		default:
			return fmt.Errorf("repl: unknown stream message 0x%02x", op)
		}
	}
}

// advance moves the applied cursor monotonically.
func (r *Replica) advance(next uint64) {
	for {
		cur := r.applied.Load()
		if next <= cur || r.applied.CompareAndSwap(cur, next) {
			return
		}
	}
}

// reporter periodically tells the primary where this replica stands: the
// applied cursor plus the local snapshot horizon (oldest open snapshot
// timestamp), which is what pins the cluster-wide GC minimum.
func (r *Replica) reporter(nc net.Conn, bw *bufio.Writer, done chan<- struct{}) {
	defer close(done)
	send := func() error {
		m := r.db.Manager()
		min, has := m.Registry().UnionMin()
		rep := wire.ReplReport{
			AppliedLSN:    r.applied.Load(),
			MinSTS:        uint64(min),
			HasSnapshots:  has,
			OpenSnapshots: int64(len(m.ActiveTimestamps())),
		}
		b := &wire.Builder{}
		rep.Encode(b)
		_ = nc.SetWriteDeadline(time.Now().Add(r.cfg.WriteTimeout))
		return wire.WriteStreamMsg(bw, wire.RmReport, b.Take())
	}
	if send() != nil {
		nc.Close()
		return
	}
	t := time.NewTicker(r.cfg.ReportEvery)
	defer t.Stop()
	for {
		select {
		case <-r.stop:
			nc.Close()
			return
		case <-t.C:
			if send() != nil {
				nc.Close()
				return
			}
		}
	}
}

// PopulateStats splices the replica's view into a STATS payload (wired as
// the replica server's StatsHook).
func (r *Replica) PopulateStats(out *wire.Stats) {
	out.ReplRole = "replica"
	out.ReplUpstream = r.cfg.Upstream
	out.ReplAppliedLSN = r.applied.Load()
	out.ReplPrimaryLSN = r.primaryLSN.Load()
	out.ReplRecordsApplied = r.recordsApplied.Load()
	out.ReplReconnects = r.reconnects.Load()
}

// request performs one request/response exchange during the handshake
// phase, decoding an error frame into its wire sentinel.
func request(br *bufio.Reader, bw *bufio.Writer, op byte, body []byte, onOK func(*wire.Parser) error) error {
	if _, err := wire.WriteFrame(bw, op, body); err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	status, resp, err := wire.ReadFrame(br)
	if err != nil {
		return err
	}
	if status == wire.StErr {
		p := wire.NewParser(resp)
		code, msg := p.U16(), p.Str()
		if err := p.Err(); err != nil {
			return err
		}
		return &wire.Error{Code: code, Msg: msg}
	}
	return onOK(wire.NewParser(resp))
}
