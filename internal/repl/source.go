package repl

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"hybridgc/internal/core"
	"hybridgc/internal/fault"
	"hybridgc/internal/sts"
	"hybridgc/internal/ts"
	"hybridgc/internal/wal"
	"hybridgc/internal/wire"
)

// SourceConfig tunes the primary side of replication.
type SourceConfig struct {
	// MaxSegmentLag bounds how many log segments a replica may trail the
	// primary's active segment before it is demoted (<=0 selects 8). This is
	// the cluster-wide analogue of the paper's version-space concern: an
	// unbounded laggard would pin segment retention (and, through its
	// snapshot reports, the GC horizon) forever.
	MaxSegmentLag int
	// StaleAfter demotes a replica that has not reported for this long
	// (<=0 selects 10s). It doubles as the stream's read deadline.
	StaleAfter time.Duration
	// HeartbeatEvery paces stream heartbeats and the lag/drain checks
	// (<=0 selects 500ms).
	HeartbeatEvery time.Duration
	// WriteTimeout bounds every stream write — records, heartbeats, end
	// messages, and refusal frames (<=0 selects 5s). A partitioned replica
	// stops draining its socket; once the kernel buffers fill, the next
	// write blocks until this deadline fires and the stream tears down,
	// releasing the replica's horizon pin immediately (the sweeper demotes
	// it after StaleAfter). Without this bound a partition could pin the GC
	// horizon for as long as the partition lasts.
	WriteTimeout time.Duration
	// SubscriptionBuffer sizes the live-tail channel per stream (<=0
	// selects the wal default, 4096). A stream that cannot drain it is torn
	// down rather than ever blocking commits.
	SubscriptionBuffer int
}

func (c *SourceConfig) fill() {
	if c.MaxSegmentLag <= 0 {
		c.MaxSegmentLag = 8
	}
	if c.StaleAfter <= 0 {
		c.StaleAfter = 10 * time.Second
	}
	if c.HeartbeatEvery <= 0 {
		c.HeartbeatEvery = 500 * time.Millisecond
	}
	if c.WriteTimeout <= 0 {
		c.WriteTimeout = 5 * time.Second
	}
}

// replicaState is the primary's view of one replica. Guarded by Source.mu.
type replicaState struct {
	id        string
	connected bool
	demoted   bool
	applied   wal.LSN
	openSnaps int64
	// pin holds the replica's oldest open snapshot timestamp in the
	// primary's snapshot-timestamp registry, making every GC variant
	// respect remote readers. Nil while the replica reports no snapshots;
	// always released on stream detach.
	pin   *sts.Handle
	pinTS ts.CID
	// floor is the lowest log segment this replica still needs: 0 during
	// bootstrap (everything), then the segment of its applied LSN. It
	// survives disconnects so a briefly-absent replica can resume, and is
	// dropped on demotion.
	floor      uint64
	hasFloor   bool
	lastReport time.Time
}

// Source is the primary-side replication service. It implements
// server.ReplHandler structurally; the server package never imports repl.
type Source struct {
	db  *core.DB
	log *wal.Log
	cfg SourceConfig

	mu       sync.Mutex
	replicas map[string]*replicaState
	closed   bool

	recordsSent atomic.Int64
	demotions   atomic.Int64

	stopSweep chan struct{}
	sweepDone chan struct{}
}

// NewSource builds the replication source over a persistent primary and
// registers its segment-retention hook: from here on, checkpoints never
// prune a segment the slowest live replica still needs.
func NewSource(db *core.DB, cfg SourceConfig) (*Source, error) {
	cfg.fill()
	if db.WAL() == nil {
		return nil, errors.New("repl: source requires a persistent database")
	}
	s := &Source{
		db:        db,
		log:       db.WAL(),
		cfg:       cfg,
		replicas:  make(map[string]*replicaState),
		stopSweep: make(chan struct{}),
		sweepDone: make(chan struct{}),
	}
	db.SetSegmentRetention(s.lowestNeeded)
	go s.sweeper()
	return s, nil
}

// Close stops the staleness sweeper and refuses new streams. Active streams
// end through server drain (their pins are released on detach).
func (s *Source) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	close(s.stopSweep)
	<-s.sweepDone
}

// lowestNeeded is the segment-retention hook: the minimum floor over every
// replica that still counts (not demoted). ok=false when no replica pins
// retention, letting checkpoints prune freely.
func (s *Source) lowestNeeded() (uint64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	low, ok := uint64(0), false
	for _, st := range s.replicas {
		if st.demoted || !st.hasFloor {
			continue
		}
		if !ok || st.floor < low {
			low, ok = st.floor, true
		}
	}
	return low, ok
}

// sweeper demotes replicas that disconnected and stayed silent past
// StaleAfter, releasing their hold on segment retention.
func (s *Source) sweeper() {
	defer close(s.sweepDone)
	period := s.cfg.StaleAfter / 2
	if period < 10*time.Millisecond {
		period = 10 * time.Millisecond
	}
	t := time.NewTicker(period)
	defer t.Stop()
	for {
		select {
		case <-s.stopSweep:
			return
		case <-t.C:
			s.mu.Lock()
			for _, st := range s.replicas {
				if !st.connected && !st.demoted && time.Since(st.lastReport) > s.cfg.StaleAfter {
					s.demoteLocked(st)
				}
			}
			s.mu.Unlock()
		}
	}
}

// demoteLocked drops everything the replica holds over the primary — its
// horizon pin and its segment floor — and marks it for re-bootstrap.
func (s *Source) demoteLocked(st *replicaState) {
	s.releasePinLocked(st)
	st.hasFloor = false
	st.demoted = true
	s.demotions.Add(1)
}

// releasePinLocked drops the replica's horizon pin. FPPinLeak gates the
// release so tests can re-introduce the "dead peer pins the GC horizon
// forever" bug and prove the chaos harness detects it.
func (s *Source) releasePinLocked(st *replicaState) {
	if st.pin == nil {
		return
	}
	if fault.Hit(FPPinLeak) != nil {
		return
	}
	st.pin.Release()
	st.pin = nil
	st.pinTS = 0
}

// admit registers the stream under Source.mu and sets the replica's initial
// segment floor before any checkpoint or segment work happens — closing the
// race where a concurrent checkpoint prunes a segment the stream is about
// to read.
func (s *Source) admit(req wire.ReplStreamRequest) (*replicaState, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, wire.ErrDraining
	}
	st := s.replicas[req.ReplicaID]
	if st == nil {
		st = &replicaState{id: req.ReplicaID}
		s.replicas[req.ReplicaID] = st
	}
	if st.connected {
		return nil, fmt.Errorf("%w: replica %q is already streaming", wire.ErrBadRequest, req.ReplicaID)
	}
	if st.demoted && req.StartLSN != 0 {
		return nil, wire.ErrReplDemoted
	}
	st.demoted = false
	st.connected = true
	st.lastReport = time.Now()
	st.applied = wal.LSN(req.StartLSN)
	if req.StartLSN == 0 {
		st.floor, st.hasFloor = 0, true // bootstrap: retain everything
	} else {
		st.floor, st.hasFloor = wal.LSN(req.StartLSN).Segment(), true
	}
	return st, nil
}

// detach ends the stream's hold on the horizon: the pin is released (a
// disconnected replica's snapshots cannot be trusted to still exist), while
// the floor and report time survive so a quick reconnect resumes cheaply.
// The sweeper demotes the replica if it stays away past StaleAfter.
func (s *Source) detach(st *replicaState) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st.connected = false
	st.lastReport = time.Now()
	s.releasePinLocked(st)
}

// refuse answers the OpReplStream request with an error frame (the stream
// never started, so the request/response protocol still applies).
func (s *Source) refuse(nc net.Conn, bw *bufio.Writer, err error) error {
	body := (&wire.Builder{}).U16(wire.ErrorCode(err)).Str(err.Error()).Take()
	_ = nc.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
	if _, werr := wire.WriteFrame(bw, wire.StErr, body); werr == nil {
		_ = bw.Flush()
	}
	return err
}

// ServeStream drives one hijacked replication stream; it implements
// server.ReplHandler. The calling goroutine is the stream's only writer
// (records, heartbeats, end messages); a second goroutine reads the
// replica's reports.
func (s *Source) ServeStream(nc net.Conn, br *bufio.Reader, bw *bufio.Writer, req wire.ReplStreamRequest, draining func() bool) error {
	if req.ReplicaID == "" {
		return s.refuse(nc, bw, fmt.Errorf("%w: empty replica id", wire.ErrBadRequest))
	}
	st, err := s.admit(req)
	if err != nil {
		return s.refuse(nc, bw, err)
	}
	defer s.detach(st)

	// Subscribe to live appends before looking at the disk so nothing falls
	// between catch-up and tailing; duplicates are skipped by LSN order.
	sub := s.log.Subscribe(s.cfg.SubscriptionBuffer)
	defer sub.Close()

	var ck *wal.Checkpoint
	bootstrap := req.StartLSN == 0
	if bootstrap {
		// The floor registered by admit (0) keeps Checkpoint from pruning
		// anything while the bootstrap is in flight.
		ck, err = wal.ReadCheckpoint(s.db.PersistDir())
		if errors.Is(err, wal.ErrNoCheckpoint) {
			if err = s.db.Checkpoint(); err == nil {
				ck, err = wal.ReadCheckpoint(s.db.PersistDir())
			}
		}
		if err != nil {
			return s.refuse(nc, bw, fmt.Errorf("repl: checkpoint for bootstrap: %w", err))
		}
	}

	segs, err := wal.Segments(s.db.PersistDir())
	if err != nil {
		return s.refuse(nc, bw, err)
	}
	startSeg := wal.LSN(req.StartLSN).Segment()
	if !bootstrap {
		// Resume is only possible while the starting segment is retained
		// and the cursor is not past the head.
		found := false
		for _, seg := range segs {
			if seg.Seq == startSeg {
				found = true
				break
			}
		}
		if !found || wal.LSN(req.StartLSN) > s.log.NextLSN() {
			s.mu.Lock()
			st.hasFloor = false // the floor admit set points at nothing
			s.mu.Unlock()
			return s.refuse(nc, bw, wire.ErrReplTooOld)
		}
	}

	// Accept: the StOK body carries the stream head so the replica can see
	// its lag immediately.
	ack := (&wire.Builder{}).U64(uint64(s.log.NextLSN())).Take()
	if _, err := wire.WriteFrame(bw, wire.StOK, ack); err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return err
	}

	readerErr := make(chan error, 1)
	go s.readReports(nc, br, st, readerErr)

	if bootstrap {
		if err := s.send(nc, bw, wire.RmCheckpoint, wal.EncodeCheckpoint(ck)); err != nil {
			return err
		}
	}

	// Catch-up: ship retained segments from the cursor. Records the
	// checkpoint already covers are skipped CID-wise by the applier. The
	// drain flag is checked per record: a long catch-up throttled by a slow
	// replica's TCP backpressure must end promptly on server shutdown, not
	// when a per-message write deadline eventually fires.
	lastSent, sentAny := wal.LSN(0), false
	for _, seg := range segs {
		if seg.Seq < startSeg {
			continue
		}
		err := wal.ReadSegmentPayloads(seg.Path, func(idx uint64, payload []byte) error {
			lsn := wal.MakeLSN(seg.Seq, idx)
			if uint64(lsn) < req.StartLSN {
				return nil
			}
			if draining() {
				return errDrainedCatchup
			}
			if err := fault.Hit(FPPartialSegment); err != nil {
				return err
			}
			if err := s.sendRecord(nc, bw, lsn, payload); err != nil {
				return err
			}
			lastSent, sentAny = lsn, true
			return nil
		})
		if errors.Is(err, errDrainedCatchup) {
			_ = s.send(nc, bw, wire.RmEnd, endBody(wire.EndDrain, "primary draining"))
			return nil
		}
		if err != nil {
			return err
		}
	}

	// The initial catch-up ends here; until the replica has applied
	// everything it shipped, the lag bound stays out of the picture (see
	// lagging). The live tail below keeps extending lastSent, so the
	// catch-up horizon is captured now.
	catchupEnd, catchupSent := lastSent, sentAny

	// Live tail.
	hb := time.NewTicker(s.cfg.HeartbeatEvery)
	defer hb.Stop()
	for {
		select {
		case err := <-readerErr:
			return err
		case a, ok := <-sub.C():
			if !ok {
				_ = s.send(nc, bw, wire.RmEnd, endBody(wire.EndError, "wal subscription cancelled"))
				return fmt.Errorf("repl: stream %q lost its wal subscription (overflow=%v)", st.id, sub.Overflowed())
			}
			if (sentAny && a.LSN <= lastSent) || uint64(a.LSN) < req.StartLSN {
				continue // already shipped during catch-up
			}
			if err := s.sendRecord(nc, bw, a.LSN, a.Payload); err != nil {
				return err
			}
			lastSent, sentAny = a.LSN, true
		case <-hb.C:
			if draining() {
				_ = s.send(nc, bw, wire.RmEnd, endBody(wire.EndDrain, "primary draining"))
				return nil
			}
			if err := fault.Hit(FPStreamDrop); err != nil {
				nc.Close()
				return err
			}
			s.refreshFloor(st, lastSent, sentAny)
			if s.lagging(st, catchupEnd, catchupSent) {
				s.mu.Lock()
				s.demoteLocked(st)
				s.mu.Unlock()
				_ = s.send(nc, bw, wire.RmEnd, endBody(wire.EndDemoted, "exceeded segment lag bound"))
				return nil
			}
			head := s.log.NextLSN()
			// LSN assignment and subscriber publish happen under one WAL
			// lock, so once NextLSN returned head, every record below head
			// is already in this stream's channel or consumed. Empty channel
			// plus a replica that applied everything sent means it holds
			// everything below head — the heartbeat then carries head as a
			// resume point, advancing the replica's cursor across
			// record-free rotations (idle periodic checkpoints).
			resume := wal.LSN(0)
			if len(sub.C()) == 0 {
				s.mu.Lock()
				if !sentAny || st.applied > lastSent {
					resume = head
				}
				s.mu.Unlock()
			}
			body := (&wire.Builder{}).U64(uint64(head)).U64(uint64(resume)).Take()
			if err := s.send(nc, bw, wire.RmHeartbeat, body); err != nil {
				return err
			}
		}
	}
}

// refreshFloor advances the replica's segment floor to the active segment
// once it has applied everything this stream shipped — the floor normally
// tracks the applied LSN, which goes stale on an idle primary that keeps
// rotating (periodic checkpoints with no writes) and would otherwise drift a
// fully caught-up replica into the lag bound. A record appended around a
// concurrent rotation can sit briefly below the refreshed floor before it
// ships; it still arrives through the live subscription, and the worst case
// on a disconnect in that window is a re-bootstrap, never a gap.
func (s *Source) refreshFloor(st *replicaState, lastSent wal.LSN, sentAny bool) {
	active := s.log.NextLSN().Segment()
	s.mu.Lock()
	defer s.mu.Unlock()
	if !st.hasFloor {
		return
	}
	if (!sentAny || st.applied > lastSent) && active > st.floor {
		st.floor = active
	}
}

// errDrainedCatchup aborts the segment catch-up iteration when server drain
// begins; ServeStream turns it into a clean RmEnd(Drain).
var errDrainedCatchup = errors.New("repl: drain during catch-up")

// lagging applies the lag bound to a connected replica: how many segments
// its floor trails the primary's active segment. A stream still working
// through its initial catch-up is exempt — during a bootstrap the floor
// starts at 0 (and on a resume, at the reconnect segment), so on a mature
// primary the raw distance to the active segment exceeds any bound before
// the replica has had a chance to apply a single record, and demoting it
// there would only send it back into another bootstrap, forever. The bound
// engages once the replica's applied cursor passes the last record catch-up
// shipped (immediately, when catch-up shipped nothing).
func (s *Source) lagging(st *replicaState, catchupEnd wal.LSN, catchupSent bool) bool {
	active := s.log.NextLSN().Segment()
	s.mu.Lock()
	defer s.mu.Unlock()
	if !st.hasFloor {
		return false
	}
	if catchupSent && st.applied <= catchupEnd {
		return false
	}
	return active > st.floor && active-st.floor > uint64(s.cfg.MaxSegmentLag)
}

// readReports consumes the replica's report messages until the connection
// ends, folding each into the shared state (applied cursor, segment floor,
// horizon pin).
func (s *Source) readReports(nc net.Conn, br *bufio.Reader, st *replicaState, done chan<- error) {
	for {
		_ = nc.SetReadDeadline(time.Now().Add(s.cfg.StaleAfter))
		op, body, err := wire.ReadStreamMsg(br)
		if err != nil {
			done <- err
			return
		}
		if op != wire.RmReport {
			done <- fmt.Errorf("repl: unexpected stream message 0x%02x from replica %q", op, st.id)
			return
		}
		p := wire.NewParser(body)
		rep := wire.DecodeReplReport(p)
		if err := p.Err(); err != nil {
			done <- err
			return
		}
		s.handleReport(st, rep)
	}
}

// handleReport is where a replica's snapshots become cluster state: its
// oldest open snapshot timestamp is pinned in (or released from) the
// primary's registry, and its applied LSN advances the segment floor.
func (s *Source) handleReport(st *replicaState, rep wire.ReplReport) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st.lastReport = time.Now()
	st.applied = wal.LSN(rep.AppliedLSN)
	st.openSnaps = rep.OpenSnapshots
	if seg := st.applied.Segment(); st.hasFloor && seg > st.floor {
		st.floor = seg
	}
	switch {
	case rep.HasSnapshots:
		min := ts.CID(rep.MinSTS)
		if st.pin != nil && st.pinTS == min {
			return
		}
		// Acquire-then-release so the horizon never transiently clears
		// while the replica still holds snapshots.
		next := s.db.Manager().Registry().Acquire(min)
		if st.pin != nil {
			st.pin.Release()
		}
		st.pin, st.pinTS = next, min
	case st.pin != nil:
		st.pin.Release()
		st.pin = nil
		st.pinTS = 0
	}
}

// send writes one stream message under the configured write deadline —
// this is the partition trigger: once a non-draining peer fills the socket
// buffers, the deadline fires, the stream tears down, and detach releases
// the replica's horizon pin.
func (s *Source) send(nc net.Conn, bw *bufio.Writer, op byte, body []byte) error {
	_ = nc.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
	return wire.WriteStreamMsg(bw, op, body)
}

// sendRecord ships one WAL record: its LSN followed by the raw payload. The
// body is assembled in a pooled builder — this runs once per shipped record,
// the stream's hottest path.
func (s *Source) sendRecord(nc net.Conn, bw *bufio.Writer, lsn wal.LSN, payload []byte) error {
	b := wire.GetBuilder().U64(uint64(lsn)).Raw(payload)
	err := s.send(nc, bw, wire.RmRecord, b.Take())
	wire.PutBuilder(b)
	if err != nil {
		return err
	}
	s.recordsSent.Add(1)
	return nil
}

func endBody(code byte, detail string) []byte {
	return (&wire.Builder{}).U8(code).Str(detail).Take()
}

// PopulateStats splices the primary's replication view into a STATS
// payload (wired as the server's StatsHook).
func (s *Source) PopulateStats(out *wire.Stats) {
	out.ReplRole = "primary"
	out.ReplPrimaryLSN = uint64(s.log.NextLSN())
	out.ReplRecordsSent = s.recordsSent.Load()
	out.ReplDemotions = s.demotions.Load()
	active := s.log.NextLSN().Segment()
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, st := range s.replicas {
		rs := wire.ReplicaStat{
			ID:            st.id,
			Connected:     st.connected,
			Demoted:       st.demoted,
			AppliedLSN:    uint64(st.applied),
			PinnedSTS:     st.pinTS,
			LastReportAge: time.Since(st.lastReport),
		}
		if st.hasFloor {
			rs.FloorSegment = st.floor
			rs.SegmentLag = int64(active) - int64(st.floor)
		}
		out.Replicas = append(out.Replicas, rs)
	}
	sort.Slice(out.Replicas, func(i, j int) bool { return out.Replicas[i].ID < out.Replicas[j].ID })
}
