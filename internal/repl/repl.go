// Package repl is WAL-shipping replication with a cluster-wide GC horizon.
//
// The primary runs a Source: each replica's OpReplStream request hijacks its
// server connection, bootstraps from a checkpoint (or resumes from an LSN),
// catches up from on-disk segments, then tails live appends through a
// wal.Subscription. The replica runs a Replica: it replays the stream into a
// read-only engine through the core.Apply* path — versioned, at the
// primary's CIDs — so local snapshot readers keep full isolation while the
// stream advances.
//
// Replication extends the paper's central quantity — the global minimum
// snapshot timestamp that gates every garbage collector — across the
// cluster: each replica periodically reports its applied LSN and its oldest
// open snapshot, and the Source pins that snapshot timestamp in the
// primary's snapshot-timestamp registry. Interval GC, table GC and the
// hybrid collector then respect remote readers exactly as they respect
// local ones, with no changes of their own. The same reports drive WAL
// segment retention (checkpoints never prune segments a replica still
// needs) and a lag bound: a replica too far behind is demoted — its pin and
// segment floor are dropped so one stuck follower cannot pin the primary's
// version space and log forever — and must re-bootstrap from a fresh
// checkpoint.
package repl

import (
	"errors"

	"hybridgc/internal/fault"
)

// Failpoints for fault-injection tests (see internal/fault).
var (
	// FPStreamDrop fires on the primary's heartbeat tick: the stream is torn
	// down abruptly — no RmEnd — as if the network died mid-stream.
	FPStreamDrop = fault.Declare("repl/stream-drop", "drop a replication stream without an end message")
	// FPPartialSegment fires during segment catch-up, aborting mid-segment —
	// the replica is left with a prefix and must resume from its applied LSN.
	FPPartialSegment = fault.Declare("repl/partial-segment", "abort segment catch-up partway through")
	// FPApplyStall fires in the replica's apply loop before each record —
	// with a Sleep option it models a stalled applier that falls behind the
	// lag bound; with ReturnErr it kills the apply loop.
	FPApplyStall = fault.Declare("repl/apply-stall", "before applying a replicated record")
	// FPPinLeak disables the horizon-pin release on detach and demotion —
	// a deliberately reverted hardening. The chaos harness's GC-liveness
	// invariant must catch the regression: a dead replica's pin then holds
	// the cluster-wide GC horizon forever. Exists only so tests can prove
	// the harness detects the class of bug it was built for.
	FPPinLeak = fault.Declare("repl/pin-leak", "skip horizon-pin release on detach/demote")
)

// ErrBootstrapRequired reports that the replica cannot continue from its
// current state: the primary demoted it (lag bound) or no longer retains
// the segments its applied LSN needs. The caller must discard the replica's
// engine, open a fresh (empty, read-only) one, and run a new Replica over
// it — bootstrap re-ships the checkpoint.
var ErrBootstrapRequired = errors.New("repl: replica must re-bootstrap from a checkpoint")
