package repl

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"hybridgc/internal/core"
	"hybridgc/internal/fault"
	"hybridgc/internal/gc"
	"hybridgc/internal/server"
	"hybridgc/internal/sql"
	"hybridgc/internal/tpcc"
	"hybridgc/internal/ts"
	"hybridgc/internal/txn"
	"hybridgc/internal/wal"
	"hybridgc/internal/wire"
)

// fastSource keeps stream timing tight enough for loopback tests without
// making staleness sweeps race the assertions.
func fastSource() SourceConfig {
	return SourceConfig{HeartbeatEvery: 10 * time.Millisecond, StaleAfter: 30 * time.Second}
}

type primary struct {
	db   *core.DB
	src  *Source
	srv  *server.Server
	addr string
}

// startPrimary opens a persistent engine, wraps it in a replication source
// and serves it on a loopback listener. tweak, when set, adjusts the engine
// config (GC periods for the workload test) before Open.
func startPrimary(t *testing.T, scfg SourceConfig, tweak func(*core.Config)) *primary {
	t.Helper()
	cfg := core.Config{Persistence: &core.Persistence{Dir: t.TempDir()}}
	if tweak != nil {
		tweak(&cfg)
	}
	db, err := core.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	src, err := NewSource(db, scfg)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(db, server.Config{Repl: src, StatsHook: src.PopulateStats})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	served := make(chan struct{})
	go func() {
		defer close(served)
		_ = srv.Serve(ln)
	}()
	t.Cleanup(func() {
		srv.Shutdown(5 * time.Second)
		<-served
		src.Close()
		db.Close()
	})
	return &primary{db: db, src: src, srv: srv, addr: ln.Addr().String()}
}

type replica struct {
	db     *core.DB
	rep    *Replica
	runErr chan error
	exited bool
	once   sync.Once
}

// startReplica opens a fresh read-only engine and streams the primary into
// it until shutdown.
func startReplica(t *testing.T, addr, id string) *replica {
	t.Helper()
	rdb, err := core.Open(core.Config{ReadOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := NewReplica(rdb, ReplicaConfig{
		Upstream:      addr,
		ReplicaID:     id,
		ReportEvery:   10 * time.Millisecond,
		ReconnectBase: 10 * time.Millisecond,
		StallTimeout:  3 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	r := &replica{db: rdb, rep: rep, runErr: make(chan error, 1)}
	go func() { r.runErr <- rep.Run() }()
	t.Cleanup(r.shutdown)
	return r
}

func (r *replica) shutdown() {
	r.once.Do(func() {
		r.rep.Stop()
		if !r.exited {
			select {
			case <-r.runErr:
			case <-time.After(5 * time.Second):
			}
		}
		r.db.Close()
	})
}

// waitExit blocks until Run returns (a demotion or stream-fatal error path).
func (r *replica) waitExit(t *testing.T, timeout time.Duration) error {
	t.Helper()
	select {
	case err := <-r.runErr:
		r.exited = true
		return err
	case <-time.After(timeout):
		t.Fatal("replica Run did not exit")
		return nil
	}
}

func waitFor(t *testing.T, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(3 * time.Millisecond)
	}
}

func waitCaughtUp(t *testing.T, p *primary, r *replica) {
	t.Helper()
	if err := r.rep.WaitLSN(p.db.WAL().NextLSN(), 10*time.Second); err != nil {
		t.Fatal(err)
	}
}

func mustCreateTable(t *testing.T, db *core.DB, name string) ts.TableID {
	t.Helper()
	tid, err := db.CreateTable(name)
	if err != nil {
		t.Fatal(err)
	}
	return tid
}

func mustInsert(t *testing.T, db *core.DB, tid ts.TableID, img string) ts.RID {
	t.Helper()
	var rid ts.RID
	err := db.Exec(txn.StmtSI, nil, func(tx *core.Tx) error {
		var err error
		rid, err = tx.Insert(tid, []byte(img))
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	return rid
}

func mustUpdate(t *testing.T, db *core.DB, tid ts.TableID, rid ts.RID, img string) {
	t.Helper()
	err := db.Exec(txn.StmtSI, nil, func(tx *core.Tx) error {
		return tx.Update(tid, rid, []byte(img))
	})
	if err != nil {
		t.Fatal(err)
	}
}

// readRow reads a row on the replica at its current commit horizon.
func readRow(db *core.DB, tid ts.TableID, rid ts.RID) (string, bool) {
	img, ok := db.ReadAt(tid, rid, db.Manager().CurrentTS())
	return string(img), ok
}

func TestBootstrapCatchUpAndLiveTail(t *testing.T) {
	p := startPrimary(t, fastSource(), nil)
	tid := mustCreateTable(t, p.db, "accounts")
	var rids []ts.RID
	for i := 0; i < 5; i++ {
		rids = append(rids, mustInsert(t, p.db, tid, fmt.Sprintf("row-%d", i)))
	}

	r := startReplica(t, p.addr, "r1")
	waitCaughtUp(t, p, r)

	// DDL replicated with the primary-assigned table ID.
	if got := r.db.TableID("accounts"); got != tid {
		t.Fatalf("replica table id = %d, want %d", got, tid)
	}
	for i, rid := range rids {
		img, ok := readRow(r.db, tid, rid)
		if !ok || img != fmt.Sprintf("row-%d", i) {
			t.Fatalf("row %d: got %q ok=%v", i, img, ok)
		}
	}

	// Live tail: a post-bootstrap commit arrives without reconnecting.
	rid := mustInsert(t, p.db, tid, "after-bootstrap")
	waitCaughtUp(t, p, r)
	if img, ok := readRow(r.db, tid, rid); !ok || img != "after-bootstrap" {
		t.Fatalf("tailed row: got %q ok=%v", img, ok)
	}
	if n := r.rep.reconnects.Load(); n != 0 {
		t.Fatalf("live tail took %d reconnects", n)
	}

	// The replica's engine refuses local writes.
	if _, err := r.db.CreateTable("x"); !errors.Is(err, core.ErrReadOnly) {
		t.Fatalf("replica DDL: %v, want ErrReadOnly", err)
	}
	err := r.db.Exec(txn.StmtSI, nil, func(tx *core.Tx) error {
		_, err := tx.Insert(tid, []byte("w"))
		return err
	})
	if !errors.Is(err, core.ErrReadOnly) {
		t.Fatalf("replica insert: %v, want ErrReadOnly", err)
	}

	// A second stream under the same identity is refused while the first is
	// connected.
	if _, err := p.src.admit(wire.ReplStreamRequest{ReplicaID: "r1"}); !errors.Is(err, wire.ErrBadRequest) {
		t.Fatalf("duplicate stream admit: %v, want ErrBadRequest", err)
	}
}

func TestReplicaSnapshotPinsClusterHorizon(t *testing.T) {
	p := startPrimary(t, fastSource(), nil)
	tid := mustCreateTable(t, p.db, "accounts")
	rid := mustInsert(t, p.db, tid, "v0")

	r := startReplica(t, p.addr, "r1")
	waitCaughtUp(t, p, r)

	// A long-lived cursor on the replica: its snapshot timestamp must become
	// the primary's global GC horizon within a report interval.
	cur, err := r.db.OpenCursor(tid)
	if err != nil {
		t.Fatal(err)
	}
	pin := cur.SnapshotTS()
	waitFor(t, 5*time.Second, "replica pin to reach the primary", func() bool {
		return p.db.Manager().GlobalHorizon() == pin
	})

	// Churn on the primary builds a version chain the pinned horizon keeps
	// alive: global-tracker GC must reclaim nothing.
	for i := 1; i <= 30; i++ {
		mustUpdate(t, p.db, tid, rid, fmt.Sprintf("v%d", i))
	}
	before := p.db.Stats().VersionsReclaimed
	p.db.GC().RunGT()
	if got := p.db.Stats().VersionsReclaimed - before; got != 0 {
		t.Fatalf("GT reclaimed %d versions under a remote pin", got)
	}
	if h := p.db.Manager().GlobalHorizon(); h != pin {
		t.Fatalf("horizon drifted to %d while the replica cursor is open (pin %d)", h, pin)
	}

	// Releasing the replica's snapshot clears the pin and GC catches up.
	cur.Close()
	waitFor(t, 5*time.Second, "pin release to reach the primary", func() bool {
		return p.db.Manager().GlobalHorizon() > pin
	})
	p.db.GC().RunGT()
	if got := p.db.Stats().VersionsReclaimed - before; got < 25 {
		t.Fatalf("GT reclaimed only %d versions after the pin cleared", got)
	}
}

func TestSegmentRetentionAndRestartRebootstrap(t *testing.T) {
	p := startPrimary(t, fastSource(), nil)
	tid := mustCreateTable(t, p.db, "accounts")
	for i := 0; i < 4; i++ {
		mustInsert(t, p.db, tid, fmt.Sprintf("early-%d", i))
	}

	r1 := startReplica(t, p.addr, "dr")
	waitCaughtUp(t, p, r1)
	active := p.db.WAL().NextLSN().Segment()
	waitFor(t, 5*time.Second, "floor to reach the active segment", func() bool {
		low, ok := p.src.lowestNeeded()
		return ok && low >= active
	})
	floor, _ := p.src.lowestNeeded()

	// Kill the replica. Its floor must survive the disconnect (StaleAfter is
	// far away) and hold segment retention while checkpoints roll the log.
	r1.shutdown()
	for i := 0; i < 4; i++ {
		mustInsert(t, p.db, tid, fmt.Sprintf("late-%d", i))
	}
	if err := p.db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := p.db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	segs, err := wal.Segments(p.db.PersistDir())
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) == 0 || segs[0].Seq > floor {
		t.Fatalf("lowest retained segment %v passed the away replica's floor %d", segs, floor)
	}

	// The restarted replica keeps no local state: same identity, fresh
	// engine, bootstrap from checkpoint, then convergence.
	r2 := startReplica(t, p.addr, "dr")
	waitCaughtUp(t, p, r2)
	for i := 0; i < 4; i++ {
		if img, ok := readRow(r2.db, tid, ts.RID(i+1)); !ok || img != fmt.Sprintf("early-%d", i) {
			t.Fatalf("early row %d after re-bootstrap: %q ok=%v", i, img, ok)
		}
	}

	// Once it reports past the old floor, the next checkpoint prunes the
	// tail the dead incarnation was holding.
	waitFor(t, 5*time.Second, "floor to advance past the old incarnation", func() bool {
		low, ok := p.src.lowestNeeded()
		return ok && low > floor
	})
	if err := p.db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	segs, err = wal.Segments(p.db.PersistDir())
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) == 0 || segs[0].Seq <= floor {
		t.Fatalf("segments %v still retained below a dead floor %d", segs, floor)
	}
}

func TestStreamDropReconnectsAndResumes(t *testing.T) {
	p := startPrimary(t, fastSource(), nil)
	tid := mustCreateTable(t, p.db, "accounts")
	for i := 0; i < 3; i++ {
		mustInsert(t, p.db, tid, fmt.Sprintf("row-%d", i))
	}
	r := startReplica(t, p.addr, "r1")
	waitCaughtUp(t, p, r)

	fault.Enable(FPStreamDrop, fault.Once(), fault.ReturnErr(errors.New("injected stream drop")))
	t.Cleanup(func() { fault.Disable(FPStreamDrop) })
	waitFor(t, 5*time.Second, "replica to notice the drop", func() bool {
		return r.rep.reconnects.Load() >= 1
	})

	// The retry resumes from the applied LSN — no re-bootstrap — and the
	// stream keeps delivering.
	rid := mustInsert(t, p.db, tid, "post-drop")
	waitCaughtUp(t, p, r)
	if img, ok := readRow(r.db, tid, rid); !ok || img != "post-drop" {
		t.Fatalf("post-drop row: %q ok=%v", img, ok)
	}
	if got, want := r.db.Manager().CurrentTS(), p.db.Manager().CurrentTS(); got != want {
		t.Fatalf("replica at CID %d, primary at %d", got, want)
	}
}

func TestPartialSegmentShipFailureResumes(t *testing.T) {
	p := startPrimary(t, fastSource(), nil)
	tid := mustCreateTable(t, p.db, "accounts")
	for i := 0; i < 6; i++ {
		mustInsert(t, p.db, tid, fmt.Sprintf("row-%d", i))
	}

	// The first catch-up attempt dies mid-segment; the replica must resume
	// from wherever its applied cursor reached, not restart from scratch.
	fault.Enable(FPPartialSegment, fault.After(3), fault.Once(), fault.ReturnErr(errors.New("injected catch-up abort")))
	t.Cleanup(func() { fault.Disable(FPPartialSegment) })

	r := startReplica(t, p.addr, "r1")
	waitCaughtUp(t, p, r)
	if n := r.rep.reconnects.Load(); n < 1 {
		t.Fatalf("catch-up abort caused %d reconnects, want >=1", n)
	}
	for i := 0; i < 6; i++ {
		if img, ok := readRow(r.db, tid, ts.RID(i+1)); !ok || img != fmt.Sprintf("row-%d", i) {
			t.Fatalf("row %d after resumed catch-up: %q ok=%v", i, img, ok)
		}
	}
}

func TestLagDemotionForcesRebootstrap(t *testing.T) {
	scfg := fastSource()
	scfg.MaxSegmentLag = 1
	p := startPrimary(t, scfg, nil)
	tid := mustCreateTable(t, p.db, "accounts")
	mustInsert(t, p.db, tid, "seed")

	r := startReplica(t, p.addr, "laggard")
	waitCaughtUp(t, p, r)

	// Stall the applier, then ship one record so the applied cursor (and the
	// floor derived from it) freezes while the primary's log rolls forward.
	fault.Enable(FPApplyStall, fault.Sleep(1500*time.Millisecond))
	t.Cleanup(func() { fault.Disable(FPApplyStall) })
	sent := p.src.recordsSent.Load()
	mustInsert(t, p.db, tid, "stalled")
	waitFor(t, 5*time.Second, "the stalling record to ship", func() bool {
		return p.src.recordsSent.Load() > sent
	})
	for i := 0; i < 3; i++ {
		if _, err := p.db.WAL().Rotate(); err != nil {
			t.Fatal(err)
		}
	}

	// The heartbeat check demotes the stuck replica; its Run loop must
	// surface the re-bootstrap signal rather than retrying forever.
	err := r.waitExit(t, 10*time.Second)
	if !errors.Is(err, ErrBootstrapRequired) {
		t.Fatalf("stalled replica exited with %v, want ErrBootstrapRequired", err)
	}
	if n := p.src.demotions.Load(); n != 1 {
		t.Fatalf("demotions = %d, want 1", n)
	}
	low, ok := p.src.lowestNeeded()
	if ok {
		t.Fatalf("demoted replica still pins segment retention at %d", low)
	}
	fault.Disable(FPApplyStall)
	r.shutdown()

	// The operator response: a fresh engine under the same identity
	// bootstraps (demotion clears on a full bootstrap) and converges.
	r2 := startReplica(t, p.addr, "laggard")
	waitCaughtUp(t, p, r2)
	if img, ok := readRow(r2.db, tid, 2); !ok || img != "stalled" {
		t.Fatalf("post-demotion row: %q ok=%v", img, ok)
	}
}

func TestSQLCatalogFollowsReplication(t *testing.T) {
	p := startPrimary(t, fastSource(), nil)
	sess := sql.NewSession(p.srv.Catalog())
	for _, q := range []string{
		"CREATE TABLE kv (k INT, v TEXT)",
		"INSERT INTO kv VALUES (1, 'one')",
		"INSERT INTO kv VALUES (2, 'two')",
	} {
		if _, err := sess.Execute(q); err != nil {
			t.Fatalf("%s: %v", q, err)
		}
	}

	r := startReplica(t, p.addr, "r1")
	waitCaughtUp(t, p, r)

	// A catalog attached to the empty read-only engine discovers replicated
	// schema lazily — the meta table only exists once the stream applied it.
	rcat, err := sql.NewCatalog(r.db)
	if err != nil {
		t.Fatal(err)
	}
	rsess := sql.NewSession(rcat)
	res, err := rsess.Execute("SELECT k, v FROM kv")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("replica SELECT returned %d rows, want 2", len(res.Rows))
	}
	if _, err := rsess.Execute("INSERT INTO kv VALUES (3, 'three')"); !errors.Is(err, core.ErrReadOnly) {
		t.Fatalf("replica SQL insert: %v, want ErrReadOnly", err)
	}
}

// TestTPCCUnderReplicaPinnedCursor is the acceptance scenario: TPC-C runs on
// the primary while a replica-side cursor pins the cluster-wide horizon.
// Hybrid GC must keep reclaiming (interval collection works above the pin),
// the horizon must not pass the remote snapshot, and after release the
// replicated state must pass the TPC-C consistency checks read through the
// replica itself.
func TestTPCCUnderReplicaPinnedCursor(t *testing.T) {
	if testing.Short() {
		t.Skip("workload test")
	}
	p := startPrimary(t, SourceConfig{HeartbeatEvery: 20 * time.Millisecond, StaleAfter: 30 * time.Second},
		func(c *core.Config) {
			c.GC = gc.Periods{GT: 20 * time.Millisecond, TG: 60 * time.Millisecond, SI: 50 * time.Millisecond}
			c.LongLivedThreshold = 50 * time.Millisecond
		})
	driver, err := tpcc.New(p.db, tpcc.Config{
		Warehouses: 2, Districts: 2, CustomersPerDistrict: 8, Items: 40, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := driver.Load(); err != nil {
		t.Fatal(err)
	}
	p.db.GC().Start()
	defer p.db.GC().Stop()

	r := startReplica(t, p.addr, "analytics")
	waitCaughtUp(t, p, r)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	stopped := false
	stopWorkers := func() {
		if !stopped {
			stopped = true
			close(stop)
			wg.Wait()
		}
	}
	defer stopWorkers()
	for w := 1; w <= 2; w++ {
		wk := driver.NewWorker(w)
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := wk.Run(1<<62, stop); err != nil {
				t.Errorf("worker %d: %v", wk.Warehouse(), err)
			}
		}()
	}

	// Open the long-duration cursor on the replica mid-run, then wait for
	// its report to land: the primary's horizon drops to (or below) the
	// remote snapshot timestamp.
	time.Sleep(100 * time.Millisecond)
	cur, err := r.db.OpenCursor(r.db.TableID(tpcc.TableStock))
	if err != nil {
		t.Fatal(err)
	}
	pin := cur.SnapshotTS()
	waitFor(t, 5*time.Second, "replica pin to reach the primary", func() bool {
		return p.db.Manager().GlobalHorizon() <= pin
	})
	waitFor(t, 5*time.Second, "workload to advance past the pin", func() bool {
		return p.db.Manager().CurrentTS() > pin+20
	})

	// Hybrid GC keeps working above the pin while the workload churns.
	before := p.db.Stats().VersionsReclaimed
	waitFor(t, 5*time.Second, "hybrid GC to reclaim under the pin", func() bool {
		return p.db.Stats().VersionsReclaimed > before
	})
	// And through all of it, reclamation never crossed the remote snapshot.
	if h := p.db.Manager().GlobalHorizon(); h > pin {
		t.Fatalf("primary horizon %d passed the replica's open snapshot %d", h, pin)
	}

	stopWorkers()
	cur.Close()
	waitFor(t, 5*time.Second, "horizon to clear after release", func() bool {
		return p.db.Manager().GlobalHorizon() > pin
	})

	// Converge, then run the consistency checks against the replica.
	waitCaughtUp(t, p, r)
	driver.SetCheckBackend(tpcc.LocalBackend(r.db))
	if err := driver.Check(); err != nil {
		t.Fatalf("consistency check through the replica: %v", err)
	}
}

// TestRebootstrapRejectsNewerCheckpoint covers the divergence hazard of a
// replica whose first bootstrap died after installing its checkpoint but
// before a single record advanced the applied cursor: if the primary has
// checkpointed since (the commits in between possibly living only in pruned
// segments), the retried bootstrap ships a *newer* checkpoint, and silently
// skipping it would lose every commit between the two checkpoint CIDs. The
// replica must refuse with ErrBootstrapRequired so the operator restarts on
// an empty engine.
func TestRebootstrapRejectsNewerCheckpoint(t *testing.T) {
	p := startPrimary(t, fastSource(), nil)
	tid := mustCreateTable(t, p.db, "accounts")
	mustInsert(t, p.db, tid, "early")
	if err := p.db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	ck1, err := wal.ReadCheckpoint(p.db.PersistDir())
	if err != nil {
		t.Fatal(err)
	}

	// Simulate the first attempt: checkpoint installed, stream dead.
	rdb, err := core.Open(core.Config{ReadOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	defer rdb.Close()
	if err := rdb.ApplyCheckpoint(ck1); err != nil {
		t.Fatal(err)
	}

	// Meanwhile the primary commits more and checkpoints again; with no
	// floor registered for this replica, nothing retains the old segments.
	rid := mustInsert(t, p.db, tid, "belated")
	if err := p.db.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	rep, err := NewReplica(rdb, ReplicaConfig{
		Upstream: p.addr, ReplicaID: "zombie",
		ReportEvery: 10 * time.Millisecond, ReconnectBase: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	runErr := make(chan error, 1)
	go func() { runErr <- rep.Run() }()
	select {
	case err := <-runErr:
		if !errors.Is(err, ErrBootstrapRequired) {
			t.Fatalf("stale re-bootstrap exited with %v, want ErrBootstrapRequired", err)
		}
	case <-time.After(10 * time.Second):
		rep.Stop()
		t.Fatal("stale re-bootstrap did not refuse the newer checkpoint")
	}
	rep.Stop()

	// The operator path: a fresh engine under the same identity bootstraps
	// and sees both commits.
	r2 := startReplica(t, p.addr, "zombie")
	waitCaughtUp(t, p, r2)
	if img, ok := readRow(r2.db, tid, rid); !ok || img != "belated" {
		t.Fatalf("post-rebuild row: %q ok=%v", img, ok)
	}
}

// TestBootstrapJoinsMaturePrimaryDespiteLagBound: a fresh replica joining a
// primary whose active segment is already far past MaxSegmentLag starts with
// a bootstrap floor of 0; the lag bound must stay out of the picture while
// the initial catch-up is still being applied, or the replica can never join
// (demote → re-bootstrap → demote, forever).
func TestBootstrapJoinsMaturePrimaryDespiteLagBound(t *testing.T) {
	scfg := fastSource()
	scfg.MaxSegmentLag = 1
	p := startPrimary(t, scfg, nil)
	tid := mustCreateTable(t, p.db, "accounts")
	var rids []ts.RID
	for s := 0; s < 4; s++ {
		for i := 0; i < 3; i++ {
			rids = append(rids, mustInsert(t, p.db, tid, fmt.Sprintf("seg%d-row%d", s, i)))
		}
		if _, err := p.db.WAL().Rotate(); err != nil {
			t.Fatal(err)
		}
	}

	// Slow the applier so the catch-up apply spans many heartbeat ticks —
	// plenty of chances for an over-eager lag check to demote the joiner.
	fault.Enable(FPApplyStall, fault.Sleep(20*time.Millisecond))
	t.Cleanup(func() { fault.Disable(FPApplyStall) })

	r := startReplica(t, p.addr, "joiner")
	waitCaughtUp(t, p, r)
	fault.Disable(FPApplyStall)
	if n := p.src.demotions.Load(); n != 0 {
		t.Fatalf("joining replica was demoted %d times", n)
	}
	for i, rid := range rids {
		if img, ok := readRow(r.db, tid, rid); !ok || img == "" {
			t.Fatalf("row %d missing after join: ok=%v", i, ok)
		}
	}
}

// TestDrainDuringCatchUpEndsPromptly: server shutdown must not wait for a
// slow segment catch-up to finish shipping — the stream checks the drain
// flag per record and ends with RmEnd(Drain) mid-catch-up.
func TestDrainDuringCatchUpEndsPromptly(t *testing.T) {
	p := startPrimary(t, fastSource(), nil)
	tid := mustCreateTable(t, p.db, "accounts")
	for i := 0; i < 300; i++ {
		mustInsert(t, p.db, tid, fmt.Sprintf("row-%d", i))
	}

	// Throttle catch-up to ~10ms per record: the full sweep would take ~3s.
	fault.Enable(FPPartialSegment, fault.Sleep(10*time.Millisecond))
	t.Cleanup(func() { fault.Disable(FPPartialSegment) })

	r := startReplica(t, p.addr, "slowpoke")
	waitFor(t, 5*time.Second, "catch-up to start", func() bool {
		return p.src.recordsSent.Load() >= 10
	})
	start := time.Now()
	p.srv.Shutdown(10 * time.Second)
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("shutdown during catch-up took %v", elapsed)
	}
	r.shutdown()
}
