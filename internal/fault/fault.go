// Package fault is a deterministic failpoint registry for fault-injection
// testing: named injection sites compiled into the engine's persistence and
// commit paths that normally do nothing, but can be armed by tests to return
// errors, panic or sleep at exact, reproducible moments. The crash-matrix
// recovery harness enumerates the declared sites and simulates a crash at
// each one in turn.
//
// The design goals, in order:
//
//  1. Zero overhead when disabled. Hit is a single atomic load on the hot
//     path while no failpoint is enabled — no map lookup, no lock, no
//     allocation — so sites can live on commit and fsync paths in release
//     builds.
//  2. Determinism. Triggers count hits under one lock: "fire on the 4th
//     append", "fire every 3rd sync, twice" always means the same thing.
//  3. No dependencies. Stdlib only.
//
// Usage:
//
//	fault.Enable(wal.FPSync, fault.After(3), fault.ReturnErr(io.ErrShortWrite))
//	defer fault.Reset()
package fault

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// ErrInjected is the base error of injected failures. Errors passed to
// ReturnErr should wrap it (and the ones Errorf builds do), so callers can
// distinguish injected faults from real ones with errors.Is.
var ErrInjected = errors.New("fault: injected failure")

// Errorf builds an injected error wrapping ErrInjected.
func Errorf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrInjected, fmt.Sprintf(format, args...))
}

// armed counts enabled failpoints; Hit returns immediately while it is zero.
var armed atomic.Int32

var (
	mu     sync.Mutex
	points = map[string]*point{}
	sites  = map[string]string{} // declared inventory: name -> description
)

// point is one enabled failpoint's trigger state.
type point struct {
	after   int64 // hits to skip before becoming eligible
	every   int64 // fire on every nth eligible hit (<=1: every)
	times   int64 // remaining fires; <0 means unlimited
	hits    int64
	fired   int64
	actions []action
}

type action interface {
	run(site string) error
}

// Option configures an enabled failpoint: triggers (After, EveryNth, Once,
// Times) and actions (ReturnErr, Panic, Sleep).
type Option interface {
	apply(*point)
}

type optionFunc func(*point)

func (f optionFunc) apply(p *point) { f(p) }

// After skips the first n hits: the failpoint becomes eligible on hit n+1.
func After(n int) Option {
	return optionFunc(func(p *point) { p.after = int64(n) })
}

// EveryNth fires on every nth eligible hit (1 = every eligible hit).
func EveryNth(n int) Option {
	return optionFunc(func(p *point) { p.every = int64(n) })
}

// Times limits the failpoint to n fires; afterwards hits pass through.
func Times(n int) Option {
	return optionFunc(func(p *point) { p.times = int64(n) })
}

// Once is Times(1): a one-shot failpoint.
func Once() Option { return Times(1) }

// errAction returns its error from Hit.
type errAction struct{ err error }

func (a errAction) run(string) error { return a.err }

func (a errAction) apply(p *point) { p.actions = append(p.actions, a) }

// ReturnErr makes the failpoint return err from Hit. The error should wrap
// ErrInjected (see Errorf) so call sites can tell injected faults apart.
func ReturnErr(err error) Option { return errAction{err: err} }

// Inject is ReturnErr with a generic injected error naming the site.
func Inject() Option {
	return optionFunc(func(p *point) {
		p.actions = append(p.actions, injectAction{})
	})
}

type injectAction struct{}

func (injectAction) run(site string) error { return Errorf("at %s", site) }

// panicAction panics, simulating a hard in-process crash.
type panicAction struct{ msg string }

func (a panicAction) run(site string) error {
	panic(fmt.Sprintf("fault: injected panic at %s: %s", site, a.msg))
}

func (a panicAction) apply(p *point) { p.actions = append(p.actions, a) }

// Panic makes the failpoint panic when it fires.
func Panic(msg string) Option { return panicAction{msg: msg} }

// sleepAction delays the caller, widening race windows deterministically.
type sleepAction struct{ d time.Duration }

func (a sleepAction) run(string) error { time.Sleep(a.d); return nil }

func (a sleepAction) apply(p *point) { p.actions = append(p.actions, a) }

// Sleep makes the failpoint sleep for d when it fires (and then continue,
// unless combined with ReturnErr).
func Sleep(d time.Duration) Option { return sleepAction{d: d} }

// Enable arms the named failpoint. Options are applied in order; with no
// trigger options the point fires on every hit, and with no action options
// firing injects a generic error (Inject). Re-enabling replaces the previous
// configuration and resets counters.
func Enable(name string, opts ...Option) {
	p := &point{every: 1, times: -1}
	for _, o := range opts {
		o.apply(p)
	}
	if len(p.actions) == 0 {
		Inject().apply(p)
	}
	mu.Lock()
	if _, exists := points[name]; !exists {
		armed.Add(1)
	}
	points[name] = p
	mu.Unlock()
}

// Disable disarms the named failpoint. Disabling an unknown name is a no-op.
func Disable(name string) {
	mu.Lock()
	if _, exists := points[name]; exists {
		delete(points, name)
		armed.Add(-1)
	}
	mu.Unlock()
}

// Reset disarms every failpoint. Tests defer it.
func Reset() {
	mu.Lock()
	armed.Add(-int32(len(points)))
	points = map[string]*point{}
	mu.Unlock()
}

// Hit marks one pass through the named injection site. It returns nil unless
// the site is armed and its trigger fires, in which case the configured
// actions run (sleep, panic) and any configured error is returned. The
// disabled path is a single atomic load.
func Hit(name string) error {
	if armed.Load() == 0 {
		return nil
	}
	return hitArmed(name)
}

func hitArmed(name string) error {
	mu.Lock()
	p := points[name]
	if p == nil {
		mu.Unlock()
		return nil
	}
	p.hits++
	if p.hits <= p.after {
		mu.Unlock()
		return nil
	}
	if p.every > 1 && (p.hits-p.after)%p.every != 0 {
		mu.Unlock()
		return nil
	}
	if p.times == 0 {
		mu.Unlock()
		return nil
	}
	if p.times > 0 {
		p.times--
	}
	p.fired++
	acts := p.actions
	mu.Unlock()

	var err error
	for _, a := range acts {
		if e := a.run(name); e != nil && err == nil {
			err = e
		}
	}
	return err
}

// FiredCount reports how many times the named failpoint has fired since it
// was (re-)enabled. Zero for disarmed or never-fired points.
func FiredCount(name string) int64 {
	mu.Lock()
	defer mu.Unlock()
	if p := points[name]; p != nil {
		return p.fired
	}
	return 0
}

// HitCount reports how many times the named site has been passed since the
// failpoint was (re-)enabled. Hits are only counted while armed.
func HitCount(name string) int64 {
	mu.Lock()
	defer mu.Unlock()
	if p := points[name]; p != nil {
		return p.hits
	}
	return 0
}

// Declare registers an injection site in the inventory and returns its name,
// so subsystems declare their sites as package-level constants:
//
//	var FPSync = fault.Declare("wal/fsync", "before fsync of a commit record")
//
// Declaring is orthogonal to enabling: a declared site costs nothing until a
// test arms it, and the crash-matrix harness drives one simulated crash per
// declared site.
func Declare(name, desc string) string {
	mu.Lock()
	sites[name] = desc
	mu.Unlock()
	return name
}

// Site describes one declared injection site.
type Site struct {
	Name string
	Desc string
}

// Inventory lists the declared injection sites, sorted by name.
func Inventory() []Site {
	mu.Lock()
	defer mu.Unlock()
	out := make([]Site, 0, len(sites))
	for n, d := range sites {
		out = append(out, Site{Name: n, Desc: d})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
