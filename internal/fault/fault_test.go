package fault

import (
	"errors"
	"testing"
	"time"
)

func TestDisabledHitIsNil(t *testing.T) {
	Reset()
	if err := Hit("nothing/enabled"); err != nil {
		t.Fatalf("disabled hit returned %v", err)
	}
}

func TestEnableFiresEveryHit(t *testing.T) {
	Reset()
	defer Reset()
	Enable("p")
	for i := 0; i < 3; i++ {
		if err := Hit("p"); !errors.Is(err, ErrInjected) {
			t.Fatalf("hit %d: %v", i, err)
		}
	}
	if got := FiredCount("p"); got != 3 {
		t.Fatalf("fired %d, want 3", got)
	}
}

func TestAfterSkipsFirstHits(t *testing.T) {
	Reset()
	defer Reset()
	want := errors.New("boom")
	Enable("p", After(2), ReturnErr(want))
	if err := Hit("p"); err != nil {
		t.Fatalf("hit 1 fired early: %v", err)
	}
	if err := Hit("p"); err != nil {
		t.Fatalf("hit 2 fired early: %v", err)
	}
	if err := Hit("p"); !errors.Is(err, want) {
		t.Fatalf("hit 3: got %v, want %v", err, want)
	}
}

func TestOnceDisarmsAfterOneFire(t *testing.T) {
	Reset()
	defer Reset()
	Enable("p", Once())
	if err := Hit("p"); err == nil {
		t.Fatal("first hit did not fire")
	}
	for i := 0; i < 5; i++ {
		if err := Hit("p"); err != nil {
			t.Fatalf("one-shot fired again: %v", err)
		}
	}
	if got := FiredCount("p"); got != 1 {
		t.Fatalf("fired %d, want 1", got)
	}
}

func TestEveryNth(t *testing.T) {
	Reset()
	defer Reset()
	Enable("p", EveryNth(3))
	fired := 0
	for i := 0; i < 9; i++ {
		if Hit("p") != nil {
			fired++
		}
	}
	if fired != 3 {
		t.Fatalf("fired %d of 9 hits with EveryNth(3), want 3", fired)
	}
}

func TestTimesLimitsFires(t *testing.T) {
	Reset()
	defer Reset()
	Enable("p", Times(2))
	fired := 0
	for i := 0; i < 6; i++ {
		if Hit("p") != nil {
			fired++
		}
	}
	if fired != 2 {
		t.Fatalf("fired %d, want 2", fired)
	}
}

func TestSleepThenContinue(t *testing.T) {
	Reset()
	defer Reset()
	Enable("p", Once(), Sleep(10*time.Millisecond))
	start := time.Now()
	if err := Hit("p"); err != nil {
		t.Fatalf("sleep-only action returned error %v", err)
	}
	if d := time.Since(start); d < 10*time.Millisecond {
		t.Fatalf("hit returned after %v, want >= 10ms", d)
	}
}

func TestPanicAction(t *testing.T) {
	Reset()
	defer Reset()
	Enable("p", Panic("simulated crash"))
	defer func() {
		if recover() == nil {
			t.Fatal("panic action did not panic")
		}
	}()
	_ = Hit("p")
}

func TestDisableAndReset(t *testing.T) {
	Reset()
	Enable("a")
	Enable("b")
	Disable("a")
	if err := Hit("a"); err != nil {
		t.Fatalf("disabled point fired: %v", err)
	}
	if err := Hit("b"); err == nil {
		t.Fatal("still-enabled point did not fire")
	}
	Reset()
	if err := Hit("b"); err != nil {
		t.Fatalf("reset point fired: %v", err)
	}
	if armed.Load() != 0 {
		t.Fatalf("armed count %d after Reset, want 0", armed.Load())
	}
}

func TestDeclareInventory(t *testing.T) {
	Declare("z/site", "last")
	Declare("a/site", "first")
	inv := Inventory()
	if len(inv) < 2 {
		t.Fatalf("inventory has %d sites", len(inv))
	}
	for i := 1; i < len(inv); i++ {
		if inv[i-1].Name >= inv[i].Name {
			t.Fatalf("inventory not sorted: %q >= %q", inv[i-1].Name, inv[i].Name)
		}
	}
}

// TestDisabledZeroAlloc pins the acceptance criterion that a disabled
// failpoint site costs one atomic load: no allocations on the hot path.
func TestDisabledZeroAlloc(t *testing.T) {
	Reset()
	allocs := testing.AllocsPerRun(1000, func() {
		if Hit("hot/path") != nil {
			t.Fatal("fired")
		}
	})
	if allocs != 0 {
		t.Fatalf("disabled Hit allocates %.1f per call, want 0", allocs)
	}
}

func BenchmarkHitDisabled(b *testing.B) {
	Reset()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = Hit("hot/path")
	}
}
