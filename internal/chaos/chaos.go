// Package chaos is a deterministic network-chaos harness for the full stack:
// a replicated cluster (persistent primary, read-only replicas, pooled
// clients) runs a concurrent bank-transfer workload while a seeded nemesis
// injects network faults through internal/netfault proxies — partitions
// (symmetric and asymmetric), connection-drop storms, refused dials, and
// per-I/O faults (kills, stalls, partial writes that tear frames).
//
// Throughout and after the chaos, four invariants are checked:
//
//  1. Conservation — every snapshot read of the accounts table, local or
//     remote, mid-chaos or after, sums to the initial total. Snapshot
//     isolation must hold under every fault the nemesis can produce.
//  2. Durability — after the network heals, every acknowledged commit is
//     present exactly once, and nothing not acknowledged (or classified
//     ambiguous) is present. A commit whose connection died mid-COMMIT is
//     "ambiguous": it may or may not have landed, but conservation and
//     single-application must hold either way.
//  3. Convergence — every replica reaches the primary's LSN after the heal
//     and its full state (accounts, ledger, commit timestamp) is identical
//     to the primary's.
//  4. GC-horizon liveness — a partitioned-away replica holding an open
//     snapshot must stop pinning the primary's GC horizon within
//     HorizonBound: stream teardown releases its pin, the staleness sweeper
//     demotes it and drops its segment floor. A dead peer cannot hold the
//     version space hostage.
//
// Determinism is at the schedule level: one seed fixes the nemesis schedule,
// the fault-injector decision stream, and each worker's transfer sequence.
// Goroutine interleavings still vary run to run — deliberately: the
// invariants must hold for every interleaving of a seeded schedule, and a
// failing seed reproduces the same weather for debugging.
package chaos

import (
	"fmt"
	"time"
)

// Options configures one chaos run. The zero value selects a short smoke
// run; only Seed has no default worth relying on.
type Options struct {
	// Seed fixes the nemesis schedule, injector stream and workload choices.
	Seed int64
	// Duration is the length of the chaos phase (<=0 selects 2s). Healing,
	// convergence and the liveness probe run after it.
	Duration time.Duration
	// Workers is the number of concurrent transfer workers (<=0 selects 4).
	Workers int
	// Accounts is the size of the bank (<=0 selects 8).
	Accounts int
	// Replicas is the number of streaming replicas (<=0 selects 2; the
	// GC-liveness probe needs at least 1).
	Replicas int
	// HorizonBound is how long a dead replica may pin the GC horizon before
	// invariant 4 fails (<=0 selects 3s).
	HorizonBound time.Duration
}

func (o *Options) fill() {
	if o.Duration <= 0 {
		o.Duration = 2 * time.Second
	}
	if o.Workers <= 0 {
		o.Workers = 4
	}
	if o.Accounts <= 0 {
		o.Accounts = 8
	}
	if o.Replicas <= 0 {
		o.Replicas = 2
	}
	if o.HorizonBound <= 0 {
		o.HorizonBound = 3 * time.Second
	}
}

// Report is the outcome of one run. A run passes when Violations is empty;
// everything else is observability.
type Report struct {
	Seed int64

	// Workload outcome counts.
	Acked     int64 // transfers whose COMMIT was acknowledged
	Ambiguous int64 // transfers whose COMMIT outcome is unknown
	GaveUp    int64 // transfers abandoned after transient-retry exhaustion

	// Invariant activity.
	ConservationChecks int64 // snapshot sums verified (local + remote)
	PinReleaseMS       int64 // observed dead-replica pin-release latency

	// Fault and recovery activity, to show the schedule actually bit.
	Redials       int64 // client background redial attempts
	Reconnects    int64 // replica stream reconnects
	Rebootstraps  int64 // replica full re-bootstraps after demotion
	Demotions     int64 // primary-side demotions
	InjectedKills int64 // injector connection kills on the client path

	// Schedule is the executed nemesis schedule, one line per step —
	// identical across runs with the same seed.
	Schedule []string

	// Violations are invariant failures. Each names the seed, so one log
	// line reproduces the run.
	Violations []string
}

// Passed reports whether every invariant held.
func (r *Report) Passed() bool { return len(r.Violations) == 0 }

// violatef records an invariant violation, stamped with the seed so the
// failure alone is enough to reproduce the run.
func (r *Report) violatef(format string, args ...any) {
	r.Violations = append(r.Violations, fmt.Sprintf("seed %d: ", r.Seed)+fmt.Sprintf(format, args...))
}

// Summary renders the report as a compact human-readable block.
func (r *Report) Summary() string {
	s := fmt.Sprintf(
		"seed %d: acked=%d ambiguous=%d gaveup=%d checks=%d redials=%d reconnects=%d rebootstraps=%d demotions=%d kills=%d pin-release=%dms",
		r.Seed, r.Acked, r.Ambiguous, r.GaveUp, r.ConservationChecks,
		r.Redials, r.Reconnects, r.Rebootstraps, r.Demotions, r.InjectedKills, r.PinReleaseMS)
	for _, v := range r.Violations {
		s += "\n  VIOLATION: " + v
	}
	return s
}
