package chaos

import (
	"strings"
	"testing"
	"time"
)

// TestReadRouteNemesis partitions each replica's serving path in turn while
// a bank workload reads through the ReadPool, and requires the routing
// invariants to hold: no lost or torn write observed from any endpoint, and
// reads keep succeeding for the whole run (the primary stays healthy, so
// failover must absorb every partition).
func TestReadRouteNemesis(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos run in -short mode")
	}
	rep, err := RunReadRoute(ReadRouteOptions{Seed: 11})
	if err != nil {
		t.Fatalf("read-route run failed to start: %v", err)
	}
	t.Log(rep.Summary())
	if !rep.Passed() {
		t.Fatalf("invariant violations:\n%s", strings.Join(rep.Violations, "\n"))
	}
	if rep.Pool.Failovers == 0 {
		t.Fatal("partitions never quarantined an endpoint — the weather never bit")
	}
}

// TestReadRouteEveryReplicaHit: with Rounds >= Replicas the round-robin
// schedule names every replica at least once, so the invariants above were
// exercised against each endpoint's failure, not just one.
func TestReadRouteEveryReplicaHit(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos run in -short mode")
	}
	rep, err := RunReadRoute(ReadRouteOptions{
		Seed:     13,
		Replicas: 2,
		Rounds:   2,
		Hold:     300 * time.Millisecond,
		Calm:     150 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("read-route run failed to start: %v", err)
	}
	t.Log(rep.Summary())
	if !rep.Passed() {
		t.Fatalf("invariant violations:\n%s", strings.Join(rep.Violations, "\n"))
	}
	for _, want := range []string{"replica 0 serve-partition", "replica 1 serve-partition"} {
		found := false
		for _, s := range rep.Schedule {
			if strings.HasPrefix(s, want) {
				found = true
			}
		}
		if !found {
			t.Fatalf("schedule never hit %q:\n%s", want, strings.Join(rep.Schedule, "\n"))
		}
	}
}
