package chaos

import (
	"strings"
	"testing"
	"time"
)

// TestShardedPartitionSeed runs one seeded sharded scenario: a partition
// isolates one shard (stranding an open snapshot there) and the invariant
// checkers must prove the other shards' GC horizons keep advancing, the
// victim's horizon stays contained at the pin, and the heal releases it.
func TestShardedPartitionSeed(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos run in -short mode")
	}
	rep, err := RunSharded(ShardedOptions{Seed: 1, Duration: 800 * time.Millisecond})
	if err != nil {
		t.Fatalf("sharded chaos run failed to start: %v", err)
	}
	t.Log(rep.Summary())
	for _, s := range rep.Schedule {
		t.Logf("schedule: %s", s)
	}
	if !rep.Passed() {
		t.Fatalf("invariant violations:\n%s", strings.Join(rep.Violations, "\n"))
	}
	if rep.Acked == 0 {
		t.Fatal("no update was ever acknowledged — the workload never ran")
	}
	if rep.PinReleaseMS == 0 && rep.Acked > 0 {
		t.Fatal("the heal never measured a pin release")
	}
}

// TestShardedVictimDeterministic: the victim choice and schedule shape are a
// pure function of the seed, so a failing run reproduces from its seed alone.
func TestShardedVictimDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos run in -short mode")
	}
	opt := ShardedOptions{Seed: 7, Duration: 400 * time.Millisecond}
	a, err := RunSharded(opt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunSharded(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Schedule) == 0 || a.Schedule[0] != b.Schedule[0] {
		t.Fatalf("victim selection not seed-deterministic: %v vs %v", a.Schedule, b.Schedule)
	}
}
