package chaos

import (
	"strings"
	"testing"
	"time"

	"hybridgc/internal/fault"
	"hybridgc/internal/repl"
)

// TestChaosSingleSeed runs one short scenario end to end and requires every
// invariant to hold. This is the same path `make chaos-smoke` drives across
// its seed set.
func TestChaosSingleSeed(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos run in -short mode")
	}
	rep, err := Run(Options{Seed: 1, Duration: 1200 * time.Millisecond})
	if err != nil {
		t.Fatalf("chaos run failed to start: %v", err)
	}
	t.Log(rep.Summary())
	if !rep.Passed() {
		t.Fatalf("invariant violations:\n%s", strings.Join(rep.Violations, "\n"))
	}
	if rep.Acked == 0 {
		t.Fatal("no transfer was ever acknowledged — the workload never ran")
	}
	if rep.ConservationChecks == 0 {
		t.Fatal("conservation was never checked")
	}
	if rep.PinReleaseMS == 0 {
		t.Fatal("the horizon-liveness probe never measured a pin release")
	}
}

// TestScheduleDeterministic: the nemesis schedule must be a pure function of
// the seed, so a failing run is reproducible from the printed seed alone.
func TestScheduleDeterministic(t *testing.T) {
	opt := Options{Seed: 42, Duration: 5 * time.Second}
	a, b := drawSchedule(optFilled(opt)), drawSchedule(optFilled(opt))
	if len(a) == 0 {
		t.Fatal("empty schedule")
	}
	if len(a) != len(b) {
		t.Fatalf("schedule lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("step %d differs: %v vs %v", i, a[i], b[i])
		}
	}
	c := drawSchedule(optFilled(Options{Seed: 43, Duration: 5 * time.Second}))
	same := len(a) == len(c)
	for i := 0; same && i < len(a); i++ {
		same = a[i] == c[i]
	}
	if same {
		t.Fatal("different seeds produced identical schedules")
	}
}

func optFilled(o Options) Options {
	o.fill()
	return o
}

// TestExecutedScheduleMatchesDraw: the schedule the nemesis reports executing
// is exactly the drawn one, so the report's schedule is trustworthy evidence.
func TestExecutedScheduleMatchesDraw(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos run in -short mode")
	}
	opt := optFilled(Options{Seed: 7, Duration: 400 * time.Millisecond})
	rep, err := Run(opt)
	if err != nil {
		t.Fatalf("chaos run failed to start: %v", err)
	}
	want := drawSchedule(opt)
	if len(rep.Schedule) != len(want) {
		t.Fatalf("executed %d steps, drew %d", len(rep.Schedule), len(want))
	}
	for i := range want {
		if rep.Schedule[i] != want[i].String() {
			t.Fatalf("step %d: executed %q, drew %q", i, rep.Schedule[i], want[i])
		}
	}
}

// TestPinLeakDetected reverts the pin-release hardening via the repl/pin-leak
// failpoint and requires the harness to notice: with release skipped, a
// partitioned replica pins the GC horizon past HorizonBound and invariant 4
// must fail. This proves the harness detects the bug class it exists for.
func TestPinLeakDetected(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos run in -short mode")
	}
	fault.Enable(repl.FPPinLeak, fault.ReturnErr(repl.ErrBootstrapRequired))
	defer fault.Disable(repl.FPPinLeak)

	rep, err := Run(Options{
		Seed:         5,
		Duration:     300 * time.Millisecond, // weather is not the point here
		HorizonBound: 1500 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("chaos run failed to start: %v", err)
	}
	t.Log(rep.Summary())
	if rep.Passed() {
		t.Fatal("pin-release disabled, yet the harness reported all invariants passing")
	}
	found := false
	for _, v := range rep.Violations {
		if strings.Contains(v, "pins GC horizon") {
			found = true
		}
	}
	if !found {
		t.Fatalf("expected a horizon-liveness violation, got:\n%s", strings.Join(rep.Violations, "\n"))
	}
}
