package chaos

// Read-routing nemesis: a replicated cluster serves a bank workload through
// the read/write-splitting ReadPool while the nemesis partitions each
// replica's serving path in turn. The replication streams stay healthy — the
// weather here is aimed at the read path, and the invariants are the pool's
// promises:
//
//  1. No lost or torn write is ever observed: every Session read of the
//     latest acknowledged marker row sees it with the right value, and every
//     Session SUM over the bank equals the seeded total (transfers are
//     atomic under snapshot isolation no matter which endpoint serves the
//     read).
//  2. Reads keep succeeding while at least one endpoint is healthy: the
//     primary is never partitioned, so every pooled read must ultimately
//     succeed — a partitioned replica is quarantined and failed over, never
//     surfaced to the caller.

import (
	"fmt"
	"math/rand"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"hybridgc/internal/client"
	"hybridgc/internal/core"
	"hybridgc/internal/netfault"
	"hybridgc/internal/repl"
	"hybridgc/internal/server"
	"hybridgc/internal/wal"
)

// ReadRouteOptions configures one read-routing chaos run. The zero value
// (plus a seed) selects a short smoke run.
type ReadRouteOptions struct {
	// Seed fixes the transfer sequence. The partition schedule itself is
	// deterministic round-robin and does not consume randomness.
	Seed int64
	// Replicas is the number of serving read replicas (<=0 selects 2).
	Replicas int
	// Rounds is how many partition rounds run; each round partitions one
	// replica, round-robin, so every replica is hit at least once when
	// Rounds >= Replicas (<=0 selects 2*Replicas).
	Rounds int
	// Hold / Calm are the partition and recovery windows per round
	// (<=0 select 400ms / 200ms).
	Hold time.Duration
	Calm time.Duration
	// Accounts is the bank size (<=0 selects 8).
	Accounts int
	// Readers is the number of concurrent pooled readers (<=0 selects 2).
	Readers int
}

func (o *ReadRouteOptions) fill() {
	if o.Replicas <= 0 {
		o.Replicas = 2
	}
	if o.Rounds <= 0 {
		o.Rounds = 2 * o.Replicas
	}
	if o.Hold <= 0 {
		o.Hold = 400 * time.Millisecond
	}
	if o.Calm <= 0 {
		o.Calm = 200 * time.Millisecond
	}
	if o.Accounts <= 0 {
		o.Accounts = 8
	}
	if o.Readers <= 0 {
		o.Readers = 2
	}
}

// ReadRouteReport is the outcome of one run; it passes when Violations is
// empty.
type ReadRouteReport struct {
	Seed int64

	Transfers int64 // acknowledged bank transfers
	Markers   int64 // acknowledged marker writes
	SumChecks int64 // conservation sums verified through the pool
	RYWChecks int64 // marker visibility checks through the pool

	// ReadsDuringFault counts pooled reads that succeeded while a partition
	// was being held — the availability evidence.
	ReadsDuringFault int64

	Pool       client.PoolCounters
	Schedule   []string
	Violations []string
}

// Passed reports whether every invariant held.
func (r *ReadRouteReport) Passed() bool { return len(r.Violations) == 0 }

func (r *ReadRouteReport) violatef(format string, args ...any) {
	r.Violations = append(r.Violations, fmt.Sprintf("seed %d: ", r.Seed)+fmt.Sprintf(format, args...))
}

// Summary renders the report as a compact human-readable block.
func (r *ReadRouteReport) Summary() string {
	s := fmt.Sprintf(
		"seed %d: transfers=%d markers=%d sums=%d ryw=%d during-fault=%d replica=%d primary=%d bounces=%d failovers=%d",
		r.Seed, r.Transfers, r.Markers, r.SumChecks, r.RYWChecks, r.ReadsDuringFault,
		r.Pool.ReplicaReads, r.Pool.PrimaryReads, r.Pool.Bounces, r.Pool.Failovers)
	for _, v := range r.Violations {
		s += "\n  VIOLATION: " + v
	}
	return s
}

// rrNode is one serving replica: a read-only engine applying the primary's
// stream directly, fronted by a token-gated server the pool reaches only
// through a fault proxy.
type rrNode struct {
	db     *core.DB
	rep    *repl.Replica
	srv    *server.Server
	proxy  *netfault.Proxy
	served chan struct{}
	runErr chan error
}

func (n *rrNode) stop() {
	if n.rep != nil {
		n.rep.Stop()
	}
	if n.proxy != nil {
		n.proxy.Close()
	}
	if n.srv != nil {
		n.srv.Shutdown(5 * time.Second)
		<-n.served
	}
	if n.runErr != nil {
		select {
		case <-n.runErr:
		case <-time.After(5 * time.Second):
		}
	}
	if n.db != nil {
		n.db.Close()
	}
}

// rrGate is the replica read gate, wired exactly like hybridgcd wires it:
// pass when the applier covers the token, else wait briefly and bounce.
func rrGate(rep *repl.Replica, wait time.Duration) func(uint64) (bool, error) {
	return func(minLSN uint64) (bool, error) {
		target := wal.LSN(minLSN)
		if rep.AppliedLSN() >= target {
			return false, nil
		}
		if err := rep.WaitLSN(target, wait); err != nil {
			return true, fmt.Errorf("%w: %v", core.ErrReplicaBehind, err)
		}
		return true, nil
	}
}

// RunReadRoute executes one read-routing chaos run.
func RunReadRoute(opt ReadRouteOptions) (*ReadRouteReport, error) {
	opt.fill()
	rep := &ReadRouteReport{Seed: opt.Seed}

	dir, err := os.MkdirTemp("", "readroute-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	// Primary: persistent engine, replication source, ungated server.
	db, err := core.Open(engineConfig(dir, false))
	if err != nil {
		return nil, err
	}
	defer db.Close()
	src, err := repl.NewSource(db, repl.SourceConfig{
		HeartbeatEvery: heartbeatEvery,
		StaleAfter:     30 * time.Second, // streams stay healthy; never demote
		WriteTimeout:   streamWriteTO,
	})
	if err != nil {
		return nil, err
	}
	defer src.Close()
	psrv, err := server.New(db, server.Config{Repl: src, StatsHook: src.PopulateStats, WriteTimeout: clientRequestTO})
	if err != nil {
		return nil, err
	}
	pln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	served := make(chan struct{})
	go func() { defer close(served); _ = psrv.Serve(pln) }()
	defer func() { psrv.Shutdown(5 * time.Second); <-served }()
	primaryAddr := pln.Addr().String()

	// Replicas: direct stream in, proxied serving path out.
	var nodes []*rrNode
	defer func() {
		for _, n := range nodes {
			n.stop()
		}
	}()
	var poolReplicas []string
	for i := 0; i < opt.Replicas; i++ {
		n := &rrNode{served: make(chan struct{}), runErr: make(chan error, 1)}
		if n.db, err = core.Open(engineConfig("", true)); err != nil {
			return nil, err
		}
		n.rep, err = repl.NewReplica(n.db, repl.ReplicaConfig{
			Upstream:      primaryAddr,
			ReplicaID:     fmt.Sprintf("rr%d", i),
			ReportEvery:   reportEvery,
			StallTimeout:  30 * time.Second,
			ReconnectBase: 10 * time.Millisecond,
			ReconnectMax:  200 * time.Millisecond,
		})
		if err != nil {
			n.db.Close()
			return nil, err
		}
		n.srv, err = server.New(n.db, server.Config{
			StatsHook:    n.rep.PopulateStats,
			ReadGate:     rrGate(n.rep, 500*time.Millisecond),
			WriteTimeout: clientRequestTO,
		})
		if err != nil {
			n.db.Close()
			return nil, err
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			n.db.Close()
			return nil, err
		}
		go func() { defer close(n.served); _ = n.srv.Serve(ln) }()
		go func() { n.runErr <- n.rep.Run() }()
		if n.proxy, err = netfault.NewProxy(ln.Addr().String(), nil); err != nil {
			nodes = append(nodes, n)
			return nil, err
		}
		nodes = append(nodes, n)
		poolReplicas = append(poolReplicas, n.proxy.Addr())
	}

	pool, err := client.NewReadPool(client.PoolConfig{
		Primary:  primaryAddr,
		Replicas: poolReplicas,
		Client: client.Config{
			MaxConns:       4,
			DialTimeout:    clientDialTO,
			RequestTimeout: 300 * time.Millisecond,
			RedialBase:     10 * time.Millisecond,
			RedialMax:      150 * time.Millisecond,
		},
		HeartbeatInterval: 20 * time.Millisecond,
		QuarantineBase:    20 * time.Millisecond,
		QuarantineMax:     250 * time.Millisecond,
	})
	if err != nil {
		return nil, err
	}
	defer pool.Close()

	// Seed the bank and the marker ledger through the pool's write path.
	const initial = 100
	total := int64(opt.Accounts) * initial
	if _, err := pool.Exec("CREATE TABLE rr_bank (id INT, bal INT)"); err != nil {
		return nil, err
	}
	if _, err := pool.Exec("CREATE TABLE rr_marks (id INT, v INT)"); err != nil {
		return nil, err
	}
	for i := 0; i < opt.Accounts; i++ {
		if _, err := pool.Exec(fmt.Sprintf("INSERT INTO rr_bank VALUES (%d, %d)", i, initial)); err != nil {
			return nil, err
		}
	}

	var (
		stop        = make(chan struct{})
		wg          sync.WaitGroup
		faultActive atomic.Bool
		acked       atomic.Int64 // highest acknowledged marker id
		mu          sync.Mutex   // guards rep.* counters and violations
	)
	stopped := func() bool {
		select {
		case <-stop:
			return true
		default:
			return false
		}
	}

	// Transfer writer: read-modify-write pairs of balances inside one
	// transaction on the primary, folding each commit token back into the
	// pool so Session readers are gated behind it.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(opt.Seed ^ 0x72656164))
		readBal := func(tx *client.Tx, id int) (int64, error) {
			res, err := tx.Exec(fmt.Sprintf("SELECT bal FROM rr_bank WHERE id = %d", id))
			if err != nil {
				return 0, err
			}
			if len(res.Rows) != 1 {
				return 0, fmt.Errorf("account %d: %d rows", id, len(res.Rows))
			}
			return res.Rows[0][0].I, nil
		}
		for !stopped() {
			a := rng.Intn(opt.Accounts)
			b := (a + 1 + rng.Intn(opt.Accounts-1)) % opt.Accounts
			amt := int64(1 + rng.Intn(10))
			pr, err := pool.Primary()
			if err != nil {
				continue
			}
			tx, err := pr.Begin(false)
			if err != nil {
				continue
			}
			balA, errA := readBal(tx, a)
			balB, errB := readBal(tx, b)
			if errA != nil || errB != nil {
				tx.Abort()
				continue
			}
			if _, err := tx.Exec(fmt.Sprintf("UPDATE rr_bank SET bal = %d WHERE id = %d", balA-amt, a)); err != nil {
				tx.Abort()
				continue
			}
			if _, err := tx.Exec(fmt.Sprintf("UPDATE rr_bank SET bal = %d WHERE id = %d", balB+amt, b)); err != nil {
				tx.Abort()
				continue
			}
			if err := tx.Commit(); err != nil {
				continue
			}
			pool.ObserveToken(tx.CommitLSN())
			mu.Lock()
			rep.Transfers++
			mu.Unlock()
		}
	}()

	// Marker writer: acked is the highest id whose INSERT was acknowledged,
	// so a Session read of it must always hit.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := int64(1); !stopped(); i++ {
			if _, err := pool.Exec(fmt.Sprintf("INSERT INTO rr_marks VALUES (%d, %d)", i, i*13)); err != nil {
				if core.IsTransient(err) {
					continue
				}
				return
			}
			acked.Store(i)
			mu.Lock()
			rep.Markers++
			mu.Unlock()
		}
	}()

	// Readers: alternate conservation sums and marker-visibility reads, all
	// Session consistency through the pool. Any read error at all is an
	// availability violation — the primary is never partitioned, so the pool
	// always has a healthy endpoint to fail over to.
	for r := 0; r < opt.Readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; !stopped(); i++ {
				during := faultActive.Load()
				if i%2 == 0 {
					res, err := pool.Read("SELECT SUM(bal) FROM rr_bank", client.Session)
					mu.Lock()
					if err != nil {
						rep.violatef("conservation read failed under partition: %v", err)
					} else {
						rep.SumChecks++
						if len(res.Rows) != 1 || res.Rows[0][0].I != total {
							rep.violatef("torn transfer observed: SUM(bal)=%v, want %d", res.Rows, total)
						} else if during {
							rep.ReadsDuringFault++
						}
					}
					mu.Unlock()
				} else if id := acked.Load(); id > 0 {
					res, err := pool.Read(fmt.Sprintf("SELECT v FROM rr_marks WHERE id = %d", id), client.Session)
					mu.Lock()
					if err != nil {
						rep.violatef("marker read failed under partition: %v", err)
					} else {
						rep.RYWChecks++
						if len(res.Rows) != 1 || res.Rows[0][0].I != id*13 {
							rep.violatef("acked marker %d lost: %v", id, res.Rows)
						} else if during {
							rep.ReadsDuringFault++
						}
					}
					mu.Unlock()
				}
			}
		}()
	}

	// Nemesis: partition each replica's serving path in turn. DropLinks
	// first so in-flight reads fail immediately; the held partition then
	// makes every new exchange time out until the heal.
	for round := 0; round < opt.Rounds; round++ {
		victim := round % opt.Replicas
		p := nodes[victim].proxy
		faultActive.Store(true)
		p.SetPartition(true, true)
		p.DropLinks()
		rep.Schedule = append(rep.Schedule, fmt.Sprintf("replica %d serve-partition for %s", victim, opt.Hold))
		time.Sleep(opt.Hold)
		p.SetPartition(false, false)
		faultActive.Store(false)
		time.Sleep(opt.Calm)
	}

	close(stop)
	wg.Wait()

	// Post-chaos: everything healed, one Strong sum must still conserve.
	res, err := pool.Read("SELECT SUM(bal) FROM rr_bank", client.Strong)
	if err != nil {
		rep.violatef("post-heal strong read failed: %v", err)
	} else if len(res.Rows) != 1 || res.Rows[0][0].I != total {
		rep.violatef("post-heal SUM(bal)=%v, want %d", res.Rows, total)
	}

	rep.Pool = pool.Counters()
	if rep.Transfers == 0 {
		rep.violatef("no transfer was ever acknowledged — the workload never ran")
	}
	if rep.Markers == 0 {
		rep.violatef("no marker write was ever acknowledged")
	}
	if rep.SumChecks == 0 || rep.RYWChecks == 0 {
		rep.violatef("invariants were never checked (sums=%d ryw=%d)", rep.SumChecks, rep.RYWChecks)
	}
	if rep.ReadsDuringFault == 0 {
		rep.violatef("no read succeeded while a partition was held — availability unproven")
	}
	if rep.Pool.ReplicaReads == 0 {
		rep.violatef("no read was ever served by a replica — the pool never scaled out")
	}
	return rep, nil
}
