package chaos

import (
	"fmt"
	"math/rand"
	"time"
)

// nemesisStep is one drawn unit of weather: a fault kind, its victim (for
// replica faults) and how long to hold it before healing.
type nemesisStep struct {
	kind   int
	victim int
	hold   time.Duration
}

const (
	faultClientPartBoth = iota // symmetric client partition, bytes held
	faultClientPartDown        // asymmetric: requests flow, responses stall
	faultClientDrop            // drop every live client connection
	faultClientRefuse          // refuse new client dials
	faultReplicaPart           // symmetric partition of one replica's stream
	faultReplicaDrop           // drop one replica's stream connection
	faultCalm                  // no fault; let recovery paths recover
	faultKinds
)

func (s nemesisStep) String() string {
	var desc string
	switch s.kind {
	case faultClientPartBoth:
		desc = "client partition both"
	case faultClientPartDown:
		desc = "client partition down"
	case faultClientDrop:
		desc = "client drop-links"
	case faultClientRefuse:
		desc = "client refuse"
	case faultReplicaPart:
		desc = fmt.Sprintf("replica %d partition both", s.victim)
	case faultReplicaDrop:
		desc = fmt.Sprintf("replica %d drop-links", s.victim)
	default:
		desc = "calm"
	}
	return fmt.Sprintf("%s for %s", desc, s.hold)
}

// drawSchedule derives the full nemesis schedule from the seed alone: the
// same (seed, duration, replicas) always produces the same steps, so a
// failing run's weather is reproducible from the printed seed.
func drawSchedule(opt Options) []nemesisStep {
	rng := rand.New(rand.NewSource(opt.Seed ^ 0x6e656d65)) // distinct stream from workers
	var steps []nemesisStep
	for elapsed := time.Duration(0); elapsed < opt.Duration; {
		s := nemesisStep{
			kind: rng.Intn(faultKinds),
			hold: time.Duration(50+rng.Intn(200)) * time.Millisecond,
		}
		if s.kind == faultReplicaPart || s.kind == faultReplicaDrop {
			s.victim = rng.Intn(opt.Replicas)
		}
		steps = append(steps, s)
		elapsed += s.hold
	}
	return steps
}

// runNemesis executes the drawn schedule against the cluster: apply a fault,
// hold it, heal that specific fault, draw the next. Only sleep overshoot
// varies between runs of the same seed — the fault sequence does not.
func runNemesis(c *cluster, steps []nemesisStep, rep *Report) {
	for _, s := range steps {
		var heal func()
		switch s.kind {
		case faultClientPartBoth:
			c.clientProxy.SetPartition(true, true)
			heal = func() { c.clientProxy.SetPartition(false, false) }
		case faultClientPartDown:
			c.clientProxy.SetPartition(false, true)
			heal = func() { c.clientProxy.SetPartition(false, false) }
		case faultClientDrop:
			c.clientProxy.DropLinks()
		case faultClientRefuse:
			c.clientProxy.SetRefuse(true)
			heal = func() { c.clientProxy.SetRefuse(false) }
		case faultReplicaPart:
			p := c.replicas[s.victim].proxy
			p.SetPartition(true, true)
			heal = func() { p.SetPartition(false, false) }
		case faultReplicaDrop:
			c.replicas[s.victim].proxy.DropLinks()
		}
		rep.Schedule = append(rep.Schedule, s.String())
		time.Sleep(s.hold)
		if heal != nil {
			heal()
		}
	}
}
