package chaos

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"hybridgc/internal/core"
	"hybridgc/internal/repl"
	"hybridgc/internal/ts"
	"hybridgc/internal/txn"
	"hybridgc/internal/wire"
)

// Run executes one full chaos scenario: build the cluster, run the seeded
// nemesis against the live workload, heal, then check convergence, durability
// and GC-horizon liveness. The returned Report carries every violation; an
// error is an environmental failure (couldn't even build the cluster), not an
// invariant failure.
func Run(opt Options) (*Report, error) {
	opt.fill()
	rep := &Report{Seed: opt.Seed}

	c, err := startCluster(opt)
	if err != nil {
		return nil, err
	}
	defer c.stop()

	// Live phase: workload + conservation checkers + snapshot holders on the
	// replicas (their reported snapshots join the cluster-wide GC horizon,
	// so the nemesis gets to break streams that are actively pinning it).
	b := startBank(c, opt, rep)
	holders := startSnapshotHolders(c)
	runNemesis(c, drawSchedule(opt), rep)
	c.healAll()
	b.halt()

	if n := b.unexpected.Load(); n > 0 {
		last, _ := b.lastErr.Load().(string)
		rep.violatef("workload: %d non-transient unexpected errors (last: %s)", n, last)
	}

	// Invariant 3: every replica converges to the primary's state.
	checkConvergence(c, rep)

	// Invariant 4 needs the probe cursor to be the only pin, so stop the
	// background holders before opening it.
	holders.halt()
	checkHorizonLiveness(c, opt, rep)

	// Invariant 2: acknowledged commits survived, exactly once, and nothing
	// unacknowledged (beyond the ambiguous set) appeared.
	acked, ambiguous := b.sets()
	checkNoLostCommits(c, acked, ambiguous, rep)

	// Final conservation check on the healed, quiesced primary.
	if sum, n, err := sumAccountsLocal(c.db, c.accounts); err != nil {
		rep.violatef("final conservation scan failed: %v", err)
	} else if n != len(c.acctRIDs) || sum != c.total {
		rep.violatef("final conservation: %d accounts sum %d, want %d accounts sum %d",
			n, sum, len(c.acctRIDs), c.total)
	}

	// Recovery telemetry, to show the schedule actually exercised the paths.
	rep.Redials = c.cl.Redials()
	rep.InjectedKills = c.clientInj.Kills()
	var st wire.Stats
	c.src.PopulateStats(&st)
	rep.Demotions = int64(st.ReplDemotions)
	for _, n := range c.replicas {
		n.withDB(func(_ *core.DB, r *repl.Replica) {
			var rs wire.Stats
			r.PopulateStats(&rs)
			rep.Reconnects += int64(rs.ReplReconnects)
		})
		rep.Rebootstraps += n.rebootstrapCount()
	}
	return rep, nil
}

// holderSet keeps short-lived snapshot cursors open on each replica during
// the chaos phase, so replica-reported snapshots are pinning the primary's
// horizon while the nemesis cuts their streams.
type holderSet struct {
	stop chan struct{}
	wg   sync.WaitGroup
}

func startSnapshotHolders(c *cluster) *holderSet {
	h := &holderSet{stop: make(chan struct{})}
	for _, n := range c.replicas {
		h.wg.Add(1)
		go func(n *replicaNode) {
			defer h.wg.Done()
			for {
				select {
				case <-h.stop:
					return
				case <-time.After(40 * time.Millisecond):
				}
				n.withDB(func(db *core.DB, _ *repl.Replica) {
					tid := db.TableID("accounts")
					if tid == 0 {
						return // mid-bootstrap; nothing to pin yet
					}
					cur, err := db.OpenCursor(tid)
					if err != nil {
						return
					}
					select {
					case <-h.stop:
					case <-time.After(80 * time.Millisecond):
					}
					cur.Close()
				})
			}
		}(n)
	}
	return h
}

func (h *holderSet) halt() {
	close(h.stop)
	h.wg.Wait()
}

// stateDump is a comparable snapshot of one engine's bank state.
type stateDump struct {
	accounts map[ts.RID]int64
	ledger   []string // sorted "id:amount"
}

func dumpState(db *core.DB, accounts, ledger ts.TableID) (*stateDump, error) {
	d := &stateDump{accounts: make(map[ts.RID]int64)}
	err := db.Exec(txn.StmtSI, nil, func(tx *core.Tx) error {
		d.accounts = make(map[ts.RID]int64)
		d.ledger = d.ledger[:0]
		if err := tx.Scan(accounts, func(rid ts.RID, img []byte) bool {
			v, _ := parseBalance(img)
			d.accounts[rid] = v
			return true
		}); err != nil {
			return err
		}
		return tx.Scan(ledger, func(_ ts.RID, img []byte) bool {
			d.ledger = append(d.ledger, string(img))
			return true
		})
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(d.ledger)
	return d, nil
}

func (d *stateDump) diff(o *stateDump) string {
	if len(d.accounts) != len(o.accounts) {
		return fmt.Sprintf("account count %d != %d", len(o.accounts), len(d.accounts))
	}
	for rid, v := range d.accounts {
		if ov, ok := o.accounts[rid]; !ok || ov != v {
			return fmt.Sprintf("account %v: %d != %d", rid, ov, v)
		}
	}
	if len(d.ledger) != len(o.ledger) {
		return fmt.Sprintf("ledger count %d != %d", len(o.ledger), len(d.ledger))
	}
	for i := range d.ledger {
		if d.ledger[i] != o.ledger[i] {
			return fmt.Sprintf("ledger[%d]: %q != %q", i, o.ledger[i], d.ledger[i])
		}
	}
	return ""
}

// checkConvergence waits for every replica to reach the primary's LSN after
// the heal, then compares full bank state.
func checkConvergence(c *cluster, rep *Report) {
	target := c.db.WAL().NextLSN()
	primary, err := dumpState(c.db, c.accounts, c.ledger)
	if err != nil {
		rep.violatef("convergence: primary state dump failed: %v", err)
		return
	}
	for i, n := range c.replicas {
		n.withDB(func(db *core.DB, r *repl.Replica) {
			if err := r.WaitLSN(target, 10*time.Second); err != nil {
				rep.violatef("convergence: replica %d never reached %v after heal: %v (rebootstraps=%d)",
					i, target, err, n.rebootstrapCount())
				return
			}
			acc, led := db.TableID("accounts"), db.TableID("ledger")
			if acc == 0 || led == 0 {
				rep.violatef("convergence: replica %d is missing the bank tables after catch-up", i)
				return
			}
			dump, err := dumpState(db, acc, led)
			if err != nil {
				rep.violatef("convergence: replica %d state dump failed: %v", i, err)
				return
			}
			if d := primary.diff(dump); d != "" {
				rep.violatef("convergence: replica %d diverged from primary: %s", i, d)
			}
		})
	}
}

// checkHorizonLiveness is invariant 4: a replica holding an open snapshot is
// partitioned away; its pin on the primary's GC horizon must be released
// within HorizonBound (stream teardown or staleness demotion), so a dead
// peer cannot hold the version space hostage.
func checkHorizonLiveness(c *cluster, opt Options, rep *Report) {
	if len(c.replicas) == 0 {
		return
	}
	n := c.replicas[0]
	m := c.db.Manager()
	n.withDB(func(db *core.DB, _ *repl.Replica) {
		tid := db.TableID("accounts")
		if tid == 0 {
			rep.violatef("horizon: replica 0 has no accounts table; cannot probe")
			return
		}
		cur, err := db.OpenCursor(tid)
		if err != nil {
			rep.violatef("horizon: replica 0 cursor open failed: %v", err)
			return
		}
		defer cur.Close()
		pin := cur.SnapshotTS()

		// Make the primary's clock move past the pin, then wait for the pin
		// to be reported upstream and take effect on the global horizon.
		for i := 0; i < 3; i++ {
			if _, err := insertLocal(c.db, c.ledger, []byte(fmt.Sprintf("probe-%d:0", i))); err != nil {
				rep.violatef("horizon: probe insert failed: %v", err)
				return
			}
		}
		if !waitUntil(2*time.Second, func() bool { return m.GlobalHorizon() <= pin }) {
			rep.violatef("horizon: replica snapshot %v never pinned the primary (horizon %v) — probe is not valid",
				pin, m.GlobalHorizon())
			return
		}

		// Partition the pinning replica both ways and clock the release.
		start := time.Now()
		n.proxy.SetPartition(true, true)
		defer n.proxy.SetPartition(false, false)
		if !waitUntil(opt.HorizonBound, func() bool { return m.GlobalHorizon() > pin }) {
			rep.violatef("horizon: dead replica still pins GC horizon at %v after %s (horizon %v)",
				pin, opt.HorizonBound, m.GlobalHorizon())
			return
		}
		rep.PinReleaseMS = time.Since(start).Milliseconds()

		// The staleness sweeper must also demote the silent replica so its
		// segment floor stops blocking WAL pruning.
		if !waitUntil(opt.HorizonBound, func() bool {
			var st wire.Stats
			c.src.PopulateStats(&st)
			for _, r := range st.Replicas {
				if r.ID == n.id {
					return r.Demoted
				}
			}
			return true // detached entirely: floor gone with it
		}) {
			rep.violatef("horizon: partitioned replica %s was never demoted within %s", n.id, opt.HorizonBound)
		}
	})
}

// checkNoLostCommits is invariant 2: after the heal, the primary's ledger
// contains every acknowledged transfer exactly once, and nothing that was
// neither acknowledged nor ambiguous.
func checkNoLostCommits(c *cluster, acked, ambiguous map[string]struct{}, rep *Report) {
	entries, dups, err := ledgerEntries(c.db, c.ledger)
	if err != nil {
		rep.violatef("durability: ledger scan failed: %v", err)
		return
	}
	for _, id := range dups {
		rep.violatef("durability: ledger entry %q applied more than once", id)
	}
	lost := 0
	for id := range acked {
		if _, ok := entries[id]; !ok {
			lost++
			if lost <= 3 {
				rep.violatef("durability: acknowledged commit %q is missing after heal", id)
			}
		}
	}
	if lost > 3 {
		rep.violatef("durability: ... and %d more acknowledged commits missing", lost-3)
	}
	for id := range entries {
		if isProbeEntry(id) {
			continue
		}
		if _, ok := acked[id]; ok {
			continue
		}
		if _, ok := ambiguous[id]; ok {
			continue
		}
		rep.violatef("durability: ledger entry %q was never acknowledged or ambiguous", id)
	}
}

func isProbeEntry(id string) bool {
	return len(id) > 6 && id[:6] == "probe-"
}

// waitUntil polls cond every 5ms until it holds or the deadline passes.
func waitUntil(d time.Duration, cond func() bool) bool {
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return true
		}
		time.Sleep(5 * time.Millisecond)
	}
	return cond()
}
