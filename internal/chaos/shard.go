package chaos

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"hybridgc/internal/core"
	"hybridgc/internal/engine"
	"hybridgc/internal/gc"
	"hybridgc/internal/shard"
	"hybridgc/internal/ts"
	"hybridgc/internal/txn"
)

// ShardedOptions configures one sharded chaos run. The zero value selects a
// short smoke run; only Seed has no default worth relying on.
type ShardedOptions struct {
	// Seed fixes the victim shard, the isolation schedule and every worker's
	// update sequence.
	Seed int64
	// Duration is the length of the churn phases (<=0 selects 1.2s).
	Duration time.Duration
	// Shards is the cluster width (<=0 selects 3; the isolation probe needs
	// at least 2).
	Shards int
	// Workers is the number of concurrent update workers (<=0 selects 3).
	Workers int
	// Rows is the per-shard row count (<=0 selects 8).
	Rows int
	// HorizonBound is how long each horizon-advance wait may take before the
	// invariant fails (<=0 selects 3s).
	HorizonBound time.Duration
}

func (o *ShardedOptions) fill() {
	if o.Duration <= 0 {
		o.Duration = 1200 * time.Millisecond
	}
	if o.Shards <= 1 {
		o.Shards = 3
	}
	if o.Workers <= 0 {
		o.Workers = 3
	}
	if o.Rows <= 0 {
		o.Rows = 8
	}
	if o.HorizonBound <= 0 {
		o.HorizonBound = 3 * time.Second
	}
}

// RunSharded is the sharded analogue of Run: an in-process shard cluster runs
// a concurrent update workload with per-shard GC schedulers live while a
// seeded nemesis partitions one shard away — client traffic to it stops and a
// stranded open cursor keeps a snapshot pinned there, exactly what a client
// cut off mid-scan leaves behind. The invariants are the per-shard GC-horizon
// contract:
//
//  1. Independence — while the victim is partitioned (its horizon pinned at
//     the stranded snapshot), every other shard's GC horizon keeps advancing.
//     One shard's pin must never leak into another shard's version space.
//  2. Containment — the victim's horizon stays at or below the pinned
//     snapshot for the whole partition; reclamation there is suspended, not
//     corrupted.
//  3. Recovery — after the heal (cursor closed, traffic restored) the
//     victim's horizon passes the old pin within HorizonBound.
//  4. Integrity — no shard fail-stops, and every row is readable through the
//     routed path afterwards.
func RunSharded(opt ShardedOptions) (*Report, error) {
	opt.fill()
	rep := &Report{Seed: opt.Seed}

	cl, err := shard.Open(shard.Config{
		Shards: opt.Shards,
		Configure: func(int) core.Config {
			return core.Config{
				GC:                 gc.Periods{GT: 10 * time.Millisecond, TG: 30 * time.Millisecond, SI: 25 * time.Millisecond},
				LongLivedThreshold: 25 * time.Millisecond,
			}
		},
	})
	if err != nil {
		return nil, err
	}
	defer cl.Close()

	tid, err := cl.CreateTable("rows")
	if err != nil {
		return nil, err
	}
	total := opt.Rows * opt.Shards
	if err := cl.Exec(txn.StmtSI, nil, func(tx engine.Tx) error {
		for i := 0; i < total; i++ {
			if _, err := tx.Insert(tid, []byte(fmt.Sprintf("r%d:0", i))); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return nil, err
	}
	for i := 0; i < opt.Shards; i++ {
		cl.Shard(i).GC().Start()
		defer cl.Shard(i).GC().Stop()
	}

	rng := rand.New(rand.NewSource(opt.Seed))
	victim := rng.Intn(opt.Shards)
	rep.Schedule = append(rep.Schedule, fmt.Sprintf("victim shard %d of %d", victim, opt.Shards))

	// Workers update random rows through pinned single-shard transactions —
	// the default interleave (block size 1) puts global RID r on shard
	// (r-1)%N. While the partition holds, traffic to the victim is dropped.
	var (
		stop     = make(chan struct{})
		wg       sync.WaitGroup
		isolated atomic.Bool
		acked    atomic.Int64
		seq      atomic.Int64
	)
	for w := 0; w < opt.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			wrng := rand.New(rand.NewSource(opt.Seed + int64(w)*7919))
			for {
				select {
				case <-stop:
					return
				default:
				}
				idx := wrng.Intn(total)
				s := idx % opt.Shards
				if s == victim && isolated.Load() {
					continue
				}
				tx, err := cl.BeginShard(s, txn.StmtSI, tid)
				if err != nil {
					continue
				}
				img := []byte(fmt.Sprintf("r%d:%d", idx, seq.Add(1)))
				if err := tx.Update(tid, ts.RID(idx+1), img); err != nil {
					tx.Abort()
					continue
				}
				if tx.Commit() == nil {
					acked.Add(1)
				}
			}
		}(w)
	}
	finish := func() {
		close(stop)
		wg.Wait()
		rep.Acked = acked.Load()
	}

	// Warm-up churn, then partition the victim: a cursor opened just before
	// the cut is the stranded snapshot the partition leaves pinned.
	time.Sleep(opt.Duration / 4)
	cur, err := cl.Shard(victim).OpenCursor(tid)
	if err != nil {
		finish()
		return rep, err
	}
	pin := cur.SnapshotTS()
	isolated.Store(true)
	rep.Schedule = append(rep.Schedule, fmt.Sprintf("partition shard %d (pin ts %d)", victim, pin))

	// Invariant 1: every surviving shard's horizon advances past its value at
	// the moment of the partition.
	mark := make([]ts.CID, opt.Shards)
	for i := range mark {
		mark[i] = cl.Shard(i).Manager().GlobalHorizon()
	}
	reclaimedBefore := int64(0)
	for i := 0; i < opt.Shards; i++ {
		if i != victim {
			reclaimedBefore += cl.Shard(i).Stats().VersionsReclaimed
		}
	}
	time.Sleep(opt.Duration / 2)
	for i := 0; i < opt.Shards; i++ {
		if i == victim {
			continue
		}
		m := cl.Shard(i).Manager()
		if !waitUntil(opt.HorizonBound, func() bool { return m.GlobalHorizon() > mark[i] }) {
			rep.violatef("independence: shard %d horizon stuck at %d while shard %d is partitioned",
				i, m.GlobalHorizon(), victim)
		}
		rep.ConservationChecks++
	}
	reclaimedAfter := int64(0)
	for i := 0; i < opt.Shards; i++ {
		if i != victim {
			reclaimedAfter += cl.Shard(i).Stats().VersionsReclaimed
		}
	}
	if reclaimedAfter <= reclaimedBefore {
		rep.violatef("independence: surviving shards reclaimed nothing during the partition (%d -> %d)",
			reclaimedBefore, reclaimedAfter)
	}

	// Invariant 2: the stranded snapshot holds the victim's horizon.
	if h := cl.Shard(victim).Manager().GlobalHorizon(); h > pin {
		rep.violatef("containment: victim shard %d horizon %d advanced past its pinned snapshot %d", victim, h, pin)
	}

	// Heal: close the stranded cursor, restore traffic, and require the
	// victim's horizon to pass the old pin.
	cur.Close()
	isolated.Store(false)
	rep.Schedule = append(rep.Schedule, fmt.Sprintf("heal shard %d", victim))
	vm := cl.Shard(victim).Manager()
	start := time.Now()
	if !waitUntil(opt.HorizonBound, func() bool { return vm.GlobalHorizon() > pin }) {
		rep.violatef("recovery: victim shard %d horizon still at %d (pin %d) %s after the heal",
			victim, vm.GlobalHorizon(), pin, opt.HorizonBound)
	} else {
		// Floor at 1ms: zero is the "never measured" sentinel, and an
		// in-process heal can release the pin inside a millisecond.
		if rep.PinReleaseMS = time.Since(start).Milliseconds(); rep.PinReleaseMS == 0 {
			rep.PinReleaseMS = 1
		}
	}
	finish()

	// Invariant 4: clean engines and a fully readable table.
	for i := 0; i < opt.Shards; i++ {
		if failed, cause := cl.Shard(i).FailStop(); failed {
			rep.violatef("integrity: shard %d fail-stopped: %v", i, cause)
		}
	}
	tx := cl.Begin(txn.StmtSI)
	defer tx.Abort()
	for i := 0; i < total; i++ {
		if _, err := tx.Get(tid, ts.RID(i+1)); err != nil {
			rep.violatef("integrity: row %d unreadable after the run: %v", i+1, err)
			break
		}
		rep.ConservationChecks++
	}
	return rep, nil
}
