package chaos

import (
	"fmt"
	"net"
	"os"
	"sync"
	"time"

	"hybridgc/internal/client"
	"hybridgc/internal/core"
	"hybridgc/internal/gc"
	"hybridgc/internal/netfault"
	"hybridgc/internal/repl"
	"hybridgc/internal/server"
	"hybridgc/internal/ts"
)

// Timing profile for chaos runs: tight enough that partitions, demotions and
// redials all happen inside a few seconds of wall clock, loose enough that a
// healthy loopback exchange never trips a deadline.
const (
	heartbeatEvery  = 20 * time.Millisecond
	reportEvery     = 20 * time.Millisecond
	staleAfter      = 500 * time.Millisecond
	streamWriteTO   = 300 * time.Millisecond
	replicaStallTO  = 600 * time.Millisecond
	clientDialTO    = 400 * time.Millisecond
	clientRequestTO = 800 * time.Millisecond
)

// cluster is the system under test: one persistent primary, N replicas each
// streaming through their own fault proxy, and a pooled client dialing the
// primary through the client proxy.
type cluster struct {
	dir string

	db  *core.DB // primary engine
	src *repl.Source
	srv *server.Server

	clientInj   *netfault.Injector
	clientProxy *netfault.Proxy
	cl          *client.Client

	replicas []*replicaNode

	accounts ts.TableID
	ledger   ts.TableID
	acctRIDs []ts.RID
	total    int64

	served chan struct{}
}

// startCluster builds the whole topology and seeds the bank.
func startCluster(opt Options) (*cluster, error) {
	dir, err := os.MkdirTemp("", "chaos-*")
	if err != nil {
		return nil, err
	}
	c := &cluster{dir: dir, served: make(chan struct{})}
	fail := func(err error) (*cluster, error) {
		c.stop()
		return nil, err
	}

	c.db, err = core.Open(engineConfig(dir, false))
	if err != nil {
		return fail(err)
	}
	c.db.GC().Start()
	c.src, err = repl.NewSource(c.db, repl.SourceConfig{
		HeartbeatEvery: heartbeatEvery,
		StaleAfter:     staleAfter,
		WriteTimeout:   streamWriteTO,
	})
	if err != nil {
		return fail(err)
	}
	c.srv, err = server.New(c.db, server.Config{
		Repl:         c.src,
		StatsHook:    c.src.PopulateStats,
		WriteTimeout: clientRequestTO,
	})
	if err != nil {
		return fail(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return fail(err)
	}
	go func() {
		defer close(c.served)
		_ = c.srv.Serve(ln)
	}()
	addr := ln.Addr().String()

	// Seed the bank directly on the engine, before any network weather.
	if err := c.seedBank(opt.Accounts); err != nil {
		return fail(err)
	}

	// Client path: pooled client → injector-armed proxy → primary. The
	// injector's per-I/O kills, stalls and partial writes ride on top of
	// whatever the nemesis does to the proxy's gates.
	c.clientInj = netfault.NewInjector(opt.Seed, netfault.Plan{
		KillProb:         0.004,
		StallProb:        0.004,
		Stall:            100 * time.Millisecond,
		PartialWriteProb: 0.002,
	})
	c.clientProxy, err = netfault.NewProxy(addr, c.clientInj)
	if err != nil {
		return fail(err)
	}
	c.cl, err = client.Dial(client.Config{
		Addr:           c.clientProxy.Addr(),
		MaxConns:       8,
		DialTimeout:    clientDialTO,
		RequestTimeout: clientRequestTO,
		RedialBase:     10 * time.Millisecond,
		RedialMax:      150 * time.Millisecond,
	})
	if err != nil {
		return fail(err)
	}

	// Replica paths: each replica dials the primary through its own proxy so
	// the nemesis can partition them independently.
	for i := 0; i < opt.Replicas; i++ {
		n, err := startReplicaNode(fmt.Sprintf("r%d", i), addr)
		if err != nil {
			return fail(err)
		}
		c.replicas = append(c.replicas, n)
	}
	return c, nil
}

func engineConfig(dir string, readOnly bool) core.Config {
	cfg := core.Config{
		GC:                 gc.Periods{GT: 25 * time.Millisecond, TG: 75 * time.Millisecond, SI: 50 * time.Millisecond},
		LongLivedThreshold: 50 * time.Millisecond,
		ReadOnly:           readOnly,
	}
	if !readOnly {
		cfg.Persistence = &core.Persistence{Dir: dir}
	}
	return cfg
}

// seedBank creates the accounts and ledger tables and funds every account.
func (c *cluster) seedBank(accounts int) error {
	var err error
	if c.accounts, err = c.db.CreateTable("accounts"); err != nil {
		return err
	}
	if c.ledger, err = c.db.CreateTable("ledger"); err != nil {
		return err
	}
	const initial = 1000
	for i := 0; i < accounts; i++ {
		rid, err := insertLocal(c.db, c.accounts, formatBalance(initial))
		if err != nil {
			return err
		}
		c.acctRIDs = append(c.acctRIDs, rid)
		c.total += initial
	}
	return nil
}

// healAll clears every proxy fault so the cluster can converge.
func (c *cluster) healAll() {
	c.clientProxy.Heal()
	for _, n := range c.replicas {
		n.proxy.Heal()
	}
}

// stop tears the whole topology down; safe on a partially built cluster.
func (c *cluster) stop() {
	if c.cl != nil {
		c.cl.Close()
	}
	if c.clientProxy != nil {
		c.clientProxy.Close()
	}
	for _, n := range c.replicas {
		n.stop()
	}
	if c.srv != nil {
		c.srv.Shutdown(5 * time.Second)
		<-c.served
	}
	if c.src != nil {
		c.src.Close()
	}
	if c.db != nil {
		c.db.GC().Stop()
		c.db.Close()
	}
	if c.dir != "" {
		os.RemoveAll(c.dir)
	}
}

// replicaNode is one replica: a read-only engine streamed through a fault
// proxy, with automatic re-bootstrap after demotion (the operator loop
// hybridgcd runs, in-process). The engine handle swaps on re-bootstrap, so
// readers take the RLock for the whole time they hold a cursor into it.
type replicaNode struct {
	id       string
	upstream string // primary address, proxied
	proxy    *netfault.Proxy

	mu  sync.RWMutex
	db  *core.DB
	rep *repl.Replica

	stopped      chan struct{}
	done         chan struct{}
	stopOnce     sync.Once
	rebootstraps int64 // guarded by mu
}

func startReplicaNode(id, primaryAddr string) (*replicaNode, error) {
	proxy, err := netfault.NewProxy(primaryAddr, nil)
	if err != nil {
		return nil, err
	}
	n := &replicaNode{
		id:       id,
		upstream: proxy.Addr(),
		proxy:    proxy,
		stopped:  make(chan struct{}),
		done:     make(chan struct{}),
	}
	if err := n.buildEngine(); err != nil {
		proxy.Close()
		return nil, err
	}
	go n.run()
	return n, nil
}

// buildEngine opens a fresh read-only engine and a Replica over it,
// installing both under the write lock.
func (n *replicaNode) buildEngine() error {
	db, err := core.Open(engineConfig("", true))
	if err != nil {
		return err
	}
	db.GC().Start()
	rep, err := repl.NewReplica(db, repl.ReplicaConfig{
		Upstream:      n.upstream,
		ReplicaID:     n.id,
		ReportEvery:   reportEvery,
		DialTimeout:   300 * time.Millisecond,
		StallTimeout:  replicaStallTO,
		WriteTimeout:  streamWriteTO,
		ReconnectBase: 10 * time.Millisecond,
		ReconnectMax:  200 * time.Millisecond,
	})
	if err != nil {
		db.GC().Stop()
		db.Close()
		return err
	}
	n.mu.Lock()
	n.db, n.rep = db, rep
	n.mu.Unlock()
	return nil
}

// run streams until stop, rebuilding the engine whenever the primary
// requires a re-bootstrap (demotion, pruned segments, stale checkpoint).
func (n *replicaNode) run() {
	defer close(n.done)
	for {
		n.mu.RLock()
		rep := n.rep
		n.mu.RUnlock()
		err := rep.Run()
		select {
		case <-n.stopped:
			return
		default:
		}
		if err == nil {
			return // stopped concurrently
		}
		// ErrBootstrapRequired: discard the engine, start over empty.
		n.mu.Lock()
		old := n.db
		n.rebootstraps++
		n.mu.Unlock()
		if err := n.buildEngine(); err != nil {
			return
		}
		old.GC().Stop()
		old.Close()
	}
}

// withDB runs fn with the current engine handle held stable (no re-bootstrap
// swap can close it while fn runs). fn must not block on the swapped lock.
func (n *replicaNode) withDB(fn func(db *core.DB, rep *repl.Replica)) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	fn(n.db, n.rep)
}

func (n *replicaNode) rebootstrapCount() int64 {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.rebootstraps
}

func (n *replicaNode) stop() {
	n.stopOnce.Do(func() {
		close(n.stopped)
		n.mu.RLock()
		rep := n.rep
		n.mu.RUnlock()
		rep.Stop()
		select {
		case <-n.done:
		case <-time.After(5 * time.Second):
		}
		n.proxy.Close()
		n.mu.RLock()
		db := n.db
		n.mu.RUnlock()
		db.GC().Stop()
		db.Close()
	})
}
