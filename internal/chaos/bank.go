package chaos

import (
	"errors"
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"hybridgc/internal/client"
	"hybridgc/internal/core"
	"hybridgc/internal/ts"
	"hybridgc/internal/txn"
)

// errShutdown aborts a retry loop when the chaos phase ends mid-transfer.
// Deliberately not transient: core.Retry returns it immediately, and the
// worker can tell "skipped, nothing committed" apart from a real ack.
var errShutdown = errors.New("chaos: workload stopping")

// bank drives concurrent transfers through the pooled client while the
// nemesis operates, and keeps the ground truth the durability invariant is
// checked against: which ledger entries were acknowledged and which ended
// ambiguous.
type bank struct {
	c   *cluster
	rep *Report

	stop chan struct{}
	wg   sync.WaitGroup

	mu        sync.Mutex
	acked     map[string]struct{} // ledger ids whose COMMIT was acknowledged
	ambiguous map[string]struct{} // ledger ids whose COMMIT outcome is unknown

	unexpected atomic.Int64 // non-transient, non-ambiguous workload errors
	lastErr    atomic.Value // string
}

func startBank(c *cluster, opt Options, rep *Report) *bank {
	b := &bank{
		c: c, rep: rep,
		stop:      make(chan struct{}),
		acked:     make(map[string]struct{}),
		ambiguous: make(map[string]struct{}),
	}
	for w := 0; w < opt.Workers; w++ {
		b.wg.Add(1)
		// Each worker draws from its own stream so the transfer sequence is
		// fixed by (seed, worker) regardless of scheduling.
		go b.worker(w, rand.New(rand.NewSource(opt.Seed+int64(w)*7919)))
	}
	// Two conservation checkers: one reads through the chaotic client path,
	// one directly on the engine — so invariant 1 keeps being exercised even
	// while the network side is fully down.
	b.wg.Add(2)
	go b.remoteChecker()
	go b.localChecker()
	return b
}

func (b *bank) halt() {
	close(b.stop)
	b.wg.Wait()
}

func (b *bank) stopping() bool {
	select {
	case <-b.stop:
		return true
	default:
		return false
	}
}

// worker runs transfers until the chaos phase ends. Every logical transfer
// gets a unique ledger id; a transient failure retries the whole transfer
// under the same id (nothing of the failed attempt survived), an ambiguous
// commit abandons the id to the ambiguous set, and an acknowledged commit
// moves it to the acked set.
func (b *bank) worker(id int, rng *rand.Rand) {
	defer b.wg.Done()
	for seq := 0; ; seq++ {
		if b.stopping() {
			return
		}
		from := rng.Intn(len(b.c.acctRIDs))
		to := rng.Intn(len(b.c.acctRIDs) - 1)
		if to >= from {
			to++
		}
		amount := int64(1 + rng.Intn(50))
		lid := fmt.Sprintf("w%d-%d", id, seq)
		err := core.Retry(6, 10*time.Millisecond, func() error {
			if b.stopping() {
				return errShutdown // non-transient: Retry returns it at once
			}
			return b.transferOnce(from, to, amount, lid)
		})
		switch {
		case err == nil:
			// The commit was acknowledged — record it even if the phase just
			// ended, or the durability check would see an unclassified entry.
			b.mu.Lock()
			b.acked[lid] = struct{}{}
			b.mu.Unlock()
			atomic.AddInt64(&b.rep.Acked, 1)
			if b.stopping() {
				return
			}
		case errors.Is(err, errShutdown):
			return // nothing was committed for this lid
		case errors.Is(err, core.ErrCommitAmbiguous):
			b.mu.Lock()
			b.ambiguous[lid] = struct{}{}
			b.mu.Unlock()
			atomic.AddInt64(&b.rep.Ambiguous, 1)
		case core.IsTransient(err):
			atomic.AddInt64(&b.rep.GaveUp, 1) // retries exhausted; nothing committed
		case errors.Is(err, client.ErrClosed):
			return
		default:
			b.unexpected.Add(1)
			b.lastErr.Store(err.Error())
		}
	}
}

// transferOnce is one transactional attempt: move amount between two
// accounts and record the movement in the ledger, all under transaction-level
// snapshot isolation.
func (b *bank) transferOnce(from, to int, amount int64, lid string) error {
	tx, err := b.c.cl.Begin(true)
	if err != nil {
		return err
	}
	defer tx.Abort()
	fb, err := b.readBalance(tx, b.c.acctRIDs[from])
	if err != nil {
		return err
	}
	tb, err := b.readBalance(tx, b.c.acctRIDs[to])
	if err != nil {
		return err
	}
	if err := tx.Update(b.c.accounts, b.c.acctRIDs[from], formatBalance(fb-amount)); err != nil {
		return err
	}
	if err := tx.Update(b.c.accounts, b.c.acctRIDs[to], formatBalance(tb+amount)); err != nil {
		return err
	}
	if _, err := tx.Insert(b.c.ledger, []byte(lid+":"+strconv.FormatInt(amount, 10))); err != nil {
		return err
	}
	return tx.Commit()
}

func (b *bank) readBalance(tx *client.Tx, rid ts.RID) (int64, error) {
	img, err := tx.Get(b.c.accounts, rid)
	if err != nil {
		return 0, err
	}
	return parseBalance(img)
}

// remoteChecker verifies conservation through the client path: a snapshot
// transaction scans the accounts table and sums it. Transport-layer failures
// are expected weather; a successful read with the wrong sum is an isolation
// violation.
func (b *bank) remoteChecker() {
	defer b.wg.Done()
	for {
		select {
		case <-b.stop:
			return
		case <-time.After(40 * time.Millisecond):
		}
		tx, err := b.c.cl.Begin(true)
		if err != nil {
			continue
		}
		sum, n, err := sumAccountsTx(tx, b.c.accounts)
		tx.Abort()
		if err != nil || b.stopping() {
			continue
		}
		atomic.AddInt64(&b.rep.ConservationChecks, 1)
		if n == len(b.c.acctRIDs) && sum != b.c.total {
			b.violation("conservation (remote): snapshot sum %d != %d", sum, b.c.total)
		}
	}
}

// localChecker verifies conservation directly on the primary engine, so the
// invariant stays under test even when the nemesis has the whole network
// dark.
func (b *bank) localChecker() {
	defer b.wg.Done()
	for {
		select {
		case <-b.stop:
			return
		case <-time.After(25 * time.Millisecond):
		}
		sum, n, err := sumAccountsLocal(b.c.db, b.c.accounts)
		if err != nil {
			continue // transient engine pressure; the snapshot never formed
		}
		atomic.AddInt64(&b.rep.ConservationChecks, 1)
		if n == len(b.c.acctRIDs) && sum != b.c.total {
			b.violation("conservation (local): snapshot sum %d != %d", sum, b.c.total)
		}
	}
}

// violation records an invariant violation under the bank's lock (Report is
// not concurrency-safe by itself).
func (b *bank) violation(format string, args ...any) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.rep.violatef(format, args...)
}

// sets returns copies of the acked and ambiguous ledger-id sets.
func (b *bank) sets() (acked, ambiguous map[string]struct{}) {
	b.mu.Lock()
	defer b.mu.Unlock()
	acked = make(map[string]struct{}, len(b.acked))
	for k := range b.acked {
		acked[k] = struct{}{}
	}
	ambiguous = make(map[string]struct{}, len(b.ambiguous))
	for k := range b.ambiguous {
		ambiguous[k] = struct{}{}
	}
	return acked, ambiguous
}

// --- shared read/format helpers ---

func formatBalance(v int64) []byte { return []byte(strconv.FormatInt(v, 10)) }

func parseBalance(img []byte) (int64, error) {
	return strconv.ParseInt(string(img), 10, 64)
}

// sumAccountsTx sums every account image visible to the remote transaction.
func sumAccountsTx(tx *client.Tx, tid ts.TableID) (sum int64, n int, err error) {
	var perr error
	err = tx.Scan(tid, func(_ ts.RID, img []byte) bool {
		v, e := parseBalance(img)
		if e != nil {
			perr = e
			return false
		}
		sum += v
		n++
		return true
	})
	if err == nil {
		err = perr
	}
	return sum, n, err
}

// sumAccountsLocal sums the accounts table in one statement-level snapshot
// on the engine itself.
func sumAccountsLocal(db *core.DB, tid ts.TableID) (sum int64, n int, err error) {
	var perr error
	err = db.Exec(txn.StmtSI, nil, func(tx *core.Tx) error {
		sum, n = 0, 0
		return tx.Scan(tid, func(_ ts.RID, img []byte) bool {
			v, e := parseBalance(img)
			if e != nil {
				perr = e
				return false
			}
			sum += v
			n++
			return true
		})
	})
	if err == nil {
		err = perr
	}
	return sum, n, err
}

// insertLocal inserts one record through a local autocommit transaction.
func insertLocal(db *core.DB, tid ts.TableID, img []byte) (ts.RID, error) {
	var rid ts.RID
	err := db.Exec(txn.StmtSI, nil, func(tx *core.Tx) error {
		var err error
		rid, err = tx.Insert(tid, img)
		return err
	})
	return rid, err
}

// ledgerEntries scans the ledger into id → amount, failing on duplicates.
func ledgerEntries(db *core.DB, tid ts.TableID) (map[string]int64, []string, error) {
	entries := make(map[string]int64)
	var dups []string
	err := db.Exec(txn.StmtSI, nil, func(tx *core.Tx) error {
		entries = make(map[string]int64)
		dups = dups[:0]
		return tx.Scan(tid, func(_ ts.RID, img []byte) bool {
			id, amtStr, ok := strings.Cut(string(img), ":")
			if !ok {
				dups = append(dups, "malformed:"+string(img))
				return true
			}
			amt, _ := strconv.ParseInt(amtStr, 10, 64)
			if _, seen := entries[id]; seen {
				dups = append(dups, id)
				return true
			}
			entries[id] = amt
			return true
		})
	})
	return entries, dups, err
}
