package colstore

import (
	"errors"
	"fmt"
	"reflect"
	"testing"
	"testing/quick"
	"time"

	"hybridgc/internal/gc"
	"hybridgc/internal/mvcc"
	"hybridgc/internal/sts"
	"hybridgc/internal/ts"
	"hybridgc/internal/txn"
)

func newStore(t *testing.T) (*Store, *txn.Manager) {
	t.Helper()
	m := txn.NewManager(mvcc.NewSpace(256), sts.NewRegistry(), txn.Config{SynchronousPropagation: true})
	t.Cleanup(m.Close)
	return New(m), m
}

func salesSchema() Schema {
	return Schema{
		Names: []string{"region", "amount"},
		Types: []ColumnType{String, Int64},
	}
}

func exec(t *testing.T, m *txn.Manager, fn func(tx *txn.Txn) error) {
	t.Helper()
	tx := m.Begin(txn.StmtSI, nil)
	if err := fn(tx); err != nil {
		tx.Abort()
		t.Fatal(err)
	}
	if _, err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestSchemaValidation(t *testing.T) {
	if err := (Schema{}).Validate(); err == nil {
		t.Fatal("empty schema must fail")
	}
	if err := (Schema{Names: []string{"a"}, Types: []ColumnType{99}}).Validate(); err == nil {
		t.Fatal("unknown type must fail")
	}
	if err := salesSchema().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRowCodecRoundTrip(t *testing.T) {
	s := salesSchema()
	row := Row{StrV("EMEA"), IntV(-42)}
	b, err := encodeRow(s, row)
	if err != nil {
		t.Fatal(err)
	}
	got, err := decodeRow(s, b)
	if err != nil || !reflect.DeepEqual(got, row) {
		t.Fatalf("roundtrip = %v, %v", got, err)
	}
	if _, err := encodeRow(s, Row{IntV(1)}); !errors.Is(err, ErrSchemaMismatch) {
		t.Fatalf("arity mismatch = %v", err)
	}
	if _, err := decodeRow(s, b[:3]); err == nil {
		t.Fatal("truncated row must fail")
	}
}

func TestRowCodecQuick(t *testing.T) {
	s := salesSchema()
	f := func(str string, n int64) bool {
		if len(str) > 4096 {
			return true
		}
		row := Row{StrV(str), IntV(n)}
		b, err := encodeRow(s, row)
		if err != nil {
			return false
		}
		got, err := decodeRow(s, b)
		return err == nil && reflect.DeepEqual(got, row)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCRUDThroughVersionSpace(t *testing.T) {
	s, m := newStore(t)
	tbl, err := s.CreateTable("SALES", salesSchema())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.CreateTable("SALES", salesSchema()); !errors.Is(err, ErrTableExists) {
		t.Fatal("duplicate table must fail")
	}
	if tbl.ID < baseTableID {
		t.Fatalf("column table ID %d collides with row-store range", tbl.ID)
	}

	var rid ts.RID
	exec(t, m, func(tx *txn.Txn) error {
		var err error
		rid, err = s.Insert(tx, tbl, Row{StrV("EMEA"), IntV(100)})
		return err
	})
	// Before GC, the row is served from the version chain (the delta).
	if tbl.SettledRows() != 0 {
		t.Fatal("row must not be in main before migration")
	}
	readTx := m.Begin(txn.StmtSI, nil)
	defer readTx.Abort()
	row, err := s.Get(readTx, tbl, rid)
	if err != nil || row[0].S != "EMEA" || row[1].I != 100 {
		t.Fatalf("get = %v, %v", row, err)
	}

	exec(t, m, func(tx *txn.Txn) error {
		return s.Update(tx, tbl, rid, Row{StrV("EMEA"), IntV(150)})
	})
	row, _ = s.Get(readTx, tbl, rid)
	if row[1].I != 150 {
		t.Fatalf("updated read = %v", row)
	}

	exec(t, m, func(tx *txn.Txn) error { return s.Delete(tx, tbl, rid) })
	if _, err := s.Get(readTx, tbl, rid); !errors.Is(err, ErrNotFound) {
		t.Fatalf("deleted get = %v", err)
	}
	if err := s.Update(readTx, tbl, 999, Row{StrV("x"), IntV(1)}); !errors.Is(err, ErrNotFound) {
		t.Fatalf("update missing = %v", err)
	}
}

func TestGCMigratesIntoColumnVectors(t *testing.T) {
	s, m := newStore(t)
	tbl, _ := s.CreateTable("SALES", salesSchema())
	regions := []string{"EMEA", "APJ", "AMER"}
	var want int64
	for i := 0; i < 30; i++ {
		i := i
		exec(t, m, func(tx *txn.Txn) error {
			_, err := s.Insert(tx, tbl, Row{StrV(regions[i%3]), IntV(int64(i))})
			return err
		})
		want += int64(i)
	}
	// Everything lives in chains until the group collector migrates it.
	if live := m.Space().Live(); live != 30 {
		t.Fatalf("live = %d", live)
	}
	gc.NewGroupTimestamp(m).Collect()
	if live := m.Space().Live(); live != 0 {
		t.Fatalf("live after GC = %d", live)
	}
	if got := tbl.SettledRows(); got != 30 {
		t.Fatalf("settled = %d, want 30", got)
	}
	// Dictionary encoding: 3 distinct regions over 30 rows.
	if card := tbl.DictCardinality(0); card != 3 {
		t.Fatalf("dictionary cardinality = %d, want 3", card)
	}
	// Columnar aggregate over main storage.
	tx := m.Begin(txn.StmtSI, nil)
	defer tx.Abort()
	sum, err := s.SumInt64(tx, tbl, 1)
	if err != nil || sum != want {
		t.Fatalf("sum = %d, %v (want %d)", sum, err, want)
	}
	if _, err := s.SumInt64(tx, tbl, 0); !errors.Is(err, ErrSchemaMismatch) {
		t.Fatal("summing a string column must fail")
	}
}

func TestColumnScanSeesConsistentSnapshot(t *testing.T) {
	s, m := newStore(t)
	tbl, _ := s.CreateTable("SALES", salesSchema())
	var rids []ts.RID
	for i := 0; i < 10; i++ {
		exec(t, m, func(tx *txn.Txn) error {
			rid, err := s.Insert(tx, tbl, Row{StrV("r"), IntV(1)})
			rids = append(rids, rid)
			return err
		})
	}
	gc.NewGroupTimestamp(m).Collect()

	// A Trans-SI reader pins its snapshot; concurrent updates double every
	// amount; the reader's sum must stay at the old values.
	reader := m.Begin(txn.TransSI, nil)
	defer reader.Abort()
	for _, rid := range rids {
		exec(t, m, func(tx *txn.Txn) error {
			return s.Update(tx, tbl, rid, Row{StrV("r"), IntV(2)})
		})
	}
	sum, err := s.SumInt64(reader, tbl, 1)
	if err != nil || sum != 10 {
		t.Fatalf("pinned sum = %d, %v (want 10)", sum, err)
	}
	fresh := m.Begin(txn.StmtSI, nil)
	defer fresh.Abort()
	sum, _ = s.SumInt64(fresh, tbl, 1)
	if sum != 20 {
		t.Fatalf("fresh sum = %d, want 20", sum)
	}
}

// TestRowColumnSeparationUnderTG reproduces §4.3's motivating scenario with
// an actual column store: a long-lived OLAP snapshot over a column table
// must not block reclamation of the row-store-style OLTP tables once the
// table collector scopes it.
func TestRowColumnSeparationUnderTG(t *testing.T) {
	s, m := newStore(t)
	colTbl, _ := s.CreateTable("FACTS", salesSchema())
	exec(t, m, func(tx *txn.Txn) error {
		_, err := s.Insert(tx, colTbl, Row{StrV("EMEA"), IntV(1)})
		return err
	})

	// An OLTP "row table" lives in the same version space under a row-store
	// table ID; we emulate its writes directly through the shared space.
	rowTableID := ts.TableID(1)
	writeRow := func(rid ts.RID, img string) {
		tx := m.Begin(txn.StmtSI, nil)
		rec := &nopRef{}
		v := mvcc.NewVersion(mvcc.OpUpdate, ts.RecordKey{Table: rowTableID, RID: rid}, []byte(img), tx.Context())
		tx.Context().Add(v)
		if _, err := m.Space().Prepend(rec, v, tx.ConflictCheck()); err != nil {
			t.Fatal(err)
		}
		if _, err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}

	// Long OLAP snapshot over the column table only.
	olap := m.AcquireSnapshot(txn.KindCursor, []ts.TableID{colTbl.ID})
	defer olap.Release()

	for i := 0; i < 50; i++ {
		writeRow(ts.RID(1+i%5), fmt.Sprintf("v%d", i))
	}
	gt := gc.NewGroupTimestamp(m)
	gt.Collect()
	blocked := m.Space().Live()
	if blocked < 50 {
		t.Fatalf("GT must be blocked by the OLAP snapshot, live=%d", blocked)
	}

	tg := gc.NewTableGC(m, time.Nanosecond)
	time.Sleep(time.Millisecond)
	st := tg.Collect()
	if st.SnapshotsScoped != 1 {
		t.Fatalf("TG scoped %d snapshots", st.SnapshotsScoped)
	}
	if st.Versions == 0 {
		t.Fatal("TG must reclaim the row tables' versions")
	}
	// The OLAP reader still sees its pinned column data.
	reader := m.Begin(txn.TransSI, nil)
	defer reader.Abort()
	if got := m.Space().Live(); got >= blocked {
		t.Fatalf("row-table versions not reclaimed: %d >= %d", got, blocked)
	}
}

type nopRef struct{}

func (*nopRef) InstallImage([]byte) {}
func (*nopRef) DropRecord()         {}
func (*nopRef) SetVersioned(bool)   {}

func TestWriteConflictAcrossStores(t *testing.T) {
	s, m := newStore(t)
	tbl, _ := s.CreateTable("SALES", salesSchema())
	var rid ts.RID
	exec(t, m, func(tx *txn.Txn) error {
		var err error
		rid, err = s.Insert(tx, tbl, Row{StrV("x"), IntV(1)})
		return err
	})
	t1 := m.Begin(txn.StmtSI, nil)
	defer t1.Abort()
	t2 := m.Begin(txn.StmtSI, nil)
	defer t2.Abort()
	if err := s.Update(t1, tbl, rid, Row{StrV("x"), IntV(2)}); err != nil {
		t.Fatal(err)
	}
	if err := s.Update(t2, tbl, rid, Row{StrV("x"), IntV(3)}); !errors.Is(err, txn.ErrWriteConflict) {
		t.Fatalf("conflict = %v", err)
	}
}
