// Package colstore implements the in-memory column store of §2.1: SAP HANA
// keeps a row store for high-performance OLTP and a column store for
// high-performance OLAP, "seamlessly integrated" under the unified
// transaction manager — transactions across both stores share commit
// timestamps and snapshots while "each store has its own version space
// layout".
//
// This column store shares the transaction manager, the snapshot registry
// and the version space with the row-store engine: recent changes live as
// ordinary version chains (playing the delta-store role), and garbage
// collection migrates settled images into columnar main storage — typed
// column vectors with dictionary-encoded strings. Once a row's chain is
// collected, scans read the vectors directly with no per-row decoding,
// which is the column store's OLAP advantage. All collectors, including the
// table collector's per-table snapshot scoping (§4.3's row/column
// separation argument), work on column tables unchanged.
package colstore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"hybridgc/internal/mvcc"
	"hybridgc/internal/ts"
	"hybridgc/internal/txn"
)

// Errors returned by the column store.
var (
	ErrTableExists    = errors.New("colstore: table already exists")
	ErrSchemaMismatch = errors.New("colstore: row does not match schema")
	ErrNotFound       = errors.New("colstore: record not found")
)

// baseTableID is where column-store table IDs start, keeping them disjoint
// from row-store IDs inside the shared per-table snapshot trackers.
const baseTableID ts.TableID = 1 << 16

// ColumnType is a column's value type.
type ColumnType uint8

const (
	// Int64 is a 64-bit integer column.
	Int64 ColumnType = iota + 1
	// String is a dictionary-encoded string column.
	String
)

// Schema describes a column table's layout.
type Schema struct {
	Names []string
	Types []ColumnType
}

// Validate checks internal consistency.
func (s Schema) Validate() error {
	if len(s.Names) == 0 || len(s.Names) != len(s.Types) {
		return fmt.Errorf("colstore: invalid schema: %d names, %d types", len(s.Names), len(s.Types))
	}
	for _, t := range s.Types {
		if t != Int64 && t != String {
			return fmt.Errorf("colstore: unknown column type %d", t)
		}
	}
	return nil
}

// Value is one typed cell.
type Value struct {
	I int64
	S string
}

// IntV and StrV build cells.
func IntV(v int64) Value  { return Value{I: v} }
func StrV(v string) Value { return Value{S: v} }

// Row is one row's cells in schema order.
type Row []Value

// encodeRow serializes a row as the version payload.
func encodeRow(s Schema, row Row) ([]byte, error) {
	if len(row) != len(s.Types) {
		return nil, fmt.Errorf("%w: %d values for %d columns", ErrSchemaMismatch, len(row), len(s.Types))
	}
	var b []byte
	for i, t := range s.Types {
		switch t {
		case Int64:
			b = binary.LittleEndian.AppendUint64(b, uint64(row[i].I))
		case String:
			b = binary.LittleEndian.AppendUint32(b, uint32(len(row[i].S)))
			b = append(b, row[i].S...)
		}
	}
	return b, nil
}

// decodeRow parses a version payload back into cells.
func decodeRow(s Schema, b []byte) (Row, error) {
	row := make(Row, len(s.Types))
	off := 0
	for i, t := range s.Types {
		switch t {
		case Int64:
			if off+8 > len(b) {
				return nil, fmt.Errorf("colstore: truncated row at column %d", i)
			}
			row[i].I = int64(binary.LittleEndian.Uint64(b[off:]))
			off += 8
		case String:
			if off+4 > len(b) {
				return nil, fmt.Errorf("colstore: truncated row at column %d", i)
			}
			n := int(binary.LittleEndian.Uint32(b[off:]))
			off += 4
			if off+n > len(b) {
				return nil, fmt.Errorf("colstore: truncated string at column %d", i)
			}
			row[i].S = string(b[off : off+n])
			off += n
		}
	}
	if off != len(b) {
		return nil, fmt.Errorf("colstore: %d trailing bytes in row", len(b)-off)
	}
	return row, nil
}

// column is one typed vector.
type column interface {
	set(slot int, v Value)
	get(slot int) Value
	grow(n int)
}

// int64Column is a plain vector.
type int64Column struct {
	vals []int64
}

func (c *int64Column) grow(n int) {
	for len(c.vals) < n {
		c.vals = append(c.vals, 0)
	}
}
func (c *int64Column) set(slot int, v Value) { c.vals[slot] = v.I }
func (c *int64Column) get(slot int) Value    { return Value{I: c.vals[slot]} }

// stringColumn is dictionary-encoded: distinct values live once in dict,
// rows store codes.
type stringColumn struct {
	dict  []string
	index map[string]uint32
	codes []uint32
}

func newStringColumn() *stringColumn {
	return &stringColumn{index: make(map[string]uint32)}
}

func (c *stringColumn) grow(n int) {
	for len(c.codes) < n {
		c.codes = append(c.codes, 0)
	}
}

func (c *stringColumn) set(slot int, v Value) {
	code, ok := c.index[v.S]
	if !ok {
		code = uint32(len(c.dict))
		c.dict = append(c.dict, v.S)
		c.index[v.S] = code
	}
	c.codes[slot] = code
}

func (c *stringColumn) get(slot int) Value {
	return Value{S: c.dict[c.codes[slot]]}
}

// DictSize returns the number of distinct values (dictionary cardinality).
func (c *stringColumn) DictSize() int { return len(c.dict) }

// Table is one column-store table: columnar main storage plus the shared
// version space for unsettled changes.
type Table struct {
	ID     ts.TableID
	Name   string
	schema Schema

	store *Store

	mu      sync.RWMutex
	cols    []column
	present []bool
	refs    map[ts.RID]*recordRef
	nextRID atomic.Uint64
}

// Schema returns the table's schema.
func (t *Table) Schema() Schema { return t.schema }

// Store owns the column-store catalog over a shared transaction manager.
type Store struct {
	m     *txn.Manager
	space *mvcc.Space

	mu     sync.RWMutex
	tables map[string]*Table
	nextID uint32
}

// New creates a column store sharing the given transaction manager (and
// through it, the version space, snapshot registry and garbage collectors).
func New(m *txn.Manager) *Store {
	return &Store{m: m, space: m.Space(), tables: make(map[string]*Table)}
}

// CreateTable registers a column table.
func (s *Store) CreateTable(name string, schema Schema) (*Table, error) {
	if err := schema.Validate(); err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.tables[name]; dup {
		return nil, fmt.Errorf("%w: %s", ErrTableExists, name)
	}
	s.nextID++
	t := &Table{
		ID:     baseTableID + ts.TableID(s.nextID),
		Name:   name,
		schema: schema,
		store:  s,
	}
	for _, ct := range schema.Types {
		switch ct {
		case Int64:
			t.cols = append(t.cols, &int64Column{})
		case String:
			t.cols = append(t.cols, newStringColumn())
		}
	}
	s.tables[name] = t
	return t, nil
}

// Table resolves a column table by name, or nil.
func (s *Store) Table(name string) *Table {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.tables[name]
}

// Manager returns the shared transaction manager.
func (s *Store) Manager() *txn.Manager { return s.m }
