package colstore

import (
	"errors"
	"fmt"
	"testing"

	"hybridgc/internal/ts"
)

func tsRID(i int) ts.RID { return ts.RID(i) }

var chunkSchema = Schema{
	Names: []string{"id", "city"},
	Types: []ColumnType{Int64, String},
}

// TestChunkDictDuplicatesAcrossChunks checks that dictionaries are strictly
// per-chunk: the same value repeated in two chunks gets one entry in each,
// and each chunk decodes it back independently.
func TestChunkDictDuplicatesAcrossChunks(t *testing.T) {
	build := func(base int) *Chunk {
		b, err := NewChunkBuilder(chunkSchema, tsRID(base), 4, 0)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 4; i++ {
			// Two distinct values, both repeated — and both also present in
			// the other chunk.
			city := "lyon"
			if i%2 == 1 {
				city = "oslo"
			}
			if err := b.Set(tsRID(base+i), Row{IntV(int64(base + i)), StrV(city)}); err != nil {
				t.Fatal(err)
			}
		}
		return b.Seal(7)
	}
	c1, c2 := build(1), build(5)
	for _, c := range []*Chunk{c1, c2} {
		if got := c.DictSize(1); got != 2 {
			t.Fatalf("DictSize = %d, want 2 (duplicates must share an entry per chunk)", got)
		}
	}
	// The shared values decode identically from either chunk's own dictionary.
	for slot := 0; slot < 4; slot++ {
		v1, v2 := c1.ValueAt(1, slot), c2.ValueAt(1, slot)
		if v1.S != v2.S {
			t.Fatalf("slot %d: chunk1=%q chunk2=%q", slot, v1.S, v2.S)
		}
	}
	// Dictionaries are independent objects: growing a later chunk's dict
	// never touches a sealed one.
	if &c1.strs[1].dict[0] == &c2.strs[1].dict[0] {
		t.Fatal("chunks share dictionary storage")
	}
}

// TestChunkDictEmptyStrings checks the empty string is an ordinary
// dictionary value, distinct from other values and from absent slots.
func TestChunkDictEmptyStrings(t *testing.T) {
	b, err := NewChunkBuilder(chunkSchema, 1, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	rows := []Row{
		{IntV(1), StrV("")},
		{IntV(2), StrV("x")},
		{IntV(3), StrV("")},
		// slot 3 left absent
	}
	for i, r := range rows {
		if err := b.Set(tsRID(1+i), r); err != nil {
			t.Fatal(err)
		}
	}
	c := b.Seal(9)
	if got := c.DictSize(1); got != 2 {
		t.Fatalf("DictSize = %d, want 2 (empty string is one entry)", got)
	}
	if v := c.ValueAt(1, 0); v.S != "" {
		t.Fatalf("slot 0 = %q, want empty string", v.S)
	}
	if v := c.ValueAt(1, 2); v.S != "" {
		t.Fatalf("slot 2 = %q, want empty string", v.S)
	}
	if v := c.ValueAt(1, 1); v.S != "x" {
		t.Fatalf("slot 1 = %q, want \"x\"", v.S)
	}
	if c.Present(3) {
		t.Fatal("absent slot reported present")
	}
	if c.Rows() != 3 {
		t.Fatalf("Rows = %d, want 3", c.Rows())
	}
}

// TestChunkDictSizeBound checks an unbounded dictionary fails loudly: the
// Set that would exceed the bound returns ErrDictOverflow and leaves the
// builder usable with already-known values.
func TestChunkDictSizeBound(t *testing.T) {
	const bound = 8
	b, err := NewChunkBuilder(chunkSchema, 1, bound+2, bound)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < bound; i++ {
		if err := b.Set(tsRID(1+i), Row{IntV(int64(i)), StrV(fmt.Sprintf("v%d", i))}); err != nil {
			t.Fatal(err)
		}
	}
	err = b.Set(tsRID(1+bound), Row{IntV(99), StrV("one-too-many")})
	if !errors.Is(err, ErrDictOverflow) {
		t.Fatalf("overflow Set returned %v, want ErrDictOverflow", err)
	}
	// A known value still fits after the rejected insert.
	if err := b.Set(tsRID(1+bound), Row{IntV(99), StrV("v0")}); err != nil {
		t.Fatalf("known value rejected after overflow: %v", err)
	}
	c := b.Seal(3)
	if got := c.DictSize(1); got != bound {
		t.Fatalf("DictSize = %d, want %d (overflow must not grow the dict)", got, bound)
	}
	if c.Rows() != bound+1 {
		t.Fatalf("Rows = %d, want %d", c.Rows(), bound+1)
	}
}

// TestSchemaSpecRoundTrip pins the spec form the WAL lane record carries.
func TestSchemaSpecRoundTrip(t *testing.T) {
	spec := chunkSchema.Spec()
	if spec != "id:int,city:str" {
		t.Fatalf("Spec = %q", spec)
	}
	got, err := ParseSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	if got.Spec() != spec {
		t.Fatalf("round trip = %q, want %q", got.Spec(), spec)
	}
	if _, err := ParseSpec("id:float"); err == nil {
		t.Fatal("bad type accepted")
	}
	if _, err := ParseSpec(""); err == nil {
		t.Fatal("empty spec accepted")
	}
}
