package colstore

import (
	"errors"
	"fmt"
	"strings"

	"hybridgc/internal/ts"
)

// Chunk support: the HTAP lane's unit of columnar main storage. A chunk is
// an immutable, dictionary-encoded slice of a table's dense RID range,
// stamped with the snapshot timestamp (watermark) its contents were settled
// under. Chunks are built by the background migrator from table-space
// images and scanned vectorized — no per-row decoding — by the aggregate
// executor; they are never persisted (recovery rebuilds them from the
// recovered table state).

// ErrDictOverflow reports a chunk column whose string dictionary would
// exceed the configured bound. Dictionaries are per-chunk and must stay
// small enough that code vectors beat raw strings; an unbounded dictionary
// is a misconfigured chunk size or a pathological column, and the builder
// fails loudly instead of degrading silently.
var ErrDictOverflow = errors.New("colstore: chunk string dictionary exceeds bound")

// DefaultMaxDictSize bounds a chunk column's string dictionary when the
// builder is given no explicit bound.
const DefaultMaxDictSize = 1 << 16

// EncodeRow serializes a row in the version-payload layout (int64 as 8
// little-endian bytes, strings length-prefixed). The layout is shared with
// the SQL row codec, so SQL row images decode directly into column vectors.
func EncodeRow(s Schema, row Row) ([]byte, error) { return encodeRow(s, row) }

// DecodeRow parses a version payload back into cells.
func DecodeRow(s Schema, b []byte) (Row, error) { return decodeRow(s, b) }

// Spec renders the schema as a compact string ("id:int,name:str"), the form
// the engine's HTAP lane record carries through the log.
func (s Schema) Spec() string {
	var b strings.Builder
	for i, n := range s.Names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteByte(':')
		if s.Types[i] == Int64 {
			b.WriteString("int")
		} else {
			b.WriteString("str")
		}
	}
	return b.String()
}

// ParseSpec parses the Spec form back into a schema.
func ParseSpec(spec string) (Schema, error) {
	var s Schema
	if spec == "" {
		return s, fmt.Errorf("colstore: empty schema spec")
	}
	for _, part := range strings.Split(spec, ",") {
		name, typ, ok := strings.Cut(part, ":")
		if !ok || name == "" {
			return s, fmt.Errorf("colstore: bad schema spec column %q", part)
		}
		s.Names = append(s.Names, name)
		switch typ {
		case "int":
			s.Types = append(s.Types, Int64)
		case "str":
			s.Types = append(s.Types, String)
		default:
			return s, fmt.Errorf("colstore: bad schema spec type %q", typ)
		}
	}
	return s, s.Validate()
}

// chunkInts is one Int64 column of a chunk: a plain vector, one slot per
// RID in the chunk's range.
type chunkInts struct {
	vals []int64
}

// chunkStrings is one String column: per-chunk dictionary plus a code
// vector. Codes index dict; slot values for absent rows are 0 and must be
// guarded by the present bitmap.
type chunkStrings struct {
	dict  []string
	codes []uint32
}

// Chunk is one sealed columnar batch covering RIDs [BaseRID, BaseRID+Slots).
type Chunk struct {
	schema    Schema
	baseRID   ts.RID
	present   []bool
	rows      int
	ints      map[int]*chunkInts
	strs      map[int]*chunkStrings
	watermark ts.CID
}

// Schema returns the chunk's column layout.
func (c *Chunk) Schema() Schema { return c.schema }

// BaseRID returns the first RID of the chunk's range.
func (c *Chunk) BaseRID() ts.RID { return c.baseRID }

// Slots returns the length of the chunk's RID range (present or not).
func (c *Chunk) Slots() int { return len(c.present) }

// Rows returns the number of present rows.
func (c *Chunk) Rows() int { return c.rows }

// Watermark returns the snapshot timestamp the chunk was settled under: a
// scan at TS >= Watermark may serve present, non-dirty slots from the
// vectors; an older snapshot must fall back to MVCC row reads.
func (c *Chunk) Watermark() ts.CID { return c.watermark }

// Present reports whether the slot holds a settled row.
func (c *Chunk) Present(slot int) bool { return c.present[slot] }

// Int64s returns column col's raw vector (nil if col is not Int64). Slots
// for absent rows hold zero; callers iterate under Present.
func (c *Chunk) Int64s(col int) []int64 {
	if ci := c.ints[col]; ci != nil {
		return ci.vals
	}
	return nil
}

// Strings returns column col's code vector and dictionary (nil if col is
// not String).
func (c *Chunk) Strings(col int) (codes []uint32, dict []string) {
	if cs := c.strs[col]; cs != nil {
		return cs.codes, cs.dict
	}
	return nil, nil
}

// DictSize returns column col's dictionary cardinality (0 for non-string
// columns) — the bound ErrDictOverflow enforces at build time.
func (c *Chunk) DictSize(col int) int {
	if cs := c.strs[col]; cs != nil {
		return len(cs.dict)
	}
	return 0
}

// ValueAt returns the cell at (col, slot); the slot must be present.
func (c *Chunk) ValueAt(col, slot int) Value {
	if ci := c.ints[col]; ci != nil {
		return IntV(ci.vals[slot])
	}
	cs := c.strs[col]
	return StrV(cs.dict[cs.codes[slot]])
}

// ChunkBuilder accumulates settled rows for one RID range and seals them
// into an immutable Chunk.
type ChunkBuilder struct {
	schema  Schema
	baseRID ts.RID
	present []bool
	rows    int
	maxDict int
	ints    map[int]*chunkInts
	strs    map[int]*builderStrings
}

type builderStrings struct {
	dict  []string
	index map[string]uint32
	codes []uint32
}

// NewChunkBuilder starts a chunk over RIDs [baseRID, baseRID+slots).
// maxDict bounds each string column's dictionary (<=0 selects
// DefaultMaxDictSize); exceeding it fails Set with ErrDictOverflow.
func NewChunkBuilder(schema Schema, baseRID ts.RID, slots, maxDict int) (*ChunkBuilder, error) {
	if err := schema.Validate(); err != nil {
		return nil, err
	}
	if baseRID == 0 || slots <= 0 {
		return nil, fmt.Errorf("colstore: invalid chunk range base=%d slots=%d", baseRID, slots)
	}
	if maxDict <= 0 {
		maxDict = DefaultMaxDictSize
	}
	b := &ChunkBuilder{
		schema:  schema,
		baseRID: baseRID,
		present: make([]bool, slots),
		maxDict: maxDict,
		ints:    map[int]*chunkInts{},
		strs:    map[int]*builderStrings{},
	}
	for i, t := range schema.Types {
		switch t {
		case Int64:
			b.ints[i] = &chunkInts{vals: make([]int64, slots)}
		case String:
			b.strs[i] = &builderStrings{index: map[string]uint32{}, codes: make([]uint32, slots)}
		}
	}
	return b, nil
}

// Set places a settled row at its RID's slot. The dictionary bound is
// checked per string column; on overflow the row is not placed and the
// chunk must be built smaller (or the column left to the row path).
func (b *ChunkBuilder) Set(rid ts.RID, row Row) error {
	slot := int(rid - b.baseRID)
	if rid < b.baseRID || slot >= len(b.present) {
		return fmt.Errorf("colstore: RID %d outside chunk range [%d,%d)", rid, b.baseRID, b.baseRID+ts.RID(len(b.present)))
	}
	if len(row) != len(b.schema.Types) {
		return fmt.Errorf("%w: %d values for %d columns", ErrSchemaMismatch, len(row), len(b.schema.Types))
	}
	// Check every dictionary bound before mutating anything, so an overflow
	// leaves the builder unchanged.
	for i, t := range b.schema.Types {
		if t != String {
			continue
		}
		bs := b.strs[i]
		if _, known := bs.index[row[i].S]; !known && len(bs.dict) >= b.maxDict {
			return fmt.Errorf("%w: column %q at %d entries", ErrDictOverflow, b.schema.Names[i], b.maxDict)
		}
	}
	for i, t := range b.schema.Types {
		switch t {
		case Int64:
			b.ints[i].vals[slot] = row[i].I
		case String:
			bs := b.strs[i]
			code, known := bs.index[row[i].S]
			if !known {
				code = uint32(len(bs.dict))
				bs.dict = append(bs.dict, row[i].S)
				bs.index[row[i].S] = code
			}
			bs.codes[slot] = code
		}
	}
	if !b.present[slot] {
		b.present[slot] = true
		b.rows++
	}
	return nil
}

// Seal freezes the builder into a Chunk at the given watermark. The builder
// must not be used afterwards.
func (b *ChunkBuilder) Seal(watermark ts.CID) *Chunk {
	c := &Chunk{
		schema:    b.schema,
		baseRID:   b.baseRID,
		present:   b.present,
		rows:      b.rows,
		ints:      b.ints,
		strs:      map[int]*chunkStrings{},
		watermark: watermark,
	}
	for col, bs := range b.strs {
		c.strs[col] = &chunkStrings{dict: bs.dict, codes: bs.codes}
	}
	return c
}
