package colstore

import (
	"sync/atomic"

	"hybridgc/internal/mvcc"
	"hybridgc/internal/ts"
	"hybridgc/internal/txn"
)

// recordRef adapts one column-store row slot to the version space's record
// handle: image migration decomposes the settled row image into the column
// vectors (the delta-to-main movement of a column store), and dropping a
// record clears its presence bit.
type recordRef struct {
	t   *Table
	rid ts.RID
	// versioned mirrors the row-store is_versioned flag.
	versioned atomic.Bool
}

// InstallImage implements mvcc.RecordRef.
func (r *recordRef) InstallImage(img []byte) {
	row, err := decodeRow(r.t.schema, img)
	if err != nil {
		// A corrupt image can only come from an engine bug; losing it would
		// silently corrupt the table, so fail loudly.
		panic("colstore: migrating undecodable image: " + err.Error())
	}
	r.t.setRow(r.rid, row)
}

// DropRecord implements mvcc.RecordRef.
func (r *recordRef) DropRecord() { r.t.clearRow(r.rid) }

// SetVersioned implements mvcc.RecordRef.
func (r *recordRef) SetVersioned(v bool) { r.versioned.Store(v) }

// slot converts a RID to its vector index.
func slot(rid ts.RID) int { return int(rid) - 1 }

// setRow writes a row image into the column vectors.
func (t *Table) setRow(rid ts.RID, row Row) {
	t.mu.Lock()
	defer t.mu.Unlock()
	s := slot(rid)
	t.growLocked(s + 1)
	for i, c := range t.cols {
		c.set(s, row[i])
	}
	t.present[s] = true
}

// clearRow removes a row from main storage.
func (t *Table) clearRow(rid ts.RID) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if s := slot(rid); s >= 0 && s < len(t.present) {
		t.present[s] = false
	}
}

func (t *Table) growLocked(n int) {
	for len(t.present) < n {
		t.present = append(t.present, false)
	}
	for _, c := range t.cols {
		c.grow(n)
	}
}

// mainRow reads a row from the column vectors, if present.
func (t *Table) mainRow(rid ts.RID) (Row, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	s := slot(rid)
	if s < 0 || s >= len(t.present) || !t.present[s] {
		return nil, false
	}
	row := make(Row, len(t.cols))
	for i, c := range t.cols {
		row[i] = c.get(s)
	}
	return row, true
}

// ref returns (creating) the record handle for rid.
func (t *Table) ref(rid ts.RID) *recordRef {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.refs == nil {
		t.refs = make(map[ts.RID]*recordRef)
	}
	if r, ok := t.refs[rid]; ok {
		return r
	}
	r := &recordRef{t: t, rid: rid}
	t.refs[rid] = r
	return r
}

// Insert creates a new row inside tx and returns its RID. The row image
// lives in the version space until garbage collection settles it into the
// column vectors.
func (s *Store) Insert(tx *txn.Txn, t *Table, row Row) (ts.RID, error) {
	img, err := encodeRow(t.schema, row)
	if err != nil {
		return 0, err
	}
	rid := ts.RID(t.nextRID.Add(1))
	v := mvcc.NewVersion(mvcc.OpInsert, ts.RecordKey{Table: t.ID, RID: rid}, img, tx.Context())
	if _, err := s.space.Prepend(t.ref(rid), v, tx.ConflictCheck()); err != nil {
		return 0, err
	}
	tx.Context().Add(v)
	return rid, nil
}

// Update replaces a row inside tx.
func (s *Store) Update(tx *txn.Txn, t *Table, rid ts.RID, row Row) error {
	return s.write(tx, t, rid, mvcc.OpUpdate, row)
}

// Delete removes a row inside tx.
func (s *Store) Delete(tx *txn.Txn, t *Table, rid ts.RID) error {
	return s.write(tx, t, rid, mvcc.OpDelete, nil)
}

func (s *Store) write(tx *txn.Txn, t *Table, rid ts.RID, op mvcc.OpType, row Row) error {
	at, release := s.stmtSnap(tx)
	_, ok := s.readAt(t, rid, at, tx.MaybeContext())
	release()
	if !ok {
		return ErrNotFound
	}
	var img []byte
	if op != mvcc.OpDelete {
		var err error
		img, err = encodeRow(t.schema, row)
		if err != nil {
			return err
		}
	}
	v := mvcc.NewVersion(op, ts.RecordKey{Table: t.ID, RID: rid}, img, tx.Context())
	if _, err := s.space.Prepend(t.ref(rid), v, tx.ConflictCheck()); err != nil {
		return err
	}
	tx.Context().Add(v)
	return nil
}

// stmtSnap returns the read timestamp for one operation of tx and a release
// function: the transaction snapshot under Trans-SI, or a freshly registered
// statement snapshot under Stmt-SI (registration is what keeps concurrent
// garbage collection from reclaiming what the statement reads).
func (s *Store) stmtSnap(tx *txn.Txn) (ts.CID, func()) {
	if snap := tx.Snapshot(); snap != nil {
		return snap.TS(), func() {}
	}
	sn := s.m.AcquireSnapshot(txn.KindStatement, nil)
	return sn.TS(), sn.Release
}

// Get reads one row as visible to tx.
func (s *Store) Get(tx *txn.Txn, t *Table, rid ts.RID) (Row, error) {
	at, release := s.stmtSnap(tx)
	defer release()
	row, ok := s.readAt(t, rid, at, tx.MaybeContext())
	if !ok {
		return nil, ErrNotFound
	}
	return row, nil
}

// readAt resolves the row visible at a timestamp: chain first (the delta),
// columnar main as fallback.
func (s *Store) readAt(t *Table, rid ts.RID, at ts.CID, own *mvcc.TransContext) (Row, bool) {
	if ch := s.space.HT.Get(ts.RecordKey{Table: t.ID, RID: rid}); ch != nil {
		if v, _ := ch.VisibleAs(at, own); v != nil {
			if v.Op == mvcc.OpDelete {
				return nil, false
			}
			row, err := decodeRow(t.schema, v.Payload)
			if err != nil {
				return nil, false
			}
			return row, true
		}
	}
	return t.mainRow(rid)
}

// ScanColumn visits one column's value for every row visible at the
// snapshot of tx, in RID order. Rows whose chain has been fully collected
// are served straight from the vector — no decoding — which is the
// columnar fast path the store exists for.
func (s *Store) ScanColumn(tx *txn.Txn, t *Table, col int, fn func(rid ts.RID, v Value) bool) error {
	if col < 0 || col >= len(t.cols) {
		return ErrSchemaMismatch
	}
	at, release := s.stmtSnap(tx)
	defer release()
	own := tx.MaybeContext()
	max := ts.RID(t.nextRID.Load())
	for rid := ts.RID(1); rid <= max; rid++ {
		// Delta lookup only when a chain exists for the row.
		if ch := s.space.HT.Get(ts.RecordKey{Table: t.ID, RID: rid}); ch != nil {
			if v, _ := ch.VisibleAs(at, own); v != nil {
				if v.Op == mvcc.OpDelete {
					continue
				}
				row, err := decodeRow(t.schema, v.Payload)
				if err != nil {
					return err
				}
				if !fn(rid, row[col]) {
					return nil
				}
				continue
			}
		}
		// Columnar fast path.
		t.mu.RLock()
		sl := slot(rid)
		ok := sl < len(t.present) && t.present[sl]
		var v Value
		if ok {
			v = t.cols[col].get(sl)
		}
		t.mu.RUnlock()
		if ok && !fn(rid, v) {
			return nil
		}
	}
	return nil
}

// SumInt64 computes the sum of an Int64 column over the rows visible to tx —
// the archetypal columnar aggregate.
func (s *Store) SumInt64(tx *txn.Txn, t *Table, col int) (int64, error) {
	if col < 0 || col >= len(t.schema.Types) || t.schema.Types[col] != Int64 {
		return 0, ErrSchemaMismatch
	}
	var sum int64
	err := s.ScanColumn(tx, t, col, func(_ ts.RID, v Value) bool {
		sum += v.I
		return true
	})
	return sum, err
}

// DictCardinality reports the dictionary size of a String column (how many
// distinct values the encoder has seen).
func (t *Table) DictCardinality(col int) int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if sc, ok := t.cols[col].(*stringColumn); ok {
		return sc.DictSize()
	}
	return 0
}

// SettledRows counts rows currently served from columnar main storage.
func (t *Table) SettledRows() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	n := 0
	for _, p := range t.present {
		if p {
			n++
		}
	}
	return n
}
