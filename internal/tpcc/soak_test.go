package tpcc

import (
	"errors"
	"sync"
	"testing"
	"time"

	"hybridgc/internal/core"
	"hybridgc/internal/gc"
	"hybridgc/internal/ts"
	"hybridgc/internal/txn"
)

// TestSoakEverything runs every moving part at once: TPC-C workers, a
// long-duration cursor with incremental FETCH, repeated Trans-SI scans, the
// periodic HybridGC, the snapshot watchdog (which force-closes the cursor
// mid-run), write-ahead logging with concurrent checkpoints — then checks
// full TPC-C consistency, restarts from the persistency, re-attaches, and
// checks again.
func TestSoakEverything(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	dir := t.TempDir()
	cfg := Config{Warehouses: 3, Districts: 3, CustomersPerDistrict: 12, Items: 80, Seed: 99}
	db, err := core.Open(core.Config{
		Txn:                txn.Config{SynchronousPropagation: true},
		Persistence:        &core.Persistence{Dir: dir},
		GC:                 gc.Periods{GT: 2 * time.Millisecond, TG: 6 * time.Millisecond, SI: 20 * time.Millisecond},
		LongLivedThreshold: 5 * time.Millisecond,
		AutoGC:             true,
		ForceCloseAge:      300 * time.Millisecond,
		ForceClosePeriod:   20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	d, err := New(db, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Load(); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	errCh := make(chan error, 16)

	// OLTP workers.
	for w := 1; w <= cfg.Warehouses; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			if err := d.NewWorker(w).Run(1<<62, stop); err != nil {
				errCh <- err
			}
		}(w)
	}
	// Incremental-FETCH cursor; the watchdog will force-close it eventually.
	wg.Add(1)
	go func() {
		defer wg.Done()
		cur, err := db.OpenCursor(d.StockTableID())
		if err != nil {
			errCh <- err
			return
		}
		defer cur.Close()
		for {
			select {
			case <-stop:
				return
			case <-time.After(5 * time.Millisecond):
			}
			if _, _, err := cur.Fetch(20); err != nil {
				if errors.Is(err, core.ErrSnapshotKilled) {
					return // the watchdog did its job
				}
				errCh <- err
				return
			}
		}
	}()
	// Repeated Trans-SI scans.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			case <-time.After(30 * time.Millisecond):
			}
			tx := db.Begin(txn.TransSI)
			err := tx.Scan(d.StockTableID(), func(_ ts.RID, _ []byte) bool { return true })
			if err != nil && !errors.Is(err, core.ErrSnapshotKilled) {
				tx.Abort()
				errCh <- err
				return
			}
			if err := tx.Commit(); err != nil {
				errCh <- err
				return
			}
		}
	}()
	// Periodic checkpoints.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			case <-time.After(150 * time.Millisecond):
			}
			if err := db.Checkpoint(); err != nil {
				errCh <- err
				return
			}
		}
	}()

	time.Sleep(1200 * time.Millisecond)
	close(stop)
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	if err := d.Check(); err != nil {
		t.Fatalf("consistency before restart: %v", err)
	}
	committed := db.Stats().Txn.TxnsCommitted
	if committed == 0 {
		t.Fatal("soak committed nothing")
	}
	db.Close()

	// Restart from the persistency and re-check everything.
	db2, err := core.Open(core.Config{
		Txn:         txn.Config{SynchronousPropagation: true},
		Persistence: &core.Persistence{Dir: dir},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	d2, err := Attach(db2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := d2.Check(); err != nil {
		t.Fatalf("consistency after restart: %v", err)
	}
	// And the recovered database still serves the workload.
	if err := d2.NewWorker(1).Run(100, nil); err != nil {
		t.Fatal(err)
	}
	if err := d2.Check(); err != nil {
		t.Fatalf("consistency after post-restart work: %v", err)
	}
}
