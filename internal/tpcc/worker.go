package tpcc

import (
	"errors"
	"math/rand"
	"sync/atomic"

	"hybridgc/internal/core"
)

// TxnType enumerates the five TPC-C transaction profiles.
type TxnType int

// The five profiles.
const (
	TxnNewOrder TxnType = iota
	TxnPayment
	TxnOrderStatus
	TxnDelivery
	TxnStockLevel
	numTxnTypes
)

// String implements fmt.Stringer.
func (t TxnType) String() string {
	switch t {
	case TxnNewOrder:
		return "NewOrder"
	case TxnPayment:
		return "Payment"
	case TxnOrderStatus:
		return "OrderStatus"
	case TxnDelivery:
		return "Delivery"
	case TxnStockLevel:
		return "StockLevel"
	default:
		return "Unknown"
	}
}

// WorkerStats counts per-profile outcomes.
type WorkerStats struct {
	Committed [numTxnTypes]atomic.Int64
	Aborted   [numTxnTypes]atomic.Int64
	Errors    [numTxnTypes]atomic.Int64
	// Cross counts committed transactions that took a remote clause crossing
	// onto another shard (another warehouse, when the backend is unsharded) —
	// the transactions that commit through two-phase commit.
	Cross [numTxnTypes]atomic.Int64
}

// TotalCommitted sums committed transactions across profiles.
func (s *WorkerStats) TotalCommitted() int64 {
	var n int64
	for i := range s.Committed {
		n += s.Committed[i].Load()
	}
	return n
}

// TotalCross sums committed cross-shard transactions across profiles.
func (s *WorkerStats) TotalCross() int64 {
	var n int64
	for i := range s.Cross {
		n += s.Cross[i].Load()
	}
	return n
}

// Worker executes the TPC-C mix against one home warehouse. The paper's
// modification 2: "we allocated a dedicated worker thread for each warehouse
// and let the thread access the home warehouse only."
type Worker struct {
	d     *Driver
	w     uint32
	r     *rand.Rand
	Stats WorkerStats
	// cross is set by a profile when its current execution took a remote
	// clause that crossed shards; RunOne reads it after commit.
	cross bool
}

// NewWorker builds the worker for warehouse w (1-based).
func (d *Driver) NewWorker(w int) *Worker {
	return &Worker{
		d: d,
		w: uint32(w),
		r: rand.New(rand.NewSource(d.cfg.Seed + int64(w)*7919)),
	}
}

// Warehouse returns the worker's home warehouse id.
func (wk *Worker) Warehouse() uint32 { return wk.w }

// remoteWarehouse draws a uniformly random warehouse other than the home one.
// Callers must ensure Warehouses > 1.
func (wk *Worker) remoteWarehouse() uint32 {
	w := uint32(randRange(wk.r, 1, wk.d.cfg.Warehouses-1))
	if w >= wk.w {
		w++
	}
	return w
}

// pick draws a transaction type from the standard TPC-C mix:
// 45% New-Order, 43% Payment, 4% Order-Status, 4% Delivery, 4% Stock-Level.
func (wk *Worker) pick() TxnType {
	switch n := wk.r.Intn(100); {
	case n < 45:
		return TxnNewOrder
	case n < 88:
		return TxnPayment
	case n < 92:
		return TxnOrderStatus
	case n < 96:
		return TxnDelivery
	default:
		return TxnStockLevel
	}
}

// run dispatches one profile.
func (wk *Worker) run(t TxnType) error {
	switch t {
	case TxnNewOrder:
		return wk.NewOrder()
	case TxnPayment:
		return wk.Payment()
	case TxnOrderStatus:
		return wk.OrderStatus()
	case TxnDelivery:
		return wk.Delivery()
	default:
		return wk.StockLevel()
	}
}

// RunOne executes one randomly drawn transaction and records its outcome.
// Intentional New-Order rollbacks count as aborts, not errors.
func (wk *Worker) RunOne() error {
	t := wk.pick()
	wk.cross = false
	err := wk.run(t)
	switch {
	case err == nil:
		wk.Stats.Committed[t].Add(1)
		if wk.cross {
			wk.Stats.Cross[t].Add(1)
		}
		return nil
	case errors.Is(err, errRollback):
		wk.Stats.Aborted[t].Add(1)
		return nil
	case core.IsTransient(err):
		// Retries exhausted under contention or version-space pressure: the
		// transaction aborted cleanly, the benchmark goes on.
		wk.Stats.Aborted[t].Add(1)
		return nil
	default:
		wk.Stats.Errors[t].Add(1)
		return err
	}
}

// Run executes up to iterations transactions, stopping early when stop is
// closed. It returns the first hard error, if any.
func (wk *Worker) Run(iterations int, stop <-chan struct{}) error {
	for i := 0; i < iterations; i++ {
		select {
		case <-stop:
			return nil
		default:
		}
		if err := wk.RunOne(); err != nil {
			return err
		}
	}
	return nil
}
