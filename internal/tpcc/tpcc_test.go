package tpcc

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"hybridgc/internal/core"
	"hybridgc/internal/gc"
	"hybridgc/internal/ts"
	"hybridgc/internal/txn"
)

func newLoaded(t *testing.T, cfg Config, dbCfg core.Config) *Driver {
	t.Helper()
	dbCfg.Txn.SynchronousPropagation = true
	db, err := core.Open(dbCfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(db.Close)
	d, err := New(db, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Load(); err != nil {
		t.Fatal(err)
	}
	return d
}

func smallCfg() Config {
	return Config{Warehouses: 2, Districts: 3, CustomersPerDistrict: 10, Items: 40, Seed: 42}
}

func TestCodecRoundTrips(t *testing.T) {
	w := Warehouse{ID: 3, Name: "WH", Tax: 123, YTD: 456}
	if got, err := DecodeWarehouse(w.Encode()); err != nil || got != w {
		t.Fatalf("warehouse roundtrip: %+v, %v", got, err)
	}
	c := Customer{W: 1, D: 2, ID: 3, First: "A", Middle: "OE", Last: "BARBAR",
		Credit: "BC", CreditLim: 1, Discount: 2, Balance: -3, YTDPayment: 4,
		PaymentCnt: 5, DeliveryCnt: 6, Data: "data"}
	if got, err := DecodeCustomer(c.Encode()); err != nil || got != c {
		t.Fatalf("customer roundtrip: %+v, %v", got, err)
	}
	o := Order{W: 1, D: 2, ID: 3, CID: 4, EntryD: 5, Carrier: 6, OLCnt: 7, AllLocal: true}
	if got, err := DecodeOrder(o.Encode()); err != nil || got != o {
		t.Fatalf("order roundtrip: %+v, %v", got, err)
	}
	s := Stock{W: 1, ItemID: 2, Qty: -3, Dist: "D", YTD: 4, OrderCnt: 5, RemoteCnt: 6, Data: "x"}
	if got, err := DecodeStock(s.Encode()); err != nil || got != s {
		t.Fatalf("stock roundtrip: %+v, %v", got, err)
	}
	ol := OrderLine{W: 1, D: 2, OID: 3, Number: 4, ItemID: 5, SupplyW: 6,
		DeliveryD: 7, Qty: 8, Amount: 9, DistInfo: "info"}
	if got, err := DecodeOrderLine(ol.Encode()); err != nil || got != ol {
		t.Fatalf("orderline roundtrip: %+v, %v", got, err)
	}
	no := NewOrderRow{W: 1, D: 2, OID: 3}
	if got, err := DecodeNewOrder(no.Encode()); err != nil || got != no {
		t.Fatalf("neworder roundtrip: %+v, %v", got, err)
	}
	h := History{CW: 1, CD: 2, CID: 3, W: 4, D: 5, Date: 6, Amount: 7, Data: "h"}
	if got, err := DecodeHistory(h.Encode()); err != nil || got != h {
		t.Fatalf("history roundtrip: %+v, %v", got, err)
	}
	i := Item{ID: 1, ImID: 2, Name: "N", Price: 3, Data: "d"}
	if got, err := DecodeItem(i.Encode()); err != nil || got != i {
		t.Fatalf("item roundtrip: %+v, %v", got, err)
	}
}

func TestCodecQuick(t *testing.T) {
	f := func(w, d, id, cid uint32, entry int64, carrier, cnt uint32, local bool) bool {
		o := Order{W: w, D: d, ID: id, CID: cid, EntryD: entry, Carrier: carrier,
			OLCnt: cnt, AllLocal: local}
		got, err := DecodeOrder(o.Encode())
		return err == nil && got == o
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	g := func(a, b uint32, qty int32, ytd int64, s1, s2 string) bool {
		if len(s1) > 1000 || len(s2) > 1000 {
			return true
		}
		st := Stock{W: a, ItemID: b, Qty: qty, Dist: s1, YTD: ytd, Data: s2}
		got, err := DecodeStock(st.Encode())
		return err == nil && reflect.DeepEqual(got, st)
	}
	if err := quick.Check(g, nil); err != nil {
		t.Error(err)
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := DecodeOrder([]byte{1, 2}); err == nil {
		t.Fatal("truncated row must fail")
	}
	o := Order{}
	b := append(o.Encode(), 0xff)
	if _, err := DecodeOrder(b); err == nil {
		t.Fatal("trailing bytes must fail")
	}
}

func TestNURand(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	c := newNURandC(r)
	for i := 0; i < 5000; i++ {
		if v := c.randCustomerID(r, 100); v < 1 || v > 100 {
			t.Fatalf("customer id %d out of range", v)
		}
		if v := c.randItemID(r, 50); v < 1 || v > 50 {
			t.Fatalf("item id %d out of range", v)
		}
		if v := c.randLastNameNum(r, 40); v > 39 {
			t.Fatalf("lastname num %d out of range", v)
		}
	}
	if lastName(0) != "BARBARBAR" || lastName(999) != "EINGEINGEING" {
		t.Fatalf("lastName broken: %s %s", lastName(0), lastName(999))
	}
	if lastName(371) != "PRICALLYOUGHT" {
		t.Fatalf("lastName(371) = %s", lastName(371))
	}
}

func TestLoadCardinalities(t *testing.T) {
	cfg := smallCfg()
	d := newLoaded(t, cfg, core.Config{})
	tx := d.DB.Begin(txn.TransSI)
	defer tx.Abort()

	counts := map[string]int{}
	for name, tid := range d.TableIDsByName() {
		n := 0
		if err := tx.Scan(tid, func(_ ts.RID, _ []byte) bool { n++; return true }); err != nil {
			t.Fatal(err)
		}
		counts[name] = n
	}
	custTotal := cfg.Warehouses * cfg.Districts * cfg.CustomersPerDistrict
	want := map[string]int{
		TableWarehouse: cfg.Warehouses,
		TableDistrict:  cfg.Warehouses * cfg.Districts,
		TableCustomer:  custTotal,
		TableHistory:   custTotal,
		TableItem:      cfg.Items,
		TableStock:     cfg.Warehouses * cfg.Items,
		TableOrders:    0,
		TableOrderLine: 0,
		TableNewOrder:  0,
	}
	if !reflect.DeepEqual(counts, want) {
		t.Fatalf("cardinalities = %v, want %v", counts, want)
	}

	// RID formulas resolve to the right rows.
	s, err := getDecoded(tx, d.t.stock, d.stockRID(2, 7), DecodeStock)
	if err != nil || s.W != 2 || s.ItemID != 7 {
		t.Fatalf("stock RID formula: %+v, %v", s, err)
	}
	c, err := getDecoded(tx, d.t.customer, d.customerRID(2, 3, 5), DecodeCustomer)
	if err != nil || c.W != 2 || c.D != 3 || c.ID != 5 {
		t.Fatalf("customer RID formula: %+v, %v", c, err)
	}
	dr, err := getDecoded(tx, d.t.district, d.districtRID(1, 2), DecodeDistrict)
	if err != nil || dr.W != 1 || dr.ID != 2 || dr.NextOID != 1 {
		t.Fatalf("district RID formula: %+v, %v", dr, err)
	}
}

func TestConsistencyAfterLoad(t *testing.T) {
	d := newLoaded(t, smallCfg(), core.Config{})
	if err := d.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestSingleWorkerMixConsistent(t *testing.T) {
	d := newLoaded(t, smallCfg(), core.Config{})
	wk := d.NewWorker(1)
	if err := wk.Run(400, nil); err != nil {
		t.Fatal(err)
	}
	if wk.Stats.TotalCommitted() == 0 {
		t.Fatal("nothing committed")
	}
	if wk.Stats.Committed[TxnNewOrder].Load() == 0 ||
		wk.Stats.Committed[TxnPayment].Load() == 0 ||
		wk.Stats.Committed[TxnDelivery].Load() == 0 {
		t.Fatalf("mix not exercised: %+v", statLine(&wk.Stats))
	}
	if err := d.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestNewOrderRollbackRate(t *testing.T) {
	d := newLoaded(t, smallCfg(), core.Config{})
	wk := d.NewWorker(1)
	for i := 0; i < 600; i++ {
		if err := wk.RunOne(); err != nil {
			t.Fatal(err)
		}
	}
	if wk.Stats.Aborted[TxnNewOrder].Load() == 0 {
		t.Fatal("the 1% New-Order rollback never fired in 600 transactions")
	}
	// Rollbacks must leave the database consistent.
	if err := d.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestAllWarehousesConcurrentWithGC(t *testing.T) {
	cfg := smallCfg()
	cfg.Warehouses = 4
	d := newLoaded(t, cfg, core.Config{
		GC:                 gc.Periods{GT: time.Millisecond, TG: 3 * time.Millisecond, SI: 5 * time.Millisecond},
		LongLivedThreshold: 2 * time.Millisecond,
		AutoGC:             true,
	})
	var wg sync.WaitGroup
	errCh := make(chan error, cfg.Warehouses)
	for w := 1; w <= cfg.Warehouses; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			if err := d.NewWorker(w).Run(250, nil); err != nil {
				errCh <- err
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	if err := d.Check(); err != nil {
		t.Fatal(err)
	}
	// GC must have reclaimed the bulk of the version stream.
	st := d.DB.Stats()
	if st.VersionsReclaimed == 0 {
		t.Fatal("GC reclaimed nothing during the run")
	}
}

func TestWorkloadWithLongCursorStaysConsistent(t *testing.T) {
	cfg := smallCfg()
	d := newLoaded(t, cfg, core.Config{
		GC:                 gc.Periods{GT: time.Millisecond, TG: 2 * time.Millisecond, SI: 4 * time.Millisecond},
		LongLivedThreshold: time.Millisecond,
		AutoGC:             true,
	})
	cur, err := d.DB.OpenCursor(d.StockTableID())
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Close()
	before, _, err := cur.Fetch(5)
	if err != nil {
		t.Fatal(err)
	}

	wk := d.NewWorker(1)
	if err := wk.Run(300, nil); err != nil {
		t.Fatal(err)
	}
	// The cursor's view is still the load-time stock.
	after, _, err := cur.Fetch(5)
	if err != nil {
		t.Fatal(err)
	}
	for _, img := range append(before, after...) {
		s, err := DecodeStock(img)
		if err != nil {
			t.Fatal(err)
		}
		if s.YTD != 0 || s.OrderCnt != 0 {
			t.Fatalf("cursor leaked post-load stock state: %+v", s)
		}
	}
	if err := d.Check(); err != nil {
		t.Fatal(err)
	}
}

func statLine(s *WorkerStats) map[string]int64 {
	out := map[string]int64{}
	for t := TxnType(0); t < numTxnTypes; t++ {
		out[t.String()] = s.Committed[t].Load()
	}
	return out
}

func TestAttachAfterRecovery(t *testing.T) {
	dir := t.TempDir()
	cfg := smallCfg()
	open := func() *core.DB {
		db, err := core.Open(core.Config{
			Txn:         txn.Config{SynchronousPropagation: true},
			Persistence: &core.Persistence{Dir: dir},
		})
		if err != nil {
			t.Fatal(err)
		}
		return db
	}
	db := open()
	d, err := New(db, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Load(); err != nil {
		t.Fatal(err)
	}
	if err := d.NewWorker(1).Run(200, nil); err != nil {
		t.Fatal(err)
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// More work after the checkpoint so recovery replays log records too.
	if err := d.NewWorker(2).Run(100, nil); err != nil {
		t.Fatal(err)
	}
	db.Close()

	db2 := open()
	defer db2.Close()
	d2, err := Attach(db2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The rebuilt state must satisfy every consistency condition...
	if err := d2.Check(); err != nil {
		t.Fatal(err)
	}
	// ...and support continued execution of the full mix.
	if err := d2.NewWorker(1).Run(150, nil); err != nil {
		t.Fatal(err)
	}
	if err := d2.Check(); err != nil {
		t.Fatal(err)
	}
}
