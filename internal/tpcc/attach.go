package tpcc

import (
	"fmt"
	"math/rand"
	"sort"

	"hybridgc/internal/core"
	"hybridgc/internal/ts"
)

// Attach binds a driver to a database that already contains the TPC-C
// tables — typically one recovered from the persistency — and rebuilds the
// driver's in-memory indexes (order RID maps, undelivered-order FIFOs,
// last-order and last-name lookups) by scanning. cfg must match the
// configuration the data was loaded with.
func Attach(db *core.DB, cfg Config) (*Driver, error) {
	d, err := AttachBackend(LocalBackend(db), cfg)
	if d != nil {
		d.DB = db
	}
	return d, err
}

// AttachBackend is Attach over any backend — including a sharded engine,
// whose in-memory placements are reinstalled (identically; placements are not
// recovered from the WAL) before the rebuild scans touch any table.
func AttachBackend(be Backend, cfg Config) (*Driver, error) {
	cfg.fill()
	d := &Driver{be: be, cfg: cfg}
	ids, err := be.TableIDs(TableWarehouse, TableDistrict, TableCustomer,
		TableHistory, TableNewOrder, TableOrders, TableOrderLine, TableItem, TableStock)
	if err != nil {
		return nil, fmt.Errorf("tpcc: attach: %w", err)
	}
	d.t = tables{
		warehouse: ids[0], district: ids[1], customer: ids[2], history: ids[3],
		newOrder: ids[4], orders: ids[5], orderLine: ids[6], item: ids[7], stock: ids[8],
	}
	if err := d.installPlacements(); err != nil {
		return nil, err
	}
	d.nu = newNURandC(rand.New(rand.NewSource(cfg.Seed)))
	d.dist = make([][]*districtState, cfg.Warehouses)
	for w := range d.dist {
		d.dist[w] = make([]*districtState, cfg.Districts)
		for i := range d.dist[w] {
			d.dist[w][i] = newDistrictState()
		}
	}
	if err := d.rebuildState(); err != nil {
		return nil, err
	}
	return d, nil
}

// rebuildState scans the dynamic tables under one consistent snapshot and
// reconstructs every driver-side index.
func (d *Driver) rebuildState() error {
	tx, err := d.be.Begin(true)
	if err != nil {
		return err
	}
	defer tx.Abort()

	// Customers: last-name groups.
	err = tx.Scan(d.t.customer, func(_ ts.RID, img []byte) bool {
		c, derr := DecodeCustomer(img)
		if derr != nil {
			return true
		}
		st := d.state(c.W, c.D)
		st.byLastName[c.Last] = append(st.byLastName[c.Last], c.ID)
		return true
	})
	if err != nil {
		return err
	}
	// Orders: RID map, last order per customer.
	err = tx.Scan(d.t.orders, func(rid ts.RID, img []byte) bool {
		o, derr := DecodeOrder(img)
		if derr != nil {
			return true
		}
		st := d.state(o.W, o.D)
		st.orderRID[o.ID] = rid
		if o.ID > st.lastOrderOf[o.CID] {
			st.lastOrderOf[o.CID] = o.ID
		}
		return true
	})
	if err != nil {
		return err
	}
	// Order lines, in RID (insertion) order, which is line-number order.
	err = tx.Scan(d.t.orderLine, func(rid ts.RID, img []byte) bool {
		l, derr := DecodeOrderLine(img)
		if derr != nil {
			return true
		}
		st := d.state(l.W, l.D)
		st.orderLines[l.OID] = append(st.orderLines[l.OID], rid)
		return true
	})
	if err != nil {
		return err
	}
	// Undelivered orders: the NEW-ORDER rows, queued oldest-first.
	err = tx.Scan(d.t.newOrder, func(rid ts.RID, img []byte) bool {
		n, derr := DecodeNewOrder(img)
		if derr != nil {
			return true
		}
		st := d.state(n.W, n.D)
		st.newOrderRID[n.OID] = rid
		st.pending = append(st.pending, n.OID)
		return true
	})
	if err != nil {
		return err
	}
	// FIFO order is by order id, not RID scan order.
	for w := range d.dist {
		for _, st := range d.dist[w] {
			sort.Slice(st.pending, func(i, j int) bool { return st.pending[i] < st.pending[j] })
		}
	}
	return nil
}
