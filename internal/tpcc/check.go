package tpcc

import (
	"fmt"

	"hybridgc/internal/ts"
)

// Check validates the TPC-C consistency conditions that survive this
// driver's modifications (home-warehouse-only workers), against a single
// transaction-level snapshot. Run it while workers are paused.
//
//   - C1: W_YTD = Σ D_YTD over the warehouse's districts.
//   - C2: D_NEXT_O_ID - 1 = max order id per district.
//   - C3: every undelivered order id appears in NEW-ORDER, delivered ones
//     do not, and O_CARRIER_ID reflects delivery.
//   - C4: O_OL_CNT equals the number of ORDER-LINE rows of the order.
//   - C5: C_BALANCE + C_YTD_PAYMENT = Σ OL_AMOUNT of the customer's
//     delivered orders (with the loader's initial values folded in).
func (d *Driver) Check() error {
	tx, err := d.checkBackend().Begin(true)
	if err != nil {
		return err
	}
	defer tx.Abort()

	for w := 1; w <= d.cfg.Warehouses; w++ {
		if err := d.checkWarehouse(tx, uint32(w)); err != nil {
			return err
		}
	}
	return nil
}

func (d *Driver) checkWarehouse(tx Txn, w uint32) error {
	wrow, err := getDecoded(tx, d.t.warehouse, d.warehouseRID(w), DecodeWarehouse)
	if err != nil {
		return fmt.Errorf("warehouse %d: %w", w, err)
	}
	var sumDistrictYTD int64
	// Customer delivered-amount accumulator for C5.
	delivered := make(map[uint32]int64) // customerRID-local key: d*1e6+c

	for dist := uint32(1); dist <= uint32(d.cfg.Districts); dist++ {
		drow, err := getDecoded(tx, d.t.district, d.districtRID(w, dist), DecodeDistrict)
		if err != nil {
			return fmt.Errorf("district %d/%d: %w", w, dist, err)
		}
		sumDistrictYTD += drow.YTD

		st := d.state(w, dist)
		st.mu.Lock()
		maxOID := uint32(0)
		orderRIDs := make(map[uint32]ts.RID, len(st.orderRID))
		for oid, rid := range st.orderRID {
			orderRIDs[oid] = rid
			if oid > maxOID {
				maxOID = oid
			}
		}
		olRIDs := make(map[uint32][]ts.RID, len(st.orderLines))
		for oid, rids := range st.orderLines {
			olRIDs[oid] = append([]ts.RID(nil), rids...)
		}
		pending := make(map[uint32]ts.RID, len(st.pending))
		for _, oid := range st.pending {
			pending[oid] = st.newOrderRID[oid]
		}
		st.mu.Unlock()

		// C2: NextOID-1 == max committed order id.
		if drow.NextOID != maxOID+1 {
			return fmt.Errorf("district %d/%d: NEXT_O_ID %d but max order id %d",
				w, dist, drow.NextOID, maxOID)
		}
		for oid, orid := range orderRIDs {
			order, err := getDecoded(tx, d.t.orders, orid, DecodeOrder)
			if err != nil {
				return fmt.Errorf("order %d/%d/%d: %w", w, dist, oid, err)
			}
			// C4: line count.
			lines := olRIDs[oid]
			if int(order.OLCnt) != len(lines) {
				return fmt.Errorf("order %d/%d/%d: OL_CNT %d but %d lines",
					w, dist, oid, order.OLCnt, len(lines))
			}
			noRID, isPending := pending[oid]
			// C3: NEW-ORDER row presence matches carrier assignment.
			if isPending {
				if order.Carrier != 0 {
					return fmt.Errorf("order %d/%d/%d: pending but carrier %d",
						w, dist, oid, order.Carrier)
				}
				if _, err := getDecoded(tx, d.t.newOrder, noRID, DecodeNewOrder); err != nil {
					return fmt.Errorf("order %d/%d/%d: NEW-ORDER row missing: %w",
						w, dist, oid, err)
				}
			} else if order.Carrier == 0 {
				return fmt.Errorf("order %d/%d/%d: delivered without carrier", w, dist, oid)
			}
			// C5 accumulation and delivery stamps.
			var total int64
			for _, rid := range lines {
				ol, err := getDecoded(tx, d.t.orderLine, rid, DecodeOrderLine)
				if err != nil {
					return fmt.Errorf("orderline %d/%d/%d: %w", w, dist, oid, err)
				}
				if isPending && ol.DeliveryD != 0 {
					return fmt.Errorf("orderline %d/%d/%d: delivery date on pending order", w, dist, oid)
				}
				if !isPending && ol.DeliveryD == 0 {
					return fmt.Errorf("orderline %d/%d/%d: delivered without date", w, dist, oid)
				}
				total += ol.Amount
			}
			if !isPending {
				delivered[dist*1_000_000+order.CID] += total
			}
		}

		// C5: customer balances.
		for c := uint32(1); c <= uint32(d.cfg.CustomersPerDistrict); c++ {
			crow, err := getDecoded(tx, d.t.customer, d.customerRID(w, dist, c), DecodeCustomer)
			if err != nil {
				return fmt.Errorf("customer %d/%d/%d: %w", w, dist, c, err)
			}
			if got, want := crow.Balance+crow.YTDPayment, delivered[dist*1_000_000+c]; got != want {
				return fmt.Errorf("customer %d/%d/%d: balance+ytd = %d, delivered sum = %d",
					w, dist, c, got, want)
			}
		}
	}
	// C1.
	if wrow.YTD != sumDistrictYTD {
		return fmt.Errorf("warehouse %d: W_YTD %d != Σ D_YTD %d", w, wrow.YTD, sumDistrictYTD)
	}
	return nil
}
