package tpcc

import (
	"errors"
	"fmt"
	"time"

	"hybridgc/internal/core"
	"hybridgc/internal/ts"
)

// errRollback is the intentional 1% New-Order rollback of TPC-C clause
// 2.4.1.4 (an unused item number), exercising the engine's undo path under
// load.
var errRollback = errors.New("tpcc: intentional rollback (invalid item)")

// Every profile runs under a standard retry policy: transient failures —
// write-write conflicts, writes rejected under version-space pressure — back
// off and re-run the whole profile. Profile closures must therefore reset any
// state they populate at the top of each attempt.
const (
	txnRetries = 5
	retryBase  = 500 * time.Microsecond
)

// getDecoded loads and decodes one row.
func getDecoded[T any](tx Txn, tid ts.TableID, rid ts.RID, decode func([]byte) (T, error)) (T, error) {
	var zero T
	img, err := tx.Get(tid, rid)
	if err != nil {
		return zero, err
	}
	return decode(img)
}

// newOrderResult carries the driver-state updates applied after commit.
type newOrderResult struct {
	dist       uint32
	oid        uint32
	cid        uint32
	orderRID   ts.RID
	noRID      ts.RID
	olRIDs     []ts.RID
	rolledBack bool
}

// NewOrder runs one New-Order transaction against the worker's home
// warehouse. It reads warehouse/district/customer, increments the
// district's next order id, inserts ORDERS, NEW-ORDER and one ORDER-LINE
// per item, and updates each item's STOCK row (the update stream Figure 13
// attributes the stable chain count to).
func (wk *Worker) NewOrder() error {
	d := wk.d
	r := wk.r
	dist := uint32(randRange(r, 1, d.cfg.Districts))
	cid := d.nu.randCustomerID(r, d.cfg.CustomersPerDistrict)
	olCnt := randRange(r, 5, 15)
	rollback := r.Intn(100) == 0

	// TPC-C clause 2.4.1.5: 1% of order lines draw stock from a remote supply
	// warehouse (when enabled), making ~10% of New-Orders remote overall.
	// Remote supply decided before Begin so the routing path is fixed per
	// profile: home-only orders pin to the home shard's fast path.
	supply := make([]uint32, olCnt)
	remote := false
	for i := range supply {
		supply[i] = wk.w
		if d.cfg.CrossWarehouse && d.cfg.Warehouses > 1 && r.Intn(100) == 0 {
			supply[i] = wk.remoteWarehouse()
			remote = true
			if d.crossesShard(wk.w, supply[i]) {
				wk.cross = true
			}
		}
	}
	homeHint := d.shardOfW(wk.w)

	var res newOrderResult
	err := d.execRetryOn(wk.w, remote, func(tx Txn) error {
		// Reset per attempt: a retried attempt must not keep RIDs (olRIDs
		// especially) accumulated by the conflicted one.
		res = newOrderResult{dist: dist, cid: cid}
		if _, err := getDecoded(tx, d.t.warehouse, d.warehouseRID(wk.w), DecodeWarehouse); err != nil {
			return err
		}
		drow, err := getDecoded(tx, d.t.district, d.districtRID(wk.w, dist), DecodeDistrict)
		if err != nil {
			return err
		}
		res.oid = drow.NextOID
		drow.NextOID++
		if err := tx.Update(d.t.district, d.districtRID(wk.w, dist), drow.Encode()); err != nil {
			return err
		}
		if _, err := getDecoded(tx, d.t.customer, d.customerRID(wk.w, dist, cid), DecodeCustomer); err != nil {
			return err
		}
		order := Order{W: wk.w, D: dist, ID: res.oid, CID: cid,
			EntryD: time.Now().UnixNano(), OLCnt: uint32(olCnt), AllLocal: !remote}
		res.orderRID, err = insertAt(tx, d.t.orders, order.Encode(), homeHint)
		if err != nil {
			return err
		}
		no := NewOrderRow{W: wk.w, D: dist, OID: res.oid}
		res.noRID, err = insertAt(tx, d.t.newOrder, no.Encode(), homeHint)
		if err != nil {
			return err
		}
		for line := 1; line <= olCnt; line++ {
			if rollback && line == olCnt {
				return errRollback // unused item number → whole txn rolls back
			}
			itemID := d.nu.randItemID(r, d.cfg.Items)
			item, err := getDecoded(tx, d.t.item, d.itemRID(itemID), DecodeItem)
			if err != nil {
				return err
			}
			srid := d.stockRID(supply[line-1], itemID)
			stock, err := getDecoded(tx, d.t.stock, srid, DecodeStock)
			if err != nil {
				return err
			}
			qty := int32(randRange(r, 1, 10))
			if stock.Qty >= qty+10 {
				stock.Qty -= qty
			} else {
				stock.Qty = stock.Qty - qty + 91
			}
			stock.YTD += int64(qty)
			stock.OrderCnt++
			if err := tx.Update(d.t.stock, srid, stock.Encode()); err != nil {
				return err
			}
			ol := OrderLine{W: wk.w, D: dist, OID: res.oid, Number: uint32(line),
				ItemID: itemID, SupplyW: supply[line-1], Qty: uint32(qty),
				Amount: int64(qty) * item.Price, DistInfo: stock.Dist[:24]}
			olRID, err := insertAt(tx, d.t.orderLine, ol.Encode(), homeHint)
			if err != nil {
				return err
			}
			res.olRIDs = append(res.olRIDs, olRID)
		}
		return nil
	})
	if errors.Is(err, errRollback) {
		res.rolledBack = true
		return errRollback
	}
	if err != nil {
		return err
	}
	// Commit succeeded: publish the new order to the driver indexes.
	st := d.state(wk.w, dist)
	st.mu.Lock()
	st.orderRID[res.oid] = res.orderRID
	st.orderLines[res.oid] = res.olRIDs
	st.newOrderRID[res.oid] = res.noRID
	st.pending = append(st.pending, res.oid)
	st.lastOrderOf[cid] = res.oid
	st.mu.Unlock()
	return nil
}

// lookupCustomer resolves a home-warehouse customer by id (60%) or by last
// name (40%, TPC-C clause 2.5.1.2 — the middle customer of the name group).
func (wk *Worker) lookupCustomer(dist uint32) uint32 {
	return wk.lookupCustomerAt(wk.w, dist)
}

// lookupCustomerAt is lookupCustomer against an arbitrary warehouse —
// Payment's remote-customer clause selects from another warehouse's district.
func (wk *Worker) lookupCustomerAt(w, dist uint32) uint32 {
	d := wk.d
	if wk.r.Intn(100) < 60 {
		return d.nu.randCustomerID(wk.r, d.cfg.CustomersPerDistrict)
	}
	st := d.state(w, dist)
	name := lastName(d.nu.randLastNameNum(wk.r, d.cfg.CustomersPerDistrict))
	st.mu.Lock()
	group := st.byLastName[name]
	st.mu.Unlock()
	if len(group) == 0 {
		return d.nu.randCustomerID(wk.r, d.cfg.CustomersPerDistrict)
	}
	return group[len(group)/2]
}

// Payment runs one Payment transaction: warehouse and district YTD updates,
// customer balance update, HISTORY insert. With CrossWarehouse enabled, 15%
// of payments are made on behalf of a customer of another warehouse (TPC-C
// clause 2.5.1.2) — on a sharded backend that customer's row usually lives on
// another shard and the commit goes through two-phase commit.
func (wk *Worker) Payment() error {
	d := wk.d
	dist := uint32(randRange(wk.r, 1, d.cfg.Districts))
	cw, cd := wk.w, dist
	remote := false
	if d.cfg.CrossWarehouse && d.cfg.Warehouses > 1 && wk.r.Intn(100) < 15 {
		cw = wk.remoteWarehouse()
		cd = uint32(randRange(wk.r, 1, d.cfg.Districts))
		remote = true
		wk.cross = d.crossesShard(wk.w, cw)
	}
	cid := wk.lookupCustomerAt(cw, cd)
	amount := int64(randRange(wk.r, 100, 500000))
	homeHint := d.shardOfW(wk.w)

	return d.execRetryOn(wk.w, remote, func(tx Txn) error {
		wrow, err := getDecoded(tx, d.t.warehouse, d.warehouseRID(wk.w), DecodeWarehouse)
		if err != nil {
			return err
		}
		wrow.YTD += amount
		if err := tx.Update(d.t.warehouse, d.warehouseRID(wk.w), wrow.Encode()); err != nil {
			return err
		}
		drow, err := getDecoded(tx, d.t.district, d.districtRID(wk.w, dist), DecodeDistrict)
		if err != nil {
			return err
		}
		drow.YTD += amount
		if err := tx.Update(d.t.district, d.districtRID(wk.w, dist), drow.Encode()); err != nil {
			return err
		}
		crid := d.customerRID(cw, cd, cid)
		crow, err := getDecoded(tx, d.t.customer, crid, DecodeCustomer)
		if err != nil {
			return err
		}
		crow.Balance -= amount
		crow.YTDPayment += amount
		crow.PaymentCnt++
		if crow.Credit == "BC" {
			data := fmt.Sprintf("%d,%d,%d,%d,%d|%s", cid, cd, cw, dist, amount, crow.Data)
			if len(data) > 250 {
				data = data[:250]
			}
			crow.Data = data
		}
		if err := tx.Update(d.t.customer, crid, crow.Encode()); err != nil {
			return err
		}
		h := History{CW: cw, CD: cd, CID: cid, W: wk.w, D: dist,
			Date: time.Now().UnixNano(), Amount: amount, Data: "payment"}
		_, err = insertAt(tx, d.t.history, h.Encode(), homeHint)
		return err
	})
}

// OrderStatus runs one Order-Status transaction: read customer, their most
// recent order and its order lines.
func (wk *Worker) OrderStatus() error {
	d := wk.d
	dist := uint32(randRange(wk.r, 1, d.cfg.Districts))
	cid := wk.lookupCustomer(dist)
	st := d.state(wk.w, dist)
	st.mu.Lock()
	oid, has := st.lastOrderOf[cid]
	var orid ts.RID
	var olRIDs []ts.RID
	if has {
		orid = st.orderRID[oid]
		olRIDs = append([]ts.RID(nil), st.orderLines[oid]...)
	}
	st.mu.Unlock()

	return d.execRetryOn(wk.w, false, func(tx Txn) error {
		if _, err := getDecoded(tx, d.t.customer, d.customerRID(wk.w, dist, cid), DecodeCustomer); err != nil {
			return err
		}
		if !has {
			return nil
		}
		if _, err := getDecoded(tx, d.t.orders, orid, DecodeOrder); err != nil {
			return err
		}
		for _, rid := range olRIDs {
			if _, err := getDecoded(tx, d.t.orderLine, rid, DecodeOrderLine); err != nil {
				return err
			}
		}
		return nil
	})
}

// Delivery runs one Delivery transaction: per district, the oldest
// undelivered order is removed from NEW-ORDER (the benchmark's only DELETE
// stream), the order and its lines are stamped, and the customer is
// credited.
func (wk *Worker) Delivery() error {
	d := wk.d
	carrier := uint32(randRange(wk.r, 1, 10))
	now := time.Now().UnixNano()

	type delivered struct {
		dist uint32
		oid  uint32
	}
	var done []delivered
	err := d.execRetryOn(wk.w, false, func(tx Txn) error {
		done = done[:0]
		for dist := uint32(1); dist <= uint32(d.cfg.Districts); dist++ {
			st := d.state(wk.w, dist)
			st.mu.Lock()
			if len(st.pending) == 0 {
				st.mu.Unlock()
				continue
			}
			oid := st.pending[0]
			noRID := st.newOrderRID[oid]
			orid := st.orderRID[oid]
			olRIDs := append([]ts.RID(nil), st.orderLines[oid]...)
			st.mu.Unlock()

			if err := tx.Delete(d.t.newOrder, noRID); err != nil {
				return err
			}
			order, err := getDecoded(tx, d.t.orders, orid, DecodeOrder)
			if err != nil {
				return err
			}
			order.Carrier = carrier
			if err := tx.Update(d.t.orders, orid, order.Encode()); err != nil {
				return err
			}
			var total int64
			for _, rid := range olRIDs {
				ol, err := getDecoded(tx, d.t.orderLine, rid, DecodeOrderLine)
				if err != nil {
					return err
				}
				ol.DeliveryD = now
				total += ol.Amount
				if err := tx.Update(d.t.orderLine, rid, ol.Encode()); err != nil {
					return err
				}
			}
			crid := d.customerRID(wk.w, dist, order.CID)
			crow, err := getDecoded(tx, d.t.customer, crid, DecodeCustomer)
			if err != nil {
				return err
			}
			crow.Balance += total
			crow.DeliveryCnt++
			if err := tx.Update(d.t.customer, crid, crow.Encode()); err != nil {
				return err
			}
			done = append(done, delivered{dist: dist, oid: oid})
		}
		return nil
	})
	if err != nil {
		return err
	}
	// Commit succeeded: pop the delivered orders from the FIFOs.
	for _, dd := range done {
		st := d.state(wk.w, dd.dist)
		st.mu.Lock()
		if len(st.pending) > 0 && st.pending[0] == dd.oid {
			st.pending = st.pending[1:]
			delete(st.newOrderRID, dd.oid)
		}
		st.mu.Unlock()
	}
	return nil
}

// StockLevel runs one Stock-Level transaction: examine the order lines of
// the district's last 20 orders and count distinct items whose stock is
// below the threshold.
func (wk *Worker) StockLevel() error {
	d := wk.d
	dist := uint32(randRange(wk.r, 1, d.cfg.Districts))
	threshold := int32(randRange(wk.r, 10, 20))

	return d.execRetryOn(wk.w, false, func(tx Txn) error {
		drow, err := getDecoded(tx, d.t.district, d.districtRID(wk.w, dist), DecodeDistrict)
		if err != nil {
			return err
		}
		lo := uint32(1)
		if drow.NextOID > 20 {
			lo = drow.NextOID - 20
		}
		st := d.state(wk.w, dist)
		var olRIDs []ts.RID
		st.mu.Lock()
		for oid := lo; oid < drow.NextOID; oid++ {
			olRIDs = append(olRIDs, st.orderLines[oid]...)
		}
		st.mu.Unlock()

		low := make(map[uint32]bool)
		for _, rid := range olRIDs {
			ol, err := getDecoded(tx, d.t.orderLine, rid, DecodeOrderLine)
			if err != nil {
				if errors.Is(err, core.ErrRecordNotFound) {
					continue // line from an order newer than our snapshot
				}
				return err
			}
			stock, err := getDecoded(tx, d.t.stock, d.stockRID(wk.w, ol.ItemID), DecodeStock)
			if err != nil {
				return err
			}
			if stock.Qty < threshold {
				low[ol.ItemID] = true
			}
		}
		return nil
	})
}
