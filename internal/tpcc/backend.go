package tpcc

import (
	"hybridgc/internal/client"
	"hybridgc/internal/core"
	"hybridgc/internal/engine"
	"hybridgc/internal/ts"
	"hybridgc/internal/txn"
)

// Txn is the transaction surface one TPC-C profile needs. *core.Tx satisfies
// it directly; client.Tx satisfies it over the wire, so the same driver code
// measures local and remote throughput.
type Txn interface {
	Get(tid ts.TableID, rid ts.RID) ([]byte, error)
	Insert(tid ts.TableID, img []byte) (ts.RID, error)
	Update(tid ts.TableID, rid ts.RID, img []byte) error
	Delete(tid ts.TableID, rid ts.RID) error
	Scan(tid ts.TableID, fn func(rid ts.RID, img []byte) bool) error
	Commit() error
	Abort()
}

// Backend abstracts where the driver's storage lives: the in-process engine
// or a hybridgcd server reached through internal/client.
type Backend interface {
	CreateTable(name string) (ts.TableID, error)
	TableIDs(names ...string) ([]ts.TableID, error)
	// Begin starts a transaction — Trans-SI when snapshot is set, Stmt-SI
	// otherwise.
	Begin(snapshot bool) (Txn, error)
}

// ShardedBackend is the optional surface a backend exposes when it fronts a
// sharded engine: the driver uses it to install by-warehouse placements, pin
// home-only profiles to their warehouse's shard (the single-shard fast path)
// and report the cross-shard share.
type ShardedBackend interface {
	Backend
	// Shards reports the shard count (1 means unsharded).
	Shards() int
	// BeginShard starts a transaction pinned to one shard.
	BeginShard(shard int, snapshot bool) (Txn, error)
	// SetPlacement installs a table's shard placement.
	SetPlacement(tid ts.TableID, p engine.Placement) error
}

// localBackend serves the driver from an in-process engine.
type localBackend struct{ eng engine.Engine }

// LocalBackend wraps a single-node engine as a driver backend.
func LocalBackend(db *core.DB) Backend { return EngineBackend(engine.NewSingle(db)) }

// EngineBackend wraps any engine — single-node or the sharded router — as a
// driver backend. It always satisfies ShardedBackend; the driver only changes
// behavior when Shards() > 1.
func EngineBackend(eng engine.Engine) Backend { return localBackend{eng: eng} }

func (b localBackend) CreateTable(name string) (ts.TableID, error) { return b.eng.CreateTable(name) }
func (b localBackend) TableIDs(names ...string) ([]ts.TableID, error) {
	return b.eng.TableIDs(names...)
}
func (b localBackend) Begin(snapshot bool) (Txn, error) {
	return b.eng.Begin(isolation(snapshot)), nil
}
func (b localBackend) Shards() int { return b.eng.Shards() }
func (b localBackend) BeginShard(shard int, snapshot bool) (Txn, error) {
	return b.eng.BeginShard(shard, isolation(snapshot))
}
func (b localBackend) SetPlacement(tid ts.TableID, p engine.Placement) error {
	return b.eng.SetPlacement(tid, p)
}

func isolation(snapshot bool) txn.Isolation {
	if snapshot {
		return txn.TransSI
	}
	return txn.StmtSI
}

// remoteBackend serves the driver over the wire protocol.
type remoteBackend struct{ c *client.Client }

// RemoteBackend wraps a wire client as a driver backend: the existing TPC-C
// profiles run against a hybridgcd server, with transient wire errors
// (conflicts, version pressure) retried by the same core.Retry policy the
// local path uses.
func RemoteBackend(c *client.Client) Backend { return remoteBackend{c: c} }

func (b remoteBackend) CreateTable(name string) (ts.TableID, error) { return b.c.CreateTable(name) }
func (b remoteBackend) TableIDs(names ...string) ([]ts.TableID, error) {
	return b.c.TableIDs(names...)
}
func (b remoteBackend) Begin(snapshot bool) (Txn, error) { return b.c.Begin(snapshot) }
func (b remoteBackend) Shards() int                      { return b.c.ShardCount() }
func (b remoteBackend) BeginShard(shard int, snapshot bool) (Txn, error) {
	return b.c.BeginShard(shard, snapshot)
}
func (b remoteBackend) SetPlacement(tid ts.TableID, p engine.Placement) error {
	return b.c.SetPlacement(tid, p)
}

// insertAt routes an insert through the transaction's shard hint when the
// backend supports one (engine.Tx and client.Tx do), falling back to a plain
// Insert. The hint is advisory placement affinity, never correctness.
func insertAt(tx Txn, tid ts.TableID, img []byte, hint int) (ts.RID, error) {
	if h, ok := tx.(interface {
		InsertAt(tid ts.TableID, img []byte, hint int) (ts.RID, error)
	}); ok {
		return h.InsertAt(tid, img, hint)
	}
	return tx.Insert(tid, img)
}

// SetCheckBackend routes the consistency check (Check) through a different
// backend than the workload — typically a read-only replica endpoint, so the
// check leg validates replicated state while writes keep going to the
// primary. Table IDs are identical on both ends: replication ships DDL with
// primary-assigned IDs. Nil restores the workload backend.
func (d *Driver) SetCheckBackend(be Backend) { d.checkBE = be }

// checkBackend is the backend Check reads from.
func (d *Driver) checkBackend() Backend {
	if d.checkBE != nil {
		return d.checkBE
	}
	return d.be
}

// exec runs fn inside one transaction on the backend, committing on success
// and aborting on error or panic — the backend-agnostic form of
// core.DB.Exec.
func (d *Driver) exec(fn func(tx Txn) error) error {
	tx, err := d.be.Begin(false)
	if err != nil {
		return err
	}
	done := false
	defer func() {
		if !done {
			tx.Abort()
		}
	}()
	if err := fn(tx); err != nil {
		tx.Abort()
		done = true
		return err
	}
	err = tx.Commit()
	done = true
	return err
}

// execRetry runs one transaction profile with backoff on transient failures
// (write conflicts and version pressure, local or wire-carried).
func (d *Driver) execRetry(fn func(tx Txn) error) error {
	return core.Retry(txnRetries, retryBase, func() error {
		return d.exec(fn)
	})
}

// execOn runs fn in one transaction pinned to warehouse w's home shard — the
// single-shard fast path — when the backend is sharded and the profile is
// known to stay home. Cross-warehouse profiles (and unsharded backends) go
// through the routed exec path instead.
func (d *Driver) execOn(w uint32, cross bool, fn func(tx Txn) error) error {
	sb, ok := d.be.(ShardedBackend)
	if !ok || d.shards <= 1 || cross {
		return d.exec(fn)
	}
	tx, err := sb.BeginShard(d.shardOfW(w), false)
	if err != nil {
		return err
	}
	done := false
	defer func() {
		if !done {
			tx.Abort()
		}
	}()
	if err := fn(tx); err != nil {
		tx.Abort()
		done = true
		return err
	}
	err = tx.Commit()
	done = true
	return err
}

// execRetryOn is execOn with the transient-failure retry policy.
func (d *Driver) execRetryOn(w uint32, cross bool, fn func(tx Txn) error) error {
	return core.Retry(txnRetries, retryBase, func() error {
		return d.execOn(w, cross, fn)
	})
}
