package tpcc

import (
	"hybridgc/internal/client"
	"hybridgc/internal/core"
	"hybridgc/internal/ts"
	"hybridgc/internal/txn"
)

// Txn is the transaction surface one TPC-C profile needs. *core.Tx satisfies
// it directly; client.Tx satisfies it over the wire, so the same driver code
// measures local and remote throughput.
type Txn interface {
	Get(tid ts.TableID, rid ts.RID) ([]byte, error)
	Insert(tid ts.TableID, img []byte) (ts.RID, error)
	Update(tid ts.TableID, rid ts.RID, img []byte) error
	Delete(tid ts.TableID, rid ts.RID) error
	Scan(tid ts.TableID, fn func(rid ts.RID, img []byte) bool) error
	Commit() error
	Abort()
}

// Backend abstracts where the driver's storage lives: the in-process engine
// or a hybridgcd server reached through internal/client.
type Backend interface {
	CreateTable(name string) (ts.TableID, error)
	TableIDs(names ...string) ([]ts.TableID, error)
	// Begin starts a transaction — Trans-SI when snapshot is set, Stmt-SI
	// otherwise.
	Begin(snapshot bool) (Txn, error)
}

// localBackend serves the driver from an in-process engine.
type localBackend struct{ db *core.DB }

// LocalBackend wraps an engine as a driver backend.
func LocalBackend(db *core.DB) Backend { return localBackend{db: db} }

func (b localBackend) CreateTable(name string) (ts.TableID, error) { return b.db.CreateTable(name) }
func (b localBackend) TableIDs(names ...string) ([]ts.TableID, error) {
	return b.db.TableIDs(names...)
}
func (b localBackend) Begin(snapshot bool) (Txn, error) {
	iso := txn.StmtSI
	if snapshot {
		iso = txn.TransSI
	}
	return b.db.Begin(iso), nil
}

// remoteBackend serves the driver over the wire protocol.
type remoteBackend struct{ c *client.Client }

// RemoteBackend wraps a wire client as a driver backend: the existing TPC-C
// profiles run against a hybridgcd server, with transient wire errors
// (conflicts, version pressure) retried by the same core.Retry policy the
// local path uses.
func RemoteBackend(c *client.Client) Backend { return remoteBackend{c: c} }

func (b remoteBackend) CreateTable(name string) (ts.TableID, error) { return b.c.CreateTable(name) }
func (b remoteBackend) TableIDs(names ...string) ([]ts.TableID, error) {
	return b.c.TableIDs(names...)
}
func (b remoteBackend) Begin(snapshot bool) (Txn, error) { return b.c.Begin(snapshot) }

// SetCheckBackend routes the consistency check (Check) through a different
// backend than the workload — typically a read-only replica endpoint, so the
// check leg validates replicated state while writes keep going to the
// primary. Table IDs are identical on both ends: replication ships DDL with
// primary-assigned IDs. Nil restores the workload backend.
func (d *Driver) SetCheckBackend(be Backend) { d.checkBE = be }

// checkBackend is the backend Check reads from.
func (d *Driver) checkBackend() Backend {
	if d.checkBE != nil {
		return d.checkBE
	}
	return d.be
}

// exec runs fn inside one transaction on the backend, committing on success
// and aborting on error or panic — the backend-agnostic form of
// core.DB.Exec.
func (d *Driver) exec(fn func(tx Txn) error) error {
	tx, err := d.be.Begin(false)
	if err != nil {
		return err
	}
	done := false
	defer func() {
		if !done {
			tx.Abort()
		}
	}()
	if err := fn(tx); err != nil {
		tx.Abort()
		done = true
		return err
	}
	err = tx.Commit()
	done = true
	return err
}

// execRetry runs one transaction profile with backoff on transient failures
// (write conflicts and version pressure, local or wire-carried).
func (d *Driver) execRetry(fn func(tx Txn) error) error {
	return core.Retry(txnRetries, retryBase, func() error {
		return d.exec(fn)
	})
}
