package tpcc

import "math/rand"

// TPC-C clause 2.1.6 non-uniform random distribution and clause 4.3.2.3
// last-name generation.

// nuRandC holds the per-run constants of the NURand function.
type nuRandC struct {
	cLast, cCID, cOLID uint32
}

func newNURandC(r *rand.Rand) nuRandC {
	return nuRandC{
		cLast: uint32(r.Intn(256)),
		cCID:  uint32(r.Intn(1024)),
		cOLID: uint32(r.Intn(8192)),
	}
}

// nuRand is NURand(A, x, y) = (((rand(0,A) | rand(x,y)) + C) % (y-x+1)) + x.
func nuRand(r *rand.Rand, a, c, x, y uint32) uint32 {
	return ((uint32(r.Intn(int(a+1)))|(x+uint32(r.Intn(int(y-x+1)))))+c)%(y-x+1) + x
}

var lastNameSyllables = [10]string{
	"BAR", "OUGHT", "ABLE", "PRI", "PRES", "ESE", "ANTI", "CALLY", "ATION", "EING",
}

// lastName builds the TPC-C customer last name from a number in [0, 999].
func lastName(n uint32) string {
	return lastNameSyllables[n/100%10] + lastNameSyllables[n/10%10] + lastNameSyllables[n%10]
}

// randLastNameNum draws the non-uniform last-name number used by Payment and
// Order-Status lookups, scaled to the configured customer count.
func (c nuRandC) randLastNameNum(r *rand.Rand, customers int) uint32 {
	max := uint32(customers - 1)
	if max > 999 {
		max = 999
	}
	return nuRand(r, 255, c.cLast, 0, max)
}

// randCustomerID draws the non-uniform customer id in [1, customers].
func (c nuRandC) randCustomerID(r *rand.Rand, customers int) uint32 {
	return nuRand(r, 1023, c.cCID, 1, uint32(customers))
}

// randItemID draws the non-uniform item id in [1, items].
func (c nuRandC) randItemID(r *rand.Rand, items int) uint32 {
	return nuRand(r, 8191, c.cOLID, 1, uint32(items))
}

// randRange returns a uniform integer in [lo, hi].
func randRange(r *rand.Rand, lo, hi int) int {
	return lo + r.Intn(hi-lo+1)
}

// alphaString returns a random string of letters with length in [lo, hi].
func alphaString(r *rand.Rand, lo, hi int) string {
	const letters = "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz"
	n := randRange(r, lo, hi)
	b := make([]byte, n)
	for i := range b {
		b[i] = letters[r.Intn(len(letters))]
	}
	return string(b)
}
