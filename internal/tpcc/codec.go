// Package tpcc implements the modified TPC-C benchmark of §5.1: the nine
// TPC-C tables, the five transaction profiles, and the paper's
// modifications — transaction logic embedded directly against the engine
// API (the paper embedded it in SQLScript to avoid network effects), one
// dedicated worker per warehouse bound to its home warehouse, and
// configurable scale so laptop runs keep the paper's behaviour at smaller
// absolute size.
package tpcc

import (
	"encoding/binary"
	"fmt"
)

// enc is a tiny append-only binary row encoder: fixed-width little-endian
// integers and length-prefixed strings. Rows are stored in the engine as
// opaque payloads, so the codec is the "row format" of this store.
type enc struct {
	b []byte
}

func newEnc(capacity int) *enc { return &enc{b: make([]byte, 0, capacity)} }

func (e *enc) u8(v uint8)   { e.b = append(e.b, v) }
func (e *enc) u32(v uint32) { e.b = binary.LittleEndian.AppendUint32(e.b, v) }
func (e *enc) u64(v uint64) { e.b = binary.LittleEndian.AppendUint64(e.b, v) }
func (e *enc) i64(v int64)  { e.u64(uint64(v)) }
func (e *enc) i32(v int32)  { e.u32(uint32(v)) }
func (e *enc) bool(v bool) {
	if v {
		e.u8(1)
	} else {
		e.u8(0)
	}
}

func (e *enc) str(s string) {
	if len(s) > 0xffff {
		panic("tpcc: string too long for row codec")
	}
	e.b = binary.LittleEndian.AppendUint16(e.b, uint16(len(s)))
	e.b = append(e.b, s...)
}

func (e *enc) bytes() []byte { return e.b }

// dec is the matching reader. Decode errors indicate corrupted rows and are
// surfaced as errors by row Decode functions.
type dec struct {
	b   []byte
	off int
	err error
}

func newDec(b []byte) *dec { return &dec{b: b} }

func (d *dec) fail() {
	if d.err == nil {
		d.err = fmt.Errorf("tpcc: truncated row at offset %d (len %d)", d.off, len(d.b))
	}
}

func (d *dec) u8() uint8 {
	if d.err != nil || d.off+1 > len(d.b) {
		d.fail()
		return 0
	}
	v := d.b[d.off]
	d.off++
	return v
}

func (d *dec) u32() uint32 {
	if d.err != nil || d.off+4 > len(d.b) {
		d.fail()
		return 0
	}
	v := binary.LittleEndian.Uint32(d.b[d.off:])
	d.off += 4
	return v
}

func (d *dec) u64() uint64 {
	if d.err != nil || d.off+8 > len(d.b) {
		d.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(d.b[d.off:])
	d.off += 8
	return v
}

func (d *dec) i64() int64 { return int64(d.u64()) }
func (d *dec) i32() int32 { return int32(d.u32()) }
func (d *dec) bool() bool { return d.u8() != 0 }

func (d *dec) str() string {
	if d.err != nil || d.off+2 > len(d.b) {
		d.fail()
		return ""
	}
	n := int(binary.LittleEndian.Uint16(d.b[d.off:]))
	d.off += 2
	if d.off+n > len(d.b) {
		d.fail()
		return ""
	}
	s := string(d.b[d.off : d.off+n])
	d.off += n
	return s
}

func (d *dec) finish() error {
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.b) {
		return fmt.Errorf("tpcc: %d trailing bytes in row", len(d.b)-d.off)
	}
	return nil
}
