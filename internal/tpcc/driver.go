package tpcc

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"hybridgc/internal/core"
	"hybridgc/internal/engine"
	"hybridgc/internal/ts"
)

// Table names as created in the catalog.
const (
	TableWarehouse = "WAREHOUSE"
	TableDistrict  = "DISTRICT"
	TableCustomer  = "CUSTOMER"
	TableHistory   = "HISTORY"
	TableNewOrder  = "NEWORDER"
	TableOrders    = "ORDERS"
	TableOrderLine = "ORDERLINE"
	TableItem      = "ITEM"
	TableStock     = "STOCK"
)

// Config scales the benchmark. The paper runs 100 warehouses with full TPC-C
// cardinalities on a 60-core 1 TB machine; the defaults here keep the same
// structure at laptop scale (behaviour depends on ratios, not absolute
// size).
type Config struct {
	Warehouses           int
	Districts            int // per warehouse; TPC-C fixes 10
	CustomersPerDistrict int // TPC-C: 3000
	Items                int // TPC-C: 100000
	Seed                 int64
	// CrossWarehouse enables the spec's remote clauses: 15% of Payments pay a
	// customer of another warehouse and 1% of NewOrder lines draw stock from a
	// remote supply warehouse (~10% of NewOrders end up remote). On a sharded
	// backend those transactions cross shards and commit through two-phase
	// commit; home-only transactions keep the pinned single-shard fast path.
	CrossWarehouse bool
}

func (c *Config) fill() {
	if c.Warehouses <= 0 {
		c.Warehouses = 4
	}
	if c.Districts <= 0 {
		c.Districts = 10
	}
	if c.CustomersPerDistrict <= 0 {
		c.CustomersPerDistrict = 60
	}
	if c.Items <= 0 {
		c.Items = 200
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// tables holds the catalog IDs of the nine TPC-C tables.
type tables struct {
	warehouse ts.TableID
	district  ts.TableID
	customer  ts.TableID
	history   ts.TableID
	newOrder  ts.TableID
	orders    ts.TableID
	orderLine ts.TableID
	item      ts.TableID
	stock     ts.TableID
}

// districtState is the driver-side bookkeeping for one district: RID indexes
// for dynamically inserted rows and the undelivered-order FIFO. The paper
// embeds equivalent logic in SQLScript; keeping it in the driver avoids
// building a SQL layer without changing what the storage engine sees.
type districtState struct {
	mu sync.Mutex
	// orderRID maps order id -> ORDERS RID.
	orderRID map[uint32]ts.RID
	// orderLines maps order id -> ORDER-LINE RIDs.
	orderLines map[uint32][]ts.RID
	// newOrderRID maps order id -> NEW-ORDER RID for undelivered orders.
	newOrderRID map[uint32]ts.RID
	// pending is the FIFO of undelivered order ids.
	pending []uint32
	// lastOrderOf maps customer id -> most recent order id.
	lastOrderOf map[uint32]uint32
	// byLastName maps customer last name -> customer ids (sorted by id).
	byLastName map[string][]uint32
}

func newDistrictState() *districtState {
	return &districtState{
		orderRID:    make(map[uint32]ts.RID),
		orderLines:  make(map[uint32][]ts.RID),
		newOrderRID: make(map[uint32]ts.RID),
		lastOrderOf: make(map[uint32]uint32),
		byLastName:  make(map[string][]uint32),
	}
}

// Driver owns a loaded TPC-C database and spawns per-warehouse workers.
type Driver struct {
	// DB is the in-process engine when the driver runs locally, nil when the
	// backend is remote.
	DB  *core.DB
	be  Backend
	// checkBE, when set, is where Check reads — a read-only replica
	// endpoint, for validating replicated state (see SetCheckBackend).
	checkBE Backend
	cfg     Config
	t       tables
	nu      nuRandC
	// shards is the backend's shard count (1 when unsharded); >1 switches the
	// profiles to shard-pinned fast paths with by-warehouse placements.
	shards int

	// dist[w-1][d-1] is the state of district d of warehouse w.
	dist [][]*districtState
}

// New creates a driver over an in-process engine and registers the nine
// tables.
func New(db *core.DB, cfg Config) (*Driver, error) {
	d, err := NewWithBackend(LocalBackend(db), cfg)
	if d != nil {
		d.DB = db
	}
	return d, err
}

// NewWithBackend creates a driver over any backend — an in-process engine or
// a remote server through internal/client — and registers the nine tables.
func NewWithBackend(be Backend, cfg Config) (*Driver, error) {
	cfg.fill()
	d := &Driver{be: be, cfg: cfg}
	var err error
	create := func(name string) ts.TableID {
		var id ts.TableID
		if err == nil {
			id, err = be.CreateTable(name)
		}
		return id
	}
	d.t = tables{
		warehouse: create(TableWarehouse),
		district:  create(TableDistrict),
		customer:  create(TableCustomer),
		history:   create(TableHistory),
		newOrder:  create(TableNewOrder),
		orders:    create(TableOrders),
		orderLine: create(TableOrderLine),
		item:      create(TableItem),
		stock:     create(TableStock),
	}
	if err != nil {
		return nil, err
	}
	if err := d.installPlacements(); err != nil {
		return nil, err
	}
	d.nu = newNURandC(rand.New(rand.NewSource(cfg.Seed)))
	d.dist = make([][]*districtState, cfg.Warehouses)
	for w := range d.dist {
		d.dist[w] = make([]*districtState, cfg.Districts)
		for i := range d.dist[w] {
			d.dist[w][i] = newDistrictState()
		}
	}
	return d, nil
}

// Config returns the effective (filled) configuration.
func (d *Driver) Config() Config { return d.cfg }

// StockTableID returns the STOCK table's ID — the table the paper's
// long-duration cursor and Trans-SI scan target.
func (d *Driver) StockTableID() ts.TableID { return d.t.stock }

// TableIDsByName exposes the nine table IDs keyed by name.
func (d *Driver) TableIDsByName() map[string]ts.TableID {
	return map[string]ts.TableID{
		TableWarehouse: d.t.warehouse,
		TableDistrict:  d.t.district,
		TableCustomer:  d.t.customer,
		TableHistory:   d.t.history,
		TableNewOrder:  d.t.newOrder,
		TableOrders:    d.t.orders,
		TableOrderLine: d.t.orderLine,
		TableItem:      d.t.item,
		TableStock:     d.t.stock,
	}
}

// Deterministic RID formulas for the fixed-cardinality tables; rows are
// loaded in exactly this order so the engine's dense RID allocator matches.
func (d *Driver) warehouseRID(w uint32) ts.RID { return ts.RID(w) }
func (d *Driver) districtRID(w, dist uint32) ts.RID {
	return ts.RID((w-1)*uint32(d.cfg.Districts) + dist)
}
func (d *Driver) customerRID(w, dist, c uint32) ts.RID {
	perW := uint32(d.cfg.Districts * d.cfg.CustomersPerDistrict)
	return ts.RID((w-1)*perW + (dist-1)*uint32(d.cfg.CustomersPerDistrict) + c)
}
func (d *Driver) itemRID(i uint32) ts.RID { return ts.RID(i) }
func (d *Driver) stockRID(w, i uint32) ts.RID {
	return ts.RID((w-1)*uint32(d.cfg.Items) + i)
}

// Load populates all nine tables per TPC-C cardinalities (scaled). It must
// run before any worker starts.
func (d *Driver) Load() error {
	r := rand.New(rand.NewSource(d.cfg.Seed + 17))
	now := time.Now().UnixNano()

	// ITEM.
	for i := 1; i <= d.cfg.Items; i++ {
		row := Item{ID: uint32(i), ImID: uint32(randRange(r, 1, 10000)),
			Name: alphaString(r, 14, 24), Price: int64(randRange(r, 100, 10000)),
			Data: alphaString(r, 26, 50)}
		if err := d.load(d.t.item, d.itemRID(uint32(i)), row.Encode()); err != nil {
			return err
		}
	}
	for w := 1; w <= d.cfg.Warehouses; w++ {
		wh := Warehouse{ID: uint32(w), Name: alphaString(r, 6, 10),
			Tax: int64(randRange(r, 0, 2000)), YTD: 30000000}
		if err := d.load(d.t.warehouse, d.warehouseRID(uint32(w)), wh.Encode()); err != nil {
			return err
		}
	}
	for w := 1; w <= d.cfg.Warehouses; w++ {
		for dist := 1; dist <= d.cfg.Districts; dist++ {
			row := District{W: uint32(w), ID: uint32(dist), Name: alphaString(r, 6, 10),
				Tax: int64(randRange(r, 0, 2000)),
				YTD: 30000000 / int64(d.cfg.Districts), NextOID: 1}
			if err := d.load(d.t.district, d.districtRID(uint32(w), uint32(dist)), row.Encode()); err != nil {
				return err
			}
		}
	}
	for w := 1; w <= d.cfg.Warehouses; w++ {
		for dist := 1; dist <= d.cfg.Districts; dist++ {
			st := d.state(uint32(w), uint32(dist))
			for c := 1; c <= d.cfg.CustomersPerDistrict; c++ {
				var last string
				if c <= 1000 {
					last = lastName(uint32(c-1) % 1000)
				} else {
					last = lastName(d.nu.randLastNameNum(r, d.cfg.CustomersPerDistrict))
				}
				credit := "GC"
				if r.Intn(10) == 0 {
					credit = "BC"
				}
				row := Customer{W: uint32(w), D: uint32(dist), ID: uint32(c),
					First: alphaString(r, 8, 16), Middle: "OE", Last: last,
					Credit: credit, CreditLim: 5000000,
					Discount: int64(randRange(r, 0, 5000)), Balance: -1000,
					YTDPayment: 1000, PaymentCnt: 1, Data: alphaString(r, 30, 60)}
				if err := d.load(d.t.customer, d.customerRID(uint32(w), uint32(dist), uint32(c)), row.Encode()); err != nil {
					return err
				}
				st.byLastName[last] = append(st.byLastName[last], uint32(c))
			}
		}
	}
	for w := 1; w <= d.cfg.Warehouses; w++ {
		for i := 1; i <= d.cfg.Items; i++ {
			row := Stock{W: uint32(w), ItemID: uint32(i),
				Qty: int32(randRange(r, 10, 100)), Dist: alphaString(r, 24, 24),
				Data: alphaString(r, 26, 50)}
			if err := d.load(d.t.stock, d.stockRID(uint32(w), uint32(i)), row.Encode()); err != nil {
				return err
			}
		}
	}
	// Initial HISTORY rows (one per customer, dynamic RIDs).
	for w := 1; w <= d.cfg.Warehouses; w++ {
		for dist := 1; dist <= d.cfg.Districts; dist++ {
			for c := 1; c <= d.cfg.CustomersPerDistrict; c++ {
				h := History{CW: uint32(w), CD: uint32(dist), CID: uint32(c),
					W: uint32(w), D: uint32(dist), Date: now, Amount: 1000,
					Data: alphaString(r, 12, 24)}
				hint := d.shardOfW(uint32(w))
				err := d.exec(func(tx Txn) error {
					_, err := insertAt(tx, d.t.history, h.Encode(), hint)
					return err
				})
				if err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// load inserts one fixed-cardinality row and verifies the RID formula.
func (d *Driver) load(tid ts.TableID, want ts.RID, img []byte) error {
	return d.exec(func(tx Txn) error {
		rid, err := tx.Insert(tid, img)
		if err != nil {
			return err
		}
		if rid != want {
			return fmt.Errorf("tpcc: load order broke RID formula: got %d want %d", rid, want)
		}
		return nil
	})
}

func (d *Driver) state(w, dist uint32) *districtState {
	return d.dist[w-1][dist-1]
}

// installPlacements detects a sharded backend and installs the by-warehouse
// layout: fixed-cardinality tables interleave in blocks equal to their
// per-warehouse cardinality, so every row of warehouse w lands on shard
// (w-1) mod N and the load's dense global RID sequence still matches the RID
// formulas. ITEM — small, read-mostly, not warehouse-keyed — replicates to
// every shard so NewOrder's item lookups stay local. The dynamic tables
// (HISTORY, NEWORDER, ORDERS, ORDERLINE) round-robin but every insert carries
// the home warehouse's shard as a placement hint.
func (d *Driver) installPlacements() error {
	d.shards = 1
	sb, ok := d.be.(ShardedBackend)
	if !ok {
		return nil
	}
	n := sb.Shards()
	if n <= 1 {
		return nil
	}
	d.shards = n
	place := func(tid ts.TableID, p engine.Placement) error {
		return sb.SetPlacement(tid, p)
	}
	for _, pl := range []struct {
		tid ts.TableID
		p   engine.Placement
	}{
		{d.t.warehouse, engine.Placement{Kind: engine.PlaceInterleave, Size: 1}},
		{d.t.district, engine.Placement{Kind: engine.PlaceInterleave, Size: uint64(d.cfg.Districts)}},
		{d.t.customer, engine.Placement{Kind: engine.PlaceInterleave, Size: uint64(d.cfg.Districts * d.cfg.CustomersPerDistrict)}},
		{d.t.stock, engine.Placement{Kind: engine.PlaceInterleave, Size: uint64(d.cfg.Items)}},
		{d.t.item, engine.Placement{Kind: engine.PlaceReplicated}},
		{d.t.history, engine.Placement{Kind: engine.PlaceInterleave, Size: 1}},
		{d.t.newOrder, engine.Placement{Kind: engine.PlaceInterleave, Size: 1}},
		{d.t.orders, engine.Placement{Kind: engine.PlaceInterleave, Size: 1}},
		{d.t.orderLine, engine.Placement{Kind: engine.PlaceInterleave, Size: 1}},
	} {
		if err := place(pl.tid, pl.p); err != nil {
			return fmt.Errorf("tpcc: placing table %d: %w", pl.tid, err)
		}
	}
	return nil
}

// Shards reports the backend's shard count seen by the driver.
func (d *Driver) Shards() int { return d.shards }

// HomeShard reports warehouse w's home shard under the installed layout.
func (d *Driver) HomeShard(w uint32) int { return d.shardOfW(w) }

// shardOfW is warehouse w's home shard under the by-warehouse layout.
func (d *Driver) shardOfW(w uint32) int {
	if d.shards <= 1 {
		return 0
	}
	return int((w - 1) % uint32(d.shards))
}

// crossesShard reports whether touching warehouse other from home crosses a
// shard boundary (a warehouse boundary when the backend is unsharded, so the
// remote-share counter stays meaningful single-node).
func (d *Driver) crossesShard(home, other uint32) bool {
	if d.shards <= 1 {
		return home != other
	}
	return d.shardOfW(home) != d.shardOfW(other)
}
