package tpcc

// Row types for the nine TPC-C tables. Money amounts are int64 cents;
// date/time fields are Unix nanoseconds. Each type has a symmetric
// Encode/Decode pair over the engine's opaque payloads.

// Warehouse is one WAREHOUSE row.
type Warehouse struct {
	ID   uint32
	Name string
	Tax  int64 // basis points
	YTD  int64 // cents
}

// Encode serializes the row.
func (w *Warehouse) Encode() []byte {
	e := newEnc(32)
	e.u32(w.ID)
	e.str(w.Name)
	e.i64(w.Tax)
	e.i64(w.YTD)
	return e.bytes()
}

// DecodeWarehouse parses a WAREHOUSE row.
func DecodeWarehouse(b []byte) (Warehouse, error) {
	d := newDec(b)
	w := Warehouse{ID: d.u32(), Name: d.str(), Tax: d.i64(), YTD: d.i64()}
	return w, d.finish()
}

// District is one DISTRICT row.
type District struct {
	W       uint32
	ID      uint32
	Name    string
	Tax     int64
	YTD     int64
	NextOID uint32
}

// Encode serializes the row.
func (r *District) Encode() []byte {
	e := newEnc(40)
	e.u32(r.W)
	e.u32(r.ID)
	e.str(r.Name)
	e.i64(r.Tax)
	e.i64(r.YTD)
	e.u32(r.NextOID)
	return e.bytes()
}

// DecodeDistrict parses a DISTRICT row.
func DecodeDistrict(b []byte) (District, error) {
	d := newDec(b)
	r := District{W: d.u32(), ID: d.u32(), Name: d.str(), Tax: d.i64(), YTD: d.i64(), NextOID: d.u32()}
	return r, d.finish()
}

// Customer is one CUSTOMER row.
type Customer struct {
	W           uint32
	D           uint32
	ID          uint32
	First       string
	Middle      string
	Last        string
	Credit      string // "GC" or "BC"
	CreditLim   int64
	Discount    int64 // basis points
	Balance     int64
	YTDPayment  int64
	PaymentCnt  uint32
	DeliveryCnt uint32
	Data        string
}

// Encode serializes the row.
func (c *Customer) Encode() []byte {
	e := newEnc(128)
	e.u32(c.W)
	e.u32(c.D)
	e.u32(c.ID)
	e.str(c.First)
	e.str(c.Middle)
	e.str(c.Last)
	e.str(c.Credit)
	e.i64(c.CreditLim)
	e.i64(c.Discount)
	e.i64(c.Balance)
	e.i64(c.YTDPayment)
	e.u32(c.PaymentCnt)
	e.u32(c.DeliveryCnt)
	e.str(c.Data)
	return e.bytes()
}

// DecodeCustomer parses a CUSTOMER row.
func DecodeCustomer(b []byte) (Customer, error) {
	d := newDec(b)
	c := Customer{
		W: d.u32(), D: d.u32(), ID: d.u32(),
		First: d.str(), Middle: d.str(), Last: d.str(), Credit: d.str(),
		CreditLim: d.i64(), Discount: d.i64(), Balance: d.i64(),
		YTDPayment: d.i64(), PaymentCnt: d.u32(), DeliveryCnt: d.u32(),
		Data: d.str(),
	}
	return c, d.finish()
}

// History is one HISTORY row.
type History struct {
	CW     uint32
	CD     uint32
	CID    uint32
	W      uint32
	D      uint32
	Date   int64
	Amount int64
	Data   string
}

// Encode serializes the row.
func (h *History) Encode() []byte {
	e := newEnc(64)
	e.u32(h.CW)
	e.u32(h.CD)
	e.u32(h.CID)
	e.u32(h.W)
	e.u32(h.D)
	e.i64(h.Date)
	e.i64(h.Amount)
	e.str(h.Data)
	return e.bytes()
}

// DecodeHistory parses a HISTORY row.
func DecodeHistory(b []byte) (History, error) {
	d := newDec(b)
	h := History{CW: d.u32(), CD: d.u32(), CID: d.u32(), W: d.u32(), D: d.u32(),
		Date: d.i64(), Amount: d.i64(), Data: d.str()}
	return h, d.finish()
}

// Order is one ORDERS row.
type Order struct {
	W        uint32
	D        uint32
	ID       uint32
	CID      uint32
	EntryD   int64
	Carrier  uint32 // 0 = not delivered yet
	OLCnt    uint32
	AllLocal bool
}

// Encode serializes the row.
func (o *Order) Encode() []byte {
	e := newEnc(40)
	e.u32(o.W)
	e.u32(o.D)
	e.u32(o.ID)
	e.u32(o.CID)
	e.i64(o.EntryD)
	e.u32(o.Carrier)
	e.u32(o.OLCnt)
	e.bool(o.AllLocal)
	return e.bytes()
}

// DecodeOrder parses an ORDERS row.
func DecodeOrder(b []byte) (Order, error) {
	d := newDec(b)
	o := Order{W: d.u32(), D: d.u32(), ID: d.u32(), CID: d.u32(),
		EntryD: d.i64(), Carrier: d.u32(), OLCnt: d.u32(), AllLocal: d.bool()}
	return o, d.finish()
}

// NewOrderRow is one NEW-ORDER row.
type NewOrderRow struct {
	W   uint32
	D   uint32
	OID uint32
}

// Encode serializes the row.
func (n *NewOrderRow) Encode() []byte {
	e := newEnc(12)
	e.u32(n.W)
	e.u32(n.D)
	e.u32(n.OID)
	return e.bytes()
}

// DecodeNewOrder parses a NEW-ORDER row.
func DecodeNewOrder(b []byte) (NewOrderRow, error) {
	d := newDec(b)
	n := NewOrderRow{W: d.u32(), D: d.u32(), OID: d.u32()}
	return n, d.finish()
}

// OrderLine is one ORDER-LINE row.
type OrderLine struct {
	W         uint32
	D         uint32
	OID       uint32
	Number    uint32
	ItemID    uint32
	SupplyW   uint32
	DeliveryD int64 // 0 = not delivered
	Qty       uint32
	Amount    int64
	DistInfo  string
}

// Encode serializes the row.
func (l *OrderLine) Encode() []byte {
	e := newEnc(72)
	e.u32(l.W)
	e.u32(l.D)
	e.u32(l.OID)
	e.u32(l.Number)
	e.u32(l.ItemID)
	e.u32(l.SupplyW)
	e.i64(l.DeliveryD)
	e.u32(l.Qty)
	e.i64(l.Amount)
	e.str(l.DistInfo)
	return e.bytes()
}

// DecodeOrderLine parses an ORDER-LINE row.
func DecodeOrderLine(b []byte) (OrderLine, error) {
	d := newDec(b)
	l := OrderLine{W: d.u32(), D: d.u32(), OID: d.u32(), Number: d.u32(),
		ItemID: d.u32(), SupplyW: d.u32(), DeliveryD: d.i64(), Qty: d.u32(),
		Amount: d.i64(), DistInfo: d.str()}
	return l, d.finish()
}

// Item is one ITEM row.
type Item struct {
	ID    uint32
	ImID  uint32
	Name  string
	Price int64
	Data  string
}

// Encode serializes the row.
func (i *Item) Encode() []byte {
	e := newEnc(64)
	e.u32(i.ID)
	e.u32(i.ImID)
	e.str(i.Name)
	e.i64(i.Price)
	e.str(i.Data)
	return e.bytes()
}

// DecodeItem parses an ITEM row.
func DecodeItem(b []byte) (Item, error) {
	d := newDec(b)
	i := Item{ID: d.u32(), ImID: d.u32(), Name: d.str(), Price: d.i64(), Data: d.str()}
	return i, d.finish()
}

// Stock is one STOCK row.
type Stock struct {
	W         uint32
	ItemID    uint32
	Qty       int32
	Dist      string
	YTD       int64
	OrderCnt  uint32
	RemoteCnt uint32
	Data      string
}

// Encode serializes the row.
func (s *Stock) Encode() []byte {
	e := newEnc(96)
	e.u32(s.W)
	e.u32(s.ItemID)
	e.i32(s.Qty)
	e.str(s.Dist)
	e.i64(s.YTD)
	e.u32(s.OrderCnt)
	e.u32(s.RemoteCnt)
	e.str(s.Data)
	return e.bytes()
}

// DecodeStock parses a STOCK row.
func DecodeStock(b []byte) (Stock, error) {
	d := newDec(b)
	s := Stock{W: d.u32(), ItemID: d.u32(), Qty: d.i32(), Dist: d.str(),
		YTD: d.i64(), OrderCnt: d.u32(), RemoteCnt: d.u32(), Data: d.str()}
	return s, d.finish()
}
