package sts

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"sync"
	"testing"
	"testing/quick"

	"hybridgc/internal/ts"
)

func TestTrackerMinHead(t *testing.T) {
	tr := NewTracker()
	if _, ok := tr.Min(); ok {
		t.Fatal("empty tracker must report no minimum")
	}
	r5 := tr.Acquire(5)
	r3 := tr.Acquire(3)
	r9 := tr.Acquire(9)
	if m, ok := tr.Min(); !ok || m != 3 {
		t.Fatalf("Min = %d,%v want 3,true", m, ok)
	}
	if m, ok := tr.Max(); !ok || m != 9 {
		t.Fatalf("Max = %d,%v want 9,true", m, ok)
	}
	r3.Release()
	if m, _ := tr.Min(); m != 5 {
		t.Fatalf("Min after release = %d, want 5", m)
	}
	r5.Release()
	r9.Release()
	if _, ok := tr.Min(); ok {
		t.Fatal("tracker should be empty")
	}
}

func TestTrackerRefCounting(t *testing.T) {
	tr := NewTracker()
	a := tr.Acquire(7)
	b := tr.Acquire(7)
	if tr.Len() != 1 {
		t.Fatalf("Len = %d, want 1 (shared node)", tr.Len())
	}
	a.Release()
	if m, ok := tr.Min(); !ok || m != 7 {
		t.Fatal("node must survive while one ref remains")
	}
	b.Release()
	if tr.Len() != 0 {
		t.Fatal("node must be removed when refs reach zero")
	}
}

func TestTrackerDoubleReleasePanics(t *testing.T) {
	tr := NewTracker()
	r := tr.Acquire(1)
	r.Release()
	defer func() {
		if recover() == nil {
			t.Fatal("double release must panic")
		}
	}()
	r.Release()
}

func TestTrackerSnapshotOrdered(t *testing.T) {
	tr := NewTracker()
	vals := []ts.CID{9, 2, 5, 2, 14, 1}
	for _, v := range vals {
		tr.Acquire(v)
	}
	want := []ts.CID{1, 2, 5, 9, 14}
	if got := tr.Snapshot(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Snapshot = %v, want %v", got, want)
	}
}

func TestTrackerOutOfOrderInsertRelease(t *testing.T) {
	tr := NewTracker()
	r := rand.New(rand.NewSource(11))
	var refs []*Ref
	live := make(map[*Ref]ts.CID)
	for i := 0; i < 2000; i++ {
		if len(refs) == 0 || r.Intn(3) != 0 {
			c := ts.CID(r.Intn(100) + 1)
			ref := tr.Acquire(c)
			refs = append(refs, ref)
			live[ref] = c
		} else {
			k := r.Intn(len(refs))
			ref := refs[k]
			refs = append(refs[:k], refs[k+1:]...)
			ref.Release()
			delete(live, ref)
		}
		// Model check: distinct live values, sorted.
		seen := map[ts.CID]bool{}
		var want []ts.CID
		for _, c := range live {
			if !seen[c] {
				seen[c] = true
				want = append(want, c)
			}
		}
		sort.Slice(want, func(a, b int) bool { return want[a] < want[b] })
		got := tr.Snapshot()
		if len(want) == 0 {
			want = nil
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("step %d: Snapshot = %v, want %v", i, got, want)
		}
	}
}

func TestTrackerConcurrent(t *testing.T) {
	tr := NewTracker()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for i := 0; i < 500; i++ {
				ref := tr.Acquire(ts.CID(r.Intn(64) + 1))
				if m, ok := tr.Min(); !ok || m > ref.TS() {
					t.Errorf("Min %d exceeds live ref %d", m, ref.TS())
					ref.Release()
					return
				}
				ref.Release()
			}
		}(int64(g))
	}
	wg.Wait()
	if tr.Len() != 0 {
		t.Fatalf("tracker not empty after all releases: %d", tr.Len())
	}
}

func TestRegistryScopeMovesSnapshot(t *testing.T) {
	r := NewRegistry()
	h1 := r.Acquire(100) // will become the long-lived, scoped snapshot
	h2 := r.Acquire(200)

	if m, ok := r.UnionMin(); !ok || m != 100 {
		t.Fatalf("UnionMin = %d,%v want 100", m, ok)
	}
	if !h1.ScopeToTables([]ts.TableID{1}) {
		t.Fatal("scoping must succeed")
	}
	// The unscoped view no longer holds 100.
	if m, ok := r.GlobalMin(); !ok || m != 200 {
		t.Fatalf("GlobalMin = %d,%v want 200", m, ok)
	}
	// Union still does.
	if m, _ := r.UnionMin(); m != 100 {
		t.Fatalf("UnionMin = %d, want 100", m)
	}
	// Table 1 is constrained at 100, table 2 only by the global tracker.
	if m, _ := r.EffectiveMin(1); m != 100 {
		t.Fatalf("EffectiveMin(1) = %d, want 100", m)
	}
	if m, _ := r.EffectiveMin(2); m != 200 {
		t.Fatalf("EffectiveMin(2) = %d, want 200", m)
	}
	if got := h1.Scoped(); !reflect.DeepEqual(got, []ts.TableID{1}) {
		t.Fatalf("Scoped = %v", got)
	}

	h1.Release()
	if m, _ := r.EffectiveMin(1); m != 200 {
		t.Fatalf("EffectiveMin(1) after release = %d, want 200", m)
	}
	h2.Release()
	if _, ok := r.UnionMin(); ok {
		t.Fatal("registry should be empty")
	}
}

func TestRegistryFigure8(t *testing.T) {
	// Figure 8 of the paper: long-lived snapshots S1 (ts 2057, scope Table 1)
	// and S2 (ts 2089, scope Table 2); remaining global snapshots from 2100.
	// Records outside tables 1 and 2 use minimum 2100; records in table 1 use
	// 2057 and in table 2 use 2089.
	r := NewRegistry()
	s1 := r.Acquire(2057)
	s2 := r.Acquire(2089)
	g := r.Acquire(2100)
	defer g.Release()

	s1.ScopeToTables([]ts.TableID{1})
	s2.ScopeToTables([]ts.TableID{2})

	if m, _ := r.EffectiveMin(1); m != 2057 {
		t.Errorf("table 1 min = %d, want 2057", m)
	}
	if m, _ := r.EffectiveMin(2); m != 2089 {
		t.Errorf("table 2 min = %d, want 2089", m)
	}
	if m, _ := r.EffectiveMin(3); m != 2100 {
		t.Errorf("table 3 min = %d, want 2100", m)
	}
	if m, _ := r.UnionMin(); m != 2057 {
		t.Errorf("union min = %d, want 2057", m)
	}
	want := []ts.CID{2057, 2089, 2100}
	if got := r.UnionSnapshot(); !reflect.DeepEqual(got, want) {
		t.Errorf("union snapshot = %v, want %v", got, want)
	}
	s1.Release()
	s2.Release()
}

func TestRegistrySnapshotFor(t *testing.T) {
	r := NewRegistry()
	a := r.Acquire(10)
	b := r.Acquire(20)
	c := r.Acquire(30)
	defer b.Release()
	defer c.Release()
	a.ScopeToTables([]ts.TableID{7})

	if got, want := r.SnapshotFor(7), []ts.CID{10, 20, 30}; !reflect.DeepEqual(got, want) {
		t.Errorf("SnapshotFor(7) = %v, want %v", got, want)
	}
	if got, want := r.SnapshotFor(8), []ts.CID{20, 30}; !reflect.DeepEqual(got, want) {
		t.Errorf("SnapshotFor(8) = %v, want %v", got, want)
	}
	a.Release()
	if got, want := r.SnapshotFor(7), []ts.CID{20, 30}; !reflect.DeepEqual(got, want) {
		t.Errorf("SnapshotFor(7) after release = %v, want %v", got, want)
	}
}

func TestScopeEdgeCases(t *testing.T) {
	r := NewRegistry()
	h := r.Acquire(5)
	if h.ScopeToTables(nil) {
		t.Error("scoping to zero tables must be refused")
	}
	if !h.ScopeToTables([]ts.TableID{1, 2}) {
		t.Error("first scope must succeed")
	}
	if h.ScopeToTables([]ts.TableID{3}) {
		t.Error("second scope must be a no-op")
	}
	// Scope to two tables: both constrained.
	if m, _ := r.EffectiveMin(1); m != 5 {
		t.Error("table 1 must be constrained")
	}
	if m, _ := r.EffectiveMin(2); m != 5 {
		t.Error("table 2 must be constrained")
	}
	if _, ok := r.EffectiveMin(3); ok {
		t.Error("table 3 must be unconstrained")
	}
	h.Release()
	if h.ScopeToTables([]ts.TableID{1}) {
		t.Error("scoping a released handle must be refused")
	}
}

func TestMergeSorted(t *testing.T) {
	got := mergeSorted([]ts.CID{1, 3, 5}, []ts.CID{1, 2, 5, 9})
	want := []ts.CID{1, 2, 3, 5, 9}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("mergeSorted = %v, want %v", got, want)
	}
	if got := mergeSorted(nil, nil); len(got) != 0 {
		t.Fatalf("mergeSorted(nil,nil) = %v", got)
	}
}

func TestPartitionScoping(t *testing.T) {
	r := NewRegistry()
	long := r.Acquire(50)
	cur := r.Acquire(100)
	defer cur.Release()

	if !long.ScopeToPartitions(7, []ts.PartitionID{0, 2}) {
		t.Fatal("partition scoping must succeed")
	}
	if long.ScopeToPartitions(7, []ts.PartitionID{1}) {
		t.Fatal("second scope must be refused")
	}
	// The unscoped view no longer holds 50; the union still does.
	if m, _ := r.GlobalMin(); m != 100 {
		t.Fatalf("global min = %d", m)
	}
	if m, _ := r.UnionMin(); m != 50 {
		t.Fatalf("union min = %d", m)
	}
	// Partition-granular horizons: scoped partitions pinned at 50, the
	// others only by the global tracker.
	if m, _ := r.EffectiveMinAt(7, 0); m != 50 {
		t.Fatalf("EffectiveMinAt(7,0) = %d", m)
	}
	if m, _ := r.EffectiveMinAt(7, 2); m != 50 {
		t.Fatalf("EffectiveMinAt(7,2) = %d", m)
	}
	if m, _ := r.EffectiveMinAt(7, 1); m != 100 {
		t.Fatalf("EffectiveMinAt(7,1) = %d", m)
	}
	// Table-level horizon stays conservative (min over partitions).
	if m, _ := r.EffectiveMin(7); m != 50 {
		t.Fatalf("EffectiveMin(7) = %d", m)
	}
	// Other tables unaffected.
	if m, _ := r.EffectiveMin(8); m != 100 {
		t.Fatalf("EffectiveMin(8) = %d", m)
	}
	// Table-aware snapshot set includes the partition trackers.
	if got := r.SnapshotFor(7); fmt.Sprint(got) != "[50 100]" {
		t.Fatalf("SnapshotFor(7) = %v", got)
	}
	if got := r.SnapshotFor(8); fmt.Sprint(got) != "[100]" {
		t.Fatalf("SnapshotFor(8) = %v", got)
	}
	long.Release()
	if m, _ := r.EffectiveMinAt(7, 0); m != 100 {
		t.Fatalf("EffectiveMinAt after release = %d", m)
	}
}

// TestTrackerQuickMinInvariant property-checks the tracker against a
// multiset model with testing/quick: after any acquire/release sequence the
// tracker's Min/Max/Snapshot equal the model's.
func TestTrackerQuickMinInvariant(t *testing.T) {
	f := func(ops []uint8) bool {
		tr := NewTracker()
		var refs []*Ref
		counts := map[ts.CID]int{}
		for _, op := range ops {
			if op%3 != 0 || len(refs) == 0 {
				c := ts.CID(op%17 + 1)
				refs = append(refs, tr.Acquire(c))
				counts[c]++
			} else {
				i := int(op) % len(refs)
				ref := refs[i]
				refs = append(refs[:i], refs[i+1:]...)
				counts[ref.TS()]--
				if counts[ref.TS()] == 0 {
					delete(counts, ref.TS())
				}
				ref.Release()
			}
			var want []ts.CID
			for c := range counts {
				want = append(want, c)
			}
			sort.Slice(want, func(a, b int) bool { return want[a] < want[b] })
			got := tr.Snapshot()
			if len(got) != len(want) {
				return false
			}
			for i := range got {
				if got[i] != want[i] {
					return false
				}
			}
			if len(want) > 0 {
				if m, ok := tr.Min(); !ok || m != want[0] {
					return false
				}
				if m, ok := tr.Max(); !ok || m != want[len(want)-1] {
					return false
				}
			} else if _, ok := tr.Min(); ok {
				return false
			}
		}
		for _, r := range refs {
			r.Release()
		}
		return tr.Len() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
