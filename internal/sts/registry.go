package sts

import (
	"sync"

	"hybridgc/internal/ts"
)

// Registry owns the global STS tracker, the per-table trackers created on
// demand by the table garbage collector, and the pre-materialized union of
// all of them (§4.4). Snapshots interact with the registry through Handles.
type Registry struct {
	global *Tracker
	union  *Tracker

	mu       sync.RWMutex
	perTable map[ts.TableID]*Tracker
	perPart  map[ts.TableID]map[ts.PartitionID]*Tracker
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		global:   NewTracker(),
		union:    NewTracker(),
		perTable: make(map[ts.TableID]*Tracker),
		perPart:  make(map[ts.TableID]map[ts.PartitionID]*Tracker),
	}
}

// Handle is what one snapshot holds while active. It pins its timestamp in
// the global tracker (or, after the table collector scoped it, in one or more
// per-table trackers) and always in the union tracker.
type Handle struct {
	reg *Registry
	ts  ts.CID

	mu       sync.Mutex
	scoped   []ts.TableID // nil while in the global tracker and unscoped
	refs     []*Ref       // global ref, per-table refs, or per-partition refs
	unionRef *Ref
	released bool
}

// TS returns the snapshot timestamp the handle pins.
func (h *Handle) TS() ts.CID { return h.ts }

// Scoped returns the tables the handle was narrowed to by table GC, or nil
// while it still pins the global tracker.
func (h *Handle) Scoped() []ts.TableID {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]ts.TableID(nil), h.scoped...)
}

// Acquire pins timestamp c in the global tracker (and in the union) and
// returns the handle the snapshot must release when it finishes.
func (r *Registry) Acquire(c ts.CID) *Handle {
	return &Handle{
		reg:      r,
		ts:       c,
		refs:     []*Ref{r.global.Acquire(c)},
		unionRef: r.union.Acquire(c),
	}
}

// Release drops every reference the handle holds. Safe to call exactly once;
// a second call panics, mirroring a double snapshot close.
func (h *Handle) Release() {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.released {
		panic("sts: Handle released twice")
	}
	h.released = true
	for _, r := range h.refs {
		r.Release()
	}
	h.refs = nil
	h.unionRef.Release()
}

// ScopeToTables is the table collector's step 2 (§4.3): the snapshot's
// timestamp moves from the global tracker to the per-table trackers of the
// given tables. The union is unaffected. Scoping an already-scoped or
// released handle is a no-op; callers pass the complete table set once.
// It reports whether the move happened.
func (h *Handle) ScopeToTables(tables []ts.TableID) bool {
	if len(tables) == 0 {
		return false
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.released || h.scoped != nil {
		return false
	}
	newRefs := make([]*Ref, 0, len(tables))
	for _, tid := range tables {
		newRefs = append(newRefs, h.reg.tableTracker(tid).Acquire(h.ts))
	}
	for _, r := range h.refs {
		r.Release()
	}
	h.refs = newRefs
	h.scoped = append([]ts.TableID(nil), tables...)
	return true
}

// ScopeToPartitions is the partition-granular variant of ScopeToTables
// (§4.3's finer-granular semantic optimization): the snapshot's timestamp
// moves from the global tracker to the per-partition trackers of the given
// partitions of one table, so it only blocks reclamation inside those
// partitions. Reports whether the move happened.
func (h *Handle) ScopeToPartitions(table ts.TableID, parts []ts.PartitionID) bool {
	if len(parts) == 0 {
		return false
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.released || h.scoped != nil {
		return false
	}
	newRefs := make([]*Ref, 0, len(parts))
	for _, p := range parts {
		newRefs = append(newRefs, h.reg.partTracker(table, p).Acquire(h.ts))
	}
	for _, r := range h.refs {
		r.Release()
	}
	h.refs = newRefs
	h.scoped = []ts.TableID{table}
	return true
}

// partTracker returns (creating on demand) the tracker for one partition.
func (r *Registry) partTracker(tid ts.TableID, p ts.PartitionID) *Tracker {
	r.mu.Lock()
	defer r.mu.Unlock()
	byPart := r.perPart[tid]
	if byPart == nil {
		byPart = make(map[ts.PartitionID]*Tracker)
		r.perPart[tid] = byPart
	}
	tr := byPart[p]
	if tr == nil {
		tr = NewTracker()
		byPart[p] = tr
	}
	return tr
}

// tableTracker returns (creating on demand) the per-table tracker for tid.
func (r *Registry) tableTracker(tid ts.TableID) *Tracker {
	r.mu.RLock()
	tr, ok := r.perTable[tid]
	r.mu.RUnlock()
	if ok {
		return tr
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if tr, ok = r.perTable[tid]; ok {
		return tr
	}
	tr = NewTracker()
	r.perTable[tid] = tr
	return tr
}

// Global returns the global tracker (snapshots not yet scoped by table GC).
func (r *Registry) Global() *Tracker { return r.global }

// Union returns the pre-materialized union of the global tracker and all
// per-table trackers. Its Min is the safe system-wide minimum; its Snapshot
// is the S sequence the interval collector consumes.
func (r *Registry) Union() *Tracker { return r.union }

// UnionMin returns the minimum over the global tracker and every per-table
// tracker, i.e. the timestamp below which the group collector may reclaim
// whole groups even in the presence of table-scoped snapshots. ok is false
// when no snapshot is active anywhere.
func (r *Registry) UnionMin() (ts.CID, bool) {
	return r.union.Min()
}

// minOf folds optional minima.
func minOf(a ts.CID, aok bool, b ts.CID, bok bool) (ts.CID, bool) {
	switch {
	case aok && bok:
		if b < a {
			return b, true
		}
		return a, true
	case aok:
		return a, true
	case bok:
		return b, true
	default:
		return 0, false
	}
}

// EffectiveMin returns the reclamation horizon for versions of table tid:
// the minimum of the global tracker, the table's own tracker, and every
// partition tracker of the table (a partition-scoped snapshot constrains
// the whole table at this granularity). Snapshots scoped to *other* tables
// do not constrain tid (§4.3 step 3). ok is false when nothing constrains
// the table at all.
func (r *Registry) EffectiveMin(tid ts.TableID) (ts.CID, bool) {
	min, ok := r.global.Min()
	r.mu.RLock()
	tr := r.perTable[tid]
	byPart := r.perPart[tid]
	parts := make([]*Tracker, 0, len(byPart))
	for _, pt := range byPart {
		parts = append(parts, pt)
	}
	r.mu.RUnlock()
	if tr != nil {
		m, o := tr.Min()
		min, ok = minOf(min, ok, m, o)
	}
	for _, pt := range parts {
		m, o := pt.Min()
		min, ok = minOf(min, ok, m, o)
	}
	return min, ok
}

// EffectiveMinAt returns the reclamation horizon for versions inside one
// partition: the minimum of the global tracker, the table tracker, and that
// partition's own tracker — snapshots scoped to *other* partitions of the
// same table do not constrain it. This is the finer horizon the
// partition-level table collector uses.
func (r *Registry) EffectiveMinAt(tid ts.TableID, p ts.PartitionID) (ts.CID, bool) {
	min, ok := r.global.Min()
	r.mu.RLock()
	tr := r.perTable[tid]
	var pt *Tracker
	if byPart := r.perPart[tid]; byPart != nil {
		pt = byPart[p]
	}
	r.mu.RUnlock()
	if tr != nil {
		m, o := tr.Min()
		min, ok = minOf(min, ok, m, o)
	}
	if pt != nil {
		m, o := pt.Min()
		min, ok = minOf(min, ok, m, o)
	}
	return min, ok
}

// SnapshotFor returns the ascending set of snapshot timestamps that constrain
// table tid: the global tracker plus tid's per-table and per-partition
// trackers. This is the table-aware S sequence for interval collection; the
// paper's implementation uses the full union instead, which
// Union().Snapshot() provides.
func (r *Registry) SnapshotFor(tid ts.TableID) []ts.CID {
	out := r.global.Snapshot()
	r.mu.RLock()
	tr := r.perTable[tid]
	byPart := r.perPart[tid]
	parts := make([]*Tracker, 0, len(byPart))
	for _, pt := range byPart {
		parts = append(parts, pt)
	}
	r.mu.RUnlock()
	if tr != nil {
		out = mergeSorted(out, tr.Snapshot())
	}
	for _, pt := range parts {
		out = mergeSorted(out, pt.Snapshot())
	}
	return out
}

// TableTrackerCount returns how many per-table trackers exist (monitoring).
func (r *Registry) TableTrackerCount() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.perTable)
}

// mergeSorted merges two ascending CID slices, dropping duplicates.
func mergeSorted(a, b []ts.CID) []ts.CID {
	out := make([]ts.CID, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) || j < len(b) {
		var v ts.CID
		switch {
		case j == len(b) || (i < len(a) && a[i] < b[j]):
			v = a[i]
			i++
		case i == len(a) || b[j] < a[i]:
			v = b[j]
			j++
		default: // equal
			v = a[i]
			i++
			j++
		}
		if n := len(out); n == 0 || out[n-1] != v {
			out = append(out, v)
		}
	}
	return out
}
