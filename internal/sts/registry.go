package sts

import (
	"sync"
	"sync/atomic"

	"hybridgc/internal/ts"
)

// Registry owns the snapshot announcement slot array (the contention-free
// fast path for unscoped snapshots), the locked overflow tracker behind it,
// the per-table trackers created on demand by the table garbage collector,
// and the union tracker covering everything that is not slot-resident (§4.4).
// Snapshots interact with the registry through Handles.
//
// The collector-facing views (GlobalMin, UnionMin, GlobalSnapshot,
// UnionSnapshot, EffectiveMin...) merge the slot array with the relevant
// trackers, so callers see one logical tracker regardless of which physical
// structure a snapshot currently announces through.
type Registry struct {
	slots slotArray

	// global holds unscoped snapshots that found no free slot (overflow) —
	// the locked refcounted list is the slow path, not the common case.
	global *Tracker
	// union holds every snapshot that is not slot-resident: overflow,
	// table-scoped and partition-scoped. Slot residents are merged in by the
	// Union* views.
	union *Tracker

	mu       sync.RWMutex
	perTable map[ts.TableID]*Tracker
	perPart  map[ts.TableID]map[ts.PartitionID]*Tracker
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		global:   NewTracker(),
		union:    NewTracker(),
		perTable: make(map[ts.TableID]*Tracker),
		perPart:  make(map[ts.TableID]map[ts.PartitionID]*Tracker),
	}
}

// Handle states. A handle is born slot-resident (or ref-based on overflow),
// moves slot→refs when the table collector scopes it, and ends released.
const (
	handleSlot int32 = iota
	handleRefs
	handleReleased
)

// Handle is what one snapshot holds while active. In the common case it is
// one occupied cell of the announcement array and Release is a single atomic
// store; once the table collector scopes it (or on slot overflow) it holds
// refcounted tracker references like the pre-slot-array design.
type Handle struct {
	reg *Registry
	ts  ts.CID

	// state is the fast-path coordination point: Release CASes
	// handleSlot→handleReleased without touching mu; scoping CASes
	// handleSlot→handleRefs under mu and rolls back if Release won the race.
	state atomic.Int32
	slot  int32 // announcement slot index while state == handleSlot

	mu       sync.Mutex   // guards the fields below (scoped/ref-based states)
	scoped   []ts.TableID // nil while unscoped
	refs     []*Ref       // overflow global ref, per-table refs, or per-partition refs
	unionRef *Ref         // held only while state == handleRefs
}

// TS returns the snapshot timestamp the handle pins.
func (h *Handle) TS() ts.CID { return h.ts }

// Scoped returns the tables the handle was narrowed to by table GC, or nil
// while it is still unscoped.
func (h *Handle) Scoped() []ts.TableID {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]ts.TableID(nil), h.scoped...)
}

// Hint returns a small integer that spreads concurrent handles (slot index on
// the fast path); the snapshot monitor uses it to pick a stripe.
func (h *Handle) Hint() uint32 {
	if i := h.slot; i >= 0 {
		return uint32(i)
	}
	return uint32(h.ts)
}

// Acquire pins timestamp c and returns a fresh handle. The replication layer
// uses this form; the transaction manager embeds the handle in its Snapshot
// and calls AcquireInto to avoid the allocation.
func (r *Registry) Acquire(c ts.CID) *Handle {
	h := new(Handle)
	r.AcquireInto(h, c)
	return h
}

// AcquireInto pins timestamp c into h, which must be zero-valued or released.
// On the fast path this is one CAS into the announcement array; only when
// the array is full does it fall back to the locked trackers.
func (r *Registry) AcquireInto(h *Handle, c ts.CID) {
	h.reg = r
	h.ts = c
	h.scoped = nil
	if i := r.slots.acquire(c); i >= 0 {
		h.slot = i
		h.refs = nil
		h.unionRef = nil
		h.state.Store(handleSlot)
		return
	}
	h.slot = -1
	h.refs = []*Ref{r.global.Acquire(c)}
	h.unionRef = r.union.Acquire(c)
	h.state.Store(handleRefs)
}

// Release drops the handle's announcement or references. Safe to call exactly
// once; a second call panics, mirroring a double snapshot close.
func (h *Handle) Release() {
	if h.state.CompareAndSwap(handleSlot, handleReleased) {
		h.reg.slots.release(h.slot)
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if !h.state.CompareAndSwap(handleRefs, handleReleased) {
		panic("sts: Handle released twice")
	}
	for _, r := range h.refs {
		r.Release()
	}
	h.refs = nil
	h.unionRef.Release()
	h.unionRef = nil
}

// ScopeToTables is the table collector's step 2 (§4.3): the snapshot's
// timestamp moves from the global announcement (slot or overflow tracker) to
// the per-table trackers of the given tables, joining the union tracker if it
// was slot-resident. New references are acquired before the old announcement
// is retracted, so the timestamp stays continuously pinned. Scoping an
// already-scoped or released handle is a no-op; callers pass the complete
// table set once. It reports whether the move happened.
func (h *Handle) ScopeToTables(tables []ts.TableID) bool {
	if len(tables) == 0 {
		return false
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	newRefs := func() []*Ref {
		out := make([]*Ref, 0, len(tables))
		for _, tid := range tables {
			out = append(out, h.reg.tableTracker(tid).Acquire(h.ts))
		}
		return out
	}
	if !h.scopeLocked(newRefs) {
		return false
	}
	h.scoped = append([]ts.TableID(nil), tables...)
	return true
}

// ScopeToPartitions is the partition-granular variant of ScopeToTables
// (§4.3's finer-granular semantic optimization): the snapshot's timestamp
// moves to the per-partition trackers of the given partitions of one table,
// so it only blocks reclamation inside those partitions. Reports whether the
// move happened.
func (h *Handle) ScopeToPartitions(table ts.TableID, parts []ts.PartitionID) bool {
	if len(parts) == 0 {
		return false
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	newRefs := func() []*Ref {
		out := make([]*Ref, 0, len(parts))
		for _, p := range parts {
			out = append(out, h.reg.partTracker(table, p).Acquire(h.ts))
		}
		return out
	}
	if !h.scopeLocked(newRefs) {
		return false
	}
	h.scoped = []ts.TableID{table}
	return true
}

// scopeLocked performs the state transition common to both scope variants.
// Caller holds h.mu; acquire builds the replacement refs. The acquire-new-
// then-release-old order keeps the timestamp pinned throughout, and the CAS
// against h.state resolves the race with the lock-free Release fast path: if
// Release wins, the freshly acquired refs are rolled back.
func (h *Handle) scopeLocked(acquire func() []*Ref) bool {
	switch h.state.Load() {
	case handleReleased:
		return false
	case handleSlot:
		if h.scoped != nil {
			return false
		}
		refs := acquire()
		newUnion := h.reg.union.Acquire(h.ts)
		if !h.state.CompareAndSwap(handleSlot, handleRefs) {
			// Release won the race (slot already retracted there).
			for _, r := range refs {
				r.Release()
			}
			newUnion.Release()
			return false
		}
		h.reg.slots.release(h.slot)
		h.slot = -1
		h.refs = refs
		h.unionRef = newUnion
		return true
	default: // handleRefs: overflow handle, already in the union
		if h.scoped != nil {
			return false
		}
		refs := acquire()
		for _, r := range h.refs {
			r.Release()
		}
		h.refs = refs
		return true
	}
}

// partTracker returns (creating on demand) the tracker for one partition.
func (r *Registry) partTracker(tid ts.TableID, p ts.PartitionID) *Tracker {
	r.mu.Lock()
	defer r.mu.Unlock()
	byPart := r.perPart[tid]
	if byPart == nil {
		byPart = make(map[ts.PartitionID]*Tracker)
		r.perPart[tid] = byPart
	}
	tr := byPart[p]
	if tr == nil {
		tr = NewTracker()
		byPart[p] = tr
	}
	return tr
}

// tableTracker returns (creating on demand) the per-table tracker for tid.
func (r *Registry) tableTracker(tid ts.TableID) *Tracker {
	r.mu.RLock()
	tr, ok := r.perTable[tid]
	r.mu.RUnlock()
	if ok {
		return tr
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if tr, ok = r.perTable[tid]; ok {
		return tr
	}
	tr = NewTracker()
	r.perTable[tid] = tr
	return tr
}

// GlobalMin returns the minimum over unscoped snapshots (announcement slots
// plus the overflow tracker) — the timestamp below which only table-scoped
// snapshots can still pin versions. ok is false when no unscoped snapshot is
// active.
func (r *Registry) GlobalMin() (ts.CID, bool) {
	sm, sok := r.slots.min()
	tm, tok := r.global.Min()
	return minOf(sm, sok, tm, tok)
}

// GlobalSnapshot returns the ascending distinct timestamps of all unscoped
// snapshots.
func (r *Registry) GlobalSnapshot() []ts.CID {
	return mergeSorted(r.slots.sorted(), r.global.Snapshot())
}

// GlobalLen returns the number of distinct unscoped snapshot timestamps.
func (r *Registry) GlobalLen() int {
	return len(r.GlobalSnapshot())
}

// UnionMin returns the minimum over every active snapshot anywhere —
// announcement slots, overflow, per-table and per-partition trackers — i.e.
// the timestamp below which the group collector may reclaim whole groups even
// in the presence of table-scoped snapshots. ok is false when no snapshot is
// active.
func (r *Registry) UnionMin() (ts.CID, bool) {
	sm, sok := r.slots.min()
	um, uok := r.union.Min()
	return minOf(sm, sok, um, uok)
}

// UnionSnapshot returns the ascending distinct timestamps of every active
// snapshot — the S sequence the interval collector consumes (§4.2 step 1).
func (r *Registry) UnionSnapshot() []ts.CID {
	return mergeSorted(r.slots.sorted(), r.union.Snapshot())
}

// minOf folds optional minima.
func minOf(a ts.CID, aok bool, b ts.CID, bok bool) (ts.CID, bool) {
	switch {
	case aok && bok:
		if b < a {
			return b, true
		}
		return a, true
	case aok:
		return a, true
	case bok:
		return b, true
	default:
		return 0, false
	}
}

// EffectiveMin returns the reclamation horizon for versions of table tid:
// the minimum of the unscoped snapshots, the table's own tracker, and every
// partition tracker of the table (a partition-scoped snapshot constrains
// the whole table at this granularity). Snapshots scoped to *other* tables
// do not constrain tid (§4.3 step 3). ok is false when nothing constrains
// the table at all.
func (r *Registry) EffectiveMin(tid ts.TableID) (ts.CID, bool) {
	min, ok := r.GlobalMin()
	r.mu.RLock()
	tr := r.perTable[tid]
	byPart := r.perPart[tid]
	parts := make([]*Tracker, 0, len(byPart))
	for _, pt := range byPart {
		parts = append(parts, pt)
	}
	r.mu.RUnlock()
	if tr != nil {
		m, o := tr.Min()
		min, ok = minOf(min, ok, m, o)
	}
	for _, pt := range parts {
		m, o := pt.Min()
		min, ok = minOf(min, ok, m, o)
	}
	return min, ok
}

// EffectiveMinAt returns the reclamation horizon for versions inside one
// partition: the minimum of the unscoped snapshots, the table tracker, and
// that partition's own tracker — snapshots scoped to *other* partitions of
// the same table do not constrain it. This is the finer horizon the
// partition-level table collector uses.
func (r *Registry) EffectiveMinAt(tid ts.TableID, p ts.PartitionID) (ts.CID, bool) {
	min, ok := r.GlobalMin()
	r.mu.RLock()
	tr := r.perTable[tid]
	var pt *Tracker
	if byPart := r.perPart[tid]; byPart != nil {
		pt = byPart[p]
	}
	r.mu.RUnlock()
	if tr != nil {
		m, o := tr.Min()
		min, ok = minOf(min, ok, m, o)
	}
	if pt != nil {
		m, o := pt.Min()
		min, ok = minOf(min, ok, m, o)
	}
	return min, ok
}

// SnapshotFor returns the ascending set of snapshot timestamps that constrain
// table tid: the unscoped snapshots plus tid's per-table and per-partition
// trackers. This is the table-aware S sequence for interval collection; the
// paper's implementation uses the full union instead, which UnionSnapshot
// provides.
func (r *Registry) SnapshotFor(tid ts.TableID) []ts.CID {
	out := r.GlobalSnapshot()
	r.mu.RLock()
	tr := r.perTable[tid]
	byPart := r.perPart[tid]
	parts := make([]*Tracker, 0, len(byPart))
	for _, pt := range byPart {
		parts = append(parts, pt)
	}
	r.mu.RUnlock()
	if tr != nil {
		out = mergeSorted(out, tr.Snapshot())
	}
	for _, pt := range parts {
		out = mergeSorted(out, pt.Snapshot())
	}
	return out
}

// TableTrackerCount returns how many per-table trackers exist (monitoring).
func (r *Registry) TableTrackerCount() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.perTable)
}

// mergeSorted merges two ascending CID slices, dropping duplicates.
func mergeSorted(a, b []ts.CID) []ts.CID {
	out := make([]ts.CID, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) || j < len(b) {
		var v ts.CID
		switch {
		case j == len(b) || (i < len(a) && a[i] < b[j]):
			v = a[i]
			i++
		case i == len(a) || b[j] < a[i]:
			v = b[j]
			j++
		default: // equal
			v = a[i]
			i++
			j++
		}
		if n := len(out); n == 0 || out[n-1] != v {
			out = append(out, v)
		}
	}
	return out
}
