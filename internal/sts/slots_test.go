package sts

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"hybridgc/internal/ts"
)

func TestSlotArrayBasics(t *testing.T) {
	var a slotArray
	if _, ok := a.min(); ok {
		t.Fatal("empty array must report no minimum")
	}
	i0 := a.acquire(0) // CID 0 is valid: the commit counter starts there
	i5 := a.acquire(5)
	i3 := a.acquire(3)
	if i0 < 0 || i5 < 0 || i3 < 0 {
		t.Fatalf("acquire failed: %d %d %d", i0, i5, i3)
	}
	if m, ok := a.min(); !ok || m != 0 {
		t.Fatalf("min = %d,%v want 0,true", m, ok)
	}
	if got, want := a.sorted(), []ts.CID{0, 3, 5}; !reflect.DeepEqual(got, want) {
		t.Fatalf("sorted = %v, want %v", got, want)
	}
	a.release(i0)
	if m, _ := a.min(); m != 3 {
		t.Fatalf("min after release = %d, want 3", m)
	}
	a.release(i3)
	a.release(i5)
	if _, ok := a.min(); ok {
		t.Fatal("array should be empty")
	}
}

func TestSlotArraySortedDedups(t *testing.T) {
	var a slotArray
	for i := 0; i < 10; i++ {
		if a.acquire(42) < 0 {
			t.Fatal("acquire failed")
		}
	}
	if got, want := a.sorted(), []ts.CID{42}; !reflect.DeepEqual(got, want) {
		t.Fatalf("sorted = %v, want %v", got, want)
	}
}

func TestSlotArrayOverflow(t *testing.T) {
	var a slotArray
	idx := make([]int32, 0, slotCount)
	for i := 0; i < slotCount; i++ {
		j := a.acquire(ts.CID(i))
		if j < 0 {
			t.Fatalf("acquire %d failed with free slots remaining", i)
		}
		idx = append(idx, j)
	}
	if a.acquire(999) >= 0 {
		t.Fatal("acquire must fail on a full array")
	}
	a.release(idx[7])
	if a.acquire(999) < 0 {
		t.Fatal("acquire must succeed after a release")
	}
}

func TestSlotArrayRejectsInfinity(t *testing.T) {
	var a slotArray
	if a.acquire(ts.Infinity) >= 0 {
		t.Fatal("Infinity is outside the encodable domain and must overflow")
	}
}

// TestRegistryOverflowFallback fills the slot array and checks that overflow
// handles behave identically through the merged views, scoping, and release.
func TestRegistryOverflowFallback(t *testing.T) {
	r := NewRegistry()
	handles := make([]*Handle, 0, slotCount)
	for i := 0; i < slotCount; i++ {
		handles = append(handles, r.Acquire(1000))
	}
	over := r.Acquire(500) // lands in the overflow tracker
	if over.slot != -1 {
		t.Fatal("expected overflow handle")
	}
	if m, _ := r.GlobalMin(); m != 500 {
		t.Fatalf("GlobalMin = %d, want 500 (overflow merged)", m)
	}
	if m, _ := r.UnionMin(); m != 500 {
		t.Fatalf("UnionMin = %d, want 500", m)
	}
	if got, want := r.GlobalSnapshot(), []ts.CID{500, 1000}; !reflect.DeepEqual(got, want) {
		t.Fatalf("GlobalSnapshot = %v, want %v", got, want)
	}
	if !over.ScopeToTables([]ts.TableID{3}) {
		t.Fatal("scoping an overflow handle must succeed")
	}
	if m, _ := r.GlobalMin(); m != 1000 {
		t.Fatalf("GlobalMin after scope = %d, want 1000", m)
	}
	if m, _ := r.EffectiveMin(3); m != 500 {
		t.Fatalf("EffectiveMin(3) = %d, want 500", m)
	}
	over.Release()
	for _, h := range handles {
		h.Release()
	}
	if _, ok := r.UnionMin(); ok {
		t.Fatal("registry should be empty")
	}
}

func TestHandleDoubleReleasePanics(t *testing.T) {
	r := NewRegistry()
	h := r.Acquire(1)
	h.Release()
	defer func() {
		if recover() == nil {
			t.Fatal("double release must panic")
		}
	}()
	h.Release()
}

func TestAcquireIntoReuse(t *testing.T) {
	r := NewRegistry()
	var h Handle
	for i := 0; i < 3*slotCount; i++ {
		r.AcquireInto(&h, ts.CID(i))
		if m, ok := r.GlobalMin(); !ok || m != ts.CID(i) {
			t.Fatalf("GlobalMin = %d,%v want %d", m, ok, i)
		}
		h.Release()
	}
	if _, ok := r.GlobalMin(); ok {
		t.Fatal("registry should be empty")
	}
}

// TestScopeReleaseRace hammers the Release fast path against concurrent
// scoping: exactly one of the two must win, nothing may leak, and the
// timestamp must stay pinned until the release.
func TestScopeReleaseRace(t *testing.T) {
	r := NewRegistry()
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 2000; i++ {
		guard := r.Acquire(1) // keeps the registry non-empty for the checks
		h := r.Acquire(2)
		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			h.ScopeToTables([]ts.TableID{ts.TableID(rng.Intn(4) + 1)})
		}()
		go func() {
			defer wg.Done()
			h.Release()
		}()
		wg.Wait()
		guard.Release()
		if m, ok := r.UnionMin(); ok {
			t.Fatalf("iteration %d: leaked pin at %d", i, m)
		}
	}
}

// TestRegistryConcurrentAcquireRelease checks the merged min never exceeds a
// timestamp the goroutine itself still pins.
func TestRegistryConcurrentAcquireRelease(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			var h Handle
			for i := 0; i < 2000; i++ {
				c := ts.CID(rng.Intn(64) + 1)
				r.AcquireInto(&h, c)
				if m, ok := r.GlobalMin(); !ok || m > c {
					t.Errorf("GlobalMin %d,%v exceeds live pin %d", m, ok, c)
					h.Release()
					return
				}
				if m, ok := r.UnionMin(); !ok || m > c {
					t.Errorf("UnionMin %d,%v exceeds live pin %d", m, ok, c)
					h.Release()
					return
				}
				h.Release()
			}
		}(int64(g))
	}
	wg.Wait()
	if _, ok := r.UnionMin(); ok {
		t.Fatal("registry should be empty")
	}
}
