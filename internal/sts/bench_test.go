package sts

import (
	"sync"
	"testing"
)

// BenchmarkSnapshotAcquireParallel measures the per-slot announcement hot
// path under parallel load: each acquire/release pair is one CAS plus one
// atomic store into a padded slot, with no shared mutex. Compare against
// BenchmarkSnapshotAcquireParallelLocked — the acceptance bar for the
// slot-array design is >=2x its throughput at GOMAXPROCS=4.
func BenchmarkSnapshotAcquireParallel(b *testing.B) {
	r := NewRegistry()
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		var h Handle
		for pb.Next() {
			r.AcquireInto(&h, 42)
			h.Release()
		}
	})
}

// BenchmarkSnapshotAcquireParallelLocked is the retained cost model of the
// pre-slot-array design (the same role the locked hash benchmark plays for
// the lock-free RID hash): one global latch around the timestamp read plus
// refcounted inserts into the global and union ordered lists — exactly what
// every statement snapshot used to pay.
func BenchmarkSnapshotAcquireParallelLocked(b *testing.B) {
	var mu sync.Mutex
	global := NewTracker()
	union := NewTracker()
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			mu.Lock()
			g := global.Acquire(42)
			u := union.Acquire(42)
			mu.Unlock()
			g.Release()
			u.Release()
		}
	})
}
