package sts

import (
	"sort"
	"sync"
	"sync/atomic"

	"hybridgc/internal/ts"
)

// Per-slot snapshot announcement (Ben-David et al., "Space and Time Bounded
// Multiversion Garbage Collection"; Wei & Fatourou): instead of inserting
// every snapshot timestamp into the mutex-guarded ordered list, a snapshot
// publishes its timestamp into one slot of a fixed padded array with a single
// CAS and retracts it with a single atomic store. The ordered view the
// collectors need (min / sorted set) is rebuilt lazily by scanning the array
// only when a GC pass asks for it — turning the per-statement hot path from a
// global mutex into contention-free per-slot atomics while keeping the
// O(#slots) cost on the rare reader side.

const (
	// slotCount bounds how many unscoped snapshots can announce concurrently
	// before falling back to the locked overflow tracker. 256 padded slots is
	// 16KiB — big enough that a realistic statement mix never overflows, small
	// enough that a GC-side scan stays trivially cheap.
	slotCount = 256
	slotMask  = slotCount - 1
)

// slot is one announcement cell, padded to its own cache line so concurrent
// snapshots on different cores never false-share.
type slot struct {
	// v holds the announced timestamp encoded as CID+1; 0 means empty. The
	// +1 shift is load-bearing: CID 0 is a valid snapshot timestamp (the
	// commit counter starts at 0), so the empty sentinel must live outside
	// the CID domain.
	v atomic.Uint64
	_ [56]byte
}

// slotArray is the announcement array. The zero value is ready to use.
type slotArray struct {
	slots [slotCount]slot
}

// slotHint carries the slot index a P last acquired successfully. Boxes
// travel through a sync.Pool, which gives per-P affinity without goroutine
// IDs: the common statement pattern (acquire, release, acquire again on the
// same core) re-probes the slot it just freed and hits on the first CAS
// against a cache line it already owns.
type slotHint struct{ idx uint32 }

var slotHintSeed atomic.Uint32

var slotHintPool = sync.Pool{New: func() any {
	// Spread initial probe points so cold-start acquirers do not pile onto
	// slot 0 (Fibonacci hashing of a global counter).
	return &slotHint{idx: slotHintSeed.Add(1) * 0x9E3779B1 & slotMask}
}}

// acquire publishes c into a free slot and returns its index, or -1 when the
// array is full (or c is outside the encodable domain) and the caller must
// take the overflow path.
func (a *slotArray) acquire(c ts.CID) int32 {
	if c == ts.Infinity {
		return -1 // c+1 would wrap onto the empty sentinel
	}
	h := slotHintPool.Get().(*slotHint)
	start := h.idx
	for i := uint32(0); i < slotCount; i++ {
		idx := (start + i) & slotMask
		s := &a.slots[idx]
		if s.v.Load() == 0 && s.v.CompareAndSwap(0, uint64(c)+1) {
			h.idx = idx
			slotHintPool.Put(h)
			return int32(idx)
		}
	}
	slotHintPool.Put(h)
	return -1
}

// release retracts the announcement in slot i.
func (a *slotArray) release(i int32) {
	a.slots[i].v.Store(0)
}

// min scans for the smallest announced timestamp; ok is false when the array
// is empty. Collector-side only.
func (a *slotArray) min() (ts.CID, bool) {
	var (
		best  ts.CID
		found bool
	)
	for i := range a.slots {
		v := a.slots[i].v.Load()
		if v == 0 {
			continue
		}
		c := ts.CID(v - 1)
		if !found || c < best {
			best, found = c, true
		}
	}
	return best, found
}

// sorted returns the distinct announced timestamps in ascending order.
// Collector-side only.
func (a *slotArray) sorted() []ts.CID {
	var out []ts.CID
	for i := range a.slots {
		if v := a.slots[i].v.Load(); v != 0 {
			out = append(out, ts.CID(v-1))
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	// Dedup in place: concurrent statements frequently share a timestamp.
	n := 0
	for i, c := range out {
		if i == 0 || c != out[n-1] {
			out[n] = c
			n++
		}
	}
	return out[:n]
}
