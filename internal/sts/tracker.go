// Package sts implements the snapshot timestamp trackers of §4.1 and §4.3 of
// the paper. The hot path is a per-slot announcement array (slots.go): an
// unscoped snapshot publishes its timestamp with one CAS and retracts it with
// one atomic store, and the ordered view is rebuilt lazily only when a GC
// pass asks for the min or the S sequence. Behind it sit the classic
// refcounted ordered-list Trackers (this file) — the overflow store for the
// announcement array, the per-table/per-partition trackers used by the table
// garbage collector, and the union tracker the group and interval collectors
// consult once table GC has moved snapshots out of the global view (§4.4).
// The locked Tracker also serves as the cost-model baseline the parallel
// acquire benchmark compares the slot array against.
package sts

import (
	"sync"

	"hybridgc/internal/ts"
)

// node is one reference-counted snapshot timestamp value in a tracker's
// ordered list.
type node struct {
	ts         ts.CID
	refs       int
	prev, next *node
}

// Tracker is an ordered list of reference-counted snapshot timestamp values.
// When a snapshot starts it acquires its timestamp value; equal values share
// one node whose reference count is incremented, so the list stays as short
// as the number of distinct active timestamps. The minimum is read from the
// head without scanning (§4.1, Figure 6).
//
// The zero value is not usable; call NewTracker.
type Tracker struct {
	mu   sync.Mutex
	head *node
	tail *node
	byTS map[ts.CID]*node
	// acquired counts Acquire calls over the tracker's lifetime; used by
	// monitoring only.
	acquired uint64
}

// NewTracker returns an empty tracker.
func NewTracker() *Tracker {
	return &Tracker{byTS: make(map[ts.CID]*node)}
}

// Ref is a snapshot's handle on one timestamp value inside one tracker.
// Release must be called exactly once.
type Ref struct {
	tr *Tracker
	n  *node
}

// TS returns the timestamp value this reference pins.
func (r *Ref) TS() ts.CID { return r.n.ts }

// Acquire registers one reference to timestamp c and returns the handle. If c
// is already tracked its reference count is incremented; otherwise a new node
// is inserted in timestamp order.
func (t *Tracker) Acquire(c ts.CID) *Ref {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.acquired++
	if n, ok := t.byTS[c]; ok {
		n.refs++
		return &Ref{tr: t, n: n}
	}
	n := &node{ts: c, refs: 1}
	t.byTS[c] = n
	// Insert in order. Acquisitions are near-monotonic (new snapshots get
	// fresh, larger timestamps), so walk from the tail.
	switch {
	case t.tail == nil:
		t.head, t.tail = n, n
	case t.tail.ts < c:
		n.prev = t.tail
		t.tail.next = n
		t.tail = n
	default:
		at := t.tail
		for at.prev != nil && at.prev.ts > c {
			at = at.prev
		}
		// insert before at
		n.next = at
		n.prev = at.prev
		if at.prev != nil {
			at.prev.next = n
		} else {
			t.head = n
		}
		at.prev = n
	}
	return &Ref{tr: t, n: n}
}

// Release drops one reference. When a node's count reaches zero it is removed
// from the list, potentially advancing the tracker minimum.
func (r *Ref) Release() {
	t := r.tr
	t.mu.Lock()
	defer t.mu.Unlock()
	n := r.n
	n.refs--
	if n.refs > 0 {
		return
	}
	if n.refs < 0 {
		panic("sts: Ref released twice")
	}
	delete(t.byTS, n.ts)
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		t.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		t.tail = n.prev
	}
}

// Min returns the smallest tracked timestamp. ok is false when the tracker is
// empty (no active snapshot pins anything).
func (t *Tracker) Min() (c ts.CID, ok bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.head == nil {
		return 0, false
	}
	return t.head.ts, true
}

// Max returns the largest tracked timestamp, or ok=false when empty.
func (t *Tracker) Max() (c ts.CID, ok bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.tail == nil {
		return 0, false
	}
	return t.tail.ts, true
}

// Snapshot returns all distinct tracked timestamps in ascending order. This
// is the full scan the interval collector performs as its first step (§4.2
// step 1).
func (t *Tracker) Snapshot() []ts.CID {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]ts.CID, 0, len(t.byTS))
	for n := t.head; n != nil; n = n.next {
		out = append(out, n.ts)
	}
	return out
}

// Len returns the number of distinct tracked timestamp values.
func (t *Tracker) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.byTS)
}

// Acquired returns the lifetime count of Acquire calls.
func (t *Tracker) Acquired() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.acquired
}
