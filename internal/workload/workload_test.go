package workload

import (
	"testing"
	"time"

	"hybridgc/internal/gc"
	"hybridgc/internal/tpcc"
)

func tinyTPCC() tpcc.Config {
	return tpcc.Config{Warehouses: 2, Districts: 2, CustomersPerDistrict: 8, Items: 60, Seed: 7}
}

func TestModePeriods(t *testing.T) {
	base := gc.Periods{GT: 1, TG: 2, SI: 3}
	if p := ModeGT.Periods(base); p != (gc.Periods{GT: 1}) {
		t.Fatalf("GT periods = %+v", p)
	}
	if p := ModeGTTG.Periods(base); p != (gc.Periods{GT: 1, TG: 2}) {
		t.Fatalf("GT+TG periods = %+v", p)
	}
	if p := ModeHG.Periods(base); p != base {
		t.Fatalf("HG periods = %+v", p)
	}
	if p := ModeNone.Periods(base); p != (gc.Periods{}) {
		t.Fatalf("none periods = %+v", p)
	}
	if ModeGT.String() != "GT" || ModeGTTG.String() != "GT+TG" || ModeHG.String() != "HG" || ModeNone.String() != "none" {
		t.Fatal("mode names broken")
	}
}

func TestRunBasicOLTPOnly(t *testing.T) {
	res, err := Run(Options{
		Mode:     ModeHG,
		TPCC:     tinyTPCC(),
		Duration: 400 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Committed == 0 || res.WorkersCommitted == 0 {
		t.Fatalf("no work done: %+v", res)
	}
	if len(res.Versions.Points) < 3 {
		t.Fatalf("too few samples: %d", len(res.Versions.Points))
	}
	if res.AvgThroughput() <= 0 {
		t.Fatal("zero throughput")
	}
	// Without a blocker, HG keeps the version space small relative to what
	// was created.
	if res.Final.VersionsReclaimed == 0 {
		t.Fatal("nothing reclaimed")
	}
}

func TestLongCursorShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run shape test")
	}
	run := func(m Mode) *Result {
		res, err := Run(Options{
			Mode: m,
			// Faster-than-default periods so SI fires several times within
			// the short test window; the ratio GT:TG:SI stays 1:3:10.
			Base:               gc.Periods{GT: 20 * time.Millisecond, TG: 60 * time.Millisecond, SI: 200 * time.Millisecond},
			LongLivedThreshold: 40 * time.Millisecond,
			TPCC:               tinyTPCC(),
			Duration:           900 * time.Millisecond,
			LongCursor:         true,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	gt := run(ModeGT)
	hg := run(ModeHG)

	// Figure 10's shape: with the long cursor, GT's version count keeps
	// growing while HG stays near-flat.
	if gt.Versions.Last() < 3*hg.Versions.Last() {
		t.Fatalf("GT versions %.0f should dwarf HG versions %.0f",
			gt.Versions.Last(), hg.Versions.Last())
	}
	// Figure 11's shape: under HG, TG and SI do real work in the presence of
	// a cursor (GT is mostly blocked).
	if hg.ReclaimedTG.Last() == 0 || hg.ReclaimedSI.Last() == 0 {
		t.Fatalf("HG per-collector totals: GT=%.0f TG=%.0f SI=%.0f",
			hg.ReclaimedGT.Last(), hg.ReclaimedTG.Last(), hg.ReclaimedSI.Last())
	}
}

func TestIncrementalFetch(t *testing.T) {
	res, err := Run(Options{
		Mode:       ModeHG,
		TPCC:       tinyTPCC(),
		Duration:   600 * time.Millisecond,
		LongCursor: true,
		Fetch:      &FetchOptions{Size: 10, Think: 20 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Fetches) < 3 {
		t.Fatalf("only %d fetches", len(res.Fetches))
	}
	for i, f := range res.Fetches {
		if f.Index != i {
			t.Fatalf("fetch indices out of order: %+v", res.Fetches)
		}
	}
}

func TestTransSIScenario(t *testing.T) {
	res, err := Run(Options{
		Mode:     ModeHG,
		TPCC:     tinyTPCC(),
		Duration: 700 * time.Millisecond,
		TransSI:  &TransSIOptions{Sleep: 80 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.TransSIScans) == 0 {
		t.Fatal("no Trans-SI scans completed")
	}
	for _, lat := range res.TransSIScans {
		if lat <= 0 {
			t.Fatalf("bad scan latency %v", lat)
		}
	}
}

func TestModeNoneOverflows(t *testing.T) {
	res, err := Run(Options{
		Mode:     ModeNone,
		TPCC:     tinyTPCC(),
		Duration: 300 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Figure 2's phenomenon: without GC the version space only grows.
	if res.Final.VersionsReclaimed != 0 {
		t.Fatal("ModeNone must not reclaim")
	}
	if res.Versions.Last() == 0 {
		t.Fatal("version space should have grown")
	}
}
