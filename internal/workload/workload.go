// Package workload drives the paper's evaluation scenario (§5.1): the
// modified TPC-C benchmark with one dedicated worker per warehouse bound to
// its home warehouse, plus an emulated OLAP component — a long-duration
// cursor under Stmt-SI (optionally with incremental FETCH processing) or
// repeated long Trans-SI transactions — while sampling the indicators each
// figure plots: active versions, committed statements per second, hash
// collision ratio, FETCH latency and traversal counts, Trans-SI query
// latency, and per-collector reclamation totals.
package workload

import (
	"fmt"
	"sync"
	"time"

	"hybridgc/internal/core"
	"hybridgc/internal/gc"
	"hybridgc/internal/metrics"
	"hybridgc/internal/tpcc"
	"hybridgc/internal/ts"
	"hybridgc/internal/txn"
)

// Mode selects which collectors run, matching the paper's three compared
// configurations (§5): GT, GT+TG, and HG (=GT+TG+SI). ModeNone disables
// collection entirely (the Figure 2 overflow demonstration).
type Mode int

// The compared garbage collection configurations.
const (
	ModeNone Mode = iota
	ModeGT
	ModeGTTG
	ModeHG
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case ModeNone:
		return "none"
	case ModeGT:
		return "GT"
	case ModeGTTG:
		return "GT+TG"
	case ModeHG:
		return "HG"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Periods masks the base periods down to the collectors the mode enables.
func (m Mode) Periods(base gc.Periods) gc.Periods {
	switch m {
	case ModeGT:
		return gc.Periods{GT: base.GT}
	case ModeGTTG:
		return gc.Periods{GT: base.GT, TG: base.TG}
	case ModeHG:
		return base
	default:
		return gc.Periods{}
	}
}

// FetchOptions emulates incremental query processing (§5.4): the cursor
// fetches Size rows, then the client "processes" them for Think before the
// next FETCH.
type FetchOptions struct {
	Size  int
	Think time.Duration
}

// TransSIOptions emulates the §5.5 scenario: repeatedly begin a Trans-SI
// transaction with undeclared scope, hold it for Sleep (application logic),
// run a full STOCK scan, and commit.
type TransSIOptions struct {
	Sleep time.Duration
}

// Options configures one experiment run.
type Options struct {
	Mode Mode
	// Base holds the three collectors' invocation periods before the mode
	// masks them. Zero selects scaled defaults (50 ms / 150 ms / 500 ms,
	// the paper's 1 s / 3 s / 10 s at 1/20 time scale).
	Base               gc.Periods
	LongLivedThreshold time.Duration
	TPCC               tpcc.Config
	HashBuckets        int
	// Duration is the wall-clock workload run time.
	Duration       time.Duration
	SampleInterval time.Duration
	// LongCursor opens a cursor over STOCK at start and holds it for the
	// whole run (the §5.2 blocker). Fetch, when non-nil, additionally runs
	// the incremental FETCH loop over it.
	LongCursor bool
	Fetch      *FetchOptions
	// StockPartitions, when >= 2, declares STOCK partitioned; with
	// CursorPartitions non-empty the long cursor is pruned to those
	// partitions and its snapshot declares the partition scope — the
	// partition-level table GC extension (§4.3's "finer-granular object").
	StockPartitions  int
	CursorPartitions []ts.PartitionID
	// TransSI, when non-nil, replaces the cursor blocker with the repeated
	// long Trans-SI transaction of §5.5.
	TransSI *TransSIOptions
}

func (o *Options) fill() {
	if o.Base == (gc.Periods{}) {
		o.Base = gc.Periods{GT: 50 * time.Millisecond, TG: 150 * time.Millisecond, SI: 500 * time.Millisecond}
	}
	if o.LongLivedThreshold <= 0 {
		o.LongLivedThreshold = 100 * time.Millisecond
	}
	if o.Duration <= 0 {
		o.Duration = 2 * time.Second
	}
	if o.SampleInterval <= 0 {
		o.SampleInterval = 50 * time.Millisecond
	}
}

// FetchSample is one FETCH observation (Figures 14 and 15).
type FetchSample struct {
	Index     int
	Latency   time.Duration
	Traversed int64
}

// Result carries everything the figures plot.
type Result struct {
	Mode Mode
	// Versions is the active record version count over time (Figures 10, 17).
	Versions metrics.Series
	// Throughput is committed statements per second over time (Figure 12).
	Throughput metrics.Series
	// Collision is the hash collision ratio over time (Figure 13).
	Collision metrics.Series
	// ReclaimedGT/TG/SI are accumulated reclaimed versions per collector
	// over time (Figure 11).
	ReclaimedGT metrics.Series
	ReclaimedTG metrics.Series
	ReclaimedSI metrics.Series
	// Fetches are the incremental FETCH observations (Figures 14, 15).
	Fetches []FetchSample
	// TransSIScans are the latencies of the scan query inside each Trans-SI
	// transaction (Figure 16).
	TransSIScans []time.Duration
	// Committed counts statements committed during the measured window; with
	// Elapsed it yields the average throughput of Figures 18/19.
	Committed int64
	Elapsed   time.Duration
	// Final is the engine's closing statistics snapshot.
	Final core.Stats
	// Workers aggregates per-profile transaction outcomes.
	WorkersCommitted int64
}

// AvgThroughput returns committed statements per second over the run.
func (r *Result) AvgThroughput() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Committed) / r.Elapsed.Seconds()
}

// Run executes one experiment and returns its measurements.
func Run(o Options) (*Result, error) {
	o.fill()
	db, err := core.Open(core.Config{
		HashBuckets:        o.HashBuckets,
		GC:                 o.Mode.Periods(o.Base),
		LongLivedThreshold: o.LongLivedThreshold,
	})
	if err != nil {
		return nil, err
	}
	defer db.Close()

	driver, err := tpcc.New(db, o.TPCC)
	if err != nil {
		return nil, err
	}
	if err := driver.Load(); err != nil {
		return nil, err
	}

	res := &Result{Mode: o.Mode}
	sampler := metrics.NewSampler(o.SampleInterval)
	sampler.TrackGauge("versions", func() float64 { return float64(db.Space().Live()) })
	sampler.TrackGauge("collision", func() float64 { return db.Space().HT.Stats().CollisionRatio })
	sampler.TrackRate("throughput", db.StatementCount)
	h := db.GC()
	sampler.TrackGauge("reclaimed.GT", func() float64 { return float64(h.ReclaimedByGT()) })
	sampler.TrackGauge("reclaimed.TG", func() float64 { return float64(h.ReclaimedByTG()) })
	sampler.TrackGauge("reclaimed.SI", func() float64 { return float64(h.ReclaimedBySI()) })

	stop := make(chan struct{})
	var wg sync.WaitGroup
	errOnce := sync.Once{}
	var runErr error
	fail := func(err error) {
		errOnce.Do(func() { runErr = err })
	}

	startStatements := db.StatementCount()
	start := time.Now()
	sampler.Start()
	if o.Mode != ModeNone {
		h.Start()
	}

	// OLTP: one worker per warehouse, home warehouse only.
	workers := make([]*tpcc.Worker, driver.Config().Warehouses)
	for w := 1; w <= driver.Config().Warehouses; w++ {
		workers[w-1] = driver.NewWorker(w)
		wg.Add(1)
		go func(wk *tpcc.Worker) {
			defer wg.Done()
			if err := wk.Run(1<<62, stop); err != nil {
				fail(err)
			}
		}(workers[w-1])
	}

	// OLAP: long cursor (optionally with incremental FETCH).
	var fetchMu sync.Mutex
	if o.StockPartitions >= 2 {
		if err := db.SetTablePartitions(driver.StockTableID(), o.StockPartitions); err != nil {
			return nil, err
		}
	}
	if o.LongCursor {
		var cur *core.Cursor
		var err error
		if len(o.CursorPartitions) > 0 {
			cur, err = db.OpenPartitionCursor(driver.StockTableID(), o.CursorPartitions...)
		} else {
			cur, err = db.OpenCursor(driver.StockTableID())
		}
		if err != nil {
			return nil, err
		}
		if o.Fetch != nil {
			wg.Add(1)
			go func() {
				defer wg.Done()
				idx := 0
				for {
					select {
					case <-stop:
						return
					default:
					}
					if cur.Exhausted() {
						// Restart the scan from a fresh cursor position but
						// keep the original snapshot open by reopening only
						// after the run — emulate by idling.
						select {
						case <-stop:
						case <-time.After(o.Fetch.Think):
						}
						continue
					}
					_, st, err := cur.Fetch(o.Fetch.Size)
					if err != nil {
						fail(err)
						return
					}
					fetchMu.Lock()
					res.Fetches = append(res.Fetches, FetchSample{
						Index: idx, Latency: st.Duration, Traversed: st.Traversed})
					fetchMu.Unlock()
					idx++
					select {
					case <-stop:
						return
					case <-time.After(o.Fetch.Think):
					}
				}
			}()
		}
		defer cur.Close()
	}

	// OLAP: repeated long Trans-SI transactions.
	if o.TransSI != nil {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				tx := db.Begin(txn.TransSI)
				select {
				case <-stop:
					tx.Abort()
					return
				case <-time.After(o.TransSI.Sleep):
				}
				t0 := time.Now()
				err := tx.Scan(driver.StockTableID(), func(_ ts.RID, _ []byte) bool { return true })
				lat := time.Since(t0)
				if err != nil {
					tx.Abort()
					fail(err)
					return
				}
				if err := tx.Commit(); err != nil {
					fail(err)
					return
				}
				fetchMu.Lock()
				res.TransSIScans = append(res.TransSIScans, lat)
				fetchMu.Unlock()
			}
		}()
	}

	time.Sleep(o.Duration)
	// The last throughput-rate sample must land while workers still run;
	// sampling after the stop would append a meaningless ~0 rate.
	sampler.Sample()
	close(stop)
	wg.Wait()
	res.Elapsed = time.Since(start)
	res.Committed = db.StatementCount() - startStatements
	if o.Mode != ModeNone {
		h.Stop()
	}
	sampler.Stop()

	res.Versions = sampler.Get("versions")
	res.Collision = sampler.Get("collision")
	res.Throughput = sampler.Get("throughput")
	// Drop the post-stop rate sample, then any trailing rate samples whose
	// measurement window was shorter than half the sample interval — a
	// ticker firing next to the final explicit sample yields a meaningless
	// near-zero-width rate. Gauge series keep their final points: versions
	// and reclaim totals are meaningful after the stop.
	pts := res.Throughput.Points
	if n := len(pts); n >= 2 {
		pts = pts[:n-1]
	}
	for len(pts) >= 2 && pts[len(pts)-1].Elapsed-pts[len(pts)-2].Elapsed < o.SampleInterval/2 {
		pts = pts[:len(pts)-1]
	}
	res.Throughput.Points = pts
	res.ReclaimedGT = sampler.Get("reclaimed.GT")
	res.ReclaimedTG = sampler.Get("reclaimed.TG")
	res.ReclaimedSI = sampler.Get("reclaimed.SI")
	res.Final = db.Stats()
	for _, wk := range workers {
		res.WorkersCommitted += wk.Stats.TotalCommitted()
	}
	if runErr != nil {
		return res, runErr
	}
	return res, nil
}
