package core

import (
	"errors"
	"testing"
	"time"

	"hybridgc/internal/ts"
	"hybridgc/internal/txn"
)

// insertRows loads n rows in commit batches of batch, staying under a
// configured version budget (committed batches are collectable; one giant
// transaction's uncommitted versions are not).
func insertRows(db *DB, tid ts.TableID, n, batch int) error {
	for done := 0; done < n; {
		tx := db.Begin(txn.StmtSI)
		for i := 0; i < batch && done < n; i++ {
			if _, err := tx.Insert(tid, []byte("v0")); err != nil {
				tx.Abort()
				return err
			}
			done++
		}
		if err := tx.Commit(); err != nil {
			return err
		}
	}
	return nil
}

// TestVersionBudgetBoundsOverflow reproduces the overflow scenario of
// Figure 2 — an update-heavy workload with a pinned cursor blocking
// collection — with a VersionBudget configured, and asserts the ladder
// defends the hard watermark: live versions stay bounded, the pinning cursor
// is evicted (its owner sees ErrSnapshotKilled), and the run completes
// instead of growing without bound.
func TestVersionBudgetBoundsOverflow(t *testing.T) {
	const (
		rows = 2000
		soft = 800
		hard = 1600
	)
	db, err := Open(Config{
		Txn: txn.Config{SynchronousPropagation: true},
		VersionBudget: VersionBudget{
			Soft:          soft,
			Hard:          hard,
			MaxWriterWait: 50 * time.Millisecond,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	tid, err := db.CreateTable("t")
	if err != nil {
		t.Fatal(err)
	}
	// Load in batches small enough to stay under the budget: uncommitted
	// versions count toward it and cannot be collected, so one huge insert
	// transaction would trip backpressure against itself.
	if err := insertRows(db, tid, rows, 100); err != nil {
		t.Fatal(err)
	}
	// Let the controller collect the insert burst before pinning the cursor,
	// so the cursor's snapshot is the only thing blocking collection below.
	deadline := time.Now().Add(2 * time.Second)
	for db.Space().Live() >= soft && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}

	cur, err := db.OpenCursor(tid)
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Close()
	if _, _, err := cur.Fetch(10); err != nil {
		t.Fatal(err)
	}

	// Update every row once: with the cursor pinning its snapshot, each
	// update leaves at least one live version per row — 2000 > hard — so the
	// budget is only defensible by evicting the cursor.
	var maxLive int64
	for i := 0; i < rows; i++ {
		err := db.Exec(txn.StmtSI, nil, func(tx *Tx) error {
			return tx.Update(tid, ts.RID(i+1), []byte("v1"))
		})
		if err != nil && !errors.Is(err, ErrVersionPressure) {
			t.Fatalf("update %d: %v", i, err)
		}
		if errors.Is(err, ErrVersionPressure) {
			i-- // retry the same row after the ladder relieves
			time.Sleep(2 * time.Millisecond)
		}
		if live := db.Space().Live(); live > maxLive {
			maxLive = live
		}
	}

	// The controller evaluates every MaxWriterWait/4; allow one period of
	// overshoot beyond the hard watermark before it reacts.
	const slack = 256
	if maxLive > hard+slack {
		t.Fatalf("live versions peaked at %d, want <= hard %d + slack %d", maxLive, hard, hard+slack)
	}
	ps := db.PressureStats()
	if !ps.Enabled {
		t.Fatal("PressureStats not enabled despite configured budget")
	}
	if ps.Evicted < 1 {
		t.Fatalf("no snapshot evicted under hard-watermark pressure: %+v", ps)
	}
	if ps.SoftTrips < 1 || ps.Emergencies < 1 {
		t.Fatalf("ladder never engaged: %+v", ps)
	}
	// The evicted cursor's owner must observe the force-close.
	if _, _, err := cur.Fetch(10); !errors.Is(err, ErrSnapshotKilled) {
		t.Fatalf("fetch on evicted cursor: %v, want ErrSnapshotKilled", err)
	}
	if db.SnapshotsKilled() < 1 {
		t.Fatal("SnapshotsKilled not incremented by eviction")
	}
	st := db.Stats()
	if !st.Pressure.Enabled || st.Pressure.Evicted != ps.Evicted {
		t.Fatalf("Stats().Pressure disagrees with PressureStats(): %+v vs %+v", st.Pressure, ps)
	}
}

// TestVersionBudgetBackpressureRejects drives the version space over the
// soft watermark while an undeletable pin holds collection back below hard,
// and asserts writers get the bounded-wait-then-ErrVersionPressure behavior
// rather than blocking forever.
func TestVersionBudgetBackpressureRejects(t *testing.T) {
	const (
		rows = 400
		soft = 100
	)
	db, err := Open(Config{
		Txn: txn.Config{SynchronousPropagation: true},
		VersionBudget: VersionBudget{
			Soft: soft,
			// Hard and EvictAfter far away: the ladder stalls at
			// backpressure because eviction never triggers.
			Hard:          1 << 30,
			MaxWriterWait: 20 * time.Millisecond,
			EvictAfter:    time.Hour,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	tid, err := db.CreateTable("t")
	if err != nil {
		t.Fatal(err)
	}
	if err := insertRows(db, tid, rows, 50); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for db.Space().Live() >= soft && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}

	cur, err := db.OpenCursor(tid)
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Close()

	// Each row's newest committed version is irreducible while the cursor
	// pins (SI spares chain heads), so cycling updates over the rows pushes
	// live over soft for good; keep writing until backpressure latches.
	// Keep writing until backpressure latches: the controller needs at least
	// one full evaluation (including a collection pass) after live settles
	// over soft, so a fixed iteration count would race it on a fast machine.
	sawPressure := false
	stop := time.Now().Add(10 * time.Second)
	for i := 0; !sawPressure && time.Now().Before(stop); i++ {
		err := db.Exec(txn.StmtSI, nil, func(tx *Tx) error {
			return tx.Update(tid, ts.RID(i%rows+1), []byte("v1"))
		})
		switch {
		case err == nil:
		case errors.Is(err, ErrVersionPressure):
			sawPressure = true
		case errors.Is(err, ErrSnapshotKilled):
			t.Fatalf("eviction fired below hard watermark on update %d", i)
		default:
			t.Fatalf("update %d: %v", i, err)
		}
	}
	if !sawPressure {
		t.Fatal("no writer saw ErrVersionPressure despite sustained over-soft pressure")
	}
	ps := db.PressureStats()
	if ps.Backpressured < 1 || ps.Rejected < 1 {
		t.Fatalf("backpressure counters not advanced: %+v", ps)
	}
	if ps.Evicted != 0 {
		t.Fatalf("evicted %d snapshots below the hard watermark", ps.Evicted)
	}
	if cur.snap.Killed() {
		t.Fatal("cursor killed below the hard watermark")
	}
}
