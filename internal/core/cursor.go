package core

import (
	"fmt"
	"time"

	"hybridgc/internal/table"
	"hybridgc/internal/ts"
	"hybridgc/internal/txn"
)

// Cursor is a client-held result cursor over one table: it pins a statement
// snapshot from open to close and materializes rows incrementally through
// Fetch, emulating the paper's incremental query processing (§5.4). An open
// cursor is the canonical long-lived garbage collection blocker under
// Stmt-SI; because its table scope is known from the query plan, the table
// collector can confine its effect to that table.
type Cursor struct {
	db   *DB
	tbl  *table.Table
	snap *txn.Snapshot
	// parts, when non-nil, restricts the scan to these partitions (the
	// pruning result that also narrowed the snapshot's scope).
	parts map[ts.PartitionID]bool

	nextRID ts.RID
	closed  bool
}

// OpenCursor opens a full-scan cursor over the table. The cursor's snapshot
// is acquired now and held until Close.
func (db *DB) OpenCursor(tid ts.TableID) (*Cursor, error) {
	tbl, err := db.tableByID(tid)
	if err != nil {
		return nil, err
	}
	return &Cursor{
		db:      db,
		tbl:     tbl,
		snap:    db.m.AcquireSnapshot(txn.KindCursor, []ts.TableID{tid}),
		nextRID: 1,
	}, nil
}

// OpenPartitionCursor opens a cursor pruned to the given partitions of a
// partitioned table. The snapshot declares the partition scope, so the
// table collector confines its effect to exactly those partitions (§4.3's
// partition-level semantic optimization).
func (db *DB) OpenPartitionCursor(tid ts.TableID, parts ...ts.PartitionID) (*Cursor, error) {
	tbl, err := db.tableByID(tid)
	if err != nil {
		return nil, err
	}
	if tbl.Partitions() == 0 {
		return nil, fmt.Errorf("core: table %d is not partitioned", tid)
	}
	if len(parts) == 0 {
		return nil, fmt.Errorf("core: no partitions selected")
	}
	set := make(map[ts.PartitionID]bool, len(parts))
	for _, p := range parts {
		if int(p) >= tbl.Partitions() {
			return nil, fmt.Errorf("core: partition %d out of range (table has %d)", p, tbl.Partitions())
		}
		set[p] = true
	}
	return &Cursor{
		db:      db,
		tbl:     tbl,
		snap:    db.m.AcquireSnapshotPartitions(txn.KindCursor, tid, parts),
		parts:   set,
		nextRID: 1,
	}, nil
}

// SnapshotTS returns the cursor's pinned snapshot timestamp.
func (c *Cursor) SnapshotTS() ts.CID { return c.snap.TS() }

// FetchStats reports the cost of one Fetch call — the latency of Figure 14
// and the versions-traversed count of Figure 15.
type FetchStats struct {
	Rows      int
	Traversed int64
	Duration  time.Duration
}

// Fetch materializes up to n visible rows, resuming where the previous
// Fetch stopped. It returns the rows, per-call statistics, and io-style
// exhaustion via a short (possibly empty) result.
func (c *Cursor) Fetch(n int) ([][]byte, FetchStats, error) {
	if c.closed {
		return nil, FetchStats{}, ErrCursorClosed
	}
	if c.snap.Killed() {
		return nil, FetchStats{}, ErrSnapshotKilled
	}
	start := time.Now()
	at := c.snap.TS()
	var stats FetchStats
	rows := make([][]byte, 0, n)
	max := c.tbl.MaxRID()
	for c.nextRID <= max && len(rows) < n {
		rid := c.nextRID
		c.nextRID++
		if c.parts != nil && !c.parts[c.tbl.PartitionOf(rid)] {
			continue // pruned partition
		}
		img, ok := c.db.readRecord(c.tbl, rid, at, nil, &stats.Traversed)
		if !ok {
			continue
		}
		rows = append(rows, img)
	}
	stats.Rows = len(rows)
	stats.Duration = time.Since(start)
	c.db.statements.Add(1)
	return rows, stats, nil
}

// Exhausted reports whether the cursor has scanned past the last RID that
// existed at open time.
func (c *Cursor) Exhausted() bool {
	return c.closed || c.nextRID > c.tbl.MaxRID()
}

// Close releases the cursor's snapshot. Idempotent.
func (c *Cursor) Close() {
	if c.closed {
		return
	}
	c.closed = true
	c.snap.Release()
}
