package core

import (
	"errors"
	"testing"

	"hybridgc/internal/fault"
	"hybridgc/internal/mvcc"
	"hybridgc/internal/ts"
	"hybridgc/internal/wal"
)

// groupPart builds one member record of a batched commit group.
func groupPart(cid ts.CID, part, parts uint32, ops ...wal.Op) *wal.Record {
	return &wal.Record{Kind: wal.KindGroup, CID: cid, Part: part, Parts: parts, Ops: ops}
}

func ins(tid ts.TableID, rid ts.RID, img string) wal.Op {
	return wal.Op{Op: mvcc.OpInsert, Table: tid, RID: rid, Payload: []byte(img)}
}

// TestTornBatchNeverPartiallyReplayed is the dedicated crash-matrix leg for
// the batched group-commit path: a multi-member commit group torn mid-write —
// with whole member frames of its prefix durably on disk — must recover
// atomically to nothing. The earlier acknowledged group must survive intact.
func TestTornBatchNeverPartiallyReplayed(t *testing.T) {
	defer fault.Reset()
	dir := t.TempDir()
	l, err := wal.Open(wal.Options{Dir: dir, Sync: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(&wal.Record{Kind: wal.KindDDL, TableID: 1, TableName: "T"}); err != nil {
		t.Fatal(err)
	}
	// Acknowledged group: CID 1, two members.
	if _, err := l.AppendBatch([]*wal.Record{
		groupPart(1, 0, 2, ins(1, 1, "a")),
		groupPart(1, 1, 2, ins(1, 2, "b")),
	}); err != nil {
		t.Fatal(err)
	}
	// Torn group: CID 2, three members. The last member's payload dominates
	// the batch, so the torn write (half the batch bytes) leaves members 0
	// and 1 as WHOLE, checksum-valid frames on disk — the case a torn-frame
	// check alone cannot catch; only part accounting can.
	big := make([]byte, 8192)
	fault.Enable(wal.FPAppendBatchTorn, fault.Once())
	_, err = l.AppendBatch([]*wal.Record{
		groupPart(2, 0, 3, ins(1, 3, "x")),
		groupPart(2, 1, 3, ins(1, 4, "y")),
		groupPart(2, 2, 3, wal.Op{Op: mvcc.OpInsert, Table: 1, RID: 5, Payload: big}),
	})
	if !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("torn batch append: %v, want injected failure", err)
	}
	fault.Disable(wal.FPAppendBatchTorn)
	l.Close() // fail-stopped: closes without flushing the buffered remainder

	// Prove the torn image really contains intact prefix frames: the raw
	// segment must hold the DDL record, both CID-1 parts, and at least one
	// CID-2 part.
	segs, err := wal.Segments(dir)
	if err != nil || len(segs) != 1 {
		t.Fatalf("segments: %v %v", segs, err)
	}
	var kinds []wal.Kind
	var cid2parts int
	if err := wal.ReadSegment(segs[0].Path, func(r *wal.Record) error {
		kinds = append(kinds, r.Kind)
		if r.Kind == wal.KindGroup && r.CID == 2 {
			cid2parts++
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(kinds) < 4 || cid2parts < 1 {
		t.Fatalf("torn image has %d records (%d of the torn group) — the scenario "+
			"did not leave a durable prefix, so the test proves nothing", len(kinds), cid2parts)
	}
	if cid2parts >= 3 {
		t.Fatalf("all %d parts of the torn group survived; nothing was torn", cid2parts)
	}

	db, err := Open(Config{Persistence: &Persistence{Dir: dir, Sync: true}})
	if err != nil {
		t.Fatalf("recovery over a torn batch: %v", err)
	}
	defer db.Close()
	if got := db.Manager().CurrentTS(); got != 1 {
		t.Fatalf("recovered CID %d, want 1 (torn group 2 must not count)", got)
	}
	tid := db.TableID("T")
	if tid == 0 {
		t.Fatal("table T missing after recovery")
	}
	for rid, want := range map[ts.RID]string{1: "a", 2: "b"} {
		img, ok := db.ReadAt(tid, rid, 1)
		if !ok || string(img) != want {
			t.Fatalf("acked row %d: %q,%v want %q", rid, img, ok, want)
		}
	}
	for _, rid := range []ts.RID{3, 4, 5} {
		if img, ok := db.ReadAt(tid, rid, 99); ok {
			t.Fatalf("row %d of the torn group partially replayed: %q", rid, img)
		}
	}
	if n := db.ScanCountAt(tid, 99); n != 2 {
		t.Fatalf("%d live rows after recovery, want 2", n)
	}
}

// TestApplyRecordAssemblesGroups drives the replica apply path with a
// multi-part group: nothing becomes visible until the last part, duplicate
// delivery CID-dedupes, and torn-prefix residue followed by a CID-reusing
// restart applies only the new group.
func TestApplyRecordAssemblesGroups(t *testing.T) {
	db, err := Open(Config{ReadOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := db.ApplyRecord(&wal.Record{Kind: wal.KindDDL, TableID: 1, TableName: "T"}); err != nil {
		t.Fatal(err)
	}
	tid := db.TableID("T")

	// Parts 0 and 1 of a 3-part group: buffered, not visible.
	for p := uint32(0); p < 2; p++ {
		if err := db.ApplyRecord(groupPart(1, p, 3, ins(tid, ts.RID(p+1), "v"))); err != nil {
			t.Fatal(err)
		}
	}
	if got := db.Manager().CurrentTS(); got != 0 {
		t.Fatalf("CID %d visible before the group completed", got)
	}
	if _, ok := db.ReadAt(tid, 1, 99); ok {
		t.Fatal("buffered part leaked into the table space")
	}
	// The last part applies the whole group at once.
	if err := db.ApplyRecord(groupPart(1, 2, 3, ins(tid, 3, "v"))); err != nil {
		t.Fatal(err)
	}
	if got := db.Manager().CurrentTS(); got != 1 {
		t.Fatalf("CID %d after completion, want 1", got)
	}
	if n := db.ScanCountAt(tid, 1); n != 3 {
		t.Fatalf("%d rows applied, want 3", n)
	}

	// Duplicate delivery of the whole group (stream overlap) is a no-op.
	for p := uint32(0); p < 3; p++ {
		if err := db.ApplyRecord(groupPart(1, p, 3, ins(tid, ts.RID(p+1), "v"))); err != nil {
			t.Fatalf("duplicate part %d: %v", p, err)
		}
	}
	if n := db.ScanCountAt(tid, 1); n != 3 {
		t.Fatalf("duplicate group changed row count to %d", n)
	}

	// Torn residue: parts 0..1 of CID 2 arrive, then the primary (which
	// recovered and reused the CID) ships a fresh single-record group 2.
	if err := db.ApplyRecord(groupPart(2, 0, 3, ins(tid, 10, "dead"))); err != nil {
		t.Fatal(err)
	}
	if err := db.ApplyRecord(groupPart(2, 1, 3, ins(tid, 11, "dead"))); err != nil {
		t.Fatal(err)
	}
	if err := db.ApplyRecord(groupPart(2, 0, 1, ins(tid, 12, "live"))); err != nil {
		t.Fatal(err)
	}
	if got := db.Manager().CurrentTS(); got != 2 {
		t.Fatalf("CID %d after restart group, want 2", got)
	}
	if _, ok := db.ReadAt(tid, 10, 99); ok {
		t.Fatal("torn-residue part applied")
	}
	if img, ok := db.ReadAt(tid, 12, 2); !ok || string(img) != "live" {
		t.Fatalf("restart group row: %q,%v", img, ok)
	}

	// A continuation that extends nothing is corruption, surfaced as an error.
	if err := db.ApplyRecord(groupPart(9, 2, 3, ins(tid, 13, "x"))); !errors.Is(err, wal.ErrCorrupt) {
		t.Fatalf("orphan continuation: %v, want wal.ErrCorrupt", err)
	}
}
