package core

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"hybridgc/internal/fault"
	"hybridgc/internal/ts"
	"hybridgc/internal/txn"
	"hybridgc/internal/wal"
)

// TestTornTailDDLRecovery crashes mid-append of a DDL record: half the frame
// reaches the segment, so recovery must drop the torn tail, keep everything
// before it, and leave the half-created table fully absent — and the name
// reusable after recovery.
func TestTornTailDDLRecovery(t *testing.T) {
	defer fault.Reset()
	dir := t.TempDir()
	cfg := Config{
		Txn:         txn.Config{SynchronousPropagation: true},
		Persistence: &Persistence{Dir: dir, Sync: true},
	}
	db, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	tidA, err := db.CreateTable("A")
	if err != nil {
		t.Fatal(err)
	}
	var rid ts.RID
	err = db.Exec(txn.StmtSI, nil, func(tx *Tx) error {
		var err error
		rid, err = tx.Insert(tidA, []byte("kept"))
		return err
	})
	if err != nil {
		t.Fatal(err)
	}

	fault.Enable(wal.FPAppendTorn)
	if _, err := db.CreateTable("B"); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("CreateTable under torn append: %v, want injected error", err)
	}
	fault.Reset()
	if failed, _ := db.FailStop(); !failed {
		t.Fatal("torn append did not fail-stop the engine")
	}
	db.Close()

	db2, err := Open(cfg)
	if err != nil {
		t.Fatalf("recovery over a torn DDL tail failed: %v", err)
	}
	defer db2.Close()
	if got := db2.TableID("B"); got != 0 {
		t.Fatalf("half-logged table recovered with id %d, want absent", got)
	}
	if img, ok := db2.ReadAt(db2.TableID("A"), rid, db2.Manager().CurrentTS()); !ok || string(img) != "kept" {
		t.Fatalf("pre-crash row: %q, %v", img, ok)
	}
	// The name is free again: the DDL can simply be reissued.
	tidB, err := db2.CreateTable("B")
	if err != nil {
		t.Fatalf("reissuing the torn DDL: %v", err)
	}
	err = db2.Exec(txn.StmtSI, nil, func(tx *Tx) error {
		_, err := tx.Insert(tidB, []byte("second try"))
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestCrashBetweenCheckpointSyncAndRename covers the narrow window after the
// checkpoint temp file is synced but before the atomic rename: the engine
// keeps running on the old checkpoint (a checkpoint failure is not a
// durability failure), a stranded temp file must not confuse recovery, and
// the next checkpoint succeeds normally.
func TestCrashBetweenCheckpointSyncAndRename(t *testing.T) {
	defer fault.Reset()
	dir := t.TempDir()
	cfg := Config{
		Txn:         txn.Config{SynchronousPropagation: true},
		Persistence: &Persistence{Dir: dir, Sync: true},
	}
	db, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	tid, err := db.CreateTable("T")
	if err != nil {
		t.Fatal(err)
	}
	var rid ts.RID
	set := func(db *DB, tid ts.TableID, val string) {
		t.Helper()
		err := db.Exec(txn.StmtSI, nil, func(tx *Tx) error {
			if rid == 0 {
				var err error
				rid, err = tx.Insert(tid, []byte(val))
				return err
			}
			return tx.Update(tid, rid, []byte(val))
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	set(db, tid, "v1")
	if err := db.Checkpoint(); err != nil { // baseline checkpoint
		t.Fatal(err)
	}
	set(db, tid, "v2")

	fault.Enable(wal.FPCheckpointRename)
	if err := db.Checkpoint(); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("checkpoint under rename failure: %v, want injected error", err)
	}
	fault.Reset()
	if failed, cause := db.FailStop(); failed {
		t.Fatalf("checkpoint failure fail-stopped the engine: %v", cause)
	}
	// Commits keep flowing on the old checkpoint plus the log.
	set(db, tid, "v3")
	db.Close()

	// A real crash in that window strands the synced temp file (the injected
	// error path cleans it up, a power cut would not). Recovery must ignore it.
	stray := filepath.Join(dir, "checkpoint-stray.tmp")
	if err := os.WriteFile(stray, []byte("half a checkpoint"), 0o644); err != nil {
		t.Fatal(err)
	}

	db2, err := Open(cfg)
	if err != nil {
		t.Fatalf("recovery with a stranded checkpoint temp file failed: %v", err)
	}
	defer db2.Close()
	tid2 := db2.TableID("T")
	if img, ok := db2.ReadAt(tid2, rid, db2.Manager().CurrentTS()); !ok || string(img) != "v3" {
		t.Fatalf("recovered %q, %v, want v3 (old checkpoint + log replay)", img, ok)
	}
	// The next checkpoint replaces the old one cleanly...
	set(db2, tid2, "v4")
	if err := db2.Checkpoint(); err != nil {
		t.Fatalf("checkpoint after recovered rename failure: %v", err)
	}
	db2.Close()
	// ...and recovery from it works.
	db3, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer db3.Close()
	if img, ok := db3.ReadAt(db3.TableID("T"), rid, db3.Manager().CurrentTS()); !ok || string(img) != "v4" {
		t.Fatalf("post-checkpoint recovery: %q, %v, want v4", img, ok)
	}
}
