package core

import (
	"errors"
	"fmt"
	"sort"

	"hybridgc/internal/fault"
	"hybridgc/internal/mvcc"
	"hybridgc/internal/table"
	"hybridgc/internal/ts"
	"hybridgc/internal/txn"
	"hybridgc/internal/wal"
)

// FPRecover fires at the start of recovery: a failure here models a crash
// during restart (e.g. a second power cut mid-recovery). Recovery is
// read-only over the checkpoint and log, so a subsequent Open must succeed
// and reach the same state.
var FPRecover = fault.Declare("core/recover", "at the start of log/checkpoint recovery")

// Persistence configures the common persistency of §2.1: write-ahead
// logging of commit groups and DDL, plus checkpointing of the table space.
type Persistence struct {
	// Dir is the directory holding log segments and the checkpoint.
	Dir string
	// Sync fsyncs the log on every commit group (full durability); without
	// it, records are flushed to the OS but not synced.
	Sync bool
}

// ErrNoPersistence is returned by Checkpoint on an in-memory-only database.
var ErrNoPersistence = errors.New("core: persistence not configured")

// walLogger adapts the WAL to the transaction manager's CommitLogger hook.
type walLogger struct {
	log *wal.Log
	// recs/pool are the committer's reused record scaffolding. LogCommit is
	// called from the single committer goroutine, so no locking is layered.
	recs []*wal.Record
	pool []wal.Record
}

// LogCommit implements txn.CommitLogger: the commit group becomes one
// KindGroup record per member transaction, all sharing the group CID and
// stamped Part/Parts, appended as one batch — one write, one fsync — before
// the committer publishes the group. Recovery and the replication applier
// replay the group only once every part is present, so a batch torn by a
// crash (which was never acknowledged) disappears instead of surfacing a
// partial commit.
// Members whose write set is already durable (two-phase-commit participants,
// whose prepare record logged it) are skipped; their CID reaches the log via
// the KindResolve record the coordinator appends after publication.
func (w *walLogger) LogCommit(cid ts.CID, members []*mvcc.TransContext) error {
	if cap(w.pool) < len(members) {
		w.pool = make([]wal.Record, len(members))
		w.recs = make([]*wal.Record, len(members))
	}
	recs := w.recs[:0]
	for _, tc := range members {
		if tc.SkipLog() {
			continue
		}
		rec := &w.pool[len(recs)]
		*rec = wal.Record{
			Kind: wal.KindGroup, CID: cid,
			Part: uint32(len(recs)),
			Ops:  rec.Ops[:0],
		}
		for _, v := range tc.Versions() {
			rec.Ops = append(rec.Ops, wal.Op{
				Op: v.Op, Table: v.Key.Table, RID: v.Key.RID, Payload: v.Payload,
			})
		}
		recs = append(recs, rec)
	}
	if len(recs) == 0 {
		return nil
	}
	for _, rec := range recs {
		rec.Parts = uint32(len(recs))
	}
	_, err := w.log.AppendBatch(recs)
	return err
}

// RecoverySummary is the two-phase-commit state recovery found in the log:
// prepared write sets with no settling resolve record (in doubt — the owner
// crashed between prepare and resolve) and, on a coordinator shard, the
// decision records. The shard cluster settles in-doubt transactions against
// the coordinator's decisions before serving; the protocol is presumed-abort,
// so an XID absent from Decisions aborts.
type RecoverySummary struct {
	InDoubt   map[uint64][]wal.Op
	Decisions map[uint64]bool
	// HTAPLanes is the column-lane enablement found in the log (KindHTAPLane
	// records; the latest per table wins). Open seeds the engine's lane
	// registry from it so the HTAP manager re-enables lanes after recovery.
	HTAPLanes map[ts.TableID]HTAPLaneMeta
}

// pendingResolve is a settled prepare awaiting replay at its CID position.
type pendingResolve struct {
	cid ts.CID
	ops []wal.Op
}

// recover rebuilds the table space from the checkpoint (if any) and the log,
// returning the recovered commit timestamp. Recovered state lives entirely
// in the table space: after a restart no snapshot exists, so every row's
// single post-image is exactly what MVCC requires.
//
// Two passes over the log: the first collects two-phase-commit records —
// a commit-resolve's write set (from its prepare) must replay at its CID
// position among the commit groups, but the resolve record itself may sit
// later in the log than a higher-CID group (it is appended after the
// participant publishes, racing with later commits' appends). The second
// pass replays groups in log order and splices each settled write set in
// ascending CID order.
func recoverInto(cat *table.Catalog, dir string) (ts.CID, *RecoverySummary, error) {
	if err := fault.Hit(FPRecover); err != nil {
		return 0, nil, err
	}
	recovered := ts.CID(0)
	ck, err := wal.ReadCheckpoint(dir)
	switch {
	case err == nil:
		recovered = ck.CID
		for _, t := range ck.Tables {
			tbl, err := cat.Restore(t.ID, t.Name)
			if err != nil {
				return 0, nil, err
			}
			for _, r := range t.Records {
				rec, err := tbl.CreateRecord(r.RID)
				if err != nil {
					return 0, nil, err
				}
				rec.InstallImage(r.Image)
			}
			tbl.EnsureNextRID(t.NextRID)
		}
	case errors.Is(err, wal.ErrNoCheckpoint):
		// Cold start or checkpoint-less log: replay everything.
	default:
		return 0, nil, err
	}

	// Pass 1: collect prepares, match resolves against them, note decisions,
	// and pick up HTAP lane enablement (latest record per table wins).
	sum := &RecoverySummary{
		InDoubt:   map[uint64][]wal.Op{},
		Decisions: map[uint64]bool{},
		HTAPLanes: map[ts.TableID]HTAPLaneMeta{},
	}
	var resolves []pendingResolve
	err = wal.ReadAll(dir, func(r *wal.Record) error {
		switch r.Kind {
		case wal.KindPrepare:
			sum.InDoubt[r.XID] = r.Ops
		case wal.KindResolve:
			ops := sum.InDoubt[r.XID]
			delete(sum.InDoubt, r.XID)
			if r.Commit && r.CID > recovered && ops != nil {
				resolves = append(resolves, pendingResolve{cid: r.CID, ops: ops})
			}
		case wal.KindDecision:
			sum.Decisions[r.XID] = r.Commit
		case wal.KindHTAPLane:
			sum.HTAPLanes[r.TableID] = HTAPLaneMeta{Spec: r.TableName, Watermark: r.CID}
		}
		return nil
	})
	if err != nil {
		return 0, nil, err
	}
	sort.Slice(resolves, func(i, j int) bool { return resolves[i].cid < resolves[j].cid })
	applyResolvesBelow := func(bound ts.CID) error {
		for len(resolves) > 0 && resolves[0].cid < bound {
			pr := resolves[0]
			resolves = resolves[1:]
			for _, op := range pr.ops {
				if err := replayOp(cat, op); err != nil {
					return fmt.Errorf("replaying resolved CID %d: %w", pr.cid, err)
				}
			}
			if pr.cid > recovered {
				recovered = pr.cid
			}
		}
		return nil
	}

	// Pass 2: multi-part commit groups replay only once every part is
	// present; parts still pending when the log ends are the torn tail of a
	// batch whose commit was never acknowledged, and are dropped by simply
	// never applying them (see wal.GroupAssembler for the full contract).
	var asm wal.GroupAssembler
	err = wal.ReadAll(dir, func(r *wal.Record) error {
		switch r.Kind {
		case wal.KindDDL:
			asm.Abandon()
			if cat.ByID(r.TableID) != nil {
				return nil // covered by the checkpoint
			}
			_, err := cat.Restore(r.TableID, r.TableName)
			return err
		case wal.KindGroup:
			if r.CID <= recovered {
				return nil // covered by the checkpoint
			}
			cid, ops, done, err := asm.Feed(r)
			if err != nil {
				return err
			}
			if !done {
				return nil
			}
			if err := applyResolvesBelow(cid); err != nil {
				return err
			}
			for _, op := range ops {
				if err := replayOp(cat, op); err != nil {
					return fmt.Errorf("replaying CID %d: %w", cid, err)
				}
			}
			if cid > recovered {
				recovered = cid
			}
		case wal.KindPrepare, wal.KindDecision, wal.KindResolve, wal.KindHTAPLane:
			asm.Abandon()
		}
		return nil
	})
	if err != nil {
		return 0, nil, err
	}
	if err := applyResolvesBelow(ts.CID(^uint64(0))); err != nil {
		return 0, nil, err
	}
	return recovered, sum, err
}

// replayOp applies one logged operation directly to the table space.
func replayOp(cat *table.Catalog, op wal.Op) error {
	tbl := cat.ByID(op.Table)
	if tbl == nil {
		return fmt.Errorf("core: log references unknown table %d", op.Table)
	}
	switch op.Op {
	case mvcc.OpInsert:
		rec, err := tbl.CreateRecord(op.RID)
		if err != nil {
			return err
		}
		rec.InstallImage(op.Payload)
		tbl.EnsureNextRID(op.RID)
		return nil
	case mvcc.OpUpdate:
		rec := tbl.Get(op.RID)
		if rec == nil {
			return fmt.Errorf("core: log updates missing record %d/%d", op.Table, op.RID)
		}
		rec.InstallImage(op.Payload)
		return nil
	case mvcc.OpDelete:
		rec := tbl.Get(op.RID)
		if rec == nil {
			return fmt.Errorf("core: log deletes missing record %d/%d", op.Table, op.RID)
		}
		rec.DropRecord()
		return nil
	default:
		return fmt.Errorf("core: log contains unknown op %d", op.Op)
	}
}

// Checkpoint serializes a transactionally consistent table-space snapshot
// and prunes the log segments it covers. The sequence is: rotate the log,
// fence on the group committer (so every record in the closed segments is
// published), snapshot at the then-current commit timestamp, write the
// checkpoint atomically, and drop the covered segments.
func (db *DB) Checkpoint() error {
	if db.log == nil {
		return ErrNoPersistence
	}
	if err := db.fail.check(); err != nil {
		return err
	}
	closedSeq, err := db.log.Rotate()
	if err != nil {
		// A failed rotation latches the WAL (see wal.Log); mirror it on the
		// engine so writers stop before piling onto a dead log.
		db.fail.enter(err)
		return err
	}
	if err := db.m.Barrier(); err != nil {
		return err
	}
	snap := db.m.AcquireSnapshot(txn.KindStatement, nil)
	defer snap.Release()
	at := snap.TS()

	ck := &wal.Checkpoint{CID: at}
	for _, tbl := range db.cat.Tables() {
		ct := wal.CheckpointTable{ID: tbl.ID, Name: tbl.Name, NextRID: tbl.MaxRID()}
		max := tbl.MaxRID()
		for rid := ts.RID(1); rid <= max; rid++ {
			img, ok := db.readRecord(tbl, rid, at, nil, nil)
			if !ok {
				continue
			}
			ct.Records = append(ct.Records, wal.CheckpointRecord{
				RID: rid, Image: append([]byte(nil), img...)})
		}
		ck.Tables = append(ck.Tables, ct)
	}
	if err := wal.WriteCheckpoint(db.persistDir, ck); err != nil {
		return err
	}
	// Re-log lane enablement into the fresh segment before pruning: the
	// checkpoint format carries no lane state, so the records must outlive
	// the segments about to be dropped.
	for tid, lane := range db.HTAPLanes() {
		if err := db.log.Append(&wal.Record{
			Kind: wal.KindHTAPLane, TableID: tid, TableName: lane.Spec, CID: lane.Watermark,
		}); err != nil {
			return err
		}
	}
	// The checkpoint covers every closed segment, but a replica still
	// catching up from disk may need some of them: the retention hook
	// reports the lowest segment sequence any replica still reads, and
	// pruning stops below it.
	through := closedSeq
	if low, ok := db.segmentRetention(); ok {
		if low == 0 {
			return nil // a bootstrapping replica needs everything
		}
		if low <= through {
			through = low - 1
		}
	}
	return wal.RemoveSegmentsThrough(db.persistDir, through)
}

// logDDL records a table creation when persistence is on.
func (db *DB) logDDL(id ts.TableID, name string) error {
	if db.log == nil {
		return nil
	}
	return db.log.Append(&wal.Record{Kind: wal.KindDDL, TableID: id, TableName: name})
}
