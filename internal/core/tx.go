package core

import (
	"fmt"

	"hybridgc/internal/mvcc"
	"hybridgc/internal/table"
	"hybridgc/internal/ts"
	"hybridgc/internal/txn"
)

// Tx is a transaction handle. Under Stmt-SI every operation acquires its own
// statement snapshot scoped to the table it touches (the scope is known from
// the "compiled plan", i.e. the call itself); under Trans-SI the snapshot
// taken at Begin covers all reads, and a declared table list both enables
// table GC for the snapshot and is enforced on access.
type Tx struct {
	db    *DB
	inner *txn.Txn
}

// Begin starts a transaction. declaredTables may be nil for Trans-SI
// transactions with unpredictable scope; Stmt-SI transactions ignore it.
func (db *DB) Begin(iso txn.Isolation, declaredTables ...ts.TableID) *Tx {
	return &Tx{db: db, inner: db.m.Begin(iso, declaredTables)}
}

// WrapTxn adapts a raw transaction to the engine's operation API. This is
// how one transaction spans the row store and the column store under the
// unified transaction manager (§2.1): create the transaction on the
// manager, run column-store operations on it directly, and row-store
// operations through the wrapper; everything commits in one group with one
// CID.
func (db *DB) WrapTxn(inner *txn.Txn) *Tx { return &Tx{db: db, inner: inner} }

// Isolation returns the transaction's isolation variant.
func (tx *Tx) Isolation() txn.Isolation { return tx.inner.Isolation() }

// SnapshotTS returns the transaction snapshot timestamp under Trans-SI, or
// the current commit timestamp under Stmt-SI (what the next statement will
// read at).
func (tx *Tx) SnapshotTS() ts.CID {
	if s := tx.inner.Snapshot(); s != nil {
		return s.TS()
	}
	return tx.db.m.CurrentTS()
}

// Commit finishes the transaction through group commit.
func (tx *Tx) Commit() error {
	_, err := tx.inner.Commit()
	return err
}

// Abort rolls the transaction back.
func (tx *Tx) Abort() { tx.inner.Abort() }

// beginStatement returns the snapshot an operation on tid reads at and a
// release function. Under Trans-SI it validates the declared scope and
// reuses the transaction snapshot.
func (tx *Tx) beginStatement(tid ts.TableID) (*txn.Snapshot, func(), error) {
	if s := tx.inner.Snapshot(); s != nil {
		if s.Killed() {
			return nil, nil, ErrSnapshotKilled
		}
		if !s.InScope(tid) {
			return nil, nil, fmt.Errorf("%w: table %d", ErrOutOfScope, tid)
		}
		return s, func() {}, nil
	}
	s := tx.db.m.AcquireSnapshot(txn.KindStatement, []ts.TableID{tid})
	return s, s.Release, nil
}

// Get returns the record image visible to the transaction.
func (tx *Tx) Get(tid ts.TableID, rid ts.RID) ([]byte, error) {
	tbl, err := tx.db.tableByID(tid)
	if err != nil {
		return nil, err
	}
	snap, release, err := tx.beginStatement(tid)
	if err != nil {
		return nil, err
	}
	defer release()
	img, ok := tx.db.readRecord(tbl, rid, snap.TS(), tx.inner.MaybeContext(), nil)
	if !ok {
		return nil, ErrRecordNotFound
	}
	tx.db.statements.Add(1)
	return img, nil
}

// Scan visits every record visible to the transaction in RID order until fn
// returns false.
func (tx *Tx) Scan(tid ts.TableID, fn func(rid ts.RID, img []byte) bool) error {
	tbl, err := tx.db.tableByID(tid)
	if err != nil {
		return err
	}
	snap, release, err := tx.beginStatement(tid)
	if err != nil {
		return err
	}
	defer release()
	at := snap.TS()
	tbl.ForEach(func(rec *table.Record) bool {
		img, ok := tx.db.readRecord(tbl, rec.Key().RID, at, tx.inner.MaybeContext(), nil)
		if !ok {
			return true
		}
		return fn(rec.Key().RID, img)
	})
	tx.db.statements.Add(1)
	return nil
}

// Insert creates a new record and returns its RID.
func (tx *Tx) Insert(tid ts.TableID, img []byte) (ts.RID, error) {
	tbl, err := tx.db.tableByID(tid)
	if err != nil {
		return 0, err
	}
	if tx.db.readOnly {
		return 0, ErrReadOnly
	}
	if err := tx.checkWriteScope(tid); err != nil {
		return 0, err
	}
	if err := tx.db.admitWrite(); err != nil {
		return 0, err
	}
	rid := tbl.AllocRID()
	rec, err := tbl.CreateRecord(rid)
	if err != nil {
		return 0, err
	}
	v := mvcc.NewVersion(mvcc.OpInsert, ts.RecordKey{Table: tid, RID: rid}, img, tx.inner.Context())
	if _, err := tx.db.space.Prepend(rec, v, tx.inner.ConflictCheck()); err != nil {
		rec.DropRecord()
		return 0, err
	}
	tx.inner.Context().Add(v)
	tx.db.statements.Add(1)
	return rid, nil
}

// Update installs a new image for an existing record.
func (tx *Tx) Update(tid ts.TableID, rid ts.RID, img []byte) error {
	return tx.write(mvcc.OpUpdate, tid, rid, img)
}

// Delete removes a record as of the transaction's commit.
func (tx *Tx) Delete(tid ts.TableID, rid ts.RID) error {
	return tx.write(mvcc.OpDelete, tid, rid, nil)
}

func (tx *Tx) write(op mvcc.OpType, tid ts.TableID, rid ts.RID, img []byte) error {
	tbl, err := tx.db.tableByID(tid)
	if err != nil {
		return err
	}
	if tx.db.readOnly {
		return ErrReadOnly
	}
	if err := tx.checkWriteScope(tid); err != nil {
		return err
	}
	if err := tx.db.admitWrite(); err != nil {
		return err
	}
	// The record must be visible to the operation's snapshot.
	snap, release, err := tx.beginStatement(tid)
	if err != nil {
		return err
	}
	_, visible := tx.db.readRecord(tbl, rid, snap.TS(), tx.inner.MaybeContext(), nil)
	release()
	if !visible {
		return ErrRecordNotFound
	}
	rec := tbl.Get(rid)
	if rec == nil {
		return ErrRecordNotFound
	}
	v := mvcc.NewVersion(op, ts.RecordKey{Table: tid, RID: rid}, img, tx.inner.Context())
	if _, err := tx.db.space.Prepend(rec, v, tx.inner.ConflictCheck()); err != nil {
		return err
	}
	tx.inner.Context().Add(v)
	tx.db.statements.Add(1)
	return nil
}

// checkWriteScope enforces the declared-table API for Trans-SI writers.
func (tx *Tx) checkWriteScope(tid ts.TableID) error {
	if s := tx.inner.Snapshot(); s != nil && !s.InScope(tid) {
		return fmt.Errorf("%w: table %d", ErrOutOfScope, tid)
	}
	return nil
}

// Exec runs fn inside a transaction, committing on success and aborting on
// error or panic. Convenience for autocommit-style callers and the TPC-C
// driver.
func (db *DB) Exec(iso txn.Isolation, declared []ts.TableID, fn func(tx *Tx) error) error {
	tx := db.Begin(iso, declared...)
	done := false
	defer func() {
		if !done {
			tx.Abort()
		}
	}()
	if err := fn(tx); err != nil {
		tx.Abort()
		done = true
		return err
	}
	if err := tx.Commit(); err != nil {
		done = true
		return err
	}
	done = true
	return nil
}
