package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// ErrFailStop reports an operation rejected because the engine has latched
// into fail-stop read-only mode after a durability failure. The wrapped cause
// is the original I/O error.
var ErrFailStop = errors.New("core: engine is in fail-stop read-only mode")

// failState is the engine's fail-stop latch. It is a standalone struct —
// rather than fields on DB — because the transaction manager's
// OnDurabilityFailure hook must be installed in Config before the DB exists;
// Open allocates the state first and shares it between the closure and the
// DB.
//
// Semantics: once any commit group fails to become durable (WAL write, flush
// or fsync error) or fails to publish after logging, no later write may be
// accepted. The WAL itself latches too (wal.ErrLogFailed), but the engine
// latch fires first and gives callers a stable, queryable error. Reads,
// cursors and Stats keep working — the recovered-on-restart state is a prefix
// of what readers can still see, and draining reads is exactly what an
// operator wants from a wounded node.
type failState struct {
	failed atomic.Bool
	mu     sync.Mutex
	cause  error
}

// enter latches fail-stop with the first cause. Idempotent.
func (f *failState) enter(cause error) {
	f.mu.Lock()
	if f.cause == nil {
		f.cause = cause
	}
	f.mu.Unlock()
	f.failed.Store(true)
}

// check returns ErrFailStop wrapping the cause when latched, nil otherwise.
// The fast path is one atomic load.
func (f *failState) check() error {
	if !f.failed.Load() {
		return nil
	}
	f.mu.Lock()
	cause := f.cause
	f.mu.Unlock()
	return fmt.Errorf("%w: %v", ErrFailStop, cause)
}

// FailStop reports whether the engine has latched into fail-stop read-only
// mode, and the original cause when it has.
func (db *DB) FailStop() (bool, error) {
	if !db.fail.failed.Load() {
		return false, nil
	}
	db.fail.mu.Lock()
	cause := db.fail.cause
	db.fail.mu.Unlock()
	return true, cause
}
