// Package core is the database engine: it assembles the table space, the
// version space, the transaction manager and HybridGC into the public API —
// an in-memory MVCC row store in the shape of the SAP HANA row store the
// paper describes, supporting statement-level and transaction-level snapshot
// isolation, long-lived cursors with incremental FETCH, declared-table
// transactions, and pluggable garbage collection.
package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"hybridgc/internal/gc"
	"hybridgc/internal/mvcc"
	"hybridgc/internal/sts"
	"hybridgc/internal/table"
	"hybridgc/internal/ts"
	"hybridgc/internal/txn"
	"hybridgc/internal/wal"
)

// Errors returned by the engine.
var (
	ErrTableNotFound  = errors.New("core: table not found")
	ErrRecordNotFound = errors.New("core: record not found")
	ErrOutOfScope     = errors.New("core: table not declared by this transaction")
	ErrCursorClosed   = errors.New("core: cursor is closed")
	ErrClosed         = errors.New("core: database closed")
	// ErrSnapshotKilled reports that the watchdog force-closed the
	// operation's snapshot because it exceeded the configured maximum age —
	// the paper's workaround for garbage collection blocked by long-lived
	// cursors or forgotten Trans-SI transactions (§1).
	ErrSnapshotKilled = errors.New("core: snapshot force-closed by watchdog")
	// ErrWriteConflict re-exports the transaction layer's conflict error.
	ErrWriteConflict = txn.ErrWriteConflict
	// ErrReadOnly reports a write on a read-only engine — a replica applying
	// a replication stream. Replicated writes enter through the Apply* path,
	// which bypasses this gate.
	ErrReadOnly = errors.New("core: database is read-only")
)

// Config tunes a DB instance.
type Config struct {
	// HashBuckets sizes the RID hash table (<=0 selects the default).
	HashBuckets int
	// Txn configures group commit.
	Txn txn.Config
	// GC sets the collectors' invocation periods; zero periods disable the
	// corresponding collector. Periodic collection only runs after StartGC.
	GC gc.Periods
	// LongLivedThreshold is the table collector's snapshot age cutoff
	// (<=0 selects the default).
	LongLivedThreshold time.Duration
	// AutoGC starts the periodic collectors immediately on Open.
	AutoGC bool
	// ForceCloseAge, when positive, arms the snapshot watchdog: cursor and
	// Trans-SI snapshots older than this are force-closed so garbage
	// collection can proceed, and the owning client's next operation fails
	// with ErrSnapshotKilled (§1's conventional workaround 2, implemented in
	// SAP HANA to handle application developers' mistakes).
	ForceCloseAge time.Duration
	// ForceClosePeriod is how often the watchdog checks (default: a quarter
	// of ForceCloseAge).
	ForceClosePeriod time.Duration
	// Persistence, when non-nil, arms write-ahead logging and checkpointing
	// (§2.1's common persistency). Open recovers the table space from the
	// directory's checkpoint and log before serving.
	Persistence *Persistence
	// CooperativeGC enables Hekaton-style cooperative collection (§6.1's
	// comparison point): readers that traverse more than
	// CooperativeThreshold versions hand the chain to a background
	// reclaimer. The paper argues this pays off less under latest-first
	// chains — readers usually stop at the head — which
	// BenchmarkAblationCooperativeGC quantifies.
	CooperativeGC bool
	// CooperativeThreshold is the traversal depth that triggers a handoff
	// (default 8).
	CooperativeThreshold int
	// ReadOnly opens the engine as a replica target: every public write path
	// (CreateTable, Insert, Update, Delete) fails with ErrReadOnly, while the
	// replication Apply* methods still mutate state. Reads, snapshots,
	// cursors and garbage collection are unaffected.
	ReadOnly bool
	// VersionBudget, when its watermarks are set, bounds the version space:
	// crossing the soft watermark triggers emergency collection, sustained
	// pressure applies writer backpressure (ErrVersionPressure after a
	// bounded wait), and crossing the hard watermark evicts the oldest
	// pinning snapshots (ErrSnapshotKilled for their owners). The graceful
	// alternative to Figure 2's unbounded growth.
	VersionBudget VersionBudget
}

// DB is one in-memory MVCC database instance.
type DB struct {
	cat    *table.Catalog
	space  *mvcc.Space
	reg    *sts.Registry
	m      *txn.Manager
	hybrid *gc.Hybrid

	statements atomic.Int64
	traversed  atomic.Int64
	killed     atomic.Int64
	closed     atomic.Bool

	log        *wal.Log
	persistDir string
	fail       *failState
	readOnly   bool

	// recovery is the two-phase-commit state found in the log at Open, nil
	// without persistence. The shard cluster consumes it to settle in-doubt
	// cross-shard transactions before serving.
	recovery *RecoverySummary

	// asm reassembles multi-part commit groups arriving over the replication
	// stream (ApplyRecord). It lives on the engine, not on the stream: a
	// reconnect resumes from the applied cursor, which may sit between the
	// parts of a group, and the buffered prefix must survive to meet the rest.
	// Single applier goroutine; no locking.
	asm wal.GroupAssembler

	// retention, when set, lower-bounds which log segments Checkpoint may
	// prune: it returns the lowest segment sequence still needed (by the
	// slowest replica) and whether a constraint exists at all.
	retentionMu sync.Mutex
	retention   func() (lowestSeg uint64, ok bool)

	// Cooperative GC plumbing: readers enqueue long chains, one worker
	// reclaims them with the current horizons. The channel is never closed
	// (readers may race with Close); the worker exits on coopQuit.
	coopCh        chan *mvcc.Chain
	coopQuit      chan struct{}
	coopThreshold int
	coopDone      chan struct{}
	coopReclaimed atomic.Int64

	watchdogStop chan struct{}
	watchdogDone chan struct{}

	// pressure is the version-budget controller, nil when unconfigured.
	pressure *pressure

	// lanes records HTAP column-lane enablement per table — seeded from
	// recovered KindHTAPLane records, extended by EnableHTAPLane, re-logged by
	// Checkpoint so segment pruning never loses them. The chunks themselves
	// are never persisted; the lane manager rebuilds them from table state.
	lanesMu sync.Mutex
	lanes   map[ts.TableID]HTAPLaneMeta
}

// HTAPLaneMeta is the durable description of one enabled HTAP column lane:
// the schema spec the migrator decodes row images with, and the chunk
// watermark last recorded for it (informational — chunks rebuild from table
// state regardless).
type HTAPLaneMeta struct {
	Spec      string
	Watermark ts.CID
}

// Open creates a database. With Persistence configured it first recovers the
// table space from the directory's checkpoint and log, then resumes logging.
func Open(cfg Config) (*DB, error) {
	space := mvcc.NewSpace(cfg.HashBuckets)
	reg := sts.NewRegistry()
	cat := table.NewCatalog()

	// The fail-stop latch is allocated before the manager because the
	// durability-failure hook goes into cfg.Txn, which NewManager consumes.
	fail := &failState{}

	var lg *wal.Log
	var persistDir string
	var recovered ts.CID
	var recoverySum *RecoverySummary
	if p := cfg.Persistence; p != nil {
		var err error
		recovered, recoverySum, err = recoverInto(cat, p.Dir)
		if err != nil {
			return nil, fmt.Errorf("core: recovery: %w", err)
		}
		lg, err = wal.Open(wal.Options{Dir: p.Dir, Sync: p.Sync})
		if err != nil {
			return nil, err
		}
		cfg.Txn.CommitLogger = &walLogger{log: lg}
		cfg.Txn.OnDurabilityFailure = fail.enter
		persistDir = p.Dir
	}

	m := txn.NewManager(space, reg, cfg.Txn)
	if recovered > 0 {
		m.SetCommitTS(recovered)
	}
	db := &DB{
		cat:        cat,
		space:      space,
		reg:        reg,
		m:          m,
		hybrid:     gc.NewHybrid(m, cfg.GC, cfg.LongLivedThreshold),
		log:        lg,
		persistDir: persistDir,
		fail:       fail,
		readOnly:   cfg.ReadOnly,
		recovery:   recoverySum,
		lanes:      make(map[ts.TableID]HTAPLaneMeta),
	}
	if recoverySum != nil {
		for tid, lane := range recoverySum.HTAPLanes {
			db.lanes[tid] = lane
		}
	}
	db.hybrid.TG.Resolver = db.partitionResolver
	if cfg.CooperativeGC {
		db.coopThreshold = cfg.CooperativeThreshold
		if db.coopThreshold <= 0 {
			db.coopThreshold = 8
		}
		db.coopCh = make(chan *mvcc.Chain, 256)
		db.coopQuit = make(chan struct{})
		db.coopDone = make(chan struct{})
		go db.cooperativeReclaimer()
	}
	if cfg.AutoGC {
		db.hybrid.Start()
	}
	if cfg.VersionBudget.enabled() {
		cfg.VersionBudget.fill()
		db.pressure = newPressure(db, cfg.VersionBudget)
	}
	if cfg.ForceCloseAge > 0 {
		period := cfg.ForceClosePeriod
		if period <= 0 {
			period = cfg.ForceCloseAge / 4
		}
		if period <= 0 {
			period = time.Millisecond
		}
		db.watchdogStop = make(chan struct{})
		db.watchdogDone = make(chan struct{})
		go db.watchdog(cfg.ForceCloseAge, period)
	}
	return db, nil
}

// watchdog force-closes cursor and Trans-SI snapshots older than maxAge.
// Statement snapshots are exempt: they end with their statement and are
// never the blocker the workaround targets.
func (db *DB) watchdog(maxAge, period time.Duration) {
	defer close(db.watchdogDone)
	tick := time.NewTicker(period)
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
			for _, s := range db.m.Monitor().Active() {
				if s.Kind() == txn.KindStatement || s.Age() < maxAge {
					continue
				}
				s.Kill()
				db.killed.Add(1)
			}
		case <-db.watchdogStop:
			return
		}
	}
}

// SnapshotsKilled returns how many snapshots the watchdog force-closed.
func (db *DB) SnapshotsKilled() int64 { return db.killed.Load() }

// cooperativeReclaimer drains chains handed over by readers and reclaims
// them against the current per-table horizon — the cooperative mechanism
// Hekaton pairs with oldest-first chains (§6.1). It deliberately runs the
// timestamp decision only; interval work stays with the scheduled SI.
func (db *DB) cooperativeReclaimer() {
	defer close(db.coopDone)
	for {
		select {
		case ch := <-db.coopCh:
			min := db.m.TableHorizon(ch.Key.Table)
			res := db.space.ReclaimBelow(ch, min)
			db.coopReclaimed.Add(int64(res.Versions))
		case <-db.coopQuit:
			return
		}
	}
}

// CooperativelyReclaimed returns how many versions reader handoffs
// reclaimed.
func (db *DB) CooperativelyReclaimed() int64 { return db.coopReclaimed.Load() }

// maybeCooperate hands a chain to the cooperative reclaimer when a read
// traversed deep enough to suggest reclaimable garbage. Non-blocking: a
// full queue drops the hint.
func (db *DB) maybeCooperate(key ts.RecordKey, steps int) {
	if db.coopCh == nil || steps < db.coopThreshold {
		return
	}
	if ch := db.space.HT.Get(key); ch != nil {
		select {
		case db.coopCh <- ch:
		default:
		}
	}
}

// Close stops garbage collection and the transaction manager. Idempotent.
func (db *DB) Close() {
	if !db.closed.CompareAndSwap(false, true) {
		return
	}
	if db.watchdogStop != nil {
		close(db.watchdogStop)
		<-db.watchdogDone
	}
	if db.pressure != nil {
		// Before hybrid.Stop: the controller calls into the collectors.
		db.pressure.close()
	}
	db.hybrid.Stop()
	if db.coopQuit != nil {
		close(db.coopQuit)
		<-db.coopDone
	}
	db.m.Close()
	if db.log != nil {
		// The manager is closed: no commit can log anymore.
		_ = db.log.Close()
	}
}

// GC returns the database's hybrid garbage collector for manual invocation
// or scheduling control.
func (db *DB) GC() *gc.Hybrid { return db.hybrid }

// Manager exposes the transaction manager (benchmarks drive alternative
// collectors through it).
func (db *DB) Manager() *txn.Manager { return db.m }

// Space exposes the version space for monitoring.
func (db *DB) Space() *mvcc.Space { return db.space }

// ReadOnly reports whether the engine rejects public writes (replica mode).
func (db *DB) ReadOnly() bool { return db.readOnly }

// WAL exposes the write-ahead log, or nil without persistence. The
// replication source subscribes to it for live tailing.
func (db *DB) WAL() *wal.Log { return db.log }

// PersistDir returns the persistence directory ("" without persistence).
func (db *DB) PersistDir() string { return db.persistDir }

// SetSegmentRetention installs (or, with nil, removes) the hook that
// lower-bounds log-segment pruning: Checkpoint keeps every segment with
// sequence >= the returned lowest-needed value while ok is true, so segment
// retention never outruns the slowest replica still catching up from disk.
func (db *DB) SetSegmentRetention(fn func() (lowestSeg uint64, ok bool)) {
	db.retentionMu.Lock()
	db.retention = fn
	db.retentionMu.Unlock()
}

// segmentRetention consults the hook.
func (db *DB) segmentRetention() (uint64, bool) {
	db.retentionMu.Lock()
	fn := db.retention
	db.retentionMu.Unlock()
	if fn == nil {
		return 0, false
	}
	return fn()
}

// CreateTable registers a new table and returns its ID. With persistence on
// the DDL is logged before the table becomes usable.
func (db *DB) CreateTable(name string) (ts.TableID, error) {
	if db.readOnly {
		return 0, ErrReadOnly
	}
	if err := db.fail.check(); err != nil {
		return 0, err
	}
	t, err := db.cat.Create(name)
	if err != nil {
		return 0, err
	}
	if err := db.logDDL(t.ID, name); err != nil {
		// The table exists in memory but not in the log: if the engine kept
		// going, a restart would lose it while commits against it survived.
		// Latch fail-stop so nothing can write to it (or anything else).
		db.fail.enter(err)
		return 0, fmt.Errorf("core: logging DDL for %q: %w", name, err)
	}
	return t.ID, nil
}

// SetTablePartitions declares a table partitioned into n parts (n >= 2):
// records map to partitions round-robin by RID, partition-pruned cursors
// can restrict their snapshot scope to partitions, and the table collector
// reclaims against per-partition horizons (§4.3's finer-granular semantic
// optimization).
func (db *DB) SetTablePartitions(tid ts.TableID, n int) error {
	tbl, err := db.tableByID(tid)
	if err != nil {
		return err
	}
	if n < 2 {
		return fmt.Errorf("core: partition count %d < 2", n)
	}
	tbl.SetPartitions(n)
	return nil
}

// TablePartitions returns a table's partition count (0 = unpartitioned or
// unknown table).
func (db *DB) TablePartitions(tid ts.TableID) int {
	if tbl := db.cat.ByID(tid); tbl != nil {
		return tbl.Partitions()
	}
	return 0
}

// PartitionOf reports a record's partition when its table is partitioned.
func (db *DB) PartitionOf(key ts.RecordKey) (ts.PartitionID, bool) {
	return db.partitionResolver(key)
}

// partitionResolver maps records of partitioned tables to their partition
// for the table collector.
func (db *DB) partitionResolver(key ts.RecordKey) (ts.PartitionID, bool) {
	tbl := db.cat.ByID(key.Table)
	if tbl == nil || tbl.Partitions() == 0 {
		return 0, false
	}
	return tbl.PartitionOf(key.RID), true
}

// TableID resolves a table name, returning 0 when absent.
func (db *DB) TableID(name string) ts.TableID {
	if t := db.cat.ByName(name); t != nil {
		return t.ID
	}
	return 0
}

// TableIDs resolves several table names at once (convenience for declaring
// transaction scopes). Unknown names yield an error.
func (db *DB) TableIDs(names ...string) ([]ts.TableID, error) {
	out := make([]ts.TableID, len(names))
	for i, n := range names {
		id := db.TableID(n)
		if id == 0 {
			return nil, fmt.Errorf("%w: %s", ErrTableNotFound, n)
		}
		out[i] = id
	}
	return out, nil
}

// Tables lists the catalog's table names in creation order.
func (db *DB) Tables() []string {
	ts := db.cat.Tables()
	out := make([]string, len(ts))
	for i, t := range ts {
		out[i] = t.Name
	}
	return out
}

func (db *DB) tableByID(id ts.TableID) (*table.Table, error) {
	if t := db.cat.ByID(id); t != nil {
		return t, nil
	}
	return nil, ErrTableNotFound
}

// TableMaxRID returns the highest RID ever allocated in the table — the
// upper bound of the dense RID range scans walk.
func (db *DB) TableMaxRID(tid ts.TableID) (ts.RID, error) {
	tbl, err := db.tableByID(tid)
	if err != nil {
		return 0, err
	}
	return tbl.MaxRID(), nil
}

// ObserveTableWrites installs fn as the table's write observer: it fires on
// every table-space mutation of a record (version-chain flag flips, image
// installs by garbage collection, drops) with the affected RID. The HTAP
// lane uses it for sticky dirty tracking over chunk-covered rows. fn runs
// under the version-chain latch — it must be cheap and must not re-enter
// the engine. nil removes the observer.
func (db *DB) ObserveTableWrites(tid ts.TableID, fn func(ts.RID)) error {
	tbl, err := db.tableByID(tid)
	if err != nil {
		return err
	}
	tbl.SetWriteObserver(fn)
	return nil
}

// RecordState probes one record's migration eligibility: ok reports the
// record exists (not a hole, not dropped); versioned reports it still has a
// version chain — some registered snapshot may need an older version, so
// the HTAP migrator must not treat its table-space image as final. For a
// settled record (ok && !versioned) img is the single retained image, the
// version every registered snapshot sees.
func (db *DB) RecordState(tid ts.TableID, rid ts.RID) (img []byte, versioned, ok bool) {
	tbl := db.cat.ByID(tid)
	if tbl == nil {
		return nil, false, false
	}
	rec := tbl.Get(rid)
	if rec == nil || rec.Dropped() {
		return nil, false, false
	}
	if rec.Versioned() {
		return nil, true, true
	}
	img = rec.Image()
	if img == nil {
		// The row's INSERT has not settled out of the version space yet and
		// the chain is gone (rolled back) — nothing visible.
		return nil, false, false
	}
	return img, false, true
}

// EnableHTAPLane durably records HTAP column-lane enablement for the table:
// the lane survives restarts via a KindHTAPLane log record (re-logged by
// every checkpoint), and HTAPLanes reports it so the lane manager can
// re-enable after recovery. Idempotent per table; the latest spec wins.
func (db *DB) EnableHTAPLane(tid ts.TableID, spec string, watermark ts.CID) error {
	if _, err := db.tableByID(tid); err != nil {
		return err
	}
	db.rememberLane(tid, spec, watermark)
	if db.log == nil {
		return nil
	}
	return db.log.Append(&wal.Record{
		Kind: wal.KindHTAPLane, TableID: tid, TableName: spec, CID: watermark,
	})
}

// rememberLane records lane enablement in memory (recovery, replication
// apply, and EnableHTAPLane all funnel through here).
func (db *DB) rememberLane(tid ts.TableID, spec string, watermark ts.CID) {
	db.lanesMu.Lock()
	db.lanes[tid] = HTAPLaneMeta{Spec: spec, Watermark: watermark}
	db.lanesMu.Unlock()
}

// HTAPLanes returns the tables with HTAP lane enablement on record —
// recovered from the log plus those enabled this run.
func (db *DB) HTAPLanes() map[ts.TableID]HTAPLaneMeta {
	db.lanesMu.Lock()
	defer db.lanesMu.Unlock()
	out := make(map[ts.TableID]HTAPLaneMeta, len(db.lanes))
	for tid, lane := range db.lanes {
		out[tid] = lane
	}
	return out
}

// Stats is a point-in-time view of the engine, covering the indicators the
// paper's evaluation plots: active versions, hash collision state,
// statement throughput input, snapshot population and the commit timestamp
// range of Figure 2.
type Stats struct {
	Statements        int64
	VersionsLive      int64
	VersionsLiveBytes int64
	VersionsCreated   int64
	VersionsReclaimed int64
	VersionsMigrated  int64
	VersionsTraversed int64
	Hash              mvcc.HashStats
	ActiveSnapshots   int
	CurrentCID        ts.CID
	GlobalHorizon     ts.CID
	// ActiveCIDRange is CurrentCID minus the oldest active snapshot
	// timestamp — the "Active Commit ID Range" indicator of Figure 2.
	ActiveCIDRange ts.CID
	Txn            txn.Stats
	GroupListLen   int
	// FailStop reports the engine latched into read-only mode after a
	// durability failure.
	FailStop bool
	// Pressure is the version-budget controller's state (zero when no
	// VersionBudget is configured).
	Pressure PressureStats
}

// Stats gathers current engine statistics.
func (db *DB) Stats() Stats {
	st := Stats{
		Statements:        db.statements.Load(),
		VersionsLive:      db.space.Live(),
		VersionsLiveBytes: db.space.LiveBytes(),
		VersionsCreated:   db.space.Created(),
		VersionsReclaimed: db.space.ReclaimedTotal(),
		VersionsMigrated:  db.space.MigratedTotal(),
		VersionsTraversed: db.traversed.Load(),
		Hash:              db.space.HT.Stats(),
		ActiveSnapshots:   db.m.Monitor().ActiveCount(),
		CurrentCID:        db.m.CurrentTS(),
		GlobalHorizon:     db.m.GlobalHorizon(),
		Txn:               db.m.Stats(),
		GroupListLen:      db.space.Groups.Len(),
	}
	if oldest, ok := db.m.Monitor().OldestTS(); ok {
		st.ActiveCIDRange = st.CurrentCID - oldest
	}
	st.FailStop = db.fail.failed.Load()
	st.Pressure = db.PressureStats()
	return st
}

// StatementCount returns the number of committed statements so far (the
// throughput numerator of Figures 12, 18 and 19).
func (db *DB) StatementCount() int64 { return db.statements.Load() }

// ReadAt resolves one record's image at an explicit snapshot timestamp,
// without registering a snapshot. The timestamp must be protected by the
// caller — either a snapshot the caller still holds, or the current commit
// timestamp — otherwise garbage collection may concurrently reshape what
// the read observes. Intended for diagnostics and the model-checking
// harness; applications read through transactions and cursors.
func (db *DB) ReadAt(tid ts.TableID, rid ts.RID, at ts.CID) ([]byte, bool) {
	tbl := db.cat.ByID(tid)
	if tbl == nil {
		return nil, false
	}
	return db.readRecord(tbl, rid, at, nil, nil)
}

// ScanCountAt counts the records visible at an explicit snapshot timestamp.
// The same protection caveat as ReadAt applies.
func (db *DB) ScanCountAt(tid ts.TableID, at ts.CID) int {
	tbl := db.cat.ByID(tid)
	if tbl == nil {
		return 0
	}
	n := 0
	tbl.ForEach(func(rec *table.Record) bool {
		if _, ok := db.readRecord(tbl, rec.Key().RID, at, nil, nil); ok {
			n++
		}
		return true
	})
	return n
}

// readRecord resolves the image of one record at snapshot timestamp at,
// following §2.2's read path: consult the is_versioned flag, traverse the
// version chain latest-first (uncommitted versions owned by own are visible
// — a transaction sees its own writes), fall back to the table-space image.
// It accounts chain traversal steps (Figure 15's metric) into the engine
// counter and the optional per-operation counter.
func (db *DB) readRecord(tbl *table.Table, rid ts.RID, at ts.CID, own *mvcc.TransContext, traversed *int64) ([]byte, bool) {
	rec := tbl.Get(rid)
	if rec == nil {
		return nil, false
	}
	if rec.Versioned() {
		if ch := db.space.HT.Get(ts.RecordKey{Table: tbl.ID, RID: rid}); ch != nil {
			v, steps := ch.VisibleAs(at, own)
			db.traversed.Add(int64(steps))
			if traversed != nil {
				*traversed += int64(steps)
			}
			db.maybeCooperate(ts.RecordKey{Table: tbl.ID, RID: rid}, steps)
			if v != nil {
				if v.Op == mvcc.OpDelete {
					return nil, false
				}
				return v.Payload, true
			}
		}
	}
	img := rec.Image()
	if img == nil {
		return nil, false
	}
	return img, true
}
