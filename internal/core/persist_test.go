package core

import (
	"errors"
	"fmt"
	"os"
	"testing"
	"time"

	"hybridgc/internal/gc"
	"hybridgc/internal/ts"
	"hybridgc/internal/txn"
	"hybridgc/internal/wal"
)

func openPersistent(t *testing.T, dir string) *DB {
	t.Helper()
	db, err := Open(Config{
		Txn:         txn.Config{SynchronousPropagation: true},
		Persistence: &Persistence{Dir: dir},
	})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestRecoveryFromLogOnly(t *testing.T) {
	dir := t.TempDir()
	db := openPersistent(t, dir)
	tid := mustCreate(t, db, "T")
	ridA := insert1(t, db, tid, "a1")
	ridB := insert1(t, db, tid, "b1")
	update1(t, db, tid, ridA, "a2")
	if err := db.Exec(txn.StmtSI, nil, func(tx *Tx) error {
		return tx.Delete(tid, ridB)
	}); err != nil {
		t.Fatal(err)
	}
	lastCID := db.Manager().CurrentTS()
	db.Close()

	db2 := openPersistent(t, dir)
	defer db2.Close()
	tid2 := db2.TableID("T")
	if tid2 != tid {
		t.Fatalf("recovered table ID %d != %d", tid2, tid)
	}
	if got, err := get1(t, db2, tid2, ridA); err != nil || got != "a2" {
		t.Fatalf("recovered read = %q, %v", got, err)
	}
	if _, err := get1(t, db2, tid2, ridB); !errors.Is(err, ErrRecordNotFound) {
		t.Fatalf("deleted record resurrected: %v", err)
	}
	if ts := db2.Manager().CurrentTS(); ts != lastCID {
		t.Fatalf("recovered commit timestamp %d, want %d", ts, lastCID)
	}
	// New inserts must not collide with recovered RIDs.
	ridC := insert1(t, db2, tid2, "c1")
	if ridC == ridA || ridC == ridB {
		t.Fatalf("RID allocator collided: %d", ridC)
	}
}

func TestRecoveryAfterAbortLosesNothing(t *testing.T) {
	dir := t.TempDir()
	db := openPersistent(t, dir)
	tid := mustCreate(t, db, "T")
	keep := insert1(t, db, tid, "keep")
	// An aborted transaction must leave no trace in the log.
	tx := db.Begin(txn.StmtSI)
	if _, err := tx.Insert(tid, []byte("doomed")); err != nil {
		t.Fatal(err)
	}
	tx.Abort()
	db.Close()

	db2 := openPersistent(t, dir)
	defer db2.Close()
	if got, _ := get1(t, db2, db2.TableID("T"), keep); got != "keep" {
		t.Fatalf("committed row lost: %q", got)
	}
	n := db2.ScanCountAt(db2.TableID("T"), db2.Manager().CurrentTS())
	if n != 1 {
		t.Fatalf("recovered %d rows, want 1 (abort leaked)", n)
	}
}

func TestCheckpointPrunesLogAndRecovers(t *testing.T) {
	dir := t.TempDir()
	db := openPersistent(t, dir)
	tid := mustCreate(t, db, "T")
	var rids []ts.RID
	for i := 0; i < 10; i++ {
		rids = append(rids, insert1(t, db, tid, fmt.Sprintf("v%d", i)))
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Pre-checkpoint segments are gone; post-checkpoint work lands in new ones.
	segs, err := wal.Segments(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range segs {
		fi, _ := os.Stat(s.Path)
		if fi.Size() > 0 {
			t.Fatalf("segment %s not pruned after checkpoint", s.Path)
		}
	}
	update1(t, db, tid, rids[0], "updated-after-ckpt")
	db.Close()

	db2 := openPersistent(t, dir)
	defer db2.Close()
	tid2 := db2.TableID("T")
	if got, _ := get1(t, db2, tid2, rids[0]); got != "updated-after-ckpt" {
		t.Fatalf("post-checkpoint update lost: %q", got)
	}
	if got, _ := get1(t, db2, tid2, rids[9]); got != "v9" {
		t.Fatalf("checkpointed row lost: %q", got)
	}
}

func TestCheckpointWithoutPersistenceFails(t *testing.T) {
	db := openTest(t, Config{})
	if err := db.Checkpoint(); !errors.Is(err, ErrNoPersistence) {
		t.Fatalf("Checkpoint on memory-only DB = %v", err)
	}
}

func TestRecoveryIgnoresTornTail(t *testing.T) {
	dir := t.TempDir()
	db := openPersistent(t, dir)
	tid := mustCreate(t, db, "T")
	rid := insert1(t, db, tid, "good")
	update1(t, db, tid, rid, "better")
	db.Close()

	// Tear the log's tail: the last record is cut mid-payload, as if the
	// process died during the write.
	segs, _ := wal.Segments(dir)
	last := segs[len(segs)-1].Path
	b, _ := os.ReadFile(last)
	if err := os.WriteFile(last, b[:len(b)-2], 0o644); err != nil {
		t.Fatal(err)
	}
	db2 := openPersistent(t, dir)
	defer db2.Close()
	// The torn record (the update) is lost; the insert survives.
	if got, _ := get1(t, db2, db2.TableID("T"), rid); got != "good" {
		t.Fatalf("recovered %q, want pre-torn image", got)
	}
}

func TestRecoveryVersionSpaceStartsEmpty(t *testing.T) {
	dir := t.TempDir()
	db := openPersistent(t, dir)
	tid := mustCreate(t, db, "T")
	rid := insert1(t, db, tid, "v")
	for i := 0; i < 5; i++ {
		update1(t, db, tid, rid, fmt.Sprintf("v%d", i))
	}
	db.Close()

	db2 := openPersistent(t, dir)
	defer db2.Close()
	if live := db2.Space().Live(); live != 0 {
		t.Fatalf("recovered version space holds %d versions, want 0 (single post-image per row)", live)
	}
	if got, _ := get1(t, db2, db2.TableID("T"), rid); got != "v4" {
		t.Fatalf("latest image = %q", got)
	}
}

func TestPersistentWorkloadWithGCSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(Config{
		Txn:                txn.Config{SynchronousPropagation: true},
		Persistence:        &Persistence{Dir: dir},
		GC:                 gc.Periods{GT: time.Millisecond, TG: 2 * time.Millisecond, SI: 4 * time.Millisecond},
		LongLivedThreshold: time.Millisecond,
		AutoGC:             true,
	})
	if err != nil {
		t.Fatal(err)
	}
	tid := mustCreate(t, db, "T")
	var rids []ts.RID
	for i := 0; i < 8; i++ {
		rids = append(rids, insert1(t, db, tid, "init"))
	}
	want := make(map[ts.RID]string)
	for round := 0; round < 30; round++ {
		rid := rids[round%len(rids)]
		img := fmt.Sprintf("r%d", round)
		update1(t, db, tid, rid, img)
		want[rid] = img
		if round%10 == 5 {
			if err := db.Checkpoint(); err != nil {
				t.Fatal(err)
			}
		}
	}
	db.Close()

	db2 := openPersistent(t, dir)
	defer db2.Close()
	for _, rid := range rids {
		img, _ := get1(t, db2, db2.TableID("T"), rid)
		expect := want[rid]
		if expect == "" {
			expect = "init"
		}
		if img != expect {
			t.Fatalf("rid %d recovered %q, want %q", rid, img, expect)
		}
	}
}

func TestDDLAfterCheckpointRecovered(t *testing.T) {
	dir := t.TempDir()
	db := openPersistent(t, dir)
	mustCreate(t, db, "BEFORE")
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	after := mustCreate(t, db, "AFTER")
	rid := insert1(t, db, after, "row")
	db.Close()

	db2 := openPersistent(t, dir)
	defer db2.Close()
	if db2.TableID("BEFORE") == 0 {
		t.Fatal("checkpointed table lost")
	}
	got := db2.TableID("AFTER")
	if got != after {
		t.Fatalf("post-checkpoint table ID %d, want %d", got, after)
	}
	if img, _ := get1(t, db2, got, rid); img != "row" {
		t.Fatalf("post-checkpoint row = %q", img)
	}
	// The recovered catalog allocates fresh IDs past the recovered ones.
	third := mustCreate(t, db2, "THIRD")
	if third <= after {
		t.Fatalf("new table ID %d collides with recovered %d", third, after)
	}
}
