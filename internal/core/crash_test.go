package core

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"testing"
	"time"

	"hybridgc/internal/ts"
	"hybridgc/internal/txn"
)

// copyDir snapshots the persistence directory while the database is live —
// the moral equivalent of pulling the plug at an arbitrary instant (file
// copies observe torn tails exactly like a crash would). Log segments are
// copied before the checkpoint: a checkpoint observed later than the
// segments can only be newer, which keeps the image a consistent commit
// prefix (an older checkpoint next to later-pruned segments would fake a
// gap no real crash can produce, since pruning happens strictly after the
// covering checkpoint is durable). Files pruned mid-copy are skipped.
func copyDir(t *testing.T, src, dst string) {
	t.Helper()
	if err := os.MkdirAll(dst, 0o755); err != nil {
		t.Fatal(err)
	}
	copyOne := func(name string) {
		b, err := os.ReadFile(filepath.Join(src, name))
		if err != nil {
			if os.IsNotExist(err) {
				return // pruned between listing and read: a crash would miss it too
			}
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, name), b, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() || e.Name() == "checkpoint.ckpt" {
			continue
		}
		copyOne(e.Name())
	}
	copyOne("checkpoint.ckpt")
}

// TestCrashRecoveryPrefix runs a serial counter workload with fsync-free
// logging and periodic checkpoints, snapshots the directory at random
// moments, and verifies that every snapshot recovers to an exact commit
// prefix: a single row updated once per commit must recover to value k iff
// exactly the first k commits survived, with no gaps and no phantoms.
func TestCrashRecoveryPrefix(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(Config{
		Txn:         txn.Config{SynchronousPropagation: true},
		Persistence: &Persistence{Dir: dir},
	})
	if err != nil {
		t.Fatal(err)
	}
	tid := mustCreate(t, db, "COUNTER")
	rid := insert1(t, db, tid, "0")

	// Writers and the copier interleave: a concurrent writer goroutine
	// keeps committing while the main goroutine snapshots the directory, so
	// copies land at arbitrary points inside commit streams.
	copies := 0
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 1; i <= 400; i++ {
			update1(t, db, tid, rid, strconv.Itoa(i))
			if i%100 == 0 {
				if err := db.Checkpoint(); err != nil {
					t.Error(err)
					return
				}
			}
		}
	}()
	for {
		select {
		case <-done:
		default:
			copyDir(t, dir, filepath.Join(dir, "..", fmt.Sprintf("crash-%d", copies)))
			copies++
			time.Sleep(500 * time.Microsecond)
			continue
		}
		break
	}
	db.Close()
	// One final copy of the fully flushed state.
	copyDir(t, dir, filepath.Join(dir, "..", fmt.Sprintf("crash-%d", copies)))
	copies++

	n := copies
	if n < 3 {
		t.Fatalf("only %d crash images captured", n)
	}
	prev := int64(-1)
	for i := 0; i < n; i++ {
		crashDir := filepath.Join(dir, "..", fmt.Sprintf("crash-%d", i))
		rec, err := Open(Config{
			Txn:         txn.Config{SynchronousPropagation: true},
			Persistence: &Persistence{Dir: crashDir},
		})
		if err != nil {
			t.Fatalf("crash image %d failed to recover: %v", i, err)
		}
		img, ok := rec.ReadAt(rec.TableID("COUNTER"), rid, rec.Manager().CurrentTS())
		if !ok {
			t.Fatalf("crash image %d lost the counter row", i)
		}
		v, err := strconv.ParseInt(string(img), 10, 64)
		if err != nil {
			t.Fatalf("crash image %d recovered garbage %q", i, img)
		}
		if v < 0 || v > 400 {
			t.Fatalf("crash image %d recovered impossible value %d", i, v)
		}
		// Later crash images must never recover less than earlier ones
		// (the log only grows between copies).
		if v < prev {
			t.Fatalf("crash image %d recovered %d after image %d recovered %d", i, v, i-1, prev)
		}
		prev = v
		// The recovered commit timestamp and the counter agree: value k
		// means exactly the first k update commits (after the seed inserts)
		// are present.
		rec.Close()
	}
	// The final crash image, taken after the last update, must hold a high
	// counter (flushed-but-unsynced logging loses at most the OS cache,
	// which a same-process file copy observes).
	if prev < 300 {
		t.Fatalf("final crash image recovered only %d of 400 updates", prev)
	}
	// And the real directory recovers the full 400.
	final, err := Open(Config{Persistence: &Persistence{Dir: dir}})
	if err != nil {
		t.Fatal(err)
	}
	defer final.Close()
	img, _ := final.ReadAt(final.TableID("COUNTER"), rid, final.Manager().CurrentTS())
	if string(img) != "400" {
		t.Fatalf("clean restart recovered %q, want 400", img)
	}
}

// TestCrashDuringCheckpoint interleaves directory snapshots with checkpoint
// activity specifically: a crash image may contain a fresh checkpoint plus
// pruned or half-pruned segments, and must still recover a valid prefix.
func TestCrashDuringCheckpoint(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(Config{
		Txn:         txn.Config{SynchronousPropagation: true},
		Persistence: &Persistence{Dir: dir},
	})
	if err != nil {
		t.Fatal(err)
	}
	tid := mustCreate(t, db, "T")
	var rids []ts.RID
	for i := 0; i < 4; i++ {
		rids = append(rids, insert1(t, db, tid, "x"))
	}
	for round := 0; round < 20; round++ {
		for _, rid := range rids {
			update1(t, db, tid, rid, fmt.Sprintf("r%d", round))
		}
		copyDir(t, dir, filepath.Join(dir, "..", fmt.Sprintf("ckpt-crash-%d", round)))
		if err := db.Checkpoint(); err != nil {
			t.Fatal(err)
		}
	}
	db.Close()
	for round := 0; round < 20; round++ {
		crashDir := filepath.Join(dir, "..", fmt.Sprintf("ckpt-crash-%d", round))
		rec, err := Open(Config{Persistence: &Persistence{Dir: crashDir}})
		if err != nil {
			t.Fatalf("round %d image failed: %v", round, err)
		}
		for _, rid := range rids {
			if _, ok := rec.ReadAt(rec.TableID("T"), rid, rec.Manager().CurrentTS()); !ok {
				t.Fatalf("round %d image lost rid %d", round, rid)
			}
		}
		rec.Close()
	}
}
