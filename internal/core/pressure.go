package core

import (
	"errors"
	"sync/atomic"
	"time"

	"hybridgc/internal/metrics"
	"hybridgc/internal/txn"
)

// ErrVersionPressure reports a write rejected because the version space is
// over its soft watermark, emergency collection could not relieve it, and the
// writer's bounded wait expired. Transient: callers should retry (see Retry),
// since collection or snapshot eviction usually frees space shortly after.
var ErrVersionPressure = errors.New("core: write rejected under version-space pressure")

// VersionBudget bounds the version space. The paper's Figure 2 shows the
// unbounded alternative: when GC is blocked, the version count and commit
// timestamp range grow without limit until the system becomes unavailable.
// With a budget configured the engine degrades gracefully instead, along an
// escalation ladder (see pressure).
type VersionBudget struct {
	// Soft is the live-version count that triggers emergency out-of-period
	// collection. <=0 derives Hard/2.
	Soft int64
	// Hard is the live-version count the engine defends by force: sustained
	// pressure above Soft applies writer backpressure, and crossing Hard
	// evicts the oldest pinning snapshots (generalizing the age-only
	// ForceCloseAge watchdog). <=0 derives 2*Soft.
	Hard int64
	// MaxWriterWait bounds how long a writer blocks under backpressure before
	// failing with ErrVersionPressure. <=0 selects 100ms.
	MaxWriterWait time.Duration
	// EvictAfter bounds how long the engine tolerates sustained over-soft
	// pressure before evicting pinning snapshots even below the hard
	// watermark. Backpressure freezes the live count wherever rejection set
	// in — possibly below Hard — so without a time bound an unreachable hard
	// watermark would mean rejecting writes forever while a forgotten cursor
	// pins the space. <=0 selects 2*MaxWriterWait.
	EvictAfter time.Duration
}

func (b *VersionBudget) enabled() bool { return b.Soft > 0 || b.Hard > 0 }

func (b *VersionBudget) fill() {
	if b.Soft <= 0 {
		b.Soft = b.Hard / 2
	}
	if b.Hard <= 0 {
		b.Hard = 2 * b.Soft
	}
	if b.Hard < b.Soft {
		b.Hard = b.Soft
	}
	if b.MaxWriterWait <= 0 {
		b.MaxWriterWait = 100 * time.Millisecond
	}
	if b.EvictAfter <= 0 {
		b.EvictAfter = 2 * b.MaxWriterWait
	}
}

// PressureLevel is the degradation ladder's current rung.
type PressureLevel int32

const (
	// PressureNormal: live versions below the soft watermark.
	PressureNormal PressureLevel = iota
	// PressureSoft: the soft watermark was crossed; emergency out-of-period
	// collection is running but still keeping up.
	PressureSoft
	// PressureBackpressure: emergency collection cannot get back under the
	// soft watermark (something pins the versions); writers wait, bounded,
	// then fail with ErrVersionPressure.
	PressureBackpressure
	// PressureEvict: the hard watermark was crossed; the controller
	// force-closes the oldest pinning snapshots (ErrSnapshotKilled for their
	// owners) until collection can free space again.
	PressureEvict
)

// String implements fmt.Stringer.
func (l PressureLevel) String() string {
	switch l {
	case PressureSoft:
		return "soft"
	case PressureBackpressure:
		return "backpressure"
	case PressureEvict:
		return "evict"
	default:
		return "normal"
	}
}

// PressureStats is a point-in-time view of the version-budget controller.
type PressureStats struct {
	Enabled     bool
	Level       PressureLevel
	Soft        int64
	Hard        int64
	Live        int64
	Utilization float64 // Live / Hard
	// Ladder transition and action counters.
	SoftTrips     int64 // normal -> over-soft transitions
	Emergencies   int64 // emergency out-of-period collection passes
	Backpressured int64 // writers that entered the bounded wait
	Rejected      int64 // writers that timed out with ErrVersionPressure
	Evicted       int64 // snapshots force-closed by the controller
}

// pressure is the version-budget controller: a small feedback loop that
// watches Space.Live() against the watermarks and walks the escalation
// ladder. Writers consult it through admit() — one atomic load while the
// level is below backpressure.
type pressure struct {
	db     *DB
	budget VersionBudget
	level  atomic.Int32

	counters      *metrics.CounterSet
	softTrips     *metrics.Counter
	emergencies   *metrics.Counter
	backpressured *metrics.Counter
	rejected      *metrics.Counter
	evicted       *metrics.Counter

	kick chan struct{}
	stop chan struct{}
	done chan struct{}

	// overSoftSince marks when live last crossed the soft watermark upward;
	// zero while below. Controller-goroutine only.
	overSoftSince time.Time
}

func newPressure(db *DB, budget VersionBudget) *pressure {
	cs := metrics.NewCounterSet()
	p := &pressure{
		db:            db,
		budget:        budget,
		counters:      cs,
		softTrips:     cs.Get("pressure.soft_trips"),
		emergencies:   cs.Get("pressure.emergencies"),
		backpressured: cs.Get("pressure.backpressured"),
		rejected:      cs.Get("pressure.rejected"),
		evicted:       cs.Get("pressure.evicted"),
		kick:          make(chan struct{}, 1),
		stop:          make(chan struct{}),
		done:          make(chan struct{}),
	}
	go p.run()
	return p
}

func (p *pressure) close() {
	close(p.stop)
	<-p.done
}

// run is the controller loop: evaluate on a period derived from the writer
// wait bound (so a blocked writer sees several relief attempts before its
// deadline) and immediately when a waiting writer kicks.
func (p *pressure) run() {
	defer close(p.done)
	period := p.budget.MaxWriterWait / 4
	if period < time.Millisecond {
		period = time.Millisecond
	}
	tick := time.NewTicker(period)
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
			p.evaluate()
		case <-p.kick:
			p.evaluate()
		case <-p.stop:
			return
		}
	}
}

// evaluate walks the ladder once: measure, relieve, re-measure, set level.
func (p *pressure) evaluate() {
	live := p.db.space.Live()
	if live < p.budget.Soft {
		p.level.Store(int32(PressureNormal))
		p.overSoftSince = time.Time{}
		return
	}
	if p.overSoftSince.IsZero() {
		p.overSoftSince = time.Now()
		p.softTrips.Inc()
	}
	p.level.Store(int32(PressureSoft))

	// Rung 1: emergency out-of-period collection — GT first (§4.4's order),
	// then the interval collector, which reclaims in-between versions even
	// while an old snapshot pins the horizon.
	p.emergencies.Inc()
	p.db.hybrid.RunGT()
	p.db.hybrid.RunSI()
	live = p.db.space.Live()
	if live < p.budget.Soft {
		p.level.Store(int32(PressureNormal))
		p.overSoftSince = time.Time{}
		return
	}

	// Rung 3: eviction. Collection alone cannot help — something is pinning
	// the versions. Triggered by the hard watermark, or by sustained
	// over-soft pressure: backpressure freezes the live count wherever
	// rejection set in, so waiting for Hard alone could mean rejecting
	// writes forever below it. Evict the oldest non-statement snapshots
	// (cursors, forgotten Trans-SI transactions) until collection frees
	// enough or no candidates remain.
	if live >= p.budget.Hard || time.Since(p.overSoftSince) >= p.budget.EvictAfter {
		for live >= p.budget.Soft {
			victim := p.oldestPinning()
			if victim == nil {
				break
			}
			victim.Kill()
			p.evicted.Inc()
			p.db.killed.Add(1)
			p.db.hybrid.RunGT()
			p.db.hybrid.RunSI()
			live = p.db.space.Live()
		}
	}

	switch {
	case live < p.budget.Soft:
		p.level.Store(int32(PressureNormal))
		p.overSoftSince = time.Time{}
	case live < p.budget.Hard:
		// Rung 2: sustained over-soft despite collection — writers wait.
		p.level.Store(int32(PressureBackpressure))
	default:
		p.level.Store(int32(PressureEvict))
	}
}

// oldestPinning picks the eviction victim: the oldest active cursor or
// Trans-SI snapshot. Statement snapshots are exempt — they end with their
// statement and are never the long-lived blocker (§1).
func (p *pressure) oldestPinning() *txn.Snapshot {
	var victim *txn.Snapshot
	for _, s := range p.db.m.Monitor().Active() {
		if s.Kind() == txn.KindStatement || s.Released() || s.Killed() {
			continue
		}
		if victim == nil || s.Started().Before(victim.Started()) {
			victim = s
		}
	}
	return victim
}

// admit gates one write. The fast path (below soft, no backpressure) is two
// atomic loads. Between soft and hard the write is admitted but the
// controller is kicked, making soft-watermark detection event-driven instead
// of waiting for the next tick — a write burst cannot race past the ladder
// between evaluations. At or above hard, or under declared backpressure, the
// writer waits with exponential backoff and fails with ErrVersionPressure
// when MaxWriterWait expires first.
func (p *pressure) admit() error {
	if PressureLevel(p.level.Load()) < PressureBackpressure {
		live := p.db.space.Live()
		if live < p.budget.Soft {
			return nil
		}
		select {
		case p.kick <- struct{}{}:
		default:
		}
		if live < p.budget.Hard {
			return nil
		}
	}
	p.backpressured.Inc()
	deadline := time.Now().Add(p.budget.MaxWriterWait)
	backoff := 250 * time.Microsecond
	for {
		select {
		case p.kick <- struct{}{}:
		default:
		}
		time.Sleep(backoff)
		if PressureLevel(p.level.Load()) < PressureBackpressure && p.db.space.Live() < p.budget.Hard {
			return nil
		}
		if !time.Now().Before(deadline) {
			p.rejected.Inc()
			return ErrVersionPressure
		}
		if backoff *= 2; backoff > 4*time.Millisecond {
			backoff = 4 * time.Millisecond
		}
	}
}

// stats snapshots the controller state.
func (p *pressure) stats() PressureStats {
	live := p.db.space.Live()
	st := PressureStats{
		Enabled:       true,
		Level:         PressureLevel(p.level.Load()),
		Soft:          p.budget.Soft,
		Hard:          p.budget.Hard,
		Live:          live,
		SoftTrips:     p.softTrips.Value(),
		Emergencies:   p.emergencies.Value(),
		Backpressured: p.backpressured.Value(),
		Rejected:      p.rejected.Value(),
		Evicted:       p.evicted.Value(),
	}
	if p.budget.Hard > 0 {
		st.Utilization = float64(live) / float64(p.budget.Hard)
	}
	return st
}

// admitWrite is the engine's write gate: fail-stop first (a wounded node
// accepts no writes at all), then the version-budget controller.
func (db *DB) admitWrite() error {
	if err := db.fail.check(); err != nil {
		return err
	}
	if db.pressure != nil {
		return db.pressure.admit()
	}
	return nil
}

// PressureStats returns the version-budget controller's state; the zero
// value (Enabled=false) when no VersionBudget is configured.
func (db *DB) PressureStats() PressureStats {
	if db.pressure == nil {
		return PressureStats{}
	}
	return db.pressure.stats()
}
