package core

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"hybridgc/internal/gc"
	"hybridgc/internal/ts"
	"hybridgc/internal/txn"
)

func openTest(t *testing.T, cfg Config) *DB {
	t.Helper()
	cfg.Txn.SynchronousPropagation = true
	db, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(db.Close)
	return db
}

func mustCreate(t *testing.T, db *DB, name string) ts.TableID {
	t.Helper()
	id, err := db.CreateTable(name)
	if err != nil {
		t.Fatal(err)
	}
	return id
}

// autocommit helpers.
func insert1(t *testing.T, db *DB, tid ts.TableID, img string) ts.RID {
	t.Helper()
	var rid ts.RID
	err := db.Exec(txn.StmtSI, nil, func(tx *Tx) error {
		var err error
		rid, err = tx.Insert(tid, []byte(img))
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	return rid
}

func update1(t *testing.T, db *DB, tid ts.TableID, rid ts.RID, img string) {
	t.Helper()
	if err := db.Exec(txn.StmtSI, nil, func(tx *Tx) error {
		return tx.Update(tid, rid, []byte(img))
	}); err != nil {
		t.Fatal(err)
	}
}

func get1(t *testing.T, db *DB, tid ts.TableID, rid ts.RID) (string, error) {
	t.Helper()
	var img []byte
	err := db.Exec(txn.StmtSI, nil, func(tx *Tx) error {
		var err error
		img, err = tx.Get(tid, rid)
		return err
	})
	return string(img), err
}

func TestCRUDRoundTrip(t *testing.T) {
	db := openTest(t, Config{})
	tid := mustCreate(t, db, "T")
	rid := insert1(t, db, tid, "hello")

	if got, err := get1(t, db, tid, rid); err != nil || got != "hello" {
		t.Fatalf("get = %q,%v", got, err)
	}
	update1(t, db, tid, rid, "world")
	if got, _ := get1(t, db, tid, rid); got != "world" {
		t.Fatalf("get after update = %q", got)
	}
	if err := db.Exec(txn.StmtSI, nil, func(tx *Tx) error {
		return tx.Delete(tid, rid)
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := get1(t, db, tid, rid); !errors.Is(err, ErrRecordNotFound) {
		t.Fatalf("get after delete = %v, want ErrRecordNotFound", err)
	}
}

func TestTableAPI(t *testing.T) {
	db := openTest(t, Config{})
	mustCreate(t, db, "A")
	mustCreate(t, db, "B")
	if db.TableID("A") == 0 || db.TableID("NOPE") != 0 {
		t.Fatal("TableID lookups broken")
	}
	ids, err := db.TableIDs("A", "B")
	if err != nil || len(ids) != 2 {
		t.Fatalf("TableIDs = %v, %v", ids, err)
	}
	if _, err := db.TableIDs("A", "MISSING"); !errors.Is(err, ErrTableNotFound) {
		t.Fatalf("missing table = %v", err)
	}
	names := db.Tables()
	if len(names) != 2 || names[0] != "A" || names[1] != "B" {
		t.Fatalf("Tables = %v", names)
	}
	// Operations against unknown tables fail cleanly.
	err = db.Exec(txn.StmtSI, nil, func(tx *Tx) error {
		_, err := tx.Get(999, 1)
		return err
	})
	if !errors.Is(err, ErrTableNotFound) {
		t.Fatalf("unknown table = %v", err)
	}
}

func TestStmtSISeesLatestCommitted(t *testing.T) {
	db := openTest(t, Config{})
	tid := mustCreate(t, db, "T")
	rid := insert1(t, db, tid, "v1")

	tx := db.Begin(txn.StmtSI)
	defer tx.Abort()
	if img, err := tx.Get(tid, rid); err != nil || string(img) != "v1" {
		t.Fatalf("first stmt read %q,%v", img, err)
	}
	// Another transaction commits in between; a later statement of the same
	// Stmt-SI transaction sees the new value.
	update1(t, db, tid, rid, "v2")
	if img, err := tx.Get(tid, rid); err != nil || string(img) != "v2" {
		t.Fatalf("second stmt read %q,%v — Stmt-SI must see latest", img, err)
	}
}

func TestTransSISeesFixedSnapshot(t *testing.T) {
	db := openTest(t, Config{})
	tid := mustCreate(t, db, "T")
	rid := insert1(t, db, tid, "v1")

	tx := db.Begin(txn.TransSI)
	defer tx.Abort()
	update1(t, db, tid, rid, "v2")
	if img, err := tx.Get(tid, rid); err != nil || string(img) != "v1" {
		t.Fatalf("Trans-SI read %q,%v — must see begin-time snapshot", img, err)
	}
}

func TestDeclaredTableScopeEnforced(t *testing.T) {
	db := openTest(t, Config{})
	a := mustCreate(t, db, "A")
	b := mustCreate(t, db, "B")
	ridA := insert1(t, db, a, "a")
	ridB := insert1(t, db, b, "b")

	tx := db.Begin(txn.TransSI, a)
	defer tx.Abort()
	if _, err := tx.Get(a, ridA); err != nil {
		t.Fatalf("declared read failed: %v", err)
	}
	if _, err := tx.Get(b, ridB); !errors.Is(err, ErrOutOfScope) {
		t.Fatalf("undeclared read = %v, want ErrOutOfScope", err)
	}
	if err := tx.Update(b, ridB, []byte("x")); !errors.Is(err, ErrOutOfScope) {
		t.Fatalf("undeclared write = %v, want ErrOutOfScope", err)
	}
}

func TestAbortRollsBackEverything(t *testing.T) {
	db := openTest(t, Config{})
	tid := mustCreate(t, db, "T")
	keep := insert1(t, db, tid, "keep")

	tx := db.Begin(txn.StmtSI)
	rid, err := tx.Insert(tid, []byte("temp"))
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Update(tid, keep, []byte("dirty")); err != nil {
		t.Fatal(err)
	}
	tx.Abort()

	if _, err := get1(t, db, tid, rid); !errors.Is(err, ErrRecordNotFound) {
		t.Fatalf("aborted insert visible: %v", err)
	}
	if got, _ := get1(t, db, tid, keep); got != "keep" {
		t.Fatalf("aborted update leaked: %q", got)
	}
}

func TestWriteConflictSurfaces(t *testing.T) {
	db := openTest(t, Config{})
	tid := mustCreate(t, db, "T")
	rid := insert1(t, db, tid, "v0")
	t1 := db.Begin(txn.StmtSI)
	defer t1.Abort()
	t2 := db.Begin(txn.StmtSI)
	defer t2.Abort()
	if err := t1.Update(tid, rid, []byte("a")); err != nil {
		t.Fatal(err)
	}
	if err := t2.Update(tid, rid, []byte("b")); !errors.Is(err, ErrWriteConflict) {
		t.Fatalf("conflict = %v", err)
	}
}

func TestMultiStatementTxnSeesOwnWrites(t *testing.T) {
	db := openTest(t, Config{})
	tid := mustCreate(t, db, "T")
	tx := db.Begin(txn.StmtSI)
	rid, err := tx.Insert(tid, []byte("mine"))
	if err != nil {
		t.Fatal(err)
	}
	// Note: reads run at statement snapshots, which cannot see uncommitted
	// writes; HANA resolves this through own-write visibility. We model the
	// common case: updating one's own insert is allowed by conflict rules.
	if err := tx.Update(tid, rid, []byte("mine2")); err != nil {
		t.Fatalf("update own insert: %v", err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if got, _ := get1(t, db, tid, rid); got != "mine2" {
		t.Fatalf("committed own-write chain = %q", got)
	}
}

func TestScan(t *testing.T) {
	db := openTest(t, Config{})
	tid := mustCreate(t, db, "T")
	for i := 0; i < 10; i++ {
		insert1(t, db, tid, fmt.Sprintf("row%d", i))
	}
	db.Exec(txn.StmtSI, nil, func(tx *Tx) error { return tx.Delete(tid, 4) })

	var got []string
	err := db.Exec(txn.StmtSI, nil, func(tx *Tx) error {
		return tx.Scan(tid, func(rid ts.RID, img []byte) bool {
			got = append(got, string(img))
			return true
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 9 {
		t.Fatalf("scanned %d rows, want 9: %v", len(got), got)
	}
	if got[0] != "row0" || got[3] != "row4" {
		t.Fatalf("scan order wrong: %v", got)
	}
}

func TestCursorPinsSnapshotAcrossFetches(t *testing.T) {
	db := openTest(t, Config{})
	tid := mustCreate(t, db, "T")
	var rids []ts.RID
	for i := 0; i < 20; i++ {
		rids = append(rids, insert1(t, db, tid, fmt.Sprintf("v%d", i)))
	}
	cur, err := db.OpenCursor(tid)
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Close()

	first, st, err := cur.Fetch(5)
	if err != nil || len(first) != 5 {
		t.Fatalf("fetch = %d rows, %v", len(first), err)
	}
	if st.Rows != 5 || st.Duration < 0 {
		t.Fatalf("stats = %+v", st)
	}
	// Concurrent updates and inserts do not affect the cursor's view.
	for _, rid := range rids {
		update1(t, db, tid, rid, "changed")
	}
	insert1(t, db, tid, "late")
	var rest [][]byte
	for !cur.Exhausted() {
		rows, _, err := cur.Fetch(6)
		if err != nil {
			t.Fatal(err)
		}
		rest = append(rest, rows...)
	}
	if got := len(first) + len(rest); got != 20 {
		t.Fatalf("cursor saw %d rows, want the 20 at open time", got)
	}
	for i, row := range rest {
		if want := fmt.Sprintf("v%d", i+5); string(row) != want {
			t.Fatalf("row %d = %q, want %q", i, row, want)
		}
	}
	cur.Close()
	if _, _, err := cur.Fetch(1); !errors.Is(err, ErrCursorClosed) {
		t.Fatalf("fetch after close = %v", err)
	}
}

func TestCursorTraversalGrowsWithoutGC(t *testing.T) {
	db := openTest(t, Config{})
	tid := mustCreate(t, db, "T")
	for i := 0; i < 50; i++ {
		insert1(t, db, tid, "x")
	}
	cur, err := db.OpenCursor(tid)
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Close()
	_, before, _ := cur.Fetch(25)

	// Pile up versions behind the cursor.
	for round := 0; round < 5; round++ {
		for rid := ts.RID(1); rid <= 50; rid++ {
			update1(t, db, tid, rid, "y")
		}
	}
	_, after, _ := cur.Fetch(25)
	if after.Traversed <= before.Traversed {
		t.Fatalf("traversal must grow with garbage: before=%d after=%d",
			before.Traversed, after.Traversed)
	}
}

func TestStatsIndicators(t *testing.T) {
	db := openTest(t, Config{})
	tid := mustCreate(t, db, "T")
	rid := insert1(t, db, tid, "a")
	cur, _ := db.OpenCursor(tid)
	defer cur.Close()
	for i := 0; i < 5; i++ {
		update1(t, db, tid, rid, "b")
	}
	st := db.Stats()
	if st.VersionsLive != 6 || st.VersionsCreated != 6 {
		t.Fatalf("versions live=%d created=%d", st.VersionsLive, st.VersionsCreated)
	}
	if st.ActiveSnapshots != 1 {
		t.Fatalf("active snapshots = %d", st.ActiveSnapshots)
	}
	if st.ActiveCIDRange != st.CurrentCID-cur.SnapshotTS() {
		t.Fatalf("ActiveCIDRange = %d", st.ActiveCIDRange)
	}
	if st.Statements == 0 || st.GroupListLen == 0 || st.Hash.Chains != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestAutoGCEndToEnd(t *testing.T) {
	db := openTest(t, Config{
		GC:                 gc.Periods{GT: 2 * time.Millisecond, TG: 4 * time.Millisecond, SI: 6 * time.Millisecond},
		LongLivedThreshold: time.Millisecond,
		AutoGC:             true,
	})
	tid := mustCreate(t, db, "T")
	rid := insert1(t, db, tid, "v0")
	for i := 1; i <= 200; i++ {
		update1(t, db, tid, rid, fmt.Sprintf("v%d", i))
	}
	deadline := time.Now().Add(time.Second)
	for db.Space().Live() != 0 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if live := db.Space().Live(); live != 0 {
		t.Fatalf("AutoGC left %d versions", live)
	}
	if got, _ := get1(t, db, tid, rid); got != "v200" {
		t.Fatalf("read = %q", got)
	}
}

func TestConcurrentWorkloadWithGC(t *testing.T) {
	db := openTest(t, Config{
		GC:                 gc.Periods{GT: time.Millisecond, TG: 3 * time.Millisecond, SI: 5 * time.Millisecond},
		LongLivedThreshold: 2 * time.Millisecond,
		AutoGC:             true,
	})
	tid := mustCreate(t, db, "T")
	const nRecords = 16
	var rids []ts.RID
	for i := 0; i < nRecords; i++ {
		rids = append(rids, insert1(t, db, tid, "init"))
	}
	var wg sync.WaitGroup
	errCh := make(chan error, 64)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 150; i++ {
				rid := rids[(w*4+i)%nRecords]
				err := db.Exec(txn.StmtSI, nil, func(tx *Tx) error {
					return tx.Update(tid, rid, []byte(fmt.Sprintf("w%d-%d", w, i)))
				})
				if err != nil && !errors.Is(err, ErrWriteConflict) {
					errCh <- err
					return
				}
			}
		}(w)
	}
	// A reader goroutine with a long cursor.
	wg.Add(1)
	go func() {
		defer wg.Done()
		cur, err := db.OpenCursor(tid)
		if err != nil {
			errCh <- err
			return
		}
		defer cur.Close()
		for !cur.Exhausted() {
			if _, _, err := cur.Fetch(2); err != nil {
				errCh <- err
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	// Every record still readable.
	for _, rid := range rids {
		if _, err := get1(t, db, tid, rid); err != nil {
			t.Fatalf("rid %d unreadable: %v", rid, err)
		}
	}
}

func TestWatchdogForceClosesCursor(t *testing.T) {
	db := openTest(t, Config{
		GC:                 gc.Periods{GT: 2 * time.Millisecond},
		AutoGC:             true,
		ForceCloseAge:      30 * time.Millisecond,
		ForceClosePeriod:   5 * time.Millisecond,
		LongLivedThreshold: time.Millisecond,
	})
	tid := mustCreate(t, db, "T")
	rid := insert1(t, db, tid, "v0")
	cur, err := db.OpenCursor(tid)
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Close()

	// Pile up versions the cursor blocks.
	for i := 0; i < 50; i++ {
		update1(t, db, tid, rid, fmt.Sprintf("v%d", i+1))
	}
	// Wait for the watchdog to kill the cursor, then for GT to drain.
	deadline := time.Now().Add(time.Second)
	for db.SnapshotsKilled() == 0 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if db.SnapshotsKilled() == 0 {
		t.Fatal("watchdog never fired")
	}
	if _, _, err := cur.Fetch(1); !errors.Is(err, ErrSnapshotKilled) {
		t.Fatalf("fetch after kill = %v, want ErrSnapshotKilled", err)
	}
	for db.Space().Live() != 0 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if live := db.Space().Live(); live != 0 {
		t.Fatalf("GC still blocked after force close: %d live versions", live)
	}
}

func TestWatchdogForceClosesTransSI(t *testing.T) {
	db := openTest(t, Config{
		ForceCloseAge:    20 * time.Millisecond,
		ForceClosePeriod: 4 * time.Millisecond,
	})
	tid := mustCreate(t, db, "T")
	rid := insert1(t, db, tid, "v0")

	tx := db.Begin(txn.TransSI)
	defer tx.Abort()
	if _, err := tx.Get(tid, rid); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(time.Second)
	for db.SnapshotsKilled() == 0 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if _, err := tx.Get(tid, rid); !errors.Is(err, ErrSnapshotKilled) {
		t.Fatalf("Trans-SI read after kill = %v, want ErrSnapshotKilled", err)
	}
	// Statement snapshots are exempt: autocommit ops keep working.
	if got, err := get1(t, db, tid, rid); err != nil || got != "v0" {
		t.Fatalf("statement read = %q,%v", got, err)
	}
}

func TestReadAtAndScanCountAt(t *testing.T) {
	db := openTest(t, Config{})
	tid := mustCreate(t, db, "T")
	rid := insert1(t, db, tid, "v1")
	at1 := db.Manager().CurrentTS()
	update1(t, db, tid, rid, "v2")
	insert1(t, db, tid, "other")
	at2 := db.Manager().CurrentTS()

	if img, ok := db.ReadAt(tid, rid, at1); !ok || string(img) != "v1" {
		t.Fatalf("ReadAt(at1) = %q,%v", img, ok)
	}
	if img, ok := db.ReadAt(tid, rid, at2); !ok || string(img) != "v2" {
		t.Fatalf("ReadAt(at2) = %q,%v", img, ok)
	}
	if _, ok := db.ReadAt(999, rid, at2); ok {
		t.Fatal("ReadAt on unknown table must miss")
	}
	if n := db.ScanCountAt(tid, at1); n != 1 {
		t.Fatalf("ScanCountAt(at1) = %d", n)
	}
	if n := db.ScanCountAt(tid, at2); n != 2 {
		t.Fatalf("ScanCountAt(at2) = %d", n)
	}
	if n := db.ScanCountAt(999, at2); n != 0 {
		t.Fatal("ScanCountAt on unknown table must be 0")
	}
}

// TestPartitionLevelTableGC exercises §4.3's partition-granular extension:
// a long-lived cursor pruned to one partition must, once the table
// collector scopes it to per-partition trackers, stop blocking reclamation
// of the table's other partitions.
func TestPartitionLevelTableGC(t *testing.T) {
	db := openTest(t, Config{LongLivedThreshold: time.Nanosecond})
	tid := mustCreate(t, db, "T")
	if err := db.SetTablePartitions(tid, 4); err != nil {
		t.Fatal(err)
	}
	if err := db.SetTablePartitions(tid, 1); err == nil {
		t.Fatal("partition count below 2 must fail")
	}
	var rids []ts.RID
	for i := 0; i < 8; i++ {
		rids = append(rids, insert1(t, db, tid, "v0"))
	}
	// Cursor pruned to partition 0 (rids 1 and 5 under round-robin).
	cur, err := db.OpenPartitionCursor(tid, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Close()
	pin := cur.SnapshotTS()

	for round := 1; round <= 5; round++ {
		for _, rid := range rids {
			update1(t, db, tid, rid, fmt.Sprintf("v%d", round))
		}
	}
	// GT is blocked (the cursor pins the union minimum).
	gt := db.GC().RunGT()
	if live := db.Space().Live(); live < 40 {
		t.Fatalf("GT must be blocked, live=%d (reclaimed %d)", live, gt.Versions)
	}
	// TG scopes the cursor to (T, partition 0) and reclaims the other
	// partitions' versions entirely.
	time.Sleep(time.Millisecond)
	st := db.GC().RunTG()
	if st.SnapshotsScoped != 1 {
		t.Fatalf("scoped %d snapshots, want 1", st.SnapshotsScoped)
	}
	if st.Versions == 0 {
		t.Fatal("TG reclaimed nothing")
	}
	// Partition 0's history must survive for the pinned cursor...
	if img, ok := db.ReadAt(tid, rids[0], pin); !ok || string(img) != "v0" {
		t.Fatalf("pinned partition-0 read = %q,%v", img, ok)
	}
	// ...while other partitions collapsed to their latest image.
	if img, ok := db.ReadAt(tid, rids[1], db.Manager().CurrentTS()); !ok || string(img) != "v5" {
		t.Fatalf("partition-1 read = %q,%v", img, ok)
	}
	ch := db.Space().HT.Get(ts.RecordKey{Table: tid, RID: rids[1]})
	if ch != nil && ch.Len() > 0 {
		t.Fatalf("partition-1 chain not reclaimed: %d versions", ch.Len())
	}
	ch0 := db.Space().HT.Get(ts.RecordKey{Table: tid, RID: rids[0]})
	if ch0 == nil || ch0.Len() < 5 {
		t.Fatal("partition-0 history must survive")
	}
	// Cursor fetch sees only partition 0's pinned rows.
	rows, _, err := cur.Fetch(100)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("pruned cursor returned %d rows, want 2", len(rows))
	}
	for _, r := range rows {
		if string(r) != "v0" {
			t.Fatalf("pinned row = %q", r)
		}
	}
	// After the cursor closes, everything drains.
	cur.Close()
	db.GC().RunGT()
	if live := db.Space().Live(); live != 0 {
		t.Fatalf("live after close = %d", live)
	}
}

func TestPartitionCursorValidation(t *testing.T) {
	db := openTest(t, Config{})
	tid := mustCreate(t, db, "T")
	if _, err := db.OpenPartitionCursor(tid, 0); err == nil {
		t.Fatal("partition cursor over unpartitioned table must fail")
	}
	if err := db.SetTablePartitions(tid, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := db.OpenPartitionCursor(tid); err == nil {
		t.Fatal("empty partition set must fail")
	}
	if _, err := db.OpenPartitionCursor(tid, 5); err == nil {
		t.Fatal("out-of-range partition must fail")
	}
}

func TestCooperativeGC(t *testing.T) {
	db := openTest(t, Config{CooperativeGC: true, CooperativeThreshold: 4})
	tid := mustCreate(t, db, "T")
	rid := insert1(t, db, tid, "v0")
	for i := 1; i <= 20; i++ {
		update1(t, db, tid, rid, fmt.Sprintf("v%d", i))
	}
	// No scheduled GC runs; a read traverses one step (latest-first: the
	// newest version is at the head), so no handoff fires — the paper's
	// §6.1 point about latest-first ordering.
	if got, _ := get1(t, db, tid, rid); got != "v20" {
		t.Fatalf("read = %q", got)
	}
	if n := db.CooperativelyReclaimed(); n != 0 {
		t.Fatalf("head read must not trigger cooperation, reclaimed %d", n)
	}
	// A deep read (an old cursor walking past the threshold) does trigger
	// the handoff, and the chain collapses once no snapshot needs it.
	cur, err := db.OpenCursor(tid)
	if err != nil {
		t.Fatal(err)
	}
	pin := cur.SnapshotTS()
	_ = pin
	cur.Close() // release immediately: nothing pins the chain anymore
	// Bury the visible version so a low-timestamp read walks deep.
	old := db.Manager().CurrentTS() - 15
	if _, ok := db.ReadAt(tid, rid, old); !ok {
		t.Fatal("deep read missed")
	}
	deadline := time.Now().Add(time.Second)
	for db.CooperativelyReclaimed() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if db.CooperativelyReclaimed() == 0 {
		t.Fatal("deep traversal never triggered cooperative reclamation")
	}
	if got, _ := get1(t, db, tid, rid); got != "v20" {
		t.Fatalf("read after cooperative GC = %q", got)
	}
}
