package core

import (
	"hybridgc/internal/ts"
	"hybridgc/internal/wal"
)

// Two-phase-commit participant hooks. The protocol itself lives in
// internal/shard; the engine only contributes durability: a participant's
// write set goes into its own log as a KindPrepare record, the local publish
// then skips the group committer's WAL record (the write set is already
// durable), and the coordinator stamps the published CID into a KindResolve
// record so recovery can replay the write set at its correct position among
// the surrounding commit groups.

// PendingOps snapshots the transaction's write set in execution order as WAL
// operations — the payload of a two-phase-commit prepare record.
func (tx *Tx) PendingOps() []wal.Op {
	tc := tx.inner.MaybeContext()
	if tc == nil {
		return nil
	}
	vs := tc.Versions()
	ops := make([]wal.Op, 0, len(vs))
	for _, v := range vs {
		ops = append(ops, wal.Op{Op: v.Op, Table: v.Key.Table, RID: v.Key.RID, Payload: v.Payload})
	}
	return ops
}

// CommitCID commits the transaction through group commit and returns the CID
// its versions published under.
func (tx *Tx) CommitCID() (ts.CID, error) { return tx.inner.Commit() }

// MarkPrepared flags the transaction's write set as already durable: the
// group committer will publish it without logging a KindGroup record.
func (tx *Tx) MarkPrepared() { tx.inner.Context().SetSkipLog() }

// AppendPrepare logs a participant's prepared write set under the
// distributed transaction ID. A no-op without persistence.
func (db *DB) AppendPrepare(xid uint64, ops []wal.Op) error {
	if db.log == nil {
		return nil
	}
	if err := db.fail.check(); err != nil {
		return err
	}
	return db.log.Append(&wal.Record{Kind: wal.KindPrepare, XID: xid, Ops: ops})
}

// AppendDecision logs the coordinator's verdict for a distributed
// transaction. A no-op without persistence.
func (db *DB) AppendDecision(xid uint64, commit bool) error {
	if db.log == nil {
		return nil
	}
	if err := db.fail.check(); err != nil {
		return err
	}
	return db.log.Append(&wal.Record{Kind: wal.KindDecision, XID: xid, Commit: commit})
}

// AppendResolve settles a prepared transaction in this participant's log. On
// commit, cid is the CID the write set published under; on abort it is
// ignored. A no-op without persistence.
func (db *DB) AppendResolve(xid uint64, commit bool, cid ts.CID) error {
	if db.log == nil {
		return nil
	}
	if err := db.fail.check(); err != nil {
		return err
	}
	return db.log.Append(&wal.Record{Kind: wal.KindResolve, XID: xid, Commit: commit, CID: cid})
}

// Recovery returns the two-phase-commit state found in the log at Open (nil
// without persistence): in-doubt prepared write sets and, on a coordinator
// shard, the decision records.
func (db *DB) Recovery() *RecoverySummary { return db.recovery }

// CommitRecovered installs an in-doubt prepared write set whose verdict
// recovery determined to be commit. It runs before the engine serves traffic
// (no snapshot exists), so the images go straight into the table space like
// replayed log records, published under a fresh CID which is returned for
// the settling KindResolve record.
func (db *DB) CommitRecovered(ops []wal.Op) (ts.CID, error) {
	for _, op := range ops {
		if err := replayOp(db.cat, op); err != nil {
			return 0, err
		}
	}
	cid := db.m.CurrentTS() + 1
	db.m.SetCommitTS(cid)
	return cid, nil
}

// EnterFailStop latches the engine into fail-stop read-only mode with the
// given cause — the shard coordinator's reaction to a durability failure
// mid-protocol, mirroring what the group committer does on a commit-log
// failure.
func (db *DB) EnterFailStop(cause error) { db.fail.enter(cause) }
