package core

import (
	"errors"
	"time"
)

// IsTransient reports whether err is a retriable contention failure: a
// write-write conflict under first-committer-wins, or a write rejected under
// version-space pressure (ErrVersionPressure). Both clear on their own —
// the conflicting transaction finishes, the ladder frees version space — so
// retrying with backoff is the right response. Durability failures
// (ErrFailStop) and everything else are not transient: retrying them cannot
// succeed.
func IsTransient(err error) bool {
	return errors.Is(err, ErrWriteConflict) || errors.Is(err, ErrVersionPressure)
}

// Retry runs fn up to attempts times, sleeping an exponentially growing
// backoff (starting at base, capped at 100ms) between tries, and retries only
// while IsTransient reports the error retriable. It returns nil on the first
// success, a non-transient error immediately, and the last transient error
// once attempts are exhausted. fn must be safe to re-run from scratch: any
// state it populates has to be reset at its top.
func Retry(attempts int, base time.Duration, fn func() error) error {
	if attempts < 1 {
		attempts = 1
	}
	if base <= 0 {
		base = time.Millisecond
	}
	var err error
	wait := base
	for i := 0; i < attempts; i++ {
		if err = fn(); err == nil || !IsTransient(err) {
			return err
		}
		if i < attempts-1 {
			time.Sleep(wait)
			if wait *= 2; wait > 100*time.Millisecond {
				wait = 100 * time.Millisecond
			}
		}
	}
	return err
}
