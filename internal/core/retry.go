package core

import (
	"errors"
	"math/rand"
	"time"
)

// Connectivity sentinels. They originate in the network client (and any
// future shard router), not the engine, but live here next to the engine's
// transient set so IsTransient — and every retry loop written against it —
// classifies local and remote failures through one table.
var (
	// ErrUnavailable reports that the service cannot be reached right now:
	// the client's pool lost its connections and is redialing with backoff.
	// Transient — the caller should back off and retry.
	ErrUnavailable = errors.New("core: service unavailable")
	// ErrTxnBroken reports that the connection carrying an open remote
	// transaction died before the transaction reached COMMIT. The server
	// aborts the transaction when its connection ends, so nothing of the
	// attempt survives and re-running the whole transaction from scratch is
	// safe. Transient.
	ErrTxnBroken = errors.New("core: transaction connection broken")
	// ErrCommitAmbiguous reports a connection failure while a COMMIT was in
	// flight: the request may or may not have reached the server, so the
	// transaction may or may not be durable. NOT transient — blindly
	// re-running the transaction could apply it twice. Callers must
	// reconcile (re-read, or use an idempotency key) before retrying.
	ErrCommitAmbiguous = errors.New("core: commit outcome unknown")
	// ErrReplicaBehind reports a replica that has not yet applied up to the
	// session's consistency token (and declined to wait any longer). The
	// data the session needs exists — on the primary and on any caught-up
	// replica — so the right response is to retry the read elsewhere, not to
	// fail the request. Transient.
	ErrReplicaBehind = errors.New("core: replica behind session token")
)

// IsTransient reports whether err is a retriable failure: a write-write
// conflict under first-committer-wins, a write rejected under version-space
// pressure (ErrVersionPressure), a remote transaction torn down by a
// connection failure before commit (ErrTxnBroken), or a temporarily
// unreachable service (ErrUnavailable), or a replica lagging the session's
// consistency token (ErrReplicaBehind). All clear on their own — the
// conflicting transaction finishes, the ladder frees version space, the
// client redials, the replica catches up or another endpoint serves the
// read — so retrying with backoff is the right response.
// Durability failures (ErrFailStop), ambiguous commits (ErrCommitAmbiguous)
// and everything else are not transient: retrying them cannot safely
// succeed.
func IsTransient(err error) bool {
	return errors.Is(err, ErrWriteConflict) || errors.Is(err, ErrVersionPressure) ||
		errors.Is(err, ErrTxnBroken) || errors.Is(err, ErrUnavailable) ||
		errors.Is(err, ErrReplicaBehind)
}

// maxRetryWait caps Retry's exponential backoff ceiling.
const maxRetryWait = 100 * time.Millisecond

// Test seams: deterministic tests replace the sleeper and the jitter source
// (see retry_test.go). Production always uses real sleeps and shared
// math/rand — Retry runs concurrently on many goroutines and the whole point
// of the jitter is that they draw different values.
var (
	retrySleep  = time.Sleep
	retryJitter = rand.Float64
)

// RetryHooks overrides the sleep and jitter functions used by Retry and
// Backoff, returning a restore func. Tests use it to make backoff schedules
// deterministic and instantaneous; jitter must return values in [0, 1).
func RetryHooks(sleep func(time.Duration), jitter func() float64) (restore func()) {
	oldS, oldJ := retrySleep, retryJitter
	retrySleep, retryJitter = sleep, jitter
	return func() { retrySleep, retryJitter = oldS, oldJ }
}

// Backoff computes the wait after failure number attempt (0-based): full
// jitter over an exponentially growing window starting at base and capped at
// max. Centralized here so the client pool's redial schedule and Retry share
// one jitter discipline and one test seam.
func Backoff(attempt int, base, max time.Duration) time.Duration {
	if base <= 0 {
		base = time.Millisecond
	}
	if max <= 0 {
		max = time.Second
	}
	window := base
	for i := 0; i < attempt && window < max; i++ {
		window *= 2
	}
	if window > max {
		window = max
	}
	return time.Duration(retryJitter() * float64(window))
}

// BackoffSleep sleeps through the test seam (sleeps collapse to zero under
// RetryHooks), so the client redialer's schedule is testable too.
func BackoffSleep(d time.Duration) { retrySleep(d) }

// Retry runs fn up to attempts times and retries only while IsTransient
// reports the error retriable. Between tries it sleeps a full-jitter
// backoff: a uniformly random fraction of an exponentially growing window
// (starting at base, capped at 100ms). Deterministic doubling would make
// concurrent retriers that conflicted together retry together — and
// conflict again, as a thundering herd; the jitter decorrelates them. It
// returns nil on the first success, a non-transient error immediately, and
// the last transient error once attempts are exhausted. fn must be safe to
// re-run from scratch: any state it populates has to be reset at its top.
func Retry(attempts int, base time.Duration, fn func() error) error {
	if attempts < 1 {
		attempts = 1
	}
	if base <= 0 {
		base = time.Millisecond
	}
	var err error
	window := base
	for i := 0; i < attempts; i++ {
		if err = fn(); err == nil || !IsTransient(err) {
			return err
		}
		if i < attempts-1 {
			retrySleep(time.Duration(retryJitter() * float64(window)))
			if window *= 2; window > maxRetryWait {
				window = maxRetryWait
			}
		}
	}
	return err
}
