package core

import (
	"errors"
	"testing"
	"time"
)

func TestIsTransient(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{ErrWriteConflict, true},
		{ErrVersionPressure, true},
		{ErrTxnBroken, true},
		{ErrUnavailable, true},
		{ErrCommitAmbiguous, false},
		{ErrFailStop, false},
		{ErrRecordNotFound, false},
		{errors.New("other"), false},
		{nil, false},
	}
	for _, c := range cases {
		if got := IsTransient(c.err); got != c.want {
			t.Errorf("IsTransient(%v) = %v, want %v", c.err, got, c.want)
		}
	}
}

func TestRetryStopsOnSuccess(t *testing.T) {
	calls := 0
	err := Retry(5, time.Microsecond, func() error {
		calls++
		if calls < 3 {
			return ErrWriteConflict
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Fatalf("err=%v calls=%d, want nil after 3", err, calls)
	}
}

func TestRetryGivesUpAfterAttempts(t *testing.T) {
	calls := 0
	err := Retry(4, time.Microsecond, func() error {
		calls++
		return ErrVersionPressure
	})
	if !errors.Is(err, ErrVersionPressure) || calls != 4 {
		t.Fatalf("err=%v calls=%d, want ErrVersionPressure after 4", err, calls)
	}
}

func TestRetryDoesNotRetryNonTransient(t *testing.T) {
	calls := 0
	hard := errors.New("disk on fire")
	err := Retry(5, time.Microsecond, func() error {
		calls++
		return hard
	})
	if !errors.Is(err, hard) || calls != 1 {
		t.Fatalf("err=%v calls=%d, want the hard error after 1 call", err, calls)
	}
}

// TestRetryFullJitterSchedule pins the backoff discipline through the test
// seam: the window doubles from base up to the 100ms cap, and each sleep is
// the jitter fraction of the current window — not the deterministic doubling
// that synchronized concurrent retriers into thundering herds.
func TestRetryFullJitterSchedule(t *testing.T) {
	var slept []time.Duration
	restore := RetryHooks(
		func(d time.Duration) { slept = append(slept, d) },
		func() float64 { return 0.5 },
	)
	defer restore()

	err := Retry(6, 20*time.Millisecond, func() error { return ErrWriteConflict })
	if !errors.Is(err, ErrWriteConflict) {
		t.Fatal(err)
	}
	// Windows: 20, 40, 80, 100 (capped), 100 → sleeps at jitter 0.5.
	want := []time.Duration{
		10 * time.Millisecond, 20 * time.Millisecond, 40 * time.Millisecond,
		50 * time.Millisecond, 50 * time.Millisecond,
	}
	if len(slept) != len(want) {
		t.Fatalf("slept %d times (%v), want %d", len(slept), slept, len(want))
	}
	for i := range want {
		if slept[i] != want[i] {
			t.Fatalf("sleep %d = %v, want %v (schedule %v)", i, slept[i], want[i], slept)
		}
	}
}

// TestRetryJitterDecorrelates: two retriers drawing different jitter values
// sleep different schedules even with identical base and failures.
func TestRetryJitterDecorrelates(t *testing.T) {
	run := func(j float64) []time.Duration {
		var slept []time.Duration
		restore := RetryHooks(
			func(d time.Duration) { slept = append(slept, d) },
			func() float64 { return j },
		)
		defer restore()
		_ = Retry(3, 10*time.Millisecond, func() error { return ErrWriteConflict })
		return slept
	}
	a, b := run(0.25), run(0.75)
	if len(a) != 2 || len(b) != 2 {
		t.Fatalf("schedules %v / %v, want 2 sleeps each", a, b)
	}
	for i := range a {
		if a[i] == b[i] {
			t.Fatalf("sleep %d identical (%v) for different jitter draws", i, a[i])
		}
	}
}

// TestBackoffWindowGrowth pins the shared Backoff helper: full jitter over a
// doubling window, capped at max.
func TestBackoffWindowGrowth(t *testing.T) {
	restore := RetryHooks(func(time.Duration) {}, func() float64 { return 1.0 })
	defer restore()
	base, max := 50*time.Millisecond, 400*time.Millisecond
	want := []time.Duration{50, 100, 200, 400, 400, 400}
	for i, w := range want {
		if got := Backoff(i, base, max); got != w*time.Millisecond {
			t.Fatalf("Backoff(%d) = %v, want %v", i, got, w*time.Millisecond)
		}
	}
}
