package core

import (
	"errors"
	"testing"
	"time"
)

func TestIsTransient(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{ErrWriteConflict, true},
		{ErrVersionPressure, true},
		{ErrFailStop, false},
		{ErrRecordNotFound, false},
		{errors.New("other"), false},
		{nil, false},
	}
	for _, c := range cases {
		if got := IsTransient(c.err); got != c.want {
			t.Errorf("IsTransient(%v) = %v, want %v", c.err, got, c.want)
		}
	}
}

func TestRetryStopsOnSuccess(t *testing.T) {
	calls := 0
	err := Retry(5, time.Microsecond, func() error {
		calls++
		if calls < 3 {
			return ErrWriteConflict
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Fatalf("err=%v calls=%d, want nil after 3", err, calls)
	}
}

func TestRetryGivesUpAfterAttempts(t *testing.T) {
	calls := 0
	err := Retry(4, time.Microsecond, func() error {
		calls++
		return ErrVersionPressure
	})
	if !errors.Is(err, ErrVersionPressure) || calls != 4 {
		t.Fatalf("err=%v calls=%d, want ErrVersionPressure after 4", err, calls)
	}
}

func TestRetryDoesNotRetryNonTransient(t *testing.T) {
	calls := 0
	hard := errors.New("disk on fire")
	err := Retry(5, time.Microsecond, func() error {
		calls++
		return hard
	})
	if !errors.Is(err, hard) || calls != 1 {
		t.Fatalf("err=%v calls=%d, want the hard error after 1 call", err, calls)
	}
}
