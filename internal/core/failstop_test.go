package core

import (
	"errors"
	"testing"

	"hybridgc/internal/fault"
	"hybridgc/internal/ts"
	"hybridgc/internal/txn"
	"hybridgc/internal/wal"
)

// TestFailStopOnCommitLogError injects an fsync failure under a committing
// group and asserts the contract of fail-stop mode: the commit that could
// not be logged fails, no later write is accepted (the unlogged state must
// not grow), reads keep working, and a reopen recovers exactly the acked
// prefix.
func TestFailStopOnCommitLogError(t *testing.T) {
	defer fault.Reset()
	dir := t.TempDir()
	db, err := Open(Config{
		Txn:         txn.Config{SynchronousPropagation: true},
		Persistence: &Persistence{Dir: dir, Sync: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	tid, err := db.CreateTable("t")
	if err != nil {
		t.Fatal(err)
	}
	var rid ts.RID
	err = db.Exec(txn.StmtSI, nil, func(tx *Tx) error {
		var err error
		rid, err = tx.Insert(tid, []byte("acked"))
		return err
	})
	if err != nil {
		t.Fatal(err)
	}

	// FPAppend fails before any byte reaches the segment, so the rejected
	// commit must be wholly absent after recovery. (FPSync would leave the
	// flushed record in the OS cache — the commit-ambiguity case the crash
	// matrix covers.)
	fault.Enable(wal.FPAppend)
	err = db.Exec(txn.StmtSI, nil, func(tx *Tx) error {
		_, err := tx.Insert(tid, []byte("lost"))
		return err
	})
	if !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("commit under failing append: %v, want injected error", err)
	}
	fault.Reset()

	// The engine must now be fail-stopped: writes rejected even though the
	// injected fault is gone (the WAL state after a failed sync is unknown).
	failed, cause := db.FailStop()
	if !failed || cause == nil {
		t.Fatalf("FailStop() = %v, %v after logging failure", failed, cause)
	}
	err = db.Exec(txn.StmtSI, nil, func(tx *Tx) error {
		_, err := tx.Insert(tid, []byte("after"))
		return err
	})
	if !errors.Is(err, ErrFailStop) {
		t.Fatalf("write on fail-stopped engine: %v, want ErrFailStop", err)
	}
	if _, err := db.CreateTable("t2"); !errors.Is(err, ErrFailStop) {
		t.Fatalf("DDL on fail-stopped engine: %v, want ErrFailStop", err)
	}
	if err := db.Checkpoint(); !errors.Is(err, ErrFailStop) {
		t.Fatalf("checkpoint on fail-stopped engine: %v, want ErrFailStop", err)
	}
	if !db.Stats().FailStop {
		t.Fatal("Stats().FailStop not set")
	}
	// Reads still drain: the acked row is visible, the rolled-back one not.
	tx := db.Begin(txn.StmtSI)
	if img, err := tx.Get(tid, rid); err != nil || string(img) != "acked" {
		t.Fatalf("read on fail-stopped engine: %q, %v", img, err)
	}
	tx.Abort()
	db.Close()

	// Recovery sees the acked prefix only.
	db2, err := Open(Config{
		Txn:         txn.Config{SynchronousPropagation: true},
		Persistence: &Persistence{Dir: dir, Sync: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if failed, _ := db2.FailStop(); failed {
		t.Fatal("fresh Open inherited fail-stop state")
	}
	tid2 := db2.TableID("t")
	tx2 := db2.Begin(txn.StmtSI)
	defer tx2.Abort()
	if img, err := tx2.Get(tid2, rid); err != nil || string(img) != "acked" {
		t.Fatalf("recovered read: %q, %v", img, err)
	}
	n := 0
	if err := tx2.Scan(tid2, func(ts.RID, []byte) bool { n++; return true }); err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("recovered %d rows, want 1 (the unlogged insert must not survive)", n)
	}
}

// TestFailStopOnPublishFailure covers the subtler half of the contract: the
// group is durably in the log, but publication fails. The CID is burned — a
// restart will replay the logged group — so the engine must fail-stop rather
// than reuse the CID for a later group (replay would then drop that group).
func TestFailStopOnPublishFailure(t *testing.T) {
	defer fault.Reset()
	dir := t.TempDir()
	db, err := Open(Config{
		Txn:         txn.Config{SynchronousPropagation: true},
		Persistence: &Persistence{Dir: dir, Sync: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	tid, err := db.CreateTable("t")
	if err != nil {
		t.Fatal(err)
	}

	fault.Enable(txn.FPPublish, fault.Once())
	err = db.Exec(txn.StmtSI, nil, func(tx *Tx) error {
		_, err := tx.Insert(tid, []byte("logged-not-published"))
		return err
	})
	if !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("commit under publish failure: %v, want injected error", err)
	}
	fault.Reset()
	if failed, _ := db.FailStop(); !failed {
		t.Fatal("publish failure did not fail-stop the engine")
	}
	err = db.Exec(txn.StmtSI, nil, func(tx *Tx) error {
		_, err := tx.Insert(tid, []byte("after"))
		return err
	})
	if !errors.Is(err, ErrFailStop) {
		t.Fatalf("write after publish failure: %v, want ErrFailStop", err)
	}
	db.Close()

	// The logged-but-unpublished group is in the log; recovery replays it.
	// That is correct: the client got an error, so either outcome (present
	// or absent) is permitted for an unacknowledged commit — but the row
	// must be a consistent, committed image, not a torn partial.
	db2, err := Open(Config{
		Txn:         txn.Config{SynchronousPropagation: true},
		Persistence: &Persistence{Dir: dir, Sync: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	tid2 := db2.TableID("t")
	tx := db2.Begin(txn.StmtSI)
	defer tx.Abort()
	n := 0
	if err := tx.Scan(tid2, func(_ ts.RID, img []byte) bool {
		if string(img) != "logged-not-published" {
			t.Fatalf("recovered image %q", img)
		}
		n++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("recovered %d rows, want 1 (the logged group replays)", n)
	}
}
